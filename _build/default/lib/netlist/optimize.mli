(** Netlist optimization: constant folding, structural deduplication,
    inverter-pair collapsing and dead-component elimination, iterated to a
    fixed point.  Behaviour-preserving (checked against the original on
    random circuits in the test suite) and never larger. *)

val once : Netlist.t -> Netlist.t * bool
(** One folding/dedup pass followed by a rebuild; the flag reports whether
    any rewriting happened. *)

val optimize : ?max_rounds:int -> Netlist.t -> Netlist.t
