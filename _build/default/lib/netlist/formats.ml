(* Netlist output formats.

   [to_paper_string] prints the exact 4-tuple shape of paper section 4.4:
   input ports, output ports, components, and wires
   [((source, out_port), [(sink, in_port); ...])].  [to_dot] and
   [to_verilog] stand in for the fabrication back ends (wire-wrap, VLSI
   CAD) that consume netlists in the paper's tool chain. *)

let buf_add = Buffer.add_string

(* Renumber so inputs come first, then outputs, then internal components —
   the paper's presentation order. *)
let paper_numbering (nl : Netlist.t) =
  let n = Netlist.size nl in
  let renum = Array.make n (-1) in
  let next = ref 0 in
  let assign i =
    renum.(i) <- !next;
    incr next
  in
  List.iter (fun (_, i) -> assign i) nl.Netlist.inputs;
  List.iter (fun (_, i) -> assign i) nl.Netlist.outputs;
  for i = 0 to n - 1 do
    if renum.(i) < 0 then assign i
  done;
  renum

let comp_label = function
  | Netlist.Inport s -> Printf.sprintf "InPort %S" s
  | Netlist.Outport s -> Printf.sprintf "OutPort %S" s
  | Netlist.Constant b -> if b then "Const1" else "Const0"
  | Netlist.Invc -> "Inv"
  | Netlist.And2c -> "And2"
  | Netlist.Or2c -> "Or2"
  | Netlist.Xor2c -> "Xor2"
  | Netlist.Dffc b -> if b then "Dff1" else "Dff"

let to_paper_string (nl : Netlist.t) =
  let renum = paper_numbering nl in
  let buf = Buffer.create 256 in
  let list_str items = "[" ^ String.concat ", " items ^ "]" in
  let inputs =
    List.map
      (fun (name, i) -> Printf.sprintf "(%d, InPort %S)" renum.(i) name)
      nl.Netlist.inputs
  in
  let outputs =
    List.map
      (fun (name, i) -> Printf.sprintf "(%d, OutPort %S)" renum.(i) name)
      nl.Netlist.outputs
  in
  let internals = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Inport _ | Netlist.Outport _ -> ()
      | _ ->
        internals :=
          Printf.sprintf "(%d, %s)" renum.(i) (comp_label comp) :: !internals)
    nl.Netlist.components;
  let internals = List.rev !internals in
  (* Wires, ordered by source id in the paper numbering. *)
  let fanout = Netlist.fanout nl in
  let wires = ref [] in
  Array.iteri
    (fun src sinks ->
      if sinks <> [] then
        let out_port = Netlist.input_arity nl.Netlist.components.(src) in
        let sink_strs =
          List.map
            (fun (sink, port) -> Printf.sprintf "(%d,%d)" renum.(sink) port)
            sinks
        in
        wires :=
          ( renum.(src),
            Printf.sprintf "((%d,%d), %s)" renum.(src) out_port
              (list_str sink_strs) )
          :: !wires)
    fanout;
  let wires =
    List.sort (fun (a, _) (b, _) -> compare a b) !wires |> List.map snd
  in
  buf_add buf "(";
  buf_add buf (list_str inputs);
  buf_add buf ",\n ";
  buf_add buf (list_str outputs);
  buf_add buf ",\n ";
  buf_add buf (list_str internals);
  buf_add buf ",\n ";
  buf_add buf (list_str wires);
  buf_add buf ")";
  Buffer.contents buf

let to_dot ?(name = "circuit") (nl : Netlist.t) =
  let buf = Buffer.create 256 in
  buf_add buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Array.iteri
    (fun i comp ->
      let shape, lbl =
        match comp with
        | Netlist.Inport s -> ("invtriangle", s)
        | Netlist.Outport s -> ("triangle", s)
        | Netlist.Constant b -> ("plaintext", if b then "1" else "0")
        | Netlist.Invc -> ("circle", "inv")
        | Netlist.And2c -> ("box", "and")
        | Netlist.Or2c -> ("box", "or")
        | Netlist.Xor2c -> ("box", "xor")
        | Netlist.Dffc _ -> ("box3d", "dff")
      in
      buf_add buf
        (Printf.sprintf "  n%d [shape=%s,label=\"%s\"];\n" i shape lbl))
    nl.Netlist.components;
  Array.iteri
    (fun sink drivers ->
      Array.iteri
        (fun port drv ->
          buf_add buf
            (Printf.sprintf "  n%d -> n%d [taillabel=\"%d\"];\n" drv sink port))
        drivers)
    nl.Netlist.fanin;
  buf_add buf "}\n";
  Buffer.contents buf

(* Structural Verilog: one wire per component output, assigns for gates, a
   clocked always block per dff.  Identifier sanitation keeps port names
   legal. *)
let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') s

let to_verilog ?(name = "circuit") (nl : Netlist.t) =
  let buf = Buffer.create 1024 in
  let wire i = Printf.sprintf "n%d" i in
  let in_ports = List.map (fun (s, _) -> sanitize s) nl.Netlist.inputs in
  let out_ports = List.map (fun (s, _) -> sanitize s) nl.Netlist.outputs in
  let has_dff =
    Array.exists (function Netlist.Dffc _ -> true | _ -> false)
      nl.Netlist.components
  in
  let ports =
    (if has_dff then [ "input clk" ] else [])
    @ List.map (fun p -> "input " ^ p) in_ports
    @ List.map (fun p -> "output " ^ p) out_ports
  in
  buf_add buf
    (Printf.sprintf "module %s(%s);\n" (sanitize name) (String.concat ", " ports));
  Array.iteri
    (fun i comp ->
      let f0 () = wire nl.Netlist.fanin.(i).(0) in
      let f1 () = wire nl.Netlist.fanin.(i).(1) in
      match comp with
      | Netlist.Inport s ->
        buf_add buf (Printf.sprintf "  wire %s = %s;\n" (wire i) (sanitize s))
      | Netlist.Outport _ -> ()
      | Netlist.Constant b ->
        buf_add buf
          (Printf.sprintf "  wire %s = 1'b%d;\n" (wire i) (Bool.to_int b))
      | Netlist.Invc ->
        buf_add buf (Printf.sprintf "  wire %s = ~%s;\n" (wire i) (f0 ()))
      | Netlist.And2c ->
        buf_add buf
          (Printf.sprintf "  wire %s = %s & %s;\n" (wire i) (f0 ()) (f1 ()))
      | Netlist.Or2c ->
        buf_add buf
          (Printf.sprintf "  wire %s = %s | %s;\n" (wire i) (f0 ()) (f1 ()))
      | Netlist.Xor2c ->
        buf_add buf
          (Printf.sprintf "  wire %s = %s ^ %s;\n" (wire i) (f0 ()) (f1 ()))
      | Netlist.Dffc init ->
        buf_add buf
          (Printf.sprintf "  reg %s = 1'b%d;\n" (wire i) (Bool.to_int init));
        buf_add buf
          (Printf.sprintf "  always @(posedge clk) %s <= %s;\n" (wire i) (f0 ())))
    nl.Netlist.components;
  List.iter
    (fun (s, i) ->
      buf_add buf
        (Printf.sprintf "  assign %s = %s;\n" (sanitize s)
           (wire nl.Netlist.fanin.(i).(0))))
    nl.Netlist.outputs;
  buf_add buf "endmodule\n";
  Buffer.contents buf

let stats_string nl =
  let s = Netlist.stats nl in
  Printf.sprintf
    "components: %d (gates %d, dffs %d, inputs %d, outputs %d, constants %d)"
    s.Netlist.total s.Netlist.gates s.Netlist.dffs s.Netlist.inports
    s.Netlist.outports s.Netlist.constants
