(** Netlist output formats: the paper's 4-tuple (section 4.4), Graphviz
    dot, structural Verilog, and a statistics line. *)

val to_paper_string : Netlist.t -> string
(** The exact shape printed in paper section 4.4: input ports, output
    ports, components, and wires [((source, out_port), [(sink, in_port);
    ...])], numbered inputs-outputs-internals. *)

val to_dot : ?name:string -> Netlist.t -> string
(** Graphviz digraph. *)

val to_verilog : ?name:string -> Netlist.t -> string
(** Structural Verilog: one wire per component, [assign] per gate, a
    clocked [always] block per dff (with its power-up value as the
    initializer).  A [clk] port is added iff the circuit is sequential. *)

val stats_string : Netlist.t -> string
val sanitize : string -> string
(** Make a port name a legal Verilog identifier. *)

val paper_numbering : Netlist.t -> int array
(** Renumbering used by {!to_paper_string}: inputs first, then outputs,
    then internal components. *)

val comp_label : Netlist.component -> string
