(* Whole-netlist transformations on the state elements.

   The paper's section 2 argues against gating clocks: "a true conditional
   load register should be used".  These passes mechanize that argument at
   the netlist level — they rewrite every flip flop to a conditional-load
   structure behind a new control input, without touching the clock:

   - [insert_stall]: dff input becomes [mux stall input self]; while the
     new input is 1 the whole machine freezes, and simulation is exactly
     time-dilated.
   - [insert_reset]: dff input becomes [mux reset input power_up]; pulsing
     the new input returns the machine synchronously to its power-up
     state (useful after {!Hydra_engine.Xsim} shows a design relies on
     power-up values). *)

(* Append components to a netlist, returning the extended arrays and a
   fresh-index allocator. *)
type builder = {
  mutable comps : (Netlist.component * int array) list;  (* newest first *)
  mutable next : int;
}

let builder nl = { comps = []; next = Netlist.size nl }

let emit b comp fanin =
  let idx = b.next in
  b.next <- b.next + 1;
  b.comps <- (comp, fanin) :: b.comps;
  idx

let gate b kind a0 a1 = emit b kind [| a0; a1 |]
let inv b a = emit b Netlist.Invc [| a |]

(* mux1 c x y built from primitives: or (and (inv c) x) (and c y) *)
let mux b c x y =
  let nc = inv b c in
  let l = gate b Netlist.And2c nc x in
  let r = gate b Netlist.And2c c y in
  gate b Netlist.Or2c l r

let finish nl b ~extra_inputs =
  let n_old = Netlist.size nl in
  let added = List.rev b.comps in
  let total = b.next in
  let components = Array.make total (Netlist.Constant false) in
  let fanin = Array.make total [||] in
  let names = Array.make total [] in
  Array.blit nl.Netlist.components 0 components 0 n_old;
  Array.blit nl.Netlist.fanin 0 fanin 0 n_old;
  Array.blit nl.Netlist.names 0 names 0 n_old;
  List.iteri
    (fun i (comp, fi) ->
      components.(n_old + i) <- comp;
      fanin.(n_old + i) <- fi)
    added;
  {
    nl with
    Netlist.components;
    fanin;
    names;
    inputs = nl.Netlist.inputs @ extra_inputs;
  }

(* [insert_stall nl ~name]: add an input [name]; while it is 1, every
   flip flop holds its value. *)
let insert_stall nl ~name =
  if List.mem_assoc name nl.Netlist.inputs then
    invalid_arg "Transform.insert_stall: input name already exists";
  let b = builder nl in
  let stall = emit b (Netlist.Inport name) [||] in
  let rewires = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Dffc _ ->
        let old_src = nl.Netlist.fanin.(i).(0) in
        (* mux stall old_src self: stall = 0 -> follow, 1 -> hold *)
        let m = mux b stall old_src i in
        rewires := (i, m) :: !rewires
      | _ -> ())
    nl.Netlist.components;
  let nl' = finish nl b ~extra_inputs:[ (name, stall) ] in
  List.iter (fun (i, m) -> nl'.Netlist.fanin.(i) <- [| m |]) !rewires;
  nl'

(* [insert_reset nl ~name]: add an input [name]; while it is 1, every flip
   flop loads its power-up value at the tick (synchronous reset). *)
let insert_reset nl ~name =
  if List.mem_assoc name nl.Netlist.inputs then
    invalid_arg "Transform.insert_reset: input name already exists";
  let b = builder nl in
  let reset = emit b (Netlist.Inport name) [||] in
  let const0 = emit b (Netlist.Constant false) [||] in
  let const1 = emit b (Netlist.Constant true) [||] in
  let rewires = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Dffc init ->
        let old_src = nl.Netlist.fanin.(i).(0) in
        let init_c = if init then const1 else const0 in
        let m = mux b reset old_src init_c in
        rewires := (i, m) :: !rewires
      | _ -> ())
    nl.Netlist.components;
  let nl' = finish nl b ~extra_inputs:[ (name, reset) ] in
  List.iter (fun (i, m) -> nl'.Netlist.fanin.(i) <- [| m |]) !rewires;
  nl'
