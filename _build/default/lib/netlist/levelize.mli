(** Levelization: rank every component by the number of gate delays after
    a clock tick at which its output is valid.  Flip-flop inputs do not
    constrain the flip flop (the synchronous model breaks loops at
    registers), so purely combinational cycles — which the model forbids —
    are detected and reported. *)

type t = {
  levels : int array;  (** per component; -1 inside a combinational cycle *)
  order : int array;  (** combinational evaluation order (topological) *)
  by_level : int array array;
      (** combinational components grouped by rank; every rank's members
          are mutually independent, which is what the parallel engines
          exploit *)
  critical_path : int;
      (** deepest signal that must settle before the next tick (at an
          output port or a dff input) *)
  cyclic : int list;  (** components on combinational cycles *)
}

exception Combinational_cycle of int list

val compute : Netlist.t -> t

val check : Netlist.t -> t
(** As {!compute}, but raises {!Combinational_cycle} when the netlist has
    one. *)

val critical_path : Netlist.t -> int
