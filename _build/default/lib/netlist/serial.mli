(** Netlist serialization: a line-based text format for saving, diffing
    and reloading extracted circuits.  Round-trips exactly (component
    order, fanin, labels, port lists). *)

exception Parse_error of { line : int; message : string }

val to_string : Netlist.t -> string
val of_string : string -> Netlist.t
val to_file : Netlist.t -> string -> unit
val of_file : string -> Netlist.t
