lib/netlist/optimize.ml: Array Bool Hashtbl List Netlist Option Printf
