lib/netlist/optimize.mli: Netlist
