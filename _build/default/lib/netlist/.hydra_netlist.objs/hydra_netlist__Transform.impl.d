lib/netlist/transform.ml: Array List Netlist
