lib/netlist/serial.ml: Array Buffer List Netlist Printf String
