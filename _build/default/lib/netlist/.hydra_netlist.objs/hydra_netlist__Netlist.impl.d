lib/netlist/netlist.ml: Array Hashtbl Hydra_core List
