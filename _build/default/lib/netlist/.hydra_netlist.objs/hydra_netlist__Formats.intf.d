lib/netlist/formats.mli: Netlist
