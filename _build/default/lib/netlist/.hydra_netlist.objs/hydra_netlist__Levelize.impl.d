lib/netlist/levelize.ml: Array List Netlist Queue
