lib/netlist/formats.ml: Array Bool Buffer List Netlist Printf String
