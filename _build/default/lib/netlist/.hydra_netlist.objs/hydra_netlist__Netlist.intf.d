lib/netlist/netlist.mli: Hydra_core
