(** Whole-netlist transformations on the state elements — the paper's
    "true conditional load register instead of a gated clock" argument,
    mechanized: both passes put a multiplexer in front of every flip
    flop's data input and never touch the clock. *)

val insert_stall : Netlist.t -> name:string -> Netlist.t
(** Add an input; while it is 1 every flip flop holds, so simulation is
    exactly time-dilated.  Raises if the input name exists. *)

val insert_reset : Netlist.t -> name:string -> Netlist.t
(** Add an input; while it is 1 every flip flop synchronously reloads its
    power-up value at the tick. *)
