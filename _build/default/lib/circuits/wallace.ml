(* Wallace-tree multiplier: carry-save reduction of the partial products.

   The array multiplier in {!Arith.multw} sums partial products with a
   linear chain of ripple adders (O(n) depth per row, O(n) rows).  The
   Wallace scheme instead reduces the partial-product matrix with layers
   of full adders used as 3:2 carry-save compressors — O(log n) layers —
   and finishes with one fast two-operand adder, giving O(log n) total
   depth.  The same tradeoff story as the carry-lookahead family
   (experiment E18 measures it). *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  open S
  module A = Arith.Make (S)

  (* Columns of bits by weight (index 0 = least significant). *)

  (* One carry-save reduction layer: in every column, compress groups of
     three bits with a full adder (sum stays, carry moves up) and pairs
     with a half adder. *)
  let reduce_layer columns =
    let ncols = Array.length columns in
    let next = Array.make (ncols + 1) [] in
    let push j b = next.(j) <- b :: next.(j) in
    Array.iteri
      (fun j bits ->
        let rec go = function
          | a :: b :: c :: rest ->
            let carry, sum = A.full_add (a, b) c in
            push j sum;
            push (j + 1) carry;
            go rest
          | [ a; b ] ->
            let carry, sum = A.half_add a b in
            push j sum;
            push (j + 1) carry
          | [ a ] -> push j a
          | [] -> ()
        in
        go bits)
      columns;
    (* drop an empty top column if nothing carried into it *)
    if next.(ncols) = [] then Array.sub next 0 ncols else next

  let max_height columns =
    Array.fold_left (fun acc c -> max acc (List.length c)) 0 columns

  (* multw xs ys: unsigned n x m -> n+m bits, MSB first. *)
  let multw ?(network = Patterns.Sklansky) xs ys =
    let n = List.length xs and m = List.length ys in
    if n = 0 || m = 0 then invalid_arg "Wallace.multw: empty operand";
    let x_lsb = Array.of_list (List.rev xs) in
    let y_lsb = Array.of_list (List.rev ys) in
    let columns = Array.make (n + m) [] in
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        columns.(i + j) <- and2 x_lsb.(i) y_lsb.(j) :: columns.(i + j)
      done
    done;
    let columns = ref columns in
    while max_height !columns > 2 do
      columns := reduce_layer !columns
    done;
    let width = n + m in
    let bit_of cols j k =
      if j < Array.length cols then
        match List.nth_opt cols.(j) k with Some b -> b | None -> zero
      else zero
    in
    let row k =
      List.init width (fun j -> bit_of !columns j k) (* LSB first *)
    in
    let a = List.rev (row 0) and b = List.rev (row 1) in
    let _, sums = A.cla_add ~network zero (List.combine a b) in
    sums
end
