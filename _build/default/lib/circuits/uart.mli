(** A UART: serial transmitter and receiver (8N1 framing: idle high, one
    start bit, eight data bits LSB first, one stop bit), each bit lasting
    [divisor] clock cycles. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  type tx_outputs = { line : S.t; tx_busy : S.t }

  val tx : divisor:int -> S.t -> S.t list -> tx_outputs
  (** [tx ~divisor send data]: transmit the 8-bit word [data] when [send]
      pulses while idle; [send] during a transmission is ignored. *)

  type rx_outputs = { data : S.t list; valid : S.t; rx_busy : S.t }

  val rx : divisor:int -> S.t -> rx_outputs
  (** [rx ~divisor line]: [valid] pulses for one cycle when [data] holds a
      freshly received byte (sampled at bit midpoints). *)
end
