(* Derived logic gates and word-level (bitwise) operations.

   Only [inv]/[and2]/[or2]/[xor2] are primitive (every semantics interprets
   just those); everything here is built from them, so it automatically
   works under simulation, netlist generation and timing analysis alike. *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  open S

  let nand2 a b = inv (and2 a b)
  let nor2 a b = inv (or2 a b)
  let xnor2 a b = inv (xor2 a b)
  let eq1 = xnor2
  let and3 a b c = and2 a (and2 b c)
  let and4 a b c d = and2 (and2 a b) (and2 c d)
  let or3 a b c = or2 a (or2 b c)
  let or4 a b c d = or2 (or2 a b) (or2 c d)
  let xor3 a b c = xor2 a (xor2 b c)

  (* [imply a b] = ¬a ∨ b; handy in verification properties. *)
  let imply a b = or2 (inv a) b

  (* Word reductions: balanced trees, so logarithmic depth. *)
  let orw = Patterns.tree_fold or2
  let andw = Patterns.tree_fold and2
  let xorw = Patterns.tree_fold xor2

  (* [any1 w] is 1 iff some bit of [w] is 1 (the paper's [any1]);
     [all1 w] is 1 iff every bit is; [parity w] is the xor reduction. *)
  let any1 = orw
  let all1 = andw
  let parity = xorw
  let is_zero w = inv (any1 w)

  (* Bitwise word operations. *)
  let invw = List.map inv
  let and2w = List.map2 and2
  let or2w = List.map2 or2
  let xor2w = List.map2 xor2

  (* [fanout n s]: the word [s; s; ...; s] of length [n]. *)
  let fanout n s = List.init n (fun _ -> s)

  (* [wconst ~width v]: the constant word holding integer [v]. *)
  let wconst ~width v =
    List.map constant (Hydra_core.Bitvec.of_int ~width v)

  let wzero ~width = fanout width zero

  (* [andw2 c w]: gate every bit of [w] with [c]. *)
  let gatew c w = List.map (fun b -> and2 c b) w

  (* Gray-code recodings: [binary_to_gray b = b xor (b >> 1)]; successive
     binary values map to codewords differing in exactly one bit.
     [gray_to_binary] is the inverse (an inclusive xor scan). *)
  let binary_to_gray b =
    match b with
    | [] -> []
    | _ ->
      let shifted = zero :: List.filteri (fun i _ -> i < List.length b - 1) b in
      xor2w b shifted

  let gray_to_binary g = Patterns.scan_serial xor2 g
end
