(* Bitonic sorting network over unsigned words.

   A showcase for the tree/butterfly design-pattern family (paper section
   5): the merger stages have exactly the butterfly connection scheme, and
   the whole network is a static circuit — data-independent structure —
   so it works at every signal semantics (simulate it, print its netlist,
   measure its O(log^2 n) depth). *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  module M = Mux.Make (S)
  module A = Arith.Make (S)

  (* compare_exchange ~descending (wa, wb): route the smaller word to the
     first output (or the larger, when [descending]). *)
  let compare_exchange ~descending (wa, wb) =
    let swap =
      if descending then A.lt_unsigned wa wb else A.gt_unsigned wa wb
    in
    (M.wmux1 swap wa wb, M.wmux1 swap wb wa)

  (* bitonic_merge direction xs: sort a bitonic sequence; the butterfly
     pattern applied to compare-exchange cells. *)
  let bitonic_merge ~descending xs =
    Patterns.butterfly (compare_exchange ~descending) xs

  (* sort xs: bitonic sort of a power-of-two number of equal-width words,
     ascending. *)
  let rec sort_dir ~descending xs =
    match xs with
    | [] | [ _ ] -> xs
    | _ ->
      let lo, hi = Patterns.halve xs in
      let lo' = sort_dir ~descending:false lo in
      let hi' = sort_dir ~descending:true hi in
      bitonic_merge ~descending (lo' @ hi')

  let sort xs = sort_dir ~descending:false xs

  (* min_max tree: the smallest and largest word of a non-empty list, via
     balanced trees of compare-exchanges. *)
  let minw xs =
    Patterns.tree_fold (fun a b -> fst (compare_exchange ~descending:false (a, b))) xs

  let maxw xs =
    Patterns.tree_fold (fun a b -> snd (compare_exchange ~descending:false (a, b))) xs
end
