(* Pipelining combinators: insert register walls between combinational
   stages.  Throughput becomes one result per cycle while the critical
   path shrinks to the deepest single stage — the other classic answer
   (besides carry-lookahead) to the paper's "minimize the critical path"
   imperative.  The cost is latency: the output is the input's image
   [k] cycles later, which the tests verify. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  (* a register wall: every wire gets a dff *)
  let wall w = List.map S.dff w

  (* [pipeline stages w]: stage_1 .. stage_k applied in order with a
     register wall after each stage.  Latency = number of stages. *)
  let pipeline stages w =
    List.fold_left (fun w stage -> wall (stage w)) w stages

  (* [pipeline_front stages w]: register wall before each stage instead
     (same latency; different retiming). *)
  let pipeline_front stages w =
    List.fold_left (fun w stage -> stage (wall w)) w stages

  (* [delay k w]: a pure k-cycle delay line. *)
  let delay k w = Hydra_core.Patterns.iterate_n k wall w
end
