(** Pipelining combinators: register walls between combinational stages.
    Critical path shrinks to the deepest stage; the output is the
    combinational result delayed by the number of stages. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  val wall : S.t list -> S.t list
  (** One dff per wire. *)

  val pipeline : (S.t list -> S.t list) list -> S.t list -> S.t list
  (** Stages applied in order, a wall after each. *)

  val pipeline_front : (S.t list -> S.t list) list -> S.t list -> S.t list
  (** Wall before each stage instead. *)

  val delay : int -> S.t list -> S.t list
  (** Pure k-cycle delay line. *)
end
