(* Sequential restoring divider: the datapath/control separation of paper
   section 6 in miniature.

   The datapath is a (remainder, quotient) register pair with a shifter
   and a subtractor; the control is a small counter-based state machine.
   One quotient bit is produced per clock cycle, so an n-bit division
   takes n cycles after [start].

   Protocol: pulse [start] with the operands applied (they are latched
   that cycle); [busy] rises the next cycle and falls when the result is
   ready, at which point [quotient] and [remainder] hold it until the next
   start.  Division by zero yields quotient = all ones, remainder =
   dividend (the natural behaviour of restoring division). *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)

  type outputs = {
    quotient : S.t list;
    remainder : S.t list;
    busy : S.t;
    ready : S.t;  (* not busy *)
  }

  let log2_ceil n =
    let rec go k = if 1 lsl k >= n then k else go (k + 1) in
    go 0

  let divide n start dividend divisor =
    if List.length dividend <> n || List.length divisor <> n then
      invalid_arg "Divider.divide: operand width";
    let cnt_bits = log2_ceil (n + 1) + 1 in
    let outs = ref None in
    (* state: R (n+1 bits), Q (n), D (divisor copy, n), cnt, busy *)
    let _ =
      feedback_list
        ((n + 1) + n + n + cnt_bits + 1)
        (fun loop ->
          let r, rest = Patterns.split_at (n + 1) loop in
          let q, rest = Patterns.split_at n rest in
          let d, rest = Patterns.split_at n rest in
          let cnt, busy_l = Patterns.split_at cnt_bits rest in
          let busy = List.hd busy_l in
          (* one division step: shift (R,Q) left, bring in Q's msb;
             trial-subtract the divisor; accept if non-negative *)
          let q_msb = List.hd q in
          let r_shift = List.tl r @ [ q_msb ] in
          let d_ext = zero :: d in
          let borrow_out, _, diff = A.add_sub one r_shift d_ext in
          (* restoring division: subtraction fits iff no borrow
             (add_sub returns carry-out = 1 when r_shift >= d_ext) *)
          let fits = borrow_out in
          let r_next = M.wmux1 fits r_shift diff in
          let q_next = List.tl q @ [ fits ] in
          (* counter: loaded with n at start, decremented while busy *)
          let cnt_dec = A.subw cnt (G.wconst ~width:cnt_bits 1) in
          let last_step = A.eqw cnt (G.wconst ~width:cnt_bits 1) in
          (* start (when not busy) loads everything *)
          let go = and2 start (inv busy) in
          let r' =
            M.wmux1 go
              (M.wmux1 busy r r_next)
              (G.wzero ~width:(n + 1))
          in
          let q' = M.wmux1 go (M.wmux1 busy q q_next) dividend in
          let d' = M.wmux1 go d divisor in
          let cnt' =
            M.wmux1 go
              (M.wmux1 busy cnt cnt_dec)
              (G.wconst ~width:cnt_bits n)
          in
          let busy' = M.mux1 go (and2 busy (inv last_step)) one in
          let remainder =
            (* low n bits of R *)
            List.tl r
          in
          outs := Some { quotient = q; remainder; busy; ready = inv busy };
          List.map dff (r' @ q' @ d' @ cnt' @ [ busy' ]))
    in
    match !outs with Some o -> o | None -> assert false
end
