(** Interconnection circuits: crossbar switch and arbiters. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  val crossbar : sel_bits:int -> S.t list list -> S.t list list -> S.t list list
  (** [crossbar ~sel_bits inputs selects]: output [j] carries
      [inputs.(selects_j)]; [inputs] has 2{^sel_bits} equal-width words.
      Any permutation or broadcast. *)

  val priority_arbiter : S.t list -> S.t list
  (** Combinational one-hot grant to the lowest-indexed active request
      (all zero when idle). *)

  val round_robin : S.t list -> S.t list * S.t
  (** Sequential fair arbiter over a power-of-two number of requesters:
      [(one-hot grant, any_request)].  Priority rotates past the previous
      winner, so persistent requesters are served in turn. *)
end
