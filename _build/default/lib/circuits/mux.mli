(** Multiplexers, demultiplexers, decoders and encoders.  [mux1] is the
    paper's Figure 2 circuit; [demuxw]/[muxw] are the recursive address
    trees used by the register file and the control dispatch. *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val mux1 : S.t -> S.t -> S.t -> S.t
  (** [mux1 c x y] is [x] when [c] = 0 and [y] when [c] = 1 (paper
      Figure 2). *)

  val mux2 : S.t * S.t -> S.t -> S.t -> S.t -> S.t -> S.t
  (** 4-way multiplexer; [(c0, c1)] is the address, [c0] most
      significant. *)

  val muxw : S.t list -> S.t list -> S.t
  (** [muxw cs xs]: 2{^k}-way multiplexer; [cs] is the k-bit address (MSB
      first), [xs] has length 2{^k}. *)

  val wmux1 : S.t -> S.t list -> S.t list -> S.t list
  (** Word multiplexer: select between two equal-width buses. *)

  val wmux2 :
    S.t * S.t -> S.t list -> S.t list -> S.t list -> S.t list -> S.t list
  (** 4-way word multiplexer. *)

  val demux1 : S.t -> S.t -> S.t * S.t
  (** [demux1 c x]: route [x] to the first output when [c] = 0, to the
      second when [c] = 1; the unselected output is 0. *)

  val demuxw : S.t list -> S.t -> S.t list
  (** Route a bit to one of 2{^k} outputs addressed by a k-bit word. *)

  val demux4w : S.t list -> S.t -> S.t list
  (** The paper's [demux4w]: 4 address bits, 16 outputs. *)

  val decode : S.t list -> S.t list
  (** One-hot decoder: output [i] is 1 iff the address equals [i]. *)

  val encode : S.t list -> S.t list
  (** Inverse of {!decode} for one-hot inputs: the binary index of the
      unique 1 among 2{^k} inputs. *)

  val priority_encode : S.t list -> S.t * S.t list
  (** [(valid, index)] of the first 1 (scanning from index 0); [valid] is
      0 when no input is set.  Input count must be a power of two. *)
end
