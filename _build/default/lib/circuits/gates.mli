(** Derived gates and word-level (bitwise) operations, built from the four
    primitives so they work at every signal semantics. *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val nand2 : S.t -> S.t -> S.t
  val nor2 : S.t -> S.t -> S.t
  val xnor2 : S.t -> S.t -> S.t

  val eq1 : S.t -> S.t -> S.t
  (** 1-bit equality (alias of {!xnor2}). *)

  val and3 : S.t -> S.t -> S.t -> S.t
  val and4 : S.t -> S.t -> S.t -> S.t -> S.t
  val or3 : S.t -> S.t -> S.t -> S.t
  val or4 : S.t -> S.t -> S.t -> S.t -> S.t
  val xor3 : S.t -> S.t -> S.t -> S.t

  val imply : S.t -> S.t -> S.t
  (** [imply a b] = ¬a ∨ b. *)

  val orw : S.t list -> S.t
  (** Or-reduction of a non-empty word, as a balanced tree (logarithmic
      depth). *)

  val andw : S.t list -> S.t
  val xorw : S.t list -> S.t

  val any1 : S.t list -> S.t
  (** 1 iff some bit is 1 (the paper's [any1]; alias of {!orw}). *)

  val all1 : S.t list -> S.t
  val parity : S.t list -> S.t

  val is_zero : S.t list -> S.t
  (** 1 iff every bit is 0. *)

  val invw : S.t list -> S.t list
  (** Bitwise complement. *)

  val and2w : S.t list -> S.t list -> S.t list
  val or2w : S.t list -> S.t list -> S.t list
  val xor2w : S.t list -> S.t list -> S.t list

  val fanout : int -> S.t -> S.t list
  (** [fanout n s] is the word [s] repeated [n] times. *)

  val wconst : width:int -> int -> S.t list
  (** Constant word holding an integer (MSB first). *)

  val wzero : width:int -> S.t list

  val gatew : S.t -> S.t list -> S.t list
  (** And every bit of the word with a control bit. *)

  val binary_to_gray : S.t list -> S.t list
  (** [b xor (b >> 1)]: successive binary values map to Gray codewords
      differing in exactly one bit. *)

  val gray_to_binary : S.t list -> S.t list
  (** Inverse of {!binary_to_gray} (an inclusive xor scan). *)
end
