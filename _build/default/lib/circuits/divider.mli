(** Sequential restoring divider: one quotient bit per clock cycle — the
    datapath/control separation of paper section 6 in miniature. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  type outputs = {
    quotient : S.t list;
    remainder : S.t list;
    busy : S.t;
    ready : S.t;
  }

  val divide : int -> S.t -> S.t list -> S.t list -> outputs
  (** [divide n start dividend divisor]: pulse [start] with the operands
      applied (latched that cycle); [busy] covers the following [n] work
      cycles; afterwards [quotient]/[remainder] hold the result until the
      next start.  Division by zero yields all-ones quotient and the
      dividend as remainder. *)
end
