(* Sequential building blocks: registers, counters, shift registers, the
   paper's recursive register file, and a structural RAM.

   [reg1] is the paper's section 4.1 circuit: a delay flip flop inside a
   feedback loop, loading on [ld] and holding otherwise.  [regfile1] is the
   section 5 recursion verbatim: a file of 2^k one-bit registers with one
   write port and two read ports, built from two half-size files plus
   address-decoding demultiplexers and output multiplexers. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)

  (* reg1 ld x: 1-bit register; at a clock tick stores x if ld = 1, else
     keeps its state (paper section 4.1). *)
  let reg1 ld x = feedback (fun s -> dff (M.mux1 ld s x))

  (* reg ld xs: n-bit register, one reg1 per bit. *)
  let reg ld xs = List.map (reg1 ld) xs

  (* reg_init: register with an explicit power-up word. *)
  let reg1_init init ld x = feedback (fun s -> dff_init init (M.mux1 ld s x))

  let reg_init inits ld xs = List.map2 (fun i x -> reg1_init i ld x) inits xs

  (* counter n en: n-bit counter, increments when en = 1; outputs the
     current count. *)
  let counter n en =
    feedback_list n (fun s ->
        List.map dff (M.wmux1 en s (A.incw s)))

  (* counter_clear n en clr: as [counter], but resets to 0 when clr = 1
     (clear wins over enable). *)
  let counter_clear n en clr =
    feedback_list n (fun s ->
        let next = M.wmux1 en s (A.incw s) in
        List.map (fun b -> dff (and2 (inv clr) b)) next)

  (* shift_reg n ld xs sin: parallel-load left-shift register.  When ld = 1
     loads xs; otherwise shifts left one position, taking sin into the
     lsb.  Outputs the register contents. *)
  let shift_reg n ld xs sin =
    feedback_list n (fun s ->
        let shifted = List.tl s @ [ sin ] in
        List.map dff (M.wmux1 ld shifted xs))

  (* regfile1 k ld d sa sb x: 2^k one-bit registers; writes x to register d
     when ld = 1; continuously reads registers sa and sb (paper section 5,
     verbatim recursion). *)
  let rec regfile1 k ld d sa sb x =
    match (k, d, sa, sb) with
    | 0, [], [], [] ->
      let r = reg1 ld x in
      (r, r)
    | _, dh :: ds, sah :: sas, sbh :: sbs when k > 0 ->
      let ld0, ld1 = M.demux1 dh ld in
      let a0, b0 = regfile1 (k - 1) ld0 ds sas sbs x in
      let a1, b1 = regfile1 (k - 1) ld1 ds sas sbs x in
      let a = M.mux1 sah a0 a1 in
      let b = M.mux1 sbh b0 b1 in
      (a, b)
    | _ -> invalid_arg "Regs.regfile1: address widths must equal k"

  (* regfile k ld d sa sb xs: word-level register file — one regfile1 per
     bit position, sharing the decoded addresses. *)
  let regfile k ld d sa sb xs =
    List.split (List.map (fun x -> regfile1 k ld d sa sb x) xs)

  (* ram1 k we addr x: 2^k one-bit cells with a single read/write port:
     continuously reads cell [addr]; writes x there when we = 1. *)
  let rec ram1 k we addr x =
    match (k, addr) with
    | 0, [] -> reg1 we x
    | _, ah :: asx when k > 0 ->
      let we0, we1 = M.demux1 ah we in
      let r0 = ram1 (k - 1) we0 asx x in
      let r1 = ram1 (k - 1) we1 asx x in
      M.mux1 ah r0 r1
    | _ -> invalid_arg "Regs.ram1: address width must equal k"

  (* ram k we addr xs: word-level single-port RAM. *)
  let ram k we addr xs = List.map (fun x -> ram1 k we addr x) xs
end
