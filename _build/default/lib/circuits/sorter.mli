(** Bitonic sorting network over unsigned MSB-first words — a static
    circuit built from the butterfly pattern family (paper section 5),
    with O(log² n) depth. *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val compare_exchange :
    descending:bool -> S.t list * S.t list -> S.t list * S.t list
  (** Route the smaller word to the first output (the larger when
      [descending]). *)

  val bitonic_merge : descending:bool -> S.t list list -> S.t list list
  (** Sort a bitonic sequence of words: the butterfly of
      compare-exchange cells. *)

  val sort : S.t list list -> S.t list list
  (** Sort a power-of-two number of equal-width words, ascending. *)

  val minw : S.t list list -> S.t list
  (** Smallest word of a non-empty list (balanced tree). *)

  val maxw : S.t list list -> S.t list
end
