(** Wallace-tree multiplier: carry-save (3:2 full-adder) reduction layers
    followed by one carry-lookahead addition — O(log n) depth, versus the
    O(n) of the ripple-array multiplier in {!Arith.multw} (experiment
    E18). *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val multw :
    ?network:Hydra_core.Patterns.prefix_network ->
    S.t list ->
    S.t list ->
    S.t list
  (** Unsigned n x m -> (n+m)-bit product, MSB first. *)
end
