(** A direct-mapped, write-allocate cache building block (the paper's
    "cache ... can be added"): tag/valid/data arrays with combinational
    hit detection, a CPU port and a refill port for the miss handler. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  type ports = {
    hit : S.t;
    rdata : S.t list;  (** line contents; meaningful when [hit] *)
    line_valid : S.t;
  }

  val cache :
    tag_bits:int ->
    index_bits:int ->
    width:int ->
    req:S.t ->
    we:S.t ->
    addr:S.t list ->
    wdata:S.t list ->
    refill:S.t ->
    refill_addr:S.t list ->
    refill_data:S.t list ->
    ports
  (** Addresses are [tag ++ index], MSB first; 2{^index_bits} one-word
      lines.  Lookup is combinational; refill (priority) and CPU stores
      update the line at the tick. *)
end
