(** The processor's ALU (paper section 6.1): addition, subtraction,
    increment and two's-complement comparisons, selected by a 4-bit
    operation code [a;b;c;d] (0000 = add and 1100 = inc, as the paper's
    control algorithm uses). *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val codes : (string * int) list
  (** Operation name to abcd code: add 0000, sub 0100, inc 1100,
      cmplt 1001, cmpeq 1010, cmpgt 1011. *)

  val code_of_op : string -> int
  (** Raises [Invalid_argument] for unknown names. *)

  val alu : S.t list -> S.t list -> S.t list -> S.t * S.t list
  (** [alu op x y = (overflow, result)].  [op] is the 4-bit code word;
      comparisons put their result in the least significant bit and clear
      the rest. *)
end
