(* Multiplexers, demultiplexers, decoders and encoders.

   [mux1] is the paper's Figure 2 circuit, verbatim.  The general [muxw]
   and [demuxw] are the recursive address-decoding schemes used by the
   register file (paper section 5) and the control circuit's dispatch
   (section 6.3). *)

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  open S
  module G = Gates.Make (S)

  (* mux1 c x y: output is x if c = 0, y if c = 1 (paper Figure 2). *)
  let mux1 c x y = or2 (and2 (inv c) x) (and2 c y)

  (* mux2 (c0, c1) w x y z: 4-way multiplexer; (c0,c1) is the 2-bit address,
     c0 most significant. *)
  let mux2 (c0, c1) w x y z = mux1 c0 (mux1 c1 w x) (mux1 c1 y z)

  (* muxw cs xs: 2^k-way multiplexer; cs is the k-bit address word (MSB
     first) and xs has length 2^k. *)
  let rec muxw cs xs =
    match (cs, xs) with
    | [], [ x ] -> x
    | c :: cs', _ ->
      let lo, hi = Hydra_core.Patterns.halve xs in
      mux1 c (muxw cs' lo) (muxw cs' hi)
    | [], _ -> invalid_arg "Mux.muxw: data width is not 2^(address width)"

  (* Word (bus) multiplexers: select between equal-width words. *)
  let wmux1 c xs ys = List.map2 (fun x y -> mux1 c x y) xs ys

  let wmux2 cs w x y z =
    let rec map4 w x y z =
      match (w, x, y, z) with
      | [], [], [], [] -> []
      | a :: w, b :: x, c :: y, d :: z -> mux2 cs a b c d :: map4 w x y z
      | _ -> invalid_arg "Mux.wmux2: unequal word widths"
    in
    map4 w x y z

  (* demux1 c x: route x to output 0 if c = 0, to output 1 if c = 1; the
     unselected output is 0. *)
  let demux1 c x = (and2 (inv c) x, and2 c x)

  (* demuxw cs x: route x to one of 2^k outputs addressed by cs (MSB
     first). *)
  let rec demuxw cs x =
    match cs with
    | [] -> [ x ]
    | c :: cs' ->
      let x0, x1 = demux1 c x in
      demuxw cs' x0 @ demuxw cs' x1

  (* The paper's demux4w: a 4-bit address routes x to one of 16 outputs. *)
  let demux4w cs x =
    if List.length cs <> 4 then invalid_arg "Mux.demux4w: need 4 address bits";
    demuxw cs x

  (* decode cs: one-hot decoder — output i is 1 iff the address word equals
     i. *)
  let decode cs = demuxw cs one

  (* encode xs: inverse of [decode] for one-hot inputs: the k-bit index of
     the (unique) 1 among the 2^k inputs.  Each address bit is the or of
     the inputs whose index has that bit set. *)
  let encode xs =
    let n = List.length xs in
    let k =
      let rec log2 acc m = if m <= 1 then acc else log2 (acc + 1) (m / 2) in
      log2 0 n
    in
    if n <> 1 lsl k then invalid_arg "Mux.encode: input count is not a power of two";
    List.init k (fun bit ->
        let selected =
          List.filteri (fun i _ -> i lsr (k - 1 - bit) land 1 = 1) xs
        in
        G.orw selected)

  (* priority_encode xs: (valid, index of the first 1, scanning from index
     0).  [valid] is 0 when no input is set, in which case the index is 0. *)
  let priority_encode xs =
    let n = List.length xs in
    if n = 0 then invalid_arg "Mux.priority_encode: empty";
    (* one-hot mask of the first set input: x_i and no earlier x set *)
    let _, none_before =
      Hydra_core.Patterns.mscanl
        (fun x seen -> (or2 seen x, and2 x (inv seen)))
        zero xs
    in
    let valid = G.orw xs in
    (valid, encode none_before)
end
