(** Sequential arithmetic: shift-add multiplier and digit-recurrence
    square root.  Same protocol as {!Divider}: pulse [start] with operands
    applied; results hold after [busy] falls. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  type mult_outputs = {
    product : S.t list;  (** 2n bits *)
    mult_busy : S.t;
    mult_ready : S.t;
  }

  val multiply : int -> S.t -> S.t list -> S.t list -> mult_outputs
  (** [multiply n start x y]: unsigned n x n product in n cycles with a
      single adder. *)

  type sqrt_outputs = {
    root : S.t list;  (** n/2 bits *)
    sqrt_rem : S.t list;  (** x - root², n/2+2 bits *)
    sqrt_busy : S.t;
  }

  val sqrt : int -> S.t -> S.t list -> sqrt_outputs
  (** [sqrt n start x]: integer square root of an even-width operand in
      n/2 cycles. *)
end
