(** Further sequential circuits: LFSR, Gray-code counter, and a
    register-based synchronous FIFO. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  val lfsr : taps:int list -> int -> S.t -> S.t list
  (** [lfsr ~taps n en]: Fibonacci linear-feedback shift register of [n]
      bits (power-up all ones); shifts left when [en] = 1, feeding the xor
      of the tapped positions (0 = msb) into the lsb.  With primitive-
      polynomial taps it cycles through all 2{^n}-1 nonzero states. *)

  val gray_counter : int -> S.t -> S.t list
  (** Binary counter recoded to Gray: successive outputs differ in exactly
      one bit. *)

  type fifo_outputs = { out : S.t list; empty : S.t; full : S.t }

  val fifo : k:int -> width:int -> S.t -> S.t -> S.t list -> fifo_outputs
  (** [fifo ~k ~width push pop data_in]: synchronous FIFO with 2{^k}
      entries; [out] is the head entry.  A push when full or a pop when
      empty is ignored. *)
end
