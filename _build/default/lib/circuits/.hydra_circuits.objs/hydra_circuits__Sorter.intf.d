lib/circuits/sorter.mli: Hydra_core
