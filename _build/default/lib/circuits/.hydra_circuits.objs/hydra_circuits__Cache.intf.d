lib/circuits/cache.mli: Hydra_core
