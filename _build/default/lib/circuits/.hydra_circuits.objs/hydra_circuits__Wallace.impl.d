lib/circuits/wallace.ml: Arith Array Hydra_core List
