lib/circuits/wallace.mli: Hydra_core
