lib/circuits/mux.ml: Gates Hydra_core List
