lib/circuits/ecc.mli: Hydra_core
