lib/circuits/seq_extras.mli: Hydra_core
