lib/circuits/pipeline.mli: Hydra_core
