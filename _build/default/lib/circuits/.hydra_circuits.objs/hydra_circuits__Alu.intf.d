lib/circuits/alu.mli: Hydra_core
