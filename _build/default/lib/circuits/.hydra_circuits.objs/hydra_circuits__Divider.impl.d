lib/circuits/divider.ml: Arith Gates Hydra_core List Mux
