lib/circuits/gates.mli: Hydra_core
