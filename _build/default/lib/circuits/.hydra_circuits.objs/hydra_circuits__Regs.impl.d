lib/circuits/regs.ml: Arith Gates Hydra_core List Mux
