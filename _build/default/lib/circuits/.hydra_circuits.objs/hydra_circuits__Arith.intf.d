lib/circuits/arith.mli: Hydra_core
