lib/circuits/interconnect.mli: Hydra_core
