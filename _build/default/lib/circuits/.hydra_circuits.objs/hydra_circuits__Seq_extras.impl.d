lib/circuits/seq_extras.ml: Arith Gates Hydra_core List Mux Regs
