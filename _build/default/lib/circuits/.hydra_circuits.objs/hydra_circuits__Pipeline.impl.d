lib/circuits/pipeline.ml: Hydra_core List
