lib/circuits/cache.ml: Arith Gates Hydra_core List Mux Regs
