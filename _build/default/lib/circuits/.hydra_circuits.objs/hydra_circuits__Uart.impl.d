lib/circuits/uart.ml: Arith Gates Hydra_core List Mux
