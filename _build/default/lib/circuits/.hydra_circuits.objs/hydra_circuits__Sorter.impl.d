lib/circuits/sorter.ml: Arith Hydra_core Mux
