lib/circuits/mux.mli: Hydra_core
