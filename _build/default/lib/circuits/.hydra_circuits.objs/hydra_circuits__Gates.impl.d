lib/circuits/gates.ml: Hydra_core List
