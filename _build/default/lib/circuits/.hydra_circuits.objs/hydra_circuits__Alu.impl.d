lib/circuits/alu.ml: Arith Gates Hydra_core List Mux
