lib/circuits/arith_seq.mli: Hydra_core
