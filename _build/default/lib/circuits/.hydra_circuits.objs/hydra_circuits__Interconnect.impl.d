lib/circuits/interconnect.ml: Arith Gates Hydra_core List Mux Regs
