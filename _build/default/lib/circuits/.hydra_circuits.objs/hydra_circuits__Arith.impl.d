lib/circuits/arith.ml: Gates Hydra_core List Mux
