lib/circuits/ecc.ml: Gates Hydra_core List Mux
