lib/circuits/divider.mli: Hydra_core
