lib/circuits/uart.mli: Hydra_core
