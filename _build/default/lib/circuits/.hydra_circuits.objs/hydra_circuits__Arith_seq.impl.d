lib/circuits/arith_seq.ml: Arith Gates Hydra_core List Mux
