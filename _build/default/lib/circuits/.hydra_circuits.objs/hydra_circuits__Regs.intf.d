lib/circuits/regs.mli: Hydra_core
