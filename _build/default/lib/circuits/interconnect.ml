(* Interconnection circuits: crossbar and round-robin arbiter.

   The paper lists "banyans and butterflies, and other general
   interconnection patterns" among Hydra's pattern families; these are the
   switching-side counterparts: a full crossbar (any output selects any
   input) and the arbitration logic that shares one resource fairly among
   requesters. *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)
  module R = Regs.Make (S)

  (* [crossbar ~sel_bits inputs selects]: output j carries
     inputs[selects_j]; [selects] are sel_bits-wide words, [inputs] has
     2^sel_bits words.  Pure muxing: any permutation, broadcast
     included. *)
  let crossbar ~sel_bits inputs selects =
    if List.length inputs <> 1 lsl sel_bits then
      invalid_arg "Interconnect.crossbar: need 2^sel_bits inputs";
    List.map
      (fun sel ->
        if List.length sel <> sel_bits then
          invalid_arg "Interconnect.crossbar: select width";
        (* one word-level mux tree per output *)
        List.mapi
          (fun bit _ ->
            M.muxw sel (List.map (fun w -> List.nth w bit) inputs))
          (List.hd inputs))
      selects

  (* [priority_arbiter requests]: combinational fixed-priority grant —
     one-hot grant to the lowest-indexed active request. *)
  let priority_arbiter requests =
    let _, granted =
      Patterns.mscanl
        (fun req seen -> (or2 seen req, and2 req (inv seen)))
        zero requests
    in
    granted

  (* [round_robin requests]: sequential fair arbiter over a power-of-two
     number of requesters.  A pointer register remembers the last winner;
     priority rotates so the requester after the last winner is served
     first.  Exactly one grant per cycle when any request is up. *)
  let round_robin requests =
    let n = List.length requests in
    let k =
      let rec log2 acc m = if m <= 1 then acc else log2 (acc + 1) (m / 2) in
      log2 0 n
    in
    if n <> 1 lsl k then
      invalid_arg "Interconnect.round_robin: need a power-of-two requesters";
    let outs = ref None in
    let _ =
      feedback_list k (fun pointer ->
          (* rotate requests so position 0 is pointer+1 *)
          let rot_amount = A.incw pointer in
          (* rotate left by a variable amount: use the barrel rotator on
             the request word *)
          let rotated = A.rol_var rot_amount requests in
          let granted_rot = priority_arbiter rotated in
          (* rotate grants back right by the same amount = rotate left by
             n - amt *)
          let back = A.subw (G.wconst ~width:k 0) rot_amount in
          let granted = A.rol_var back granted_rot in
          let any = G.orw requests in
          (* next pointer: index of the winner (one-hot encode), held when
             idle *)
          let winner_idx = M.encode granted in
          let pointer' = M.wmux1 any pointer winner_idx in
          outs := Some (granted, any);
          List.map dff pointer')
    in
    match !outs with Some (granted, any) -> (granted, any) | None -> assert false
end
