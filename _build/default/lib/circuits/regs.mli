(** Sequential building blocks: registers (paper section 4.1), counters,
    shift registers, the recursive register file (paper section 5) and a
    structural RAM. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  val reg1 : S.t -> S.t -> S.t
  (** [reg1 ld x]: 1-bit register — a dff in a feedback loop behind a
      multiplexer; stores [x] at the tick when [ld] = 1, holds
      otherwise. *)

  val reg : S.t -> S.t list -> S.t list
  (** Word register: one [reg1] per bit. *)

  val reg1_init : bool -> S.t -> S.t -> S.t
  (** [reg1] with an explicit power-up value. *)

  val reg_init : bool list -> S.t -> S.t list -> S.t list

  val counter : int -> S.t -> S.t list
  (** [counter n en]: n-bit counter, increments (mod 2{^n}) when [en]. *)

  val counter_clear : int -> S.t -> S.t -> S.t list
  (** As {!counter} with a synchronous clear input (clear wins). *)

  val shift_reg : int -> S.t -> S.t list -> S.t -> S.t list
  (** [shift_reg n ld xs sin]: parallel-load left-shift register; when
      [ld] = 0 shifts left, taking [sin] into the lsb. *)

  val regfile1 :
    int -> S.t -> S.t list -> S.t list -> S.t list -> S.t -> S.t * S.t
  (** [regfile1 k ld d sa sb x]: 2{^k} one-bit registers with one write
      port and two read ports — the paper's recursion, verbatim.  [d],
      [sa], [sb] are k-bit addresses.  Returns the two read-outs. *)

  val regfile :
    int ->
    S.t ->
    S.t list ->
    S.t list ->
    S.t list ->
    S.t list ->
    S.t list * S.t list
  (** Word-level register file: one {!regfile1} per bit position with
      shared addresses (the paper's [regfile n k]). *)

  val ram1 : int -> S.t -> S.t list -> S.t -> S.t
  (** [ram1 k we addr x]: 2{^k} one-bit cells, single read/write port:
      continuously reads cell [addr]; writes [x] there at the tick when
      [we] = 1. *)

  val ram : int -> S.t -> S.t list -> S.t list -> S.t list
  (** Word-level single-port RAM. *)
end
