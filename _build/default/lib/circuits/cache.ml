(* A direct-mapped cache.

   The paper's processor "does not support cache or pipelining, but these
   features can be added" (section 6).  This is the cache building block:
   tag, valid and data arrays with combinational hit detection, a CPU port
   (lookup + write-allocate store) and a refill port for the miss handler.
   Integrating it in front of the processor's memory needs the stall
   machinery of {!Hydra_netlist.Transform.insert_stall}; here the circuit
   is validated standalone against a reference model.

   Address layout (MSB first): tag (t bits) ++ index (k bits); 2^k lines
   of one data word each.  Write policy: write-allocate — a CPU store
   updates the line and claims it (tag := addr's tag, valid := 1), so the
   line is immediately consistent for subsequent loads.  The environment
   is expected to also forward stores to the backing memory
   (write-through). *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)
  module R = Regs.Make (S)

  type ports = {
    hit : S.t;          (* the addressed line holds this address's data *)
    rdata : S.t list;   (* line contents (meaningful when hit) *)
    line_valid : S.t;   (* the addressed line is valid (any tag) *)
  }

  (* [cache ~tag_bits ~index_bits ~width ~req ~we ~addr ~wdata ~refill
     ~refill_addr ~refill_data].

     Per cycle:
     - lookup is combinational on [addr];
     - when [refill] = 1, the line indexed by [refill_addr] loads
       [refill_data] and its tag at the tick (the miss handler's port);
     - else when [req && we], the line indexed by [addr] loads [wdata]
       (write-allocate).

     The refill port has priority so the handler can never be starved. *)
  let cache ~tag_bits ~index_bits ~width ~req ~we ~addr ~wdata ~refill
      ~refill_addr ~refill_data =
    let abits = tag_bits + index_bits in
    if List.length addr <> abits then invalid_arg "Cache.cache: addr width";
    if List.length refill_addr <> abits then
      invalid_arg "Cache.cache: refill addr width";
    if List.length wdata <> width || List.length refill_data <> width then
      invalid_arg "Cache.cache: data width";
    let tag_of a = Patterns.split_at tag_bits a |> fst in
    let index_of a = Patterns.split_at tag_bits a |> snd in
    (* the write port: refill wins over CPU store *)
    let store = and2 req we in
    let write_en = or2 refill store in
    let waddr = M.wmux1 refill (index_of addr) (index_of refill_addr) in
    let wtag = M.wmux1 refill (tag_of addr) (tag_of refill_addr) in
    let wword = M.wmux1 refill wdata refill_data in
    (* arrays: regfile gives one write port and two read ports; we read at
       the lookup index on port a (port b unused -> reuse lookup index) *)
    let ridx = index_of addr in
    let data_out, _ = R.regfile index_bits write_en waddr ridx ridx wword in
    let tag_out, _ = R.regfile index_bits write_en waddr ridx ridx wtag in
    let valid_out, _ = R.regfile index_bits write_en waddr ridx ridx [ one ] in
    let line_valid = match valid_out with [ v ] -> v | _ -> assert false in
    let tag_match = A.eqw tag_out (tag_of addr) in
    let hit = G.and3 req line_valid tag_match in
    { hit; rdata = data_out; line_valid }
end
