(* A UART: serial transmitter and receiver with a compile-time baud
   divisor.

   Frame format: idle high, one start bit (0), eight data bits LSB first,
   one stop bit (1); every bit lasts [divisor] clock cycles.  The
   transmitter is a 10-bit shift register drained at baud rate; the
   receiver detects the start edge, waits one and a half bit times, and
   samples each data bit at its midpoint.  A TX wired to an RX with the
   same divisor round-trips bytes (property-tested). *)

module Patterns = Hydra_core.Patterns
module Bitvec = Hydra_core.Bitvec

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)

  let log2_ceil n =
    let rec go k = if 1 lsl k >= n then k else go (k + 1) in
    max 1 (go 0)

  type tx_outputs = { line : S.t; tx_busy : S.t }

  (* [tx ~divisor send data]: transmit [data] (8 bits, MSB-first word as
     usual) when [send] pulses while idle. *)
  let tx ~divisor send data =
    if divisor < 1 then invalid_arg "Uart.tx: divisor";
    if List.length data <> 8 then invalid_arg "Uart.tx: 8 data bits";
    let baud_bits = log2_ceil (divisor + 1) in
    let outs = ref None in
    (* state: shifter (10, MSB-first; the wire drives the lsb) +
       remaining-bit counter (4) + baud countdown + busy *)
    let _ =
      feedback_list
        (10 + 4 + baud_bits + 1)
        (fun loop ->
          let sh, rest = Patterns.split_at 10 loop in
          let bits, rest = Patterns.split_at 4 rest in
          let baud, busy_l = Patterns.split_at baud_bits rest in
          let busy = List.hd busy_l in
          let lsb = Patterns.last sh in
          let line = M.mux1 busy one lsb in
          let go = and2 send (inv busy) in
          (* frame as an MSB-first word whose lsb goes out first:
             [stop=1; d7..d0; start=0]; [data] is MSB-first d7..d0 *)
          let frame = (one :: data) @ [ zero ] in
          let tick = G.is_zero baud in
          let sh_shifted =
            one :: (Patterns.split_at 9 sh |> fst)
          in
          let sh_run = M.wmux1 tick sh sh_shifted in
          let bits_run = M.wmux1 tick bits (A.subw bits (G.wconst ~width:4 1)) in
          let baud_run =
            M.wmux1 tick
              (A.subw baud (G.wconst ~width:baud_bits 1))
              (G.wconst ~width:baud_bits (divisor - 1))
          in
          (* busy clears when the last bit's period ends *)
          let last_bit = A.eqw bits (G.wconst ~width:4 1) in
          let busy_run = and2 busy (inv (and2 tick last_bit)) in
          let sh' = M.wmux1 go (M.wmux1 busy sh sh_run) frame in
          let bits' =
            M.wmux1 go (M.wmux1 busy bits bits_run) (G.wconst ~width:4 10)
          in
          let baud' =
            M.wmux1 go
              (M.wmux1 busy baud baud_run)
              (G.wconst ~width:baud_bits (divisor - 1))
          in
          let busy' = M.mux1 go (and2 busy busy_run) one in
          outs := Some { line; tx_busy = busy };
          List.map dff (sh' @ bits' @ baud' @ [ busy' ]))
    in
    match !outs with Some o -> o | None -> assert false

  type rx_outputs = { data : S.t list; valid : S.t; rx_busy : S.t }

  (* [rx ~divisor line]: recover bytes from the serial line; [valid]
     pulses for one cycle when [data] holds a freshly received byte. *)
  let rx ~divisor line =
    if divisor < 1 then invalid_arg "Uart.rx: divisor";
    (* midpoint of the first data bit, counted from the cycle after the
       start edge; subsequent samples every [divisor] cycles *)
    let first_wait = divisor + (divisor / 2) - 1 in
    let cnt_bits = log2_ceil (first_wait + 1) in
    let outs = ref None in
    (* state: shift register (8) + sample countdown + remaining bits (4)
       + busy + valid + last line value (edge detector) *)
    let _ =
      feedback_list
        (8 + cnt_bits + 4 + 3)
        (fun loop ->
          let sr, rest = Patterns.split_at 8 loop in
          let cnt, rest = Patterns.split_at cnt_bits rest in
          let bits, rest = Patterns.split_at 4 rest in
          let busy, rest = (List.hd rest, List.tl rest) in
          let valid, rest = (List.hd rest, List.tl rest) in
          let last_line = List.hd rest in
          let falling = and2 last_line (inv line) in
          let start = and2 falling (inv busy) in
          let sample = and2 busy (G.is_zero cnt) in
          (* data arrives lsb first; shift right, new bit into the msb *)
          let sr_sampled = line :: (Patterns.split_at 7 sr |> fst) in
          let sr' = M.wmux1 sample sr sr_sampled in
          let last_bit = A.eqw bits (G.wconst ~width:4 1) in
          let finish = and2 sample last_bit in
          let cnt_dec = A.subw cnt (G.wconst ~width:cnt_bits 1) in
          let cnt_busy =
            M.wmux1 sample cnt_dec (G.wconst ~width:cnt_bits (divisor - 1))
          in
          let cnt' =
            M.wmux1 start
              (M.wmux1 busy cnt cnt_busy)
              (G.wconst ~width:cnt_bits first_wait)
          in
          let bits' =
            M.wmux1 start
              (M.wmux1 sample bits (A.subw bits (G.wconst ~width:4 1)))
              (G.wconst ~width:4 8)
          in
          let busy' = M.mux1 start (and2 busy (inv finish)) one in
          let valid' = finish in
          outs := Some { data = sr; valid; rx_busy = busy };
          List.map dff (sr' @ cnt' @ bits' @ [ busy'; valid'; line ]))
    in
    match !outs with Some o -> o | None -> assert false
end
