(* Sequential arithmetic: a shift-add multiplier and a digit-recurrence
   square root.

   Like the restoring divider, these are miniature datapath+control
   designs: an n-bit multiply costs n cycles with one adder instead of the
   O(n^2) gates of the combinational array, and the square root produces
   one result bit every cycle.  Both follow the divider's protocol: pulse
   [start] with the operands applied; [busy] covers the work; results hold
   until the next start. *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)

  let log2_ceil n =
    let rec go k = if 1 lsl k >= n then k else go (k + 1) in
    max 1 (go 0)

  (* --- sequential multiplier ------------------------------------------ *)

  type mult_outputs = { product : S.t list; mult_busy : S.t; mult_ready : S.t }

  (* [multiply n start x y]: unsigned n x n -> 2n-bit product in n cycles.
     Classic shift-add: the accumulator's high half conditionally adds the
     multiplicand, then (acc, q) shifts right, retiring one multiplier bit
     and one product bit per cycle. *)
  let multiply n start x y =
    if List.length x <> n || List.length y <> n then
      invalid_arg "Arith_seq.multiply: operand width";
    let cnt_bits = log2_ceil (n + 1) in
    let outs = ref None in
    (* state: acc_hi (n+1) + q (n) + m (multiplicand, n) + cnt + busy *)
    let _ =
      feedback_list
        ((n + 1) + n + n + cnt_bits + 1)
        (fun loop ->
          let acc, rest = Patterns.split_at (n + 1) loop in
          let q, rest = Patterns.split_at n rest in
          let m, rest = Patterns.split_at n rest in
          let cnt, busy_l = Patterns.split_at cnt_bits rest in
          let busy = List.hd busy_l in
          let q_lsb = Patterns.last q in
          (* conditional add into the high half *)
          let m_ext = zero :: m in
          let added = A.addw acc (M.wmux1 q_lsb (G.wzero ~width:(n + 1)) m_ext) in
          (* shift (added, q) right one: q gains added's lsb *)
          let acc_next =
            zero :: (Patterns.split_at n added |> fst)
          in
          let q_next = Patterns.last added :: (Patterns.split_at (n - 1) q |> fst) in
          let go = and2 start (inv busy) in
          let last_step = A.eqw cnt (G.wconst ~width:cnt_bits 1) in
          let acc' =
            M.wmux1 go (M.wmux1 busy acc acc_next) (G.wzero ~width:(n + 1))
          in
          let q' = M.wmux1 go (M.wmux1 busy q q_next) x in
          let m' = M.wmux1 go m y in
          let cnt' =
            M.wmux1 go
              (M.wmux1 busy cnt (A.subw cnt (G.wconst ~width:cnt_bits 1)))
              (G.wconst ~width:cnt_bits n)
          in
          let busy' = M.mux1 go (and2 busy (inv last_step)) one in
          (* product = acc low n bits ++ q *)
          let product = (Patterns.split_at 1 acc |> snd) @ q in
          outs := Some { product; mult_busy = busy; mult_ready = inv busy };
          List.map dff (acc' @ q' @ m' @ cnt' @ [ busy' ]))
    in
    match !outs with Some o -> o | None -> assert false

  (* --- sequential square root ----------------------------------------- *)

  type sqrt_outputs = { root : S.t list; sqrt_rem : S.t list; sqrt_busy : S.t }

  (* [sqrt n start x]: integer square root of an n-bit operand (n even) in
     n/2 cycles; [root] has n/2 bits, [sqrt_rem] holds x - root^2.

     Digit recurrence: each step brings down the next two operand bits,
     trial-subtracts (root << 2) | 1 and appends a result bit. *)
  let sqrt n start x =
    if n land 1 <> 0 then invalid_arg "Arith_seq.sqrt: width must be even";
    if List.length x <> n then invalid_arg "Arith_seq.sqrt: operand width";
    let half = n / 2 in
    let rw = half + 2 in
    let cnt_bits = log2_ceil (half + 1) in
    let outs = ref None in
    (* state: rem (rw) + root (half) + xs (n, consumed from the top) +
       cnt + busy *)
    let _ =
      feedback_list
        (rw + half + n + cnt_bits + 1)
        (fun loop ->
          let rem, rest = Patterns.split_at rw loop in
          let root, rest = Patterns.split_at half rest in
          let xs, rest = Patterns.split_at n rest in
          let cnt, busy_l = Patterns.split_at cnt_bits rest in
          let busy = List.hd busy_l in
          (* bring down two bits: rem' = rem << 2 | top two of xs *)
          let top2 = Patterns.split_at 2 xs |> fst in
          let rem_shift =
            (Patterns.split_at 2 rem |> snd) @ top2
          in
          (* trial = (root << 2) | 1, in rw bits: root occupies the middle *)
          let trial =
            (* rw = half + 2: [root; 0; 1] *)
            root @ [ zero; one ]
          in
          let cout, _, diff = A.add_sub one rem_shift trial in
          let fits = cout in
          let rem_next = M.wmux1 fits rem_shift diff in
          let root_next = List.tl root @ [ fits ] in
          let xs_next = (Patterns.split_at 2 xs |> snd) @ [ zero; zero ] in
          let go = and2 start (inv busy) in
          let last_step = A.eqw cnt (G.wconst ~width:cnt_bits 1) in
          let rem' =
            M.wmux1 go (M.wmux1 busy rem rem_next) (G.wzero ~width:rw)
          in
          let root' =
            M.wmux1 go (M.wmux1 busy root root_next) (G.wzero ~width:half)
          in
          let xs' = M.wmux1 go (M.wmux1 busy xs xs_next) x in
          let cnt' =
            M.wmux1 go
              (M.wmux1 busy cnt (A.subw cnt (G.wconst ~width:cnt_bits 1)))
              (G.wconst ~width:cnt_bits half)
          in
          let busy' = M.mux1 go (and2 busy (inv last_step)) one in
          outs := Some { root; sqrt_rem = rem; sqrt_busy = busy };
          List.map dff (rem' @ root' @ xs' @ cnt' @ [ busy' ]))
    in
    match !outs with Some o -> o | None -> assert false
end
