(** Hamming(7,4) error correction, plus the extended SECDED code.  The
    codeword layout is the classic [p1; p2; d1; p4; d2; d3; d4] with
    parity bits at the power-of-two positions. *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val encode : S.t list -> S.t list
  (** 4 data bits to a 7-bit codeword. *)

  val decode : S.t list -> S.t list * S.t
  (** [(corrected data, error_detected)]: corrects any single-bit error. *)

  val encode_secded : S.t list -> S.t list
  (** 4 data bits to 8 bits (overall parity appended). *)

  val decode_secded : S.t list -> S.t list * S.t * S.t
  (** [(data, single_error_corrected, double_error_detected)]. *)
end
