(* The processor's arithmetic/logic unit (paper section 6.1).

   The paper gives the ALU a 4-bit operation code [a;b;c;d] and says it
   "can perform addition, subtraction, and comparisons on two's complement
   numbers"; the control algorithm uses code 0000 for addition and 1100
   for incrementing the pc.  The full decoding implemented here is
   consistent with those two anchor points, and fills the remaining
   a=1,b=1 codes with bitwise logic (the kind of extension the paper's
   conclusion invites):

     a b c d
     0 0 . .   r = x + y             (alu_add)
     0 1 . .   r = x - y             (alu_sub)
     1 1 0 0   r = x + 1             (alu_inc)
     1 1 0 1   r = x and y           (alu_and)
     1 1 1 0   r = x or y            (alu_or)
     1 1 1 1   r = x xor y           (alu_xor)
     1 0 0 1   r = (x < y)           (signed; result in the lsb)
     1 0 1 0   r = (x = y)
     1 0 1 1   r = (x > y)

   Output is (overflow, r).  Overflow is the signed overflow of the
   arithmetic path (0 in comparison and logic modes). *)

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)

  let codes =
    [ ("add", 0b0000); ("sub", 0b0100); ("inc", 0b1100);
      ("and", 0b1101); ("or", 0b1110); ("xor", 0b1111);
      ("cmplt", 0b1001); ("cmpeq", 0b1010); ("cmpgt", 0b1011) ]

  let code_of_op name =
    match List.assoc_opt name codes with
    | Some c -> c
    | None -> invalid_arg ("Alu.code_of_op: " ^ name)

  let alu op x y =
    match op with
    | [ a; b; c; d ] ->
      let n = List.length x in
      (* Arithmetic path: operand = 0 for inc (with carry-in 1 via b),
         ~y for sub, y for add. *)
      let y_arith =
        M.wmux1 a (List.map (fun yi -> xor2 b yi) y) (G.wzero ~width:n)
      in
      let cout, sums = A.ripple_add b (List.combine x y_arith) in
      let ovfl =
        match (x, y_arith, sums) with
        | sx :: _, sy :: _, ss :: _ -> xor2 cout (G.xor3 sx sy ss)
        | _ -> invalid_arg "Alu.alu: empty word"
      in
      (* Comparison path. *)
      let lt = A.lt_signed x y in
      let eq = A.eqw x y in
      let gt = inv (or2 lt eq) in
      let cmp_bit = M.mux2 (c, d) zero lt eq gt in
      let cmp_word = G.wzero ~width:(n - 1) @ [ cmp_bit ] in
      (* Logic path (a=1, b=1): cd selects inc (via the arithmetic sums),
         and, or, xor. *)
      let abcd_word =
        M.wmux2 (c, d) sums (G.and2w x y) (G.or2w x y) (G.xor2w x y)
      in
      let arith_or_logic = M.wmux1 (and2 a b) sums abcd_word in
      let compare_mode = and2 a (inv b) in
      let logic_mode = G.and3 a b (or2 c d) in
      let r = M.wmux1 compare_mode arith_or_logic cmp_word in
      (G.and3 (inv compare_mode) (inv logic_mode) ovfl, r)
    | _ -> invalid_arg "Alu.alu: operation code must have 4 bits"
end
