(** Arithmetic circuits over MSB-first words: ripple and carry-lookahead
    adders (paper section 5 and O'Donnell–Ruenger's logarithmic adder),
    subtraction, comparison, variable shifts and an array multiplier. *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val half_add : S.t -> S.t -> S.t * S.t
  (** [(carry, sum)]. *)

  val full_add : S.t * S.t -> S.t -> S.t * S.t
  (** [full_add (x, y) cin = (carry, sum)] — the paper's ripple-adder
      building block, with exactly its interface. *)

  val ripple_add : S.t -> (S.t * S.t) list -> S.t * S.t list
  (** [ripple_add cin pairs = (cout, sums)]: the paper's one-liner
      [mscanr full_add]; carry enters at the least significant (rightmost)
      position. *)

  val ripple_add4 : S.t -> (S.t * S.t) list -> S.t * S.t list
  (** The paper's fully explicit 4-bit adder, kept verbatim so tests can
      prove it equal to the pattern version (experiment E6). *)

  val cla_add :
    ?network:Hydra_core.Patterns.prefix_network ->
    S.t ->
    (S.t * S.t) list ->
    S.t * S.t list
  (** Carry-lookahead adder: generate/propagate pairs combined by a
      parallel-prefix scan over the chosen [network] (default
      [Sklansky]) — logarithmic depth (experiment E11). *)

  val add_sub : S.t -> S.t list -> S.t list -> S.t * S.t * S.t list
  (** [add_sub sub xs ys = (cout, overflow, result)]: [xs + ys] when [sub]
      = 0, [xs - ys] (two's complement) when [sub] = 1. *)

  val addw : S.t list -> S.t list -> S.t list
  (** Addition modulo 2{^width}. *)

  val subw : S.t list -> S.t list -> S.t list

  val inc : S.t list -> S.t * S.t list
  (** [+1] via a half-adder chain; returns [(carry out, sums)]. *)

  val incw : S.t list -> S.t list
  val negw : S.t list -> S.t list

  val eqw : S.t list -> S.t list -> S.t
  val lt_unsigned : S.t list -> S.t list -> S.t
  val gt_unsigned : S.t list -> S.t list -> S.t
  val lt_signed : S.t list -> S.t list -> S.t
  val gt_signed : S.t list -> S.t list -> S.t

  val shl_var : ?fill:S.t -> S.t list -> S.t list -> S.t list
  (** [shl_var amount w]: barrel shifter — logarithmic stages of
      conditional fixed shifts; [amount] is a word (MSB first). *)

  val shr_var : ?fill:S.t -> S.t list -> S.t list -> S.t list
  val rol_var : S.t list -> S.t list -> S.t list

  val multw : S.t list -> S.t list -> S.t list
  (** Unsigned multiplier: n x n -> 2n bits (gated partial products summed
      by ripple adders). *)

  val sign_extend : width:int -> S.t list -> S.t list
  (** Replicate the sign bit up to [width]. *)

  val mult_signedw : S.t list -> S.t list -> S.t list
  (** Two's-complement multiplier: n x n -> 2n bits, exact. *)
end
