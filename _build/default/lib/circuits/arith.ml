(* Arithmetic circuits: adders (ripple and carry-lookahead in several
   prefix-network flavours), subtraction, negation, comparison, variable
   shifts and an array multiplier.

   Words are MSB-first ({!Hydra_core.Bitvec}); two's complement for signed
   operations.  The ripple adder is the paper's section 5 example —
   literally [mscanr full_add] — and the carry-lookahead family reproduces
   the logarithmic-time adder of O'Donnell & Ruenger [23]. *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)

  (* half_add x y = (carry, sum). *)
  let half_add x y = (and2 x y, xor2 x y)

  (* full_add (x, y) c = (carry, sum): the building block of the paper's
     ripple adder. *)
  let full_add (x, y) c =
    let p = xor2 x y in
    (or2 (and2 x y) (and2 c p), xor2 p c)

  (* ripple_add cin xys = (cout, sums): n-bit ripple-carry adder as a
     one-line design pattern application (paper section 5). *)
  let ripple_add cin xys = Patterns.mscanr full_add cin xys

  (* The paper's rippleAdd4: every component and signal named explicitly.
     Kept verbatim (modulo syntax) to demonstrate — and test — that the
     pattern-based version describes the same circuit. *)
  let ripple_add4 cin inputs =
    match inputs with
    | [ (x0, y0); (x1, y1); (x2, y2); (x3, y3) ] ->
      let c3, s3 = full_add (x3, y3) cin in
      let c2, s2 = full_add (x2, y2) c3 in
      let c1, s1 = full_add (x1, y1) c2 in
      let c0, s0 = full_add (x0, y0) c1 in
      (c0, [ s0; s1; s2; s3 ])
    | _ -> invalid_arg "Arith.ripple_add4: need exactly 4 bit pairs"

  (* Carry-lookahead adder.  Per-bit generate/propagate pairs are combined
     with the associative operator
       (g1,p1) . (g2,p2) = (g2 + p2 g1, p1 p2)
     (index 1 less significant); an inclusive parallel-prefix scan of
     [(cin,0); (g_0,p_0); ...] yields every carry in the depth of the
     chosen network. *)
  let cla_add ?(network = Patterns.Sklansky) cin xys =
    let gp_combine (g1, p1) (g2, p2) = (or2 g2 (and2 p2 g1), and2 p1 p2) in
    let lsb_first = List.rev xys in
    let gps = List.map (fun (x, y) -> (and2 x y, xor2 x y)) lsb_first in
    let scanned = Patterns.scan network gp_combine ((cin, zero) :: gps) in
    (* scanned_i = carry into bit i (LSB first); scanned_n = carry out. *)
    let carries = List.map fst scanned in
    let cin_per_bit, cout_l = Patterns.split_at (List.length gps) carries in
    let cout = match cout_l with [ c ] -> c | _ -> assert false in
    let sums_lsb = List.map2 (fun (_, p) c -> xor2 p c) gps cin_per_bit in
    (cout, List.rev sums_lsb)

  (* add_sub sub cin-free interface: computes x + y when sub = 0 and x - y
     when sub = 1 (two's complement: x + ~y + 1).  Returns
     (cout, overflow, result). *)
  let add_sub sub xs ys =
    let ys' = List.map (fun y -> xor2 sub y) ys in
    let cout, sums = ripple_add sub (List.combine xs ys') in
    (* signed overflow = carry into sign bit xor carry out of sign bit *)
    let carry_into_sign =
      match (xs, ys', sums) with
      | x :: _, y :: _, s :: _ -> G.xor3 x y s
      | _ -> invalid_arg "Arith.add_sub: empty word"
    in
    (cout, xor2 cout carry_into_sign, sums)

  let addw xs ys =
    let _, s = ripple_add zero (List.combine xs ys) in
    s

  let subw xs ys =
    let _, _, s = add_sub one xs ys in
    s

  (* inc xs = xs + 1, via a half-adder chain (cheaper than a full adder
     row). *)
  let inc xs =
    let cell x c = half_add x c in
    let cout, sums = Patterns.mscanr cell one xs in
    (cout, sums)

  let incw xs = snd (inc xs)

  (* neg xs = two's complement negation. *)
  let negw xs = incw (G.invw xs)

  (* Comparisons.  eqw is a tree of xnors; unsigned lt comes from the
     borrow of x - y; signed comparisons adjust for the sign bit. *)
  let eqw xs ys = G.all1 (List.map2 G.xnor2 xs ys)

  let lt_unsigned xs ys =
    let cout, _, _ = add_sub one xs ys in
    inv cout

  let gt_unsigned xs ys = lt_unsigned ys xs

  let lt_signed xs ys =
    match (xs, ys) with
    | sx :: _, sy :: _ ->
      let ltu = lt_unsigned xs ys in
      (* different signs: negative one is smaller; same sign: unsigned
         comparison is correct in two's complement *)
      M.mux1 (xor2 sx sy) ltu sx
    | _ -> invalid_arg "Arith.lt_signed: empty word"

  let gt_signed xs ys = lt_signed ys xs

  (* Variable shifters: logarithmic stages of conditional fixed shifts,
     amount given as a word (MSB first); fill with [fill]. *)
  let shift_stages ~shift1 amount w =
    let k = List.length amount in
    let stage i w bit =
      let shifted = Patterns.iterate_n (1 lsl (k - 1 - i)) shift1 w in
      M.wmux1 bit w shifted
    in
    List.fold_left
      (fun (i, w) bit -> (i + 1, stage i w bit))
      (0, w) amount
    |> snd

  let shl_var ?(fill = zero) amount w =
    let shift1 w = List.tl w @ [ fill ] in
    shift_stages ~shift1 amount w

  let shr_var ?(fill = zero) amount w =
    let n = List.length w in
    let shift1 w =
      let body, _ = Patterns.split_at (n - 1) w in
      fill :: body
    in
    shift_stages ~shift1 amount w

  let rol_var amount w =
    let shift1 w = List.tl w @ [ List.hd w ] in
    shift_stages ~shift1 amount w

  (* Sign extension: replicate the sign bit. *)
  let sign_extend ~width w =
    match w with
    | [] -> invalid_arg "Arith.sign_extend: empty word"
    | sign :: _ ->
      let k = width - List.length w in
      if k < 0 then invalid_arg "Arith.sign_extend: narrower than input";
      List.init k (fun _ -> sign) @ w

  (* Unsigned array multiplier: n x n -> 2n bits, a triangle of gated
     partial products summed by ripple adders. *)
  let multw xs ys =
    let n = List.length xs in
    let width = 2 * n in
    let zero_word = G.wzero ~width in
    let x_ext = G.wzero ~width:n @ xs in
    (* accumulate (partial sum, shifted multiplicand) over multiplier bits,
       LSB first *)
    let _, acc =
      List.fold_left
        (fun (shifted_x, acc) ybit ->
          let addend = G.gatew ybit shifted_x in
          let acc' = addw acc addend in
          let shifted_x' = List.tl shifted_x @ [ zero ] in
          (shifted_x', acc'))
        (x_ext, zero_word)
        (List.rev ys)
    in
    acc

  (* Signed (two's complement) multiplier: sign-extend both operands to 2n
     bits and keep the low 2n bits of the unsigned product — exact for the
     2n-bit signed result. *)
  let mult_signedw xs ys =
    let n = List.length xs in
    let width = 2 * n in
    let xe = sign_extend ~width xs and ye = sign_extend ~width ys in
    let p = multw xe ye in
    (* low 2n bits of the 4n-bit product *)
    Hydra_core.Bitvec.field p width width
end
