(* Further sequential building blocks: LFSR, Gray-code counter, and a
   register-based FIFO.  All built from the same primitive set, so they
   work at every semantics, and each demonstrates a different feedback
   shape (xor feedback, registered decode, circular buffers). *)

module Patterns = Hydra_core.Patterns

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)
  module A = Arith.Make (S)
  module R = Regs.Make (S)

  (* Fibonacci LFSR with the given tap positions (0 = msb); powers up to
     the all-ones state via dff_init (the all-zero state is the lock-up
     state for xor feedback).  [en] gates stepping. *)
  let lfsr ~taps n en =
    if n < 2 then invalid_arg "Seq_extras.lfsr: width";
    List.iter
      (fun t -> if t < 0 || t >= n then invalid_arg "Seq_extras.lfsr: tap")
      taps;
    feedback_list n (fun s ->
        let tapped = List.filteri (fun i _ -> List.mem i taps) s in
        let fb = G.xorw tapped in
        let shifted = List.tl s @ [ fb ] in
        let next = M.wmux1 en s shifted in
        List.map (dff_init true) next)

  (* Gray-code counter: a binary counter recoded through
     {!Gates.binary_to_gray}; successive outputs differ in exactly one
     bit. *)
  let gray_counter n en =
    let count = R.counter n en in
    G.binary_to_gray count

  (* Synchronous FIFO with 2^k entries of [width] bits.

     Inputs: push, pop, and the data word in.  Outputs: (data out = head
     entry, empty, full).  Push when full and pop when empty are ignored.
     Built from a register-file storage array and two pointers plus a
     counter — the classic circular-buffer design. *)
  type fifo_outputs = { out : t list; empty : t; full : t }

  let fifo ~k ~width push pop data_in =
    if List.length data_in <> width then
      invalid_arg "Seq_extras.fifo: data width mismatch";
    (* occupancy counter needs k+1 bits to distinguish empty from full *)
    let depth_bits = k + 1 in
    let outs = ref None in
    let _ =
      feedback_list
        ((2 * k) + depth_bits)
        (fun loop ->
          let wptr, rest = Patterns.split_at k loop in
          let rptr, count = Patterns.split_at k rest in
          let empty = G.is_zero count in
          let full =
            A.eqw count (G.wconst ~width:depth_bits (1 lsl k))
          in
          let do_push = and2 push (inv full) in
          let do_pop = and2 pop (inv empty) in
          (* storage: one write port at wptr; read at rptr *)
          let a, _b = R.regfile k do_push wptr rptr rptr data_in in
          let next_w = M.wmux1 do_push wptr (A.incw wptr) in
          let next_r = M.wmux1 do_pop rptr (A.incw rptr) in
          (* count' = count + push - pop *)
          let inc_c = A.incw count in
          let dec_c = A.subw count (G.wconst ~width:depth_bits 1) in
          let next_c =
            M.wmux1
              (xor2 do_push do_pop)
              count
              (M.wmux1 do_push dec_c inc_c)
          in
          outs := Some { out = a; empty; full };
          List.map dff (next_w @ next_r @ next_c))
    in
    match !outs with Some o -> o | None -> assert false
end
