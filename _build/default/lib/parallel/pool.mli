(** A reusable domain pool with a chunk-stealing [parallel_for] — the
    substrate for parallel circuit simulation (paper section 4.3).

    The calling domain participates in every [parallel_for], so a pool of
    size [n] spawns [n - 1] worker domains. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of total parallelism [domains]
    (default: [Domain.recommended_domain_count], capped at 8). *)

val size : t -> int
(** Total parallelism, caller included. *)

val parallel_for : ?chunk:int -> t -> int -> int -> (int -> unit) -> unit
(** [parallel_for t lo hi f] runs [f i] for every [lo <= i < hi], possibly
    concurrently, and returns once all are done (a barrier).  [f] must be
    safe to run concurrently for distinct [i].  Small ranges run inline.
    The first exception raised by [f] (if any) is re-raised in the
    caller. *)

val parallel_sum : t -> int -> int -> (int -> int) -> int
(** Parallel sum of [f i] over the range. *)

val shutdown : t -> unit
(** Join all workers.  The pool must not be used afterwards. *)

val default_domains : unit -> int
