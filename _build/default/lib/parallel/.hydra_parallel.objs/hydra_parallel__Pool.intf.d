lib/parallel/pool.mli:
