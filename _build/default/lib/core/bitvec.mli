(** Boolean words and numeric conversions.

    Words are most-significant-bit-first lists, matching the paper's
    indexing ([field ir 0 4] is the opcode nibble of a 16-bit instruction
    word). *)

val to_int : bool list -> int
(** Unsigned value of a word (MSB first).  Width ≤ 62. *)

val of_int : width:int -> int -> bool list
(** [of_int ~width n] is the low [width] bits of [n], MSB first. *)

val to_signed_int : bool list -> int
(** Two's-complement value of a word. *)

val of_signed_int : width:int -> int -> bool list
(** Two's-complement encoding of [n] in [width] bits. *)

val field : 'a list -> int -> int -> 'a list
(** [field w pos len]: the [len] elements of [w] starting at index [pos]
    (the paper's [field]).  Raises [Invalid_argument] when out of range. *)

val to_string : bool list -> string
(** Word as a string of ['0']/['1'], MSB first. *)

val of_string : string -> bool list
(** Inverse of {!to_string}. *)

val to_hex : bool list -> string
(** Word as hex digits (left-padded with zero bits to a nibble). *)

val columns : 'a list list -> 'a list list
(** Transpose per-cycle rows of words into per-bit streams. *)
