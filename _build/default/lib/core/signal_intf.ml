(* Module types for Hydra signals.

   A circuit is an OCaml function (usually produced by a functor) from
   signals to signals.  The same circuit text can be instantiated at each of
   the signal semantics provided by this library:

   - {!Bit} : signal = [bool], instantaneous combinational evaluation
   - {!Stream_sim} : signal = stream of values, synchronous simulation
   - {!Depth} : signal = path depth, timing analysis
   - {!Graph} : signal = graph node, netlist generation

   This is the OCaml rendering of Hydra's overloaded semantics (paper
   section 4): Haskell type classes become module types, and Haskell's lazy
   knot-tying for feedback becomes the explicit [feedback] combinators
   (equivalent to the [label] annotations of Hydra'92). *)

(** Combinational signals: constants and logic gates, no state.

    The primitive gate set is deliberately minimal ([inv], [and2], [or2],
    [xor2]); everything else is derived in {!Hydra_circuits.Gates} so that
    every semantics only has to interpret five operations. *)
module type COMB = sig
  type t
  (** A signal.  What a signal {e is} depends on the semantics. *)

  val zero : t
  (** The constant 0 signal. *)

  val one : t
  (** The constant 1 signal. *)

  val constant : bool -> t
  (** [constant b] is {!zero} or {!one} according to [b]. *)

  val inv : t -> t
  (** Inverter: output is the logical negation of the input. *)

  val and2 : t -> t -> t
  (** Two-input and gate. *)

  val or2 : t -> t -> t
  (** Two-input or gate. *)

  val xor2 : t -> t -> t
  (** Two-input exclusive-or gate. *)

  val label : string -> t -> t
  (** [label name s] is [s], annotated with [name].  Semantics that build
      structure (netlists) record the name; executable semantics ignore
      it. *)
end

(** Clocked signals: combinational signals plus the delay flip flop and
    feedback.  This corresponds to the paper's [Clocked] class. *)
module type CLOCKED = sig
  include COMB

  val dff : t -> t
  (** Delay flip flop.  The input during clock cycle [i] becomes the output
      during cycle [i+1]; the output during cycle 0 is the power-up value 0
      (the paper's [dff0]). *)

  val dff_init : bool -> t -> t
  (** [dff_init init x] is a delay flip flop whose power-up value is
      [init]. *)

  val feedback : (t -> t) -> t
  (** [feedback f] ties a feedback knot: it is the unique signal [s] with
      [s = f s].  The loop must pass through at least one {!dff} to be well
      founded; purely combinational loops are a design error (simulation
      raises, netlist levelization reports them).

      This combinator plays the role of Haskell's recursive signal
      equations ([let s = dff (mux1 ld s x)] in the paper): OCaml's
      [let rec] cannot tie knots through function applications, so the
      sharing is made explicit, exactly like Hydra'92's [label]. *)

  val feedback_list : int -> (t list -> t list) -> t list
  (** [feedback_list k f] ties [k] feedback knots at once: it is the word
      [w] of length [k] with [w = f w].  [f] must return a list of length
      [k]. *)
end
