(** Path-depth semantics: timing analysis by execution (paper section 4.5).

    A signal is its path depth — the number of gate delays after the start
    of a clock cycle at which it becomes valid.  Instantiating a circuit at
    this semantics and applying it to depth-0 inputs computes the depth of
    every output; dff inputs, gate counts and dff counts are accumulated on
    the side so that one run yields a full static report. *)

include Signal_intf.CLOCKED with type t = int

type report = { critical_path : int; gates : int; dff_count : int }

val input : t
(** An input signal: valid at the start of the cycle, depth 0. *)

val reset : unit -> unit
(** Clear the accumulated maximum dff-input depth and the gate/dff
    counters.  Call before analysing a fresh circuit (done by
    {!analyze}). *)

val report : t list -> report
(** [report outputs] is the report for the circuit built since the last
    {!reset}: the critical path is the maximum of the output depths and of
    every depth seen at a dff input. *)

val analyze : inputs:int -> (t list -> t list) -> report
(** [analyze ~inputs circuit] resets, applies [circuit] to [inputs]
    depth-0 input signals, and reports. *)
