(** Graph semantics: a signal is a node in a circuit graph (paper section
    4.4).  Executing a circuit at this instance yields a graph isomorphic
    to the schematic; {!Hydra_netlist} flattens it to a netlist. *)

type t = { id : int; mutable def : def; mutable names : string list }

and def =
  | Input of string
  | Const of bool
  | Inv of t
  | And2 of t * t
  | Or2 of t * t
  | Xor2 of t * t
  | Dff of bool * t
  | Forward of t option ref
      (** A feedback knot created by {!feedback}; resolved after the loop
          body has been applied. *)

include Signal_intf.CLOCKED with type t := t

val input : string -> t
(** A named circuit input port. *)

val inputs_list : string list -> t list
(** One input per name. *)

val resolve : t -> t
(** Follow {!Forward} references to the real node.  Raises [Failure] on an
    unpatched loop. *)

val id : t -> int
(** Unique id of the resolved node. *)

val name : t -> string option
(** Most recent {!label} attached to the resolved node, if any. *)

val children : t -> t list
(** Argument nodes of the resolved node (empty for inputs and constants),
    themselves resolved. *)
