(** Bit-parallel combinational semantics: a signal is a machine word
    carrying {!lanes} independent simulation runs, so one pass of a
    circuit evaluates it on up to 62 input vectors at once. *)

include Signal_intf.COMB with type t = int

val lanes : int
(** Number of parallel lanes (62: OCaml ints keep a tag bit and we keep
    the sign bit clear). *)

val lane_mask : int
(** All lanes set. *)

val pack : bool list -> t
(** Pack per-lane values; element 0 goes to lane 0. *)

val lane : t -> int -> bool
(** Extract one lane. *)

val unpack : count:int -> t -> bool list
(** First [count] lanes. *)

val enumerate : inputs:int -> (t list * int) list
(** [enumerate ~inputs] packs all [2^inputs] input assignments into
    passes: each element is (one packed word per input variable, number of
    valid lanes).  Lane [l] of pass words holds one assignment; the
    assignment ordering matches {!Bit.vectors} (variable 0 is the MSB of
    the vector index).  Raises for more than 24 inputs. *)
