(* Bit-parallel combinational semantics: a signal is a machine word
   carrying up to [lanes] independent simulation runs at once.

   Executing a circuit once on packed signals evaluates it on 62 test
   vectors simultaneously — the classic trick for fast exhaustive or
   random testing of combinational logic (paper section 4.2 argues
   simulation is the practical workhorse; this makes it 62x wider per
   gate operation). *)

type t = int

let lanes = 62  (* OCaml ints are 63-bit; keep the sign bit clear *)
let lane_mask = (1 lsl lanes) - 1

let zero = 0
let one = lane_mask
let constant b = if b then one else zero
let inv a = lnot a land lane_mask
let and2 a b = a land b
let or2 a b = a lor b
let xor2 a b = a lxor b
let label _ s = s

(* Pack per-lane booleans (lane 0 = least significant bit). *)
let pack bs =
  List.fold_left (fun (acc, i) b -> ((if b then acc lor (1 lsl i) else acc), i + 1)) (0, 0) bs
  |> fst

let lane v i = (v lsr i) land 1 = 1
let unpack ~count v = List.init count (lane v)

(* All input assignments for [inputs] variables, packed into ceil(2^inputs
   / lanes) passes: [enumerate ~inputs] returns a list of (input words,
   valid lane count) pairs; input word [j] carries variable j's value in
   each lane. *)
let enumerate ~inputs =
  if inputs > 24 then invalid_arg "Packed.enumerate: too many inputs";
  let total = 1 lsl inputs in
  let rec passes start acc =
    if start >= total then List.rev acc
    else begin
      let count = min lanes (total - start) in
      let words =
        List.init inputs (fun j ->
            let w = ref 0 in
            for l = 0 to count - 1 do
              (* vector index start+l, variable j; MSB-first convention to
                 match Bit.vectors *)
              if (start + l) lsr (inputs - 1 - j) land 1 = 1 then
                w := !w lor (1 lsl l)
            done;
            !w)
      in
      passes (start + count) ((words, count) :: acc)
    end
  in
  passes 0 []
