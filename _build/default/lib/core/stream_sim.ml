(* Synchronous stream simulation semantics.

   The paper models a signal as the infinite stream of its values, one per
   clock cycle, and simulates by mapping logic functions over streams
   (section 4.2).  Here a signal is a memoized cycle-indexed function
   [int -> bool].  Memoization uses a two-slot ring buffer indexed by cycle
   parity: a [dff] only ever looks one cycle back, so when the {!run}
   driver advances cycle by cycle every lookup hits the cache and a whole
   simulation costs O(gates) work and O(1) memory per signal per cycle.

   Demand-driven access ([at s t] for arbitrary [t]) remains correct — a
   cache miss just recomputes, recursing through dffs back towards cycle 0
   — but can be asymptotically slower; use {!run} for long simulations.

   Combinational cycles are detected with an in-progress marker: a signal
   that demands its own value at the same cycle while being computed raises
   {!Combinational_cycle}.  (The marker can be clobbered by an interleaved
   demand at an older cycle, which only arises through a dff and therefore
   never hides a genuine combinational loop.) *)

exception Combinational_cycle of string

type slot = Empty | Computing of int | Known of int * bool

type t = {
  id : int;
  mutable name : string;
  mutable slot0 : slot;
  mutable slot1 : slot;
  f : t -> int -> bool;
}

let counter = ref 0

let make ?(name = "") f =
  incr counter;
  { id = !counter; name; slot0 = Empty; slot1 = Empty; f }

let at s cycle =
  if cycle < 0 then invalid_arg "Stream_sim.at: negative cycle";
  let stored = if cycle land 1 = 0 then s.slot0 else s.slot1 in
  match stored with
  | Known (c, v) when c = cycle -> v
  | Computing c when c = cycle ->
    let who = if s.name = "" then Printf.sprintf "signal #%d" s.id else s.name in
    raise (Combinational_cycle who)
  | Empty | Computing _ | Known _ ->
    let set sl = if cycle land 1 = 0 then s.slot0 <- sl else s.slot1 <- sl in
    set (Computing cycle);
    let v = s.f s cycle in
    set (Known (cycle, v));
    v

(* Registry of all dffs created since the last [reset]: the [run] driver
   forces each of them every cycle so that the two-slot cache never misses
   on the frontier.  See the module comment. *)
let dffs : t list ref = ref []

let reset () =
  dffs := [];
  counter := 0

(* Constructors --------------------------------------------------------- *)

let constant b = make ~name:(if b then "one" else "zero") (fun _ _ -> b)
let zero = constant false
let one = constant true

let inv a = make (fun _ t -> not (at a t))
let and2 a b = make (fun _ t -> at a t && at b t)
let or2 a b = make (fun _ t -> at a t || at b t)
let xor2 a b = make (fun _ t -> at a t <> at b t)

let label name s =
  s.name <- name;
  s

let dff_init init x =
  let d = make (fun _ t -> if t = 0 then init else at x (t - 1)) in
  dffs := d :: !dffs;
  d

let dff x = dff_init false x

let feedback f =
  let fwd = ref None in
  let s =
    make (fun _ t ->
        match !fwd with
        | Some out -> at out t
        | None -> failwith "Stream_sim.feedback: loop signal forced during construction")
  in
  let out = f s in
  fwd := Some out;
  out

let feedback_list k f =
  let fwds = Array.init k (fun _ -> ref None) in
  let make_loop r =
    make (fun _ t ->
        match !r with
        | Some out -> at out t
        | None ->
          failwith "Stream_sim.feedback_list: loop signal forced during construction")
  in
  let loops = Array.to_list (Array.map make_loop fwds) in
  let outs = f loops in
  if List.length outs <> k then invalid_arg "Stream_sim.feedback_list: wrong width";
  List.iteri (fun i out -> fwds.(i) := Some out) outs;
  outs

(* Inputs --------------------------------------------------------------- *)

let input ?(name = "") f = make ~name (fun _ t -> f t)

let of_list ?(default = false) vs =
  let arr = Array.of_list vs in
  let n = Array.length arr in
  input (fun t -> if t < n then arr.(t) else default)

let of_fun = input

(* Drivers -------------------------------------------------------------- *)

let run_cycle outputs cycle =
  List.iter (fun d -> ignore (at d cycle)) !dffs;
  List.map (fun s -> at s cycle) outputs

let run ~cycles outputs =
  List.init cycles (fun t -> run_cycle outputs t)

let simulate ~inputs ?cycles circuit =
  reset ();
  let cycles =
    match cycles with
    | Some c -> c
    | None ->
      List.fold_left (fun acc l -> max acc (List.length l)) 0 inputs
  in
  let ins = List.map (fun l -> of_list l) inputs in
  let outs = circuit ins in
  run ~cycles outs
