(* Instantaneous boolean semantics: a signal is a [bool].

   Applying a combinational circuit to booleans evaluates it on one input
   vector.  This is the simplest executable semantics and the reference
   against which the others are tested.  It implements only {!COMB}: a
   [dff] has no meaning for a single instant. *)

type t = bool

let zero = false
let one = true
let constant b = b
let inv a = not a
let and2 a b = a && b
let or2 a b = a || b
let xor2 a b = a <> b
let label _name s = s

(* Truth-table helpers. *)

let rec vectors n =
  if n = 0 then [ [] ]
  else
    let rest = vectors (n - 1) in
    List.map (fun v -> false :: v) rest @ List.map (fun v -> true :: v) rest

let truth_table ~inputs (circuit : t list -> t list) =
  List.map (fun v -> (v, circuit v)) (vectors inputs)

let equal_circuits ~inputs f g =
  List.for_all (fun v -> f v = g v) (vectors inputs)
