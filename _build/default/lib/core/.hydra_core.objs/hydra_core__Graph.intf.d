lib/core/graph.mli: Signal_intf
