lib/core/bitvec.ml: Bool List Patterns Printf String
