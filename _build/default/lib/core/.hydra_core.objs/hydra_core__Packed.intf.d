lib/core/packed.mli: Signal_intf
