lib/core/ternary.ml: List String
