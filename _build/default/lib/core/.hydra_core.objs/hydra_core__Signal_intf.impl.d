lib/core/signal_intf.ml:
