lib/core/bit.ml: List
