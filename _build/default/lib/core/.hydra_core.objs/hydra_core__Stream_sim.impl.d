lib/core/stream_sim.ml: Array List Printf
