lib/core/depth.ml: List
