lib/core/bit.mli: Signal_intf
