lib/core/patterns.ml: Array List
