lib/core/ternary.mli: Signal_intf
