lib/core/stream_sim.mli: Signal_intf
