lib/core/depth.mli: Signal_intf
