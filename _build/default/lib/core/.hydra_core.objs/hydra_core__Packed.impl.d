lib/core/packed.ml: List
