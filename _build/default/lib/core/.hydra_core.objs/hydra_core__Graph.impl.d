lib/core/graph.ml: Array List
