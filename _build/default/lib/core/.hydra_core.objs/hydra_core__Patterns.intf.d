lib/core/patterns.mli:
