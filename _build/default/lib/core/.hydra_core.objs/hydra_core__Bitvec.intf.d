lib/core/bitvec.mli:
