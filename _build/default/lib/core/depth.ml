(* Path-depth semantics: a signal is the number of gate delays after the
   start of a clock cycle at which it becomes valid (paper sections 3 and
   4.5).

   Inputs and dff outputs are valid at the start of the cycle (depth 0); a
   gate output is valid one delay after its latest input.  Applying a
   circuit to this instance therefore computes, per output, its path depth;
   the critical path of the whole circuit is the maximum over all outputs
   and all dff inputs, which this module accumulates as the circuit is
   built.  Gate and flip-flop counts are accumulated at the same time, so
   one instantiation yields a complete static timing/size report.

   Purely combinational feedback cannot be detected at this semantics
   ([feedback] hands the loop body a depth-0 signal); use
   {!Hydra_netlist.Levelize} on the graph semantics for structural cycle
   detection. *)

type t = int

type report = {
  critical_path : int;  (* max gate delays between clock ticks *)
  gates : int;          (* inv/and2/or2/xor2 count *)
  dff_count : int;
}

let max_dff_input = ref 0
let gate_count = ref 0
let dff_total = ref 0

let reset () =
  max_dff_input := 0;
  gate_count := 0;
  dff_total := 0

let zero = 0
let one = 0
let constant _ = 0
let input = 0

let gate1 a =
  incr gate_count;
  a + 1

let gate2 a b =
  incr gate_count;
  1 + max a b

let inv a = gate1 a
let and2 a b = gate2 a b
let or2 a b = gate2 a b
let xor2 a b = gate2 a b
let label _ s = s

let dff_init _init x =
  incr dff_total;
  if x > !max_dff_input then max_dff_input := x;
  0

let dff x = dff_init false x
let feedback f = f 0
let feedback_list k f = f (List.init k (fun _ -> 0))

let report outputs =
  let out_max = List.fold_left max 0 outputs in
  {
    critical_path = max out_max !max_dff_input;
    gates = !gate_count;
    dff_count = !dff_total;
  }

let analyze ~inputs circuit =
  reset ();
  report (circuit (List.init inputs (fun _ -> input)))
