(** Instantaneous boolean semantics: a signal is a [bool].

    Applying a combinational circuit (built generically over
    {!Signal_intf.COMB}) to this instance evaluates it on one input vector.
    Sequential circuits cannot be expressed here — there is no [dff]. *)

include Signal_intf.COMB with type t = bool

val vectors : int -> bool list list
(** [vectors n] is all [2^n] input vectors of width [n], in increasing
    numeric order when a vector is read most-significant-bit first. *)

val truth_table :
  inputs:int -> (t list -> t list) -> (bool list * bool list) list
(** [truth_table ~inputs circuit] evaluates [circuit] on every input vector
    of width [inputs] and returns [(input, output)] rows. *)

val equal_circuits : inputs:int -> (t list -> t list) -> (t list -> t list) -> bool
(** Exhaustive equivalence of two combinational circuits over all [2^inputs]
    input vectors. *)
