(** Synchronous stream simulation semantics.

    A signal is conceptually the infinite stream of its values, one per
    clock cycle (paper section 4.2); concretely a memoized cycle-indexed
    function.  Feedback through a {!dff} is well founded: the value at
    cycle [i] depends only on values at cycle [i-1]. *)

exception Combinational_cycle of string
(** Raised when evaluating a signal demands its own value within the same
    clock cycle — a combinational feedback loop, which the synchronous
    model forbids (paper section 3). *)

include Signal_intf.CLOCKED

val at : t -> int -> bool
(** [at s cycle] is the value of [s] during clock cycle [cycle] (0-based).
    Arbitrary access is correct but may recompute; drive long simulations
    with {!run} or {!simulate}, which advance cycle by cycle and keep every
    lookup cached. *)

val input : ?name:string -> (int -> bool) -> t
(** [input f] is an input signal whose value during cycle [t] is [f t]. *)

val of_list : ?default:bool -> bool list -> t
(** [of_list vs] is an input signal carrying the successive elements of
    [vs], then [default] (default [false]) forever after. *)

val of_fun : ?name:string -> (int -> bool) -> t
(** Alias of {!input}. *)

val reset : unit -> unit
(** Forget all delay flip flops registered so far.  Call before building a
    fresh circuit when reusing the module across independent simulations
    (done automatically by {!simulate}). *)

val run_cycle : t list -> int -> bool list
(** [run_cycle outputs t] forces every registered dff and each output at
    cycle [t] and returns the output values.  Call with increasing [t]. *)

val run : cycles:int -> t list -> bool list list
(** [run ~cycles outputs] simulates cycles [0 .. cycles-1] and returns one
    row of output values per cycle. *)

val simulate :
  inputs:bool list list -> ?cycles:int -> (t list -> t list) -> bool list list
(** [simulate ~inputs circuit] resets the module, builds one input signal
    per list in [inputs] (padded with [false]), applies [circuit], and runs
    for [cycles] (default: the longest input list).  Returns one row of
    output values per cycle. *)
