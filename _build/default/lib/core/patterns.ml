(* Design patterns: higher-order combinators describing how to replicate a
   building-block circuit and connect the copies in a regular structure
   (paper section 5).

   These are ordinary polymorphic functions on lists — not language
   constructs — so they work at every signal semantics, and designers can
   define new ones.  The library covers the families the paper names:
   linear organisations ([mscanr], [mscanl], scans), trees ([tree_fold],
   the parallel-prefix networks), butterflies and banyans, and grids
   ([mesh]). *)

(* Word utilities ------------------------------------------------------- *)

let split_at n xs =
  let rec go n acc xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> invalid_arg "Patterns.split_at"
      | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

let halve xs =
  let n = List.length xs in
  if n land 1 <> 0 then invalid_arg "Patterns.halve: odd length";
  split_at (n / 2) xs

let rec pairup = function
  | [] -> []
  | [ _ ] -> invalid_arg "Patterns.pairup: odd length"
  | a :: b :: rest -> (a, b) :: pairup rest

let unpair ps = List.concat_map (fun (a, b) -> [ a; b ]) ps

(* [riffle] interleaves the two halves of a word like a perfect card
   shuffle: riffle [a0;a1;b0;b1] = [a0;b0;a1;b1].  [unriffle] inverts. *)
let riffle xs =
  let lo, hi = halve xs in
  unpair (List.combine lo hi)

let unriffle xs =
  let lo, hi = List.split (pairup xs) in
  lo @ hi

let rec chunks k = function
  | [] -> []
  | xs ->
    let c, rest = split_at (min k (List.length xs)) xs in
    c :: chunks k rest

let last xs =
  match List.rev xs with [] -> invalid_arg "Patterns.last" | x :: _ -> x

let iterate_n n f x =
  let rec go n acc = if n = 0 then acc else go (n - 1) (f acc) in
  if n < 0 then invalid_arg "Patterns.iterate_n" else go n x

let transpose rows =
  match rows with
  | [] -> []
  | first :: _ ->
    List.mapi (fun i _ -> List.map (fun row -> List.nth row i) rows) first

(* Linear patterns ------------------------------------------------------ *)

(* [mscanr f a xs]: a row of [f] cells where the carry enters the
   rightmost cell as [a] and flows right-to-left; cell [i] receives data
   input [xs_i] and the carry from its right neighbour, and produces its
   data output and the carry for its left neighbour.  The overall result is
   (carry out of the leftmost cell, list of data outputs).  This is the
   paper's [mscanr]; [mscanr full_add] is an n-bit ripple-carry adder. *)
let rec mscanr f a = function
  | [] -> (a, [])
  | x :: xs ->
    let a', ys = mscanr f a xs in
    let a'', y = f x a' in
    (a'', y :: ys)

(* [mscanl]: mirror image — the carry enters at the left and flows
   left-to-right. *)
let rec mscanl f a = function
  | [] -> (a, [])
  | x :: xs ->
    let a1, y = f x a in
    let a', ys = mscanl f a1 xs in
    (a', y :: ys)

(* [ascanr f a xs]: inclusive scan from the right;
   result_i = f xs_i (f xs_(i+1) (... (f xs_(k-1) a))). *)
let rec ascanr f a = function
  | [] -> []
  | [ x ] -> [ f x a ]
  | x :: xs ->
    let ys = ascanr f a xs in
    (match ys with
     | y :: _ -> f x y :: ys
     | [] -> assert false)

(* [ascanl f a xs]: inclusive scan from the left;
   result_i = f (... (f (f a xs_0) xs_1) ...) xs_i. *)
let ascanl f a xs =
  let cell x acc =
    let v = f acc x in
    (v, v)
  in
  let _, ys = mscanl cell a xs in
  ys

(* Tree patterns -------------------------------------------------------- *)

(* [tree_fold f xs] reduces a non-empty word with a balanced binary tree of
   [f] cells: logarithmic depth when [f] is a gate. *)
let rec tree_fold f = function
  | [] -> invalid_arg "Patterns.tree_fold: empty word"
  | [ x ] -> x
  | xs ->
    let lo, hi = split_at ((List.length xs + 1) / 2) xs in
    f (tree_fold f lo) (tree_fold f hi)

(* Parallel-prefix (scan) networks.  All compute the inclusive left scan
   [y_i = x_0 op x_1 op ... op x_i] and are interchangeable when [op] is
   associative; they differ in depth and size, which is exactly the design
   space of the logarithmic-time carry-lookahead adder of O'Donnell &
   Ruenger [23]. *)

(* Serial: depth n-1, size n-1. *)
let scan_serial op = function
  | [] -> []
  | x :: xs ->
    let cell xi acc =
      let v = op acc xi in
      (v, v)
    in
    let _, ys = mscanl cell x xs in
    x :: ys

(* Sklansky (divide and conquer): depth ceil(log2 n), size ~ (n/2) log2 n. *)
let rec scan_sklansky op = function
  | [] -> []
  | [ x ] -> [ x ]
  | xs ->
    let lo, hi = split_at ((List.length xs + 1) / 2) xs in
    let slo = scan_sklansky op lo in
    let shi = scan_sklansky op hi in
    let carry = last slo in
    slo @ List.map (fun y -> op carry y) shi

(* Brent-Kung: depth ~ 2 log2 n - 1, size ~ 2n. *)
let rec scan_brent_kung op = function
  | [] -> []
  | [ x ] -> [ x ]
  | xs ->
    let n = List.length xs in
    let evens, odd_tail =
      if n land 1 = 0 then (xs, None)
      else
        let body, lastl = split_at (n - 1) xs in
        (body, Some (List.hd lastl))
    in
    let pairs = pairup evens in
    let combined = List.map (fun (a, b) -> op a b) pairs in
    let scanned = scan_brent_kung op combined in
    (* scanned_i is the prefix ending at element 2i+1. *)
    let rec weave pairs scanned prev =
      match (pairs, scanned) with
      | [], [] -> []
      | (a, _) :: ps, s :: ss ->
        let even_out = match prev with None -> a | Some p -> op p a in
        even_out :: s :: weave ps ss (Some s)
      | _ -> assert false
    in
    let body = weave pairs scanned None in
    (match odd_tail with
     | None -> body
     | Some x -> body @ [ op (last body) x ])

(* Kogge-Stone: depth ceil(log2 n), size ~ n log2 n, fanout 2. *)
let scan_kogge_stone op xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let cur = ref arr in
  let d = ref 1 in
  while !d < n do
    let prev = !cur in
    cur := Array.init n (fun i -> if i >= !d then op prev.(i - !d) prev.(i) else prev.(i));
    d := !d * 2
  done;
  Array.to_list !cur

type prefix_network = Serial | Sklansky | Brent_kung | Kogge_stone

let scan network op xs =
  match network with
  | Serial -> scan_serial op xs
  | Sklansky -> scan_sklansky op xs
  | Brent_kung -> scan_brent_kung op xs
  | Kogge_stone -> scan_kogge_stone op xs

let prefix_network_name = function
  | Serial -> "serial"
  | Sklansky -> "sklansky"
  | Brent_kung -> "brent-kung"
  | Kogge_stone -> "kogge-stone"

let all_prefix_networks = [ Serial; Sklansky; Brent_kung; Kogge_stone ]

(* Butterfly and banyan networks ---------------------------------------- *)

(* [butterfly f xs] (power-of-two length): stage 1 applies [f] to pairs
   (x_i, x_{i+n/2}), then both halves recurse.  [banyan f] is the mirror
   network: recurse first, combine last.  These are the interconnection
   schemes of FFTs, bitonic mergers and switching fabrics. *)
let rec butterfly f = function
  | [] -> []
  | [ x ] -> [ x ]
  | xs ->
    let lo, hi = halve xs in
    let lo', hi' = List.split (List.map2 (fun a b -> f (a, b)) lo hi) in
    butterfly f lo' @ butterfly f hi'

let rec banyan f = function
  | [] -> []
  | [ x ] -> [ x ]
  | xs ->
    let lo, hi = halve xs in
    let lo' = banyan f lo in
    let hi' = banyan f hi in
    let a, b = List.split (List.map2 (fun x y -> f (x, y)) lo' hi') in
    a @ b

(* Grid pattern --------------------------------------------------------- *)

(* [mesh f hs vs]: a rectangular array of [f] cells.  Horizontal signals
   [hs] enter at the left of each row and flow rightwards; vertical signals
   [vs] enter at the top of each column and flow downwards.  Each cell maps
   (h, v) to (h', v').  Result: (row outputs at the right, column outputs
   at the bottom).  Systolic arrays and array multipliers are meshes. *)
let mesh f hs vs =
  let row h vs = mscanl (fun v h -> let h', v' = f h v in (h', v')) h vs in
  let vs_final, hs_out_rev =
    List.fold_left
      (fun (vs, acc) h ->
        let h', vs' = row h vs in
        (vs', h' :: acc))
      (vs, []) hs
  in
  (List.rev hs_out_rev, vs_final)
