(* Words of booleans and conversions to and from integers.

   Following the paper (and Sigma16 lineage), words are lists indexed from
   the most significant bit: bit 0 of a 16-bit word is the sign bit and
   [field w 0 4] is the top nibble.  Numeric interpretation is two's
   complement for the signed conversions. *)

let to_int bits = List.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 bits

let of_int ~width n =
  if width < 0 || width > 62 then invalid_arg "Bitvec.of_int: width";
  List.init width (fun i -> (n lsr (width - 1 - i)) land 1 = 1)

let to_signed_int bits =
  match bits with
  | [] -> 0
  | sign :: _ ->
    let w = List.length bits in
    let v = to_int bits in
    if sign then v - (1 lsl w) else v

let of_signed_int ~width n = of_int ~width (n land ((1 lsl width) - 1))

let field w pos len =
  let sub = List.filteri (fun i _ -> i >= pos && i < pos + len) w in
  if List.length sub <> len then invalid_arg "Bitvec.field: out of range";
  sub

let to_string bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let of_string s =
  List.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: %c" c))

let to_hex bits =
  let w = List.length bits in
  let padded = List.init ((4 - (w mod 4)) mod 4) (fun _ -> false) @ bits in
  Patterns.chunks 4 padded
  |> List.map (fun nib -> Printf.sprintf "%x" (to_int nib))
  |> String.concat ""

let columns rows =
  (* Transpose a per-cycle list of words into a per-signal list of value
     streams; useful for feeding word inputs to simulation. *)
  Patterns.transpose rows
