(* Graph semantics: a signal is a node in a circuit graph (paper section
   4.4, first step of netlist generation).

   Executing a circuit specification at this instance builds a graph
   isomorphic to the circuit schematic: each gate application allocates a
   node whose children are the argument nodes, sharing included.  Feedback
   produces circular graphs via forward references, which the traversals in
   {!Hydra_netlist} resolve with an id-based visited set. *)

type t = { id : int; mutable def : def; mutable names : string list }

and def =
  | Input of string
  | Const of bool
  | Inv of t
  | And2 of t * t
  | Or2 of t * t
  | Xor2 of t * t
  | Dff of bool * t
  | Forward of t option ref

let counter = ref 0

let node def =
  incr counter;
  { id = !counter; def; names = [] }

let input name = node (Input name)
let constant b = node (Const b)
let zero = constant false
let one = constant true
let inv a = node (Inv a)
let and2 a b = node (And2 (a, b))
let or2 a b = node (Or2 (a, b))
let xor2 a b = node (Xor2 (a, b))

let label name s =
  s.names <- name :: s.names;
  s

let dff_init init x = node (Dff (init, x))
let dff x = dff_init false x

let feedback f =
  let r = ref None in
  let loop = node (Forward r) in
  let out = f loop in
  r := Some out;
  out

let feedback_list k f =
  let refs = Array.init k (fun _ -> ref None) in
  let loops = Array.to_list (Array.map (fun r -> node (Forward r)) refs) in
  let outs = f loops in
  if List.length outs <> k then invalid_arg "Graph.feedback_list: wrong width";
  List.iteri (fun i out -> refs.(i) := Some out) outs;
  outs

(* [resolve] follows forward references introduced by feedback until it
   reaches a real node.  A [Forward] that was never patched (a [feedback]
   body that returned its own argument) is a construction error. *)
let rec resolve s =
  match s.def with
  | Forward r -> (
      match !r with
      | Some s' -> resolve s'
      | None -> failwith "Graph.resolve: unresolved feedback loop")
  | Input _ | Const _ | Inv _ | And2 _ | Or2 _ | Xor2 _ | Dff _ -> s

let id s = (resolve s).id
let name s = match (resolve s).names with [] -> None | n :: _ -> Some n

(* Children of a node, with forwards resolved. *)
let children s =
  match (resolve s).def with
  | Input _ | Const _ -> []
  | Inv a | Dff (_, a) -> [ resolve a ]
  | And2 (a, b) | Or2 (a, b) | Xor2 (a, b) -> [ resolve a; resolve b ]
  | Forward _ -> assert false

let inputs_list names = List.map input names
