(** Design patterns: higher-order combinators that replicate a building
    block and connect the copies in a regular structure (paper section 5).
    All are ordinary polymorphic functions, usable at every signal
    semantics; designers can add their own. *)

(** {1 Word utilities} *)

val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at n xs] is [(take n xs, drop n xs)].  Raises [Invalid_argument]
    if [xs] is shorter than [n]. *)

val halve : 'a list -> 'a list * 'a list
(** Split an even-length word into its two halves. *)

val pairup : 'a list -> ('a * 'a) list
(** [[a;b;c;d]] becomes [[(a,b);(c,d)]].  Even length required. *)

val unpair : ('a * 'a) list -> 'a list
(** Inverse of {!pairup}. *)

val riffle : 'a list -> 'a list
(** Perfect shuffle: interleave the two halves. *)

val unriffle : 'a list -> 'a list
(** Inverse of {!riffle}: even-indexed elements, then odd-indexed. *)

val chunks : int -> 'a list -> 'a list list
(** Split into consecutive chunks of size [k] (last may be shorter). *)

val last : 'a list -> 'a
(** Last element of a non-empty list. *)

val iterate_n : int -> ('a -> 'a) -> 'a -> 'a
(** [iterate_n n f x] is [f (f ... (f x))], [n] times. *)

val transpose : 'a list list -> 'a list list
(** Transpose a rectangular list of rows. *)

(** {1 Linear patterns} *)

val mscanr : ('a -> 'b -> 'b * 'c) -> 'b -> 'a list -> 'b * 'c list
(** Row of cells with the carry entering at the right and flowing leftwards
    (the paper's [mscanr]); [mscanr full_add] is a ripple-carry adder. *)

val mscanl : ('a -> 'b -> 'b * 'c) -> 'b -> 'a list -> 'b * 'c list
(** Mirror image of {!mscanr}: carry enters at the left. *)

val ascanr : ('a -> 'b -> 'b) -> 'b -> 'a list -> 'b list
(** Inclusive scan from the right: result{_i} [= f x]{_i}[ (f x]{_i+1}[ ... a)]. *)

val ascanl : ('b -> 'a -> 'b) -> 'b -> 'a list -> 'b list
(** Inclusive scan from the left. *)

(** {1 Tree patterns and parallel prefix} *)

val tree_fold : ('a -> 'a -> 'a) -> 'a list -> 'a
(** Balanced binary reduction of a non-empty word: logarithmic depth. *)

type prefix_network = Serial | Sklansky | Brent_kung | Kogge_stone
(** The classic parallel-prefix network topologies; interchangeable for
    associative operators, trading depth against size and fanout. *)

val scan_serial : ('a -> 'a -> 'a) -> 'a list -> 'a list
(** Inclusive left scan, linear depth, minimal size. *)

val scan_sklansky : ('a -> 'a -> 'a) -> 'a list -> 'a list
(** Inclusive left scan, depth ⌈log₂ n⌉, size ~ (n/2)·log₂ n. *)

val scan_brent_kung : ('a -> 'a -> 'a) -> 'a list -> 'a list
(** Inclusive left scan, depth ~ 2·log₂ n, size ~ 2n. *)

val scan_kogge_stone : ('a -> 'a -> 'a) -> 'a list -> 'a list
(** Inclusive left scan, depth ⌈log₂ n⌉, size ~ n·log₂ n, fanout ≤ 2. *)

val scan : prefix_network -> ('a -> 'a -> 'a) -> 'a list -> 'a list
(** Dispatch on {!prefix_network}. *)

val prefix_network_name : prefix_network -> string
val all_prefix_networks : prefix_network list

(** {1 Butterfly, banyan, grid} *)

val butterfly : ('a * 'a -> 'a * 'a) -> 'a list -> 'a list
(** Butterfly network on a power-of-two word: combine (x{_i}, x{_i+n/2})
    pairs, then recurse into both halves. *)

val banyan : ('a * 'a -> 'a * 'a) -> 'a list -> 'a list
(** Mirror of {!butterfly}: recurse first, combine last. *)

val mesh :
  ('h -> 'v -> 'h * 'v) -> 'h list -> 'v list -> 'h list * 'v list
(** Rectangular cell array: horizontal signals flow rightwards along rows,
    vertical signals downwards along columns; returns (right edge, bottom
    edge).  Systolic arrays and array multipliers are meshes. *)
