(* Event-driven simulation with gate delays.

   The synchronous model (paper section 3) abstracts from the fact that
   "every physical component takes some time to respond to a change in its
   inputs".  This engine models that time explicitly with a transport-delay
   event queue: within one clock cycle, input and dff-output changes at
   t = 0 propagate through the combinational logic, each gate re-evaluating
   [delay] time units after an input edge.  It reports when the circuit
   settled and how many output transitions occurred — so glitches (a gate
   switching more than once per cycle) become observable, and the paper's
   guarantee can be checked: the settle time never exceeds the critical
   path times the gate delay (experiment E14). *)

module Netlist = Hydra_netlist.Netlist

(* Binary min-heap of (time, component) events. *)
module Heap = struct
  type t = { mutable a : (int * int) array; mutable n : int }

  let create () = { a = Array.make 64 (0, 0); n = 0 }
  let is_empty h = h.n = 0

  let push h e =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) (0, 0) in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let rec up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if fst h.a.(i) < fst h.a.(p) then begin
          let tmp = h.a.(i) in
          h.a.(i) <- h.a.(p);
          h.a.(p) <- tmp;
          up p
        end
      end
    in
    up (h.n - 1)

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = ref i in
      if l < h.n && fst h.a.(l) < fst h.a.(!m) then m := l;
      if r < h.n && fst h.a.(r) < fst h.a.(!m) then m := r;
      if !m <> i then begin
        let tmp = h.a.(i) in
        h.a.(i) <- h.a.(!m);
        h.a.(!m) <- tmp;
        down !m
      end
    in
    down 0;
    top
end

type cycle_report = {
  settle_time : int;      (* time of the last value change *)
  transitions : int;      (* total gate-output changes this cycle *)
  glitches : int;         (* changes beyond the first per component *)
}

type t = {
  netlist : Netlist.t;
  fanout : (int * int) list array;
  values : bool array;
  state : bool array;          (* dff state *)
  is_dff : bool array;
  inputs_now : bool array;
  input_index : (string, int) Hashtbl.t;
  delay_of : int -> int;
  changes_this_cycle : int array;
  mutable cycle : int;
}

let default_delay netlist i =
  match netlist.Netlist.components.(i) with
  | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c -> 1
  | Netlist.Outport _ | Netlist.Inport _ | Netlist.Constant _
  | Netlist.Dffc _ -> 0

let create ?delay netlist =
  ignore (Hydra_netlist.Levelize.check netlist);
  let n = Netlist.size netlist in
  let is_dff =
    Array.map (function Netlist.Dffc _ -> true | _ -> false)
      netlist.Netlist.components
  in
  let state = Array.make n false in
  let values = Array.make n false in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Dffc init ->
        state.(i) <- init;
        values.(i) <- init
      | Netlist.Constant b -> values.(i) <- b
      | _ -> ())
    netlist.Netlist.components;
  let input_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  let delay_of =
    match delay with
    | Some f -> f netlist
    | None -> default_delay netlist
  in
  {
    netlist;
    fanout = Netlist.fanout netlist;
    values;
    state;
    is_dff;
    inputs_now = Array.make n false;
    input_index;
    delay_of;
    changes_this_cycle = Array.make n 0;
    cycle = 0;
  }

let set_input t name b =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.inputs_now.(i) <- b
  | None -> invalid_arg ("Event.set_input: unknown input " ^ name)

let eval_now t i =
  let fi k = t.values.(t.netlist.Netlist.fanin.(i).(k)) in
  match t.netlist.Netlist.components.(i) with
  | Netlist.Inport _ -> t.inputs_now.(i)
  | Netlist.Constant b -> b
  | Netlist.Dffc _ -> t.state.(i)
  | Netlist.Invc -> not (fi 0)
  | Netlist.And2c -> fi 0 && fi 1
  | Netlist.Or2c -> fi 0 || fi 1
  | Netlist.Xor2c -> fi 0 <> fi 1
  | Netlist.Outport _ -> fi 0

(* Propagate the current cycle's input/dff values through the
   combinational logic, one event at a time, then latch the dffs.
   Returns the settling report for the cycle. *)
let step t =
  Array.fill t.changes_this_cycle 0 (Array.length t.changes_this_cycle) 0;
  let heap = Heap.create () in
  let settle = ref 0 and transitions = ref 0 and glitches = ref 0 in
  let schedule_fanouts time i =
    List.iter
      (fun (sink, _port) ->
        if not t.is_dff.(sink) then
          Heap.push heap (time + t.delay_of sink, sink))
      t.fanout.(i)
  in
  (* bootstrap: on the very first cycle nothing has ever been evaluated,
     so schedule every combinational component once; transport-delay
     propagation then self-corrects any stale reads *)
  if t.cycle = 0 then
    Array.iteri
      (fun i comp ->
        match comp with
        | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
        | Netlist.Outport _ ->
          Heap.push heap (t.delay_of i, i)
        | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> ())
      t.netlist.Netlist.components;
  (* time 0: inputs and dff outputs take their new values *)
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Inport _ ->
        if t.values.(i) <> t.inputs_now.(i) then begin
          t.values.(i) <- t.inputs_now.(i);
          schedule_fanouts 0 i
        end
      | Netlist.Dffc _ ->
        if t.values.(i) <> t.state.(i) then begin
          t.values.(i) <- t.state.(i);
          schedule_fanouts 0 i
        end
      | _ -> ())
    t.netlist.Netlist.components;
  while not (Heap.is_empty heap) do
    let time, i = Heap.pop heap in
    let value = eval_now t i in
    if value <> t.values.(i) then begin
      t.values.(i) <- value;
      incr transitions;
      t.changes_this_cycle.(i) <- t.changes_this_cycle.(i) + 1;
      if t.changes_this_cycle.(i) > 1 then incr glitches;
      if time > !settle then settle := time;
      schedule_fanouts time i
    end
  done;
  (* latch: dff state := its (settled) input *)
  let next = ref [] in
  Array.iteri
    (fun i d ->
      if d then next := (i, t.values.(t.netlist.Netlist.fanin.(i).(0))) :: !next)
    t.is_dff;
  List.iter (fun (i, b) -> t.state.(i) <- b) !next;
  t.cycle <- t.cycle + 1;
  { settle_time = !settle; transitions = !transitions; glitches = !glitches }

let output t name =
  match List.assoc_opt name t.netlist.Netlist.outputs with
  | Some i -> t.values.(i)
  | None -> invalid_arg ("Event.output: unknown output " ^ name)

let outputs t = List.map (fun (s, i) -> (s, t.values.(i))) t.netlist.Netlist.outputs
let cycle t = t.cycle
