(** SPMD parallel simulator (paper section 4.3): persistent worker domains
    each execute their static slice of every levelized rank, synchronized
    only by sense-reversing spin barriers.  Workers busy-wait between
    cycles (degrading to yields on oversubscribed hosts); call {!shutdown}
    when done. *)

type t

val create : ?domains:int -> Hydra_netlist.Netlist.t -> t
(** [domains] is the total parallelism including the caller (default 2);
    [domains = 1] runs inline with no workers. *)

val shutdown : t -> unit
val reset : t -> unit
val set_input : t -> string -> bool -> unit
val settle : t -> unit
val tick : t -> unit
val step : t -> unit
val output : t -> string -> bool
val outputs : t -> (string * bool) list

val run :
  t -> inputs:(string * bool list) list -> cycles:int -> (string * bool) list list
