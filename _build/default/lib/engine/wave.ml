(* ASCII waveform rendering for simulation traces.

   The simulation drivers of paper section 6.4 exist to make circuit
   outputs readable; this module renders per-cycle signal values as text
   waveforms — single bits as level traces, words as hex lanes — so a
   trace can be inspected directly in a terminal or a test log. *)

type signal =
  | Bit of string * bool list          (* name, value per cycle *)
  | Bus of string * int list * int     (* name, value per cycle, hex width *)

let bit name values = Bit (name, values)

let bus ?(hex_digits = 4) name values = Bus (name, values, hex_digits)

let of_bool_rows ~names rows =
  (* rows: one list of bools per cycle, in [names] order *)
  List.mapi
    (fun i name -> Bit (name, List.map (fun row -> List.nth row i) rows))
    names

(* Single-bit trace: high = "▔" would be unicode; stay ASCII:
   low = '_', high = '-', with '/' and '\' marking edges. *)
let render_bit values =
  let buf = Buffer.create 64 in
  let rec go prev = function
    | [] -> ()
    | v :: rest ->
      (match (prev, v) with
      | Some false, true -> Buffer.add_char buf '/'
      | Some true, false -> Buffer.add_char buf '\\'
      | _ -> Buffer.add_char buf (if v then '-' else '_'));
      Buffer.add_char buf (if v then '-' else '_');
      go (Some v) rest
  in
  go None values;
  Buffer.contents buf

(* Bus trace: each cycle is the value in hex, separated by '|' at value
   changes and padded with spaces. *)
let render_bus values hex_digits =
  let cell = hex_digits in
  let buf = Buffer.create 64 in
  let rec go prev = function
    | [] -> ()
    | v :: rest ->
      let changed = match prev with Some p -> p <> v | None -> true in
      if changed then
        Buffer.add_string buf (Printf.sprintf "|%0*x" cell v)
      else begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.make cell '.')
      end;
      go (Some v) rest
  in
  go None values;
  Buffer.contents buf

let render signals =
  let name_width =
    List.fold_left
      (fun acc s ->
        max acc
          (String.length (match s with Bit (n, _) | Bus (n, _, _) -> n)))
      0 signals
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      let name, line =
        match s with
        | Bit (n, vs) -> (n, render_bit vs)
        | Bus (n, vs, w) -> (n, render_bus vs w)
      in
      Buffer.add_string buf (Printf.sprintf "%-*s %s\n" name_width name line))
    signals;
  Buffer.contents buf

(* Convenience: render a compiled-simulator run directly. *)
let of_compiled_run sim ~inputs ~cycles =
  let rows = Compiled.run sim ~inputs ~cycles in
  let out_names = List.map fst (List.hd rows) in
  let outs =
    List.mapi
      (fun i name -> Bit (name, List.map (fun row -> snd (List.nth row i)) rows))
      out_names
  in
  let ins =
    List.map
      (fun (name, vals) ->
        Bit
          ( name,
            List.init cycles (fun c ->
                match List.nth_opt vals c with Some b -> b | None -> false) ))
      inputs
  in
  render (ins @ outs)
