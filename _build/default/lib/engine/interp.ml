(* Direct netlist interpreter: demand-driven recursive evaluation with a
   per-cycle epoch stamp, no levelization preprocessing.

   This is the naive point in the simulator design space — it re-walks the
   fanin graph every cycle — and serves as the baseline against the
   levelized {!Compiled} engine (experiment E12). *)

module Netlist = Hydra_netlist.Netlist

type t = {
  netlist : Netlist.t;
  values : bool array;       (* valid when stamp matches the current epoch *)
  stamp : int array;
  state : bool array;        (* dff state, valid across cycles *)
  is_dff : bool array;
  inputs_now : bool array;
  input_index : (string, int) Hashtbl.t;
  mutable epoch : int;
  mutable cycle : int;
}

let create netlist =
  (* reject combinational cycles up front, like every other engine *)
  ignore (Hydra_netlist.Levelize.check netlist);
  let n = Netlist.size netlist in
  let is_dff =
    Array.map (function Netlist.Dffc _ -> true | _ -> false)
      netlist.Netlist.components
  in
  let state = Array.make n false in
  Array.iteri
    (fun i comp ->
      match comp with Netlist.Dffc init -> state.(i) <- init | _ -> ())
    netlist.Netlist.components;
  let input_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  {
    netlist;
    values = Array.make n false;
    stamp = Array.make n (-1);
    state;
    is_dff;
    inputs_now = Array.make n false;
    input_index;
    epoch = 0;
    cycle = 0;
  }

let reset t =
  Array.fill t.stamp 0 (Array.length t.stamp) (-1);
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Dffc init -> t.state.(i) <- init
      | _ -> t.state.(i) <- false)
    t.netlist.Netlist.components;
  t.epoch <- 0;
  t.cycle <- 0

let set_input t name b =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.inputs_now.(i) <- b
  | None -> invalid_arg ("Interp.set_input: unknown input " ^ name)

let rec eval t i =
  if t.stamp.(i) = t.epoch then t.values.(i)
  else begin
    let value =
      match t.netlist.Netlist.components.(i) with
      | Netlist.Inport _ -> t.inputs_now.(i)
      | Netlist.Constant b -> b
      | Netlist.Dffc _ -> t.state.(i)
      | Netlist.Invc -> not (eval t t.netlist.Netlist.fanin.(i).(0))
      | Netlist.And2c ->
        eval t t.netlist.Netlist.fanin.(i).(0)
        && eval t t.netlist.Netlist.fanin.(i).(1)
      | Netlist.Or2c ->
        eval t t.netlist.Netlist.fanin.(i).(0)
        || eval t t.netlist.Netlist.fanin.(i).(1)
      | Netlist.Xor2c ->
        eval t t.netlist.Netlist.fanin.(i).(0)
        <> eval t t.netlist.Netlist.fanin.(i).(1)
      | Netlist.Outport _ -> eval t t.netlist.Netlist.fanin.(i).(0)
    in
    t.values.(i) <- value;
    t.stamp.(i) <- t.epoch;
    value
  end

let output t name =
  match List.assoc_opt name t.netlist.Netlist.outputs with
  | Some i -> eval t i
  | None -> invalid_arg ("Interp.output: unknown output " ^ name)

let outputs t =
  List.map (fun (s, i) -> (s, eval t i)) t.netlist.Netlist.outputs

(* One clock cycle: evaluate the cone of every output and every dff input,
   then latch. *)
let step t =
  ignore (outputs t);
  let next = ref [] in
  Array.iteri
    (fun i d ->
      if d then next := (i, eval t t.netlist.Netlist.fanin.(i).(0)) :: !next)
    t.is_dff;
  List.iter (fun (i, b) -> t.state.(i) <- b) !next;
  t.epoch <- t.epoch + 1;
  t.cycle <- t.cycle + 1

let cycle t = t.cycle

let run t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some b -> b | None -> false in
        set_input t name value)
      inputs;
    rows := outputs t :: !rows;
    step t
  done;
  List.rev !rows
