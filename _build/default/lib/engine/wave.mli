(** ASCII waveform rendering for simulation traces: bits as level traces
    with edge marks, words as hex lanes showing changes. *)

type signal

val bit : string -> bool list -> signal
(** A named 1-bit trace, one value per cycle. *)

val bus : ?hex_digits:int -> string -> int list -> signal
(** A named word trace. *)

val of_bool_rows : names:string list -> bool list list -> signal list
(** Per-cycle rows (in [names] order) to one bit trace per name. *)

val render : signal list -> string

val of_compiled_run :
  Compiled.t -> inputs:(string * bool list) list -> cycles:int -> string
(** Run a compiled simulation and render its inputs and outputs. *)
