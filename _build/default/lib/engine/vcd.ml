(* VCD (value change dump) output: record named input/output signals of a
   compiled simulation so waveforms can be inspected in standard viewers
   (GTKWave etc.).  One VCD time unit per clock cycle — the synchronous
   view of the circuit. *)

type signal = { name : string; code : string; mutable last : bool option }

type t = {
  buf : Buffer.t;
  signals : (string * signal) list;  (* keyed by name *)
  mutable time : int;
  mutable headered : bool;
}

let id_code i =
  (* printable short identifiers starting at '!' *)
  let base = 94 and start = 33 in
  let rec go i acc =
    let c = Char.chr (start + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ~signals:names =
  let signals =
    List.mapi (fun i n -> (n, { name = n; code = id_code i; last = None })) names
  in
  { buf = Buffer.create 1024; signals; time = 0; headered = false }

let header t =
  Buffer.add_string t.buf "$date reproduction run $end\n";
  Buffer.add_string t.buf "$version hydra-ocaml $end\n";
  Buffer.add_string t.buf "$timescale 1ns $end\n";
  Buffer.add_string t.buf "$scope module circuit $end\n";
  List.iter
    (fun (_, s) ->
      Buffer.add_string t.buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" s.code s.name))
    t.signals;
  Buffer.add_string t.buf "$upscope $end\n$enddefinitions $end\n";
  t.headered <- true

(* Record the sampled values for one clock cycle. *)
let sample t values =
  if not t.headered then header t;
  let changes =
    List.filter_map
      (fun (name, v) ->
        match List.assoc_opt name t.signals with
        | None -> None
        | Some s ->
          if s.last = Some v then None
          else begin
            s.last <- Some v;
            Some (Printf.sprintf "%d%s" (Bool.to_int v) s.code)
          end)
      values
  in
  if changes <> [] then begin
    Buffer.add_string t.buf (Printf.sprintf "#%d\n" t.time);
    List.iter (fun c -> Buffer.add_string t.buf (c ^ "\n")) changes
  end;
  t.time <- t.time + 1

let contents t =
  if not t.headered then header t;
  Buffer.contents t.buf

let to_file t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc

(* Convenience: run a compiled simulation and dump inputs + outputs. *)
let of_compiled_run sim ~inputs ~cycles =
  let in_names = List.map fst inputs in
  let out_names =
    List.map fst (Compiled.outputs sim)
  in
  let t = create ~signals:(in_names @ out_names) in
  Compiled.reset sim;
  for c = 0 to cycles - 1 do
    let in_vals =
      List.map
        (fun (name, vals) ->
          let v = match List.nth_opt vals c with Some b -> b | None -> false in
          Compiled.set_input sim name v;
          (name, v))
        inputs
    in
    Compiled.settle sim;
    sample t (in_vals @ Compiled.outputs sim);
    Compiled.tick sim
  done;
  t
