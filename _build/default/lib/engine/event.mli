(** Event-driven simulation with transport gate delays: watch a clock
    cycle from the inside (paper section 3).  Reports when the circuit
    settled and how many transitions/glitches occurred; the settle time
    never exceeds the critical path (experiment E14). *)

type cycle_report = {
  settle_time : int;  (** time of the last value change *)
  transitions : int;  (** total component-output changes this cycle *)
  glitches : int;  (** changes beyond the first per component *)
}

type t

val create :
  ?delay:(Hydra_netlist.Netlist.t -> int -> int) ->
  Hydra_netlist.Netlist.t ->
  t
(** [delay] maps a component index to its propagation delay; the default
    gives every gate delay 1 and ports/dffs delay 0. *)

val set_input : t -> string -> bool -> unit

val step : t -> cycle_report
(** Propagate this cycle's input and state changes until quiescence, then
    latch the dffs. *)

val output : t -> string -> bool
val outputs : t -> (string * bool) list
val cycle : t -> int
