(** VCD (value change dump) waveform output, one VCD time unit per clock
    cycle; viewable in GTKWave and friends. *)

type t

val create : signals:string list -> t
val sample : t -> (string * bool) list -> unit
(** Record one cycle's sampled values (unknown names are ignored; only
    changes are written). *)

val contents : t -> string
val to_file : t -> string -> unit

val of_compiled_run :
  Compiled.t -> inputs:(string * bool list) list -> cycles:int -> t
(** Run a compiled simulation and dump its inputs and outputs. *)
