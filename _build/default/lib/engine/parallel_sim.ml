(* Domain-parallel levelized simulator (paper section 4.3).

   "All the function applications corresponding to components that operate
   in parallel can be evaluated simultaneously": after levelization, every
   gate within one level is independent — its inputs were produced at
   strictly lower levels — so each level is a parallel-for over the pool
   with a barrier between levels; the dff latch phase is embarrassingly
   parallel as well.

   This pays off only when levels are wide (thousands of gates); for
   narrow circuits the barriers dominate, which is exactly the tradeoff
   experiment E10 measures. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Pool = Hydra_parallel.Pool

type t = {
  base : Compiled.t;
  pool : Pool.t;
  by_level : int array array;
  owns_pool : bool;
}

let create ?pool netlist =
  let base = Compiled.create netlist in
  let pool', owns =
    match pool with Some p -> (p, false) | None -> (Pool.create (), true)
  in
  {
    base;
    pool = pool';
    by_level = (Compiled.levels base).Levelize.by_level;
    owns_pool = owns;
  }

let shutdown t = if t.owns_pool then Pool.shutdown t.pool

let reset t = Compiled.reset t.base
let set_input t = Compiled.set_input t.base
let output t = Compiled.output t.base
let outputs t = Compiled.outputs t.base

let settle t =
  Array.iter
    (fun level ->
      Pool.parallel_for t.pool 0 (Array.length level) (fun k ->
          Compiled.eval_component t.base level.(k)))
    t.by_level

let tick t =
  let dffs = Compiled.dff_indices t.base in
  Pool.parallel_for t.pool 0 (Array.length dffs) (fun j ->
      Compiled.latch_one t.base j);
  Pool.parallel_for t.pool 0 (Array.length dffs) (fun j ->
      Compiled.commit_one t.base j);
  Compiled.bump_cycle t.base

let step t =
  settle t;
  tick t

let run t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some b -> b | None -> false in
        set_input t name value)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows
