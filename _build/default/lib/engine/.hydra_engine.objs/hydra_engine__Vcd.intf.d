lib/engine/vcd.mli: Compiled
