lib/engine/parallel_sim.mli: Hydra_netlist Hydra_parallel
