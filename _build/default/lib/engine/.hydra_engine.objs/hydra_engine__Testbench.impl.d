lib/engine/testbench.ml: Buffer Compiled Hashtbl Hydra_core Hydra_netlist Interp List Option Printf Wave
