lib/engine/vcd.ml: Bool Buffer Char Compiled List Printf String
