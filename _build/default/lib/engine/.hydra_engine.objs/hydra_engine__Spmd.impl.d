lib/engine/spmd.ml: Array Atomic Compiled Domain Hydra_netlist List Unix
