lib/engine/interp.ml: Array Hashtbl Hydra_netlist List
