lib/engine/event.ml: Array Hashtbl Hydra_netlist List
