lib/engine/wave.mli: Compiled
