lib/engine/xsim.mli: Hydra_core Hydra_netlist
