lib/engine/compiled.ml: Array Bytes Hashtbl Hydra_netlist List
