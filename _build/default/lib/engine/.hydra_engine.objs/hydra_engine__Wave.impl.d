lib/engine/wave.ml: Buffer Compiled List Printf String
