lib/engine/xsim.ml: Array Hashtbl Hydra_core Hydra_netlist List
