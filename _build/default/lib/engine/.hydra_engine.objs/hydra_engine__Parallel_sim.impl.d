lib/engine/parallel_sim.ml: Array Compiled Hydra_netlist Hydra_parallel List
