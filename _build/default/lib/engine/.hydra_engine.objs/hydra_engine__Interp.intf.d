lib/engine/interp.mli: Hydra_netlist
