lib/engine/compiled.mli: Hydra_netlist
