lib/engine/spmd.mli: Hydra_netlist
