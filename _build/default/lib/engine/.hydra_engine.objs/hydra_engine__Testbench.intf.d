lib/engine/testbench.mli: Hydra_netlist
