lib/engine/event.mli: Hydra_netlist
