(* Ternary (X-propagation) netlist simulator: power-up and reset analysis.

   Flip flops start as X — "value unknown at power-up" — and the circuit
   is stepped with concrete inputs.  An output that reads 0/1 is provably
   independent of the unknown state; a dff that becomes known has been
   properly initialized by the reset sequence.  This mechanizes the
   argument the paper makes informally for the synchronous discipline:
   after the right reset protocol the machine's state is fully defined.

   (The [dff0] power-up value of the paper's dff is deliberately ignored
   unless [respect_init] is set: the point of the analysis is to check
   that the design does not depend on it.) *)

module Netlist = Hydra_netlist.Netlist
module T = Hydra_core.Ternary

type t = {
  netlist : Netlist.t;
  values : T.t array;
  stamp : int array;
  state : T.t array;
  is_dff : bool array;
  inputs_now : T.t array;
  input_index : (string, int) Hashtbl.t;
  mutable epoch : int;
  mutable cycle : int;
}

let create ?(respect_init = false) netlist =
  ignore (Hydra_netlist.Levelize.check netlist);
  let n = Netlist.size netlist in
  let is_dff =
    Array.map (function Netlist.Dffc _ -> true | _ -> false)
      netlist.Netlist.components
  in
  let state = Array.make n T.X in
  if respect_init then
    Array.iteri
      (fun i comp ->
        match comp with
        | Netlist.Dffc init -> state.(i) <- T.of_bool init
        | _ -> ())
      netlist.Netlist.components;
  let input_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  {
    netlist;
    values = Array.make n T.X;
    stamp = Array.make n (-1);
    state;
    is_dff;
    inputs_now = Array.make n T.X;
    input_index;
    epoch = 0;
    cycle = 0;
  }

let set_input t name v =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.inputs_now.(i) <- v
  | None -> invalid_arg ("Xsim.set_input: unknown input " ^ name)

let set_input_bool t name b = set_input t name (T.of_bool b)

let rec eval t i =
  if t.stamp.(i) = t.epoch then t.values.(i)
  else begin
    let fi k = eval t t.netlist.Netlist.fanin.(i).(k) in
    let value =
      match t.netlist.Netlist.components.(i) with
      | Netlist.Inport _ -> t.inputs_now.(i)
      | Netlist.Constant b -> T.of_bool b
      | Netlist.Dffc _ -> t.state.(i)
      | Netlist.Invc -> T.inv (fi 0)
      | Netlist.And2c -> T.and2 (fi 0) (fi 1)
      | Netlist.Or2c -> T.or2 (fi 0) (fi 1)
      | Netlist.Xor2c -> T.xor2 (fi 0) (fi 1)
      | Netlist.Outport _ -> fi 0
    in
    t.values.(i) <- value;
    t.stamp.(i) <- t.epoch;
    value
  end

let output t name =
  match List.assoc_opt name t.netlist.Netlist.outputs with
  | Some i -> eval t i
  | None -> invalid_arg ("Xsim.output: unknown output " ^ name)

let outputs t = List.map (fun (s, i) -> (s, eval t i)) t.netlist.Netlist.outputs

let step t =
  ignore (outputs t);
  let next = ref [] in
  Array.iteri
    (fun i d ->
      if d then next := (i, eval t t.netlist.Netlist.fanin.(i).(0)) :: !next)
    t.is_dff;
  List.iter (fun (i, v) -> t.state.(i) <- v) !next;
  t.epoch <- t.epoch + 1;
  t.cycle <- t.cycle + 1

(* How many flip flops are still unknown. *)
let unknown_dffs t =
  let n = ref 0 in
  Array.iteri (fun i d -> if d && t.state.(i) = T.X then incr n) t.is_dff;
  !n

let all_outputs_known t =
  List.for_all (fun (_, v) -> T.is_known v) (outputs t)
