(** Direct netlist interpreter: demand-driven recursive evaluation with a
    per-cycle epoch stamp, no levelization preprocessing.  The naive
    baseline that {!Compiled} is measured against (experiment E12). *)

type t

val create : Hydra_netlist.Netlist.t -> t
val reset : t -> unit
val set_input : t -> string -> bool -> unit
val output : t -> string -> bool
val outputs : t -> (string * bool) list

val step : t -> unit
(** Evaluate all outputs and dff inputs for the current cycle, then
    latch. *)

val cycle : t -> int

val run :
  t -> inputs:(string * bool list) list -> cycles:int -> (string * bool) list list
