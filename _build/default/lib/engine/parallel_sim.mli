(** Fork-join parallel simulator (paper section 4.3): each levelized rank
    is a [parallel_for] over the domain pool, with a barrier between
    ranks.  Compare {!Spmd}, which replaces the fork-join with persistent
    workers and spin barriers (experiment E10 measures both). *)

type t

val create : ?pool:Hydra_parallel.Pool.t -> Hydra_netlist.Netlist.t -> t
(** Without [?pool], a private pool is created and owned (shut down by
    {!shutdown}). *)

val shutdown : t -> unit
(** Shuts the pool down only if this simulator created it. *)

val reset : t -> unit
val set_input : t -> string -> bool -> unit
val settle : t -> unit
val tick : t -> unit
val step : t -> unit
val output : t -> string -> bool
val outputs : t -> (string * bool) list

val run :
  t -> inputs:(string * bool list) list -> cycles:int -> (string * bool) list list
