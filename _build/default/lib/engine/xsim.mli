(** Ternary (X-propagation) netlist simulator for power-up and reset
    analysis: flip flops start unknown; any output that reads 0/1 is
    provably independent of the power-up state, and a dff that becomes
    known has been initialized by the reset sequence. *)

type t

val create : ?respect_init:bool -> Hydra_netlist.Netlist.t -> t
(** With [respect_init] (default false), dffs power up to their declared
    values instead of X. *)

val set_input : t -> string -> Hydra_core.Ternary.t -> unit
val set_input_bool : t -> string -> bool -> unit
val output : t -> string -> Hydra_core.Ternary.t
val outputs : t -> (string * Hydra_core.Ternary.t) list

val step : t -> unit
(** Evaluate the cycle and latch (ternary values propagate into state). *)

val unknown_dffs : t -> int
(** How many flip flops are still X. *)

val all_outputs_known : t -> bool
