(* SPMD parallel simulator (paper section 4.3).

   The paper mentions, as then-current research, "an analysis-based
   transformation that produces an efficient SPMD style parallel simulator
   from a Hydra specification".  This engine is that transformation's
   target shape: the levelized netlist is statically sliced, every worker
   executes the same program — its slice of level 0, barrier, its slice of
   level 1, barrier, ... — and the only synchronization is a
   sense-reversing spin barrier, orders of magnitude cheaper per level
   than the fork-join pool of {!Parallel_sim} (experiment E10 measures
   both).

   Workers are long-lived domains that busy-wait between cycles; the spin
   loops degrade to a yielding syscall after a bound so that the engine
   stays live on machines with fewer cores than domains.  Use [shutdown]
   to stop the workers. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize

(* Sense-reversing spin barrier. *)
module Barrier = struct
  type t = { n : int; count : int Atomic.t; sense : bool Atomic.t }

  let create n = { n; count = Atomic.make 0; sense = Atomic.make false }

  (* Each participating thread owns a [sense] ref that flips each use. *)
  let wait b my_sense =
    let s = not !my_sense in
    my_sense := s;
    if Atomic.fetch_and_add b.count 1 = b.n - 1 then begin
      Atomic.set b.count 0;
      Atomic.set b.sense s
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.sense <> s do
        incr spins;
        if !spins < 2048 then Domain.cpu_relax ()
        else Unix.sleepf 1e-6 (* oversubscribed host: yield *)
      done
    end
end

type command = Idle | Settle | Tick | Stop

type t = {
  base : Compiled.t;
  n : int;  (* total workers, caller included *)
  by_level : int array array;
  phase : int Atomic.t;
  command : command Atomic.t;
  barrier : Barrier.t;
  main_sense : bool ref;  (* the caller's barrier sense (worker 0) *)
  mutable domains : unit Domain.t list;
}

(* Worker [w]'s slice of an array of length [len]. *)
let slice t w len =
  let lo = w * len / t.n and hi = (w + 1) * len / t.n in
  (lo, hi)

let do_settle t w my_sense =
  Array.iter
    (fun level ->
      let lo, hi = slice t w (Array.length level) in
      for k = lo to hi - 1 do
        Compiled.eval_component t.base (Array.unsafe_get level k)
      done;
      Barrier.wait t.barrier my_sense)
    t.by_level

let do_tick t w my_sense =
  let ndffs = Array.length (Compiled.dff_indices t.base) in
  let lo, hi = slice t w ndffs in
  for j = lo to hi - 1 do
    Compiled.latch_one t.base j
  done;
  Barrier.wait t.barrier my_sense;
  for j = lo to hi - 1 do
    Compiled.commit_one t.base j
  done;
  Barrier.wait t.barrier my_sense

let worker t w () =
  let my_sense = ref false in
  let my_phase = ref 0 in
  let running = ref true in
  while !running do
    (* wait for the next phase *)
    let spins = ref 0 in
    while Atomic.get t.phase = !my_phase do
      incr spins;
      if !spins < 2048 then Domain.cpu_relax () else Unix.sleepf 1e-6
    done;
    my_phase := Atomic.get t.phase;
    (match Atomic.get t.command with
    | Settle -> do_settle t w my_sense
    | Tick -> do_tick t w my_sense
    | Stop -> running := false
    | Idle -> ());
    if !running then Barrier.wait t.barrier my_sense
  done

let create ?(domains = 2) netlist =
  let base = Compiled.create netlist in
  let n = max 1 domains in
  let t =
    {
      base;
      n;
      by_level = (Compiled.levels base).Levelize.by_level;
      phase = Atomic.make 0;
      command = Atomic.make Idle;
      barrier = Barrier.create n;
      main_sense = ref false;
      domains = [];
    }
  in
  t.domains <- List.init (n - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

(* The caller acts as worker 0. *)
let run_command t cmd =
  if t.n = 1 then begin
    (* no workers: run inline without barriers *)
    match cmd with
    | Settle -> Compiled.settle t.base
    | Tick -> Compiled.tick t.base
    | Idle | Stop -> ()
  end
  else begin
    Atomic.set t.command cmd;
    Atomic.incr t.phase;
    (match cmd with
    | Settle -> do_settle t 0 t.main_sense
    | Tick -> do_tick t 0 t.main_sense
    | Idle | Stop -> ());
    Barrier.wait t.barrier t.main_sense
  end

let settle t = run_command t Settle

let tick t =
  run_command t Tick;
  if t.n > 1 then Compiled.bump_cycle t.base

let step t =
  settle t;
  tick t

let shutdown t =
  if t.n > 1 then begin
    Atomic.set t.command Stop;
    Atomic.incr t.phase;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let reset t = Compiled.reset t.base
let set_input t = Compiled.set_input t.base
let output t = Compiled.output t.base
let outputs t = Compiled.outputs t.base

let run t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value =
          match List.nth_opt vals c with Some b -> b | None -> false
        in
        set_input t name value)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows
