(** Hash-consed reduced ordered binary decision diagrams: the
    formal-reasoning substrate (paper section 4.6).  Canonical for a fixed
    variable order, so equivalence is {!equal} on nodes. *)

type t = private
  | False
  | True
  | Node of { id : int; var : int; lo : t; hi : t }

type manager

val manager : unit -> manager
(** A fresh unique table and operation caches.  Nodes from different
    managers must not be mixed. *)

val bfalse : t
val btrue : t
val of_bool : bool -> t
val var : manager -> int -> t
val nvar : manager -> int -> t
val id : t -> int

val bdd_not : manager -> t -> t
val bdd_and : manager -> t -> t -> t
val bdd_or : manager -> t -> t -> t
val bdd_xor : manager -> t -> t -> t
val bdd_ite : manager -> t -> t -> t -> t

val equal : t -> t -> bool
(** Function equality (constant time, by canonicity). *)

val eval : (int -> bool) -> t -> bool
val sat_count : nvars:int -> t -> float
(** Number of satisfying assignments over variables [0 .. nvars-1]. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val size : t -> int
(** Distinct node count. *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment (unmentioned variables are
    don't-cares), or [None] for the constant false. *)

val top_var : t -> int
(** [max_int] on terminals. *)

val mk : manager -> int -> t -> t -> t
(** Raw hash-consing constructor (reduction + sharing); [mk m v lo hi] is
    the function "if var [v] then [hi] else [lo]".  Children's top
    variables must be greater than [v]. *)
