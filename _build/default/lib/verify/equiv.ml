(* Combinational equivalence checking.

   Three methods, strongest first:
   - [bdd_equiv]: symbolic — execute both circuits at a BDD semantics (one
     more instance of the paper's "apply the specification to a different
     signal type" idea) and compare canonical forms.  Complete.
   - [exhaustive]: enumerate all input vectors at the Bit semantics.
     Complete, exponential.
   - [random]: sample vectors; a cheap falsifier. *)

module Bit = Hydra_core.Bit

(* A COMB instance whose signals are BDDs over a given manager: executing
   a circuit at this instance computes its boolean function symbolically. *)
module type BDD_COMB = sig
  include Hydra_core.Signal_intf.COMB with type t = Bdd.t

  val manager : Bdd.manager
end

let bdd_comb m : (module BDD_COMB) =
  (module struct
    type t = Bdd.t

    let manager = m
    let zero = Bdd.bfalse
    let one = Bdd.btrue
    let constant = Bdd.of_bool
    let inv = Bdd.bdd_not m
    let and2 = Bdd.bdd_and m
    let or2 = Bdd.bdd_or m
    let xor2 = Bdd.bdd_xor m
    let label _ s = s
  end)

(* A circuit abstracted over its semantics — the form every Hydra circuit
   naturally has.  The polymorphic field lets one circuit value be executed
   at the Bit semantics (testing) and the BDD semantics (proof) alike. *)
type circuit = {
  apply :
    'a.
    (module Hydra_core.Signal_intf.COMB with type t = 'a) ->
    'a list ->
    'a list;
}

type counterexample = bool list

type result = Equivalent | Inequivalent of counterexample

(* Symbolic check of two [inputs]-input circuits (any number of outputs):
   build both functions as BDDs and compare canonical forms. *)
let bdd_equiv ~inputs c1 c2 =
  let m = Bdd.manager () in
  let (module C) = bdd_comb m in
  let vars = List.init inputs (Bdd.var m) in
  let fo = c1.apply (module C) vars and go = c2.apply (module C) vars in
  if List.length fo <> List.length go then
    invalid_arg "Equiv.bdd_equiv: output arities differ";
  let diff =
    List.fold_left2
      (fun acc a b -> Bdd.bdd_or m acc (Bdd.bdd_xor m a b))
      Bdd.bfalse fo go
  in
  match Bdd.any_sat diff with
  | None -> Equivalent
  | Some partial ->
    let assign v =
      match List.assoc_opt v partial with Some b -> b | None -> false
    in
    Inequivalent (List.init inputs assign)

(* Symbolic functions of a circuit: output BDDs over fresh variables, plus
   the manager (for further queries such as sat counts). *)
let bdd_outputs ~inputs c =
  let m = Bdd.manager () in
  let (module C) = bdd_comb m in
  let vars = List.init inputs (Bdd.var m) in
  (m, c.apply (module C) vars)

let exhaustive ~inputs c1 c2 =
  let f = c1.apply (module Bit) and g = c2.apply (module Bit) in
  let rec find = function
    | [] -> Equivalent
    | v :: rest -> if f v = g v then find rest else Inequivalent v
  in
  find (Bit.vectors inputs)

(* Exhaustive check at the packed semantics: 62 assignments per circuit
   evaluation — typically ~50x faster than {!exhaustive} for the same
   complete guarantee. *)
let packed_exhaustive ~inputs c1 c2 =
  let module P = Hydra_core.Packed in
  let passes = P.enumerate ~inputs in
  let rec scan = function
    | [] -> Equivalent
    | (words, count) :: rest ->
      let o1 = c1.apply (module P) words and o2 = c2.apply (module P) words in
      if List.length o1 <> List.length o2 then
        invalid_arg "Equiv.packed_exhaustive: output arities differ";
      let mask = if count = P.lanes then P.lane_mask else (1 lsl count) - 1 in
      let diff =
        List.fold_left2
          (fun acc a b -> acc lor (P.xor2 a b land mask))
          0 o1 o2
      in
      if diff = 0 then scan rest
      else begin
        (* first differing lane is the counterexample *)
        let rec first_lane l = if P.lane diff l then l else first_lane (l + 1) in
        let lane = first_lane 0 in
        Inequivalent (List.map (fun w -> P.lane w lane) words)
      end
  in
  scan passes

let random ?(trials = 1000) ~inputs c1 c2 =
  let f = c1.apply (module Bit) and g = c2.apply (module Bit) in
  let st = Random.State.make [| 0x5eed; inputs; trials |] in
  let rec go n =
    if n = 0 then Equivalent
    else
      let v = List.init inputs (fun _ -> Random.State.bool st) in
      if f v = g v then go (n - 1) else Inequivalent v
  in
  go trials

let is_equivalent = function Equivalent -> true | Inequivalent _ -> false
