lib/verify/equiv.mli: Bdd Hydra_core
