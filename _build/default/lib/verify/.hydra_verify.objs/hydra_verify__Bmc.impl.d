lib/verify/bmc.ml: Array Hashtbl Hydra_core Hydra_engine Hydra_netlist List Queue
