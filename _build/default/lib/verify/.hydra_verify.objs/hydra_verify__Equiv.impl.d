lib/verify/equiv.ml: Bdd Hydra_core List Random
