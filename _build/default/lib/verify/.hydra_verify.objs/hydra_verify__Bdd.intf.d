lib/verify/bdd.mli:
