lib/verify/fault.mli: Hydra_netlist
