lib/verify/bdd.ml: Float Hashtbl List
