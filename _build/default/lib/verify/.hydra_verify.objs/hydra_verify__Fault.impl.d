lib/verify/fault.ml: Array Bool Hydra_engine Hydra_netlist List Printf Random
