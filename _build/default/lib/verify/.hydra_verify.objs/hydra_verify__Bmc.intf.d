lib/verify/bmc.mli: Hydra_netlist
