(** Stuck-at fault simulation: measure how well a test-vector set
    distinguishes a faulty circuit from a good one — the manufacturing-
    test side of the simulation tooling (paper section 4.2). *)

type fault = { site : int; stuck : bool }

val fault_name : Hydra_netlist.Netlist.t -> fault -> string

val all_faults : Hydra_netlist.Netlist.t -> fault list
(** Both stuck-at values on every gate and flip-flop output. *)

val inject : Hydra_netlist.Netlist.t -> fault -> Hydra_netlist.Netlist.t
(** Netlist rewriting: the site's consumers read a constant instead, so
    any engine can run the faulty circuit. *)

type coverage = { total : int; detected : int; undetected : fault list }

val ratio : coverage -> float

val coverage :
  ?cycles_per_vector:int ->
  Hydra_netlist.Netlist.t ->
  vectors:bool list list ->
  coverage
(** Fraction of faults whose response to [vectors] (rows in input-port
    order) differs from the good circuit's. *)

val random_vectors : seed:int -> inputs:int -> int -> bool list list

val generate_tests :
  ?seed:int ->
  ?target:float ->
  ?batch:int ->
  ?max_vectors:int ->
  Hydra_netlist.Netlist.t ->
  bool list list * coverage
(** Greedy random test generation: grow the vector set until coverage
    reaches [target] or a whole batch detects nothing new. *)
