(** Combinational equivalence checking: symbolic (execute the circuit at
    a BDD semantics and compare canonical forms), exhaustive, and random
    (paper section 4.6). *)

(** A COMB instance whose signals are BDDs over a manager. *)
module type BDD_COMB = sig
  include Hydra_core.Signal_intf.COMB with type t = Bdd.t

  val manager : Bdd.manager
end

val bdd_comb : Bdd.manager -> (module BDD_COMB)

type circuit = {
  apply :
    'a.
    (module Hydra_core.Signal_intf.COMB with type t = 'a) ->
    'a list ->
    'a list;
}
(** A circuit abstracted over its semantics — the form every Hydra
    circuit naturally has, packaged first-class so one value can be run on
    booleans, BDDs, graphs, ... *)

type counterexample = bool list

type result = Equivalent | Inequivalent of counterexample

val bdd_equiv : inputs:int -> circuit -> circuit -> result
(** Complete symbolic check over all [2^inputs] assignments.  Variable [i]
    of the BDD order is input [i]; order the inputs so related operand
    bits are adjacent (interleaved) to keep BDDs small. *)

val bdd_outputs : inputs:int -> circuit -> Bdd.manager * Bdd.t list
(** The circuit's output functions as BDDs over fresh variables. *)

val exhaustive : inputs:int -> circuit -> circuit -> result
(** Complete enumeration at the Bit semantics. *)

val packed_exhaustive : inputs:int -> circuit -> circuit -> result
(** Complete enumeration at the {!Hydra_core.Packed} semantics: 62
    assignments per evaluation.  Same guarantee as {!exhaustive}, much
    faster.  [inputs] ≤ 24. *)

val random : ?trials:int -> inputs:int -> circuit -> circuit -> result
(** Deterministic pseudo-random sampling: a cheap falsifier. *)

val is_equivalent : result -> bool
