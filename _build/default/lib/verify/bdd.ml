(* Reduced ordered binary decision diagrams, hash-consed.

   The formal-reasoning substrate (paper section 4.6): equational reasoning
   about combinational circuits becomes canonical-form comparison.  Because
   ROBDDs are canonical for a fixed variable order, two circuits are
   equivalent iff their BDDs are the same node. *)

type t = False | True | Node of { id : int; var : int; lo : t; hi : t }

type manager = {
  unique : (int * int * int, t) Hashtbl.t;  (* (var, lo id, hi id) -> node *)
  and_cache : (int * int, t) Hashtbl.t;
  xor_cache : (int * int, t) Hashtbl.t;
  not_cache : (int, t) Hashtbl.t;
  mutable next_id : int;
}

let manager () =
  {
    unique = Hashtbl.create 1024;
    and_cache = Hashtbl.create 1024;
    xor_cache = Hashtbl.create 1024;
    not_cache = Hashtbl.create 256;
    next_id = 2;
  }

let id = function False -> 0 | True -> 1 | Node { id; _ } -> id

(* Hash-consing constructor: enforces reduction (no redundant test) and
   sharing (unique table), which together give canonicity. *)
let mk m var lo hi =
  if id lo = id hi then lo
  else
    let key = (var, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      let n = Node { id = m.next_id; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n

let bfalse = False
let btrue = True
let of_bool b = if b then True else False
let var m v = mk m v False True
let nvar m v = mk m v True False

let top_var = function False | True -> max_int | Node { var; _ } -> var

let cofactors v = function
  | (False | True) as n -> (n, n)
  | Node { var; lo; hi; _ } as n -> if var = v then (lo, hi) else (n, n)

let rec bdd_not m n =
  match n with
  | False -> True
  | True -> False
  | Node { id = i; var; lo; hi } -> (
      match Hashtbl.find_opt m.not_cache i with
      | Some r -> r
      | None ->
        let r = mk m var (bdd_not m lo) (bdd_not m hi) in
        Hashtbl.add m.not_cache i r;
        r)

let rec bdd_and m a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | _ ->
    if id a = id b then a
    else
      let key = if id a <= id b then (id a, id b) else (id b, id a) in
      (match Hashtbl.find_opt m.and_cache key with
      | Some r -> r
      | None ->
        let v = min (top_var a) (top_var b) in
        let a0, a1 = cofactors v a and b0, b1 = cofactors v b in
        let r = mk m v (bdd_and m a0 b0) (bdd_and m a1 b1) in
        Hashtbl.add m.and_cache key r;
        r)

let bdd_or m a b = bdd_not m (bdd_and m (bdd_not m a) (bdd_not m b))

let rec bdd_xor m a b =
  match (a, b) with
  | False, x | x, False -> x
  | True, x | x, True -> bdd_not m x
  | _ ->
    if id a = id b then False
    else
      let key = if id a <= id b then (id a, id b) else (id b, id a) in
      (match Hashtbl.find_opt m.xor_cache key with
      | Some r -> r
      | None ->
        let v = min (top_var a) (top_var b) in
        let a0, a1 = cofactors v a and b0, b1 = cofactors v b in
        let r = mk m v (bdd_xor m a0 b0) (bdd_xor m a1 b1) in
        Hashtbl.add m.xor_cache key r;
        r)

let bdd_ite m c a b = bdd_or m (bdd_and m c a) (bdd_and m (bdd_not m c) b)

let equal a b = id a = id b

(* Evaluate under an assignment (a function from variable to value). *)
let rec eval assign = function
  | False -> false
  | True -> true
  | Node { var; lo; hi; _ } -> eval assign (if assign var then hi else lo)

(* Number of satisfying assignments over variables 0 .. nvars-1.

   c(n) counts assignments of the variables from top_var(n) downwards;
   skipped levels between a node and its child each double the count. *)
let sat_count ~nvars n =
  let level x = min nvars (top_var x) in
  let memo = Hashtbl.create 64 in
  let rec c n =
    match n with
    | False -> 0.0
    | True -> 1.0
    | Node { id = i; var; lo; hi } -> (
        match Hashtbl.find_opt memo i with
        | Some r -> r
        | None ->
          let branch child =
            c child *. Float.pow 2.0 (float_of_int (level child - var - 1))
          in
          let r = branch lo +. branch hi in
          Hashtbl.replace memo i r;
          r)
  in
  c n *. Float.pow 2.0 (float_of_int (level n))

let support n =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | False | True -> ()
    | Node { id = i; var; lo; hi } ->
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        Hashtbl.replace vars var ();
        go lo;
        go hi
      end
  in
  go n;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

(* Number of distinct nodes (a standard size measure). *)
let size n =
  let seen = Hashtbl.create 64 in
  let rec go acc = function
    | False | True -> acc
    | Node { id = i; lo; hi; _ } ->
      if Hashtbl.mem seen i then acc
      else begin
        Hashtbl.add seen i ();
        go (go (acc + 1) lo) hi
      end
  in
  go 0 n

(* One satisfying assignment, if any: (var, value) pairs for the variables
   on the found path; unmentioned variables are don't-cares. *)
let rec any_sat = function
  | False -> None
  | True -> Some []
  | Node { var; lo; hi; _ } -> (
      match any_sat hi with
      | Some a -> Some ((var, true) :: a)
      | None -> (
          match any_sat lo with
          | Some a -> Some ((var, false) :: a)
          | None -> None))
