(* Stuck-at fault simulation.

   The classic manufacturing-test model: a fault forces one component's
   output permanently to 0 or 1.  A test vector set *detects* a fault if
   some vector makes a faulty circuit's outputs differ from the good
   circuit's.  Coverage — the fraction of faults detected — measures the
   quality of a test set, which is the practical purpose of the
   simulation tooling the paper motivates in section 4.2.

   Faults are injected by netlist rewriting: the faulty site's fanout is
   redirected to a constant component, so every engine can run the faulty
   circuit unchanged. *)

module Netlist = Hydra_netlist.Netlist
module Compiled = Hydra_engine.Compiled

type fault = { site : int; stuck : bool }

let fault_name nl { site; stuck } =
  Printf.sprintf "%s@%d stuck-at-%d"
    (Netlist.component_name nl.Netlist.components.(site))
    site (Bool.to_int stuck)

(* All faults on gate and flip-flop outputs. *)
let all_faults nl =
  let faults = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
      | Netlist.Dffc _ ->
        faults := { site = i; stuck = true } :: { site = i; stuck = false } :: !faults
      | Netlist.Inport _ | Netlist.Outport _ | Netlist.Constant _ -> ())
    nl.Netlist.components;
  List.rev !faults

(* [inject nl fault]: a netlist where [fault.site]'s consumers read the
   constant [fault.stuck] instead. *)
let inject nl { site; stuck } =
  let n = Netlist.size nl in
  (* append one constant component at index n *)
  let components = Array.append nl.Netlist.components [| Netlist.Constant stuck |] in
  let names = Array.append nl.Netlist.names [| [] |] in
  let fanin =
    Array.append
      (Array.map
         (fun drivers ->
           Array.map (fun d -> if d = site then n else d) drivers)
         nl.Netlist.fanin)
      [| [||] |]
  in
  { nl with Netlist.components; names; fanin }

(* Run [vectors] (rows of input values, in input-port order) on a
   combinational or sequential circuit for [cycles_per_vector] cycles each
   and collect the output rows; used to compare good and faulty runs. *)
let response nl ~vectors ~cycles_per_vector =
  let sim = Compiled.create nl in
  let names = List.map fst nl.Netlist.inputs in
  List.map
    (fun vector ->
      List.iter2 (fun n b -> Compiled.set_input sim n b) names vector;
      let rows = ref [] in
      for _ = 1 to cycles_per_vector do
        Compiled.settle sim;
        rows := List.map snd (Compiled.outputs sim) :: !rows;
        Compiled.tick sim
      done;
      List.rev !rows)
    vectors

type coverage = {
  total : int;
  detected : int;
  undetected : fault list;
}

let ratio c = if c.total = 0 then 1.0 else float_of_int c.detected /. float_of_int c.total

(* [coverage nl ~vectors]: fraction of stuck-at faults detected by the
   vector set.  Sequential circuits get [cycles_per_vector] cycles of
   observation per vector (state carries over within one fault's run). *)
let coverage ?(cycles_per_vector = 1) nl ~vectors =
  let good = response nl ~vectors ~cycles_per_vector in
  let faults = all_faults nl in
  let undetected = ref [] in
  let detected = ref 0 in
  List.iter
    (fun f ->
      let bad = response (inject nl f) ~vectors ~cycles_per_vector in
      if bad <> good then incr detected else undetected := f :: !undetected)
    faults;
  { total = List.length faults; detected = !detected; undetected = List.rev !undetected }

(* Greedy random test generation: add random vectors until coverage stops
   improving or reaches [target]. *)
let random_vectors ~seed ~inputs n =
  let st = Random.State.make [| seed; inputs; n |] in
  List.init n (fun _ -> List.init inputs (fun _ -> Random.State.bool st))

let generate_tests ?(seed = 42) ?(target = 1.0) ?(batch = 16) ?(max_vectors = 512)
    nl =
  let inputs = List.length nl.Netlist.inputs in
  let rec go vectors cov =
    if ratio cov >= target || List.length vectors >= max_vectors then
      (vectors, cov)
    else begin
      let fresh = random_vectors ~seed:(seed + List.length vectors) ~inputs batch in
      let vectors' = vectors @ fresh in
      let cov' = coverage nl ~vectors:vectors' in
      (* a batch that detects nothing new ends the search *)
      if cov'.detected = cov.detected then (vectors, cov) else go vectors' cov'
    end
  in
  let initial = random_vectors ~seed ~inputs batch in
  go initial (coverage nl ~vectors:initial)
