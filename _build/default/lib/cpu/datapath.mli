(** The datapath circuit (paper section 6.1), translated equation for
    equation: register file, ir/pc/ad registers, ALU, and the multiplexed
    internal buses, all commanded by the control signals. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  type control_bus = {
    get : Control.ctl -> S.t;
    alu_op : S.t list;
  }

  type outputs = {
    ma : S.t list;  (** memory address *)
    cond : S.t;  (** condition bit: read port a <> 0 (the paper's any1) *)
    a : S.t list;  (** register file read port a; also memory write data *)
    b : S.t list;
    ir : S.t list;
    pc : S.t list;
    ad : S.t list;
    ovfl : S.t;
    r : S.t list;  (** ALU result *)
    x : S.t list;
    y : S.t list;
    p : S.t list;  (** register file write data *)
    ir_op : S.t list;  (** instruction fields (paper's [field ir 0 4]...) *)
    ir_d : S.t list;
    ir_sa : S.t list;
    ir_sb : S.t list;
  }

  val n : int
  (** Word size (16). *)

  val k : int
  (** Register address bits (4). *)

  val datapath : control_bus -> S.t list -> outputs
  (** [datapath control indat]: the paper's circuit; [indat] is the
      memory/input data word. *)
end
