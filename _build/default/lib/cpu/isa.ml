(* Instruction set of the paper's RISC processor (section 6).

   A 16-bit word machine with 16 general registers.  One-word RRR
   instructions operate register-to-register; two-word RX instructions
   carry a displacement word and compute an effective address
   ea = reg[sa] + disp (the paper's Load walks exactly this sequence:
   fetch displacement into ad, add the index register, access memory).

   Instruction word fields, most significant nibble first (the paper's
   [field ir 0 4] etc.):  op | d | sa | sb.

   Opcodes (Load fixed at 1 by the paper):

     0  add    RRR  reg[d] := reg[sa] + reg[sb]
     1  load   RX   reg[d] := mem[reg[sa] + disp]
     2  store  RX   mem[reg[sa] + disp] := reg[d]
     3  ldval  RX   reg[d] := reg[sa] + disp
     4  sub    RRR  reg[d] := reg[sa] - reg[sb]
     5  halt        stop (the control loops in a final state)
     6  cmplt  RRR  reg[d] := reg[sa] < reg[sb]   (two's complement)
     7  cmpeq  RRR  reg[d] := reg[sa] = reg[sb]
     8  cmpgt  RRR  reg[d] := reg[sa] > reg[sb]
     9  jump   RX   pc := reg[sa] + disp
    10  jumpf  RX   if reg[d] = 0 then pc := reg[sa] + disp
    11  jumpt  RX   if reg[d] <> 0 then pc := reg[sa] + disp
    12  inc    RRR  reg[d] := reg[sa] + 1
    13  and    RRR  reg[d] := reg[sa] land reg[sb]
    14  or     RRR  reg[d] := reg[sa] lor reg[sb]
    15  xor    RRR  reg[d] := reg[sa] lxor reg[sb]

   The assembler's [nop] is an alias for [and R0,R0,R0], which rewrites a
   register with its own value. *)

let word_size = 16
let reg_address_bits = 4
let num_regs = 1 lsl reg_address_bits

type opcode =
  | Add
  | Load
  | Store
  | Ldval
  | Sub
  | Halt
  | Cmplt
  | Cmpeq
  | Cmpgt
  | Jump
  | Jumpf
  | Jumpt
  | Inc
  | Land
  | Lor
  | Lxor

let opcode_of_int = function
  | 0 -> Add
  | 1 -> Load
  | 2 -> Store
  | 3 -> Ldval
  | 4 -> Sub
  | 5 -> Halt
  | 6 -> Cmplt
  | 7 -> Cmpeq
  | 8 -> Cmpgt
  | 9 -> Jump
  | 10 -> Jumpf
  | 11 -> Jumpt
  | 12 -> Inc
  | 13 -> Land
  | 14 -> Lor
  | 15 -> Lxor
  | n -> invalid_arg (Printf.sprintf "Isa.opcode_of_int: %d" n)

let int_of_opcode = function
  | Add -> 0
  | Load -> 1
  | Store -> 2
  | Ldval -> 3
  | Sub -> 4
  | Halt -> 5
  | Cmplt -> 6
  | Cmpeq -> 7
  | Cmpgt -> 8
  | Jump -> 9
  | Jumpf -> 10
  | Jumpt -> 11
  | Inc -> 12
  | Land -> 13
  | Lor -> 14
  | Lxor -> 15

let opcode_name = function
  | Add -> "add"
  | Load -> "load"
  | Store -> "store"
  | Ldval -> "ldval"
  | Sub -> "sub"
  | Halt -> "halt"
  | Cmplt -> "cmplt"
  | Cmpeq -> "cmpeq"
  | Cmpgt -> "cmpgt"
  | Jump -> "jump"
  | Jumpf -> "jumpf"
  | Jumpt -> "jumpt"
  | Inc -> "inc"
  | Land -> "and"
  | Lor -> "or"
  | Lxor -> "xor"

let is_rx = function
  | Load | Store | Ldval | Jump | Jumpf | Jumpt -> true
  | Add | Sub | Halt | Cmplt | Cmpeq | Cmpgt | Inc | Land | Lor | Lxor ->
    false

type instruction =
  | Rrr of opcode * int * int * int  (* op, d, sa, sb *)
  | Rx of opcode * int * int * int   (* op, d, sa, disp *)

let check_reg name r =
  if r < 0 || r >= num_regs then
    invalid_arg (Printf.sprintf "Isa: register %s=%d out of range" name r)

let mask16 v = v land 0xffff

(* Encode to one or two 16-bit words. *)
let encode = function
  | Rrr (op, d, sa, sb) ->
    check_reg "d" d;
    check_reg "sa" sa;
    check_reg "sb" sb;
    [ (int_of_opcode op lsl 12) lor (d lsl 8) lor (sa lsl 4) lor sb ]
  | Rx (op, d, sa, disp) ->
    check_reg "d" d;
    check_reg "sa" sa;
    [ (int_of_opcode op lsl 12) lor (d lsl 8) lor (sa lsl 4); mask16 disp ]

let encode_program instrs = List.concat_map encode instrs

(* Decode the instruction starting at [addr] in [fetch]; returns the
   instruction and its length in words. *)
let decode ~fetch addr =
  let w = fetch addr in
  let op = opcode_of_int ((w lsr 12) land 0xf) in
  let d = (w lsr 8) land 0xf and sa = (w lsr 4) land 0xf and sb = w land 0xf in
  if is_rx op then (Rx (op, d, sa, fetch (mask16 (addr + 1))), 2)
  else (Rrr (op, d, sa, sb), 1)

let to_string = function
  | Rrr (Halt, _, _, _) -> "halt"
  | Rrr (Land, 0, 0, 0) -> "nop"
  | Rrr (Inc, d, sa, _) -> Printf.sprintf "inc   R%d,R%d" d sa
  | Rrr (op, d, sa, sb) ->
    Printf.sprintf "%-5s R%d,R%d,R%d" (opcode_name op) d sa sb
  | Rx (Jump, _, sa, disp) -> Printf.sprintf "jump  %d[R%d]" disp sa
  | Rx (op, d, sa, disp) ->
    Printf.sprintf "%-5s R%d,%d[R%d]" (opcode_name op) d disp sa
