(* Control circuit synthesis: the delay element method (paper section 6.3).

   The circuit contains one flip flop per state of the control algorithm; a
   unique 1 ("I am in this state") travels through them exactly as the
   locus of execution moves through the algorithm:

     st_instr_fet = dff (start OR every token returning to fetch)
     st_dispatch  = dff st_instr_fet
     p            = demuxw op st_dispatch
     first state of sequence entered by code i = dff (p !! i), then chained

   Conditional transfers route the token with a demultiplexer driven by
   the datapath's cond bit.  [synthesize_fsm] builds this one-hot skeleton
   for ANY machine — the dispatch codes just have to partition the opcode
   space; [synthesize] instantiates it for the section-6 processor and
   ors the state tokens into its named control signals. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  module G = Hydra_circuits.Gates.Make (S)
  module M = Hydra_circuits.Mux.Make (S)

  (* The machine-independent skeleton: one-hot state tokens. *)
  type fsm = {
    token : string -> S.t;        (* state token by name *)
    state_tokens : (string * S.t) list;  (* in document order *)
    fsm_halted : S.t;             (* or of the Stay states *)
  }

  (* [synthesize_fsm ~fetch_name ~sequences ~start ~op ~cond]:
     [sequences] associates each execution sequence — a list of
     (state name, transition) pairs — with the dispatch codes (values of
     the [op] word) that enter it; together the codes must cover every
     opcode exactly once. *)
  let synthesize_fsm ~fetch_name
      ~(sequences : (int list * (string * Control.next) list) list) ~start
      ~op ~cond =
    let states = ref [] in
    let halted = ref S.zero in
    let returns = ref [] in
    let add_state name token = states := (name, token) :: !states in
    (* token flow along one sequence; returns the fall-out-the-end token *)
    let rec flow token seq =
      match seq with
      | [] -> token
      | (name, next) :: rest ->
        let tok = S.label name (S.dff token) in
        add_state name tok;
        (match next with
        | Control.Next_state -> flow tok rest
        | Control.To_fetch ->
          assert (rest = []);
          tok
        | Control.Stay ->
          failwith
            "Control_circuit: Stay is only supported as a whole sequence"
        | Control.If_cond_next ->
          (* cond = 1 falls through, cond = 0 returns to fetch *)
          let not_taken, taken = M.demux1 cond tok in
          returns := not_taken :: !returns;
          flow taken rest
        | Control.If_not_cond_next ->
          let taken, not_taken = M.demux1 cond tok in
          returns := not_taken :: !returns;
          flow taken rest)
    in
    (* a Stay state holds its token with a self-loop *)
    let flow_halt token name =
      let tok =
        S.feedback (fun self -> S.label name (S.dff (S.or2 token self)))
      in
      add_state name tok;
      halted := S.or2 !halted tok;
      S.zero
    in
    let nlines = 1 lsl List.length op in
    let owners = Array.make nlines 0 in
    List.iter
      (fun (codes, _) ->
        List.iter
          (fun c ->
            if c < 0 || c >= nlines then
              invalid_arg "Control_circuit: dispatch code out of range";
            owners.(c) <- owners.(c) + 1)
          codes)
      sequences;
    if Array.exists (fun k -> k <> 1) owners then
      invalid_arg
        "Control_circuit: dispatch codes must partition the opcode space";
    let _fetch_token =
      S.feedback (fun fetch_loop ->
          let fetch_loop = S.label fetch_name fetch_loop in
          add_state fetch_name fetch_loop;
          let dispatch = S.label "st_dispatch" (S.dff fetch_loop) in
          add_state "st_dispatch" dispatch;
          let p = M.demuxw op dispatch in
          let entry_for codes =
            G.orw (List.filteri (fun i _ -> List.mem i codes) p)
          in
          let seq_ends =
            List.map
              (fun (codes, seq) ->
                let entry = entry_for codes in
                match seq with
                | [ (name, Control.Stay) ] -> flow_halt entry name
                | _ -> flow entry seq)
              sequences
          in
          (* the loop placeholder transparently forwards to this dff in
             every semantics, so the recorded fetch token needs no patch *)
          S.dff (G.orw ((start :: seq_ends) @ !returns)))
    in
    let state_tokens = List.rev !states in
    let token name =
      match List.assoc_opt name state_tokens with
      | Some t -> t
      | None -> invalid_arg ("Control_circuit: unknown state " ^ name)
    in
    { token; state_tokens; fsm_halted = !halted }

  (* ------------------------------------------------------------------ *)
  (* The section-6 processor's control circuit: the FSM skeleton plus the
     named control signals, each the or of the states that assert it. *)

  type outputs = {
    ctl : Control.ctl -> S.t;
    alu_op : S.t list;  (* 4-bit abcd code for the ALU *)
    states : (string * S.t) list;  (* one-hot state word, for observation *)
    halted : S.t;
  }

  let synthesize (alg : Control.algorithm) ~start ~ir_op ~cond =
    let sequences =
      List.map
        (fun (opc, seq) ->
          let codes =
            List.filter
              (fun i -> Isa.opcode_of_int i = opc)
              (List.init 16 Fun.id)
          in
          ( codes,
            List.map (fun st -> (st.Control.name, st.Control.next)) seq ))
        alg.Control.sequences
    in
    let fsm =
      synthesize_fsm ~fetch_name:alg.Control.fetch.Control.name ~sequences
        ~start ~op:ir_op ~cond
    in
    (* per-state signal/alu annotations, fetch included *)
    let annotated = Control.states alg in
    let ctl c =
      let setters =
        List.filter_map
          (fun st ->
            if List.mem c st.Control.signals then
              Some (fsm.token st.Control.name)
            else None)
          annotated
      in
      match setters with
      | [] -> S.zero
      | _ -> S.label (Control.ctl_name c) (G.orw setters)
    in
    let alu_op =
      List.init 4 (fun bit ->
          let setters =
            List.filter_map
              (fun st ->
                if (Control.alu_code st.Control.alu lsr (3 - bit)) land 1 = 1
                then Some (fsm.token st.Control.name)
                else None)
              annotated
          in
          match setters with [] -> S.zero | _ -> G.orw setters)
    in
    {
      ctl;
      alu_op;
      states = fsm.state_tokens;
      halted = fsm.fsm_halted;
    }
end
