(* The control algorithm (paper section 6.2).

   "It is best to define the control system in two stages: first as an
   abstract control algorithm and then as a detailed control circuit."
   This module is the first stage: a data representation of the imperative
   control program — an infinite loop of fetch, dispatch on the opcode,
   and a short sequence of states per instruction, each state asserting a
   set of control signals.  {!Control_circuit} compiles it to hardware
   with the delay element method (section 6.3). *)

(* The individual control signals of the datapath (paper section 6.1). *)
type ctl =
  | Rf_ld   (* register file writes reg[ir_d] := p at the tick *)
  | Rf_alu  (* rf write data p comes from the ALU result r (else indat) *)
  | Rf_sd   (* rf read address sa := ir_d (else ir_sa) *)
  | Ir_ld   (* instruction register loads indat *)
  | Pc_ld   (* program counter loads r *)
  | Ad_ld   (* address register loads *)
  | Ad_alu  (* ad input comes from r (else indat) *)
  | Ma_pc   (* memory address is pc (else ad) *)
  | X_pc    (* ALU x operand is pc (else a) *)
  | Y_ad    (* ALU y operand is ad (else b) *)
  | Sto     (* memory write enable: mem[ma] := a at the tick *)

let all_ctls =
  [ Rf_ld; Rf_alu; Rf_sd; Ir_ld; Pc_ld; Ad_ld; Ad_alu; Ma_pc; X_pc; Y_ad; Sto ]

let ctl_name = function
  | Rf_ld -> "ctl_rf_ld"
  | Rf_alu -> "ctl_rf_alu"
  | Rf_sd -> "ctl_rf_sd"
  | Ir_ld -> "ctl_ir_ld"
  | Pc_ld -> "ctl_pc_ld"
  | Ad_ld -> "ctl_ad_ld"
  | Ad_alu -> "ctl_ad_alu"
  | Ma_pc -> "ctl_ma_pc"
  | X_pc -> "ctl_x_pc"
  | Y_ad -> "ctl_y_ad"
  | Sto -> "ctl_sto"

(* ALU operation requested by a state (4-bit abcd code, {!Hydra_circuits.Alu}). *)
type alu_sel =
  | Alu_add
  | Alu_sub
  | Alu_inc
  | Alu_and
  | Alu_or
  | Alu_xor
  | Alu_lt
  | Alu_eq
  | Alu_gt

let alu_code = function
  | Alu_add -> 0b0000
  | Alu_sub -> 0b0100
  | Alu_inc -> 0b1100
  | Alu_and -> 0b1101
  | Alu_or -> 0b1110
  | Alu_xor -> 0b1111
  | Alu_lt -> 0b1001
  | Alu_eq -> 0b1010
  | Alu_gt -> 0b1011

(* Where the control token goes after a state. *)
type next =
  | Next_state       (* fall through to the following state in the list *)
  | To_fetch         (* back to st_instr_fet *)
  | Stay             (* self-loop: the halt state *)
  | If_cond_next
      (* conditional: when the datapath's cond bit is 1 the token falls
         through to the next state, otherwise it returns to fetch
         (used by jumpt) *)
  | If_not_cond_next
      (* the mirror: cond = 0 falls through, cond = 1 returns to fetch
         (used by jumpf) *)

type state = {
  name : string;
  operation : string;  (* the paper-style register-transfer comment *)
  signals : ctl list;
  alu : alu_sel;
  next : next;
}

let st ?(alu = Alu_add) ?(next = Next_state) name operation signals =
  { name; operation; signals; alu; next }

type algorithm = {
  fetch : state;
  (* per opcode 0..15, the execution sequence (possibly empty = straight
     back to fetch, like nop) *)
  sequences : (Isa.opcode * state list) list;
}

(* The control algorithm for the section-6 processor.  The fetch and Load
   sequences are the paper's, verbatim. *)
let algorithm =
  let fetch =
    st "st_instr_fet" "ir := mem[pc], pc++"
      [ Ma_pc; Ir_ld; X_pc; Pc_ld ]
      ~alu:Alu_inc ~next:Next_state
  in
  (* The common first state of every RX instruction: fetch the
     displacement word into ad and increment the pc. *)
  let fetch_disp name =
    st name "ad := mem[pc], pc++" [ Ma_pc; Ad_ld; X_pc; Pc_ld ] ~alu:Alu_inc
  in
  let effective_address name =
    st name "ad := reg[ir_sa] + ad" [ Y_ad; Ad_ld; Ad_alu ] ~alu:Alu_add
  in
  let alu_rrr name operation sel =
    [ st name operation [ Rf_ld; Rf_alu ] ~alu:sel ~next:To_fetch ]
  in
  let sequences =
    [
      (Isa.Add, alu_rrr "st_add" "reg[ir_d] := reg[ir_sa] + reg[ir_sb]" Alu_add);
      ( Isa.Load,
        [
          fetch_disp "st_load0";
          effective_address "st_load1";
          st "st_load2" "reg[ir_d] := mem[ad]" [ Rf_ld ] ~next:To_fetch;
        ] );
      ( Isa.Store,
        [
          fetch_disp "st_store0";
          effective_address "st_store1";
          st "st_store2" "mem[ad] := reg[ir_d]" [ Rf_sd; Sto ] ~next:To_fetch;
        ] );
      ( Isa.Ldval,
        [
          fetch_disp "st_ldval0";
          st "st_ldval1" "reg[ir_d] := reg[ir_sa] + ad" [ Y_ad; Rf_ld; Rf_alu ]
            ~alu:Alu_add ~next:To_fetch;
        ] );
      (Isa.Sub, alu_rrr "st_sub" "reg[ir_d] := reg[ir_sa] - reg[ir_sb]" Alu_sub);
      (Isa.Halt, [ st "st_halt" "halt" [] ~next:Stay ]);
      (Isa.Cmplt, alu_rrr "st_cmplt" "reg[ir_d] := reg[ir_sa] < reg[ir_sb]" Alu_lt);
      (Isa.Cmpeq, alu_rrr "st_cmpeq" "reg[ir_d] := reg[ir_sa] = reg[ir_sb]" Alu_eq);
      (Isa.Cmpgt, alu_rrr "st_cmpgt" "reg[ir_d] := reg[ir_sa] > reg[ir_sb]" Alu_gt);
      ( Isa.Jump,
        [
          fetch_disp "st_jump0";
          st "st_jump1" "pc := reg[ir_sa] + ad" [ Y_ad; Pc_ld ] ~alu:Alu_add
            ~next:To_fetch;
        ] );
      ( Isa.Jumpf,
        [
          (* present reg[ir_d] on read port a so cond = (reg[ir_d] <> 0) *)
          st "st_jumpf0" "ad := mem[pc], pc++; test reg[ir_d]"
            [ Ma_pc; Ad_ld; X_pc; Pc_ld; Rf_sd ]
            ~alu:Alu_inc ~next:If_not_cond_next;
          st "st_jumpf1" "pc := reg[ir_sa] + ad" [ Y_ad; Pc_ld ] ~alu:Alu_add
            ~next:To_fetch;
        ] );
      ( Isa.Jumpt,
        [
          st "st_jumpt0" "ad := mem[pc], pc++; test reg[ir_d]"
            [ Ma_pc; Ad_ld; X_pc; Pc_ld; Rf_sd ]
            ~alu:Alu_inc ~next:If_cond_next;
          st "st_jumpt1" "pc := reg[ir_sa] + ad" [ Y_ad; Pc_ld ] ~alu:Alu_add
            ~next:To_fetch;
        ] );
      (Isa.Inc, alu_rrr "st_inc" "reg[ir_d] := reg[ir_sa] + 1" Alu_inc);
      (Isa.Land, alu_rrr "st_and" "reg[ir_d] := reg[ir_sa] and reg[ir_sb]" Alu_and);
      (Isa.Lor, alu_rrr "st_or" "reg[ir_d] := reg[ir_sa] or reg[ir_sb]" Alu_or);
      (Isa.Lxor, alu_rrr "st_xor" "reg[ir_d] := reg[ir_sa] xor reg[ir_sb]" Alu_xor);
    ]
  in
  { fetch; sequences }

(* All states of the algorithm in document order: fetch, dispatch (implied),
   then each opcode's sequence. *)
let states alg =
  alg.fetch :: List.concat_map snd alg.sequences

let sequence_for alg op =
  match List.assoc_opt op alg.sequences with
  | Some seq -> seq
  | None -> []

(* Pretty-print the algorithm in the paper's notation. *)
let to_string alg =
  let buf = Buffer.create 1024 in
  let state s =
    Buffer.add_string buf (Printf.sprintf "%s:\n  %s\n" s.name s.operation);
    let sigs = List.map ctl_name s.signals in
    let alu_note =
      if s.alu = Alu_add then []
      else
        [ Printf.sprintf "ctl_alu_abcd=%d%d%d%d"
            ((alu_code s.alu lsr 3) land 1)
            ((alu_code s.alu lsr 2) land 1)
            ((alu_code s.alu lsr 1) land 1)
            (alu_code s.alu land 1) ]
    in
    Buffer.add_string buf
      (Printf.sprintf "  {%s}\n" (String.concat ", " (sigs @ alu_note)));
    (match s.next with
    | If_cond_next ->
      Buffer.add_string buf "  if cond = 0 then goto st_instr_fet\n"
    | If_not_cond_next ->
      Buffer.add_string buf "  if cond = 1 then goto st_instr_fet\n"
    | Stay -> Buffer.add_string buf "  (stays here forever)\n"
    | Next_state | To_fetch -> ())
  in
  state alg.fetch;
  Buffer.add_string buf "st_dispatch:\n  case ir_op of\n";
  List.iter
    (fun (op, seq) ->
      Buffer.add_string buf
        (Printf.sprintf "-- %s (opcode %d)\n" (Isa.opcode_name op)
           (Isa.int_of_opcode op));
      List.iter state seq)
    alg.sequences;
  Buffer.contents buf
