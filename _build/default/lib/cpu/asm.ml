(* A two-pass assembler for the section-6 processor.

   Syntax (one statement per line; ';' starts a comment):

     label: add   R1,R2,R3        ; RRR
            inc   R1,R2           ; RRR, sb unused
            nop / halt            ; RRR, no operands
            load  R1,x[R2]        ; RX: displacement[index]
            jump  loop[R0]        ; RX with d = 0
            jumpf R1,done[R0]     ; RX
            data  42              ; literal word (decimal, 0x hex, or label)

   Displacements and data may be numbers or labels.  The program is
   assembled at origin 0 (where the DMA loader places it). *)

type operand = Num of int | Label of string

exception Error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* ------------------------------------------------------------------ *)

type item =
  | Irrr of Isa.opcode * int * int * int
  | Irx of Isa.opcode * int * int * operand
  | Idata of operand

let size_of = function Irrr _ -> 1 | Irx _ -> 2 | Idata _ -> 1

let parse_reg line s =
  let s = String.trim s in
  let fail () = error line "expected register, got %S" s in
  if String.length s < 2 || (s.[0] <> 'R' && s.[0] <> 'r') then fail ();
  match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
  | Some r when r >= 0 && r < Isa.num_regs -> r
  | Some r -> error line "register R%d out of range" r
  | None -> fail ()

let parse_operand line s =
  let s = String.trim s in
  if s = "" then error line "empty operand";
  match int_of_string_opt s with
  | Some n -> Num n
  | None ->
    if
      (s.[0] >= 'a' && s.[0] <= 'z')
      || (s.[0] >= 'A' && s.[0] <= 'Z')
      || s.[0] = '_'
    then Label s
    else error line "bad operand %S" s

(* "disp[Rk]" *)
let parse_rx_arg line s =
  let s = String.trim s in
  match String.index_opt s '[' with
  | None -> error line "RX operand must look like disp[Rn], got %S" s
  | Some i ->
    if s.[String.length s - 1] <> ']' then error line "missing ']' in %S" s;
    let disp = parse_operand line (String.sub s 0 i) in
    let reg =
      parse_reg line (String.sub s (i + 1) (String.length s - i - 2))
    in
    (disp, reg)

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let opcode_table =
  [ ("add", Isa.Add); ("sub", Isa.Sub); ("cmplt", Isa.Cmplt);
    ("cmpeq", Isa.Cmpeq); ("cmpgt", Isa.Cmpgt); ("inc", Isa.Inc);
    ("and", Isa.Land); ("or", Isa.Lor); ("xor", Isa.Lxor);
    ("halt", Isa.Halt); ("load", Isa.Load);
    ("store", Isa.Store); ("ldval", Isa.Ldval); ("jump", Isa.Jump);
    ("jumpf", Isa.Jumpf); ("jumpt", Isa.Jumpt) ]

let parse_line lineno raw =
  let text =
    match String.index_opt raw ';' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let text = String.trim text in
  if text = "" then (None, None)
  else
    let label, rest =
      match String.index_opt text ':' with
      | Some i ->
        let l = String.trim (String.sub text 0 i) in
        if l = "" then error lineno "empty label";
        (Some l, String.trim (String.sub text (i + 1) (String.length text - i - 1)))
      | None -> (None, text)
    in
    if rest = "" then (label, None)
    else
      let mnemonic, args =
        match String.index_opt rest ' ' with
        | Some i ->
          ( String.lowercase_ascii (String.sub rest 0 i),
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
        | None -> (String.lowercase_ascii rest, "")
      in
      if mnemonic = "data" then
        (label, Some (Idata (parse_operand lineno args)))
      else if mnemonic = "nop" then
        (* nop is an alias for "and R0,R0,R0": rewrite R0 with itself *)
        (label, Some (Irrr (Isa.Land, 0, 0, 0)))
      else
        match List.assoc_opt mnemonic opcode_table with
        | None -> error lineno "unknown mnemonic %S" mnemonic
        | Some op -> (
          let ops = split_operands args in
          match (op, ops) with
          | Isa.Halt, [] -> (label, Some (Irrr (op, 0, 0, 0)))
          | Isa.Inc, [ d; sa ] ->
            (label, Some (Irrr (op, parse_reg lineno d, parse_reg lineno sa, 0)))
          | ( Isa.Add | Isa.Sub | Isa.Cmplt | Isa.Cmpeq | Isa.Cmpgt
            | Isa.Land | Isa.Lor | Isa.Lxor ), [ d; sa; sb ]
            ->
            ( label,
              Some
                (Irrr
                   ( op,
                     parse_reg lineno d,
                     parse_reg lineno sa,
                     parse_reg lineno sb )) )
          | Isa.Jump, [ rx ] ->
            let disp, sa = parse_rx_arg lineno rx in
            (label, Some (Irx (op, 0, sa, disp)))
          | (Isa.Load | Isa.Store | Isa.Ldval | Isa.Jumpf | Isa.Jumpt), [ d; rx ]
            ->
            let disp, sa = parse_rx_arg lineno rx in
            (label, Some (Irx (op, parse_reg lineno d, sa, disp)))
          | _ ->
            error lineno "wrong operands for %s" (Isa.opcode_name op))

(* Assemble source text into memory words (origin 0). *)
let assemble source =
  let lines = String.split_on_char '\n' source in
  (* pass 1: collect items and label addresses *)
  let items = ref [] and labels = Hashtbl.create 16 and addr = ref 0 in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let label, item = parse_line lineno raw in
      (match label with
      | Some l ->
        if Hashtbl.mem labels l then error lineno "duplicate label %S" l;
        Hashtbl.replace labels l !addr
      | None -> ());
      match item with
      | Some it ->
        items := (lineno, it) :: !items;
        addr := !addr + size_of it
      | None -> ())
    lines;
  let items = List.rev !items in
  (* pass 2: resolve and encode *)
  let resolve lineno = function
    | Num n -> n
    | Label l -> (
        match Hashtbl.find_opt labels l with
        | Some a -> a
        | None -> error lineno "undefined label %S" l)
  in
  List.concat_map
    (fun (lineno, it) ->
      match it with
      | Irrr (op, d, sa, sb) -> Isa.encode (Isa.Rrr (op, d, sa, sb))
      | Irx (op, d, sa, disp) ->
        Isa.encode (Isa.Rx (op, d, sa, resolve lineno disp))
      | Idata v -> [ resolve lineno v land 0xffff ])
    items

let labels_of source =
  let lines = String.split_on_char '\n' source in
  let labels = Hashtbl.create 16 and addr = ref 0 in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let label, item = parse_line lineno raw in
      (match label with
      | Some l -> Hashtbl.replace labels l !addr
      | None -> ());
      match item with
      | Some it -> addr := !addr + size_of it
      | None -> ())
    lines;
  labels

(* Disassemble a memory image of [words]. *)
let disassemble words =
  let arr = Array.of_list words in
  let buf = Buffer.create 256 in
  let i = ref 0 in
  while !i < Array.length arr do
    let fetch a = if a < Array.length arr then arr.(a) else 0 in
    let instr, len = Isa.decode ~fetch !i in
    Buffer.add_string buf
      (Printf.sprintf "%04x  %s\n" !i (Isa.to_string instr));
    i := !i + len
  done;
  Buffer.contents buf
