(* The complete processor system: datapath + synthesized control circuit +
   memory + DMA (paper sections 6.1-6.4).

   The memory can be structural — a gate-level RAM with a configurable
   address width, since a full 2^16-word RAM is enormous at gate level —
   or external, in which case the memory bus is exposed and the simulation
   driver models the store behaviourally (the substitution is documented
   in DESIGN.md; both configurations drive the identical datapath and
   control circuits).

   DMA: while [dma] is 1 the memory address, write data and write enable
   are taken from the [dma_a]/[dma_d] inputs, which is how the driver
   loads a machine-language program before pulsing [start] (paper section
   6.4). *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  module G = Hydra_circuits.Gates.Make (S)
  module M = Hydra_circuits.Mux.Make (S)
  module R = Hydra_circuits.Regs.Make (S)
  module D = Datapath.Make (S)
  module CC = Control_circuit.Make (S)

  type inputs = {
    start : S.t;        (* one-cycle pulse: begin execution *)
    dma : S.t;          (* DMA mode: the loader owns the memory bus *)
    dma_a : S.t list;   (* DMA address *)
    dma_d : S.t list;   (* DMA write data *)
  }

  type outputs = {
    dp : D.outputs;
    control : CC.outputs;
    halted : S.t;
    (* memory bus as driven this cycle *)
    mem_addr : S.t list;
    mem_write : S.t;
    mem_wdata : S.t list;
    mem_rdata : S.t list;  (* = indat: what the processor reads *)
  }

  let n = Isa.word_size

  (* [system ~mem_bits inputs]: processor with a structural RAM of
     2^mem_bits words. *)
  let system ~mem_bits (i : inputs) =
    if mem_bits < 1 || mem_bits > n then invalid_arg "System.system: mem_bits";
    let stash = ref None in
    (* Construction circularity: the control needs ir_op/cond from the
       datapath; the datapath needs the control signals; memory couples
       both.  All loops pass through registers (ir, the state flip flops),
       so tie the knot on the control-to-datapath bus: 11 ctl signals +
       4 alu bits + indat (n bits). *)
    let _loop =
      S.feedback_list
        (List.length Control.all_ctls + 4 + n)
        (fun loop ->
          let ctls, rest =
            Hydra_core.Patterns.split_at (List.length Control.all_ctls) loop
          in
          let alu_op, indat = Hydra_core.Patterns.split_at 4 rest in
          let get c =
            List.nth ctls
              (Option.get
                 (List.find_index (fun c' -> c' = c) Control.all_ctls))
          in
          let dp = D.datapath { D.get; alu_op } indat in
          let control =
            CC.synthesize Control.algorithm ~start:i.start
              ~ir_op:dp.D.ir_op ~cond:dp.D.cond
          in
          (* memory bus with DMA override *)
          let mem_addr = M.wmux1 i.dma dp.D.ma i.dma_a in
          let mem_wdata = M.wmux1 i.dma dp.D.a i.dma_d in
          let mem_write = M.mux1 i.dma (control.CC.ctl Control.Sto) S.one in
          let addr_low =
            (* low mem_bits of the address word (MSB-first list) *)
            Hydra_core.Bitvec.field mem_addr (n - mem_bits) mem_bits
          in
          let mem_rdata = R.ram mem_bits mem_write addr_low mem_wdata in
          stash :=
            Some
              {
                dp;
                control;
                halted = control.CC.halted;
                mem_addr;
                mem_write;
                mem_wdata;
                mem_rdata;
              };
          List.map control.CC.ctl Control.all_ctls
          @ control.CC.alu_op @ mem_rdata)
    in
    match !stash with Some o -> o | None -> assert false

  (* [system_external_memory i ~indat]: the processor core alone; [indat]
     is the memory read data, supplied by the environment, and the memory
     bus outputs tell the environment what to do.  Used by the behavioural-
     memory driver. *)
  let system_external_memory (i : inputs) ~indat =
    let stash = ref None in
    let _loop =
      S.feedback_list
        (List.length Control.all_ctls + 4)
        (fun loop ->
          let ctls, alu_op =
            Hydra_core.Patterns.split_at (List.length Control.all_ctls) loop
          in
          let get c =
            List.nth ctls
              (Option.get
                 (List.find_index (fun c' -> c' = c) Control.all_ctls))
          in
          let dp = D.datapath { D.get; alu_op } indat in
          let control =
            CC.synthesize Control.algorithm ~start:i.start
              ~ir_op:dp.D.ir_op ~cond:dp.D.cond
          in
          let mem_addr = M.wmux1 i.dma dp.D.ma i.dma_a in
          let mem_wdata = M.wmux1 i.dma dp.D.a i.dma_d in
          let mem_write = M.mux1 i.dma (control.CC.ctl Control.Sto) S.one in
          stash :=
            Some
              {
                dp;
                control;
                halted = control.CC.halted;
                mem_addr;
                mem_write;
                mem_wdata;
                mem_rdata = indat;
              };
          List.map control.CC.ctl Control.all_ctls @ control.CC.alu_op)
    in
    match !stash with Some o -> o | None -> assert false
end
