(** Instruction set of the paper's RISC processor (section 6): a 16-bit
    word machine, 16 registers, one-word RRR instructions and two-word RX
    instructions with effective address [reg[sa] + displacement].  Load
    has opcode 1, as in the paper. *)

val word_size : int
val reg_address_bits : int
val num_regs : int

type opcode =
  | Add
  | Load
  | Store
  | Ldval
  | Sub
  | Halt
  | Cmplt
  | Cmpeq
  | Cmpgt
  | Jump
  | Jumpf
  | Jumpt
  | Inc
  | Land
  | Lor
  | Lxor

val opcode_of_int : int -> opcode
(** Total on 0..15; raises otherwise. *)

val int_of_opcode : opcode -> int
val opcode_name : opcode -> string
val is_rx : opcode -> bool

type instruction =
  | Rrr of opcode * int * int * int  (** op, d, sa, sb *)
  | Rx of opcode * int * int * int  (** op, d, sa, displacement *)

val encode : instruction -> int list
(** One or two 16-bit words; register fields are range-checked. *)

val encode_program : instruction list -> int list

val decode : fetch:(int -> int) -> int -> instruction * int
(** [decode ~fetch addr]: the instruction at [addr] and its length in
    words. *)

val to_string : instruction -> string
