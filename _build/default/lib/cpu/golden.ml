(* Golden-model ISA interpreter.

   A plain OCaml implementation of the instruction set, used as the
   reference in co-simulation: the gate-level processor must make exactly
   the same register writes, memory writes and control transfers.  This is
   the machine-language-level "behaviour" against which the circuit is
   validated. *)

type t = {
  mem : int array;      (* 16-bit words *)
  regs : int array;
  mutable pc : int;
  mutable halted : bool;
  mutable cycles : int; (* clock cycles the circuit implementation needs *)
  mutable instructions : int;
}

type event =
  | Reg_write of { reg : int; value : int }
  | Mem_write of { addr : int; value : int }
  | Jump_taken of { target : int }
  | Halted

let mask16 v = v land 0xffff

let signed v = if v land 0x8000 <> 0 then v - 0x10000 else v

let create ?(mem_words = 65536) () =
  {
    mem = Array.make mem_words 0;
    regs = Array.make Isa.num_regs 0;
    pc = 0;
    halted = false;
    cycles = 0;
    instructions = 0;
  }

let load_program t ?(at = 0) words =
  List.iteri (fun i w -> t.mem.(at + i) <- mask16 w) words

let read_mem t a = t.mem.(mask16 a mod Array.length t.mem)
let write_mem t a v = t.mem.(mask16 a mod Array.length t.mem) <- mask16 v
let reg t r = t.regs.(r)
let pc t = t.pc

(* Clock cycles the delay-element control circuit spends per instruction:
   fetch (1) + dispatch (1) + execution states.  Conditional jumps take one
   execution state when not taken (the token returns to fetch straight from
   the test state) and two when taken.  Used to predict the gate-level
   cycle count exactly. *)
let exec_cycles t = function
  | Isa.Rrr (_, _, _, _) -> 1
  | Isa.Rx (Isa.Load, _, _, _) | Isa.Rx (Isa.Store, _, _, _) -> 3
  | Isa.Rx (Isa.Ldval, _, _, _) | Isa.Rx (Isa.Jump, _, _, _) -> 2
  | Isa.Rx (Isa.Jumpf, d, _, _) -> if t.regs.(d) = 0 then 2 else 1
  | Isa.Rx (Isa.Jumpt, d, _, _) -> if t.regs.(d) <> 0 then 2 else 1
  | Isa.Rx (_, _, _, _) -> 1 (* cannot occur: other ops decode as Rrr *)

(* Execute one instruction; returns the observable events. *)
let step t =
  if t.halted then [ Halted ]
  else begin
    let instr, len = Isa.decode ~fetch:(read_mem t) t.pc in
    let next_pc = mask16 (t.pc + len) in
    t.instructions <- t.instructions + 1;
    t.cycles <- t.cycles + 2 + exec_cycles t instr;
    let events = ref [] in
    let set_reg d v =
      t.regs.(d) <- mask16 v;
      events := Reg_write { reg = d; value = mask16 v } :: !events
    in
    t.pc <- next_pc;
    (match instr with
    | Isa.Rrr (Isa.Add, d, sa, sb) -> set_reg d (t.regs.(sa) + t.regs.(sb))
    | Isa.Rrr (Isa.Sub, d, sa, sb) -> set_reg d (t.regs.(sa) - t.regs.(sb))
    | Isa.Rrr (Isa.Inc, d, sa, _) -> set_reg d (t.regs.(sa) + 1)
    | Isa.Rrr (Isa.Cmplt, d, sa, sb) ->
      set_reg d (Bool.to_int (signed t.regs.(sa) < signed t.regs.(sb)))
    | Isa.Rrr (Isa.Cmpeq, d, sa, sb) ->
      set_reg d (Bool.to_int (t.regs.(sa) = t.regs.(sb)))
    | Isa.Rrr (Isa.Cmpgt, d, sa, sb) ->
      set_reg d (Bool.to_int (signed t.regs.(sa) > signed t.regs.(sb)))
    | Isa.Rrr (Isa.Halt, _, _, _) ->
      t.halted <- true;
      events := Halted :: !events
    | Isa.Rrr (Isa.Land, d, sa, sb) -> set_reg d (t.regs.(sa) land t.regs.(sb))
    | Isa.Rrr (Isa.Lor, d, sa, sb) -> set_reg d (t.regs.(sa) lor t.regs.(sb))
    | Isa.Rrr (Isa.Lxor, d, sa, sb) -> set_reg d (t.regs.(sa) lxor t.regs.(sb))
    | Isa.Rrr ((Isa.Load | Isa.Store | Isa.Ldval | Isa.Jump | Isa.Jumpf
               | Isa.Jumpt), _, _, _) -> assert false
    | Isa.Rx (op, d, sa, disp) ->
      let ea = mask16 (t.regs.(sa) + disp) in
      (match op with
      | Isa.Load -> set_reg d (read_mem t ea)
      | Isa.Store ->
        write_mem t ea t.regs.(d);
        events := Mem_write { addr = ea; value = t.regs.(d) } :: !events
      | Isa.Ldval -> set_reg d ea
      | Isa.Jump ->
        t.pc <- ea;
        events := Jump_taken { target = ea } :: !events
      | Isa.Jumpf ->
        if t.regs.(d) = 0 then begin
          t.pc <- ea;
          events := Jump_taken { target = ea } :: !events
        end
      | Isa.Jumpt ->
        if t.regs.(d) <> 0 then begin
          t.pc <- ea;
          events := Jump_taken { target = ea } :: !events
        end
      | Isa.Add | Isa.Sub | Isa.Halt | Isa.Cmplt | Isa.Cmpeq | Isa.Cmpgt
      | Isa.Inc | Isa.Land | Isa.Lor | Isa.Lxor -> assert false));
    List.rev !events
  end

(* Run until halt or [max_instructions]; returns all events in order. *)
let run ?(max_instructions = 100_000) t =
  let rec go n acc =
    if t.halted || n >= max_instructions then List.concat (List.rev acc)
    else go (n + 1) (step t :: acc)
  in
  go 0 []
