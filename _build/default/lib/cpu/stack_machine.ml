(* A second complete processor: a 16-bit stack machine.

   The paper notes that "several complex circuits, including complete
   computer systems, have been designed successfully using Hydra"; this
   machine demonstrates that the methodology — datapath/control
   separation, a control algorithm compiled by the delay element method
   ({!Control_circuit.synthesize_fsm}, shared with the section-6 RISC),
   DMA loading and golden-model co-simulation — is generic, not
   special-cased to one CPU.

   Architecture: one word per instruction, op(4) | imm(12) zero-extended.

     0  push imm     push imm
     1  load         pop a; push mem[a]
     2  store        pop addr; pop v; mem[addr] := v
     3  add          pop b; pop a; push a + b
     4  sub          pop b; pop a; push a - b
     5  dup          push top
     6  drop         pop
     7  swap         exchange the top two
     8  jump imm     pc := imm
     9  jz imm       pop c; if c = 0 then pc := imm
    10  halt
    11..15  nop

   The expression stack is a register file of 2^3 words addressed by a
   stack pointer; top = stack[sp-1].  No overflow protection: programs
   must stay within 8 entries (the golden model checks this). *)

module Patterns = Hydra_core.Patterns
module Bitvec = Hydra_core.Bitvec

let word_size = 16
let imm_bits = 12
let stack_bits = 3

type sop =
  | Spush of int
  | Sload
  | Sstore
  | Sadd
  | Ssub
  | Sdup
  | Sdrop
  | Sswap
  | Sjump of int
  | Sjz of int
  | Shalt
  | Snop

let opcode = function
  | Spush _ -> 0
  | Sload -> 1
  | Sstore -> 2
  | Sadd -> 3
  | Ssub -> 4
  | Sdup -> 5
  | Sdrop -> 6
  | Sswap -> 7
  | Sjump _ -> 8
  | Sjz _ -> 9
  | Shalt -> 10
  | Snop -> 11

let encode op =
  let imm = match op with Spush i | Sjump i | Sjz i -> i land 0xfff | _ -> 0 in
  (opcode op lsl imm_bits) lor imm

let encode_program ops = List.map encode ops

let decode w =
  let imm = w land 0xfff in
  match (w lsr imm_bits) land 0xf with
  | 0 -> Spush imm
  | 1 -> Sload
  | 2 -> Sstore
  | 3 -> Sadd
  | 4 -> Ssub
  | 5 -> Sdup
  | 6 -> Sdrop
  | 7 -> Sswap
  | 8 -> Sjump imm
  | 9 -> Sjz imm
  | 10 -> Shalt
  | _ -> Snop

(* Golden model ---------------------------------------------------------- *)

module Golden = struct
  type t = {
    mem : int array;
    mutable stack : int list;
    mutable pc : int;
    mutable halted : bool;
    mutable cycles : int;
    mutable mem_writes : (int * int) list;  (* newest first *)
  }

  let create ?(mem_words = 64) () =
    { mem = Array.make mem_words 0; stack = []; pc = 0; halted = false;
      cycles = 0; mem_writes = [] }

  let load_program t words =
    List.iteri (fun i w -> t.mem.(i) <- w land 0xffff) words

  let mask v = v land 0xffff

  let pop t =
    match t.stack with
    | x :: rest ->
      t.stack <- rest;
      x
    | [] -> failwith "Stack_machine.Golden: stack underflow"

  let push t v =
    if List.length t.stack >= 1 lsl stack_bits then
      failwith "Stack_machine.Golden: stack overflow";
    t.stack <- mask v :: t.stack

  let step t =
    if not t.halted then begin
      let instr = decode t.mem.(t.pc mod Array.length t.mem) in
      t.pc <- mask (t.pc + 1);
      let exec =
        match instr with
        | Spush i ->
          push t i;
          1
        | Sload ->
          let a = pop t in
          push t t.mem.(a mod Array.length t.mem);
          1
        | Sstore ->
          let a = pop t in
          let v = pop t in
          t.mem.(a mod Array.length t.mem) <- v;
          t.mem_writes <- (a, v) :: t.mem_writes;
          1
        | Sadd ->
          let b = pop t in
          let a = pop t in
          push t (a + b);
          1
        | Ssub ->
          let b = pop t in
          let a = pop t in
          push t (a - b);
          1
        | Sdup ->
          let v = pop t in
          push t v;
          push t v;
          1
        | Sdrop ->
          ignore (pop t);
          1
        | Sswap ->
          let b = pop t in
          let a = pop t in
          push t b;
          push t a;
          2
        | Sjump i ->
          t.pc <- i;
          1
        | Sjz i ->
          let c = pop t in
          if c = 0 then begin
            t.pc <- i;
            2
          end
          else 1
        | Shalt ->
          t.halted <- true;
          1
        | Snop -> 1
      in
      t.cycles <- t.cycles + 2 + exec
    end

  let run ?(max_instructions = 10_000) t =
    let n = ref 0 in
    while (not t.halted) && !n < max_instructions do
      step t;
      incr n
    done

  let top t = match t.stack with x :: _ -> Some x | [] -> None
end

(* Circuit ---------------------------------------------------------------- *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  module G = Hydra_circuits.Gates.Make (S)
  module M = Hydra_circuits.Mux.Make (S)
  module A = Hydra_circuits.Arith.Make (S)
  module R = Hydra_circuits.Regs.Make (S)
  module CC = Control_circuit.Make (S)

  type inputs = {
    start : S.t;
    dma : S.t;
    dma_a : S.t list;
    dma_d : S.t list;
  }

  type outputs = {
    halted : S.t;
    top : S.t list;       (* stack[sp-1], the top of stack *)
    sp : S.t list;
    pc : S.t list;
    state_tokens : (string * S.t) list;
    mem_write : S.t;
    mem_addr : S.t list;
    mem_wdata : S.t list;
  }

  (* The control algorithm: sequence of states per opcode, compiled with
     the shared delay-element synthesizer. *)
  let fsm_sequences =
    let one name = [ (name, Control.To_fetch) ] in
    [
      ([ 0 ], one "st_push");
      ([ 1 ], one "st_load");
      ([ 2 ], one "st_store");
      ([ 3 ], one "st_add");
      ([ 4 ], one "st_sub");
      ([ 5 ], one "st_dup");
      ([ 6 ], one "st_drop");
      ([ 7 ], [ ("st_swap0", Control.Next_state); ("st_swap1", Control.To_fetch) ]);
      ([ 8 ], one "st_jump");
      (* jz: pop and test; cond = 1 (top = 0) falls through to the jump *)
      ([ 9 ], [ ("st_jz0", Control.If_cond_next); ("st_jz1", Control.To_fetch) ]);
      ([ 10 ], [ ("st_halt", Control.Stay) ]);
      ([ 11; 12; 13; 14; 15 ], one "st_nop");
    ]

  let system ~mem_bits (i : inputs) =
    let n = word_size in
    let outs = ref None in
    (* knot: control tokens <-> datapath <-> memory, all through registers *)
    let _ =
      S.feedback_list (n + 1) (fun loop ->
          (* loop: memory read data (n) + cond *)
          let mem_rdata, cond_l = Patterns.split_at n loop in
          let cond = List.hd cond_l in
          (* --- registers --- *)
          let stash = ref None in
          let _ =
            S.feedback_list (n + n + 4 + n) (fun regs ->
                let ir, rest = Patterns.split_at n regs in
                let pc, rest = Patterns.split_at n rest in
                let sp, tmp = Patterns.split_at 4 rest in
                (* control *)
                let ir_op = Bitvec.field ir 0 4 in
                let fsm =
                  CC.synthesize_fsm ~fetch_name:"st_fetch"
                    ~sequences:fsm_sequences ~start:i.start ~op:ir_op ~cond
                in
                let t = fsm.CC.token in
                let imm_ext =
                  G.wzero ~width:(n - imm_bits) @ Bitvec.field ir 4 imm_bits
                in
                (* stack addressing *)
                let sp_m1 = A.subw sp (G.wconst ~width:4 1) in
                let sp_m2 = A.subw sp (G.wconst ~width:4 2) in
                let low3 w = Bitvec.field w 1 3 in
                (* write port: address and data depend on the state *)
                let wr_at_m1 = G.orw [ t "st_load"; t "st_swap0" ] in
                let wr_at_m2 = G.orw [ t "st_add"; t "st_sub"; t "st_swap1" ] in
                let wr_en =
                  G.orw
                    [ t "st_push"; t "st_dup"; t "st_load"; t "st_add";
                      t "st_sub"; t "st_swap0"; t "st_swap1" ]
                in
                let wr_addr =
                  M.wmux1 wr_at_m2
                    (M.wmux1 wr_at_m1 (low3 sp) (low3 sp_m1))
                    (low3 sp_m2)
                in
                (* stack read ports: top and next *)
                let stash_stack = ref None in
                let _ =
                  S.feedback_list n (fun wr_data ->
                      let top, next =
                        R.regfile stack_bits wr_en wr_addr (low3 sp_m1)
                          (low3 sp_m2) wr_data
                      in
                      stash_stack := Some (top, next);
                      (* ALU over the top two entries *)
                      let _, _, alu_out =
                        A.add_sub (t "st_sub") next top
                      in
                      let data =
                        M.wmux1 (t "st_push") top imm_ext
                      in
                      let data = M.wmux1 (t "st_load") data mem_rdata in
                      let data =
                        M.wmux1 (S.or2 (t "st_add") (t "st_sub")) data alu_out
                      in
                      let data = M.wmux1 (t "st_swap0") data next in
                      let data = M.wmux1 (t "st_swap1") data tmp in
                      data)
                in
                let top, next =
                  match !stash_stack with Some v -> v | None -> assert false
                in
                (* next-state registers *)
                let fetching = t "st_fetch" in
                let ir' = M.wmux1 fetching ir mem_rdata in
                let pc_inc = A.incw pc in
                let pc' = M.wmux1 fetching pc pc_inc in
                let jumping = S.or2 (t "st_jump") (t "st_jz1") in
                let pc' = M.wmux1 jumping pc' imm_ext in
                let sp_inc = A.incw sp in
                let push_like = S.or2 (t "st_push") (t "st_dup") in
                let pop_like =
                  G.orw [ t "st_drop"; t "st_add"; t "st_sub"; t "st_jz0" ]
                in
                let sp' = M.wmux1 push_like sp sp_inc in
                let sp' = M.wmux1 pop_like sp' sp_m1 in
                let sp' = M.wmux1 (t "st_store") sp' sp_m2 in
                let tmp' = M.wmux1 (t "st_swap0") tmp top in
                (* memory bus *)
                let ma_top = G.orw [ t "st_load"; t "st_store" ] in
                let cpu_addr = M.wmux1 ma_top pc top in
                let mem_addr = M.wmux1 i.dma cpu_addr i.dma_a in
                let mem_wdata = M.wmux1 i.dma next i.dma_d in
                let mem_write = M.mux1 i.dma (t "st_store") S.one in
                let addr_low =
                  Bitvec.field mem_addr (n - mem_bits) mem_bits
                in
                let mem_rdata' = R.ram mem_bits mem_write addr_low mem_wdata in
                (* cond for jz: the value being popped is zero *)
                let cond' = G.is_zero top in
                stash :=
                  Some
                    ( fsm, top, sp, pc, mem_write, mem_addr, mem_wdata,
                      mem_rdata', cond' );
                List.map S.dff (ir' @ pc' @ sp' @ tmp'))
          in
          let fsm, top, sp, pc, mem_write, mem_addr, mem_wdata, mem_rdata',
              cond' =
            match !stash with Some v -> v | None -> assert false
          in
          outs :=
            Some
              {
                halted = fsm.CC.fsm_halted;
                top;
                sp;
                pc;
                state_tokens = fsm.CC.state_tokens;
                mem_write;
                mem_addr;
                mem_wdata;
              };
          mem_rdata' @ [ cond' ])
    in
    match !outs with Some o -> o | None -> assert false
end

(* Driver ----------------------------------------------------------------- *)

module Driver = struct
  module S = Hydra_core.Stream_sim
  module SM = Make (S)

  type result = {
    halted : bool;
    cycles : int;
    top : int option;      (* top of stack at halt (None if empty) *)
    mem_writes : (int * int) list;  (* in order *)
    states : string list;  (* control state per post-load cycle *)
  }

  let word_of_int = Bitvec.of_int ~width:word_size

  let run ?(mem_bits = 6) ?(max_cycles = 2000) program =
    if List.length program > 1 lsl mem_bits then
      invalid_arg "Stack_machine.Driver.run: program too large";
    S.reset ();
    let prog = Array.of_list (encode_program program) in
    let load_cycles = Array.length prog in
    let dma_active t = t < load_cycles in
    let start = S.input (fun t -> t = load_cycles) in
    let dma = S.input dma_active in
    let dma_a =
      List.init word_size (fun bit ->
          S.input (fun t ->
              dma_active t && List.nth (word_of_int t) bit))
    in
    let dma_d =
      List.init word_size (fun bit ->
          S.input (fun t ->
              dma_active t && List.nth (word_of_int prog.(t)) bit))
    in
    let outs = SM.system ~mem_bits { SM.start; dma; dma_a; dma_d } in
    let t = ref 0 in
    let halted = ref false in
    let writes = ref [] and states = ref [] in
    while (not !halted) && !t < max_cycles + load_cycles do
      ignore (S.run_cycle [ outs.SM.halted ] !t);
      if not (dma_active !t) then begin
        (match
           List.find_opt (fun (_, s) -> S.at s !t) outs.SM.state_tokens
         with
        | Some (name, _) -> states := name :: !states
        | None -> states := "-" :: !states);
        if S.at outs.SM.mem_write !t then
          writes :=
            ( Bitvec.to_int (List.map (fun s -> S.at s !t) outs.SM.mem_addr),
              Bitvec.to_int (List.map (fun s -> S.at s !t) outs.SM.mem_wdata)
            )
            :: !writes
      end;
      if S.at outs.SM.halted !t then halted := true;
      incr t
    done;
    let final = !t - 1 in
    let sp = Bitvec.to_int (List.map (fun s -> S.at s final) outs.SM.sp) in
    let top =
      if sp = 0 then None
      else Some (Bitvec.to_int (List.map (fun s -> S.at s final) outs.SM.top))
    in
    {
      halted = !halted;
      cycles = max 0 (!t - load_cycles - 1);
      top;
      mem_writes = List.rev !writes;
      states = List.rev !states;
    }
end
