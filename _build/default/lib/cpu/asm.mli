(** Two-pass assembler and disassembler for the section-6 processor.

    Syntax (one statement per line, [;] comments):
    {v
      label: add   R1,R2,R3      ; RRR
             inc   R1,R2
             nop / halt
             load  R1,x[R2]      ; RX: displacement[index]
             jump  loop[R0]
             jumpf R1,done[R0]
             data  42            ; literal word (decimal, 0x hex, label)
    v} *)

type operand = Num of int | Label of string

exception Error of { line : int; message : string }

val assemble : string -> int list
(** Assemble source text at origin 0; raises {!Error} with the offending
    line on any problem. *)

val labels_of : string -> (string, int) Hashtbl.t
(** Label addresses of a source text. *)

val disassemble : int list -> string
(** Textual listing of a memory image (data words decode as whatever
    instruction their bits spell). *)
