(* The datapath circuit (paper section 6.1), translated equation for
   equation.

   The datapath contains the register file, the instruction register ir,
   the program counter pc and the address register ad, the ALU, and the
   internal buses selected by multiplexers.  It performs whatever the
   control signals command each cycle.  The construction-time circularity
   (the register file's write data p depends on the ALU result r, which
   depends on the register file's outputs) is tied with [feedback_list];
   at clock level every such loop passes through a register, so the
   circuit is synchronous and well founded. *)

module Bitvec = Hydra_core.Bitvec

module Make (S : Hydra_core.Signal_intf.CLOCKED) = struct
  module G = Hydra_circuits.Gates.Make (S)
  module M = Hydra_circuits.Mux.Make (S)
  module A = Hydra_circuits.Alu.Make (S)
  module R = Hydra_circuits.Regs.Make (S)

  type control_bus = {
    get : Control.ctl -> S.t;
    alu_op : S.t list;  (* abcd *)
  }

  type outputs = {
    ma : S.t list;    (* memory address *)
    cond : S.t;       (* condition bit: reg-file port a <> 0 *)
    a : S.t list;     (* register file read port a (also memory data out) *)
    b : S.t list;
    ir : S.t list;
    pc : S.t list;
    ad : S.t list;
    ovfl : S.t;
    r : S.t list;     (* ALU result *)
    x : S.t list;     (* ALU operands *)
    y : S.t list;
    p : S.t list;     (* register file write data *)
    ir_op : S.t list;
    ir_d : S.t list;
    ir_sa : S.t list;
    ir_sb : S.t list;
  }

  let n = Isa.word_size
  let k = Isa.reg_address_bits

  let datapath (control : control_bus) (indat : S.t list) =
    let ctl = control.get in
    let ir = R.reg (ctl Control.Ir_ld) indat in
    (* instruction fields (paper: field ir 0 4 etc.) *)
    let ir_op = Bitvec.field ir 0 4 in
    let ir_d = Bitvec.field ir 4 4 in
    let ir_sa = Bitvec.field ir 8 4 in
    let ir_sb = Bitvec.field ir 12 4 in
    let stash = ref None in
    (* The loop word is pc ++ ad ++ p: the three signals involved in
       construction-time circularity. *)
    let loop = S.feedback_list (3 * n) (fun loop ->
        let pc, rest = Hydra_core.Patterns.split_at n loop in
        let ad, p = Hydra_core.Patterns.split_at n rest in
        let rf_sa = M.wmux1 (ctl Control.Rf_sd) ir_sa ir_d in
        let rf_sb = ir_sb in
        let a, b = R.regfile k (ctl Control.Rf_ld) ir_d rf_sa rf_sb p in
        let x = M.wmux1 (ctl Control.X_pc) a pc in
        let y = M.wmux1 (ctl Control.Y_ad) b ad in
        let ovfl, r = A.alu control.alu_op x y in
        let pc' = R.reg (ctl Control.Pc_ld) r in
        let ad' =
          R.reg (ctl Control.Ad_ld)
            (M.wmux1 (ctl Control.Ad_alu) indat r)
        in
        let p' = M.wmux1 (ctl Control.Rf_alu) indat r in
        stash := Some (a, b, x, y, r, ovfl);
        pc' @ ad' @ p')
    in
    let pc, rest = Hydra_core.Patterns.split_at n loop in
    let ad, p = Hydra_core.Patterns.split_at n rest in
    let a, b, x, y, r, ovfl =
      match !stash with Some v -> v | None -> assert false
    in
    let ma = M.wmux1 (ctl Control.Ma_pc) ad pc in
    let cond = G.any1 a in
    { ma; cond; a; b; ir; pc; ad; ovfl; r; x; y; p; ir_op; ir_d; ir_sa; ir_sb }
end
