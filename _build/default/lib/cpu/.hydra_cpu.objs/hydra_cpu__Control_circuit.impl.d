lib/cpu/control_circuit.ml: Array Control Fun Hydra_circuits Hydra_core Isa List
