lib/cpu/stack_machine.ml: Array Control Control_circuit Hydra_circuits Hydra_core List
