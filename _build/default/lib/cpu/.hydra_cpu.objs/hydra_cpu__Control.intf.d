lib/cpu/control.mli: Isa
