lib/cpu/asm.ml: Array Buffer Hashtbl Isa List Printf String
