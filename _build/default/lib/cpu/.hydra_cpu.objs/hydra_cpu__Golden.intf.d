lib/cpu/golden.mli:
