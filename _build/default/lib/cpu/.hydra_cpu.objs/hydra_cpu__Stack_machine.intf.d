lib/cpu/stack_machine.mli: Control Hydra_core
