lib/cpu/control_circuit.mli: Control Hydra_core
