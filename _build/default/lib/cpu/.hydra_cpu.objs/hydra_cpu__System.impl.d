lib/cpu/system.ml: Control Control_circuit Datapath Hydra_circuits Hydra_core Isa List Option
