lib/cpu/isa.ml: List Printf
