lib/cpu/driver.mli: Golden
