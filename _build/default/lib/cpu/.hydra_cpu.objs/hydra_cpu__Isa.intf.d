lib/cpu/isa.mli:
