lib/cpu/driver.ml: Array Control Golden Hydra_core Isa List Printf System
