lib/cpu/datapath.ml: Control Hydra_circuits Hydra_core Isa
