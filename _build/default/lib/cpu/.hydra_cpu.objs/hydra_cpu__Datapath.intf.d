lib/cpu/datapath.mli: Control Hydra_core
