lib/cpu/control.ml: Buffer Isa List Printf String
