lib/cpu/golden.ml: Array Bool Isa List
