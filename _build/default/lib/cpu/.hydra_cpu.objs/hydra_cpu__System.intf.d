lib/cpu/system.mli: Control_circuit Datapath Hydra_core
