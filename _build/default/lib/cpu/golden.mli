(** Golden-model ISA interpreter: the reference the gate-level processor
    is co-simulated against, down to exact clock-cycle counts. *)

type t = {
  mem : int array;
  regs : int array;
  mutable pc : int;
  mutable halted : bool;
  mutable cycles : int;
      (** clock cycles the delay-element control circuit needs for the
          instructions executed so far *)
  mutable instructions : int;
}

type event =
  | Reg_write of { reg : int; value : int }
  | Mem_write of { addr : int; value : int }
  | Jump_taken of { target : int }
  | Halted

val create : ?mem_words:int -> unit -> t
val load_program : t -> ?at:int -> int list -> unit
val read_mem : t -> int -> int
val write_mem : t -> int -> int -> unit
val reg : t -> int -> int
val pc : t -> int

val step : t -> event list
(** Execute one instruction; the returned events are what the circuit
    must also produce, in order. *)

val run : ?max_instructions:int -> t -> event list
(** Run until halt (or the instruction budget); all events in order. *)
