(** The abstract control algorithm (paper section 6.2): an infinite loop
    of fetch, dispatch on the opcode, and a short sequence of states per
    instruction, each asserting a set of control signals.  Represented as
    data so that {!Control_circuit} can compile it to hardware. *)

(** The datapath's control signals (paper section 6.1). *)
type ctl =
  | Rf_ld  (** register file writes reg[ir_d] := p at the tick *)
  | Rf_alu  (** rf write data comes from the ALU result (else indat) *)
  | Rf_sd  (** rf read address sa := ir_d (else ir_sa) *)
  | Ir_ld  (** instruction register loads indat *)
  | Pc_ld  (** program counter loads r *)
  | Ad_ld  (** address register loads *)
  | Ad_alu  (** ad input comes from r (else indat) *)
  | Ma_pc  (** memory address is pc (else ad) *)
  | X_pc  (** ALU x operand is pc (else a) *)
  | Y_ad  (** ALU y operand is ad (else b) *)
  | Sto  (** memory write enable *)

val all_ctls : ctl list
val ctl_name : ctl -> string

type alu_sel =
  | Alu_add
  | Alu_sub
  | Alu_inc
  | Alu_and
  | Alu_or
  | Alu_xor
  | Alu_lt
  | Alu_eq
  | Alu_gt

val alu_code : alu_sel -> int
(** The 4-bit abcd code ({!Hydra_circuits.Alu}). *)

(** Where the control token goes after a state. *)
type next =
  | Next_state
  | To_fetch
  | Stay  (** self-loop: the halt state *)
  | If_cond_next  (** cond = 1 falls through, else back to fetch (jumpt) *)
  | If_not_cond_next  (** cond = 0 falls through (jumpf) *)

type state = {
  name : string;
  operation : string;  (** register-transfer comment, paper style *)
  signals : ctl list;
  alu : alu_sel;
  next : next;
}

val st :
  ?alu:alu_sel -> ?next:next -> string -> string -> ctl list -> state

type algorithm = {
  fetch : state;
  sequences : (Isa.opcode * state list) list;
}

val algorithm : algorithm
(** The control algorithm for the section-6 processor; the fetch and Load
    sequences are the paper's, verbatim. *)

val states : algorithm -> state list
val sequence_for : algorithm -> Isa.opcode -> state list

val to_string : algorithm -> string
(** Pretty-print in the paper's notation. *)
