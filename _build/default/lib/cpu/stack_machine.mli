(** A second complete processor — a 16-bit stack machine — built with the
    same methodology as the section-6 RISC: datapath/control separation,
    the shared delay-element control synthesizer
    ({!Control_circuit.Make.synthesize_fsm}), DMA program loading, and
    golden-model co-simulation.

    Instructions are one word: op(4) | imm(12).  The expression stack is a
    register file of 8 words; programs must stay within it (the golden
    model checks). *)

val word_size : int
val imm_bits : int
val stack_bits : int

type sop =
  | Spush of int
  | Sload
  | Sstore
  | Sadd
  | Ssub
  | Sdup
  | Sdrop
  | Sswap
  | Sjump of int
  | Sjz of int  (** pop; jump when the popped value is zero *)
  | Shalt
  | Snop

val opcode : sop -> int
val encode : sop -> int
val encode_program : sop list -> int list
val decode : int -> sop

(** Reference interpreter; also predicts the circuit's cycle count. *)
module Golden : sig
  type t = {
    mem : int array;
    mutable stack : int list;
    mutable pc : int;
    mutable halted : bool;
    mutable cycles : int;
    mutable mem_writes : (int * int) list;  (** newest first *)
  }

  val create : ?mem_words:int -> unit -> t
  val load_program : t -> int list -> unit
  val step : t -> unit
  val run : ?max_instructions:int -> t -> unit
  val top : t -> int option
end

(** The gate-level machine. *)
module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  type inputs = {
    start : S.t;
    dma : S.t;
    dma_a : S.t list;
    dma_d : S.t list;
  }

  type outputs = {
    halted : S.t;
    top : S.t list;  (** stack[sp-1] *)
    sp : S.t list;
    pc : S.t list;
    state_tokens : (string * S.t) list;
    mem_write : S.t;
    mem_addr : S.t list;
    mem_wdata : S.t list;
  }

  val fsm_sequences : (int list * (string * Control.next) list) list
  (** The control algorithm, in the generic synthesizer's form. *)

  val system : mem_bits:int -> inputs -> outputs
end

(** Stream-semantics driver: DMA-load, start, run to halt. *)
module Driver : sig
  type result = {
    halted : bool;
    cycles : int;
    top : int option;
    mem_writes : (int * int) list;  (** in order *)
    states : string list;
  }

  val run : ?mem_bits:int -> ?max_cycles:int -> sop list -> result
end
