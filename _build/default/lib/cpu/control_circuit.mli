(** Control circuit synthesis by the delay element method (paper section
    6.3): one flip flop per state; a unique 1 travels through them as the
    locus of execution moves through the algorithm; each control signal is
    the or of the states that assert it. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  (** The machine-independent skeleton: one-hot state tokens for any
      fetch/dispatch/sequence control algorithm. *)
  type fsm = {
    token : string -> S.t;  (** state token by name *)
    state_tokens : (string * S.t) list;
    fsm_halted : S.t;  (** or of the [Stay] states *)
  }

  val synthesize_fsm :
    fetch_name:string ->
    sequences:(int list * (string * Control.next) list) list ->
    start:S.t ->
    op:S.t list ->
    cond:S.t ->
    fsm
  (** [sequences] pairs each execution sequence — (state name, transition)
      pairs — with the dispatch codes of the [op] word that enter it; the
      codes must partition the opcode space.  This is how a control
      circuit for {e any} machine is synthesized; the stack machine
      ({!Stack_machine}) uses it directly. *)

  type outputs = {
    ctl : Control.ctl -> S.t;
    alu_op : S.t list;  (** the 4-bit abcd code for the ALU *)
    states : (string * S.t) list;
        (** the one-hot control state word, for observation (paper: "it
            outputs a word representing the control state") *)
    halted : S.t;
  }

  val synthesize :
    Control.algorithm -> start:S.t -> ir_op:S.t list -> cond:S.t -> outputs
  (** [start] is the one-cycle reset pulse, [ir_op] the opcode field of
      the instruction register, [cond] the condition bit from the
      datapath. *)
end
