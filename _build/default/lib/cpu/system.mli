(** The complete processor system (paper sections 6.1-6.4): datapath +
    synthesized control circuit + memory + DMA loading. *)

module Make (S : Hydra_core.Signal_intf.CLOCKED) : sig
  module D : module type of Datapath.Make (S)
  module CC : module type of Control_circuit.Make (S)

  type inputs = {
    start : S.t;  (** one-cycle pulse: begin execution *)
    dma : S.t;  (** while 1, the loader owns the memory bus *)
    dma_a : S.t list;
    dma_d : S.t list;
  }

  type outputs = {
    dp : D.outputs;
    control : CC.outputs;
    halted : S.t;
    mem_addr : S.t list;  (** memory bus as driven this cycle *)
    mem_write : S.t;
    mem_wdata : S.t list;
    mem_rdata : S.t list;  (** what the processor reads (= indat) *)
  }

  val system : mem_bits:int -> inputs -> outputs
  (** Processor with a structural gate-level RAM of 2{^mem_bits} words
      (the full 2{^16} is gate-level enormous; see DESIGN.md). *)

  val system_external_memory : inputs -> indat:S.t list -> outputs
  (** The processor core alone: memory read data is supplied by the
      environment through [indat], and the memory bus outputs say what the
      environment should do — used by the behavioural-memory driver. *)
end
