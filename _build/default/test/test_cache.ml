(* Tests for the direct-mapped cache, including a randomized run against a
   reference model. *)

open Util
module S = Hydra_core.Stream_sim
module C = Hydra_circuits.Cache.Make (Hydra_core.Stream_sim)

(* Drive the cache from scripted per-cycle operations.

   op per cycle: [`Idle | `Read of addr | `Write of addr * v
                 | `Refill of addr * v], with 4-bit tag, 2-bit index,
   8-bit data. *)
let run_ops ops =
  S.reset ();
  let abits = 6 and width = 8 in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let get t = if t < n then arr.(t) else `Idle in
  let bit f = S.input (fun t -> f (get t)) in
  let word w f =
    List.init w (fun i ->
        S.input (fun t -> List.nth (Bitvec.of_int ~width:w (f (get t))) i))
  in
  let req = bit (function `Read _ | `Write _ -> true | _ -> false) in
  let we = bit (function `Write _ -> true | _ -> false) in
  let refill = bit (function `Refill _ -> true | _ -> false) in
  let addr =
    word abits (function `Read a | `Write (a, _) -> a | _ -> 0)
  in
  let wdata = word width (function `Write (_, v) -> v | _ -> 0) in
  let refill_addr = word abits (function `Refill (a, _) -> a | _ -> 0) in
  let refill_data = word width (function `Refill (_, v) -> v | _ -> 0) in
  let p =
    C.cache ~tag_bits:4 ~index_bits:2 ~width ~req ~we ~addr ~wdata ~refill
      ~refill_addr ~refill_data
  in
  S.run ~cycles:n (p.C.hit :: p.C.rdata)
  |> List.map (fun row ->
         (List.hd row, Bitvec.to_int (List.tl row)))

let suite =
  [
    tc "cold cache misses; refill makes it hit" (fun () ->
        let rows =
          run_ops
            [ `Read 0x13; `Refill (0x13, 77); `Read 0x13; `Read 0x13 ]
        in
        check_bool "cold miss" false (fst (List.nth rows 0));
        check_bool "hit after refill" true (fst (List.nth rows 2));
        check_int "data" 77 (snd (List.nth rows 2)));
    tc "conflict: same index, different tag evicts" (fun () ->
        (* 0x13 and 0x23 share index 3 (low 2 bits of the 6-bit addr...
           index = low 2 bits: 0x13 -> 3, 0x23 -> 3, different tags) *)
        let rows =
          run_ops
            [ `Refill (0x13, 1); `Read 0x13; `Refill (0x23, 2); `Read 0x13;
              `Read 0x23 ]
        in
        check_bool "hit own line" true (fst (List.nth rows 1));
        check_bool "evicted" false (fst (List.nth rows 3));
        check_bool "new tag hits" true (fst (List.nth rows 4));
        check_int "new data" 2 (snd (List.nth rows 4)));
    tc "write-allocate: a store claims the line" (fun () ->
        let rows = run_ops [ `Write (0x2a, 9); `Read 0x2a ] in
        check_bool "hit after store" true (fst (List.nth rows 1));
        check_int "stored data" 9 (snd (List.nth rows 1)));
    tc "distinct indices coexist" (fun () ->
        let rows =
          run_ops
            [ `Refill (0x10, 5); `Refill (0x11, 6); `Read 0x10; `Read 0x11 ]
        in
        check_bool "line 0 hit" true (fst (List.nth rows 2));
        check_int "line 0" 5 (snd (List.nth rows 2));
        check_bool "line 1 hit" true (fst (List.nth rows 3));
        check_int "line 1" 6 (snd (List.nth rows 3)));
    qc ~count:25 "randomized ops match a reference model"
      QCheck2.Gen.(
        list_size (int_range 1 30)
          (oneof
             [
               map (fun a -> `Read (a land 63)) (int_bound 63);
               map2 (fun a v -> `Write (a land 63, v land 255)) (int_bound 63)
                 (int_bound 255);
               map2
                 (fun a v -> `Refill (a land 63, v land 255))
                 (int_bound 63) (int_bound 255);
             ]))
      (fun ops ->
        let rows = run_ops ops in
        (* reference: 4 lines of (tag, data) *)
        let lines = Array.make 4 None in
        let ok = ref true in
        List.iteri
          (fun t op ->
            let hit, data = List.nth rows t in
            (match op with
            | `Read a | `Write (a, _) ->
              let tag = a lsr 2 and idx = a land 3 in
              let expect_hit =
                match lines.(idx) with
                | Some (tg, _) -> tg = tag
                | None -> false
              in
              if hit <> expect_hit then ok := false;
              if expect_hit then begin
                match lines.(idx) with
                | Some (_, v) -> if data <> v then ok := false
                | None -> ()
              end
            | `Idle | `Refill _ -> ());
            (* state update at the tick *)
            match op with
            | `Refill (a, v) -> lines.(a land 3) <- Some (a lsr 2, v)
            | `Write (a, v) -> lines.(a land 3) <- Some (a lsr 2, v)
            | `Read _ | `Idle -> ())
          ops;
        !ok);
    tc "hit rate on a loop working set" (fun () ->
        (* simulate a 4-address loop with refills on miss: after one warm
           lap, everything hits *)
        let addrs = [ 0x00; 0x05; 0x0a; 0x0f ] in
        let warm = List.concat_map (fun a -> [ `Read a; `Refill (a, a) ]) addrs in
        let laps = List.concat (List.init 3 (fun _ -> List.map (fun a -> `Read a) addrs)) in
        let rows = run_ops (warm @ laps) in
        let hot = Patterns.split_at (List.length warm) rows |> snd in
        check_bool "all hot reads hit" true (List.for_all fst hot));
  ]
