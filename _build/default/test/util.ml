(* Shared helpers for the test suites. *)

module Bit = Hydra_core.Bit
module Bitvec = Hydra_core.Bitvec
module Patterns = Hydra_core.Patterns

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool_list = Alcotest.(check (list bool))
let check_int_list = Alcotest.(check (list int))
let check_rows = Alcotest.(check (list (list bool)))

let tc name f = Alcotest.test_case name `Quick f

let qc ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Generators *)
let gen_width = QCheck2.Gen.int_range 1 12
let gen_word width = QCheck2.Gen.list_size (QCheck2.Gen.return width) QCheck2.Gen.bool

let gen_sized_word =
  QCheck2.Gen.(gen_width >>= fun w -> pair (return w) (gen_word w))

(* Evaluate a Bit-semantics word circuit on integer operands. *)
let eval2 ~width f x y =
  let xs = Bitvec.of_int ~width x and ys = Bitvec.of_int ~width y in
  Bitvec.to_int (f xs ys)

let mask width = (1 lsl width) - 1
