(* Tests for the stack machine — the second complete processor — including
   gate-level vs golden-model co-simulation. *)

open Util
module SM = Hydra_cpu.Stack_machine
module Driver = Hydra_cpu.Stack_machine.Driver
module Golden = Hydra_cpu.Stack_machine.Golden

let cosim ?(mem_bits = 6) program =
  let circuit = Driver.run ~mem_bits program in
  let g = Golden.create ~mem_words:(1 lsl mem_bits) () in
  Golden.load_program g (SM.encode_program program);
  Golden.run g;
  (circuit, g)

let check_match name (circuit : Driver.result) (g : Golden.t) =
  check_bool (name ^ ": halted") true (circuit.Driver.halted && g.Golden.halted);
  check_int (name ^ ": cycles") g.Golden.cycles circuit.Driver.cycles;
  Alcotest.(check (option int)) (name ^ ": top of stack")
    (Golden.top g) circuit.Driver.top;
  Alcotest.(check (list (pair int int)))
    (name ^ ": memory writes")
    (List.rev g.Golden.mem_writes)
    circuit.Driver.mem_writes

let suite =
  [
    tc "encode/decode round trip" (fun () ->
        List.iter
          (fun op -> check_bool "rt" true (SM.decode (SM.encode op) = op))
          [ SM.Spush 42; SM.Sload; SM.Sstore; SM.Sadd; SM.Ssub; SM.Sdup;
            SM.Sdrop; SM.Sswap; SM.Sjump 7; SM.Sjz 9; SM.Shalt; SM.Snop ]);
    tc "golden: arithmetic" (fun () ->
        let g = Golden.create () in
        Golden.load_program g
          (SM.encode_program [ SM.Spush 30; SM.Spush 12; SM.Sadd; SM.Shalt ]);
        Golden.run g;
        Alcotest.(check (option int)) "top" (Some 42) (Golden.top g));
    tc "golden: underflow detected" (fun () ->
        let g = Golden.create () in
        Golden.load_program g (SM.encode_program [ SM.Sadd; SM.Shalt ]);
        match Golden.run g with
        | _ -> Alcotest.fail "expected underflow failure"
        | exception Failure _ -> ());
    (* gate-level co-simulation *)
    tc "sm: push/add/halt" (fun () ->
        let c, g = cosim [ SM.Spush 30; SM.Spush 12; SM.Sadd; SM.Shalt ] in
        check_match "add" c g;
        Alcotest.(check (option int)) "42" (Some 42) c.Driver.top);
    tc "sm: sub and swap" (fun () ->
        let c, g =
          cosim [ SM.Spush 10; SM.Spush 3; SM.Sswap; SM.Ssub; SM.Shalt ]
        in
        (* swap -> 3,10 on stack; sub -> 3 - 10 = -7 mod 2^16 *)
        check_match "subswap" c g;
        Alcotest.(check (option int)) "wrap" (Some ((3 - 10) land 0xffff))
          c.Driver.top);
    tc "sm: dup and drop" (fun () ->
        let c, g =
          cosim [ SM.Spush 7; SM.Sdup; SM.Sadd; SM.Spush 9; SM.Sdrop; SM.Shalt ]
        in
        check_match "dupdrop" c g;
        Alcotest.(check (option int)) "14" (Some 14) c.Driver.top);
    tc "sm: load and store" (fun () ->
        (* mem[40] := 123; push mem[40] *)
        let c, g =
          cosim
            [ SM.Spush 123; SM.Spush 40; SM.Sstore; SM.Spush 40; SM.Sload;
              SM.Shalt ]
        in
        check_match "loadstore" c g;
        Alcotest.(check (option int)) "123" (Some 123) c.Driver.top;
        Alcotest.(check (list (pair int int))) "write" [ (40, 123) ]
          c.Driver.mem_writes);
    tc "sm: jump skips code" (fun () ->
        let c, g =
          cosim [ SM.Spush 1; SM.Sjump 4; SM.Spush 99; SM.Sadd; SM.Shalt ]
        in
        check_match "jump" c g;
        Alcotest.(check (option int)) "1" (Some 1) c.Driver.top);
    tc "sm: jz taken and not taken" (fun () ->
        let taken, gt =
          cosim [ SM.Spush 0; SM.Sjz 3; SM.Snop; SM.Shalt ]
        in
        check_match "taken" taken gt;
        let not_taken, gnt =
          cosim [ SM.Spush 5; SM.Sjz 3; SM.Shalt; SM.Snop ]
        in
        check_match "not taken" not_taken gnt);
    tc "sm: countdown loop sums 5..1" (fun () ->
        (* total (kept in memory at 60) += i for i = 5 down to 1 *)
        let program =
          [
            SM.Spush 0; SM.Spush 60; SM.Sstore;  (* mem[60] := 0 *)
            SM.Spush 5;                          (* i *)
            (* loop at pc 4 *)
            SM.Sdup; SM.Sjz 15;                  (* if i = 0 -> 15 *)
            SM.Sdup;                             (* i i *)
            SM.Spush 60; SM.Sload;               (* i i total *)
            SM.Sadd;                             (* i (i+total) *)
            SM.Spush 60; SM.Sstore;              (* i ; mem[60] += i *)
            SM.Spush 1; SM.Ssub;                 (* i-1 *)
            SM.Sjump 4;
            SM.Shalt;                            (* 15 *)
          ]
        in
        let c, g = cosim program in
        check_match "loop" c g;
        check_int "sum in memory" 15 g.Golden.mem.(60);
        (* circuit agrees: last write to 60 is 15 *)
        let last60 =
          List.fold_left
            (fun acc (a, v) -> if a = 60 then Some v else acc)
            None c.Driver.mem_writes
        in
        Alcotest.(check (option int)) "circuit sum" (Some 15) last60);
    qc ~count:25 "random straight-line stack programs match golden"
      QCheck2.Gen.(
        list_size (int_range 1 10)
          (frequency
             [
               (4, map (fun i -> SM.Spush i) (int_bound 100));
               (2, return SM.Sadd);
               (1, return SM.Ssub);
               (1, return SM.Sdup);
               (1, return SM.Sdrop);
               (1, return SM.Sswap);
               (1, return SM.Snop);
             ]))
      (fun ops ->
        (* keep only prefixes that never underflow/overflow a depth-8 stack *)
        let safe =
          let depth = ref 0 in
          let keep = ref [] in
          (try
             List.iter
               (fun op ->
                 let need, delta =
                   match op with
                   | SM.Spush _ -> (0, 1)
                   | SM.Sadd | SM.Ssub -> (2, -1)
                   | SM.Sdup -> (1, 1)
                   | SM.Sdrop -> (1, -1)
                   | SM.Sswap -> (2, 0)
                   | _ -> (0, 0)
                 in
                 if !depth < need || !depth + delta > 8 then raise Exit;
                 depth := !depth + delta;
                 keep := op :: !keep)
               ops
           with Exit -> ());
          List.rev !keep
        in
        let program = safe @ [ SM.Shalt ] in
        if List.length program > 60 then true
        else begin
          let c, g = cosim program in
          c.Driver.halted && g.Golden.halted
          && c.Driver.cycles = g.Golden.cycles
          && c.Driver.top = Golden.top g
        end);
  ]
