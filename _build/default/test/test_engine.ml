(* Tests for the netlist simulation engines: interpreted, compiled,
   parallel and event-driven — checked against each other and against the
   stream semantics on random circuits (the one-specification,
   many-semantics guarantee of the paper, enforced empirically). *)

open Util
module S = Hydra_core.Stream_sim
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Compiled = Hydra_engine.Compiled
module Interp = Hydra_engine.Interp
module Parallel_sim = Hydra_engine.Parallel_sim
module Event = Hydra_engine.Event
module Vcd = Hydra_engine.Vcd

(* A random synchronous circuit described abstractly: node i is
   (op, src1, src2) where sources index into inputs @ earlier nodes. *)
type rop = Rinv | Rand | Ror | Rxor | Rdff

let build (type s) (module X : Hydra_core.Signal_intf.CLOCKED with type t = s)
    ~(inputs : s list) (nodes : (rop * int * int) list) : s list =
  let pool = ref (Array.of_list inputs) in
  List.iter
    (fun (op, s1, s2) ->
      let arr = !pool in
      let a = arr.(s1 mod Array.length arr)
      and b = arr.(s2 mod Array.length arr) in
      let v =
        match op with
        | Rinv -> X.inv a
        | Rand -> X.and2 a b
        | Ror -> X.or2 a b
        | Rxor -> X.xor2 a b
        | Rdff -> X.dff a
      in
      pool := Array.append arr [| v |])
    nodes;
  (* outputs: the last few nodes *)
  let arr = !pool in
  let n = Array.length arr in
  List.init (min 4 n) (fun i -> arr.(n - 1 - i))

let gen_nodes =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (triple
         (oneofl [ Rinv; Rand; Ror; Rxor; Rdff ])
         (int_bound 1000) (int_bound 1000)))

let gen_case =
  QCheck2.Gen.(
    triple gen_nodes
      (list_size (return 12) (list_size (return 3) bool)) (* input rows *)
      unit)

let stream_reference nodes rows =
  S.simulate ~inputs:(Bitvec.columns rows) ~cycles:(List.length rows)
    (fun ins -> build (module S) ~inputs:ins nodes)

let netlist_of nodes =
  let a = G.input "a" and b = G.input "b" and c = G.input "c" in
  let outs = build (module G) ~inputs:[ a; b; c ] nodes in
  N.extract ~inputs:[ a; b; c ]
    ~outputs:(List.mapi (fun i o -> (Printf.sprintf "o%d" i, o)) outs)

let engine_rows run nodes rows =
  let nl = netlist_of nodes in
  let cols = Bitvec.columns rows in
  let inputs =
    List.map2 (fun n vs -> (n, vs)) [ "a"; "b"; "c" ] cols
  in
  run nl ~inputs ~cycles:(List.length rows)

let shared_pool = lazy (Hydra_parallel.Pool.create ~domains:4 ())

let suite =
  [
    (* basic compiled-engine behaviour *)
    tc "compiled: fig1 truth table" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl = N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ] in
        let sim = Compiled.create nl in
        List.iter
          (fun (va, vb, expect) ->
            Compiled.set_input sim "a" va;
            Compiled.set_input sim "b" vb;
            Compiled.settle sim;
            check_bool "x" expect (Compiled.output sim "x"))
          [ (false, false, false); (false, true, true);
            (true, false, false); (true, true, false) ]);
    tc "compiled: dff latches on tick" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff x) ] in
        let sim = Compiled.create nl in
        let rows =
          Compiled.run sim ~inputs:[ ("x", [ true; false; true ]) ] ~cycles:3
        in
        Alcotest.(check (list (list (pair string bool))))
          "trace"
          [ [ ("q", false) ]; [ ("q", true) ]; [ ("q", false) ] ]
          rows);
    tc "compiled: unknown port raises" (fun () ->
        let nl = N.of_graph ~outputs:[ ("x", G.inv (G.input "a")) ] in
        let sim = Compiled.create nl in
        Alcotest.check_raises "in" (Invalid_argument "Compiled.set_input: unknown input z")
          (fun () -> Compiled.set_input sim "z" true);
        Alcotest.check_raises "out" (Invalid_argument "Compiled.output: unknown output z")
          (fun () -> ignore (Compiled.output sim "z")));
    tc "compiled: reset restores power-up state" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff_init true x) ] in
        let sim = Compiled.create nl in
        Compiled.set_input sim "x" false;
        Compiled.step sim;
        Compiled.settle sim;
        check_bool "after step" false (Compiled.output sim "q");
        Compiled.reset sim;
        Compiled.settle sim;
        check_bool "after reset" true (Compiled.output sim "q"));
    tc "compiled: rejects combinational cycles" (fun () ->
        let out = G.feedback (fun s -> G.and2 s (G.input "a")) in
        let nl = N.of_graph ~outputs:[ ("x", out) ] in
        match Compiled.create nl with
        | _ -> Alcotest.fail "expected Combinational_cycle"
        | exception Hydra_netlist.Levelize.Combinational_cycle _ -> ());
    (* cross-engine agreement on random circuits *)
    qc ~count:60 "compiled = stream semantics" gen_case
      (fun (nodes, rows, ()) ->
        stream_reference nodes rows
        = List.map (List.map snd) (engine_rows Compiled.(fun nl -> run (create nl)) nodes rows));
    qc ~count:60 "interp = stream semantics" gen_case
      (fun (nodes, rows, ()) ->
        stream_reference nodes rows
        = List.map (List.map snd) (engine_rows Interp.(fun nl -> run (create nl)) nodes rows));
    qc ~count:30 "parallel = stream semantics" gen_case
      (fun (nodes, rows, ()) ->
        let run nl ~inputs ~cycles =
          let sim = Parallel_sim.create ~pool:(Lazy.force shared_pool) nl in
          Parallel_sim.run sim ~inputs ~cycles
        in
        stream_reference nodes rows
        = List.map (List.map snd) (engine_rows run nodes rows));
    qc ~count:20 "spmd (2 domains) = stream semantics" gen_case
      (fun (nodes, rows, ()) ->
        let run nl ~inputs ~cycles =
          let sim = Hydra_engine.Spmd.create ~domains:2 nl in
          let out = Hydra_engine.Spmd.run sim ~inputs ~cycles in
          Hydra_engine.Spmd.shutdown sim;
          out
        in
        stream_reference nodes rows
        = List.map (List.map snd) (engine_rows run nodes rows));
    tc "spmd single domain runs inline" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff x) ] in
        let sim = Hydra_engine.Spmd.create ~domains:1 nl in
        let rows =
          Hydra_engine.Spmd.run sim ~inputs:[ ("x", [ true; false ]) ] ~cycles:2
        in
        Hydra_engine.Spmd.shutdown sim;
        Alcotest.(check (list (list (pair string bool))))
          "trace"
          [ [ ("q", false) ]; [ ("q", true) ] ]
          rows);
    qc ~count:60 "event-driven settles to stream semantics" gen_case
      (fun (nodes, rows, ()) ->
        let run nl ~inputs ~cycles =
          let sim = Event.create nl in
          List.init cycles (fun c ->
              List.iter
                (fun (name, vals) ->
                  Event.set_input sim name
                    (match List.nth_opt vals c with Some b -> b | None -> false))
                inputs;
              ignore (Event.step sim);
              Event.outputs sim)
        in
        stream_reference nodes rows
        = List.map (List.map snd) (engine_rows run nodes rows));
    (* event-driven timing properties *)
    tc "event: settle time bounded by critical path" (fun () ->
        let nodes =
          [ (Rxor, 0, 1); (Rand, 2, 3); (Ror, 3, 4); (Rxor, 4, 5); (Rand, 5, 6) ]
        in
        let nl = netlist_of nodes in
        let cp = Hydra_netlist.Levelize.critical_path nl in
        let sim = Event.create nl in
        Event.set_input sim "a" true;
        Event.set_input sim "b" false;
        Event.set_input sim "c" true;
        let r = Event.step sim in
        check_bool "settle <= cp" true (r.Event.settle_time <= cp));
    tc "event: xor glitch is observable" (fun () ->
        (* x -> inv -> and(x, inv x): a static-hazard circuit; after x
           falls the and can pulse.  With unit delays: and sees (x=0,
           invx stale 0) then invx rises -> recompute.  We only assert
           the machinery counts transitions. *)
        let a = G.input "a" in
        let slow = G.inv (G.inv (G.inv a)) in
        let nl = N.of_graph ~outputs:[ ("y", G.and2 a slow) ] in
        let sim = Event.create nl in
        Event.set_input sim "a" false;
        ignore (Event.step sim);
        Event.set_input sim "a" true;
        let r = Event.step sim in
        (* y must end 0 (a=1, slow=inv a=0) but pulses high transiently *)
        check_bool "final 0" false (Event.output sim "y");
        check_bool "glitched" true (r.Event.glitches >= 1));
    (* VCD *)
    tc "vcd: header and changes recorded" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff x) ] in
        let sim = Compiled.create nl in
        let vcd =
          Vcd.of_compiled_run sim
            ~inputs:[ ("x", [ true; false; true ]) ]
            ~cycles:3
        in
        let s = Vcd.contents vcd in
        let contains needle =
          let nlen = String.length needle and hlen = String.length s in
          let rec go i = i + nlen <= hlen && (String.sub s i nlen = needle || go (i + 1)) in
          go 0
        in
        check_bool "enddefinitions" true (contains "$enddefinitions");
        check_bool "var q" true (contains " q $end");
        check_bool "time 0" true (contains "#0");
        check_bool "time 1" true (contains "#1"));
  ]
