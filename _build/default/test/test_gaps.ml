(* Third coverage wave: corners found by auditing the API surface. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module S = Hydra_core.Stream_sim
module Wave = Hydra_engine.Wave
module Bmc = Hydra_verify.Bmc
module Asm = Hydra_cpu.Asm
module Driver = Hydra_cpu.Driver
module Golden = Hydra_cpu.Golden

let suite =
  [
    tc "wave: of_bool_rows transposes correctly" (fun () ->
        let rows = [ [ true; false ]; [ false; false ]; [ true; true ] ] in
        let signals = Wave.of_bool_rows ~names:[ "a"; "b" ] rows in
        let s = Wave.render signals in
        let lines = String.split_on_char '\n' s in
        check_bool "two lines" true (List.length lines >= 2);
        (* a: 1,0,1 -> starts high, falls, rises *)
        check_bool "a has edges" true
          (String.contains (List.nth lines 0) '\\'
          && String.contains (List.nth lines 0) '/'));
    tc "graph: inputs_list and unlabeled name" (fun () ->
        let ins = G.inputs_list [ "p"; "q" ] in
        check_int "two" 2 (List.length ins);
        check_bool "no label" true (G.name (G.inv (List.hd ins)) = None));
    tc "graph: multiple labels keep the latest" (fun () ->
        let s = G.label "first" (G.inv (G.input "a")) in
        let s = G.label "second" s in
        check_bool "latest" true (G.name s = Some "second"));
    tc "netlist: labels reach the names array" (fun () ->
        let s = G.label "wire_x" (G.inv (G.input "a")) in
        let nl = N.of_graph ~outputs:[ ("o", s) ] in
        let found =
          Array.exists (fun ns -> List.mem "wire_x" ns) nl.N.names
        in
        check_bool "label recorded" true found);
    tc "stream: heavy out-of-order access stays correct" (fun () ->
        S.reset ();
        let x = S.input (fun t -> t mod 3 = 0) in
        let d3 = S.dff (S.dff (S.dff x)) in
        (* access pattern designed to thrash the two-slot cache *)
        let probes = [ 50; 7; 23; 8; 50; 0; 3; 49; 50 ] in
        List.iter
          (fun t ->
            let expect = if t < 3 then false else (t - 3) mod 3 = 0 in
            check_bool (Printf.sprintf "d3@%d" t) expect (S.at d3 t))
          probes);
    tc "stream: simulate with explicit cycle count longer than inputs"
      (fun () ->
        let rows =
          S.simulate ~inputs:[ [ true ] ] ~cycles:4 (fun ins ->
              [ S.inv (List.hd ins) ])
        in
        check_rows "padded with false -> inv true"
          [ [ false ]; [ true ]; [ true ]; [ true ] ]
          rows);
    tc "bmc: state budget exceeded raises" (fun () ->
        (* 8-bit counter with an input: too many states for a budget of 5 *)
        let module R = Hydra_circuits.Regs.Make (G) in
        let module Gt = Hydra_circuits.Gates.Make (G) in
        let en = G.input "en" in
        let count = R.counter 8 en in
        let nl = N.of_graph ~outputs:[ ("prop", G.inv (Gt.andw count)) ] in
        match Bmc.check ~max_states:5 ~property:"prop" ~depth:300 nl with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure _ -> ());
    (* behavioural-memory driver exercising jumps and long programs *)
    tc "driver: behavioural memory runs a longer loop than structural fits"
      (fun () ->
        (* sum 1..50: result 1275; uses addresses beyond 64 words of data *)
        let src =
          "  ldval R1,0[R0]\n\
          \  ldval R2,50[R0]\n\
           loop: cmpeq R3,R2,R0\n\
          \  jumpt R3,done[R0]\n\
          \  add R1,R1,R2\n\
          \  ldval R4,1[R0]\n\
          \  sub R2,R2,R4\n\
          \  jump loop[R0]\n\
           done: store R1,1000[R0]\n\
          \  halt\n"
        in
        let program = Asm.assemble src in
        let res = Driver.run_behavioural ~collect_trace:false program in
        let g = Golden.create () in
        Golden.load_program g program;
        let events = Golden.run g in
        check_bool "halted" true res.Driver.halted;
        check_bool "events match" true (res.Driver.events = events);
        check_int "sum" 1275 (Driver.final_registers res).(1);
        check_bool "store to 1000 observed" true
          (List.exists
             (function
               | Golden.Mem_write { addr = 1000; value = 1275 } -> true
               | _ -> false)
             res.Driver.events));
    tc "driver: max_cycles stops runaway programs" (fun () ->
        let program = Asm.assemble "loop: jump loop[R0]\n" in
        let res =
          Driver.run_structural ~mem_bits:6 ~max_cycles:50
            ~collect_trace:false program
        in
        check_bool "not halted" false res.Driver.halted);
    tc "asm: labels_of positions match assembled layout" (fun () ->
        let src = "a: nop\nb: load R1,a[R0]\nc: halt\n" in
        let labels = Asm.labels_of src in
        check_int "a" 0 (Hashtbl.find labels "a");
        check_int "b" 1 (Hashtbl.find labels "b");
        check_int "c" 3 (Hashtbl.find labels "c"));
    tc "ternary: refinement of gate tables is exhaustive" (fun () ->
        (* spot check De Morgan in ternary: inv (and2 a b) = or2 (inv a) (inv b) *)
        let module T = Hydra_core.Ternary in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check_bool "demorgan" true
                  (T.inv (T.and2 a b) = T.or2 (T.inv a) (T.inv b)))
              [ T.F; T.T; T.X ])
          [ T.F; T.T; T.X ]);
    tc "depth: feedback_list returns zero-depth loop signals" (fun () ->
        let module D = Hydra_core.Depth in
        D.reset ();
        let outs = D.feedback_list 3 (fun loop ->
            List.map (fun s -> D.dff (D.inv s)) loop)
        in
        (* dff outputs are depth 0 *)
        check_bool "registered" true (List.for_all (fun d -> d = 0) outs));
  ]
