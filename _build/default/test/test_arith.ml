(* Tests for adders, subtraction, comparison, shifts, the multiplier and
   the ALU — all at the Bit semantics against integer references. *)

open Util
module A = Hydra_circuits.Arith.Make (Hydra_core.Bit)
module Alu = Hydra_circuits.Alu.Make (Hydra_core.Bit)
module P = Patterns

let gen_op_pair width =
  QCheck2.Gen.(pair (int_bound (mask width)) (int_bound (mask width)))

let add_via adder ~width x y cin =
  let xs = Bitvec.of_int ~width x and ys = Bitvec.of_int ~width y in
  let cout, sums = adder cin (List.combine xs ys) in
  (Bool.to_int cout lsl width) lor Bitvec.to_int sums

let suite =
  [
    tc "half_add truth table" (fun () ->
        check_bool "c 11" true (fst (A.half_add true true));
        check_bool "s 11" false (snd (A.half_add true true));
        check_bool "c 10" false (fst (A.half_add true false));
        check_bool "s 10" true (snd (A.half_add true false)));
    qc "full_add adds three bits" QCheck2.Gen.(triple bool bool bool)
      (fun (x, y, c) ->
        let cout, s = A.full_add (x, y) c in
        (Bool.to_int cout * 2) + Bool.to_int s
        = Bool.to_int x + Bool.to_int y + Bool.to_int c);
    qc "ripple_add = integer addition (8 bits, with cin)"
      QCheck2.Gen.(triple (int_bound 255) (int_bound 255) bool)
      (fun (x, y, cin) ->
        add_via A.ripple_add ~width:8 x y cin
        = x + y + Bool.to_int cin);
    tc "ripple_add width 1 and 0" (fun () ->
        check_int "1-bit" 2 (add_via A.ripple_add ~width:1 1 1 false);
        let cout, sums = A.ripple_add true [] in
        check_bool "empty passes carry" true cout;
        check_int "no sum bits" 0 (List.length sums));
    (* E6: the paper's explicit rippleAdd4 equals the mscanr version. *)
    qc "rippleAdd4 = mscanr ripple (paper section 5)"
      QCheck2.Gen.(triple (int_bound 15) (int_bound 15) bool)
      (fun (x, y, cin) ->
        let xs = Bitvec.of_int ~width:4 x and ys = Bitvec.of_int ~width:4 y in
        A.ripple_add4 cin (List.combine xs ys)
        = A.ripple_add cin (List.combine xs ys));
    tc "ripple_add4 wrong arity raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Arith.ripple_add4: need exactly 4 bit pairs")
          (fun () -> ignore (A.ripple_add4 false [])));
    (* E11: every carry-lookahead network equals ripple. *)
    qc "cla sklansky = integer addition" (gen_op_pair 10) (fun (x, y) ->
        add_via (A.cla_add ~network:P.Sklansky) ~width:10 x y false = x + y);
    qc "cla brent-kung = integer addition" (gen_op_pair 10) (fun (x, y) ->
        add_via (A.cla_add ~network:P.Brent_kung) ~width:10 x y true
        = x + y + 1);
    qc "cla kogge-stone = integer addition" (gen_op_pair 10) (fun (x, y) ->
        add_via (A.cla_add ~network:P.Kogge_stone) ~width:10 x y false = x + y);
    qc "cla serial = integer addition" (gen_op_pair 7) (fun (x, y) ->
        add_via (A.cla_add ~network:P.Serial) ~width:7 x y false = x + y);
    qc "addw wraps mod 2^w" (gen_op_pair 8) (fun (x, y) ->
        eval2 ~width:8 A.addw x y = (x + y) land mask 8);
    qc "subw = subtraction mod 2^w" (gen_op_pair 8) (fun (x, y) ->
        eval2 ~width:8 A.subw x y = (x - y) land mask 8);
    qc "incw adds one" (QCheck2.Gen.int_bound 255) (fun x ->
        Bitvec.to_int (A.incw (Bitvec.of_int ~width:8 x)) = (x + 1) land 255);
    qc "negw is two's complement negation" (QCheck2.Gen.int_bound 255)
      (fun x ->
        Bitvec.to_int (A.negw (Bitvec.of_int ~width:8 x)) = -x land 255);
    qc "eqw" (gen_op_pair 6) (fun (x, y) ->
        A.eqw (Bitvec.of_int ~width:6 x) (Bitvec.of_int ~width:6 y) = (x = y));
    qc "lt_unsigned" (gen_op_pair 7) (fun (x, y) ->
        A.lt_unsigned (Bitvec.of_int ~width:7 x) (Bitvec.of_int ~width:7 y)
        = (x < y));
    qc "gt_unsigned" (gen_op_pair 7) (fun (x, y) ->
        A.gt_unsigned (Bitvec.of_int ~width:7 x) (Bitvec.of_int ~width:7 y)
        = (x > y));
    qc "lt_signed" QCheck2.Gen.(pair (int_range (-64) 63) (int_range (-64) 63))
      (fun (x, y) ->
        A.lt_signed (Bitvec.of_signed_int ~width:7 x)
          (Bitvec.of_signed_int ~width:7 y)
        = (x < y));
    qc "gt_signed" QCheck2.Gen.(pair (int_range (-64) 63) (int_range (-64) 63))
      (fun (x, y) ->
        A.gt_signed (Bitvec.of_signed_int ~width:7 x)
          (Bitvec.of_signed_int ~width:7 y)
        = (x > y));
    qc "add_sub overflow flag (signed)"
      QCheck2.Gen.(triple (int_range (-128) 127) (int_range (-128) 127) bool)
      (fun (x, y, sub) ->
        let xs = Bitvec.of_signed_int ~width:8 x
        and ys = Bitvec.of_signed_int ~width:8 y in
        let _, ovfl, sums = A.add_sub sub xs ys in
        let exact = if sub then x - y else x + y in
        let wrapped = Bitvec.to_signed_int sums in
        ovfl = (exact <> wrapped));
    qc "shl_var shifts left" QCheck2.Gen.(pair (int_bound 255) (int_bound 7))
      (fun (x, k) ->
        let out =
          A.shl_var (Bitvec.of_int ~width:3 k) (Bitvec.of_int ~width:8 x)
        in
        Bitvec.to_int out = (x lsl k) land 255);
    qc "shr_var shifts right" QCheck2.Gen.(pair (int_bound 255) (int_bound 7))
      (fun (x, k) ->
        let out =
          A.shr_var (Bitvec.of_int ~width:3 k) (Bitvec.of_int ~width:8 x)
        in
        Bitvec.to_int out = x lsr k);
    qc "rol_var rotates" QCheck2.Gen.(pair (int_bound 255) (int_bound 7))
      (fun (x, k) ->
        let out =
          A.rol_var (Bitvec.of_int ~width:3 k) (Bitvec.of_int ~width:8 x)
        in
        Bitvec.to_int out = ((x lsl k) lor (x lsr (8 - k))) land 255);
    qc "multw = integer multiplication" (gen_op_pair 7) (fun (x, y) ->
        let out =
          A.multw (Bitvec.of_int ~width:7 x) (Bitvec.of_int ~width:7 y)
        in
        List.length out = 14 && Bitvec.to_int out = x * y);
    (* ALU *)
    qc "alu add" (gen_op_pair 8) (fun (x, y) ->
        let _, r =
          Alu.alu
            (Bitvec.of_int ~width:4 (Alu.code_of_op "add"))
            (Bitvec.of_int ~width:8 x) (Bitvec.of_int ~width:8 y)
        in
        Bitvec.to_int r = (x + y) land 255);
    qc "alu sub" (gen_op_pair 8) (fun (x, y) ->
        let _, r =
          Alu.alu
            (Bitvec.of_int ~width:4 (Alu.code_of_op "sub"))
            (Bitvec.of_int ~width:8 x) (Bitvec.of_int ~width:8 y)
        in
        Bitvec.to_int r = (x - y) land 255);
    qc "alu inc ignores y" (gen_op_pair 8) (fun (x, y) ->
        let _, r =
          Alu.alu
            (Bitvec.of_int ~width:4 (Alu.code_of_op "inc"))
            (Bitvec.of_int ~width:8 x) (Bitvec.of_int ~width:8 y)
        in
        Bitvec.to_int r = (x + 1) land 255);
    qc "alu comparisons (signed)"
      QCheck2.Gen.(pair (int_range (-128) 127) (int_range (-128) 127))
      (fun (x, y) ->
        let run op =
          let _, r =
            Alu.alu
              (Bitvec.of_int ~width:4 (Alu.code_of_op op))
              (Bitvec.of_signed_int ~width:8 x)
              (Bitvec.of_signed_int ~width:8 y)
          in
          Bitvec.to_int r
        in
        run "cmplt" = Bool.to_int (x < y)
        && run "cmpeq" = Bool.to_int (x = y)
        && run "cmpgt" = Bool.to_int (x > y));
    qc "alu overflow on add"
      QCheck2.Gen.(pair (int_range (-128) 127) (int_range (-128) 127))
      (fun (x, y) ->
        let ovfl, r =
          Alu.alu
            (Bitvec.of_int ~width:4 (Alu.code_of_op "add"))
            (Bitvec.of_signed_int ~width:8 x)
            (Bitvec.of_signed_int ~width:8 y)
        in
        ovfl = (x + y <> Bitvec.to_signed_int r));
    qc "alu logic ops" (gen_op_pair 8) (fun (x, y) ->
        let run op =
          let _, r =
            Alu.alu
              (Bitvec.of_int ~width:4 (Alu.code_of_op op))
              (Bitvec.of_int ~width:8 x) (Bitvec.of_int ~width:8 y)
          in
          Bitvec.to_int r
        in
        run "and" = x land y && run "or" = x lor y && run "xor" = x lxor y);
    qc "alu overflow is clear in logic and compare modes" (gen_op_pair 8)
      (fun (x, y) ->
        List.for_all
          (fun op ->
            let ovfl, _ =
              Alu.alu
                (Bitvec.of_int ~width:4 (Alu.code_of_op op))
                (Bitvec.of_int ~width:8 x) (Bitvec.of_int ~width:8 y)
            in
            not ovfl)
          [ "and"; "or"; "xor"; "cmplt"; "cmpeq"; "cmpgt" ]);
    tc "alu bad op name raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Alu.code_of_op: frobnicate") (fun () ->
            ignore (Alu.code_of_op "frobnicate")));
    tc "alu wrong op width raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Alu.alu: operation code must have 4 bits")
          (fun () -> ignore (Alu.alu [ true ] [ true ] [ true ])));
  ]
