(* Tests for the domain pool. *)

open Util
module Pool = Hydra_parallel.Pool

let suite =
  [
    tc "parallel_for covers every index exactly once" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let n = 10_000 in
        let hits = Array.make n 0 in
        Pool.parallel_for pool 0 n (fun i -> hits.(i) <- hits.(i) + 1);
        Pool.shutdown pool;
        check_bool "all once" true (Array.for_all (fun h -> h = 1) hits));
    tc "parallel_for with offset range" (fun () ->
        let pool = Pool.create ~domains:3 () in
        let hits = Array.make 100 0 in
        Pool.parallel_for pool 50 100 (fun i -> hits.(i) <- 1);
        Pool.shutdown pool;
        check_int "first half untouched" 0
          (Array.fold_left ( + ) 0 (Array.sub hits 0 50));
        check_int "second half done" 50
          (Array.fold_left ( + ) 0 (Array.sub hits 50 50)));
    tc "parallel_for empty range" (fun () ->
        let pool = Pool.create ~domains:2 () in
        Pool.parallel_for pool 5 5 (fun _ -> Alcotest.fail "must not run");
        Pool.parallel_for pool 5 3 (fun _ -> Alcotest.fail "must not run");
        Pool.shutdown pool);
    tc "single-domain pool runs inline" (fun () ->
        let pool = Pool.create ~domains:1 () in
        check_int "size" 1 (Pool.size pool);
        let sum = ref 0 in
        Pool.parallel_for pool 0 100 (fun i -> sum := !sum + i);
        Pool.shutdown pool;
        check_int "sum" 4950 !sum);
    tc "parallel_sum" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let s = Pool.parallel_sum pool 0 1000 (fun i -> i) in
        Pool.shutdown pool;
        check_int "gauss" 499500 s);
    tc "reusable across many jobs" (fun () ->
        let pool = Pool.create ~domains:4 () in
        for _ = 1 to 50 do
          let acc = Array.make 512 0 in
          Pool.parallel_for pool 0 512 (fun i -> acc.(i) <- i * 2);
          assert (acc.(511) = 1022)
        done;
        Pool.shutdown pool);
    tc "exceptions propagate to caller" (fun () ->
        let pool = Pool.create ~domains:4 () in
        (match
           Pool.parallel_for pool 0 1000 (fun i ->
               if i = 777 then failwith "boom")
         with
        | () -> Alcotest.fail "expected exception"
        | exception Failure msg -> check_string "msg" "boom" msg);
        (* pool still usable after an exception *)
        let ok = ref 0 in
        Pool.parallel_for pool 0 100 (fun _ -> ignore (Atomic.make 0));
        Pool.parallel_for pool 0 100 (fun _ -> incr ok);
        Pool.shutdown pool);
    tc "many domains requested is clamped sanely" (fun () ->
        let pool = Pool.create ~domains:0 () in
        check_int "at least 1" 1 (Pool.size pool);
        Pool.shutdown pool);
  ]
