(* Tests for word/integer conversions. *)

open Util

let suite =
  [
    tc "of_int MSB first" (fun () ->
        check_bool_list "6 in 4 bits" [ false; true; true; false ]
          (Bitvec.of_int ~width:4 6));
    tc "to_int" (fun () ->
        check_int "0110" 6 (Bitvec.to_int [ false; true; true; false ]));
    tc "roundtrip extremes" (fun () ->
        check_int "0" 0 (Bitvec.to_int (Bitvec.of_int ~width:8 0));
        check_int "255" 255 (Bitvec.to_int (Bitvec.of_int ~width:8 255)));
    qc "to_int . of_int = id (mod 2^w)"
      QCheck2.Gen.(pair (int_range 1 30) (int_bound 100000))
      (fun (w, n) ->
        Bitvec.to_int (Bitvec.of_int ~width:w (n land mask w)) = n land mask w);
    tc "signed: -1 is all ones" (fun () ->
        check_bool_list "-1" [ true; true; true; true ]
          (Bitvec.of_signed_int ~width:4 (-1));
        check_int "-1 back" (-1)
          (Bitvec.to_signed_int [ true; true; true; true ]));
    tc "signed: min int" (fun () ->
        check_int "-8" (-8)
          (Bitvec.to_signed_int (Bitvec.of_signed_int ~width:4 (-8))));
    qc "signed roundtrip"
      QCheck2.Gen.(int_range (-32768) 32767)
      (fun n ->
        Bitvec.to_signed_int (Bitvec.of_signed_int ~width:16 n) = n);
    tc "field extracts nibbles" (fun () ->
        let w = Bitvec.of_int ~width:16 0xABCD in
        check_int "op" 0xA (Bitvec.to_int (Bitvec.field w 0 4));
        check_int "d" 0xB (Bitvec.to_int (Bitvec.field w 4 4));
        check_int "sa" 0xC (Bitvec.to_int (Bitvec.field w 8 4));
        check_int "sb" 0xD (Bitvec.to_int (Bitvec.field w 12 4)));
    tc "field out of range raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Bitvec.field: out of range") (fun () ->
            ignore (Bitvec.field [ true; false ] 1 2)));
    tc "to_string/of_string" (fun () ->
        check_string "s" "0110" (Bitvec.to_string (Bitvec.of_int ~width:4 6));
        check_bool_list "parse" [ true; false; true ] (Bitvec.of_string "101"));
    tc "to_hex pads to nibbles" (fun () ->
        check_string "abcd" "abcd" (Bitvec.to_hex (Bitvec.of_int ~width:16 0xabcd));
        check_string "5-bit 17" "11" (Bitvec.to_hex (Bitvec.of_int ~width:5 17)));
  ]
