(* Tests for the design-pattern combinators (paper section 5). *)

open Util
module P = Patterns

(* Reference implementations *)
let ref_scanl op = function
  | [] -> []
  | x :: xs ->
    List.rev
      (List.fold_left (fun acc y -> op (List.hd acc) y :: acc) [ x ] xs)

let suite =
  [
    tc "split_at basic" (fun () ->
        let a, b = P.split_at 2 [ 1; 2; 3; 4; 5 ] in
        check_int_list "take" [ 1; 2 ] a;
        check_int_list "drop" [ 3; 4; 5 ] b);
    tc "split_at zero" (fun () ->
        let a, b = P.split_at 0 [ 1 ] in
        check_int_list "take" [] a;
        check_int_list "drop" [ 1 ] b);
    tc "split_at too far raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Patterns.split_at")
          (fun () -> ignore (P.split_at 3 [ 1; 2 ])));
    tc "halve" (fun () ->
        let a, b = P.halve [ 1; 2; 3; 4 ] in
        check_int_list "lo" [ 1; 2 ] a;
        check_int_list "hi" [ 3; 4 ] b);
    tc "halve odd raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Patterns.halve: odd length") (fun () ->
            ignore (P.halve [ 1 ])));
    tc "pairup/unpair roundtrip" (fun () ->
        let xs = [ 1; 2; 3; 4; 5; 6 ] in
        check_int_list "roundtrip" xs (P.unpair (P.pairup xs)));
    tc "riffle" (fun () ->
        check_int_list "riffle" [ 1; 3; 2; 4 ] (P.riffle [ 1; 2; 3; 4 ]));
    tc "unriffle inverts riffle" (fun () ->
        let xs = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
        check_int_list "inv" xs (P.unriffle (P.riffle xs)));
    tc "riffle inverts unriffle" (fun () ->
        let xs = [ 0; 1; 2; 3; 4; 5 ] in
        check_int_list "inv" xs (P.riffle (P.unriffle xs)));
    tc "chunks" (fun () ->
        Alcotest.(check (list (list int)))
          "chunks" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
          (P.chunks 2 [ 1; 2; 3; 4; 5 ]));
    tc "last" (fun () -> check_int "last" 3 (P.last [ 1; 2; 3 ]));
    tc "iterate_n" (fun () ->
        check_int "3x succ" 8 (P.iterate_n 3 succ 5);
        check_int "0x" 5 (P.iterate_n 0 succ 5));
    tc "transpose" (fun () ->
        Alcotest.(check (list (list int)))
          "t" [ [ 1; 3 ]; [ 2; 4 ] ]
          (P.transpose [ [ 1; 2 ]; [ 3; 4 ] ]));
    (* mscanr: paper spec — carry enters at the right. *)
    tc "mscanr empty" (fun () ->
        let a, ys = P.mscanr (fun _ _ -> assert false) 42 [] in
        check_int "carry" 42 a;
        check_int_list "outs" [] ys);
    tc "mscanr sums right-to-left" (fun () ->
        (* cell: carry' = x + carry, output = carry seen by the cell *)
        let cell x c = (x + c, c) in
        let a, ys = P.mscanr cell 0 [ 1; 2; 3 ] in
        check_int "carry out" 6 a;
        (* rightmost cell sees 0, middle sees 3, leftmost sees 5 *)
        check_int_list "outs" [ 5; 3; 0 ] ys);
    tc "mscanl sums left-to-right" (fun () ->
        let cell x c = (x + c, c) in
        let a, ys = P.mscanl cell 0 [ 1; 2; 3 ] in
        check_int "carry out" 6 a;
        check_int_list "outs" [ 0; 1; 3 ] ys);
    tc "ascanl is inclusive left scan" (fun () ->
        check_int_list "scan" [ 1; 3; 6 ] (P.ascanl ( + ) 0 [ 1; 2; 3 ]));
    tc "ascanr is inclusive right scan" (fun () ->
        check_int_list "scan" [ 6; 5; 3 ] (P.ascanr ( + ) 0 [ 1; 2; 3 ]));
    tc "tree_fold sums" (fun () ->
        check_int "sum" 28 (P.tree_fold ( + ) [ 1; 2; 3; 4; 5; 6; 7 ]));
    tc "tree_fold singleton" (fun () ->
        check_int "one" 9 (P.tree_fold ( + ) [ 9 ]));
    tc "tree_fold empty raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Patterns.tree_fold: empty word") (fun () ->
            ignore (P.tree_fold ( + ) [])));
    qc "tree_fold = fold for associative op"
      QCheck2.Gen.(list_size (int_range 1 40) small_nat)
      (fun xs -> P.tree_fold ( + ) xs = List.fold_left ( + ) 0 xs);
    (* All prefix networks agree with the serial reference scan. *)
    qc "sklansky = serial scan"
      QCheck2.Gen.(list small_nat)
      (fun xs -> P.scan_sklansky ( + ) xs = ref_scanl ( + ) xs);
    qc "brent-kung = serial scan"
      QCheck2.Gen.(list small_nat)
      (fun xs -> P.scan_brent_kung ( + ) xs = ref_scanl ( + ) xs);
    qc "kogge-stone = serial scan"
      QCheck2.Gen.(list small_nat)
      (fun xs -> P.scan_kogge_stone ( + ) xs = ref_scanl ( + ) xs);
    qc "scan_serial = reference"
      QCheck2.Gen.(list small_nat)
      (fun xs -> P.scan_serial ( + ) xs = ref_scanl ( + ) xs);
    (* Non-commutative associative operator: string concatenation catches
       argument-order mistakes commutative ops would hide. *)
    qc "prefix networks respect order (string concat)"
      QCheck2.Gen.(list_size (int_range 0 33) (string_size ~gen:printable (return 1)))
      (fun xs ->
        List.for_all
          (fun net -> P.scan net ( ^ ) xs = ref_scanl ( ^ ) xs)
          P.all_prefix_networks);
    tc "butterfly identity cells" (fun () ->
        let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        check_int_list "id" xs (P.butterfly (fun p -> p) xs));
    tc "banyan identity cells" (fun () ->
        let xs = [ 1; 2; 3; 4 ] in
        check_int_list "id" xs (P.banyan (fun p -> p) xs));
    tc "butterfly swap cells reverse halves recursively" (fun () ->
        (* swapping every pair sends element i to index i lxor (n-1) *)
        let xs = [ 0; 1; 2; 3 ] in
        check_int_list "swap" [ 3; 2; 1; 0 ]
          (P.butterfly (fun (a, b) -> (b, a)) xs));
    tc "mesh 2x2 adder cells" (fun () ->
        (* cell: h' = h + v, v' = v (horizontal accumulates column inputs) *)
        let f h v = (h + v, v) in
        let hs, vs = P.mesh f [ 10; 20 ] [ 1; 2 ] in
        check_int_list "right edge" [ 13; 23 ] hs;
        check_int_list "bottom edge" [ 1; 2 ] vs);
    tc "mesh threads vertically" (fun () ->
        (* cell: v' = v + h, h' = h *)
        let f h v = (h, v + h) in
        let hs, vs = P.mesh f [ 1; 2 ] [ 0; 0 ] in
        check_int_list "right edge" [ 1; 2 ] hs;
        check_int_list "bottom edge" [ 3; 3 ] vs);
  ]
