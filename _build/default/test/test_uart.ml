(* Tests for the UART: transmitter waveform, receiver decoding, and
   TX -> RX loopback. *)

open Util
module S = Hydra_core.Stream_sim
module U = Hydra_circuits.Uart.Make (Hydra_core.Stream_sim)

(* Expected frame on the wire for byte [b]: start 0, 8 data bits LSB
   first, stop 1, each lasting [divisor] cycles. *)
let frame_wave ~divisor b =
  let bits =
    [ false ]
    @ List.init 8 (fun i -> (b lsr i) land 1 = 1)
    @ [ true ]
  in
  List.concat_map (fun bit -> List.init divisor (fun _ -> bit)) bits

let run_tx ~divisor ~cycles b =
  S.reset ();
  let send = S.of_list [ true ] in
  let data = List.map S.constant (Bitvec.of_int ~width:8 b) in
  let t = U.tx ~divisor send data in
  S.run ~cycles [ t.U.line; t.U.tx_busy ]

let suite =
  [
    tc "tx: idle line is high" (fun () ->
        S.reset ();
        let t = U.tx ~divisor:2 S.zero (List.init 8 (fun _ -> S.zero)) in
        let rows = S.run ~cycles:5 [ t.U.line; t.U.tx_busy ] in
        check_rows "idle"
          (List.init 5 (fun _ -> [ true; false ]))
          rows);
    tc "tx: waveform of byte 0x5a at divisor 1" (fun () ->
        let rows = run_tx ~divisor:1 ~cycles:13 0x5a in
        let line = List.map List.hd rows in
        (* cycle 0 idle; frame starts at cycle 1 *)
        check_bool_list "wave"
          ([ true ] @ frame_wave ~divisor:1 0x5a @ [ true; true ])
          line);
    tc "tx: waveform of byte 0xa3 at divisor 3" (fun () ->
        let rows = run_tx ~divisor:3 ~cycles:(1 + 30 + 3) 0xa3 in
        let line = List.map List.hd rows in
        check_bool_list "wave"
          ([ true ] @ frame_wave ~divisor:3 0xa3 @ [ true; true; true ])
          line);
    tc "tx: busy for exactly 10 * divisor cycles" (fun () ->
        let rows = run_tx ~divisor:2 ~cycles:25 0xff in
        let busy = List.map (fun r -> List.nth r 1) rows in
        let busy_cycles = List.length (List.filter Fun.id busy) in
        check_int "busy span" 20 busy_cycles);
    tc "rx: decodes a scripted frame" (fun () ->
        S.reset ();
        let wave = [ true; true ] @ frame_wave ~divisor:2 0xc4 @ [ true; true; true; true ] in
        let line = S.of_list ~default:true wave in
        let r = U.rx ~divisor:2 line in
        let rows = S.run ~cycles:(List.length wave) (r.U.valid :: r.U.data) in
        (* find the valid pulse, read the byte there *)
        let hits =
          List.filter_map
            (fun row ->
              if List.hd row then Some (Bitvec.to_int (List.tl row)) else None)
            rows
        in
        check_int_list "one byte" [ 0xc4 ] hits);
    tc "loopback: tx wired to rx recovers the byte" (fun () ->
        S.reset ();
        let send = S.of_list [ true ] in
        let data = List.map S.constant (Bitvec.of_int ~width:8 0x7e) in
        let t = U.tx ~divisor:2 send data in
        let r = U.rx ~divisor:2 t.U.line in
        let rows = S.run ~cycles:30 (r.U.valid :: r.U.data) in
        let hits =
          List.filter_map
            (fun row ->
              if List.hd row then Some (Bitvec.to_int (List.tl row)) else None)
            rows
        in
        check_int_list "byte" [ 0x7e ] hits);
    qc ~count:40 "loopback round-trips random bytes at random divisors"
      QCheck2.Gen.(pair (int_bound 255) (int_range 1 4))
      (fun (b, divisor) ->
        S.reset ();
        let send = S.of_list [ true ] in
        let data = List.map S.constant (Bitvec.of_int ~width:8 b) in
        let t = U.tx ~divisor send data in
        let r = U.rx ~divisor t.U.line in
        let cycles = (10 * divisor) + divisor + 6 in
        let rows = S.run ~cycles (r.U.valid :: r.U.data) in
        let hits =
          List.filter_map
            (fun row ->
              if List.hd row then Some (Bitvec.to_int (List.tl row)) else None)
            rows
        in
        hits = [ b ]);
    tc "loopback: two bytes back to back" (fun () ->
        S.reset ();
        let divisor = 2 in
        (* send pulses at cycle 0 and again right after tx frees *)
        let send = S.input (fun t -> t = 0 || t = 21) in
        let byte t = if t <= 20 then 0x31 else 0x9d in
        let data =
          List.init 8 (fun bit ->
              S.input (fun t -> List.nth (Bitvec.of_int ~width:8 (byte t)) bit))
        in
        let t = U.tx ~divisor send data in
        let r = U.rx ~divisor t.U.line in
        let rows = S.run ~cycles:55 (r.U.valid :: r.U.data) in
        let hits =
          List.filter_map
            (fun row ->
              if List.hd row then Some (Bitvec.to_int (List.tl row)) else None)
            rows
        in
        check_int_list "both bytes" [ 0x31; 0x9d ] hits);
    tc "rx: noise-free idle produces no valid pulses" (fun () ->
        S.reset ();
        let r = U.rx ~divisor:2 S.one in
        let rows = S.run ~cycles:20 [ r.U.valid ] in
        check_bool "silent" true (List.for_all (fun r -> r = [ false ]) rows));
  ]
