(* Tests for sequential circuits: registers, counters, shift registers,
   the recursive register file (paper section 5) and structural RAM. *)

open Util
module S = Hydra_core.Stream_sim
module R = Hydra_circuits.Regs.Make (Hydra_core.Stream_sim)

(* Simulate a circuit whose inputs are words given per cycle as ints. *)
let simulate_words ~widths ~rows ~cycles circuit =
  S.reset ();
  let nins = List.length widths in
  let get_input i t =
    if t < List.length rows then List.nth (List.nth rows t) i else 0
  in
  let word_inputs =
    List.mapi
      (fun i w ->
        List.init w (fun bit ->
            S.input (fun t ->
                List.nth (Bitvec.of_int ~width:w (get_input i t)) bit)))
      widths
  in
  ignore nins;
  let outs = circuit word_inputs in
  let rows_out = S.run ~cycles outs in
  rows_out

let suite =
  [
    tc "reg1: load and hold (paper 4.1)" (fun () ->
        let rows =
          S.simulate
            ~inputs:[ [ true; false; false; true ]; [ true; true; false; false ] ]
            (fun ins ->
              match ins with
              | [ ld; x ] -> [ R.reg1 ld x ]
              | _ -> assert false)
        in
        check_rows "trace" [ [ false ]; [ true ]; [ true ]; [ true ] ] rows);
    tc "reg1_init powers up set" (fun () ->
        let rows =
          S.simulate ~inputs:[ [ false; false ]; [ false; false ] ]
            (fun ins ->
              match ins with
              | [ ld; x ] -> [ R.reg1_init true ld x ]
              | _ -> assert false)
        in
        check_rows "trace" [ [ true ]; [ true ] ] rows);
    tc "reg word: loads a 4-bit value" (fun () ->
        let rows =
          simulate_words ~widths:[ 1; 4 ]
            ~rows:[ [ 1; 9 ]; [ 0; 5 ]; [ 1; 5 ]; [ 0; 0 ] ]
            ~cycles:4
            (fun ins ->
              match ins with
              | [ [ ld ]; x ] -> R.reg ld x
              | _ -> assert false)
        in
        check_int_list "values" [ 0; 9; 9; 5 ]
          (List.map Bitvec.to_int rows));
    tc "counter counts enabled cycles" (fun () ->
        S.reset ();
        let en = S.of_list [ true; true; false; true; true ] in
        let outs = R.counter 3 en in
        let rows = S.run ~cycles:6 outs in
        check_int_list "count" [ 0; 1; 2; 2; 3; 4 ]
          (List.map Bitvec.to_int rows));
    tc "counter wraps" (fun () ->
        S.reset ();
        let outs = R.counter 2 S.one in
        let rows = S.run ~cycles:6 outs in
        check_int_list "count" [ 0; 1; 2; 3; 0; 1 ]
          (List.map Bitvec.to_int rows));
    tc "counter_clear resets" (fun () ->
        S.reset ();
        let clr = S.of_list [ false; false; true; false ] in
        let outs = R.counter_clear 3 S.one clr in
        let rows = S.run ~cycles:5 outs in
        check_int_list "count" [ 0; 1; 2; 0; 1 ]
          (List.map Bitvec.to_int rows));
    tc "shift_reg shifts left with serial input" (fun () ->
        S.reset ();
        let ld = S.of_list [ true; false; false; false ] in
        let xs = List.map S.constant (Bitvec.of_int ~width:4 0b1001) in
        let sin = S.of_list [ false; true; false; false ] in
        let outs = R.shift_reg 4 ld xs sin in
        let rows = S.run ~cycles:4 outs in
        check_int_list "trace" [ 0b0000; 0b1001; 0b0011; 0b0110 ]
          (List.map Bitvec.to_int rows));
    (* E7: the register file recursion. *)
    tc "regfile1: writes then reads back (k=2)" (fun () ->
        S.reset ();
        (* cycle 0: write 1 to reg 2; cycle 1: write 1 to reg 3;
           read ports: sa=2 throughout, sb=3 throughout *)
        let ld = S.of_list [ true; true; false ] in
        let d_stream =
          List.init 2 (fun bit ->
              S.input (fun t ->
                  let d = if t = 0 then 2 else 3 in
                  List.nth (Bitvec.of_int ~width:2 d) bit))
        in
        let sa = List.map S.constant (Bitvec.of_int ~width:2 2) in
        let sb = List.map S.constant (Bitvec.of_int ~width:2 3) in
        let x = S.of_list [ true; true; false ] in
        let a, b = R.regfile1 2 ld d_stream sa sb x in
        let rows = S.run ~cycles:3 [ a; b ] in
        check_rows "a,b"
          [ [ false; false ]; [ true; false ]; [ true; true ] ]
          rows);
    tc "regfile1 k=0 is a register" (fun () ->
        S.reset ();
        let ld = S.of_list [ true; false ] in
        let x = S.of_list [ true; false ] in
        let a, b = R.regfile1 0 ld [] [] [] x in
        let rows = S.run ~cycles:2 [ a; b ] in
        check_rows "both ports" [ [ false; false ]; [ true; true ] ] rows);
    tc "regfile1 bad address width raises" (fun () ->
        S.reset ();
        Alcotest.check_raises "raises"
          (Invalid_argument "Regs.regfile1: address widths must equal k")
          (fun () -> ignore (R.regfile1 1 S.one [] [] [] S.one)));
    tc "regfile word: 4 regs of 4 bits, dual read" (fun () ->
        (* write 9 to r1, then 5 to r2, then read r1 (sa) and r2 (sb) *)
        let rows =
          simulate_words
            ~widths:[ 1; 2; 2; 2; 4 ]
            ~rows:
              [
                [ 1; 1; 1; 2; 9 ];
                [ 1; 2; 1; 2; 5 ];
                [ 0; 0; 1; 2; 0 ];
              ]
            ~cycles:3
            (fun ins ->
              match ins with
              | [ [ ld ]; d; sa; sb; x ] ->
                let a, b = R.regfile 2 ld d sa sb x in
                a @ b
              | _ -> assert false)
        in
        let split r = Patterns.split_at 4 r in
        let vals =
          List.map
            (fun r ->
              let a, b = split r in
              (Bitvec.to_int a, Bitvec.to_int b))
            rows
        in
        Alcotest.(check (list (pair int int)))
          "a,b per cycle"
          [ (0, 0); (9, 0); (9, 5) ]
          vals);
    tc "ram1: write and read cells (k=2)" (fun () ->
        S.reset ();
        (* write 1 at addr 1 (cycle 0), then read addr 1, then addr 0 *)
        let we = S.of_list [ true; false; false ] in
        let addr =
          List.init 2 (fun bit ->
              S.input (fun t ->
                  let a = if t <= 1 then 1 else 0 in
                  List.nth (Bitvec.of_int ~width:2 a) bit))
        in
        let x = S.of_list [ true; false; false ] in
        let out = R.ram1 2 we addr x in
        let rows = S.run ~cycles:3 [ out ] in
        check_rows "read" [ [ false ]; [ true ]; [ false ] ] rows);
    tc "ram word: stores words at addresses" (fun () ->
        let rows =
          simulate_words
            ~widths:[ 1; 2; 4 ]
            ~rows:[ [ 1; 3; 12 ]; [ 1; 0; 7 ]; [ 0; 3; 0 ]; [ 0; 0; 0 ] ]
            ~cycles:4
            (fun ins ->
              match ins with
              | [ [ we ]; addr; x ] -> R.ram 2 we addr x
              | _ -> assert false)
        in
        check_int_list "reads" [ 0; 0; 12; 7 ] (List.map Bitvec.to_int rows));
    tc "ram1 bad address width raises" (fun () ->
        S.reset ();
        Alcotest.check_raises "raises"
          (Invalid_argument "Regs.ram1: address width must equal k") (fun () ->
            ignore (R.ram1 2 S.one [] S.one)));
  ]
