(* A second wave of coverage: pattern algebra, optimizer idempotence,
   packed exhaustive equivalence, event-driven custom delays, VCD files,
   pool chunking, and cross-checks between independent implementations. *)

open Util
module P = Patterns
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module O = Hydra_netlist.Optimize
module S = Hydra_core.Stream_sim
module Equiv = Hydra_verify.Equiv
module Event = Hydra_engine.Event
module Vcd = Hydra_engine.Vcd
module Pool = Hydra_parallel.Pool

let suite =
  [
    (* pattern algebra *)
    qc "scan of a scan = scan of doubled op is NOT assumed; but scans agree on singleton op"
      QCheck2.Gen.(list_size (int_range 1 20) small_nat)
      (fun xs ->
        (* last element of an inclusive scan is the fold *)
        let scanned = P.scan_sklansky ( + ) xs in
        P.last scanned = List.fold_left ( + ) 0 xs);
    qc "mscanr/mscanl duality via reversal"
      QCheck2.Gen.(list small_nat)
      (fun xs ->
        (* mscanr f a xs = mirror of mscanl (flip cell) on reversed input *)
        let cell x c = (x + c, c) in
        let a1, ys1 = P.mscanr cell 0 xs in
        let a2, ys2 = P.mscanl cell 0 (List.rev xs) in
        a1 = a2 && ys1 = List.rev ys2);
    qc "tree_fold parenthesization irrelevant for associative ops"
      QCheck2.Gen.(list_size (int_range 1 33) (int_bound 100))
      (fun xs ->
        P.tree_fold min xs = List.fold_left min max_int xs);
    qc "butterfly followed by banyan of swaps is identity"
      (QCheck2.Gen.return ())
      (fun () ->
        let xs = List.init 8 Fun.id in
        let swap (a, b) = (b, a) in
        P.banyan swap (P.butterfly swap xs) = xs);
    qc "riffle . riffle . riffle = id on 8 elements"
      (QCheck2.Gen.return ())
      (fun () ->
        let xs = List.init 8 Fun.id in
        P.riffle (P.riffle (P.riffle xs)) = xs);
    (* optimizer properties *)
    qc ~count:30 "optimizer is idempotent" Test_engine.gen_case
      (fun (nodes, _, ()) ->
        let nl = O.optimize (Test_engine.netlist_of nodes) in
        let again = O.optimize nl in
        N.size again = N.size nl);
    tc "optimizer preserves port lists" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl =
          N.extract ~inputs:[ a; b ]
            ~outputs:[ ("x", G.and2 a G.one); ("y", G.or2 b G.zero) ]
        in
        let opt = O.optimize nl in
        check_bool "inputs kept" true
          (List.map fst opt.N.inputs = [ "a"; "b" ]);
        check_bool "outputs kept" true (List.map fst opt.N.outputs = [ "x"; "y" ]));
    (* packed exhaustive equivalence *)
    tc "packed_exhaustive proves mux identities" (fun () ->
        let mux_def =
          {
            Equiv.apply =
              (fun (type a) (module C : Hydra_core.Signal_intf.COMB
                 with type t = a) v ->
                match v with
                | [ c; x; y ] -> [ C.or2 (C.and2 (C.inv c) x) (C.and2 c y) ]
                | _ -> assert false);
          }
        in
        let mux_xor =
          {
            Equiv.apply =
              (fun (type a) (module C : Hydra_core.Signal_intf.COMB
                 with type t = a) v ->
                match v with
                | [ c; x; y ] -> [ C.xor2 x (C.and2 c (C.xor2 x y)) ]
                | _ -> assert false);
          }
        in
        check_bool "equal" true
          (Equiv.is_equivalent (Equiv.packed_exhaustive ~inputs:3 mux_def mux_xor)));
    tc "packed_exhaustive finds the counterexample lane" (fun () ->
        let c_id =
          {
            Equiv.apply =
              (fun (type a) (module C : Hydra_core.Signal_intf.COMB
                 with type t = a) v -> [ List.nth v 0 ]);
          }
        in
        let c_and =
          {
            Equiv.apply =
              (fun (type a) (module C : Hydra_core.Signal_intf.COMB
                 with type t = a) v -> [ C.and2 (List.nth v 0) (List.nth v 1) ]);
          }
        in
        match Equiv.packed_exhaustive ~inputs:2 c_id c_and with
        | Equiv.Equivalent -> Alcotest.fail "expected counterexample"
        | Equiv.Inequivalent cex ->
          let f = c_id.Equiv.apply (module Bit) in
          let g = c_and.Equiv.apply (module Bit) in
          check_bool "real witness" true (f cex <> g cex));
    tc "packed_exhaustive agrees with exhaustive on the 8-bit adder vs cla"
      (fun () ->
        let adder build =
          {
            Equiv.apply =
              (fun (type a) (module C : Hydra_core.Signal_intf.COMB
                 with type t = a) v ->
                let module A = Hydra_circuits.Arith.Make (C) in
                let xs, ys = P.split_at 8 (P.unriffle v) in
                let cout, sums =
                  match build with
                  | `R -> A.ripple_add C.zero (List.combine xs ys)
                  | `C -> A.cla_add C.zero (List.combine xs ys)
                in
                cout :: sums);
          }
        in
        check_bool "equal" true
          (Equiv.is_equivalent
             (Equiv.packed_exhaustive ~inputs:16 (adder `R) (adder `C))));
    (* event-driven engine with custom delays *)
    tc "event: custom per-gate delays change settle time" (fun () ->
        let a = G.input "a" in
        let chain = G.inv (G.inv (G.inv a)) in
        let nl = N.of_graph ~outputs:[ ("y", chain) ] in
        (* every gate takes 5 time units; ports remain free *)
        let delay nl i =
          match nl.N.components.(i) with
          | N.Invc | N.And2c | N.Or2c | N.Xor2c -> 5
          | _ -> 0
        in
        let sim = Event.create ~delay:(fun nl i -> delay nl i) nl in
        Event.set_input sim "a" false;
        ignore (Event.step sim);
        Event.set_input sim "a" true;
        let r = Event.step sim in
        (* three inverters at delay 5 each: settle at 15 *)
        check_int "settle" 15 r.Event.settle_time);
    (* vcd *)
    tc "vcd: writes a loadable file" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff x) ] in
        let sim = Hydra_engine.Compiled.create nl in
        let vcd =
          Vcd.of_compiled_run sim ~inputs:[ ("x", [ true; false ]) ] ~cycles:2
        in
        let path = Filename.temp_file "hydra" ".vcd" in
        Vcd.to_file vcd path;
        let ic = open_in path in
        let len = in_channel_length ic in
        close_in ic;
        Sys.remove path;
        check_bool "non-empty" true (len > 50));
    (* pool chunk parameter *)
    tc "pool: explicit chunk size still covers the range" (fun () ->
        let pool = Pool.create ~domains:3 () in
        let hits = Array.make 1000 0 in
        Pool.parallel_for ~chunk:7 pool 0 1000 (fun i -> hits.(i) <- hits.(i) + 1);
        Pool.shutdown pool;
        check_bool "all once" true (Array.for_all (fun h -> h = 1) hits));
    (* signed multiplication *)
    qc "mult_signedw = two's-complement multiplication"
      QCheck2.Gen.(pair (int_range (-32) 31) (int_range (-32) 31))
      (fun (x, y) ->
        let module AB = Hydra_circuits.Arith.Make (Bit) in
        let out =
          AB.mult_signedw
            (Bitvec.of_signed_int ~width:6 x)
            (Bitvec.of_signed_int ~width:6 y)
        in
        List.length out = 12 && Bitvec.to_signed_int out = x * y);
    tc "sign_extend" (fun () ->
        let module AB = Hydra_circuits.Arith.Make (Bit) in
        check_int "-3 extends" (-3)
          (Bitvec.to_signed_int
             (AB.sign_extend ~width:8 (Bitvec.of_signed_int ~width:4 (-3))));
        check_int "5 extends" 5
          (Bitvec.to_signed_int
             (AB.sign_extend ~width:8 (Bitvec.of_signed_int ~width:4 5))));
    (* scale: a large netlist through the whole pipeline *)
    tc "scale: 16-bit wallace multiplier netlist (extract/levelize/compile/simulate)"
      (fun () ->
        let module WG = Hydra_circuits.Wallace.Make (G) in
        let xs = List.init 16 (fun i -> G.input (Printf.sprintf "x%d" i)) in
        let ys = List.init 16 (fun i -> G.input (Printf.sprintf "y%d" i)) in
        let out = WG.multw xs ys in
        let nl =
          N.of_graph
            ~outputs:(List.mapi (fun i b -> (Printf.sprintf "p%d" i, b)) out)
        in
        check_bool "thousands of gates" true ((N.stats nl).N.gates > 1500);
        let sim = Hydra_engine.Compiled.create nl in
        List.iter
          (fun (x, y) ->
            List.iteri
              (fun i b -> Hydra_engine.Compiled.set_input sim (Printf.sprintf "x%d" i) b)
              (Bitvec.of_int ~width:16 x);
            List.iteri
              (fun i b -> Hydra_engine.Compiled.set_input sim (Printf.sprintf "y%d" i) b)
              (Bitvec.of_int ~width:16 y);
            Hydra_engine.Compiled.settle sim;
            let p =
              List.init 32 (fun i ->
                  Hydra_engine.Compiled.output sim (Printf.sprintf "p%d" i))
            in
            check_int (Printf.sprintf "%d*%d" x y) (x * y) (Bitvec.to_int p))
          [ (0, 0); (1, 1); (65535, 65535); (12345, 54321); (256, 256) ]);
    (* fault simulation of a sequential circuit *)
    tc "fault: sequential circuit needs multiple observation cycles" (fun () ->
        let module R = Hydra_circuits.Regs.Make (G) in
        let x = G.input "x" in
        (* two-stage delay: faults on the first dff only show up a cycle
           later *)
        let q = G.dff (G.dff (G.inv x)) in
        let nl = N.of_graph ~outputs:[ ("q", q) ] in
        let module Fault = Hydra_verify.Fault in
        let vectors = [ [ true ]; [ false ] ] in
        let one_cycle = Fault.coverage ~cycles_per_vector:1 nl ~vectors in
        let three_cycles = Fault.coverage ~cycles_per_vector:3 nl ~vectors in
        check_bool "more cycles detect at least as much" true
          (three_cycles.Fault.detected >= one_cycle.Fault.detected);
        check_int "full coverage with propagation time"
          three_cycles.Fault.total three_cycles.Fault.detected);
    (* independent implementations cross-check: wallace vs array vs seq *)
    qc ~count:20 "three multipliers agree (wallace, array, sequential)"
      QCheck2.Gen.(pair (int_bound 63) (int_bound 63))
      (fun (x, y) ->
        let module WB = Hydra_circuits.Wallace.Make (Bit) in
        let module AB = Hydra_circuits.Arith.Make (Bit) in
        let module ASq = Hydra_circuits.Arith_seq.Make (S) in
        let xs = Bitvec.of_int ~width:6 x and ys = Bitvec.of_int ~width:6 y in
        let w = Bitvec.to_int (WB.multw xs ys) in
        let a = Bitvec.to_int (AB.multw xs ys) in
        S.reset ();
        let o =
          ASq.multiply 6 (S.of_list [ true ])
            (List.map S.constant xs) (List.map S.constant ys)
        in
        let rows = S.run ~cycles:9 o.ASq.product in
        let sq = Bitvec.to_int (List.nth rows 8) in
        w = x * y && a = x * y && sq = x * y);
  ]
