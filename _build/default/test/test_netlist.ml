(* Tests for netlist extraction, the paper's 4-tuple format (section 4.4),
   levelization and the fabrication formats. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module L = Hydra_netlist.Levelize
module F = Hydra_netlist.Formats
module CG = Hydra_circuits.Gates.Make (Hydra_core.Graph)
module CR = Hydra_circuits.Regs.Make (Hydra_core.Graph)
module CA = Hydra_circuits.Arith.Make (Hydra_core.Graph)

(* The section 4.4 example: x = and2 (inv a) b. *)
let fig1_netlist () =
  let a = G.input "a" and b = G.input "b" in
  N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ]

let ripple_netlist n =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let cout, sums = CA.ripple_add G.zero (List.combine xs ys) in
  N.of_graph
    ~outputs:
      (("cout", cout)
      :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let suite =
  [
    tc "fig1: component inventory" (fun () ->
        let nl = fig1_netlist () in
        let s = N.stats nl in
        check_int "gates" 2 s.N.gates;
        check_int "inputs" 2 s.N.inports;
        check_int "outputs" 1 s.N.outports;
        check_int "dffs" 0 s.N.dffs);
    tc "fig1: paper 4-tuple format (E4)" (fun () ->
        let str = F.to_paper_string (fig1_netlist ()) in
        (* ids: 0,1 = inports a b; 2 = outport x; 3,4 = inv, and2 —
           exactly the paper's numbering *)
        let expected =
          "([(0, InPort \"a\"), (1, InPort \"b\")],\n\
          \ [(2, OutPort \"x\")],\n\
          \ [(3, Inv), (4, And2)],\n\
          \ [((0,0), [(3,0)]), ((1,0), [(4,1)]), ((3,1), [(4,0)]), ((4,2), [(2,0)])])"
        in
        check_string "tuple" expected str);
    tc "sharing: one node for a reused subcircuit" (fun () ->
        let a = G.input "a" in
        let i = G.inv a in
        let nl = N.of_graph ~outputs:[ ("x", G.and2 i i) ] in
        check_int "gates" 2 (N.stats nl).N.gates);
    tc "feedback: reg1 netlist is a cycle with one dff" (fun () ->
        let ld = G.input "ld" and x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("s", CR.reg1 ld x) ] in
        let s = N.stats nl in
        check_int "dffs" 1 s.N.dffs;
        (* mux1 = inv + 2 and + or *)
        check_int "gates" 4 s.N.gates);
    tc "levelize: fig1 critical path = 2" (fun () ->
        check_int "cp" 2 (L.critical_path (fig1_netlist ())));
    tc "levelize: matches Depth semantics on ripple adder" (fun () ->
        let n = 8 in
        let module DA = Hydra_circuits.Arith.Make (Hydra_core.Depth) in
        Hydra_core.Depth.reset ();
        let ins = List.init n (fun _ -> (Hydra_core.Depth.input, Hydra_core.Depth.input)) in
        let cout, sums = DA.ripple_add Hydra_core.Depth.zero ins in
        let r = Hydra_core.Depth.report (cout :: sums) in
        check_int "same critical path" r.Hydra_core.Depth.critical_path
          (L.critical_path (ripple_netlist n)));
    tc "levelize: dff breaks cycles" (fun () ->
        let ld = G.input "ld" and x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("s", CR.reg1 ld x) ] in
        let t = L.check nl in
        check_bool "no comb cycle" true (t.L.cyclic = []));
    tc "levelize: combinational cycle detected" (fun () ->
        let out = G.feedback (fun s -> G.and2 s (G.input "a")) in
        let nl = N.of_graph ~outputs:[ ("x", out) ] in
        let t = L.compute nl in
        check_bool "cycle found" true (t.L.cyclic <> []);
        match L.check nl with
        | _ -> Alcotest.fail "expected Combinational_cycle"
        | exception L.Combinational_cycle _ -> ());
    tc "levelize: by_level covers all gates once" (fun () ->
        let nl = ripple_netlist 6 in
        let t = L.check nl in
        let counted = Array.fold_left (fun acc l -> acc + Array.length l) 0 t.L.by_level in
        check_int "gate+outport count" ((N.stats nl).N.gates + (N.stats nl).N.outports) counted);
    tc "fanout is inverse of fanin" (fun () ->
        let nl = ripple_netlist 4 in
        let fo = N.fanout nl in
        let ok = ref true in
        Array.iteri
          (fun sink drivers ->
            Array.iteri
              (fun port drv ->
                if not (List.mem (sink, port) fo.(drv)) then ok := false)
              drivers)
          nl.N.fanin;
        check_bool "consistent" true !ok);
    tc "dot output mentions every component" (fun () ->
        let nl = fig1_netlist () in
        let dot = F.to_dot nl in
        check_bool "digraph" true (String.length dot > 0);
        let count_nodes =
          List.length
            (String.split_on_char '\n' dot
            |> List.filter (fun l -> String.length l > 3 && String.sub l 2 1 = "n"))
        in
        check_bool "some nodes" true (count_nodes >= N.size nl));
    tc "verilog: combinational module structure" (fun () ->
        let v = F.to_verilog ~name:"fig1" (fig1_netlist ()) in
        check_bool "module line" true
          (String.length v > 0
          && String.sub v 0 11 = "module fig1");
        check_bool "no clk for comb" true
          (not (String.split_on_char ',' v |> List.exists (fun s -> String.trim s = "input clk"))));
    tc "verilog: sequential module has clk and reg" (fun () ->
        let ld = G.input "ld" and x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("s", CR.reg1 ld x) ] in
        let v = F.to_verilog ~name:"reg1" nl in
        let contains hay needle =
          let nl_ = String.length needle and hl = String.length hay in
          let rec go i = i + nl_ <= hl && (String.sub hay i nl_ = needle || go (i + 1)) in
          go 0
        in
        check_bool "clk port" true (contains v "input clk");
        check_bool "always block" true (contains v "always @(posedge clk)"));
    tc "serialize: round trip of fig1" (fun () ->
        let nl = fig1_netlist () in
        let nl' = Hydra_netlist.Serial.of_string (Hydra_netlist.Serial.to_string nl) in
        check_bool "components" true (nl'.N.components = nl.N.components);
        check_bool "fanin" true (nl'.N.fanin = nl.N.fanin);
        check_bool "ports" true
          (nl'.N.inputs = nl.N.inputs && nl'.N.outputs = nl.N.outputs));
    tc "serialize: sequential circuit with labels round-trips" (fun () ->
        let ld = G.input "ld" and x = G.input "x" in
        let s = G.label "state" (CR.reg1 ld x) in
        let nl = N.of_graph ~outputs:[ ("s", s) ] in
        let nl' = Hydra_netlist.Serial.of_string (Hydra_netlist.Serial.to_string nl) in
        check_bool "names preserved" true (nl'.N.names = nl.N.names);
        check_bool "dffs preserved" true ((N.stats nl').N.dffs = 1);
        (* behaviour identical *)
        let run nl =
          Hydra_engine.Compiled.run
            (Hydra_engine.Compiled.create nl)
            ~inputs:[ ("ld", [ true; false ]); ("x", [ true; false ]) ]
            ~cycles:2
        in
        check_bool "same behaviour" true (run nl = run nl'));
    tc "serialize: parse errors are reported" (fun () ->
        (match Hydra_netlist.Serial.of_string "garbage\n" with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception Hydra_netlist.Serial.Parse_error _ -> ());
        match
          Hydra_netlist.Serial.of_string
            "hydra-netlist 1\ncomponent 0 frob\nend\n"
        with
        | _ -> Alcotest.fail "expected Parse_error"
        | exception Hydra_netlist.Serial.Parse_error _ -> ());
    tc "serialize: file round trip" (fun () ->
        let nl = ripple_netlist 4 in
        let path = Filename.temp_file "hydra" ".netlist" in
        Hydra_netlist.Serial.to_file nl path;
        let nl' = Hydra_netlist.Serial.of_file path in
        Sys.remove path;
        check_bool "equal" true (nl'.N.components = nl.N.components));
    tc "stats string" (fun () ->
        let s = F.stats_string (fig1_netlist ()) in
        check_bool "nonempty" true (String.length s > 0));
  ]
