(* Tests for derived gates, multiplexers, demultiplexers, encoders. *)

open Util
module G = Hydra_circuits.Gates.Make (Hydra_core.Bit)
module M = Hydra_circuits.Mux.Make (Hydra_core.Bit)
module D = Hydra_core.Depth
module GD = Hydra_circuits.Gates.Make (Hydra_core.Depth)

let bools2 f = List.map (fun (a, b) -> f a b)
let all2 = [ (false, false); (false, true); (true, false); (true, true) ]

let suite =
  [
    tc "nand/nor/xnor truth tables" (fun () ->
        check_bool_list "nand" [ true; true; true; false ] (bools2 G.nand2 all2);
        check_bool_list "nor" [ true; false; false; false ] (bools2 G.nor2 all2);
        check_bool_list "xnor" [ true; false; false; true ] (bools2 G.xnor2 all2));
    tc "imply" (fun () ->
        check_bool_list "imply" [ true; true; false; true ] (bools2 G.imply all2));
    tc "and3/or3/xor3" (fun () ->
        check_bool "and3" true (G.and3 true true true);
        check_bool "and3 f" false (G.and3 true false true);
        check_bool "or3" true (G.or3 false false true);
        check_bool "xor3 odd" true (G.xor3 true true true);
        check_bool "xor3 even" false (G.xor3 true true false));
    tc "and4/or4" (fun () ->
        check_bool "and4" true (G.and4 true true true true);
        check_bool "and4 f" false (G.and4 true true true false);
        check_bool "or4" true (G.or4 false false false true);
        check_bool "or4 f" false (G.or4 false false false false));
    qc "any1 = exists" (gen_word 9) (fun w -> G.any1 w = List.exists Fun.id w);
    qc "all1 = forall" (gen_word 9) (fun w -> G.all1 w = List.for_all Fun.id w);
    qc "parity = xor fold" (gen_word 9) (fun w ->
        G.parity w = List.fold_left ( <> ) false w);
    qc "is_zero" (gen_word 6) (fun w -> G.is_zero w = not (List.exists Fun.id w));
    qc "invw involution" (gen_word 8) (fun w -> G.invw (G.invw w) = w);
    tc "word reductions have log depth" (fun () ->
        D.reset ();
        let w = List.init 16 (fun _ -> D.input) in
        check_int "orw depth 16" 4 (GD.orw w));
    tc "wconst" (fun () ->
        check_int "10 in 4 bits" 10 (Bitvec.to_int (G.wconst ~width:4 10)));
    tc "gatew masks" (fun () ->
        check_bool_list "gated off" [ false; false ]
          (G.gatew false [ true; true ]);
        check_bool_list "gated on" [ true; false ] (G.gatew true [ true; false ]));
    tc "fanout" (fun () ->
        check_bool_list "3x" [ true; true; true ] (G.fanout 3 true));
    (* Multiplexers *)
    tc "mux1 truth table (paper fig 2)" (fun () ->
        (* output is x when c = 0, y when c = 1 *)
        check_bool "c0 picks x" true (M.mux1 false true false);
        check_bool "c1 picks y" false (M.mux1 true true false);
        check_bool "c1 picks y'" true (M.mux1 true false true));
    qc "mux1 = if" QCheck2.Gen.(triple bool bool bool) (fun (c, x, y) ->
        M.mux1 c x y = if c then y else x);
    qc "mux2 = 2-bit select"
      QCheck2.Gen.(
        pair (pair bool bool) (quad bool bool bool bool))
      (fun ((c0, c1), (w, x, y, z)) ->
        M.mux2 (c0, c1) w x y z
        = match (c0, c1) with
          | false, false -> w
          | false, true -> x
          | true, false -> y
          | true, true -> z);
    qc "muxw selects indexed element"
      QCheck2.Gen.(pair (int_bound 7) (gen_word 8))
      (fun (i, xs) ->
        let cs = Bitvec.of_int ~width:3 i in
        M.muxw cs xs = List.nth xs i);
    tc "muxw width mismatch raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Mux.muxw: data width is not 2^(address width)")
          (fun () -> ignore (M.muxw [] [ true; false ])));
    qc "wmux1 selects word"
      QCheck2.Gen.(triple bool (gen_word 5) (gen_word 5))
      (fun (c, xs, ys) -> M.wmux1 c xs ys = if c then ys else xs);
    qc "wmux2 selects one of four words"
      QCheck2.Gen.(
        pair (pair bool bool)
          (quad (gen_word 3) (gen_word 3) (gen_word 3) (gen_word 3)))
      (fun ((c0, c1), (w, x, y, z)) ->
        M.wmux2 (c0, c1) w x y z
        = match (c0, c1) with
          | false, false -> w
          | false, true -> x
          | true, false -> y
          | true, true -> z);
    qc "demux1 routes" QCheck2.Gen.(pair bool bool) (fun (c, x) ->
        M.demux1 c x = if c then (false, x) else (x, false));
    qc "demuxw one-hot routing"
      QCheck2.Gen.(pair (int_bound 7) bool)
      (fun (i, x) ->
        let outs = M.demuxw (Bitvec.of_int ~width:3 i) x in
        List.length outs = 8
        && List.for_all2
             (fun j o -> if j = i then o = x else o = false)
             (List.init 8 Fun.id) outs);
    tc "demux4w needs 4 bits" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Mux.demux4w: need 4 address bits") (fun () ->
            ignore (M.demux4w [ true ] true)));
    tc "demux4w: 16 outputs, paper usage" (fun () ->
        let outs = M.demux4w (Bitvec.of_int ~width:4 1) true in
        check_int "len" 16 (List.length outs);
        check_bool "p!!1" true (List.nth outs 1);
        check_bool "p!!0" false (List.nth outs 0));
    qc "decode is one-hot of address" (QCheck2.Gen.int_bound 15) (fun i ->
        let outs = M.decode (Bitvec.of_int ~width:4 i) in
        List.nth outs i && List.length (List.filter Fun.id outs) = 1);
    qc "encode inverts decode" (QCheck2.Gen.int_bound 15) (fun i ->
        let code = M.encode (M.decode (Bitvec.of_int ~width:4 i)) in
        Bitvec.to_int code = i);
    qc "priority_encode finds first set bit" (gen_word 8) (fun w ->
        let valid, idx = M.priority_encode w in
        match List.find_index Fun.id w with
        | None -> valid = false
        | Some first -> valid && Bitvec.to_int idx = first);
  ]
