(* Tests for instruction encoding/decoding, the assembler and the golden
   model. *)

open Util
module Isa = Hydra_cpu.Isa
module Asm = Hydra_cpu.Asm
module Golden = Hydra_cpu.Golden

let suite =
  [
    tc "encode RRR fields" (fun () ->
        check_int_list "add R1,R2,R3" [ 0x0123 ]
          (Isa.encode (Isa.Rrr (Isa.Add, 1, 2, 3))));
    tc "encode RX two words" (fun () ->
        check_int_list "load R4,10[R2]" [ 0x1420; 10 ]
          (Isa.encode (Isa.Rx (Isa.Load, 4, 2, 10))));
    tc "load has opcode 1 (paper)" (fun () ->
        check_int "opcode" 1 (Isa.int_of_opcode Isa.Load));
    tc "negative displacement wraps to 16 bits" (fun () ->
        check_int_list "disp" [ 0x9010; 0xffff ]
          (Isa.encode (Isa.Rx (Isa.Jump, 0, 1, -1))));
    tc "register out of range rejected" (fun () ->
        match Isa.encode (Isa.Rrr (Isa.Add, 16, 0, 0)) with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    qc "decode inverts encode (RRR)"
      QCheck2.Gen.(
        quad
          (oneofl [ Isa.Add; Isa.Sub; Isa.Cmplt; Isa.Cmpeq; Isa.Cmpgt; Isa.Inc ])
          (int_bound 15) (int_bound 15) (int_bound 15))
      (fun (op, d, sa, sb) ->
        let words = Isa.encode (Isa.Rrr (op, d, sa, sb)) in
        let arr = Array.of_list words in
        let instr, len = Isa.decode ~fetch:(fun a -> arr.(a)) 0 in
        len = 1 && instr = Isa.Rrr (op, d, sa, sb));
    qc "decode inverts encode (RX)"
      QCheck2.Gen.(
        quad
          (oneofl [ Isa.Load; Isa.Store; Isa.Ldval; Isa.Jump; Isa.Jumpf; Isa.Jumpt ])
          (int_bound 15) (int_bound 15) (int_bound 0xffff))
      (fun (op, d, sa, disp) ->
        let words = Isa.encode (Isa.Rx (op, d, sa, disp)) in
        let arr = Array.of_list words in
        let instr, len = Isa.decode ~fetch:(fun a -> arr.(a)) 0 in
        len = 2 && instr = Isa.Rx (op, d, sa, disp));
    tc "opcodes 13-15 decode as the logic instructions" (fun () ->
        List.iter
          (fun (code, op) ->
            let instr, len = Isa.decode ~fetch:(fun _ -> code lsl 12) 0 in
            check_int "len" 1 len;
            match instr with
            | Isa.Rrr (o, _, _, _) when o = op -> ()
            | _ -> Alcotest.fail "wrong decode")
          [ (13, Isa.Land); (14, Isa.Lor); (15, Isa.Lxor) ]);
    tc "nop assembles to and R0,R0,R0" (fun () ->
        check_int_list "nop" [ 0xd000 ] (Asm.assemble "nop\n"));
    tc "logic ops assemble and round-trip" (fun () ->
        let words = Asm.assemble "and R1,R2,R3\nor R4,R5,R6\nxor R7,R8,R9\n" in
        check_int_list "encodings" [ 0xd123; 0xe456; 0xf789 ] words);
    (* assembler *)
    tc "assemble basic program" (fun () ->
        let words =
          Asm.assemble "  add R1,R2,R3\n  halt\n"
        in
        check_int_list "words" [ 0x0123; 0x5000 ] words);
    tc "assemble labels and data" (fun () ->
        let words =
          Asm.assemble
            "start: load R1,x[R0]\n  halt\nx: data 42\n"
        in
        (* load=2 words, halt=1, so x is at address 3 *)
        check_int_list "words" [ 0x1100; 3; 0x5000; 42 ] words);
    tc "assemble jump with label" (fun () ->
        let words = Asm.assemble "loop: jump loop[R0]\n" in
        check_int_list "words" [ 0x9000; 0 ] words);
    tc "assemble comments and blank lines" (fun () ->
        let words = Asm.assemble "; header\n\n  nop ; trailing\n" in
        check_int_list "words" [ 0xd000 ] words);
    tc "assemble negative data" (fun () ->
        check_int_list "words" [ 0xffff ] (Asm.assemble "data -1\n"));
    tc "assemble hex operand" (fun () ->
        check_int_list "words" [ 0x2a ] (Asm.assemble "data 0x2a\n"));
    tc "duplicate label rejected" (fun () ->
        match Asm.assemble "a: nop\na: nop\n" with
        | _ -> Alcotest.fail "expected Error"
        | exception Asm.Error { line = 2; _ } -> ());
    tc "undefined label rejected" (fun () ->
        match Asm.assemble "jump nowhere[R0]\n" with
        | _ -> Alcotest.fail "expected Error"
        | exception Asm.Error _ -> ());
    tc "bad register rejected" (fun () ->
        match Asm.assemble "add R1,R99,R3\n" with
        | _ -> Alcotest.fail "expected Error"
        | exception Asm.Error _ -> ());
    tc "unknown mnemonic rejected" (fun () ->
        match Asm.assemble "frob R1\n" with
        | _ -> Alcotest.fail "expected Error"
        | exception Asm.Error _ -> ());
    tc "disassemble round trip" (fun () ->
        let src = "  add R1,R2,R3\n  load R4,7[R5]\n  halt\n" in
        let dis = Asm.disassemble (Asm.assemble src) in
        let contains needle =
          let h = dis and nl = String.length needle in
          let rec go i =
            i + nl <= String.length h
            && (String.sub h i nl = needle || go (i + 1))
          in
          go 0
        in
        check_bool "add" true (contains "add   R1,R2,R3");
        check_bool "load" true (contains "load  R4,7[R5]");
        check_bool "halt" true (contains "halt"));
    (* golden model *)
    tc "golden: add/sub/inc" (fun () ->
        let g = Golden.create () in
        Golden.load_program g
          (Asm.assemble
             "ldval R1,5[R0]\nldval R2,7[R0]\nadd R3,R1,R2\nsub R4,R2,R1\n\
              inc R5,R3\nhalt\n");
        ignore (Golden.run g);
        check_int "r3" 12 (Golden.reg g 3);
        check_int "r4" 2 (Golden.reg g 4);
        check_int "r5" 13 (Golden.reg g 5));
    tc "golden: comparisons are signed" (fun () ->
        let g = Golden.create () in
        Golden.load_program g
          (Asm.assemble
             "ldval R1,-1[R0]\nldval R2,1[R0]\ncmplt R3,R1,R2\n\
              cmpgt R4,R1,R2\ncmpeq R5,R1,R1\nhalt\n");
        ignore (Golden.run g);
        check_int "-1 < 1" 1 (Golden.reg g 3);
        check_int "-1 > 1" 0 (Golden.reg g 4);
        check_int "-1 = -1" 1 (Golden.reg g 5));
    tc "golden: load/store" (fun () ->
        let g = Golden.create () in
        Golden.load_program g
          (Asm.assemble
             "load R1,x[R0]\ninc R1,R1\nstore R1,y[R0]\nhalt\n\
              x: data 41\ny: data 0\n");
        ignore (Golden.run g);
        let labels = Asm.labels_of "load R1,x[R0]\ninc R1,R1\nstore R1,y[R0]\nhalt\nx: data 41\ny: data 0\n" in
        let y = Hashtbl.find labels "y" in
        check_int "mem[y]" 42 (Golden.read_mem g y));
    tc "golden: jumps and loop" (fun () ->
        (* sum 1..5 with a loop *)
        let src =
          "  ldval R1,0[R0]      ; sum\n\
          \  ldval R2,5[R0]      ; i = 5\n\
           loop: cmpeq R3,R2,R0\n\
          \  jumpt R3,done[R0]\n\
          \  add R1,R1,R2\n\
          \  ldval R4,1[R0]\n\
          \  sub R2,R2,R4\n\
          \  jump loop[R0]\n\
           done: halt\n"
        in
        let g = Golden.create () in
        Golden.load_program g (Asm.assemble src);
        ignore (Golden.run g);
        check_int "sum" 15 (Golden.reg g 1);
        check_bool "halted" true g.Golden.halted);
    tc "golden: jumpf taken when zero" (fun () ->
        let g = Golden.create () in
        Golden.load_program g
          (Asm.assemble
             "jumpf R0,skip[R0]\nldval R1,99[R0]\nskip: halt\n");
        ignore (Golden.run g);
        check_int "r1 untouched" 0 (Golden.reg g 1));
    tc "golden: wraparound arithmetic" (fun () ->
        let g = Golden.create () in
        Golden.load_program g
          (Asm.assemble
             "ldval R1,0xffff[R0]\ninc R2,R1\nhalt\n");
        ignore (Golden.run g);
        check_int "wrap" 0 (Golden.reg g 2));
    tc "golden: event stream records writes" (fun () ->
        let g = Golden.create () in
        Golden.load_program g (Asm.assemble "ldval R1,3[R0]\nhalt\n");
        let events = Golden.run g in
        check_bool "reg write present" true
          (List.exists
             (function
               | Golden.Reg_write { reg = 1; value = 3 } -> true
               | _ -> false)
             events);
        check_bool "halt present" true
          (List.exists (function Golden.Halted -> true | _ -> false) events));
  ]
