(* Tests for the stall/reset netlist transformations. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module T = Hydra_netlist.Transform
module Compiled = Hydra_engine.Compiled

(* a 3-bit counter with enable, as the guinea pig *)
let counter_netlist () =
  let module R = Hydra_circuits.Regs.Make (G) in
  let en = G.input "en" in
  let count = R.counter 3 en in
  N.of_graph
    ~outputs:(List.mapi (fun i b -> (Printf.sprintf "c%d" i, b)) count)

let read_count sim =
  Bitvec.to_int
    (List.init 3 (fun i -> Compiled.output sim (Printf.sprintf "c%d" i)))

let suite =
  [
    tc "stall: 0 leaves behaviour unchanged" (fun () ->
        let nl = counter_netlist () in
        let nl' = T.insert_stall nl ~name:"stall" in
        let run nl extra =
          Compiled.run (Compiled.create nl)
            ~inputs:(("en", [ true; true; true; true ]) :: extra)
            ~cycles:4
        in
        let base = run nl [] in
        let stalled = run nl' [ ("stall", [ false; false; false; false ]) ] in
        check_bool "same rows" true (base = stalled));
    tc "stall: freezes and resumes (time dilation)" (fun () ->
        let nl = T.insert_stall (counter_netlist ()) ~name:"stall" in
        let sim = Compiled.create nl in
        Compiled.set_input sim "en" true;
        Compiled.set_input sim "stall" false;
        Compiled.step sim;
        Compiled.step sim;
        Compiled.settle sim;
        check_int "counted to 2" 2 (read_count sim);
        Compiled.set_input sim "stall" true;
        for _ = 1 to 5 do
          Compiled.step sim
        done;
        Compiled.settle sim;
        check_int "frozen at 2" 2 (read_count sim);
        Compiled.set_input sim "stall" false;
        Compiled.step sim;
        Compiled.settle sim;
        check_int "resumes" 3 (read_count sim));
    tc "stall: duplicate input name rejected" (fun () ->
        match T.insert_stall (counter_netlist ()) ~name:"en" with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "reset: returns the machine to power-up synchronously" (fun () ->
        let nl = T.insert_reset (counter_netlist ()) ~name:"rst" in
        let sim = Compiled.create nl in
        Compiled.set_input sim "en" true;
        Compiled.set_input sim "rst" false;
        for _ = 1 to 5 do
          Compiled.step sim
        done;
        Compiled.settle sim;
        check_int "counted to 5" 5 (read_count sim);
        Compiled.set_input sim "rst" true;
        Compiled.step sim;
        Compiled.set_input sim "rst" false;
        Compiled.settle sim;
        check_int "back to 0" 0 (read_count sim);
        Compiled.step sim;
        Compiled.settle sim;
        check_int "counts again" 1 (read_count sim));
    tc "reset: respects dff_init power-up values" (fun () ->
        let x = G.input "x" in
        let q = G.dff_init true x in
        let nl = T.insert_reset (N.of_graph ~outputs:[ ("q", q) ]) ~name:"rst" in
        let sim = Compiled.create nl in
        Compiled.set_input sim "x" false;
        Compiled.set_input sim "rst" false;
        Compiled.step sim;
        Compiled.settle sim;
        check_bool "loaded 0" false (Compiled.output sim "q");
        Compiled.set_input sim "rst" true;
        Compiled.step sim;
        Compiled.settle sim;
        check_bool "reset to 1" true (Compiled.output sim "q"));
    tc "transforms compose: stall + reset" (fun () ->
        let nl =
          T.insert_reset
            (T.insert_stall (counter_netlist ()) ~name:"stall")
            ~name:"rst"
        in
        check_bool "both inputs present" true
          (List.mem_assoc "stall" nl.N.inputs && List.mem_assoc "rst" nl.N.inputs);
        (* still levelizes cleanly *)
        let lv = Hydra_netlist.Levelize.check nl in
        check_bool "acyclic" true (lv.Hydra_netlist.Levelize.cyclic = []));
    tc "xsim + reset: reset defines an X power-up machine" (fun () ->
        (* the paper's dff0 guarantee made checkable: with unknown power-up
           but a reset pulse, all state becomes defined *)
        let nl = T.insert_reset (counter_netlist ()) ~name:"rst" in
        let module Xsim = Hydra_engine.Xsim in
        let sim = Xsim.create nl in
        Xsim.set_input_bool sim "en" false;
        Xsim.set_input_bool sim "rst" true;
        check_bool "unknown before" true (Xsim.unknown_dffs sim > 0);
        Xsim.step sim;
        Xsim.set_input_bool sim "rst" false;
        check_int "all defined after one reset cycle" 0 (Xsim.unknown_dffs sim));
  ]
