(* Tests for the BDD package, equivalence checking and bounded model
   checking (paper section 4.6). *)

open Util
module Bdd = Hydra_verify.Bdd
module Equiv = Hydra_verify.Equiv
module Bmc = Hydra_verify.Bmc
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module P = Patterns

(* Generic circuits for the equivalence tests. *)
let mux_def =
  {
    Equiv.apply =
      (fun (type a) (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
        match v with
        | [ c; x; y ] -> [ C.or2 (C.and2 (C.inv c) x) (C.and2 c y) ]
        | _ -> assert false);
  }

let mux_xor_def =
  {
    Equiv.apply =
      (fun (type a) (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
        match v with
        | [ c; x; y ] -> [ C.xor2 x (C.and2 c (C.xor2 x y)) ]
        | _ -> assert false);
  }

(* width-w adder circuits over 2w+1 inputs (cin :: xs :: ys) *)
let adder ~w build =
  {
    Equiv.apply =
      (fun (type a) (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
        let module A = Hydra_circuits.Arith.Make (C) in
        let cin = List.hd v in
        let xs, ys = P.split_at w (List.tl v) in
        let cout, sums =
          match build with
          | `Ripple -> A.ripple_add cin (List.combine xs ys)
          | `Ripple4 -> A.ripple_add4 cin (List.combine xs ys)
          | `Cla net -> A.cla_add ~network:net cin (List.combine xs ys)
        in
        cout :: sums);
  }

(* 3-bit counter netlist with enable input and count outputs, plus a
   [prop] output asserting count <> limit. *)
let counter_netlist ~limit =
  let en = G.input "en" in
  let module R = Hydra_circuits.Regs.Make (G) in
  let module A = Hydra_circuits.Arith.Make (G) in
  let module Gt = Hydra_circuits.Gates.Make (G) in
  let count = R.counter 3 en in
  let prop =
    G.inv (A.eqw count (Gt.wconst ~width:3 limit))
  in
  N.extract ~inputs:[ en ]
    ~outputs:
      (("prop", prop)
      :: List.mapi (fun i b -> (Printf.sprintf "c%d" i, b)) count)

let suite =
  [
    (* BDD basics *)
    tc "bdd: constants and vars" (fun () ->
        let m = Bdd.manager () in
        check_bool "t" true (Bdd.eval (fun _ -> false) Bdd.btrue);
        check_bool "f" false (Bdd.eval (fun _ -> false) Bdd.bfalse);
        let x = Bdd.var m 0 in
        check_bool "x@1" true (Bdd.eval (fun _ -> true) x);
        check_bool "x@0" false (Bdd.eval (fun _ -> false) x);
        check_bool "nvar" true (Bdd.eval (fun _ -> false) (Bdd.nvar m 0)));
    tc "bdd: canonicity (same function, same node)" (fun () ->
        let m = Bdd.manager () in
        let x = Bdd.var m 0 and y = Bdd.var m 1 in
        let a = Bdd.bdd_xor m x y in
        let b =
          Bdd.bdd_or m
            (Bdd.bdd_and m x (Bdd.bdd_not m y))
            (Bdd.bdd_and m (Bdd.bdd_not m x) y)
        in
        check_bool "equal nodes" true (Bdd.equal a b));
    tc "bdd: complement and identity laws" (fun () ->
        let m = Bdd.manager () in
        let x = Bdd.var m 3 in
        check_bool "x and not x = 0" true
          (Bdd.equal (Bdd.bdd_and m x (Bdd.bdd_not m x)) Bdd.bfalse);
        check_bool "x or not x = 1" true
          (Bdd.equal (Bdd.bdd_or m x (Bdd.bdd_not m x)) Bdd.btrue);
        check_bool "double negation" true
          (Bdd.equal (Bdd.bdd_not m (Bdd.bdd_not m x)) x);
        check_bool "ite(c,x,x) = x" true
          (Bdd.equal (Bdd.bdd_ite m (Bdd.var m 0) x x) x));
    qc "bdd: ops agree with bool ops on random formulas"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 30)
             (triple (int_bound 3) (int_bound 100) (int_bound 100)))
          (list_size (return 5) bool))
      (fun (ops, assign_l) ->
        let m = Bdd.manager () in
        let assign v = List.nth assign_l (v mod 5) in
        let stack_b = ref (List.init 5 (Bdd.var m)) in
        let stack_v = ref (List.map assign [ 0; 1; 2; 3; 4 ]) in
        List.iter
          (fun (op, i, j) ->
            let nb = List.length !stack_b in
            let pick s k = List.nth s (k mod nb) in
            let b1 = pick !stack_b i and b2 = pick !stack_b j in
            let v1 = pick !stack_v i and v2 = pick !stack_v j in
            let nb', nv' =
              match op with
              | 0 -> (Bdd.bdd_and m b1 b2, v1 && v2)
              | 1 -> (Bdd.bdd_or m b1 b2, v1 || v2)
              | 2 -> (Bdd.bdd_xor m b1 b2, v1 <> v2)
              | _ -> (Bdd.bdd_not m b1, not v1)
            in
            stack_b := nb' :: !stack_b;
            stack_v := nv' :: !stack_v)
          ops;
        Bdd.eval assign (List.hd !stack_b) = List.hd !stack_v);
    tc "bdd: sat_count" (fun () ->
        let m = Bdd.manager () in
        let x = Bdd.var m 0 and y = Bdd.var m 1 in
        check_bool "x over 2 vars" true (Bdd.sat_count ~nvars:2 x = 2.0);
        check_bool "x and y" true
          (Bdd.sat_count ~nvars:2 (Bdd.bdd_and m x y) = 1.0);
        check_bool "x or y" true
          (Bdd.sat_count ~nvars:2 (Bdd.bdd_or m x y) = 3.0);
        check_bool "true over 4 vars" true
          (Bdd.sat_count ~nvars:4 Bdd.btrue = 16.0);
        check_bool "false" true (Bdd.sat_count ~nvars:4 Bdd.bfalse = 0.0));
    tc "bdd: support and size" (fun () ->
        let m = Bdd.manager () in
        let f =
          Bdd.bdd_and m (Bdd.var m 1)
            (Bdd.bdd_or m (Bdd.var m 3) (Bdd.var m 5))
        in
        check_int_list "support" [ 1; 3; 5 ] (Bdd.support f);
        check_bool "size > 0" true (Bdd.size f > 0));
    tc "bdd: any_sat finds a correct witness" (fun () ->
        let m = Bdd.manager () in
        let f = Bdd.bdd_and m (Bdd.var m 0) (Bdd.bdd_not m (Bdd.var m 1)) in
        (match Bdd.any_sat f with
        | Some assign ->
          let lookup v =
            match List.assoc_opt v assign with Some b -> b | None -> false
          in
          check_bool "witness satisfies" true (Bdd.eval lookup f)
        | None -> Alcotest.fail "expected sat");
        check_bool "unsat" true (Bdd.any_sat Bdd.bfalse = None));
    (* equivalence checking *)
    tc "equiv: two mux definitions proved equal (bdd/exhaustive/random)"
      (fun () ->
        check_bool "bdd" true
          (Equiv.is_equivalent (Equiv.bdd_equiv ~inputs:3 mux_def mux_xor_def));
        check_bool "exhaustive" true
          (Equiv.is_equivalent (Equiv.exhaustive ~inputs:3 mux_def mux_xor_def));
        check_bool "random" true
          (Equiv.is_equivalent (Equiv.random ~inputs:3 mux_def mux_xor_def)));
    tc "equiv: counterexample distinguishes inequivalent circuits" (fun () ->
        let c_and =
          {
            Equiv.apply =
              (fun (type a)
                (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
                [ C.and2 (List.nth v 0) (List.nth v 1) ]);
          }
        in
        let c_or =
          {
            Equiv.apply =
              (fun (type a)
                (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
                [ C.or2 (List.nth v 0) (List.nth v 1) ]);
          }
        in
        (match Equiv.bdd_equiv ~inputs:2 c_and c_or with
        | Equiv.Equivalent -> Alcotest.fail "expected counterexample"
        | Equiv.Inequivalent cex ->
          let f = c_and.Equiv.apply (module Bit) in
          let g = c_or.Equiv.apply (module Bit) in
          check_bool "distinguishes" true (f cex <> g cex));
        match Equiv.exhaustive ~inputs:2 c_and c_or with
        | Equiv.Equivalent -> Alcotest.fail "expected counterexample"
        | Equiv.Inequivalent _ -> ());
    tc "equiv: rippleAdd4 = mscanr ripple (BDD proof, E6)" (fun () ->
        check_bool "equal" true
          (Equiv.is_equivalent
             (Equiv.bdd_equiv ~inputs:9 (adder ~w:4 `Ripple4)
                (adder ~w:4 `Ripple))));
    tc "equiv: every CLA network = ripple (8 bits, BDD proof, E11)" (fun () ->
        List.iter
          (fun net ->
            check_bool (P.prefix_network_name net) true
              (Equiv.is_equivalent
                 (Equiv.bdd_equiv ~inputs:17 (adder ~w:8 `Ripple)
                    (adder ~w:8 (`Cla net)))))
          P.all_prefix_networks);
    tc "equiv: bdd_outputs exposes symbolic functions" (fun () ->
        let m, outs = Equiv.bdd_outputs ~inputs:3 mux_def in
        ignore m;
        match outs with
        | [ f ] ->
          (* mux is satisfied for exactly half of the 8 assignments *)
          check_bool "sat count 4" true (Bdd.sat_count ~nvars:3 f = 4.0)
        | _ -> Alcotest.fail "one output expected");
    (* bounded model checking *)
    tc "bmc: count 7 unreachable within 5 cycles" (fun () ->
        (* the counter gains at most 1 per cycle, so count = 7 needs at
           least 7 cycles; within depth 5 the invariant holds *)
        match Bmc.check ~property:"prop" ~depth:5 (counter_netlist ~limit:7) with
        | Bmc.Holds -> ()
        | Bmc.Violated _ -> Alcotest.fail "unreachable this early");
    tc "bmc: violation found at the right depth" (fun () ->
        (* free-running: count=2 is first reached after 2 ticks; with the
           enable input the earliest violation is depth 2 *)
        match Bmc.check ~property:"prop" ~depth:4 (counter_netlist ~limit:2) with
        | Bmc.Holds -> Alcotest.fail "expected violation"
        | Bmc.Violated v ->
          check_int "earliest depth" 2 v.Bmc.depth);
    tc "bmc: invariant holds within depth" (fun () ->
        (* count cannot reach 5 in 3 steps from 0 *)
        match Bmc.check ~property:"prop" ~depth:3 (counter_netlist ~limit:5) with
        | Bmc.Holds -> ()
        | Bmc.Violated _ -> Alcotest.fail "unreachable this early");
    tc "bmc: reachable state count of a 3-bit counter" (fun () ->
        let count, truncated = Bmc.reachable_states (counter_netlist ~limit:7) in
        check_bool "not truncated" false truncated;
        check_int "8 states" 8 count);
    tc "bmc: sequential equivalence of two counter implementations"
      (fun () ->
        let a = counter_netlist ~limit:7 in
        let b =
          (* same circuit, rebuilt: independent graph, same behaviour *)
          counter_netlist ~limit:7
        in
        match Bmc.equiv_sequential ~depth:6 a b with
        | Bmc.Holds -> ()
        | Bmc.Violated _ -> Alcotest.fail "identical machines must agree");
    tc "bmc: sequential difference detected" (fun () ->
        let a = counter_netlist ~limit:7 in
        let b = counter_netlist ~limit:3 in
        match Bmc.equiv_sequential ~depth:6 a b with
        | Bmc.Holds -> Alcotest.fail "props differ"
        | Bmc.Violated v -> check_bool "depth sane" true (v.Bmc.depth <= 3));
  ]
