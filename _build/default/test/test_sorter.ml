(* Tests for the bitonic sorting network (pattern showcase, E15). *)

open Util
module Sorter = Hydra_circuits.Sorter.Make (Hydra_core.Bit)
module SorterD = Hydra_circuits.Sorter.Make (Hydra_core.Depth)
module D = Hydra_core.Depth

let sort_ints ~width ints =
  let words = List.map (Bitvec.of_int ~width) ints in
  List.map Bitvec.to_int (Sorter.sort words)

let gen_pow2_list =
  QCheck2.Gen.(
    oneofl [ 1; 2; 4; 8; 16 ] >>= fun n ->
    list_size (return n) (int_bound 255))

let suite =
  [
    tc "compare_exchange orders a pair" (fun () ->
        let wa = Bitvec.of_int ~width:4 9 and wb = Bitvec.of_int ~width:4 3 in
        let lo, hi = Sorter.compare_exchange ~descending:false (wa, wb) in
        check_int "lo" 3 (Bitvec.to_int lo);
        check_int "hi" 9 (Bitvec.to_int hi);
        let hi', lo' = Sorter.compare_exchange ~descending:true (wa, wb) in
        check_int "desc hi first" 9 (Bitvec.to_int hi');
        check_int "desc lo second" 3 (Bitvec.to_int lo'));
    tc "sort a known list" (fun () ->
        check_int_list "sorted" [ 1; 2; 3; 5; 7; 8; 9; 12 ]
          (sort_ints ~width:4 [ 7; 2; 9; 1; 12; 3; 8; 5 ]));
    tc "sort with duplicates" (fun () ->
        check_int_list "sorted" [ 3; 3; 5; 5 ] (sort_ints ~width:4 [ 5; 3; 5; 3 ]));
    tc "singleton and pair" (fun () ->
        check_int_list "one" [ 9 ] (sort_ints ~width:4 [ 9 ]);
        check_int_list "two" [ 1; 2 ] (sort_ints ~width:4 [ 2; 1 ]));
    qc ~count:100 "sorts like List.sort (power-of-two sizes)" gen_pow2_list
      (fun ints ->
        sort_ints ~width:8 ints = List.sort compare ints);
    qc "output is a permutation of the input" gen_pow2_list (fun ints ->
        List.sort compare (sort_ints ~width:8 ints) = List.sort compare ints);
    tc "minw/maxw" (fun () ->
        let words = List.map (Bitvec.of_int ~width:6) [ 17; 4; 23; 9 ] in
        check_int "min" 4 (Bitvec.to_int (Sorter.minw words));
        check_int "max" 23 (Bitvec.to_int (Sorter.maxw words)));
    tc "network depth grows as O(log^2 n)" (fun () ->
        let depth n =
          D.reset ();
          let words = List.init n (fun _ -> List.init 8 (fun _ -> D.input)) in
          let outs = SorterD.sort words in
          (D.report (List.concat outs)).D.critical_path
        in
        let d4 = depth 4 and d16 = depth 16 and d64 = depth 64 in
        check_bool "increasing" true (d4 < d16 && d16 < d64);
        (* log^2 growth: d64/d16 should be well under the 4x of linear *)
        check_bool "subquadratic growth" true (d64 * 10 < d16 * 4 * 10));
  ]
