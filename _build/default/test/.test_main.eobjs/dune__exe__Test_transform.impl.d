test/test_transform.ml: Alcotest Bitvec Hydra_circuits Hydra_core Hydra_engine Hydra_netlist List Printf Util
