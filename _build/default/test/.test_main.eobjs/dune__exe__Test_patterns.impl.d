test/test_patterns.ml: Alcotest List Patterns QCheck2 Util
