test/test_regs.ml: Alcotest Bitvec Hydra_circuits Hydra_core List Patterns Util
