test/test_arith.ml: Alcotest Bitvec Bool Hydra_circuits Hydra_core List Patterns QCheck2 Util
