test/test_parallel.ml: Alcotest Array Atomic Hydra_parallel Util
