test/test_uart.ml: Bitvec Fun Hydra_circuits Hydra_core List QCheck2 Util
