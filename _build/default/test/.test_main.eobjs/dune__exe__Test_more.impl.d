test/test_more.ml: Alcotest Array Bit Bitvec Filename Fun Hydra_circuits Hydra_core Hydra_engine Hydra_netlist Hydra_parallel Hydra_verify List Patterns Printf QCheck2 Sys Test_engine Util
