test/test_isa.ml: Alcotest Array Hashtbl Hydra_cpu List QCheck2 String Util
