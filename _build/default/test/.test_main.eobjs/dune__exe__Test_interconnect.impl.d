test/test_interconnect.ml: Alcotest Bitvec Fun Hydra_circuits Hydra_core List Printf QCheck2 Util
