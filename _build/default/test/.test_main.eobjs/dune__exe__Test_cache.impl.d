test/test_cache.ml: Array Bitvec Hydra_circuits Hydra_core List Patterns QCheck2 Util
