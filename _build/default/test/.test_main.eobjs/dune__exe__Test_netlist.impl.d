test/test_netlist.ml: Alcotest Array Filename Hydra_circuits Hydra_core Hydra_engine Hydra_netlist List Printf String Sys Util
