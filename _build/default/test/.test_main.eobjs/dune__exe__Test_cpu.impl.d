test/test_cpu.ml: Alcotest Array Bitvec Fun Hashtbl Hydra_core Hydra_cpu List Printf QCheck2 String Util
