test/test_bench_tools.ml: Alcotest Bitvec Hydra_circuits Hydra_core Hydra_cpu Hydra_engine Hydra_netlist Hydra_verify List Patterns Printf QCheck2 String Util
