test/test_gaps.ml: Alcotest Array Hashtbl Hydra_circuits Hydra_core Hydra_cpu Hydra_engine Hydra_netlist Hydra_verify List Printf String Util
