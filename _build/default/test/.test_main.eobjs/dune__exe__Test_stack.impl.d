test/test_stack.ml: Alcotest Array Hydra_cpu List QCheck2 Util
