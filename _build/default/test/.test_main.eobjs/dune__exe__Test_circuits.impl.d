test/test_circuits.ml: Alcotest Bitvec Fun Hydra_circuits Hydra_core List QCheck2 Util
