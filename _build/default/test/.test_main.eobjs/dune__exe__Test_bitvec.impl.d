test/test_bitvec.ml: Alcotest Bitvec QCheck2 Util
