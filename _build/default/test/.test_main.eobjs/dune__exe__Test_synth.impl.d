test/test_synth.ml: Alcotest Bitvec Hydra_circuits Hydra_core Hydra_engine Hydra_netlist List Patterns Printf QCheck2 String Test_engine Util
