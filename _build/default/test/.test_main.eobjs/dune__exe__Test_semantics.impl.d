test/test_semantics.ml: Alcotest Bit Hydra_core Hydra_netlist List Util
