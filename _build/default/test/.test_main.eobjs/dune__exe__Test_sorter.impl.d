test/test_sorter.ml: Bitvec Hydra_circuits Hydra_core List QCheck2 Util
