test/test_verify.ml: Alcotest Bit Hydra_circuits Hydra_core Hydra_netlist Hydra_verify List Patterns Printf QCheck2 Util
