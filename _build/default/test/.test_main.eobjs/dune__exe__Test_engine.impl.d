test/test_engine.ml: Alcotest Array Bitvec Hydra_core Hydra_engine Hydra_netlist Hydra_parallel Lazy List Printf QCheck2 String Util
