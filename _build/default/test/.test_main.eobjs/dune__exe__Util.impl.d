test/util.ml: Alcotest Hydra_core QCheck2 QCheck_alcotest
