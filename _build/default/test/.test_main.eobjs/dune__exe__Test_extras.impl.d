test/test_extras.ml: Alcotest Bitvec Fun Hashtbl Hydra_circuits Hydra_core Hydra_cpu Hydra_engine Hydra_netlist Hydra_verify List Patterns Printf QCheck2 Util
