(* Tests for the crossbar and arbiters. *)

open Util
module S = Hydra_core.Stream_sim
module IC = Hydra_circuits.Interconnect.Make (Hydra_core.Stream_sim)

(* evaluate a combinational circuit built over Stream_sim at cycle 0 with
   constant inputs *)
let const_word ~width v = List.map S.constant (Bitvec.of_int ~width v)

let suite =
  [
    qc ~count:60 "crossbar routes any selection"
      QCheck2.Gen.(
        pair
          (list_size (return 4) (int_bound 255))
          (list_size (return 4) (int_bound 3)))
      (fun (values, sels) ->
        S.reset ();
        let inputs = List.map (const_word ~width:8) values in
        let selects = List.map (const_word ~width:2) sels in
        let outs = IC.crossbar ~sel_bits:2 inputs selects in
        List.for_all2
          (fun out sel ->
            Bitvec.to_int (List.map (fun s -> S.at s 0) out)
            = List.nth values sel)
          outs sels);
    tc "crossbar validates arity" (fun () ->
        S.reset ();
        match IC.crossbar ~sel_bits:2 [ [ S.zero ] ] [ [ S.zero; S.zero ] ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    qc "priority arbiter grants first active" (gen_word 8) (fun reqs ->
        S.reset ();
        let granted = IC.priority_arbiter (List.map S.constant reqs) in
        let g = List.map (fun s -> S.at s 0) granted in
        match List.find_index Fun.id reqs with
        | None -> List.for_all not g
        | Some first ->
          List.mapi (fun i v -> (i, v)) g
          |> List.for_all (fun (i, v) -> v = (i = first)));
    tc "round robin: rotates among persistent requesters" (fun () ->
        S.reset ();
        (* requesters 1 and 3 always request (of 4) *)
        let reqs = [ S.zero; S.one; S.zero; S.one ] in
        let granted, any = IC.round_robin reqs in
        let rows = S.run ~cycles:6 (any :: granted) in
        List.iter
          (fun row -> check_bool "any" true (List.hd row))
          rows;
        let winner row =
          match List.find_index Fun.id (List.tl row) with
          | Some i -> i
          | None -> -1
        in
        let winners = List.map winner rows in
        (* alternates between 1 and 3 *)
        List.iteri
          (fun t w ->
            if t > 0 then
              check_bool
                (Printf.sprintf "alternates at %d" t)
                true
                (w <> List.nth winners (t - 1) && (w = 1 || w = 3)))
          winners);
    tc "round robin: exactly one grant when any request" (fun () ->
        S.reset ();
        let reqs =
          List.init 4 (fun i ->
              S.input (fun t -> (t + i) mod 3 <> 0))
        in
        let granted, any = IC.round_robin reqs in
        let rows = S.run ~cycles:12 (any :: granted) in
        List.iter
          (fun row ->
            let grants = List.length (List.filter Fun.id (List.tl row)) in
            if List.hd row then check_int "one grant" 1 grants
            else check_int "no grant" 0 grants)
          rows);
    tc "round robin: idle cycles grant nothing and hold the pointer"
      (fun () ->
        S.reset ();
        (* request pattern: burst, silence, burst *)
        let reqs =
          List.init 4 (fun i ->
              S.input (fun t -> (t < 2 || t > 4) && i = 2))
        in
        let granted, any = IC.round_robin reqs in
        let rows = S.run ~cycles:7 (any :: granted) in
        List.iteri
          (fun t row ->
            let expect_any = t < 2 || t > 4 in
            check_bool (Printf.sprintf "any@%d" t) expect_any (List.hd row))
          rows);
  ]
