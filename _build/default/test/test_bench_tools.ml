(* Tests for the simulation-driver toolkit: the test-bench DSL,
   checkpointing, sequential multiplier and square root, and a formal
   one-hot proof of the control circuit by reachability. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module S = Hydra_core.Stream_sim
module Compiled = Hydra_engine.Compiled
module Tb = Hydra_engine.Testbench
module Bmc = Hydra_verify.Bmc
module AS = Hydra_circuits.Arith_seq.Make (Hydra_core.Stream_sim)

let adder_netlist n =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let module A = Hydra_circuits.Arith.Make (G) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  N.of_graph
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let suite =
  [
    (* test bench DSL *)
    tc "testbench: word stimulus and expectations pass" (fun () ->
        let nl = adder_netlist 8 in
        let r =
          Tb.run ~cycles:3
            ~stimuli:
              [ Tb.Word_values ("x", 8, [ 1; 100; 255 ]);
                Tb.Word_values ("y", 8, [ 2; 55; 1 ]) ]
            ~expectations:
              [ Tb.Expect_word { cycle = 0; prefix = "s"; width = 8; value = 3 };
                Tb.Expect_word { cycle = 1; prefix = "s"; width = 8; value = 155 };
                Tb.Expect_word { cycle = 2; prefix = "s"; width = 8; value = 0 };
                Tb.Expect_bit { cycle = 2; port = "cout"; value = true } ]
            nl
        in
        check_bool "passed" true (Tb.passed r);
        check_bool "report" true (Tb.report_string r = "PASS (3 cycles)"));
    tc "testbench: mismatches are reported with details" (fun () ->
        let nl = adder_netlist 4 in
        let r =
          Tb.run ~cycles:1
            ~stimuli:
              [ Tb.Word_values ("x", 4, [ 1 ]); Tb.Word_values ("y", 4, [ 1 ]) ]
            ~expectations:
              [ Tb.Expect_word { cycle = 0; prefix = "s"; width = 4; value = 3 } ]
            nl
        in
        check_bool "failed" false (Tb.passed r);
        check_int "one failure" 1 (List.length r.Tb.failures);
        let f = List.hd r.Tb.failures in
        check_string "expected" "3" f.Tb.expected;
        check_string "got" "2" f.Tb.got;
        (* the report includes waveforms *)
        check_bool "waveforms in report" true
          (String.length (Tb.report_string r) > 40));
    tc "testbench: stimulus holds its last value" (fun () ->
        let nl = adder_netlist 4 in
        let r =
          Tb.run ~cycles:4
            ~stimuli:
              [ Tb.Word_values ("x", 4, [ 5 ]); Tb.Word_values ("y", 4, [ 1 ]) ]
            ~expectations:
              [ Tb.Expect_word { cycle = 3; prefix = "s"; width = 4; value = 6 } ]
            nl
        in
        check_bool "passed" true (Tb.passed r));
    tc "testbench: function stimulus and interp engine" (fun () ->
        let nl = adder_netlist 4 in
        let r =
          Tb.run ~engine:`Interp ~cycles:5
            ~stimuli:
              [ Tb.Word_fun ("x", 4, (fun t -> t)); Tb.Word_fun ("y", 4, (fun t -> t)) ]
            ~expectations:
              (List.init 5 (fun t ->
                   Tb.Expect_word { cycle = t; prefix = "s"; width = 4; value = 2 * t }))
            nl
        in
        check_bool "passed" true (Tb.passed r));
    (* checkpointing *)
    tc "checkpoint: save/restore replays identically" (fun () ->
        let x = G.input "x" in
        let module R = Hydra_circuits.Regs.Make (G) in
        let count = R.counter 4 x in
        let nl =
          N.of_graph
            ~outputs:(List.mapi (fun i b -> (Printf.sprintf "c%d" i, b)) count)
        in
        let sim = Compiled.create nl in
        Compiled.set_input sim "x" true;
        for _ = 1 to 5 do
          Compiled.step sim
        done;
        let snap = Compiled.save sim in
        Compiled.settle sim;
        let at5 = Compiled.outputs sim in
        for _ = 1 to 7 do
          Compiled.step sim
        done;
        Compiled.restore sim snap;
        Compiled.settle sim;
        check_bool "state restored" true (Compiled.outputs sim = at5);
        (* and the future replays the same *)
        Compiled.step sim;
        Compiled.settle sim;
        let a = Compiled.outputs sim in
        Compiled.restore sim snap;
        Compiled.step sim;
        Compiled.settle sim;
        check_bool "deterministic replay" true (Compiled.outputs sim = a));
    tc "checkpoint: wrong circuit rejected" (fun () ->
        let nl1 = adder_netlist 4 and nl2 = adder_netlist 8 in
        let s1 = Compiled.create nl1 and s2 = Compiled.create nl2 in
        let snap = Compiled.save s1 in
        match Compiled.restore s2 snap with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    (* sequential multiplier *)
    qc ~count:30 "sequential multiplier = integer multiplication (6 bits)"
      QCheck2.Gen.(pair (int_bound 63) (int_bound 63))
      (fun (x, y) ->
        S.reset ();
        let start = S.of_list [ true ] in
        let xs = List.map S.constant (Bitvec.of_int ~width:6 x) in
        let ys = List.map S.constant (Bitvec.of_int ~width:6 y) in
        let o = AS.multiply 6 start xs ys in
        let rows = S.run ~cycles:9 o.AS.product in
        Bitvec.to_int (List.nth rows 8) = x * y);
    tc "sequential multiplier busy profile" (fun () ->
        S.reset ();
        let start = S.of_list [ true ] in
        let xs = List.map S.constant (Bitvec.of_int ~width:4 9) in
        let ys = List.map S.constant (Bitvec.of_int ~width:4 7) in
        let o = AS.multiply 4 start xs ys in
        let rows = S.run ~cycles:8 (o.AS.mult_busy :: o.AS.product) in
        let busy = List.map List.hd rows in
        check_bool_list "busy"
          [ false; true; true; true; true; false; false; false ] busy;
        check_int "product" 63 (Bitvec.to_int (List.tl (List.nth rows 7))));
    (* sequential square root *)
    qc ~count:40 "sqrt: root^2 <= x < (root+1)^2 (8 bits)"
      (QCheck2.Gen.int_bound 255)
      (fun x ->
        S.reset ();
        let start = S.of_list [ true ] in
        let xs = List.map S.constant (Bitvec.of_int ~width:8 x) in
        let o = AS.sqrt 8 start xs in
        let rows = S.run ~cycles:7 (o.AS.root @ o.AS.sqrt_rem) in
        let final = List.nth rows 6 in
        let root, rem = Patterns.split_at 4 final in
        let r = Bitvec.to_int root and rm = Bitvec.to_int rem in
        (r * r) + rm = x && r * r <= x && (r + 1) * (r + 1) > x);
    tc "sqrt of perfect squares" (fun () ->
        List.iter
          (fun (x, expect) ->
            S.reset ();
            let start = S.of_list [ true ] in
            let xs = List.map S.constant (Bitvec.of_int ~width:8 x) in
            let o = AS.sqrt 8 start xs in
            let rows = S.run ~cycles:7 o.AS.root in
            check_int (Printf.sprintf "sqrt %d" x) expect
              (Bitvec.to_int (List.nth rows 6)))
          [ (0, 0); (1, 1); (4, 2); (9, 3); (16, 4); (100, 10); (225, 15) ]);
    (* formal: one-hot control invariant via reachability *)
    tc "control circuit: one-hot invariant proved by reachability" (fun () ->
        (* build the RISC control circuit with a 'onehot' output asserting
           exactly one state token is set, then explore every reachable
           state under all inputs *)
        let module CC = Hydra_cpu.Control_circuit.Make (G) in
        let module Gt = Hydra_circuits.Gates.Make (G) in
        (* the invariant requires the start protocol (one pulse): a free
           start input lets the checker inject a second token, which it
           duly found.  Model start as a power-up one-shot. *)
        let start = G.dff_init true G.zero in
        (* reduce input blowup: drive only 2 opcode bits, rest constant *)
        let ir_op = [ G.zero; G.zero; G.input "op2"; G.input "op3" ] in
        let cond = G.input "cond" in
        let outs =
          CC.synthesize Hydra_cpu.Control.algorithm ~start ~ir_op ~cond
        in
        let tokens = List.map snd outs.CC.states in
        (* exactly one of (at most one) ... before start, zero tokens are
           set; after start, exactly one.  Invariant: at most one token. *)
        let pairs =
          List.concat_map
            (fun (i, a) ->
              List.filter_map
                (fun (j, b) ->
                  if j > i then Some (G.and2 a b) else None)
                (List.mapi (fun j b -> (j, b)) tokens))
            (List.mapi (fun i a -> (i, a)) tokens)
        in
        let at_most_one = G.inv (Gt.orw pairs) in
        let nl = N.of_graph ~outputs:[ ("prop", at_most_one) ] in
        match Bmc.check ~max_states:2_000_000 ~property:"prop" ~depth:12 nl with
        | Bmc.Holds -> ()
        | Bmc.Violated v ->
          Alcotest.fail
            (Printf.sprintf "two tokens live at depth %d" v.Bmc.depth));
  ]
