(* Tests for the control algorithm, synthesized control circuit, datapath
   and the complete gate-level processor, co-simulated against the golden
   ISA model (experiment E8). *)

open Util
module Isa = Hydra_cpu.Isa
module Asm = Hydra_cpu.Asm
module Golden = Hydra_cpu.Golden
module Control = Hydra_cpu.Control
module Driver = Hydra_cpu.Driver
module S = Hydra_core.Stream_sim
module CC = Hydra_cpu.Control_circuit.Make (Hydra_core.Stream_sim)

(* run the control circuit alone with scripted ir_op/cond streams *)
let run_control ~cycles ~start ~ir_op ~cond =
  S.reset ();
  let start = S.of_list start in
  let cond = S.of_list cond in
  let ir_op_sig =
    List.init 4 (fun bit ->
        S.input (fun t ->
            let op = match List.nth_opt ir_op t with Some v -> v | None -> 0 in
            List.nth (Bitvec.of_int ~width:4 op) bit))
  in
  let outs = CC.synthesize Control.algorithm ~start ~ir_op:ir_op_sig ~cond in
  List.init cycles (fun t ->
      ignore (S.run_cycle [ outs.CC.halted ] t);
      match List.find_opt (fun (_, s) -> S.at s t) outs.CC.states with
      | Some (n, _) -> n
      | None -> "-")

(* golden-vs-circuit co-simulation on a program *)
let cosim ?(mem_bits = 6) src =
  let program = Asm.assemble src in
  let circuit = Driver.run_structural ~mem_bits ~collect_trace:false program in
  let g = Golden.create ~mem_words:(1 lsl mem_bits) () in
  Golden.load_program g program;
  let golden_events = Golden.run g in
  (circuit, g, golden_events)

let check_events (circuit : Driver.result) golden_events =
  let show = function
    | Golden.Reg_write { reg; value } -> Printf.sprintf "R%d:=%04x" reg value
    | Golden.Mem_write { addr; value } -> Printf.sprintf "M%04x:=%04x" addr value
    | Golden.Jump_taken { target } -> Printf.sprintf "J%04x" target
    | Golden.Halted -> "HALT"
  in
  Alcotest.(check (list string))
    "event streams agree"
    (List.map show golden_events)
    (List.map show circuit.Driver.events)

let suite =
  [
    tc "algorithm pretty-print mentions the paper's states" (fun () ->
        let s = Control.to_string Control.algorithm in
        List.iter
          (fun needle ->
            let nl = String.length needle in
            let rec go i =
              i + nl <= String.length s
              && (String.sub s i nl = needle || go (i + 1))
            in
            check_bool needle true (go 0))
          [ "st_instr_fet"; "st_load0"; "st_load1"; "st_load2";
            "ctl_ma_pc"; "ctl_alu_abcd=1100"; "ir := mem[pc], pc++" ]);
    tc "algorithm covers every opcode" (fun () ->
        List.iter
          (fun i ->
            let op = Isa.opcode_of_int i in
            check_bool
              (Printf.sprintf "opcode %d has a sequence" i)
              true
              (List.mem_assoc op Control.algorithm.Control.sequences))
          (List.init 16 Fun.id));
    (* control circuit: token movement (paper section 6.3) *)
    tc "control: one-hot token walks fetch->dispatch->add->fetch" (fun () ->
        let states =
          run_control ~cycles:7
            ~start:[ true; false; false; false; false; false; false ]
            ~ir_op:[ 0; 0; 0; 0; 0; 0; 0 ]
            ~cond:[ false; false; false; false; false; false; false ]
        in
        Alcotest.(check (list string))
          "walk"
          [ "-"; "st_instr_fet"; "st_dispatch"; "st_add"; "st_instr_fet";
            "st_dispatch"; "st_add" ]
          states);
    tc "control: load takes three execution states" (fun () ->
        let states =
          run_control ~cycles:6
            ~start:[ true ]
            ~ir_op:[ 0; 0; 1; 1; 1; 1 ]
            ~cond:[ false ]
        in
        Alcotest.(check (list string))
          "walk"
          [ "-"; "st_instr_fet"; "st_dispatch"; "st_load0"; "st_load1";
            "st_load2" ]
          states);
    tc "control: halt state self-loops" (fun () ->
        let states =
          run_control ~cycles:6
            ~start:[ true ]
            ~ir_op:[ 5; 5; 5; 5; 5; 5 ]
            ~cond:[ false ]
        in
        Alcotest.(check (list string))
          "walk"
          [ "-"; "st_instr_fet"; "st_dispatch"; "st_halt"; "st_halt"; "st_halt" ]
          states);
    tc "control: jumpf falls to jumpf1 only when cond=0" (fun () ->
        let walk cond_v =
          run_control ~cycles:5
            ~start:[ true ]
            ~ir_op:[ 10; 10; 10; 10; 10 ]
            ~cond:[ cond_v; cond_v; cond_v; cond_v; cond_v ]
        in
        Alcotest.(check (list string))
          "cond=0 takes jump"
          [ "-"; "st_instr_fet"; "st_dispatch"; "st_jumpf0"; "st_jumpf1" ]
          (walk false);
        Alcotest.(check (list string))
          "cond=1 skips"
          [ "-"; "st_instr_fet"; "st_dispatch"; "st_jumpf0"; "st_instr_fet" ]
          (walk true));
    tc "control: exactly one token at all times" (fun () ->
        S.reset ();
        let start = S.of_list [ true ] in
        let cond = S.of_list [ false; true; false; true ] in
        let ir_op =
          List.init 4 (fun bit ->
              S.input (fun t ->
                  List.nth (Bitvec.of_int ~width:4 (t mod 13)) bit))
        in
        let outs = CC.synthesize Control.algorithm ~start ~ir_op ~cond in
        for t = 1 to 30 do
          ignore (S.run_cycle [ outs.CC.halted ] t);
          let live =
            List.length
              (List.filter (fun (_, s) -> S.at s t) outs.CC.states)
          in
          check_int (Printf.sprintf "cycle %d" t) 1 live
        done);
    (* full system, golden co-simulation *)
    tc "cpu: ldval/add/halt" (fun () ->
        let circuit, g, events =
          cosim "ldval R1,5[R0]\nldval R2,7[R0]\nadd R3,R1,R2\nhalt\n"
        in
        check_events circuit events;
        check_bool "halted" true circuit.Driver.halted;
        check_int "r3 via events" 12 (Driver.final_registers circuit).(3);
        check_int "golden agrees" (Golden.reg g 3)
          (Driver.final_registers circuit).(3));
    tc "cpu: cycle count matches golden prediction" (fun () ->
        let circuit, g, _ =
          cosim "ldval R1,5[R0]\nadd R2,R1,R1\nhalt\n"
        in
        check_int "cycles" g.Golden.cycles circuit.Driver.cycles);
    tc "cpu: load and store roundtrip (paper's Load sequence)" (fun () ->
        let src =
          "load R1,x[R0]\ninc R2,R1\nstore R2,y[R0]\nhalt\nx: data 41\ny: data 0\n"
        in
        let circuit, _, events = cosim src in
        check_events circuit events;
        let program = Asm.assemble src in
        let mem = Driver.final_memory ~size:64 circuit ~program in
        let y = Hashtbl.find (Asm.labels_of src) "y" in
        check_int "mem[y]=42" 42 mem.(y));
    tc "cpu: indexed addressing uses reg[sa] + disp" (fun () ->
        let src =
          "ldval R1,1[R0]\nload R2,table[R1]\nhalt\n\
           table: data 10\ndata 20\ndata 30\n"
        in
        let circuit, g, events = cosim src in
        check_events circuit events;
        check_int "r2" 20 (Golden.reg g 2));
    tc "cpu: comparisons" (fun () ->
        let src =
          "ldval R1,-3[R0]\nldval R2,4[R0]\ncmplt R3,R1,R2\ncmpgt R4,R1,R2\n\
           cmpeq R5,R1,R1\nhalt\n"
        in
        let circuit, g, events = cosim src in
        check_events circuit events;
        check_int "lt" 1 (Golden.reg g 3);
        check_int "gt" 0 (Golden.reg g 4);
        check_int "eq" 1 (Golden.reg g 5));
    tc "cpu: loop sums 1..5 (jump/jumpt)" (fun () ->
        let src =
          "  ldval R1,0[R0]\n\
          \  ldval R2,5[R0]\n\
           loop: cmpeq R3,R2,R0\n\
          \  jumpt R3,done[R0]\n\
          \  add R1,R1,R2\n\
          \  ldval R4,1[R0]\n\
          \  sub R2,R2,R4\n\
          \  jump loop[R0]\n\
           done: halt\n"
        in
        let circuit, g, events = cosim src in
        check_events circuit events;
        check_int "sum 15" 15 (Golden.reg g 1);
        check_int "cycles match" g.Golden.cycles circuit.Driver.cycles);
    tc "cpu: jumpf both directions" (fun () ->
        let src =
          "jumpf R0,t[R0]\nldval R1,99[R0]\nt: ldval R2,1[R0]\n\
           jumpf R2,u[R0]\nldval R3,7[R0]\nu: halt\n"
        in
        let circuit, g, events = cosim src in
        check_events circuit events;
        check_int "r1 skipped" 0 (Golden.reg g 1);
        check_int "r3 executed" 7 (Golden.reg g 3));
    tc "cpu: behavioural memory agrees with structural" (fun () ->
        let src =
          "load R1,x[R0]\ninc R2,R1\nstore R2,x[R0]\nload R3,x[R0]\nhalt\n\
           x: data 5\n"
        in
        let program = Asm.assemble src in
        let a = Driver.run_structural ~mem_bits:6 ~collect_trace:false program in
        let b =
          Driver.run_behavioural ~mem_words:64 ~collect_trace:false program
        in
        check_bool "both halt" true (a.Driver.halted && b.Driver.halted);
        check_int "same cycles" a.Driver.cycles b.Driver.cycles;
        Alcotest.(check (list string))
          "same events"
          (List.map
             (function
               | Golden.Reg_write { reg; value } ->
                 Printf.sprintf "R%d:=%d" reg value
               | Golden.Mem_write { addr; value } ->
                 Printf.sprintf "M%d:=%d" addr value
               | Golden.Jump_taken { target } -> Printf.sprintf "J%d" target
               | Golden.Halted -> "H")
             a.Driver.events)
          (List.map
             (function
               | Golden.Reg_write { reg; value } ->
                 Printf.sprintf "R%d:=%d" reg value
               | Golden.Mem_write { addr; value } ->
                 Printf.sprintf "M%d:=%d" addr value
               | Golden.Jump_taken { target } -> Printf.sprintf "J%d" target
               | Golden.Halted -> "H")
             b.Driver.events));
    tc "cpu: trace formatting is printable" (fun () ->
        let circuit, _, _ = cosim "ldval R1,1[R0]\nhalt\n" in
        ignore circuit;
        let circuit2 =
          Driver.run_structural ~mem_bits:6
            (Asm.assemble "ldval R1,1[R0]\nhalt\n")
        in
        check_bool "has trace" true (List.length circuit2.Driver.trace > 0);
        List.iter
          (fun e -> check_bool "line" true (String.length (Driver.trace_fmt e) > 0))
          circuit2.Driver.trace);
    tc "cpu: logic instructions (and/or/xor) at gate level" (fun () ->
        let src =
          "ldval R1,0xcafe[R0]\nldval R2,0x0ff0[R0]\nand R3,R1,R2\n\
           or R4,R1,R2\nxor R5,R1,R2\nnop\nhalt\n"
        in
        let circuit, g, events = cosim src in
        check_events circuit events;
        check_int "and" (0xcafe land 0x0ff0) (Golden.reg g 3);
        check_int "or" (0xcafe lor 0x0ff0) (Golden.reg g 4);
        check_int "xor" (0xcafe lxor 0x0ff0) (Golden.reg g 5);
        check_int "cycles match" g.Golden.cycles circuit.Driver.cycles);
    tc "cpu: fibonacci via memory cells" (fun () ->
        (* fib(10) = 55, computed iteratively in registers *)
        let src =
          "  ldval R1,0[R0]       ; a = 0\n\
          \  ldval R2,1[R0]       ; b = 1\n\
          \  ldval R3,10[R0]      ; i = 10\n\
           loop: cmpeq R4,R3,R0\n\
          \  jumpt R4,done[R0]\n\
          \  add R5,R1,R2         ; t = a + b\n\
          \  add R1,R2,R0         ; a = b\n\
          \  add R2,R5,R0         ; b = t\n\
          \  ldval R6,1[R0]\n\
          \  sub R3,R3,R6\n\
          \  jump loop[R0]\n\
           done: halt\n"
        in
        let circuit, g, events = cosim src in
        check_events circuit events;
        check_int "fib(10)" 55 (Golden.reg g 1);
        check_int "cycles" g.Golden.cycles circuit.Driver.cycles);
    tc "cpu: memcpy loop with indexed load and store" (fun () ->
        let src =
          "  ldval R1,0[R0]       ; i = 0\n\
          \  ldval R2,3[R0]       ; n = 3\n\
           loop: cmpeq R3,R1,R2\n\
          \  jumpt R3,done[R0]\n\
          \  load R4,src[R1]\n\
          \  store R4,dst[R1]\n\
          \  inc R1,R1\n\
          \  jump loop[R0]\n\
           done: halt\n\
           src: data 11\n\
          \  data 22\n\
          \  data 33\n\
           dst: data 0\n\
          \  data 0\n\
          \  data 0\n"
        in
        let circuit, _, events = cosim src in
        check_events circuit events;
        let program = Asm.assemble src in
        let mem = Driver.final_memory ~size:64 circuit ~program in
        let dst = Hashtbl.find (Asm.labels_of src) "dst" in
        check_int_list "copied"
          [ 11; 22; 33 ]
          [ mem.(dst); mem.(dst + 1); mem.(dst + 2) ]);
    (* randomized co-simulation: straight-line programs *)
    qc ~count:25 "random straight-line programs match golden"
      QCheck2.Gen.(
        list_size (int_range 1 12)
          (oneof
             [
               map3 (fun d sa sb -> Isa.Rrr (Isa.Add, d, sa, sb))
                 (int_range 1 7) (int_range 0 7) (int_range 0 7);
               map3 (fun d sa sb -> Isa.Rrr (Isa.Sub, d, sa, sb))
                 (int_range 1 7) (int_range 0 7) (int_range 0 7);
               map3 (fun d sa sb -> Isa.Rrr (Isa.Cmplt, d, sa, sb))
                 (int_range 1 7) (int_range 0 7) (int_range 0 7);
               map2 (fun d sa -> Isa.Rrr (Isa.Inc, d, sa, 0))
                 (int_range 1 7) (int_range 0 7);
               map2 (fun d v -> Isa.Rx (Isa.Ldval, d, 0, v))
                 (int_range 1 7) (int_bound 500);
               map3 (fun d sa sb -> Isa.Rrr (Isa.Land, d, sa, sb))
                 (int_range 1 7) (int_range 0 7) (int_range 0 7);
               map3 (fun d sa sb -> Isa.Rrr (Isa.Lxor, d, sa, sb))
                 (int_range 1 7) (int_range 0 7) (int_range 0 7);
               map2 (fun d a -> Isa.Rx (Isa.Load, d, 0, 56 + a))
                 (int_range 1 7) (int_bound 7);
               map2 (fun d a -> Isa.Rx (Isa.Store, d, 0, 56 + a))
                 (int_range 1 7) (int_bound 7);
             ]))
      (fun instrs ->
        let program =
          Isa.encode_program (instrs @ [ Isa.Rrr (Isa.Halt, 0, 0, 0) ])
        in
        if List.length program > 56 then true
        else begin
          let circuit =
            Driver.run_structural ~mem_bits:6 ~collect_trace:false program
          in
          let g = Golden.create ~mem_words:64 () in
          Golden.load_program g program;
          let golden_events = Golden.run g in
          circuit.Driver.halted
          && circuit.Driver.events = golden_events
          && circuit.Driver.cycles = g.Golden.cycles
        end);
  ]
