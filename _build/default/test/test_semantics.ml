(* Tests for the four signal semantics: Bit, Stream_sim, Depth, Graph —
   including the paper's Figure 1 circuit and the reg1 feedback example. *)

open Util
module S = Hydra_core.Stream_sim
module D = Hydra_core.Depth
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist

(* The paper's Figure 1: out = and2 (inv a) b, written once as a functor
   and executed at several semantics. *)
module Fig1 (X : Hydra_core.Signal_intf.COMB) = struct
  let circuit a b = X.and2 (X.inv a) b
end

let suite =
  [
    (* Bit semantics *)
    tc "bit gates" (fun () ->
        check_bool "and" false (Bit.and2 true false);
        check_bool "or" true (Bit.or2 true false);
        check_bool "xor" true (Bit.xor2 true false);
        check_bool "inv" false (Bit.inv true);
        check_bool "const" true (Bit.constant true);
        check_bool "label transparent" true (Bit.label "x" true));
    tc "fig1 truth table (Bit)" (fun () ->
        let module F = Fig1 (Bit) in
        (* out = ~a & b *)
        check_bool "00" false (F.circuit false false);
        check_bool "01" true (F.circuit false true);
        check_bool "10" false (F.circuit true false);
        check_bool "11" false (F.circuit true true));
    tc "Bit.vectors order" (fun () ->
        check_rows "2-bit"
          [ [ false; false ]; [ false; true ]; [ true; false ]; [ true; true ] ]
          (Bit.vectors 2));
    tc "Bit.truth_table rows" (fun () ->
        let tt = Bit.truth_table ~inputs:1 (fun v -> [ Bit.inv (List.hd v) ]) in
        check_rows "outs" [ [ true ]; [ false ] ] (List.map snd tt));
    (* Stream simulation *)
    tc "stream: combinational mapping" (fun () ->
        let rows =
          S.simulate
            ~inputs:[ [ true; false; true ]; [ true; true; false ] ]
            (fun ins ->
              match ins with
              | [ a; b ] -> [ S.and2 a b; S.xor2 a b ]
              | _ -> assert false)
        in
        check_rows "and,xor"
          [ [ true; false ]; [ false; true ]; [ false; true ] ]
          rows);
    tc "stream: dff delays one cycle with power-up 0" (fun () ->
        let rows =
          S.simulate
            ~inputs:[ [ true; true; false; true ] ]
            (fun ins -> [ S.dff (List.hd ins) ])
        in
        check_rows "delayed" [ [ false ]; [ true ]; [ true ]; [ false ] ] rows);
    tc "stream: dff_init powers up 1" (fun () ->
        let rows =
          S.simulate ~inputs:[ [ false; false ] ] (fun ins ->
              [ S.dff_init true (List.hd ins) ])
        in
        check_rows "init" [ [ true ]; [ false ] ] rows);
    tc "stream: feedback reg1-style loop is well founded" (fun () ->
        (* s = dff (mux ld s x): the paper's reg1, inlined *)
        let rows =
          S.simulate
            ~inputs:
              [ [ true; false; false; true; false ];
                [ true; true; false; false; false ] ]
            (fun ins ->
              match ins with
              | [ ld; x ] ->
                [ S.feedback (fun s ->
                      S.dff
                        (S.or2 (S.and2 (S.inv ld) s) (S.and2 ld x))) ]
              | _ -> assert false)
        in
        (* cycle0: out 0 (power-up). ld=1,x=1 -> state 1.
           cycle1: out 1. ld=0 -> hold. cycle2: out 1. hold.
           cycle3: out 1. ld=1,x=0 -> 0. cycle4: out 0. *)
        check_rows "reg trace"
          [ [ false ]; [ true ]; [ true ]; [ true ]; [ false ] ]
          rows);
    tc "stream: combinational cycle raises" (fun () ->
        S.reset ();
        let loop = S.feedback (fun s -> S.and2 s S.one) in
        match S.at loop 0 with
        | _ -> Alcotest.fail "expected Combinational_cycle"
        | exception S.Combinational_cycle _ -> ());
    tc "stream: feedback_list two coupled registers" (fun () ->
        (* swap circuit: (a', b') = (dff b, dff a), a starts 0, b via init 1 *)
        S.reset ();
        let outs =
          S.feedback_list 2 (fun s ->
              match s with
              | [ a; b ] -> [ S.dff_init true b; S.dff a ]
              | _ -> assert false)
        in
        let rows = S.run ~cycles:4 outs in
        check_rows "swap"
          [ [ true; false ]; [ false; true ]; [ true; false ]; [ false; true ] ]
          rows);
    tc "stream: demand-driven access out of order" (fun () ->
        S.reset ();
        let x = S.of_list [ true; false; true; false; true ] in
        let d = S.dff x in
        check_bool "at 3" true (S.at d 3);
        check_bool "at 1" true (S.at d 1);
        check_bool "at 0" false (S.at d 0);
        check_bool "at 4" false (S.at d 4));
    tc "stream: of_list pads with default" (fun () ->
        S.reset ();
        let x = S.of_list ~default:true [ false ] in
        check_bool "c0" false (S.at x 0);
        check_bool "c5" true (S.at x 5));
    tc "stream: label names a signal" (fun () ->
        S.reset ();
        let s = S.label "mysig" (S.and2 S.one S.one) in
        check_bool "works" true (S.at s 0));
    (* Depth semantics *)
    tc "depth: gates add one" (fun () ->
        D.reset ();
        let out = D.and2 (D.inv D.input) D.input in
        check_int "fig1 depth" 2 out;
        let r = D.report [ out ] in
        check_int "critical" 2 r.D.critical_path;
        check_int "gates" 2 r.D.gates);
    tc "depth: constants and labels are free" (fun () ->
        D.reset ();
        check_int "const" 0 D.zero;
        check_int "label" 5 (D.label "x" 5));
    tc "depth: dff input depth dominates critical path" (fun () ->
        D.reset ();
        let deep = D.and2 (D.and2 D.input D.input) D.input in
        let q = D.dff deep in
        let r = D.report [ q ] in
        check_int "out depth 0" 0 q;
        check_int "critical includes dff input" 2 r.D.critical_path;
        check_int "dff count" 1 r.D.dff_count);
    tc "depth: analyze helper" (fun () ->
        let r =
          D.analyze ~inputs:2 (fun ins ->
              match ins with
              | [ a; b ] -> [ D.and2 (D.inv a) b ]
              | _ -> assert false)
        in
        check_int "critical" 2 r.D.critical_path);
    (* Graph semantics *)
    tc "graph: fig1 structure" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let module F = Fig1 (G) in
        let out = F.circuit a b in
        match (G.resolve out).G.def with
        | G.And2 (l, r) ->
          (match ((G.resolve l).G.def, (G.resolve r).G.def) with
           | G.Inv i, G.Input nb ->
             check_string "b" "b" nb;
             (match (G.resolve i).G.def with
              | G.Input na -> check_string "a" "a" na
              | _ -> Alcotest.fail "inv child not input")
           | _ -> Alcotest.fail "unexpected children")
        | _ -> Alcotest.fail "root not and2");
    tc "graph: sharing is preserved" (fun () ->
        let a = G.input "a" in
        let shared = G.inv a in
        let out = G.and2 shared shared in
        match G.children out with
        | [ l; r ] -> check_bool "same node" true (G.id l = G.id r)
        | _ -> Alcotest.fail "arity");
    tc "graph: feedback creates cycle, resolve terminates" (fun () ->
        let out = G.feedback (fun s -> G.dff (G.inv s)) in
        (* out = dff node; its child is the inv; the inv's child is out *)
        match G.children out with
        | [ invn ] -> (
            match G.children invn with
            | [ back ] -> check_bool "cycle closed" true (G.id back = G.id out)
            | _ -> Alcotest.fail "inv arity")
        | _ -> Alcotest.fail "dff arity");
    tc "graph: label recorded" (fun () ->
        let s = G.label "wire7" (G.inv (G.input "a")) in
        check_bool "named" true (G.name s = Some "wire7"));
    tc "graph: unresolved feedback fails cleanly" (fun () ->
        Alcotest.check_raises "unresolved"
          (Failure "Graph.resolve: unresolved feedback loop") (fun () ->
            ignore (G.feedback (fun s -> ignore (G.resolve s); s))));
  ]
