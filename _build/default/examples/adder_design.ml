(* Adder design study: from the paper's ripple-carry pattern to the
   logarithmic carry-lookahead adders of O'Donnell & Ruenger [23].

   Shows the intended Hydra workflow: write the circuit once, then
   - prove design variants equivalent (BDD semantics),
   - compare their timing (Depth semantics),
   - inspect their structure (netlist statistics),
   - and simulate the favourite (compiled engine).

   Run with: dune exec examples/adder_design.exe *)

module P = Hydra_core.Patterns
module D = Hydra_core.Depth
module G = Hydra_core.Graph
module Bitvec = Hydra_core.Bitvec
module N = Hydra_netlist.Netlist
module L = Hydra_netlist.Levelize
module Equiv = Hydra_verify.Equiv
module Compiled = Hydra_engine.Compiled

type variant = Ripple | Cla of P.prefix_network

let variant_name = function
  | Ripple -> "ripple"
  | Cla net -> "cla/" ^ P.prefix_network_name net

let all_variants = Ripple :: List.map (fun n -> Cla n) P.all_prefix_networks

(* the generic circuit: 2n inputs (xs then ys), n+1 outputs (cout :: sums) *)
let adder ~n variant =
  {
    Equiv.apply =
      (fun (type a) (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
        let module A = Hydra_circuits.Arith.Make (C) in
        let xs, ys = P.split_at n v in
        let cout, sums =
          match variant with
          | Ripple -> A.ripple_add C.zero (List.combine xs ys)
          | Cla net -> A.cla_add ~network:net C.zero (List.combine xs ys)
        in
        cout :: sums);
  }

let netlist_of ~n variant =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let outs = (adder ~n variant).Equiv.apply (module G) (xs @ ys) in
  N.of_graph
    ~outputs:(List.mapi (fun i o -> (Printf.sprintf "o%d" i, o)) outs)

let () =
  let n = 16 in
  Printf.printf "Adder design study at width %d\n\n" n;

  print_endline "1. Equivalence: every variant implements addition";
  List.iter
    (fun v ->
      let r = Equiv.bdd_equiv ~inputs:(2 * n) (adder ~n Ripple) (adder ~n v) in
      Printf.printf "   ripple = %-14s : %s\n" (variant_name v)
        (if Equiv.is_equivalent r then "proved (BDD)" else "COUNTEREXAMPLE"))
    all_variants;

  print_endline "\n2. Timing and size (Depth semantics)";
  Printf.printf "   %-14s %-8s %-8s\n" "variant" "depth" "gates";
  List.iter
    (fun v ->
      let module A = Hydra_circuits.Arith.Make (D) in
      D.reset ();
      let outs =
        (adder ~n v).Equiv.apply
          (module D)
          (List.init (2 * n) (fun _ -> D.input))
      in
      let r = D.report outs in
      Printf.printf "   %-14s %-8d %-8d\n" (variant_name v) r.D.critical_path
        r.D.gates)
    all_variants;

  print_endline "\n3. Netlist cross-check (levelized critical path)";
  List.iter
    (fun v ->
      let nl = netlist_of ~n v in
      Printf.printf "   %-14s levelized depth %d, %s\n" (variant_name v)
        (L.critical_path nl)
        (Hydra_netlist.Formats.stats_string nl))
    all_variants;

  print_endline "\n4. Simulate the winner on a few vectors (compiled engine)";
  let nl = netlist_of ~n (Cla P.Kogge_stone) in
  let sim = Compiled.create nl in
  List.iter
    (fun (x, y) ->
      List.iteri
        (fun i b -> Compiled.set_input sim (Printf.sprintf "x%d" i) b)
        (Bitvec.of_int ~width:n x);
      List.iteri
        (fun i b -> Compiled.set_input sim (Printf.sprintf "y%d" i) b)
        (Bitvec.of_int ~width:n y);
      Compiled.settle sim;
      let out_bits =
        List.init (n + 1) (fun i -> Compiled.output sim (Printf.sprintf "o%d" i))
      in
      Printf.printf "   %5d + %5d = %6d\n" x y (Bitvec.to_int out_bits))
    [ (1, 2); (1000, 2000); (65535, 1); (12345, 54321) ]
