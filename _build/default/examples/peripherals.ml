(* Peripherals and waveforms: a UART loopback and a sequential divider,
   with their signals rendered as ASCII waveforms — the "simulation driver
   formats the outputs for people" idea of paper section 6.4 applied to
   small devices.

   Run with: dune exec examples/peripherals.exe *)

module S = Hydra_core.Stream_sim
module Bitvec = Hydra_core.Bitvec
module Wave = Hydra_engine.Wave
module U = Hydra_circuits.Uart.Make (Hydra_core.Stream_sim)
module Div = Hydra_circuits.Divider.Make (Hydra_core.Stream_sim)
module SE = Hydra_circuits.Seq_extras.Make (Hydra_core.Stream_sim)

let () =
  print_endline "=== UART loopback: byte 0x4d at divisor 2 ===";
  S.reset ();
  let byte = 0x4d in
  let send = S.of_list [ true ] in
  let data = List.map S.constant (Bitvec.of_int ~width:8 byte) in
  let t = U.tx ~divisor:2 send data in
  let r = U.rx ~divisor:2 t.U.line in
  let cycles = 30 in
  let rows =
    S.run ~cycles (t.U.line :: t.U.tx_busy :: r.U.valid :: r.U.data)
  in
  let col i = List.map (fun row -> List.nth row i) rows in
  let received =
    List.filter_map
      (fun row ->
        if List.nth row 2 then
          Some (Bitvec.to_int (List.filteri (fun i _ -> i >= 3) row))
        else None)
      rows
  in
  print_string
    (Wave.render
       [
         Wave.bit "tx line" (col 0);
         Wave.bit "tx busy" (col 1);
         Wave.bit "rx valid" (col 2);
       ]);
  Printf.printf "sent 0x%02x, received %s\n\n" byte
    (String.concat ","
       (List.map (Printf.sprintf "0x%02x") received));

  print_endline "=== Sequential divider: 87 / 9 over 8 bits ===";
  S.reset ();
  let start = S.of_list [ true ] in
  let dividend = List.map S.constant (Bitvec.of_int ~width:8 87) in
  let divisor = List.map S.constant (Bitvec.of_int ~width:8 9) in
  let d = Div.divide 8 start dividend divisor in
  let cycles = 12 in
  let rows = S.run ~cycles ((d.Div.busy :: d.Div.quotient) @ d.Div.remainder) in
  let busy = List.map List.hd rows in
  let quo =
    List.map
      (fun row ->
        Bitvec.to_int (List.filteri (fun i _ -> i >= 1 && i < 9) row))
      rows
  in
  let rem =
    List.map
      (fun row -> Bitvec.to_int (List.filteri (fun i _ -> i >= 9) row))
      rows
  in
  print_string
    (Wave.render
       [
         Wave.bit "busy" busy;
         Wave.bus ~hex_digits:2 "quotient" quo;
         Wave.bus ~hex_digits:2 "remainder" rem;
       ]);
  Printf.printf "final: 87 / 9 = %d remainder %d (expected %d r %d)\n\n"
    (List.nth quo (cycles - 1))
    (List.nth rem (cycles - 1))
    (87 / 9) (87 mod 9);

  print_endline "=== LFSR and Gray counter side by side ===";
  S.reset ();
  let lfsr = SE.lfsr ~taps:[ 0; 3 ] 4 S.one in
  let gray = SE.gray_counter 4 S.one in
  let cycles = 18 in
  let rows = S.run ~cycles (lfsr @ gray) in
  let lf = List.map (fun r -> Bitvec.to_int (fst (Hydra_core.Patterns.split_at 4 r))) rows in
  let gr = List.map (fun r -> Bitvec.to_int (snd (Hydra_core.Patterns.split_at 4 r))) rows in
  print_string
    (Wave.render
       [ Wave.bus ~hex_digits:1 "lfsr" lf; Wave.bus ~hex_digits:1 "gray" gr ]);
  print_endline
    "(lfsr: period-15 pseudorandom; gray: one bit flips per step)"
