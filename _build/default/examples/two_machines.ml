(* Two complete computers, one methodology.

   The paper closes: "several complex circuits, including complete
   computer systems, have been designed successfully using Hydra."  This
   example runs the same computation — sum of the integers 1..n — on both
   machines in this repository:

   - the section-6 RISC (register machine, two-word RX instructions),
   - the stack machine (one-word instructions, expression stack),

   both gate-level, both DMA-loaded, both with control circuits compiled
   by the same delay-element synthesizer, and both checked against their
   golden models, cycle for cycle.

   Run with: dune exec examples/two_machines.exe *)

module Asm = Hydra_cpu.Asm
module Golden = Hydra_cpu.Golden
module Driver = Hydra_cpu.Driver
module SM = Hydra_cpu.Stack_machine

let n = 10

let risc_src =
  Printf.sprintf
    "; sum 1..n on the RISC\n\
    \  ldval R1,0[R0]\n\
    \  ldval R2,%d[R0]\n\
     loop: cmpeq R3,R2,R0\n\
    \  jumpt R3,done[R0]\n\
    \  add R1,R1,R2\n\
    \  ldval R4,1[R0]\n\
    \  sub R2,R2,R4\n\
    \  jump loop[R0]\n\
     done: store R1,result[R0]\n\
    \  halt\n\
     result: data 0\n"
    n

let stack_prog =
  [
    SM.Spush 0; SM.Spush 60; SM.Sstore;      (* mem[60] := 0 (total) *)
    SM.Spush n;                              (* i *)
    (* loop at pc 4 *)
    SM.Sdup; SM.Sjz 15;
    SM.Sdup; SM.Spush 60; SM.Sload; SM.Sadd; SM.Spush 60; SM.Sstore;
    SM.Spush 1; SM.Ssub;
    SM.Sjump 4;
    SM.Shalt;
  ]

let () =
  Printf.printf "Computing sum(1..%d) = %d on two gate-level machines\n\n" n
    (n * (n + 1) / 2);

  print_endline "=== Machine 1: the section-6 RISC ===";
  let program = Asm.assemble risc_src in
  let res = Driver.run_structural ~mem_bits:6 ~collect_trace:false program in
  let g = Golden.create ~mem_words:64 () in
  Golden.load_program g program;
  let golden_events = Golden.run g in
  let result_addr = Hashtbl.find (Asm.labels_of risc_src) "result" in
  let mem = Driver.final_memory ~size:64 res ~program in
  Printf.printf "  %d instructions, result mem[%d] = %d\n"
    g.Golden.instructions result_addr mem.(result_addr);
  Printf.printf "  cycles: circuit %d, golden %d; events identical: %b\n\n"
    res.Driver.cycles g.Golden.cycles
    (res.Driver.events = golden_events);

  print_endline "=== Machine 2: the stack machine ===";
  let sres = SM.Driver.run ~mem_bits:6 stack_prog in
  let sg = SM.Golden.create ~mem_words:64 () in
  SM.Golden.load_program sg (SM.encode_program stack_prog);
  SM.Golden.run sg;
  Printf.printf "  %d instructions, result mem[60] = %d\n"
    (List.length stack_prog) sg.SM.Golden.mem.(60);
  Printf.printf "  cycles: circuit %d, golden %d\n\n" sres.SM.Driver.cycles
    sg.SM.Golden.cycles;

  print_endline "=== Comparison ===";
  Printf.printf "  %-22s %-10s %-10s\n" "machine" "cycles" "result";
  Printf.printf "  %-22s %-10d %-10d\n" "RISC (register)" res.Driver.cycles
    mem.(result_addr);
  Printf.printf "  %-22s %-10d %-10d\n" "stack machine"
    sres.SM.Driver.cycles sg.SM.Golden.mem.(60);
  print_endline
    "\n(the stack machine pays for operand shuffling through memory; the\n\
     RISC pays two words per RX instruction — architecture tradeoffs made\n\
     measurable by simulating both as circuits)"
