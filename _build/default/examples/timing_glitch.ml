(* Beneath the synchronous model: gate delays, settling and glitches
   (paper section 3).

   The synchronous model guarantees that every signal is valid once the
   critical-path delay has elapsed after a clock tick.  This example uses
   the event-driven engine to watch what happens *during* a cycle: the
   carry rippling down a 12-bit adder, a static-hazard circuit glitching,
   and the settle-time difference between a linear and a logarithmic
   adder — the physical facts the model abstracts away, and the reason it
   bans logic on clock signals.

   Run with: dune exec examples/timing_glitch.exe *)

module G = Hydra_core.Graph
module Bitvec = Hydra_core.Bitvec
module N = Hydra_netlist.Netlist
module L = Hydra_netlist.Levelize
module Event = Hydra_engine.Event
module P = Hydra_core.Patterns

let adder_netlist ~variant n =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let module A = Hydra_circuits.Arith.Make (G) in
  let cout, sums =
    match variant with
    | `Ripple -> A.ripple_add G.zero (List.combine xs ys)
    | `Cla -> A.cla_add ~network:P.Sklansky G.zero (List.combine xs ys)
  in
  N.of_graph
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let set_word sim prefix ~width v =
  List.iteri
    (fun i b -> Event.set_input sim (Printf.sprintf "%s%d" prefix i) b)
    (Bitvec.of_int ~width v)

let () =
  let n = 12 in
  print_endline "=== 1. Worst-case carry propagation in a ripple adder ===";
  let nl = adder_netlist ~variant:`Ripple n in
  Printf.printf "critical path (levelized): %d gate delays\n"
    (L.critical_path nl);
  let sim = Event.create nl in
  set_word sim "x" ~width:n 0;
  set_word sim "y" ~width:n 0;
  ignore (Event.step sim);
  (* 0xfff + 1: the carry must ripple through every bit position *)
  set_word sim "x" ~width:n ((1 lsl n) - 1);
  set_word sim "y" ~width:n 1;
  let r = Event.step sim in
  Printf.printf
    "adding 0x%x + 1: settled at t=%d, %d transitions, %d glitches\n"
    ((1 lsl n) - 1)
    r.Event.settle_time r.Event.transitions r.Event.glitches;

  print_endline "\n=== 2. The same sum in a logarithmic adder ===";
  let nlc = adder_netlist ~variant:`Cla n in
  Printf.printf "critical path (levelized): %d gate delays\n"
    (L.critical_path nlc);
  let simc = Event.create nlc in
  set_word simc "x" ~width:n 0;
  set_word simc "y" ~width:n 0;
  ignore (Event.step simc);
  set_word simc "x" ~width:n ((1 lsl n) - 1);
  set_word simc "y" ~width:n 1;
  let rc = Event.step simc in
  Printf.printf "settled at t=%d — a faster clock is safe for this circuit\n"
    rc.Event.settle_time;

  print_endline "\n=== 3. A static hazard: why logic on clocks is banned ===";
  (* y = a AND (slow copy of NOT a): combinationally y = 0 always, but
     after a 0->1 edge on a, y pulses high until the inverter chain
     catches up.  Feeding such a signal to a clock input would produce a
     spurious clock edge — the paper's argument for the true conditional
     load register (reg1) instead of gated clocks. *)
  let a = G.input "a" in
  let slow_not_a = G.inv (G.inv (G.inv a)) in
  let hazard = N.of_graph ~outputs:[ ("y", G.and2 a slow_not_a) ] in
  let hs = Event.create hazard in
  Event.set_input hs "a" false;
  ignore (Event.step hs);
  Event.set_input hs "a" true;
  let hr = Event.step hs in
  Printf.printf
    "after a rises: y ends %b but made %d transitions (%d glitch pulses)\n"
    (Event.output hs "y") hr.Event.transitions hr.Event.glitches;
  print_endline
    "the synchronous model never sees the pulse: it samples after settling;";
  print_endline
    "a clock input would see it — hence reg1's mux, not an and-gated clock."
