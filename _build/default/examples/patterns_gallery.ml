(* A gallery of design patterns (paper section 5): the same few combinators
   generate linear, tree, butterfly and grid circuits.  Each pattern is
   shown twice — once computing ordinary data (patterns are plain
   polymorphic functions) and once generating hardware whose shape we
   inspect with the Depth semantics.

   Run with: dune exec examples/patterns_gallery.exe *)

module P = Hydra_core.Patterns
module D = Hydra_core.Depth
module Bit = Hydra_core.Bit
module Bitvec = Hydra_core.Bitvec

let ints = List.init 8 (fun i -> i + 1)

let show name xs =
  Printf.printf "  %-24s [%s]\n" name
    (String.concat "; " (List.map string_of_int xs))

let depth_of_scan name scan =
  (* depth of an 16-input OR-scan built with this network *)
  D.reset ();
  let outs = scan D.or2 (List.init 16 (fun _ -> D.input)) in
  let r = D.report outs in
  Printf.printf "  %-24s depth %2d, %3d gates (16-input or-scan)\n" name
    r.D.critical_path r.D.gates

let () =
  print_endline "=== Linear patterns on data ===";
  show "input" ints;
  let cout, outs = P.mscanr (fun x c -> (x + c, c)) 0 ints in
  show (Printf.sprintf "mscanr(+) carries (cout=%d)" cout) outs;
  show "ascanl (+) inclusive" (P.ascanl ( + ) 0 ints);
  show "ascanr (+) inclusive" (P.ascanr ( + ) 0 ints);
  show "riffle" (P.riffle ints);
  show "unriffle" (P.unriffle ints);

  print_endline "\n=== The same scan, four hardware shapes ===";
  depth_of_scan "serial" P.scan_serial;
  depth_of_scan "sklansky" P.scan_sklansky;
  depth_of_scan "brent-kung" P.scan_brent_kung;
  depth_of_scan "kogge-stone" P.scan_kogge_stone;

  print_endline "\n=== Tree fold ===";
  Printf.printf "  tree_fold (+) 1..8 = %d\n" (P.tree_fold ( + ) ints);
  D.reset ();
  let r = D.report [ P.tree_fold D.or2 (List.init 64 (fun _ -> D.input)) ] in
  Printf.printf "  64-input or tree: depth %d (log2 64 = 6), %d gates\n"
    r.D.critical_path r.D.gates;

  print_endline "\n=== Butterfly ===";
  show "butterfly swap"
    (P.butterfly (fun (a, b) -> (b, a)) [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  (* the butterfly with compare-exchange cells is a bitonic merger;
     applied recursively it sorts (see the sorter library) *)
  let module Sorter = Hydra_circuits.Sorter.Make (Bit) in
  let data = [ 9; 1; 14; 4; 11; 6; 2; 8 ] in
  let sorted =
    List.map Bitvec.to_int
      (Sorter.sort (List.map (Bitvec.of_int ~width:4) data))
  in
  show "bitonic sort input" data;
  show "bitonic sort output" sorted;

  print_endline "\n=== Mesh (grid) pattern: matrix of accumulating cells ===";
  (* horizontal h accumulates products of vertical v: a systolic row of
     multiply-accumulate cells computing dot products *)
  let cell h v = (h + v, v + 1) in
  let hs, vs = P.mesh cell [ 0; 100 ] [ 1; 2; 3; 4 ] in
  show "row sums (right edge)" hs;
  show "aged columns (bottom)" vs;

  print_endline "\n=== Patterns are user-definable ===";
  (* define a new pattern on the spot: pairwise pipeline stages *)
  let rec alternate f g = function
    | [] -> []
    | [ x ] -> [ f x ]
    | x :: y :: rest -> f x :: g y :: alternate f g rest
  in
  show "alternate (+10) (+20)" (alternate (( + ) 10) (( + ) 20) ints)
