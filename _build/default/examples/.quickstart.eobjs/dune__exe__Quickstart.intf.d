examples/quickstart.mli:
