examples/adder_design.mli:
