examples/timing_glitch.ml: Hydra_circuits Hydra_core Hydra_engine Hydra_netlist List Printf
