examples/timing_glitch.mli:
