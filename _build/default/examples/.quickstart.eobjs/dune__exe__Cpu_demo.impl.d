examples/cpu_demo.ml: Array Hashtbl Hydra_cpu List Printf String
