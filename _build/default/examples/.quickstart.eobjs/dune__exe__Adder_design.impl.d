examples/adder_design.ml: Hydra_circuits Hydra_core Hydra_engine Hydra_netlist Hydra_verify List Printf
