examples/peripherals.ml: Hydra_circuits Hydra_core Hydra_engine List Printf String
