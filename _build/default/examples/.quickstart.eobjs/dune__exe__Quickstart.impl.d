examples/quickstart.ml: Bool Hydra_core Hydra_netlist List Printf
