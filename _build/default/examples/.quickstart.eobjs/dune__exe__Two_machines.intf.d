examples/two_machines.mli:
