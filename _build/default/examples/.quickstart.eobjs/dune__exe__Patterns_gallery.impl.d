examples/patterns_gallery.ml: Hydra_circuits Hydra_core List Printf String
