examples/two_machines.ml: Array Hashtbl Hydra_cpu List Printf
