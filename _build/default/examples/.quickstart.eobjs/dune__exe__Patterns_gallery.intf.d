examples/patterns_gallery.mli:
