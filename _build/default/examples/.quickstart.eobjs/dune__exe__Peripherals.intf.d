examples/peripherals.mli:
