(* Quickstart: one circuit, four semantics.

   Defines the paper's Figure 1 and Figure 2 circuits once, as functors
   over the signal interface, then executes them at each semantics:
   truth table (Bit), waveform (Stream_sim), timing report (Depth) and
   netlist (Graph -> Netlist).

   Run with: dune exec examples/quickstart.exe *)

module Signal_intf = Hydra_core.Signal_intf
module Bit = Hydra_core.Bit
module Stream = Hydra_core.Stream_sim
module Depth = Hydra_core.Depth
module Graph = Hydra_core.Graph
module Netlist = Hydra_netlist.Netlist
module Formats = Hydra_netlist.Formats

(* The circuit is written ONCE, generically.  [mux1] is paper Figure 2;
   [fig1] is paper Figure 1. *)
module Circuits (S : Signal_intf.COMB) = struct
  let fig1 a b = S.and2 (S.inv a) b
  let mux1 c x y = S.or2 (S.and2 (S.inv c) x) (S.and2 c y)
end

(* And a clocked circuit: the 1-bit register of section 4.1. *)
module Clocked_circuits (S : Signal_intf.CLOCKED) = struct
  module C = Circuits (S)

  let reg1 ld x = S.feedback (fun s -> S.dff (C.mux1 ld s x))
end

let () =
  print_endline "=== 1. Simulate on booleans (truth table) ===";
  let module C = Circuits (Bit) in
  print_endline "  c x y | mux1 c x y";
  List.iter
    (fun v ->
      match v with
      | [ c; x; y ] ->
        Printf.printf "  %d %d %d | %d\n" (Bool.to_int c) (Bool.to_int x)
          (Bool.to_int y)
          (Bool.to_int (C.mux1 c x y))
      | _ -> assert false)
    (Bit.vectors 3);

  print_endline "\n=== 2. Simulate streams (clocked register) ===";
  let module CC = Clocked_circuits (Stream) in
  let ld = [ true; false; false; true; false ] in
  let x = [ true; true; false; false; false ] in
  let rows =
    Stream.simulate ~inputs:[ ld; x ] (fun ins ->
        match ins with [ l; v ] -> [ CC.reg1 l v ] | _ -> assert false)
  in
  print_endline "  cycle ld x | reg1";
  List.iteri
    (fun i r ->
      Printf.printf "  %5d  %d %d | %d\n" i
        (Bool.to_int (List.nth ld i))
        (Bool.to_int (List.nth x i))
        (Bool.to_int (List.hd r)))
    rows;

  print_endline "\n=== 3. Timing analysis (path depth) ===";
  let module CD = Circuits (Depth) in
  Depth.reset ();
  let out = CD.mux1 Depth.input Depth.input Depth.input in
  let r = Depth.report [ out ] in
  Printf.printf "  mux1: critical path %d gate delays, %d gates\n"
    r.Depth.critical_path r.Depth.gates;

  print_endline "\n=== 4. Netlist generation (paper 4-tuple) ===";
  let module CG = Circuits (Graph) in
  let a = Graph.input "a" and b = Graph.input "b" in
  let nl = Netlist.of_graph ~outputs:[ ("x", CG.fig1 a b) ] in
  print_endline (Formats.to_paper_string nl);

  print_endline "\n=== 5. ... and structural Verilog for the same circuit ===";
  print_string (Formats.to_verilog ~name:"fig1" nl)
