(* Run a machine-language program on the gate-level RISC processor
   (paper section 6): assemble, DMA-load, execute, and print the formatted
   trace the simulation driver produces — alongside the golden ISA model
   for comparison.

   The program computes the maximum element of an array in memory.

   Run with: dune exec examples/cpu_demo.exe *)

module Asm = Hydra_cpu.Asm
module Golden = Hydra_cpu.Golden
module Driver = Hydra_cpu.Driver
module Isa = Hydra_cpu.Isa

let program_src =
  "; find the maximum of the array at [arr .. arr+len)\n\
   ; R1 = index, R2 = best so far, R3 = scratch, R4 = len\n\
  \  load  R4,len[R0]\n\
  \  load  R2,arr[R0]      ; best = arr[0]\n\
  \  ldval R1,1[R0]        ; i = 1\n\
   loop:\n\
  \  cmplt R3,R1,R4        ; i < len ?\n\
  \  jumpf R3,done[R0]\n\
  \  load  R3,arr[R1]      ; arr[i]\n\
  \  cmpgt R5,R3,R2\n\
  \  jumpf R5,skip[R0]\n\
  \  add   R2,R3,R0        ; best = arr[i]\n\
   skip:\n\
  \  inc   R1,R1\n\
  \  jump  loop[R0]\n\
   done:\n\
  \  store R2,result[R0]\n\
  \  halt\n\
   len:    data 6\n\
   arr:    data 12\n\
  \        data 7\n\
  \        data 31\n\
  \        data 3\n\
  \        data 25\n\
  \        data 18\n\
   result: data 0\n"

let () =
  print_endline "=== Assembling ===";
  let program = Asm.assemble program_src in
  Printf.printf "%d words:\n%s\n" (List.length program)
    (Asm.disassemble program);

  print_endline "=== Golden-model run ===";
  let g = Golden.create ~mem_words:64 () in
  Golden.load_program g program;
  ignore (Golden.run g);
  Printf.printf "halted after %d instructions (%d predicted cycles)\n"
    g.Golden.instructions g.Golden.cycles;
  let labels = Asm.labels_of program_src in
  let result_addr = Hashtbl.find labels "result" in
  Printf.printf "result (golden): mem[%d] = %d\n\n" result_addr
    (Golden.read_mem g result_addr);

  print_endline "=== Gate-level run (structural memory, DMA load) ===";
  let res = Driver.run_structural ~mem_bits:6 ~max_cycles:5000 program in
  Printf.printf "halted=%b after %d clock cycles\n" res.Driver.halted
    res.Driver.cycles;
  let mem = Driver.final_memory ~size:64 res ~program in
  Printf.printf "result (gate level): mem[%d] = %d\n" result_addr
    mem.(result_addr);
  Printf.printf "registers: %s\n"
    (String.concat " "
       (Array.to_list
          (Array.mapi
             (fun i v -> if v <> 0 then Printf.sprintf "R%d=%d" i v else "")
             (Driver.final_registers res))
       |> List.filter (fun s -> s <> "")));

  print_endline "\nfirst 12 trace lines (cycle, control state, registers):";
  List.iteri
    (fun i e -> if i < 12 then print_endline ("  " ^ Driver.trace_fmt e))
    res.Driver.trace;

  print_endline "\n=== Cross-check ===";
  let gg = Golden.create ~mem_words:64 () in
  Golden.load_program gg program;
  let golden_events = Golden.run gg in
  Printf.printf "event streams identical: %b\n"
    (golden_events = res.Driver.events);
  Printf.printf "cycle counts identical:  %b (%d)\n"
    (gg.Golden.cycles = res.Driver.cycles)
    res.Driver.cycles
