(* Tests for the unified job-graph scheduler, the compiled-circuit
   cache, the netlist content digest and incremental recompilation
   (Kernel.patch) — plus the soak check that every client rewired onto
   the scheduler stays bit-identical to its sequential baseline. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Serial = Hydra_netlist.Serial
module Layout = Hydra_netlist.Layout
module Kernel = Hydra_engine.Kernel
module Wide = Hydra_engine.Compiled_wide
module Scheduler = Hydra_engine.Scheduler
module Cache = Hydra_engine.Cache
module Sharded = Hydra_engine.Sharded
module Testbench = Hydra_engine.Testbench
module Campaign = Hydra_verify.Campaign
module Equiv = Hydra_verify.Equiv
module Certify = Hydra_analyze.Certify

(* Small fixture netlists ---------------------------------------------- *)

let ripple_netlist n =
  let module A = Hydra_circuits.Arith.Make (G) in
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  N.extract ~inputs:(xs @ ys)
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let wallace_netlist n =
  let module W = Hydra_circuits.Wallace.Make (G) in
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let prod = W.multw xs ys in
  let regd = List.map G.dff prod in
  N.of_graph ~outputs:(List.mapi (fun i s -> (Printf.sprintf "p%d" i, s)) regd)

(* Flip one mid-netlist And2c to Or2c (same fanin): the canonical
   single-gate edit.  Returns the edited netlist and the site. *)
let flip_one_gate nl =
  let n = N.size nl in
  let site = ref (-1) in
  (* pick the middle And2c so the edit sits deep in the circuit *)
  let ands = ref [] in
  Array.iteri
    (fun i c -> if c = N.And2c then ands := i :: !ands)
    nl.N.components;
  let ands = Array.of_list (List.rev !ands) in
  if Array.length ands = 0 then Alcotest.fail "fixture has no And2c";
  site := ands.(Array.length ands / 2);
  let components = Array.copy nl.N.components in
  components.(!site) <- N.Or2c;
  ({ nl with N.components }, !site, n)

(* Scheduler ----------------------------------------------------------- *)

let scheduler_tests =
  [
    tc "deps and priorities order claims" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let order = ref [] in
        let mark tag ~member:_ _ = order := tag :: !order in
        let a = Scheduler.submit ~name:"a" sch ~tasks:1 (mark "a") in
        let b =
          Scheduler.submit ~name:"b" ~deps:[ a ] sch ~tasks:1 (mark "b")
        in
        (* c is ready and higher priority than a, so it claims first even
           though it was submitted last *)
        let c =
          Scheduler.submit ~name:"c" ~priority:5 sch ~tasks:1 (mark "c")
        in
        Scheduler.run sch;
        List.iter
          (fun j ->
            check_bool (Scheduler.job_name j) true
              (Scheduler.status sch j = Scheduler.Done))
          [ a; b; c ];
        check_bool "c before a before b" true
          (List.rev !order = [ "c"; "a"; "b" ]);
        Scheduler.shutdown sch);
    tc "zero-task job is a join point" (fun () ->
        let sch = Scheduler.create ~domains:2 () in
        let hits = Atomic.make 0 in
        let a =
          Scheduler.submit ~name:"a" sch ~tasks:3 (fun ~member:_ _ ->
              Atomic.incr hits)
        in
        let join = Scheduler.submit ~name:"join" ~deps:[ a ] sch ~tasks:0
            (fun ~member:_ _ -> assert false)
        in
        Scheduler.run sch;
        check_int "tasks ran" 3 (Atomic.get hits);
        check_bool "join done" true
          (Scheduler.status sch join = Scheduler.Done);
        Scheduler.shutdown sch);
    tc "dependency cycle rejected with witness" (fun () ->
        let sch = Scheduler.create ~domains:2 () in
        let a = Scheduler.submit ~name:"a" sch ~tasks:1 (fun ~member:_ _ -> ()) in
        let b =
          Scheduler.submit ~name:"b" ~deps:[ a ] sch ~tasks:1
            (fun ~member:_ _ -> ())
        in
        Scheduler.depend sch ~job:a ~on:[ b ];
        (match Scheduler.run sch with
        | () -> Alcotest.fail "cycle not detected"
        | exception Scheduler.Dependency_cycle w ->
          check_bool "witness names both jobs" true
            (List.sort compare w = [ "a"; "b" ]));
        (* the pool must remain usable after the rejected run *)
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch 5 (fun ~member:_ _ -> Atomic.incr ran);
        check_int "pool reusable after cycle" 5 (Atomic.get ran);
        Scheduler.shutdown sch);
    tc "cancellation mid-run leaves pool reusable" (fun () ->
        let sch = Scheduler.create ~domains:2 () in
        let late_ran = Atomic.make 0 in
        let late = ref None in
        let _early =
          Scheduler.submit ~name:"early" sch ~tasks:4 (fun ~member:_ i ->
              if i = 0 then Scheduler.cancel sch (Option.get !late))
        in
        late :=
          Some
            (Scheduler.submit ~name:"late" ~priority:(-1) sch ~tasks:100
               (fun ~member:_ _ -> Atomic.incr late_ran));
        Scheduler.run sch;
        check_bool "late cancelled" true
          (Scheduler.status sch (Option.get !late) = Scheduler.Cancelled);
        check_bool "late did not run to completion" true
          (Atomic.get late_ran < 100);
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch 7 (fun ~member:_ _ -> Atomic.incr ran);
        check_int "pool reusable after cancel" 7 (Atomic.get ran);
        Scheduler.shutdown sch);
    tc "exception fails its job, siblings and pool survive" (fun () ->
        let sch = Scheduler.create ~domains:2 () in
        let sibling_hits = Atomic.make 0 in
        let bad =
          Scheduler.submit ~name:"bad" sch ~tasks:3 (fun ~member:_ i ->
              if i = 1 then failwith "boom")
        in
        let dependent =
          Scheduler.submit ~name:"dependent" ~deps:[ bad ] sch ~tasks:2
            (fun ~member:_ _ -> assert false)
        in
        let sibling =
          Scheduler.submit ~name:"sibling" sch ~tasks:20 (fun ~member:_ _ ->
              Atomic.incr sibling_hits)
        in
        Scheduler.run sch;
        (match Scheduler.status sch bad with
        | Scheduler.Failed (Failure m) -> check_string "payload" "boom" m
        | _ -> Alcotest.fail "bad not Failed");
        check_bool "dependent cancelled" true
          (Scheduler.status sch dependent = Scheduler.Cancelled);
        check_bool "sibling done" true
          (Scheduler.status sch sibling = Scheduler.Done);
        check_int "sibling ran fully" 20 (Atomic.get sibling_hits);
        (* and run_tasks re-raises in the caller *)
        (match Scheduler.run_tasks sch 1 (fun ~member:_ _ -> failwith "again") with
        | () -> Alcotest.fail "run_tasks swallowed the failure"
        | exception Failure m -> check_string "re-raised" "again" m);
        Scheduler.shutdown sch);
    tc "progress callback counts to total" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let seen = ref [] in
        let j =
          Scheduler.submit ~name:"p"
            ~progress:(fun ~done_ ~total ->
              check_int "total" 4 total;
              seen := done_ :: !seen)
            sch ~tasks:4
            (fun ~member:_ _ -> ())
        in
        Scheduler.run sch;
        check_bool "done" true (Scheduler.status sch j = Scheduler.Done);
        check_int_list "monotone on one domain" [ 1; 2; 3; 4 ]
          (List.rev !seen);
        Scheduler.shutdown sch);
    qc ~count:30 "every task of every job runs exactly once"
      QCheck2.Gen.(
        pair (int_range 1 4)
          (list_size (int_range 1 8) (pair (int_range 0 9) (int_range 0 5))))
      (fun (domains, specs) ->
        let sch = Scheduler.create ~domains () in
        let nmembers = Scheduler.domains sch in
        let counters =
          List.map
            (fun (tasks, priority) ->
              let hits = Array.make (max tasks 1) 0 in
              let bad = Atomic.make false in
              let j =
                Scheduler.submit ~priority sch ~tasks (fun ~member i ->
                    if member < 0 || member >= nmembers then
                      Atomic.set bad true;
                    (* tasks of one job are claimed disjointly *)
                    hits.(i) <- hits.(i) + 1)
              in
              (j, tasks, hits, bad))
            specs
        in
        Scheduler.run sch;
        let ok =
          List.for_all
            (fun (j, tasks, hits, bad) ->
              Scheduler.status sch j = Scheduler.Done
              && (not (Atomic.get bad))
              && Array.for_all (fun h -> h = 1) (Array.sub hits 0 tasks))
            counters
        in
        Scheduler.shutdown sch;
        ok);
    qc ~count:200 "chunking partitions [0, total)"
      QCheck2.Gen.(
        triple (int_range 0 500) (int_range 1 130) (int_range 0 4))
      (fun (total, lanes, reserved) ->
        if reserved >= lanes then
          match Scheduler.chunking ~reserved ~lanes total with
          | exception Invalid_argument _ -> true
          | _ -> false
        else begin
          let ch = Scheduler.chunking ~reserved ~lanes total in
          let covered = Array.make (max total 1) 0 in
          for c = 0 to ch.Scheduler.count - 1 do
            let lo, hi = ch.Scheduler.bounds c in
            if hi - lo > ch.Scheduler.per_chunk || lo >= hi then
              Alcotest.fail "bad chunk bounds";
            for i = lo to hi - 1 do
              covered.(i) <- covered.(i) + 1
            done
          done;
          ch.Scheduler.per_chunk = lanes - reserved
          && (total = 0 || Array.for_all (fun c -> c = 1) covered)
          && (total > 0 || ch.Scheduler.count = 0)
        end);
  ]

(* Digest -------------------------------------------------------------- *)

let digest_tests =
  [
    tc "digest is stable across Serial round-trips" (fun () ->
        List.iter
          (fun nl ->
            let d = N.digest nl in
            let rt = Serial.of_string (Serial.to_string nl) in
            check_string "round-trip digest" d (N.digest rt);
            let rt2 = Serial.of_string (Serial.to_string rt) in
            check_string "twice round-tripped" d (N.digest rt2))
          [ ripple_netlist 6; wallace_netlist 8 ]);
    tc "digest is insensitive to rank-major renumbering" (fun () ->
        List.iter
          (fun nl ->
            let rm = Layout.rank_major nl in
            check_bool "renumbering really happened" true (rm <> nl);
            check_string "rank-major digest" (N.digest nl) (N.digest rm);
            (* and the round-trip of the renumbered netlist too *)
            check_string "rank-major round-trip" (N.digest nl)
              (N.digest (Serial.of_string (Serial.to_string rm))))
          [ ripple_netlist 6; wallace_netlist 8 ]);
    tc "distinct circuits get distinct digests" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let d1 = N.digest (N.of_graph ~outputs:[ ("y", G.and2 a b) ]) in
        let d2 = N.digest (N.of_graph ~outputs:[ ("y", G.or2 a b) ]) in
        let d3 = N.digest (N.of_graph ~outputs:[ ("z", G.and2 a b) ]) in
        check_bool "and <> or" true (d1 <> d2);
        check_bool "output name matters" true (d1 <> d3);
        check_bool "ripple <> wallace" true
          (N.digest (ripple_netlist 4) <> N.digest (wallace_netlist 4)));
  ]

(* Cache --------------------------------------------------------------- *)

let cache_tests =
  [
    tc "hit/miss/eviction counters and warm replicas" (fun () ->
        let cache = Cache.create ~capacity:4 () in
        let nl = ripple_netlist 4 in
        (* cold wide build = program miss + wide miss *)
        let w1 = Cache.wide cache nl in
        let s = Cache.stats cache in
        check_int "cold misses" 2 s.Cache.misses;
        check_int "cold hits" 0 s.Cache.hits;
        check_int "entries" 2 s.Cache.entries;
        (* warm build = one wide hit, no compilation *)
        let w2 = Cache.wide cache nl in
        let s = Cache.stats cache in
        check_int "warm misses" 2 s.Cache.misses;
        check_int "warm hits" 1 s.Cache.hits;
        (* a program request under the same flags also hits *)
        let _p = Cache.compile cache nl in
        check_int "program hit" 2 (Cache.stats cache).Cache.hits;
        (* replicas are behaviorally the fresh engine *)
        let fresh = Wide.create nl in
        let inputs =
          List.map
            (fun (name, _) -> (name, [ 0x2a; 0x15; 0x3f ]))
            nl.N.inputs
        in
        let expect = Wide.run_packed fresh ~inputs ~cycles:3 in
        check_bool "replica 1 identical" true
          (Wide.run_packed w1 ~inputs ~cycles:3 = expect);
        check_bool "replica 2 identical" true
          (Wide.run_packed w2 ~inputs ~cycles:3 = expect));
    tc "distinct flags and flavors get distinct entries" (fun () ->
        let cache = Cache.create () in
        let nl = ripple_netlist 4 in
        let _ = Cache.compile cache nl in
        let _ = Cache.compile cache ~fuse:false nl in
        let _ = Cache.compile cache ~k:4 nl in
        let _ = Cache.slab cache ~k:4 nl in
        let s = Cache.stats cache in
        (* program(fuse), program(nofuse), program(k=4), slab(k=4): the
           slab reuses the k=4 program (hit) and adds its own entry *)
        check_int "entries" 4 s.Cache.entries;
        check_int "slab program reuse" 1 s.Cache.hits);
    tc "LRU eviction evicts the stalest entry" (fun () ->
        let cache = Cache.create ~capacity:2 () in
        let a = ripple_netlist 3 and b = ripple_netlist 4 and c = ripple_netlist 5 in
        let _ = Cache.compile cache a in
        let _ = Cache.compile cache b in
        let _ = Cache.compile cache a in  (* refresh a: b is now LRU *)
        let _ = Cache.compile cache c in  (* evicts b *)
        let s = Cache.stats cache in
        check_int "evictions" 1 s.Cache.evictions;
        check_int "entries at capacity" 2 s.Cache.entries;
        let _ = Cache.compile cache a in
        check_int "a survived (hit)" 2 (Cache.stats cache).Cache.hits;
        let _ = Cache.compile cache b in
        check_int "b was evicted (miss)" 4 (Cache.stats cache).Cache.misses);
    tc "index-permuted twin shares a digest but not an entry" (fun () ->
        let cache = Cache.create () in
        let nl = ripple_netlist 5 in
        let rm = Layout.rank_major nl in
        check_string "same digest" (N.digest nl) (N.digest rm);
        let p1 = Cache.compile cache nl in
        let p2 = Cache.compile cache rm in
        let s = Cache.stats cache in
        check_int "two entries" 2 s.Cache.entries;
        check_int "no false hit" 2 s.Cache.misses;
        (* structurally different presentations got distinct programs *)
        check_bool "distinct programs" true (p1 != p2));
  ]

(* Kernel.patch -------------------------------------------------------- *)

let patch_tests =
  [
    tc "single-gate edit of wallace:64 recompiles <10%, certified" (fun () ->
        let nl = wallace_netlist 64 in
        let prog = Kernel.compile nl in
        (* edits are expressed against the program's (post-relayout)
           netlist index space *)
        let nl', site, _ = flip_one_gate prog.Kernel.netlist in
        let prog', st = Kernel.patch prog nl' ~edited:[ site ] in
        check_int "one edit" 1 st.Kernel.p_edited;
        check_bool
          (Printf.sprintf "recompiled %d of %d components"
             st.Kernel.p_comps_recompiled st.Kernel.p_comps_total)
          true
          (st.Kernel.p_comps_recompiled * 10 < st.Kernel.p_comps_total);
        check_bool "patched netlist installed" true (prog'.Kernel.netlist = nl');
        (* translation-validate the patched program against a fresh full
           compile of the edited netlist *)
        Certify.ensure (Equiv.certify_patch prog'));
    tc "patch = full recompile behavior on small edits" (fun () ->
        let nl = ripple_netlist 8 in
        List.iter
          (fun fuse ->
            let prog = Kernel.compile ~fuse nl in
            let nl', site, _ = flip_one_gate prog.Kernel.netlist in
            let prog', _ = Kernel.patch prog nl' ~edited:[ site ] in
            Certify.ensure (Equiv.certify_patch prog'))
          [ true; false ]);
    tc "patch rejects undeclared edits and non-gate sites" (fun () ->
        let nl = ripple_netlist 4 in
        let prog = Kernel.compile nl in
        let nl', site, _ = flip_one_gate prog.Kernel.netlist in
        (* the edit exists but is not declared *)
        (match Kernel.patch prog nl' ~edited:[] with
        | _ -> Alcotest.fail "undeclared edit accepted"
        | exception Invalid_argument _ -> ());
        (* declaring a port site is rejected *)
        let inport =
          let r = ref (-1) in
          Array.iteri
            (fun i c -> match c with N.Inport _ when !r < 0 -> r := i | _ -> ())
            prog.Kernel.netlist.N.components;
          !r
        in
        (match Kernel.patch prog nl' ~edited:[ site; inport ] with
        | _ -> Alcotest.fail "port edit accepted"
        | exception Invalid_argument _ -> ()));
  ]

(* Soak: rewired clients vs their sequential baselines ------------------ *)

let soak_tests =
  [
    tc "mixed campaign/equiv/testbench on one team, bit-identical" (fun () ->
        let nl = ripple_netlist 6 in
        let cache = Cache.create () in
        let sch = Scheduler.create ~domains:2 () in
        (* campaign: all stuck-at faults, random stimulus *)
        let faults = Campaign.all_stuck_at nl in
        let stimulus = Campaign.random_stimulus ~seed:7 ~cycles:12 nl in
        let seq_report = Campaign.run nl ~faults ~stimulus ~cycles:12 in
        let sched_report =
          Campaign.run ~scheduler:sch ~cache nl ~faults ~stimulus ~cycles:12
        in
        check_bool "campaign verdicts identical" true
          (seq_report.Campaign.verdicts = sched_report.Campaign.verdicts);
        (* equivalence: netlist vs its rank-major re-layout *)
        let rm = Layout.rank_major nl in
        let seq_eq = Equiv.wide_random_netlists ~passes:6 nl rm in
        let sched_eq =
          Equiv.wide_random_netlists ~scheduler:sch ~cache ~passes:6 nl rm
        in
        check_bool "equiv verdict identical" true (seq_eq = sched_eq);
        check_bool "equivalent" true (Equiv.seq_equivalent sched_eq);
        (* testbench: 150 random cases chunk over 3 passes *)
        let in_names = List.map fst nl.N.inputs in
        let cases =
          (* stimulus is materialized up front: the two runs must see
             identical streams, not a shared RNG drained in run order *)
          Array.init 150 (fun k ->
              let st = Random.State.make [| 0x7ab; k |] in
              ( List.map
                  (fun name ->
                    Testbench.Bit_values
                      (name, List.init 4 (fun _ -> Random.State.bool st)))
                  in_names,
                [] ))
        in
        let seq_tb = Testbench.run_batched ~cycles:4 ~cases nl in
        let sched_tb =
          Testbench.run_batched ~scheduler:sch ~cycles:4 ~cases nl
        in
        check_bool "testbench reports identical" true (seq_tb = sched_tb);
        (* the cache served every engine of the two scheduler runs *)
        check_bool "cache was exercised" true
          ((Cache.stats cache).Cache.misses > 0);
        Scheduler.shutdown sch);
    tc "many small jobs drain on one run" (fun () ->
        let sch = Scheduler.create ~domains:3 () in
        let total = Atomic.make 0 in
        let jobs =
          List.init 40 (fun k ->
              Scheduler.submit ~name:(Printf.sprintf "j%d" k) ~priority:(k mod 3)
                sch
                ~tasks:(1 + (k mod 5))
                (fun ~member:_ _ -> Atomic.incr total))
        in
        Scheduler.run sch;
        check_bool "all done" true
          (List.for_all (fun j -> Scheduler.status sch j = Scheduler.Done) jobs);
        let expect = List.init 40 (fun k -> 1 + (k mod 5)) in
        check_int "every task ran" (List.fold_left ( + ) 0 expect)
          (Atomic.get total);
        Scheduler.shutdown sch);
  ]

let suite =
  scheduler_tests @ digest_tests @ cache_tests @ patch_tests @ soak_tests
