(* Tests for the synthesis-side extensions: netlist optimizer, Wallace
   multiplier, sequential divider, pipelining combinators and the ASCII
   waveform renderer. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module O = Hydra_netlist.Optimize
module L = Hydra_netlist.Levelize
module S = Hydra_core.Stream_sim
module Compiled = Hydra_engine.Compiled
module Wave = Hydra_engine.Wave
module W = Hydra_circuits.Wallace.Make (Hydra_core.Bit)
module WD = Hydra_circuits.Wallace.Make (Hydra_core.Depth)
module AD = Hydra_circuits.Arith.Make (Hydra_core.Depth)
module Div = Hydra_circuits.Divider.Make (Hydra_core.Stream_sim)
module Pipe = Hydra_circuits.Pipeline.Make (Hydra_core.Stream_sim)

(* random circuit machinery shared with the engine tests *)
let netlist_of nodes = Test_engine.netlist_of nodes

let run_compiled nl ~inputs ~cycles = Compiled.run (Compiled.create nl) ~inputs ~cycles

let suite =
  [
    (* optimizer *)
    tc "optimize: folds constants away" (fun () ->
        let a = G.input "a" in
        (* and2(a, 1) -> a; or2(a, 0) -> a; xor2(a,a) -> 0 *)
        let x = G.and2 a G.one in
        let y = G.or2 x G.zero in
        let z = G.xor2 y y in
        let nl = N.of_graph ~outputs:[ ("y", y); ("z", z) ] in
        let opt = O.optimize nl in
        check_int "no gates left" 0 (N.stats opt).N.gates;
        (* behaviour preserved *)
        let rows =
          run_compiled opt ~inputs:[ ("a", [ false; true ]) ] ~cycles:2
        in
        Alcotest.(check (list (list (pair string bool))))
          "semantics"
          [ [ ("y", false); ("z", false) ]; [ ("y", true); ("z", false) ] ]
          rows);
    tc "optimize: deduplicates structurally equal gates" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        (* two separately-built copies of the same and gate *)
        let g1 = G.and2 a b and g2 = G.and2 a b in
        let nl = N.of_graph ~outputs:[ ("x", G.xor2 g1 g2) ] in
        let opt = O.optimize nl in
        (* xor(g, g) = 0: everything folds *)
        check_int "gates" 0 (N.stats opt).N.gates);
    tc "optimize: commutative dedup" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl =
          N.of_graph ~outputs:[ ("x", G.or2 (G.and2 a b) (G.and2 b a)) ]
        in
        let opt = O.optimize nl in
        (* and(a,b) = and(b,a); or(g,g) = g -> just one and gate *)
        check_int "gates" 1 (N.stats opt).N.gates);
    tc "optimize: inverter pairs collapse" (fun () ->
        let a = G.input "a" in
        let nl = N.of_graph ~outputs:[ ("x", G.inv (G.inv (G.inv a))) ] in
        let opt = O.optimize nl in
        check_int "one inverter" 1 (N.stats opt).N.gates);
    tc "optimize: keeps dffs and sequential behaviour" (fun () ->
        let x = G.input "x" in
        let q = G.dff (G.and2 x G.one) in
        let nl = N.of_graph ~outputs:[ ("q", q) ] in
        let opt = O.optimize nl in
        check_int "dff kept" 1 (N.stats opt).N.dffs;
        check_int "and folded" 0 (N.stats opt).N.gates;
        let rows =
          run_compiled opt ~inputs:[ ("x", [ true; false ]) ] ~cycles:2
        in
        Alcotest.(check (list (list (pair string bool))))
          "delayed" [ [ ("q", false) ]; [ ("q", true) ] ] rows);
    tc "optimize: shrinks the CLA adder (shared carry logic)" (fun () ->
        let module A = Hydra_circuits.Arith.Make (G) in
        let xs = List.init 8 (fun i -> G.input (Printf.sprintf "x%d" i)) in
        let ys = List.init 8 (fun i -> G.input (Printf.sprintf "y%d" i)) in
        let cout, sums = A.cla_add G.zero (List.combine xs ys) in
        let nl =
          N.of_graph
            ~outputs:
              (("cout", cout)
              :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)
        in
        let opt = O.optimize nl in
        check_bool "smaller" true ((N.stats opt).N.gates < (N.stats nl).N.gates);
        check_bool "critical path not worse" true
          (L.critical_path opt <= L.critical_path nl));
    qc ~count:50 "optimize preserves behaviour on random circuits"
      Test_engine.gen_case
      (fun (nodes, rows, ()) ->
        let nl = netlist_of nodes in
        let opt = O.optimize nl in
        let cols = Bitvec.columns rows in
        let inputs = List.map2 (fun n vs -> (n, vs)) [ "a"; "b"; "c" ] cols in
        run_compiled nl ~inputs ~cycles:(List.length rows)
        = run_compiled opt ~inputs ~cycles:(List.length rows));
    qc ~count:50 "optimize never grows the circuit" Test_engine.gen_case
      (fun (nodes, _, ()) ->
        let nl = netlist_of nodes in
        N.size (O.optimize nl) <= N.size nl);
    qc ~count:50 "optimize is idempotent" Test_engine.gen_case
      (fun (nodes, _, ()) ->
        let once = O.optimize (netlist_of nodes) in
        O.optimize once = once);
    tc "optimize: idempotent and equivalent on the full CPU system"
      (fun () ->
        let nl = Hydra_cpu.Driver.system_netlist ~mem_bits:6 () in
        let opt = O.optimize nl in
        check_bool "shrinks the system" true
          ((N.stats opt).N.gates < (N.stats nl).N.gates);
        Alcotest.(check (pair int int))
          "second pass is a fixpoint"
          ((N.stats opt).N.gates, (N.stats opt).N.dffs)
          (let twice = O.optimize opt in
           ((N.stats twice).N.gates, (N.stats twice).N.dffs));
        (* sequential equivalence under random start/dma/data stimulus *)
        check_bool "sequentially equivalent" true
          (Hydra_verify.Equiv.seq_equivalent
             (Hydra_verify.Equiv.wide_random_netlists ~passes:2 ~cycles:24
                nl opt)));
    (* Wallace multiplier *)
    qc "wallace multw = integer multiplication"
      QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
      (fun (x, y) ->
        let out =
          W.multw (Bitvec.of_int ~width:8 x) (Bitvec.of_int ~width:8 y)
        in
        List.length out = 16 && Bitvec.to_int out = x * y);
    qc "wallace handles mixed widths"
      QCheck2.Gen.(pair (int_bound 63) (int_bound 7))
      (fun (x, y) ->
        let out =
          W.multw (Bitvec.of_int ~width:6 x) (Bitvec.of_int ~width:3 y)
        in
        List.length out = 9 && Bitvec.to_int out = x * y);
    tc "wallace is shallower than the array multiplier (16 bits)" (fun () ->
        let depth f =
          Hydra_core.Depth.reset ();
          let xs = List.init 16 (fun _ -> Hydra_core.Depth.input) in
          let ys = List.init 16 (fun _ -> Hydra_core.Depth.input) in
          (Hydra_core.Depth.report (f xs ys)).Hydra_core.Depth.critical_path
        in
        let array_d = depth AD.multw in
        let wallace_d = depth (fun xs ys -> WD.multw xs ys) in
        check_bool
          (Printf.sprintf "wallace %d < array %d" wallace_d array_d)
          true (wallace_d < array_d));
    (* sequential divider *)
    tc "divider: 13 / 3 over 8 bits" (fun () ->
        S.reset ();
        let start = S.of_list [ true ] in
        let dividend = List.map S.constant (Bitvec.of_int ~width:8 13) in
        let divisor = List.map S.constant (Bitvec.of_int ~width:8 3) in
        let o = Div.divide 8 start dividend divisor in
        let outs = o.Div.quotient @ o.Div.remainder @ [ o.Div.busy ] in
        let rows = S.run ~cycles:12 outs in
        let final = List.nth rows 11 in
        let q, rest = Patterns.split_at 8 final in
        let r, busy = Patterns.split_at 8 rest in
        check_bool "not busy at end" false (List.hd busy);
        check_int "quotient" 4 (Bitvec.to_int q);
        check_int "remainder" 1 (Bitvec.to_int r));
    qc ~count:30 "divider matches integer division (6 bits)"
      QCheck2.Gen.(pair (int_bound 63) (int_range 1 63))
      (fun (x, y) ->
        S.reset ();
        let start = S.of_list [ true ] in
        let dividend = List.map S.constant (Bitvec.of_int ~width:6 x) in
        let divisor = List.map S.constant (Bitvec.of_int ~width:6 y) in
        let o = Div.divide 6 start dividend divisor in
        let rows = S.run ~cycles:10 (o.Div.quotient @ o.Div.remainder) in
        let final = List.nth rows 9 in
        let q, r = Patterns.split_at 6 final in
        Bitvec.to_int q = x / y && Bitvec.to_int r = x mod y);
    tc "divider: busy timing (n cycles of work)" (fun () ->
        S.reset ();
        let start = S.of_list [ true ] in
        let dividend = List.map S.constant (Bitvec.of_int ~width:4 9) in
        let divisor = List.map S.constant (Bitvec.of_int ~width:4 2) in
        let o = Div.divide 4 start dividend divisor in
        let rows = S.run ~cycles:8 [ o.Div.busy ] in
        check_rows "busy profile"
          [ [ false ]; [ true ]; [ true ]; [ true ]; [ true ]; [ false ];
            [ false ]; [ false ] ]
          rows);
    tc "divider: division by zero" (fun () ->
        S.reset ();
        let start = S.of_list [ true ] in
        let dividend = List.map S.constant (Bitvec.of_int ~width:4 11) in
        let divisor = List.map S.constant (Bitvec.of_int ~width:4 0) in
        let o = Div.divide 4 start dividend divisor in
        let rows = S.run ~cycles:7 (o.Div.quotient @ o.Div.remainder) in
        let final = List.nth rows 6 in
        let q, r = Patterns.split_at 4 final in
        check_int "quotient all ones" 15 (Bitvec.to_int q);
        check_int "remainder = dividend" 11 (Bitvec.to_int r));
    (* pipelining *)
    tc "pipeline: output equals combinational result, k cycles later"
      (fun () ->
        S.reset ();
        let module A = Hydra_circuits.Arith.Make (S) in
        let width = 4 in
        let xs t = Bitvec.of_int ~width (t * 3 mod 16) in
        let ys t = Bitvec.of_int ~width (t * 5 mod 16) in
        let in_x =
          List.init width (fun b -> S.input (fun t -> List.nth (xs t) b))
        in
        let in_y =
          List.init width (fun b -> S.input (fun t -> List.nth (ys t) b))
        in
        (* two stages: bitwise xor "precompute", then an adder *)
        let module Gt = Hydra_circuits.Gates.Make (S) in
        let stage1 w =
          let a, b = Patterns.split_at width w in
          Gt.xor2w a b @ b
        in
        let stage2 w =
          let p, b = Patterns.split_at width w in
          A.addw p b
        in
        let out = Pipe.pipeline [ stage1; stage2 ] (in_x @ in_y) in
        let rows = S.run ~cycles:8 out in
        (* expected: ((x xor y) + y) delayed 2 cycles *)
        List.iteri
          (fun t row ->
            if t >= 2 then begin
              let xv = (t - 2) * 3 mod 16 and yv = (t - 2) * 5 mod 16 in
              check_int
                (Printf.sprintf "cycle %d" t)
                (((xv lxor yv) + yv) land 15)
                (Bitvec.to_int row)
            end)
          rows);
    tc "pipeline: delay line is the identity shifted" (fun () ->
        S.reset ();
        let x = S.of_list [ true; false; true; true ] in
        let out = Pipe.delay 3 [ x ] in
        let rows = S.run ~cycles:7 out in
        check_rows "delayed"
          [ [ false ]; [ false ]; [ false ]; [ true ]; [ false ]; [ true ];
            [ true ] ]
          rows);
    tc "pipeline: reduces critical path (Depth)" (fun () ->
        let module PD = Hydra_circuits.Pipeline.Make (Hydra_core.Depth) in
        let module GD = Hydra_circuits.Gates.Make (Hydra_core.Depth) in
        let d = Hydra_core.Depth.analyze ~inputs:16 in
        (* 3 chained or-reductions, unpipelined vs pipelined *)
        let chain w =
          let r1 = GD.orw w in
          let r2 = GD.orw (r1 :: List.tl w) in
          [ GD.orw (r2 :: List.tl w) ]
        in
        let unpiped = d (fun w -> chain w) in
        let piped =
          d (fun w ->
              PD.pipeline
                [ (fun w -> GD.orw w :: List.tl w);
                  (fun w -> GD.orw w :: List.tl w);
                  (fun w -> [ GD.orw w ]) ]
                w)
        in
        check_bool "pipelined shallower" true
          (piped.Hydra_core.Depth.critical_path
          < unpiped.Hydra_core.Depth.critical_path));
    (* waveform rendering *)
    tc "wave: bit trace with edges" (fun () ->
        let s = Wave.render [ Wave.bit "x" [ false; true; true; false ] ] in
        check_bool "starts with name" true
          (String.length s > 2 && String.sub s 0 1 = "x");
        (* contains a rising and a falling edge *)
        check_bool "rising" true (String.contains s '/');
        check_bool "falling" true (String.contains s '\\'));
    tc "wave: bus trace shows changes only" (fun () ->
        let s = Wave.render [ Wave.bus ~hex_digits:2 "d" [ 5; 5; 9 ] ] in
        let count_bars =
          String.fold_left (fun acc c -> if c = '|' then acc + 1 else acc) 0 s
        in
        check_int "two changes" 2 count_bars);
    tc "wave: compiled run renders" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff x) ] in
        let sim = Compiled.create nl in
        let s =
          Wave.of_compiled_run sim
            ~inputs:[ ("x", [ true; false; true ]) ]
            ~cycles:3
        in
        check_bool "has both signals" true
          (String.length s > 0
          && String.split_on_char '\n' s |> List.length >= 2));
  ]
