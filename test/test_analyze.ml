(* Tests for Hydra_analyze: one deliberately-broken fixture per lint
   rule (each rule must fire exactly there and stay quiet on the clean
   catalogue), the Certify translation-validator (certifies the real
   Optimize/rank_major runs on the full CPU system netlist, refutes a
   seeded wrong rewrite with a concrete counterexample), the Levelize
   witness rework, Netlist.validate / Serial fail-fast, and the pinned
   `hydra lint --json` diagnostic shape. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Serial = Hydra_netlist.Serial
module Layout = Hydra_netlist.Layout
module T = Hydra_core.Ternary
module D = Hydra_analyze.Diagnostic
module Lint = Hydra_analyze.Lint
module Certify = Hydra_analyze.Certify
module Sim = Hydra_analyze.Sim

(* Hand-built netlist records: the broken fixtures cannot come from the
   extraction pipeline precisely because extraction never produces them. *)
let mk ?inputs ?outputs components fanin =
  let infer_inputs () =
    let acc = ref [] in
    Array.iteri
      (fun i c -> match c with N.Inport s -> acc := (s, i) :: !acc | _ -> ())
      components;
    List.rev !acc
  in
  let infer_outputs () =
    let acc = ref [] in
    Array.iteri
      (fun i c -> match c with N.Outport s -> acc := (s, i) :: !acc | _ -> ())
      components;
    List.rev !acc
  in
  {
    N.components;
    fanin;
    names = Array.make (Array.length components) [];
    inputs = (match inputs with Some l -> l | None -> infer_inputs ());
    outputs = (match outputs with Some l -> l | None -> infer_outputs ());
  }

let rules_fired ?config nl =
  List.sort_uniq compare
    (List.map (fun d -> d.D.rule) (Lint.run ?config nl))

let find_rule rule ds = List.find (fun d -> d.D.rule = rule) ds

(* Fixtures ------------------------------------------------------------- *)

(* and2#1 and inv#2 form a combinational loop *)
let fx_cycle =
  mk
    [| N.Inport "a"; N.And2c; N.Invc; N.Outport "x" |]
    [| [||]; [| 0; 2 |]; [| 1 |]; [| 1 |] |]

(* fanin index 5 of 3 components *)
let fx_dangling =
  mk
    [| N.Inport "a"; N.And2c; N.Outport "x" |]
    [| [||]; [| 0; 5 |]; [| 1 |] |]

(* input b drives nothing *)
let fx_floating =
  mk
    [| N.Inport "a"; N.Inport "b"; N.Outport "x" |]
    [| [||]; [||]; [| 0 |] |]

(* inv#1 reaches no output *)
let fx_dead =
  mk
    [| N.Inport "a"; N.Invc; N.Outport "x" |]
    [| [||]; [| 0 |]; [| 0 |] |]

(* and2#2 has a constant-0 leg *)
let fx_const_gate =
  mk
    [| N.Inport "a"; N.Constant false; N.And2c; N.Outport "x" |]
    [| [||]; [||]; [| 0; 1 |]; [| 2 |] |]

(* dff#1 reloads const1 forever *)
let fx_const_dff =
  mk
    [| N.Constant true; N.Dffc false; N.Outport "q" |]
    [| [||]; [| 0 |]; [| 1 |] |]

(* dff#0 holds itself: its power-up X escapes to output q forever *)
let fx_uninit =
  mk [| N.Dffc false; N.Outport "q" |] [| [| 0 |]; [| 0 |] |]

(* input a fans out to 3 inverters (threshold 2 in the test) *)
let fx_hotspot =
  mk
    [| N.Inport "a"; N.Invc; N.Invc; N.Invc;
       N.Outport "x"; N.Outport "y"; N.Outport "z" |]
    [| [||]; [| 0 |]; [| 0 |]; [| 0 |]; [| 1 |]; [| 2 |]; [| 3 |] |]

(* the timing_glitch example's circuit: a 12-bit ripple adder, whose
   linear carry chain is exactly what a path budget exists to catch *)
let ripple_netlist n =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let module A = Hydra_circuits.Arith.Make (G) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  N.of_graph
    ~outputs:
      (("cout", cout)
      :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let mux1_netlist () =
  let c = G.input "c" and x = G.input "x" and y = G.input "y" in
  let module M = Hydra_circuits.Mux.Make (G) in
  N.of_graph ~outputs:[ ("out", M.mux1 c x y) ]

(* Random synchronous circuits (same scheme as Test_wide). *)
type rop = Rinv | Rand | Ror | Rxor | Rdff

let build_random (type s)
    (module X : Hydra_core.Signal_intf.CLOCKED with type t = s)
    ~(inputs : s list) (nodes : (rop * int * int) list) : s list =
  let pool = ref (Array.of_list inputs) in
  List.iter
    (fun (op, s1, s2) ->
      let arr = !pool in
      let a = arr.(s1 mod Array.length arr)
      and b = arr.(s2 mod Array.length arr) in
      let v =
        match op with
        | Rinv -> X.inv a
        | Rand -> X.and2 a b
        | Ror -> X.or2 a b
        | Rxor -> X.xor2 a b
        | Rdff -> X.dff a
      in
      pool := Array.append arr [| v |])
    nodes;
  let arr = !pool in
  let n = Array.length arr in
  List.init (min 4 n) (fun i -> arr.(n - 1 - i))

let gen_nodes =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (triple
         (oneofl [ Rinv; Rand; Ror; Rxor; Rdff ])
         (int_bound 1000) (int_bound 1000)))

let random_netlist nodes =
  let a = G.input "a" and b = G.input "b" and c = G.input "c" in
  let outs = build_random (module G) ~inputs:[ a; b; c ] nodes in
  N.extract ~inputs:[ a; b; c ]
    ~outputs:(List.mapi (fun i o -> (Printf.sprintf "o%d" i, o)) outs)

(* ----------------------------------------------------------------------- *)

let suite =
  [
    (* --- lint fixtures: each rule fires exactly on its fixture --- *)
    tc "comb-cycle fires with an ordered witness" (fun () ->
        let ds = Lint.run fx_cycle in
        let d = find_rule "comb-cycle" ds in
        check_bool "error" true (D.is_error d);
        (* 1 and 2 form the cycle; outport 3 is downstream and also
           unleveled *)
        check_int_list "cyclic components" [ 1; 2; 3 ] d.D.components;
        (* the witness path is closed: first label repeated at the end *)
        check_bool "closed witness" true
          (List.length d.D.witness >= 2
          && List.hd d.D.witness = List.nth d.D.witness (List.length d.D.witness - 1));
        check_bool "no other rules" true
          (List.for_all
             (fun d -> d.D.rule = "comb-cycle" || d.D.severity <> D.Error)
             ds));
    tc "cycle_witness is a real directed cycle" (fun () ->
        let lv = Levelize.compute fx_cycle in
        match Levelize.cycle_witness fx_cycle lv with
        | None -> Alcotest.fail "expected a witness"
        | Some cyc ->
          check_int "cycle length" 2 (List.length cyc);
          (* each element drives the next, the last drives the first *)
          let drives a b =
            Array.exists (fun d -> d = a) fx_cycle.N.fanin.(b)
          in
          let rec ok = function
            | a :: (b :: _ as rest) -> drives a b && ok rest
            | [ last ] -> drives last (List.hd cyc)
            | [] -> false
          in
          check_bool "edges" true (ok cyc);
          check_bool "starts at min" true
            (List.hd cyc = List.fold_left min max_int cyc));
    tc "cyclic is sorted ascending" (fun () ->
        let lv = Levelize.compute fx_cycle in
        check_bool "sorted" true
          (lv.Levelize.cyclic = List.sort compare lv.Levelize.cyclic));
    tc "invalid netlist short-circuits the registry" (fun () ->
        check_bool "validate fails" true
          (match N.validate fx_dangling with Error _ -> true | Ok () -> false);
        match Lint.run fx_dangling with
        | [ d ] ->
          check_string "rule" "invalid-netlist" d.D.rule;
          check_bool "error" true (D.is_error d)
        | ds ->
          Alcotest.failf "expected exactly invalid-netlist, got %d diags"
            (List.length ds));
    tc "floating-input" (fun () ->
        let d = find_rule "floating-input" (Lint.run fx_floating) in
        check_int_list "components" [ 1 ] d.D.components;
        check_bool "mentions b" true
          (String.length d.D.message > 0
          && String.index_opt d.D.message 'b' <> None));
    tc "dead-logic" (fun () ->
        let d = find_rule "dead-logic" (Lint.run fx_dead) in
        check_int_list "components" [ 1 ] d.D.components);
    tc "const-gate" (fun () ->
        let d = find_rule "const-gate" (Lint.run fx_const_gate) in
        check_int_list "components" [ 2 ] d.D.components);
    tc "const-dff fires, uninit-state does not" (fun () ->
        let fired = rules_fired fx_const_dff in
        check_bool "const-dff" true (List.mem "const-dff" fired);
        check_bool "no uninit-state" false (List.mem "uninit-state" fired));
    tc "uninit-state" (fun () ->
        let d = find_rule "uninit-state" (Lint.run fx_uninit) in
        check_int_list "escaped outputs" [ 1 ] d.D.components;
        check_bool "witness names the dff" true
          (List.exists
             (fun w -> String.length w >= 3 && String.sub w 0 3 = "dff")
             d.D.witness));
    tc "fanout-hotspot (configured threshold)" (fun () ->
        let config = { Lint.default_config with Lint.fanout_threshold = 2 } in
        let d = find_rule "fanout-hotspot" (Lint.run ~config fx_hotspot) in
        check_int_list "components" [ 0 ] d.D.components;
        check_bool "quiet at default threshold" false
          (List.mem "fanout-hotspot" (rules_fired fx_hotspot)));
    tc "path-budget on the timing_glitch adder" (fun () ->
        let nl = ripple_netlist 12 in
        let config = { Lint.default_config with Lint.path_budget = Some 8 } in
        let d = find_rule "path-budget" (Lint.run ~config nl) in
        check_bool "error" true (D.is_error d);
        (* witness is a real path one longer than the critical depth *)
        check_int "witness length" (Levelize.critical_path nl + 1)
          (List.length d.D.witness);
        let generous =
          { Lint.default_config with Lint.path_budget = Some 100 }
        in
        check_bool "inside budget is quiet" false
          (List.mem "path-budget" (rules_fired ~config:generous nl)));
    tc "rule registry lists every rule" (fun () ->
        check_int "registry size" 11 (List.length Lint.rule_names));
    tc "lint output is deterministically ordered" (fun () ->
        (* stable sort by (rule, components): the same netlist must
           produce byte-identical diagnostic lists run-to-run, and the
           list must actually be sorted by the pinned key *)
        let nl = ripple_netlist 12 in
        let config = { Lint.default_config with Lint.path_budget = Some 8 } in
        let ds1 = Lint.run ~config nl and ds2 = Lint.run ~config nl in
        check_bool "identical across runs" true (ds1 = ds2);
        let key d = (d.D.rule, d.D.components) in
        let rec sorted = function
          | a :: (b :: _ as rest) -> key a <= key b && sorted rest
          | _ -> true
        in
        check_bool "sorted by rule then site" true (sorted ds1);
        check_bool "sorted on the broken fixtures too" true
          (List.for_all
             (fun nl -> sorted (Lint.run nl))
             [ fx_cycle; fx_floating; fx_dead; fx_const_gate; fx_uninit ]));
    (* --- catalogue hygiene: shipped circuits are error-clean --- *)
    tc "catalogue is lint-clean (no errors)" (fun () ->
        List.iter
          (fun (name, nl) ->
            let errors = D.count_errors (Lint.run nl) in
            if errors > 0 then
              Alcotest.failf "%s has %d error diagnostics" name errors)
          [
            ("mux1", mux1_netlist ());
            ("ripple:12", ripple_netlist 12);
            ("cpu-system", Hydra_cpu.Driver.system_netlist ~mem_bits:6 ());
          ]);
    (* --- Netlist.validate / Serial fail-fast --- *)
    tc "validate: arity and port mismatches" (fun () ->
        let bad_arity =
          mk [| N.Inport "a"; N.And2c; N.Outport "x" |]
            [| [||]; [| 0 |]; [| 1 |] |]
        in
        check_bool "arity" true
          (match N.validate bad_arity with Error _ -> true | Ok () -> false);
        let bad_port =
          mk
            ~inputs:[ ("b", 0) ]
            [| N.Inport "a"; N.Outport "x" |]
            [| [||]; [| 0 |] |]
        in
        check_bool "port" true
          (match N.validate bad_port with Error _ -> true | Ok () -> false);
        check_bool "clean circuit validates" true
          (N.validate (ripple_netlist 8) = Ok ()));
    tc "serial: outport-driven component fails fast" (fun () ->
        (* inv#2 reads the outport — the serializer happily emits it, the
           parser must reject it before any engine indexes with it *)
        let bad =
          mk
            [| N.Inport "a"; N.Outport "x"; N.Invc |]
            [| [||]; [| 0 |]; [| 1 |] |]
        in
        let text = Serial.to_string bad in
        match Serial.of_string text with
        | exception Serial.Parse_error { message; _ } ->
          check_bool "mentions invalid netlist" true
            (String.length message >= 15
            && String.sub message 0 15 = "invalid netlist")
        | _ -> Alcotest.fail "expected Parse_error");
    tc "describe labels" (fun () ->
        let nl = fx_const_gate in
        check_string "plain" "and2#2" (N.describe nl 2);
        let named = { nl with N.names = [| []; []; [ "g" ]; [] |] } in
        check_string "named" "and2#2(g)" (N.describe named 2));
    (* --- ternary reference evaluator --- *)
    tc "ternary_values: constants propagate, state is X" (fun () ->
        let v = Sim.ternary_values fx_const_gate in
        check_bool "and2 with const0 leg is known F" true (v.(2) = T.F);
        let vu = Sim.ternary_values fx_uninit in
        check_bool "self-holding dff stays X" true (vu.(0) = T.X);
        let vr = Sim.ternary_values ~respect_init:true fx_uninit in
        check_bool "respect_init makes it known" true (vr.(0) = T.F));
    (* --- Certify --- *)
    tc "certify: Optimize + rank_major on the CPU system netlist" (fun () ->
        let nl = Hydra_cpu.Driver.system_netlist ~mem_bits:6 () in
        let _opt, oc = Certify.optimize nl in
        check_bool "optimize certified" true (Certify.certified oc);
        let _laid, lc = Certify.rank_major nl in
        check_bool "rank_major certified" true (Certify.certified lc));
    tc "certify: refutes a seeded wrong rewrite with a counterexample"
      (fun () ->
        let pre = mux1_netlist () in
        (* the "optimizer" that turns one and2 into or2 *)
        let post =
          let components = Array.copy pre.N.components in
          let idx = ref (-1) in
          Array.iteri
            (fun i c -> if !idx < 0 && c = N.And2c then idx := i)
            components;
          components.(!idx) <- N.Or2c;
          { pre with N.components }
        in
        match Certify.check ~transform:"bad-rewrite" ~pre ~post () with
        | Certify.Certified _ -> Alcotest.fail "expected a refutation"
        | Certify.Refuted { failure = Certify.Behaviour_differs cex; _ } ->
          check_bool "names an output" true (cex.Certify.output <> "");
          check_int "stream count" 3 (List.length cex.Certify.inputs);
          List.iter
            (fun (_, bits) ->
              check_int "stream length" (cex.Certify.cycle + 1)
                (List.length bits))
            cex.Certify.inputs;
          (* replay the counterexample on the reference simulator: the
             two netlists must really disagree at the reported cycle *)
          let s1 = Sim.packed_create pre and s2 = Sim.packed_create post in
          for c = 0 to cex.Certify.cycle do
            List.iter
              (fun (name, bits) ->
                let w = if List.nth bits c then 1 else 0 in
                Sim.packed_set_input s1 name w;
                Sim.packed_set_input s2 name w)
              cex.Certify.inputs;
            Sim.packed_settle s1;
            Sim.packed_settle s2;
            if c < cex.Certify.cycle then begin
              Sim.packed_tick s1;
              Sim.packed_tick s2
            end
          done;
          check_bool "counterexample replays" false
            (Sim.packed_output s1 cex.Certify.output land 1
            = Sim.packed_output s2 cex.Certify.output land 1)
        | Certify.Refuted { failure; _ } ->
          Alcotest.failf "wrong failure: %s" (Certify.describe_failure failure));
    tc "certify: rejects a tampered permutation" (fun () ->
        let pre = ripple_netlist 8 in
        let post, perm = Layout.rank_major_permutation pre in
        let bad = Array.copy perm in
        let t = bad.(0) in
        bad.(0) <- bad.(1);
        bad.(1) <- t;
        check_bool "good perm certifies" true
          (Certify.certified
             (Certify.check_permutation ~transform:"t" ~pre ~post ~perm));
        check_bool "tampered perm refuted" false
          (Certify.certified
             (Certify.check_permutation ~transform:"t" ~pre ~post ~perm:bad)));
    tc "certify: port change is detected" (fun () ->
        let pre = mux1_netlist () in
        let post =
          {
            pre with
            N.outputs = List.map (fun (_, i) -> ("renamed", i)) pre.N.outputs;
          }
        in
        (* keep post self-consistent so validate passes *)
        let post =
          {
            post with
            N.components =
              Array.map
                (function N.Outport _ -> N.Outport "renamed" | c -> c)
                post.N.components;
          }
        in
        match Certify.check ~transform:"t" ~pre ~post () with
        | Certify.Refuted { failure = Certify.Ports_differ _; _ } -> ()
        | _ -> Alcotest.fail "expected Ports_differ");
    qc ~count:25 "certify: real Optimize runs certify on random circuits"
      gen_nodes
      (fun nodes ->
        let nl = random_netlist nodes in
        Certify.certified (snd (Certify.optimize ~passes:1 ~cycles:8 nl)));
    tc "engines: ~certify smoke on ~optimize path" (fun () ->
        let nl = ripple_netlist 8 in
        let c = Hydra_engine.Compiled.create ~optimize:true ~certify:true nl in
        ignore (Hydra_engine.Compiled.critical_path c);
        let w =
          Hydra_engine.Compiled_wide.create ~optimize:true ~certify:true nl
        in
        ignore (Hydra_engine.Compiled_wide.critical_path w));
    tc "equiv: invalid generated netlist is reported as such" (fun () ->
        match
          Hydra_verify.Equiv.wide_random_netlists ~passes:1 ~cycles:2
            fx_dangling fx_dangling
        with
        | exception Invalid_argument m ->
          check_bool "names the defect" true
            (String.length m > 0
            && String.index_opt m '(' <> None)
        | _ -> Alcotest.fail "expected Invalid_argument");
    (* --- JSON contract --- *)
    tc "diagnostic JSON shape is pinned" (fun () ->
        let ds = Lint.run fx_const_gate in
        let d = find_rule "const-gate" ds in
        check_string "json"
          "{\"rule\":\"const-gate\",\"severity\":\"warning\",\"components\":[2],\"witness\":[\"and2#2\"],\"message\":\"1 gate(s) compute a constant regardless of inputs and state (run Optimize to fold them)\"}"
          (D.to_json d));
    tc "lint --json payload parses" (fun () ->
        (* same shape the CLI emits for one target *)
        let nl = ripple_netlist 12 in
        let config = { Lint.default_config with Lint.path_budget = Some 8 } in
        let payload =
          Printf.sprintf
            "{\"version\":1,\"results\":[{\"target\":%s,\"components\":%d,\"diagnostics\":%s,\"certificates\":[]}]}"
            (D.json_string "ripple:12") (N.size nl)
            (D.list_to_json (Lint.run ~config nl))
        in
        check_bool "parses" true (json_parses payload);
        check_bool "escaping survives a hostile message" true
          (json_parses
             (D.to_json
                {
                  D.rule = "r";
                  severity = D.Info;
                  components = [];
                  witness = [ "a\"b\\c" ];
                  message = "line1\nline2\ttab";
                })));
  ]
