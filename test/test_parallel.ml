(* Tests for the domain pool. *)

open Util
module Pool = Hydra_parallel.Pool

let suite =
  [
    tc "parallel_for covers every index exactly once" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let n = 10_000 in
        let hits = Array.make n 0 in
        Pool.parallel_for pool 0 n (fun i -> hits.(i) <- hits.(i) + 1);
        Pool.shutdown pool;
        check_bool "all once" true (Array.for_all (fun h -> h = 1) hits));
    tc "parallel_for with offset range" (fun () ->
        let pool = Pool.create ~domains:3 () in
        let hits = Array.make 100 0 in
        Pool.parallel_for pool 50 100 (fun i -> hits.(i) <- 1);
        Pool.shutdown pool;
        check_int "first half untouched" 0
          (Array.fold_left ( + ) 0 (Array.sub hits 0 50));
        check_int "second half done" 50
          (Array.fold_left ( + ) 0 (Array.sub hits 50 50)));
    tc "parallel_for empty range" (fun () ->
        let pool = Pool.create ~domains:2 () in
        Pool.parallel_for pool 5 5 (fun _ -> Alcotest.fail "must not run");
        Pool.parallel_for pool 5 3 (fun _ -> Alcotest.fail "must not run");
        Pool.shutdown pool);
    tc "single-domain pool runs inline" (fun () ->
        let pool = Pool.create ~domains:1 () in
        check_int "size" 1 (Pool.size pool);
        let sum = ref 0 in
        Pool.parallel_for pool 0 100 (fun i -> sum := !sum + i);
        Pool.shutdown pool;
        check_int "sum" 4950 !sum);
    tc "parallel_sum" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let s = Pool.parallel_sum pool 0 1000 (fun i -> i) in
        Pool.shutdown pool;
        check_int "gauss" 499500 s);
    tc "reusable across many jobs" (fun () ->
        let pool = Pool.create ~domains:4 () in
        for _ = 1 to 50 do
          let acc = Array.make 512 0 in
          Pool.parallel_for pool 0 512 (fun i -> acc.(i) <- i * 2);
          assert (acc.(511) = 1022)
        done;
        Pool.shutdown pool);
    tc "exceptions propagate to caller" (fun () ->
        let pool = Pool.create ~domains:4 () in
        (match
           Pool.parallel_for pool 0 1000 (fun i ->
               if i = 777 then failwith "boom")
         with
        | () -> Alcotest.fail "expected exception"
        | exception Failure msg -> check_string "msg" "boom" msg);
        (* pool still usable after an exception *)
        let ok = ref 0 in
        Pool.parallel_for pool 0 100 (fun _ -> ignore (Atomic.make 0));
        Pool.parallel_for pool 0 100 (fun _ -> incr ok);
        Pool.shutdown pool);
    tc "many domains requested is clamped sanely" (fun () ->
        let pool = Pool.create ~domains:0 () in
        check_int "at least 1" 1 (Pool.size pool);
        Pool.shutdown pool);
    (* exception stress: the failing index sweeps the range, so over the
       iterations the raising chunk lands both on the caller (low
       indices: the caller participates first) and on workers (high
       indices), and the recording CAS races between domains *)
    tc "exception stress: raiser on caller and worker chunks" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let n = 4000 in
        for round = 0 to 39 do
          let bad = round * 100 in
          (match
             Pool.parallel_for ~chunk:16 pool 0 n (fun i ->
                 if i = bad then raise (Failure (string_of_int bad)))
           with
          | () -> Alcotest.fail "expected exception"
          | exception Failure msg -> check_string "msg" (string_of_int bad) msg);
          (* the pool must come back clean after every failure *)
          let sum = Pool.parallel_sum pool 0 100 (fun i -> i) in
          check_int "usable after exception" 4950 sum
        done;
        Pool.shutdown pool);
    tc "exception stress: multiple concurrent raisers, first one wins" (fun () ->
        let pool = Pool.create ~domains:4 () in
        for _ = 1 to 20 do
          match
            Pool.parallel_for ~chunk:1 pool 0 64 (fun i ->
                raise (Failure (string_of_int i)))
          with
          | () -> Alcotest.fail "expected exception"
          | exception Failure _ -> ()
        done;
        Pool.shutdown pool);
    tc "run_team: every membership runs exactly once" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let hits = Array.make (Pool.size pool) 0 in
        for _ = 1 to 25 do
          Array.fill hits 0 (Array.length hits) 0;
          Pool.run_team pool (fun m -> hits.(m) <- hits.(m) + 1);
          check_bool "all memberships once" true
            (Array.for_all (fun h -> h = 1) hits)
        done;
        Pool.shutdown pool);
    tc "run_team: members drain a shared queue to completion" (fun () ->
        let pool = Pool.create ~domains:4 () in
        let n = 1000 in
        let next = Atomic.make 0 in
        let done_ = Array.make n false in
        Pool.run_team pool (fun _member ->
            let rec drain () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                done_.(i) <- true;
                drain ()
              end
            in
            drain ());
        Pool.shutdown pool;
        check_bool "queue drained" true (Array.for_all Fun.id done_));
    tc "run_team: exception propagates, team survives" (fun () ->
        let pool = Pool.create ~domains:4 () in
        (match Pool.run_team pool (fun m -> if m = 2 then failwith "team") with
        | () -> Alcotest.fail "expected exception"
        | exception Failure msg -> check_string "msg" "team" msg);
        let count = Atomic.make 0 in
        Pool.run_team pool (fun _ -> Atomic.incr count);
        check_int "usable after exception" (Pool.size pool) (Atomic.get count);
        Pool.shutdown pool);
    tc "run_team: single-domain pool runs the one membership inline" (fun () ->
        let pool = Pool.create ~domains:1 () in
        let hit = ref (-1) in
        Pool.run_team pool (fun m -> hit := m);
        Pool.shutdown pool;
        check_int "membership 0" 0 !hit);
    tc "parallel_sum: partial sums match sequential on parallel-size ranges"
      (fun () ->
        let pool = Pool.create ~domains:4 () in
        let f i = (i * i mod 97) - 13 in
        let expect lo hi =
          let s = ref 0 in
          for i = lo to hi - 1 do
            s := !s + f i
          done;
          !s
        in
        List.iter
          (fun (lo, hi) ->
            check_int
              (Printf.sprintf "sum %d..%d" lo hi)
              (expect lo hi)
              (Pool.parallel_sum pool lo hi f))
          [ (0, 5); (0, 8); (0, 1000); (17, 4242); (100, 100) ];
        Pool.shutdown pool);
  ]
