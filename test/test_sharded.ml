(* Tests for the domain-sharded wide engine (Sharded) and the code that
   was rewired onto it: every sharded result must be bit-identical to the
   sequential wide engine (and hence, via Test_wide, to the scalar and
   stream semantics), regardless of the domain count; and the rank-major
   re-layout / kernel-fusion passes the engine runs by default must be
   pure re-encodings. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Layout = Hydra_netlist.Layout
module Packed = Hydra_core.Packed
module Compiled = Hydra_engine.Compiled
module Wide = Hydra_engine.Compiled_wide
module Sharded = Hydra_engine.Sharded
module Testbench = Hydra_engine.Testbench
module Equiv = Hydra_verify.Equiv
module Driver = Hydra_cpu.Driver

(* Random packed lane-batches for a Test_wide.netlist_of circuit (inputs
   a/b/c): [batch b] is a [(name, word list)] stimulus of [cycles]
   packed words per input. *)
let gen_batches ~batches ~cycles st =
  Array.init batches (fun _ ->
      List.map
        (fun name ->
          ( name,
            List.init cycles (fun _ ->
                Random.State.bits st
                lor (Random.State.bits st lsl 30)
                lor (Random.State.bits st lsl 60)
                land Wide.lane_mask) ))
        [ "a"; "b"; "c" ])

let suite =
  [
    (* the heart of the PR: sharded batches = sequential wide runs *)
    qc ~count:20 "run_batches = sequential run_packed, any domain count"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        let st = Random.State.make [| 0x5aded; List.length nodes |] in
        let batches = gen_batches ~batches:7 ~cycles:9 st in
        let wide = Wide.create nl in
        let expect =
          Array.map
            (fun inputs ->
              Wide.reset wide;
              Wide.run_packed wide ~inputs ~cycles:9)
            batches
        in
        List.for_all
          (fun domains ->
            let sh = Sharded.create ~domains nl in
            let got = Sharded.run_batches sh ~batches ~cycles:9 in
            Sharded.shutdown sh;
            got = expect)
          [ 1; 3 ]);
    tc "run_vectors = scalar settle across domains" (fun () ->
        let module A = Hydra_circuits.Arith.Make (G) in
        let xs = List.init 6 (fun i -> G.input (Printf.sprintf "x%d" i)) in
        let ys = List.init 6 (fun i -> G.input (Printf.sprintf "y%d" i)) in
        let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
        let nl =
          N.extract ~inputs:(xs @ ys)
            ~outputs:
              (("cout", cout)
              :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)
        in
        let st = Random.State.make [| 77 |] in
        (* 200 vectors: more than 3 wide passes, so jobs really shard *)
        let vectors =
          Array.init 200 (fun _ -> Array.init 12 (fun _ -> Random.State.bool st))
        in
        let sh = Sharded.create ~domains:3 nl in
        let got = Sharded.run_vectors sh vectors in
        Sharded.shutdown sh;
        let scalar = Compiled.create nl in
        let in_names = List.map fst nl.N.inputs in
        Array.iteri
          (fun k v ->
            Compiled.reset scalar;
            List.iteri
              (fun j name -> Compiled.set_input scalar name v.(j))
              in_names;
            Compiled.settle scalar;
            let expect =
              Array.of_list (List.map snd (Compiled.outputs scalar))
            in
            if got.(k) <> expect then Alcotest.failf "vector %d diverges" k)
          vectors);
    tc "run_tasks covers every job once, members in range" (fun () ->
        List.iter
          (fun domains ->
            let a = G.input "a" in
            let nl = N.of_graph ~outputs:[ ("y", G.inv a) ] in
            let sh = Sharded.create ~domains nl in
            let n = 500 in
            let hits = Array.make n 0 in
            let bad_member = Atomic.make false in
            Sharded.run_tasks sh n (fun ~member job ->
                if member < 0 || member >= Sharded.domains sh then
                  Atomic.set bad_member true;
                (* jobs are distributed disjointly, so no lock is needed *)
                hits.(job) <- hits.(job) + 1);
            Sharded.shutdown sh;
            check_bool "members in range" false (Atomic.get bad_member);
            check_bool
              (Printf.sprintf "all jobs once (%d domains)" domains)
              true
              (Array.for_all (fun h -> h = 1) hits))
          [ 1; 2; 4 ]);
    tc "step_batches checksum is domain-count independent" (fun () ->
        let nl =
          Test_wide.netlist_of
            [ (Test_wide.Rand, 0, 1); (Test_wide.Rdff, 3, 3);
              (Test_wide.Rxor, 2, 4); (Test_wide.Rdff, 5, 5);
              (Test_wide.Ror, 4, 6) ]
        in
        let run domains =
          let sh = Sharded.create ~domains nl in
          let sum = Sharded.step_batches sh ~batches:12 ~cycles:20 in
          Sharded.shutdown sh;
          sum
        in
        let reference = run 1 in
        check_int "2 domains" reference (run 2);
        check_int "4 domains" reference (run 4));
    tc "testbench run_batched ~sharded = sequential" (fun () ->
        let x = G.input "x" and en = G.input "en" in
        let q = G.dff (G.xor2 x (G.and2 en (G.input "y"))) in
        let nl =
          N.extract ~inputs:[ x; en; G.input "y" ] ~outputs:[ ("q", q) ]
        in
        let case k =
          let stimuli =
            [
              Testbench.Bit_fun ("x", fun t -> (t + k) mod 3 = 0);
              Testbench.Bit_values ("en", [ k mod 2 = 0; true ]);
              Testbench.Bit_fun ("y", fun t -> t mod 2 = k mod 2);
            ]
          in
          let expectations =
            if k = 5 then
              [ Testbench.Expect_bit { cycle = 0; port = "q"; value = true } ]
            else []
          in
          (stimuli, expectations)
        in
        let cases = Array.init 300 case in
        let sequential = Testbench.run_batched ~cycles:8 ~cases nl in
        let sh = Sharded.create ~domains:3 nl in
        let sharded = Testbench.run_batched ~sharded:sh ~cycles:8 ~cases nl in
        Sharded.shutdown sh;
        Array.iteri
          (fun k r ->
            if r <> sequential.(k) then Alcotest.failf "case %d differs" k)
          sharded;
        check_bool "case 5 failed" false (Testbench.passed sharded.(5)));
    (* parallel falsification must stay deterministic: same verdict and
       same counterexample as the 1-domain run, on both an equivalent and
       an inequivalent pair *)
    tc "wide_random_netlists ~domains is deterministic" (fun () ->
        let mk invert =
          let a = G.input "a" and b = G.input "b" in
          let q = G.dff (G.xor2 a (G.and2 b (G.dff a))) in
          N.extract ~inputs:[ a; b ]
            ~outputs:[ ("q", (if invert then G.inv q else q)) ]
        in
        let equivalent =
          Equiv.wide_random_netlists ~passes:6 ~cycles:10 ~domains:3 (mk false)
            (mk false)
        in
        check_bool "equivalent pair" true (Equiv.seq_equivalent equivalent);
        let r1 =
          Equiv.wide_random_netlists ~passes:6 ~cycles:10 ~domains:1 (mk false)
            (mk true)
        and r3 =
          Equiv.wide_random_netlists ~passes:6 ~cycles:10 ~domains:3 (mk false)
            (mk true)
        in
        (match r1 with
        | Equiv.Seq_equivalent -> Alcotest.fail "expected a mismatch"
        | Equiv.Seq_mismatch _ -> ());
        check_bool "same counterexample at 1 and 3 domains" true (r1 = r3));
    tc "run_many matches run_structural per program" (fun () ->
        let module Asm = Hydra_cpu.Asm in
        let program = Asm.assemble Test_wide.sum_loop_src in
        let n_addr = List.length program - 2 in
        let programs =
          Array.init 5 (fun k ->
              List.mapi
                (fun i w -> if i = n_addr then 2 + (3 * k) else w)
                program)
        in
        let results = Driver.run_many ~max_cycles:1000 ~domains:2 programs in
        Array.iteri
          (fun k r ->
            let scalar =
              Driver.run_structural ~max_cycles:1000 programs.(k)
            in
            check_bool (Printf.sprintf "program %d halted" k) scalar.Driver.halted
              r.Driver.halted;
            check_int
              (Printf.sprintf "program %d cycles" k)
              scalar.Driver.cycles r.Driver.cycles)
          results);
    tc "run_many reports non-halting programs" (fun () ->
        let module Asm = Hydra_cpu.Asm in
        let spin = Asm.assemble "loop: jump loop[R0]\n" in
        let results = Driver.run_many ~max_cycles:40 [| spin |] in
        check_bool "not halted" false results.(0).Driver.halted);
    (* the re-layout is a pure index permutation *)
    qc ~count:30 "rank_major_permutation is a valid permutation"
      (Test_wide.gen_nodes Test_wide.all_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        let nl', new_of_old = Layout.rank_major_permutation nl in
        let n = Array.length nl.N.components in
        let seen = Array.make n false in
        Array.iter (fun i -> seen.(i) <- true) new_of_old;
        Array.length nl'.N.components = n
        && Array.length new_of_old = n
        && Array.for_all Fun.id seen
        (* every component keeps its identity under the permutation *)
        && Array.for_all2
             (fun c i -> nl'.N.components.(i) = c)
             nl.N.components
             (Array.map Fun.id new_of_old));
    (* the default engine (relayout + fusion) = the plain one *)
    qc ~count:25 "fuse/relayout ablation: all variants agree"
      (Test_wide.gen_case Test_wide.dff_heavy_ops)
      (fun (nodes, lane_rows) ->
        let nl = Test_wide.netlist_of nodes in
        let cycles = List.length (List.hd lane_rows) in
        let packed_inputs =
          List.mapi
            (fun j name ->
              ( name,
                List.init cycles (fun t ->
                    Packed.pack
                      (List.map
                         (fun rows -> List.nth (List.nth rows t) j)
                         lane_rows)) ))
            [ "a"; "b"; "c" ]
        in
        let run sim = Wide.run_packed sim ~inputs:packed_inputs ~cycles in
        let plain = run (Wide.create ~relayout:false ~fuse:false nl) in
        run (Wide.create nl) = plain
        && run (Wide.create ~relayout:true ~fuse:false nl) = plain
        && run (Wide.create ~relayout:false ~fuse:true nl) = plain);
  ]
