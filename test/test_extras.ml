(* Tests for the extension layers: ternary semantics + X-propagation
   simulation, packed bit-parallel semantics, LFSR / Gray counter / FIFO,
   Hamming ECC, and stuck-at fault simulation. *)

open Util
module T = Hydra_core.Ternary
module Packed = Hydra_core.Packed
module S = Hydra_core.Stream_sim
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Xsim = Hydra_engine.Xsim
module Fault = Hydra_verify.Fault
module Equiv = Hydra_verify.Equiv
module SE = Hydra_circuits.Seq_extras.Make (Hydra_core.Stream_sim)
module Ecc = Hydra_circuits.Ecc.Make (Hydra_core.Bit)

let trits = [ T.F; T.T; T.X ]

let suite =
  [
    (* ternary logic *)
    tc "ternary: controlling values dominate X" (fun () ->
        check_bool "0 and x" true (T.and2 T.F T.X = T.F);
        check_bool "x and 0" true (T.and2 T.X T.F = T.F);
        check_bool "1 or x" true (T.or2 T.T T.X = T.T);
        check_bool "x or 1" true (T.or2 T.X T.T = T.T);
        check_bool "1 and x = x" true (T.and2 T.T T.X = T.X);
        check_bool "x xor 1 = x" true (T.xor2 T.X T.T = T.X);
        check_bool "inv x = x" true (T.inv T.X = T.X));
    tc "ternary: refines boolean logic" (fun () ->
        (* on known values, ternary ops agree with bool ops *)
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                match (T.to_bool a, T.to_bool b) with
                | Some va, Some vb ->
                  check_bool "and" true (T.and2 a b = T.of_bool (va && vb));
                  check_bool "or" true (T.or2 a b = T.of_bool (va || vb));
                  check_bool "xor" true (T.xor2 a b = T.of_bool (va <> vb))
                | _ -> ())
              trits)
          trits);
    qc "ternary: monotone wrt refinement"
      QCheck2.Gen.(pair (oneofl trits) (pair bool bool))
      (fun (a, (va, vb)) ->
        (* if a refines to va, then op a b refines to op va b *)
        let b = T.of_bool vb in
        (not (T.refines a (T.of_bool va)))
        || (T.refines (T.and2 a b) (T.and2 (T.of_bool va) b)
           && T.refines (T.or2 a b) (T.or2 (T.of_bool va) b)
           && T.refines (T.xor2 a b) (T.xor2 (T.of_bool va) b)));
    tc "ternary: to_string" (fun () ->
        check_string "01x" "01x" (T.to_string [ T.F; T.T; T.X ]));
    (* X-propagation simulation *)
    tc "xsim: uninitialized dff propagates X, then resolves" (fun () ->
        (* q = dff x with input driven: q is X at cycle 0, known after *)
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff x) ] in
        let sim = Xsim.create nl in
        Xsim.set_input_bool sim "x" true;
        check_bool "cycle0 unknown" true (Xsim.output sim "q" = T.X);
        Xsim.step sim;
        check_bool "cycle1 known" true (Xsim.output sim "q" = T.T);
        check_int "no unknown dffs left" 0 (Xsim.unknown_dffs sim));
    tc "xsim: X is masked by controlling input" (fun () ->
        let x = G.input "x" in
        let q = G.dff x in
        let nl = N.of_graph ~outputs:[ ("y", G.and2 q (G.input "en")) ] in
        let sim = Xsim.create nl in
        Xsim.set_input_bool sim "x" true;
        Xsim.set_input_bool sim "en" false;
        check_bool "masked" true (Xsim.output sim "y" = T.F));
    tc "xsim: respect_init uses power-up values" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("q", G.dff_init true x) ] in
        let sim = Xsim.create ~respect_init:true nl in
        check_bool "initial 1" true (Xsim.output sim "q" = T.T));
    tc "xsim: control circuit depends on documented power-up values" (fun () ->
        (* the delay-element control assumes the paper's dff0 = 0 power-up
           (e.g. the sticky halt latch could wake up set); X-propagation
           flags that honestly: without initialization some state stays X,
           with the documented power-up everything is defined from the
           start *)
        let module CC = Hydra_cpu.Control_circuit.Make (G) in
        let build () =
          let start = G.input "start" in
          let ir_op = List.init 4 (fun i -> G.input (Printf.sprintf "op%d" i)) in
          let cond = G.input "cond" in
          let outs =
            CC.synthesize Hydra_cpu.Control.algorithm ~start ~ir_op ~cond
          in
          N.of_graph ~outputs:(("halted", outs.CC.halted) :: outs.CC.states)
        in
        let drive sim s =
          Xsim.set_input_bool sim "start" s;
          for i = 0 to 3 do
            Xsim.set_input_bool sim (Printf.sprintf "op%d" i) false
          done;
          Xsim.set_input_bool sim "cond" false
        in
        let sim_x = Xsim.create (build ()) in
        drive sim_x true;
        Xsim.step sim_x;
        drive sim_x false;
        for _ = 1 to 30 do
          Xsim.step sim_x
        done;
        check_bool "uninitialized state remains unknown" true
          (Xsim.unknown_dffs sim_x > 0);
        let sim_i = Xsim.create ~respect_init:true (build ()) in
        drive sim_i true;
        check_bool "with power-up values everything is defined" true
          (Xsim.all_outputs_known sim_i);
        Xsim.step sim_i;
        drive sim_i false;
        for _ = 1 to 10 do
          Xsim.step sim_i
        done;
        check_int "no unknown dffs with init" 0 (Xsim.unknown_dffs sim_i));
    (* packed semantics *)
    tc "packed: constants and bitwise ops" (fun () ->
        check_int "zero" 0 Packed.zero;
        check_bool "one is all lanes" true (Packed.lane Packed.one 61);
        check_int "and" 0b100 (Packed.and2 0b110 0b101);
        check_int "or" 0b111 (Packed.or2 0b110 0b101);
        check_int "xor" 0b011 (Packed.xor2 0b110 0b101);
        check_int "inv keeps lanes" (Packed.lane_mask - 1) (Packed.inv 1));
    qc "packed circuit = 62 parallel Bit circuits" (gen_word 12) (fun bits ->
        (* evaluate mux over packed lanes vs lane-by-lane *)
        let module MB = Hydra_circuits.Mux.Make (Hydra_core.Bit) in
        let module MP = Hydra_circuits.Mux.Make (Hydra_core.Packed) in
        let c = Packed.pack bits in
        let x = Packed.pack (List.map not bits) in
        let y = Packed.pack bits in
        let packed_out = MP.mux1 c x y in
        List.for_all
          (fun i ->
            Packed.lane packed_out i
            = MB.mux1 (Packed.lane c i) (Packed.lane x i) (Packed.lane y i))
          (List.init (List.length bits) Fun.id));
    tc "packed: enumerate covers all vectors exactly once" (fun () ->
        let passes = Packed.enumerate ~inputs:7 in
        let seen = Hashtbl.create 128 in
        Seq.iter
          (fun (words, count) ->
            for l = 0 to count - 1 do
              let v = List.map (fun w -> Packed.lane w l) words in
              Alcotest.(check bool) "fresh" false (Hashtbl.mem seen v);
              Hashtbl.add seen v ()
            done)
          passes;
        check_int "all 128" 128 (Hashtbl.length seen));
    tc "packed: exhaustive adder check in 2^16/62 passes" (fun () ->
        let module AP = Hydra_circuits.Arith.Make (Hydra_core.Packed) in
        let w = 8 in
        Seq.iter
          (fun (words, count) ->
            let xs, ys = Patterns.split_at w words in
            let _, sums = AP.ripple_add Packed.zero (List.combine xs ys) in
            for l = 0 to count - 1 do
              let x = Bitvec.to_int (List.map (fun b -> Packed.lane b l) xs) in
              let y = Bitvec.to_int (List.map (fun b -> Packed.lane b l) ys) in
              let s = Bitvec.to_int (List.map (fun b -> Packed.lane b l) sums) in
              if s <> (x + y) land 255 then Alcotest.fail "adder lane mismatch"
            done)
          (Packed.enumerate ~inputs:(2 * w)));
    (* LFSR *)
    tc "lfsr: 4-bit maximal taps cycle length 15" (fun () ->
        S.reset ();
        let outs = SE.lfsr ~taps:[ 0; 3 ] 4 S.one in
        let states =
          List.map Bitvec.to_int (S.run ~cycles:16 outs |> List.map Fun.id)
        in
        (* never hits the all-zero lockup state *)
        check_bool "nonzero" true (List.for_all (fun s -> s <> 0) states);
        (* visits 15 distinct states then repeats *)
        let distinct = List.sort_uniq compare (Patterns.split_at 15 states |> fst) in
        check_int "period 15" 15 (List.length distinct);
        check_int "wraps" (List.hd states) (List.nth states 15));
    tc "lfsr: enable gates stepping" (fun () ->
        S.reset ();
        let en = S.of_list [ false; false; true ] in
        let outs = SE.lfsr ~taps:[ 0; 3 ] 4 en in
        let states = List.map Bitvec.to_int (S.run ~cycles:3 outs) in
        check_int "held" (List.nth states 0) (List.nth states 1));
    tc "lfsr: bad tap rejected" (fun () ->
        S.reset ();
        Alcotest.check_raises "tap" (Invalid_argument "Seq_extras.lfsr: tap")
          (fun () -> ignore (SE.lfsr ~taps:[ 9 ] 4 S.one)));
    (* Gray counter *)
    tc "gray counter: successive outputs differ in one bit" (fun () ->
        S.reset ();
        let outs = SE.gray_counter 4 S.one in
        let rows = S.run ~cycles:17 outs in
        let popcount x = List.length (List.filter Fun.id x) in
        List.iteri
          (fun i row ->
            if i > 0 then begin
              let prev = List.nth rows (i - 1) in
              let diff = List.map2 ( <> ) prev row in
              check_int (Printf.sprintf "step %d" i) 1 (popcount diff)
            end)
          rows;
        (* full period: 16 distinct codes *)
        let codes = List.map Bitvec.to_int (Patterns.split_at 16 rows |> fst) in
        check_int "distinct" 16 (List.length (List.sort_uniq compare codes)));
    qc "gray conversions are inverse bijections" (gen_word 8) (fun bits ->
        let module GB = Hydra_circuits.Gates.Make (Hydra_core.Bit) in
        GB.gray_to_binary (GB.binary_to_gray bits) = bits
        && GB.binary_to_gray (GB.gray_to_binary bits) = bits);
    (* FIFO *)
    tc "fifo: push then pop returns data in order" (fun () ->
        S.reset ();
        let push = S.of_list [ true; true; false; false; false ] in
        let pop = S.of_list [ false; false; true; true; false ] in
        let data =
          List.init 4 (fun bit ->
              S.input (fun t ->
                  let v = if t = 0 then 5 else if t = 1 then 9 else 0 in
                  List.nth (Bitvec.of_int ~width:4 v) bit))
        in
        let f = SE.fifo ~k:2 ~width:4 push pop data in
        let rows = S.run ~cycles:5 (f.SE.out @ [ f.SE.empty; f.SE.full ]) in
        let head t = Bitvec.to_int (Patterns.split_at 4 (List.nth rows t) |> fst) in
        let flag t i = List.nth (List.nth rows t) (4 + i) in
        check_bool "starts empty" true (flag 0 0);
        (* cycle 2: both pushes committed; head = 5 *)
        check_int "head after pushes" 5 (head 2);
        check_bool "not empty" false (flag 2 0);
        (* cycle 3: after first pop, head = 9 *)
        check_int "fifo order" 9 (head 3);
        (* cycle 4: both popped -> empty again *)
        check_bool "empty again" true (flag 4 0));
    tc "fifo: full flag blocks pushes" (fun () ->
        S.reset ();
        let f = SE.fifo ~k:1 ~width:2 S.one S.zero (List.init 2 (fun _ -> S.one)) in
        let rows = S.run ~cycles:5 [ f.SE.full; f.SE.empty ] in
        (* capacity 2: full from cycle 2 onwards, and it stays full *)
        check_rows "flags"
          [ [ false; true ]; [ false; false ]; [ true; false ];
            [ true; false ]; [ true; false ] ]
          rows);
    (* Hamming ECC *)
    tc "ecc: encode/decode identity without errors" (fun () ->
        List.iter
          (fun v ->
            let data = Bitvec.of_int ~width:4 v in
            let decoded, err = Ecc.decode (Ecc.encode data) in
            check_int (Printf.sprintf "d=%d" v) v (Bitvec.to_int decoded);
            check_bool "no error flagged" false err)
          (List.init 16 Fun.id));
    tc "ecc: corrects every single-bit error" (fun () ->
        List.iter
          (fun v ->
            let data = Bitvec.of_int ~width:4 v in
            let code = Ecc.encode data in
            List.iteri
              (fun flip _ ->
                let corrupted =
                  List.mapi (fun i b -> if i = flip then not b else b) code
                in
                let decoded, err = Ecc.decode corrupted in
                check_int
                  (Printf.sprintf "d=%d flip=%d" v flip)
                  v (Bitvec.to_int decoded);
                check_bool "error flagged" true err)
              code)
          (List.init 16 Fun.id));
    tc "ecc: BDD proof — decode . corrupt_i . encode = id, all i" (fun () ->
        (* for each fixed flip position, prove correction symbolically *)
        let id_circuit =
          {
            Equiv.apply =
              (fun (type a)
                   (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
                v);
          }
        in
        List.iter
          (fun flip ->
            let through =
              {
                Equiv.apply =
                  (fun (type a)
                       (module C : Hydra_core.Signal_intf.COMB with type t = a)
                       v ->
                    let module E = Hydra_circuits.Ecc.Make (C) in
                    let code = E.encode v in
                    let corrupted =
                      List.mapi (fun i b -> if i = flip then C.inv b else b) code
                    in
                    fst (E.decode corrupted));
              }
            in
            check_bool
              (Printf.sprintf "flip %d" flip)
              true
              (Equiv.is_equivalent (Equiv.bdd_equiv ~inputs:4 id_circuit through)))
          (List.init 7 Fun.id));
    tc "ecc: secded flags double errors without miscorrecting" (fun () ->
        let data = Bitvec.of_int ~width:4 0b1011 in
        let code = Ecc.encode_secded data in
        (* flip bits 1 and 5 *)
        let corrupted =
          List.mapi (fun i b -> if i = 1 || i = 5 then not b else b) code
        in
        let _, single, double = Ecc.decode_secded corrupted in
        check_bool "double flagged" true double;
        check_bool "not treated as single" false single);
    (* fault simulation *)
    tc "fault: all faults enumerated" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl = N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ] in
        (* 2 gates -> 4 faults *)
        check_int "count" 4 (List.length (Fault.all_faults nl)));
    tc "fault: exhaustive vectors give full coverage on fig1" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl = N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ] in
        let cov = Fault.coverage nl ~vectors:(Hydra_core.Bit.vectors 2) in
        check_int "all detected" cov.Fault.total cov.Fault.detected);
    tc "fault: insufficient vectors leave faults undetected" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl = N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ] in
        let cov = Fault.coverage nl ~vectors:[ [ false; false ] ] in
        check_bool "undetected exist" true (cov.Fault.detected < cov.Fault.total));
    tc "fault: injection changes the right behaviour" (fun () ->
        let a = G.input "a" in
        let nl = N.of_graph ~outputs:[ ("x", G.inv a) ] in
        match Fault.all_faults nl with
        | { Fault.site; _ } :: _ ->
          let bad = Fault.inject nl { Fault.site; stuck = true } in
          let sim = Hydra_engine.Compiled.create bad in
          Hydra_engine.Compiled.set_input sim "a" true;
          Hydra_engine.Compiled.settle sim;
          check_bool "stuck at 1" true (Hydra_engine.Compiled.output sim "x")
        | [] -> Alcotest.fail "no faults");
    tc "fault: generated tests reach full coverage on an adder" (fun () ->
        let module A = Hydra_circuits.Arith.Make (G) in
        let xs = List.init 4 (fun i -> G.input (Printf.sprintf "x%d" i)) in
        let ys = List.init 4 (fun i -> G.input (Printf.sprintf "y%d" i)) in
        let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
        let nl =
          N.of_graph
            ~outputs:
              (("cout", cout)
              :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)
        in
        let _, cov = Fault.generate_tests ~target:0.95 nl in
        check_bool "95%+ coverage" true (Fault.ratio cov >= 0.95));
  ]
