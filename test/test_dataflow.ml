(* Tests for Hydra_analyze.Dataflow and its clients: the generic
   worklist solver, sequential constant propagation (stuck registers),
   definitive reaching-X, backward observability, equivalence classes,
   the certified Sweep optimizer (including a seeded wrong sweep that
   must be refuted with a replayable counterexample), Bmc invariant
   pruning, Ternary lattice laws, SARIF export, and an independent
   wide-engine falsification of every analysis verdict. *)

open Util
module N = Hydra_netlist.Netlist
module Optimize = Hydra_netlist.Optimize
module T = Hydra_core.Ternary
module D = Hydra_analyze.Diagnostic
module Dataflow = Hydra_analyze.Dataflow
module Sweep = Hydra_analyze.Sweep
module Certify = Hydra_analyze.Certify
module Lint = Hydra_analyze.Lint
module Sim = Hydra_analyze.Sim
module Wide = Hydra_engine.Compiled_wide
module Bmc = Hydra_verify.Bmc

let mk = Test_analyze.mk

(* Fixtures ------------------------------------------------------------- *)

(* dff#1 reloads and2(dff, a): since it powers up at 0 the and gate is
   pinned at 0 and the register provably never leaves reset — a
   *sequential* constant invisible to the structural const-dff rule *)
let fx_stuck =
  mk
    [| N.Inport "a"; N.Dffc false; N.And2c; N.Outport "q" |]
    [| [||]; [| 2 |]; [| 1; 0 |]; [| 1 |] |]

(* dff#1 just delays the input: not stuck *)
let fx_toggle =
  mk
    [| N.Inport "a"; N.Dffc false; N.Outport "q" |]
    [| [||]; [| 0 |]; [| 1 |] |]

(* dff#1 powers up 0 but reloads const 1: constant after one tick, yet
   NOT sequentially stuck (its trace is 0,1,1,... — join(F,T) = X) *)
let fx_reload =
  mk
    [| N.Constant true; N.Dffc false; N.Outport "q" |]
    [| [||]; [| 0 |]; [| 1 |] |]

(* dff#0 holds itself: the power-up X survives forever *)
let fx_hold = mk [| N.Dffc false; N.Outport "q" |] [| [| 0 |]; [| 0 |] |]

(* two-stage pipe from the input: power-up X flushes after two ticks *)
let fx_flush =
  mk
    [| N.Inport "a"; N.Dffc false; N.Dffc false; N.Outport "q" |]
    [| [||]; [| 0 |]; [| 1 |]; [| 2 |] |]

(* inv#1 feeds only and2#3 whose other leg is constant 0: the and gate
   is a known constant, so the inverter is live yet never observable *)
let fx_masked =
  mk
    [| N.Inport "a"; N.Invc; N.Constant false; N.And2c; N.Or2c;
       N.Outport "x" |]
    [| [||]; [| 0 |]; [||]; [| 1; 2 |]; [| 3; 0 |]; [| 4 |] |]

(* and2#3 commutes and2#2's legs; dff#4/dff#5 latch the twins: two
   provable equivalence classes *)
let fx_dup =
  mk
    [| N.Inport "a"; N.Inport "b"; N.And2c; N.And2c; N.Dffc false;
       N.Dffc false; N.Xor2c; N.Outport "q" |]
    [| [||]; [||]; [| 0; 1 |]; [| 1; 0 |]; [| 2 |]; [| 3 |]; [| 4; 5 |];
       [| 6 |] |]

(* plain inverter pipe — the victim for the seeded bad sweep *)
let fx_inv =
  mk [| N.Inport "a"; N.Invc; N.Outport "x" |] [| [||]; [| 0 |]; [| 1 |] |]

(* ok = inv(stuck dff): holds at every cycle, with one provably-stuck
   state bit for Bmc to assume away *)
let fx_bmc =
  mk
    [| N.Inport "a"; N.Dffc false; N.And2c; N.Invc; N.Outport "ok" |]
    [| [||]; [| 2 |]; [| 1; 0 |]; [| 1 |]; [| 3 |] |]

let gen_ternary = QCheck2.Gen.oneofl [ T.F; T.T; T.X ]

(* 62 random lanes for the wide engine *)
let random_word rs =
  Int64.to_int (Random.State.int64 rs Int64.max_int) land Wide.lane_mask

(* Drive an un-optimized, un-relayouted, un-fused wide engine (so peek
   indices are netlist component indices) with random inputs and verify
   every Dataflow verdict against the concrete lanes: claimed constants
   never toggle, class members carry equal words.  An independent
   falsification of the analysis on a *different* simulator than
   Dataflow.crosscheck uses. *)
let wide_falsify ?(cycles = 16) ?(seed = 0xbead) df =
  let nl = Dataflow.netlist df in
  let w = Wide.create ~optimize:false ~relayout:false ~fuse:false nl in
  let rs = Random.State.make [| seed |] in
  let consts = Dataflow.constant_components df in
  let classes = Dataflow.classes df in
  for cycle = 0 to cycles - 1 do
    List.iter
      (fun (name, _) -> Wide.set_input w name (random_word rs))
      nl.N.inputs;
    Wide.settle w;
    List.iter
      (fun (i, b) ->
        let want = if b then Wide.lane_mask else 0 in
        if Wide.peek w i <> want then
          Alcotest.failf "component %d claimed constant %b, toggled at cycle %d"
            i b cycle)
      consts;
    List.iter
      (fun cls ->
        match cls with
        | rep :: rest ->
          let v = Wide.peek w rep in
          List.iter
            (fun j ->
              if Wide.peek w j <> v then
                Alcotest.failf
                  "class members %d and %d differ at cycle %d" rep j cycle)
            rest
        | [] -> ())
      classes;
    Wide.tick w
  done

(* ----------------------------------------------------------------------- *)

let suite =
  [
    (* --- the generic solver --- *)
    tc "solve: chain propagation reaches the fixpoint" (fun () ->
        let n = 5 in
        let reach, stats =
          Dataflow.solve ~n ~equal:( = )
            ~succs:(fun i -> if i + 1 < n then [ i + 1 ] else [])
            ~transfer:(fun get i -> i = 0 || get (i - 1))
            ~init:(fun _ -> false)
            ()
        in
        check_bool "all reached" true (Array.for_all (fun b -> b) reach);
        check_bool "visited at least n nodes" true (stats.Dataflow.visits >= n);
        check_bool "updates happened" true (stats.Dataflow.updates >= n - 1));
    tc "solve: frozen nodes keep their init and block flow" (fun () ->
        let n = 5 in
        let reach, _ =
          Dataflow.solve
            ~frozen:(fun i -> i = 2)
            ~n ~equal:( = )
            ~succs:(fun i -> if i + 1 < n then [ i + 1 ] else [])
            ~transfer:(fun get i -> i = 0 || get (i - 1))
            ~init:(fun _ -> false)
            ()
        in
        check_bool_list "cut at the frozen node"
          [ true; true; false; false; false ]
          (Array.to_list reach));
    (* --- sequential constant propagation --- *)
    tc "stuck register: and-gated reload loop is provably stuck" (fun () ->
        let df = Dataflow.create fx_stuck in
        check_bool "dff stuck at 0" true
          (Dataflow.stuck_registers df = [ (1, false) ]);
        check_bool "the and gate is constant too" true
          (List.mem (2, false) (Dataflow.constant_components df));
        let d =
          List.find
            (fun d -> d.D.rule = "stuck-register")
            (Dataflow.diagnostics df)
        in
        check_int_list "components" [ 1 ] d.D.components;
        check_bool "witness shows the value" true
          (List.mem "dff#1=0" d.D.witness));
    tc "toggling register is not stuck" (fun () ->
        check_bool "no stuck registers" true
          (Dataflow.stuck_registers (Dataflow.create fx_toggle) = []));
    tc "reloaded-constant dff is constant-after-reset, not stuck" (fun () ->
        (* trace is 0,1,1,...: join(F,T) = X, so stuck-register must stay
           quiet while the structural const-dff rule still fires *)
        let df = Dataflow.create fx_reload in
        check_bool "not sequentially stuck" true
          (Dataflow.stuck_registers df = []);
        let fired = List.map (fun d -> d.D.rule) (Lint.run fx_reload) in
        check_bool "const-dff fires" true (List.mem "const-dff" fired);
        check_bool "stuck-register quiet" false
          (List.mem "stuck-register" fired));
    tc "stuck-register surfaces through Lint.run" (fun () ->
        let fired = List.map (fun d -> d.D.rule) (Lint.run fx_stuck) in
        check_bool "fires" true (List.mem "stuck-register" fired));
    (* --- reaching-X --- *)
    tc "reaching-X: holding loop keeps power-up X forever" (fun () ->
        let df = Dataflow.create fx_hold in
        check_bool "output sees X" true
          (Dataflow.reaching_x_outputs df = [ "q" ]));
    tc "reaching-X: flushed pipe is definitively clean" (fun () ->
        (* bounded xsim at cycle 0 still reports X on the output — the
           fixpoint proves the X is flushed without picking a bound *)
        let df = Dataflow.create fx_flush in
        check_bool "fixpoint: clean" true (Dataflow.reaching_x_outputs df = []);
        let bounded = Sim.ternary_values ~inputs:T.F ~cycles:0 fx_flush in
        check_bool "bounded at 0 cycles still unknown" true (bounded.(3) = T.X);
        check_bool "fixpoint value is known" true
          (T.is_known (Dataflow.reaching_x df).(3)));
    (* --- observability --- *)
    tc "observability: constant-masked inverter is unobservable" (fun () ->
        let df = Dataflow.create fx_masked in
        check_int_list "masked" [ 1 ] (Dataflow.masked df);
        let obs = Dataflow.observable df in
        check_bool "inv not observable" false obs.(1);
        check_bool "input still observable" true obs.(0);
        let d =
          List.find
            (fun d -> d.D.rule = "unobservable-logic")
            (Dataflow.diagnostics df)
        in
        check_int_list "diagnostic components" [ 1 ] d.D.components);
    (* --- equivalence classes --- *)
    tc "classes: commuted twins and their dffs merge" (fun () ->
        let df = Dataflow.create fx_dup in
        check_bool "two classes" true
          (Dataflow.classes df = [ [ 2; 3 ]; [ 4; 5 ] ]);
        let d =
          List.find
            (fun d -> d.D.rule = "redundant-logic")
            (Dataflow.diagnostics df)
        in
        check_int_list "duplicates" [ 3; 5 ] d.D.components);
    (* --- sweep + certification --- *)
    tc "sweep: duplicates merge and the run certifies" (fun () ->
        let post, report, oc = Certify.sweep fx_dup in
        check_bool "certified" true (Certify.certified oc);
        check_int "merged" 2 report.Sweep.merged;
        check_bool "smaller" true (N.size post < N.size fx_dup);
        check_bool "still valid" true (N.validate post = Ok ()));
    tc "sweep: masked logic is dropped" (fun () ->
        let post, report, oc = Certify.sweep fx_masked in
        check_bool "certified" true (Certify.certified oc);
        check_int "one constant folded" 1 report.Sweep.constants;
        (* the inverter loses its only reader and falls away *)
        check_bool "inverter gone" true
          (not (Array.exists (fun c -> c = N.Invc) post.N.components)));
    tc "sweep: certifies on catalogue circuits" (fun () ->
        List.iter
          (fun (name, nl) ->
            let _post, _r, oc = Certify.sweep nl in
            if not (Certify.certified oc) then
              Alcotest.failf "sweep of %s refuted: %s" name
                (Certify.describe oc))
          [
            ("mux1", Test_analyze.mux1_netlist ());
            ("ripple:8", Test_analyze.ripple_netlist 8);
          ]);
    tc "seeded bad sweep is refuted with a replayable counterexample"
      (fun () ->
        let df = Dataflow.create fx_inv in
        let aliases, _, _ = Sweep.aliases df in
        (* the "sweep" that claims the inverter aliases its own input *)
        aliases.(1) <- Optimize.To 0;
        let post = Optimize.apply_aliases fx_inv aliases in
        match Certify.check ~transform:"bad-sweep" ~pre:fx_inv ~post () with
        | Certify.Certified _ -> Alcotest.fail "expected a refutation"
        | Certify.Refuted { failure = Certify.Behaviour_differs cex; _ } ->
          check_string "output named" "x" cex.Certify.output;
          (* replay the counterexample on the reference simulator: the
             two netlists must really disagree at the reported cycle *)
          let s1 = Sim.packed_create fx_inv
          and s2 = Sim.packed_create post in
          for c = 0 to cex.Certify.cycle do
            List.iter
              (fun (name, bits) ->
                let w = if List.nth bits c then 1 else 0 in
                Sim.packed_set_input s1 name w;
                Sim.packed_set_input s2 name w)
              cex.Certify.inputs;
            Sim.packed_settle s1;
            Sim.packed_settle s2;
            if c < cex.Certify.cycle then begin
              Sim.packed_tick s1;
              Sim.packed_tick s2
            end
          done;
          check_bool "counterexample replays" false
            (Sim.packed_output s1 cex.Certify.output land 1
            = Sim.packed_output s2 cex.Certify.output land 1)
        | Certify.Refuted { failure; _ } ->
          Alcotest.failf "wrong failure: %s" (Certify.describe_failure failure));
    (* --- falsification --- *)
    tc "crosscheck: Ok on fixtures and catalogue circuits" (fun () ->
        List.iter
          (fun (name, nl) ->
            match Dataflow.crosscheck (Dataflow.create nl) with
            | Ok () -> ()
            | Error m -> Alcotest.failf "crosscheck of %s failed: %s" name m)
          [
            ("fx_stuck", fx_stuck);
            ("fx_dup", fx_dup);
            ("fx_masked", fx_masked);
            ("mux1", Test_analyze.mux1_netlist ());
            ("ripple:12", Test_analyze.ripple_netlist 12);
          ]);
    tc "wide engine cannot falsify the verdicts" (fun () ->
        List.iter
          (fun nl -> wide_falsify (Dataflow.create nl))
          [ fx_stuck; fx_dup; fx_masked; Test_analyze.ripple_netlist 8 ]);
    tc "stats name the three fixpoints" (fun () ->
        let df = Dataflow.create fx_dup in
        check_bool "three analyses" true
          (List.map fst (Dataflow.stats df)
          = [ "constants"; "observable"; "reaching-x" ]));
    (* --- Bmc invariant pruning --- *)
    tc "bmc: stuck-register invariants preserve verdicts" (fun () ->
        let invariants =
          Dataflow.stuck_registers (Dataflow.create fx_bmc)
        in
        check_bool "analysis found the stuck dff" true
          (invariants = [ (1, false) ]);
        check_bool "holds without assumptions" true
          (Bmc.check ~property:"ok" ~depth:4 fx_bmc = Bmc.Holds);
        check_bool "holds with assumptions" true
          (Bmc.check ~invariants ~property:"ok" ~depth:4 fx_bmc = Bmc.Holds);
        let plain, t1 = Bmc.reachable_states fx_bmc in
        let pruned, t2 = Bmc.reachable_states ~invariants fx_bmc in
        check_bool "no truncation" true (not t1 && not t2);
        check_int "same reachable count" plain pruned);
    tc "bmc: wrong invariants are rejected up front" (fun () ->
        let reject inv =
          match Bmc.check ~invariants:[ inv ] ~property:"ok" ~depth:1 fx_bmc with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        check_bool "out of range" true (reject (99, false));
        check_bool "not a dff" true (reject (2, false));
        check_bool "wrong power-up value" true (reject (1, true)));
    tc "bmc: a lying invariant trips the snapshot tripwire" (fun () ->
        (* dff#1 powers up true but follows the input — pinning it at
           true validates, then must fail hard instead of pruning
           unsoundly *)
        let nl =
          mk
            [| N.Inport "a"; N.Dffc true; N.Outport "q" |]
            [| [||]; [| 0 |]; [| 1 |] |]
        in
        match Bmc.check ~invariants:[ (1, true) ] ~property:"q" ~depth:3 nl with
        | exception Failure m ->
          check_bool "names the dff" true
            (String.length m > 0
            && String.index_opt m '1' <> None)
        | _ -> Alcotest.fail "expected the tripwire to fire");
    (* --- SARIF export --- *)
    tc "sarif export parses and pins the schema version" (fun () ->
        let targets =
          [
            ("fx_stuck", Lint.run fx_stuck);
            ("fx_masked", Dataflow.diagnostics (Dataflow.create fx_masked));
          ]
        in
        let doc = D.to_sarif ~tool:"hydra-test" targets in
        check_bool "parses" true (json_parses doc);
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh
            && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "version pinned" true (contains doc "\"version\":\"2.1.0\"");
        check_bool "rule table present" true (contains doc "stuck-register");
        check_bool "warning level mapped" true
          (contains doc "\"level\":\"warning\""));
    (* --- Ternary lattice laws (QCheck) --- *)
    qc ~count:200 "ternary: join commutes"
      QCheck2.Gen.(pair gen_ternary gen_ternary)
      (fun (a, b) -> T.join a b = T.join b a);
    qc ~count:200 "ternary: join associates"
      QCheck2.Gen.(triple gen_ternary gen_ternary gen_ternary)
      (fun (a, b, c) -> T.join (T.join a b) c = T.join a (T.join b c));
    qc ~count:200 "ternary: join is idempotent, known only on agreement"
      QCheck2.Gen.(pair gen_ternary gen_ternary)
      (fun (a, b) ->
        T.join a a = a
        && (not (T.is_known (T.join a b)) || a = b));
    qc ~count:200 "ternary: leq is a partial order"
      QCheck2.Gen.(triple gen_ternary gen_ternary gen_ternary)
      (fun (a, b, c) ->
        T.leq a a
        && ((not (T.leq a b && T.leq b a)) || a = b)
        && ((not (T.leq a b && T.leq b c)) || T.leq a c));
    qc ~count:500 "ternary: every gate transfer is monotone for leq"
      QCheck2.Gen.(
        quad gen_ternary gen_ternary gen_ternary gen_ternary)
      (fun (a, a', b, b') ->
        let mono1 f = not (T.leq a a') || T.leq (f a) (f a') in
        let mono2 f =
          not (T.leq a a' && T.leq b b') || T.leq (f a b) (f a' b')
        in
        mono1 T.inv && mono2 T.and2 && mono2 T.or2 && mono2 T.xor2);
    (* --- random circuits (QCheck) --- *)
    qc ~count:25 "sweep certifies on random circuits" Test_analyze.gen_nodes
      (fun nodes ->
        let nl = Test_analyze.random_netlist nodes in
        let _post, _r, oc = Certify.sweep ~passes:1 ~cycles:8 nl in
        Certify.certified oc);
    qc ~count:25 "crosscheck holds on random circuits" Test_analyze.gen_nodes
      (fun nodes ->
        let df = Dataflow.create (Test_analyze.random_netlist nodes) in
        match Dataflow.crosscheck ~passes:1 ~cycles:8 df with
        | Ok () -> true
        | Error _ -> false);
  ]
