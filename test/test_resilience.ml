(* Tests for the resilience layer: deadlines/Timed_out, retry with
   deterministic backoff, the heartbeat watchdog, overload
   shedding/degradation, the chaos harness soak, and the satellite
   regressions (progress-callback reentrancy, cache eviction counter
   exactness, stuck-cycle backstop). *)

open Util
module N = Hydra_netlist.Netlist
module G = Hydra_core.Graph
module Scheduler = Hydra_engine.Scheduler
module Resilience = Hydra_engine.Resilience
module Cache = Hydra_engine.Cache
module Campaign = Hydra_verify.Campaign
module Chaos = Hydra_verify.Chaos

let ripple_netlist n =
  let module A = Hydra_circuits.Arith.Make (G) in
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  N.extract ~inputs:(xs @ ys)
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let trail_has sch j sub =
  List.exists
    (fun line ->
      let ln = String.length line and lsub = String.length sub in
      let rec scan i =
        i + lsub <= ln && (String.sub line i lsub = sub || scan (i + 1))
      in
      scan 0)
    (Scheduler.trail sch j)

(* Deadlines ----------------------------------------------------------- *)

let deadline_tests =
  [
    tc "deadline expiry: Timed_out, dependents cancelled, reusable" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let slow =
          Scheduler.submit ~name:"slow" ~deadline:0.05 sch ~tasks:50
            (fun ~member:_ _ -> Unix.sleepf 0.01)
        in
        let dep =
          Scheduler.submit ~name:"dep" ~deps:[ slow ] sch ~tasks:1
            (fun ~member:_ _ -> Alcotest.fail "dependent of timed-out job ran")
        in
        Scheduler.run sch;
        check_bool "timed out" true
          (Scheduler.status sch slow = Scheduler.Timed_out);
        check_bool "dependent cancelled" true
          (Scheduler.status sch dep = Scheduler.Cancelled);
        check_bool "trail records expiry" true
          (trail_has sch slow "deadline exceeded");
        (* storm over: the scheduler keeps working *)
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch 5 (fun ~member:_ _ -> Atomic.incr ran);
        check_int "reusable after timeout" 5 (Atomic.get ran);
        Scheduler.shutdown sch);
    tc "generous deadline: Done, empty trail" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let j =
          Scheduler.submit ~name:"ok" ~deadline:30.0 sch ~tasks:4
            (fun ~member:_ _ -> ())
        in
        Scheduler.run sch;
        check_bool "done" true (Scheduler.status sch j = Scheduler.Done);
        check_int "no incidents journaled" 0
          (List.length (Scheduler.trail sch j));
        Scheduler.shutdown sch);
    tc "run_tasks surfaces Deadline_exceeded" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        (match
           Scheduler.run_tasks sch ~name:"budgeted" ~deadline:0.03 20
             (fun ~member:_ _ -> Unix.sleepf 0.01)
         with
        | () -> Alcotest.fail "deadline did not fire"
        | exception Resilience.Deadline_exceeded { job; elapsed } ->
          check_string "job name" "budgeted" job;
          check_bool "elapsed sane" true (elapsed >= 0.03));
        Scheduler.shutdown sch);
    tc "testbench and equiv deadlines: generous passes, expired raises"
      (fun () ->
        let module Testbench = Hydra_engine.Testbench in
        let module Equiv = Hydra_verify.Equiv in
        let nl = ripple_netlist 4 in
        let in_names = List.map fst nl.N.inputs in
        let cases =
          Array.init 100 (fun k ->
              let st = Random.State.make [| 0x5ea; k |] in
              ( List.map
                  (fun name ->
                    Testbench.Bit_values
                      (name, List.init 4 (fun _ -> Random.State.bool st)))
                  in_names,
                [] ))
        in
        let free = Testbench.run_batched ~cycles:4 ~cases nl in
        let bounded =
          Testbench.run_batched ~deadline:60.0 ~cycles:4 ~cases nl
        in
        check_bool "bounded testbench is bit-identical" true (free = bounded);
        (match
           Testbench.run_batched ~deadline:0.0 ~cycles:4 ~cases nl
         with
        | _ -> Alcotest.fail "zero deadline did not fire"
        | exception Resilience.Deadline_exceeded { job; _ } ->
          check_string "testbench job name" "testbench" job);
        (match
           Equiv.wide_random_netlists ~passes:2 ~cycles:4 ~deadline:60.0 nl nl
         with
        | Equiv.Seq_equivalent -> ()
        | Equiv.Seq_mismatch _ -> Alcotest.fail "self-equivalence failed");
        match
          Equiv.wide_random_netlists ~passes:4 ~cycles:4 ~deadline:0.0 nl nl
        with
        | _ -> Alcotest.fail "zero equiv deadline did not fire"
        | exception Resilience.Deadline_exceeded _ -> ());
    tc "checkpoint interrupts a doomed long task" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let bailed = Atomic.make false in
        let jr = ref None in
        let j =
          Scheduler.submit ~name:"long" ~deadline:0.03 sch ~tasks:1
            (fun ~member:_ _ ->
              (* a single long chunk that cooperates: the deadline fires
                 mid-task and the next checkpoint raises *)
              match
                for _ = 1 to 500 do
                  Scheduler.checkpoint sch (Option.get !jr);
                  Unix.sleepf 0.002
                done
              with
              | () -> ()
              | exception Scheduler.Interrupted ->
                Atomic.set bailed true;
                raise Scheduler.Interrupted)
        in
        jr := Some j;
        Scheduler.run sch;
        check_bool "checkpoint fired" true (Atomic.get bailed);
        check_bool "timed out" true
          (Scheduler.status sch j = Scheduler.Timed_out);
        Scheduler.shutdown sch);
  ]

(* Retry --------------------------------------------------------------- *)

let retry_tests =
  [
    tc "transient failures recover within the attempt budget" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let failures = Hashtbl.create 8 in
        let policy =
          Resilience.retry ~max_attempts:4 ~base_delay:0.001 ~max_delay:0.01 ()
        in
        let j =
          Scheduler.submit ~name:"flaky" ~retry:policy sch ~tasks:6
            (fun ~member:_ i ->
              let n = try Hashtbl.find failures i with Not_found -> 0 in
              if n < 2 then begin
                Hashtbl.replace failures i (n + 1);
                failwith "transient glitch"
              end)
        in
        Scheduler.run sch;
        check_bool "recovered" true (Scheduler.status sch j = Scheduler.Done);
        (* 6 tasks x 2 failed attempts each, every one journaled *)
        check_int "attempts journaled" 12 (List.length (Scheduler.trail sch j));
        check_bool "journal names the retry" true (trail_has sch j "retry in");
        Scheduler.shutdown sch);
    tc "attempts capped: permanent failure with journal" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let policy =
          Resilience.retry ~max_attempts:3 ~base_delay:0.0005 ()
        in
        let tries = Atomic.make 0 in
        let j =
          Scheduler.submit ~name:"doomed" ~retry:policy sch ~tasks:1
            (fun ~member:_ _ ->
              Atomic.incr tries;
              failwith "always broken")
        in
        Scheduler.run sch;
        check_int "exactly max_attempts tries" 3 (Atomic.get tries);
        check_bool "failed" true
          (match Scheduler.status sch j with
          | Scheduler.Failed _ -> true
          | _ -> false);
        check_bool "journal records the exhaustion" true
          (trail_has sch j "failed permanently");
        Scheduler.shutdown sch);
    tc "non-transient exceptions are not retried" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let policy = Resilience.retry ~max_attempts:5 () in
        let tries = Atomic.make 0 in
        let j =
          Scheduler.submit ~name:"buggy" ~retry:policy sch ~tasks:1
            (fun ~member:_ _ ->
              Atomic.incr tries;
              invalid_arg "programming error")
        in
        Scheduler.run sch;
        check_int "one try only" 1 (Atomic.get tries);
        check_bool "failed" true
          (match Scheduler.status sch j with
          | Scheduler.Failed (Invalid_argument _) -> true
          | _ -> false);
        Scheduler.shutdown sch);
    qc ~count:100 "backoff: deterministic, inside the jittered envelope"
      QCheck2.Gen.(pair (int_range 1 12) (int_range 0 10_000))
      (fun (attempt, seed) ->
        let p =
          Resilience.retry ~max_attempts:20 ~base_delay:0.002 ~max_delay:0.25
            ~jitter:0.5 ()
        in
        let d1 = Resilience.backoff p ~attempt ~seed in
        let d2 = Resilience.backoff p ~attempt ~seed in
        let envelope =
          Float.min 0.25 (0.002 *. (2.0 ** float_of_int (attempt - 1)))
        in
        d1 = d2
        && d1 <= envelope +. 1e-12
        && d1 >= (envelope *. 0.5) -. 1e-12);
  ]

(* Watchdog ------------------------------------------------------------ *)

let watchdog_tests =
  [
    tc "stuck member fails its job with a site witness" (fun () ->
        let sch = Scheduler.create ~domains:2 ~watchdog:0.05 () in
        let jr = ref None in
        let j =
          Scheduler.submit ~name:"sleepy" sch ~tasks:1 (fun ~member:_ _ ->
              (* never heartbeats: spin until the watchdog dooms us (or a
                 safety bound keeps the suite from wedging) *)
              let t0 = Unix.gettimeofday () in
              while
                (try
                   Scheduler.checkpoint sch (Option.get !jr);
                   true
                 with Scheduler.Interrupted -> false)
                && Unix.gettimeofday () -. t0 < 2.0
              do
                Unix.sleepf 0.005
              done)
        in
        jr := Some j;
        Scheduler.run sch;
        (match Scheduler.status sch j with
        | Scheduler.Failed (Resilience.Stuck_member { site; age; _ }) ->
          check_string "site names the job" "sleepy" site;
          check_bool "age beyond horizon" true (age > 0.05)
        | s ->
          Alcotest.failf "expected Stuck_member failure, got %s"
            (match s with
            | Scheduler.Done -> "Done"
            | Scheduler.Timed_out -> "Timed_out"
            | Scheduler.Cancelled -> "Cancelled"
            | Scheduler.Failed e -> "Failed " ^ Printexc.to_string e
            | _ -> "Pending/Running"));
        check_bool "watchdog verdict journaled" true
          (trail_has sch j "watchdog");
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch 4 (fun ~member:_ _ -> Atomic.incr ran);
        check_int "team survives the stuck member" 4 (Atomic.get ran);
        Scheduler.shutdown sch);
    tc "heartbeats keep an honest slow task alive" (fun () ->
        let sch = Scheduler.create ~domains:2 ~watchdog:0.08 () in
        let j =
          Scheduler.submit ~name:"slow-but-alive" sch ~tasks:1
            (fun ~member _ ->
              for _ = 1 to 15 do
                Unix.sleepf 0.01;
                Scheduler.beat sch ~member
              done)
        in
        Scheduler.run sch;
        check_bool "done, not killed" true
          (Scheduler.status sch j = Scheduler.Done);
        Scheduler.shutdown sch);
  ]

(* Admission / shedding ------------------------------------------------- *)

let admission_tests =
  [
    tc "acquire degrades in word quanta before shedding" (fun () ->
        let a = Resilience.admission ~max_lanes:124 () in
        (match Resilience.acquire a ~lanes:124 with
        | `Granted 124 -> ()
        | _ -> Alcotest.fail "whole budget should fit");
        Resilience.release a ~lanes:124;
        (match Resilience.acquire a ~lanes:500 with
        | `Granted 124 -> ()  (* degraded to the budget, not rejected *)
        | `Granted g -> Alcotest.failf "expected 124, granted %d" g
        | `Shed -> Alcotest.fail "degradable request was shed");
        (* 0 lanes free: less than one quantum, so now we shed *)
        (match Resilience.acquire a ~lanes:62 with
        | `Shed -> ()
        | `Granted g -> Alcotest.failf "over-budget grant of %d" g);
        Resilience.release a ~lanes:124;
        let s = Resilience.admission_stats a in
        check_int "admitted" 2 s.Resilience.admitted;
        check_int "degraded" 1 s.Resilience.degraded;
        check_int "shed" 1 s.Resilience.shed;
        check_int "all released" 0 s.Resilience.in_flight_lanes);
    tc "scheduler sheds the lowest-priority job past the lane budget"
      (fun () ->
        let a = Resilience.admission ~max_lanes:124 () in
        let sch = Scheduler.create ~domains:1 ~admission:a () in
        let mk name prio =
          Scheduler.submit ~name ~priority:prio ~lanes:62 sch ~tasks:1
            (fun ~member:_ _ -> ())
        in
        let j1 = mk "important" 1 in
        let j2 = mk "urgent" 2 in
        let j3 = mk "background" 0 in
        Scheduler.run sch;
        check_bool "high priorities ran" true
          (Scheduler.status sch j1 = Scheduler.Done
          && Scheduler.status sch j2 = Scheduler.Done);
        check_bool "lowest priority shed" true
          (Scheduler.status sch j3 = Scheduler.Cancelled);
        check_bool "shed journaled" true (trail_has sch j3 "shed");
        check_int "controller counted it" 1
          (Resilience.admission_stats a).Resilience.shed;
        Scheduler.shutdown sch);
    tc "run_tasks surfaces Shed for an unadmittable job" (fun () ->
        let a = Resilience.admission ~max_lanes:62 () in
        let sch = Scheduler.create ~domains:1 ~admission:a () in
        (match
           Scheduler.run_tasks sch ~name:"too-big" ~lanes:600 3
             (fun ~member:_ _ -> ())
         with
        | () -> Alcotest.fail "over-budget job was not shed"
        | exception Resilience.Shed { job; _ } ->
          check_string "job name" "too-big" job);
        Scheduler.shutdown sch);
    tc "campaign degrades slab words under admission, verdicts identical"
      (fun () ->
        let nl = ripple_netlist 8 in
        let faults = Campaign.all_stuck_at nl in
        let stimulus = Campaign.random_stimulus ~seed:7 ~cycles:10 nl in
        let baseline =
          Campaign.run ~engine:(`Slab 4) nl ~faults ~stimulus ~cycles:10
        in
        let a = Resilience.admission ~max_lanes:124 () in
        let degraded =
          Campaign.run ~engine:(`Slab 4) ~admission:a nl ~faults ~stimulus
            ~cycles:10
        in
        check_bool "verdicts bit-identical after degradation" true
          (baseline.Campaign.verdicts = degraded.Campaign.verdicts);
        let s = Resilience.admission_stats a in
        check_int "ran degraded" 1 s.Resilience.degraded;
        check_int "budget returned" 0 s.Resilience.in_flight_lanes);
  ]

(* Satellite 1: progress callbacks re-enter the scheduler --------------- *)

let reentrancy_tests =
  [
    tc "progress callback may cancel and submit without deadlock" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let victim = ref None in
        let spawned = ref None in
        let j =
          Scheduler.submit ~name:"driver" ~priority:5 sch ~tasks:3
            ~progress:(fun ~done_ ~total:_ ->
              (* both calls take the scheduler lock internally: this
                 deadlocks (and times the suite out) if progress ever
                 runs under the claim lock *)
              if done_ = 1 then Scheduler.cancel sch (Option.get !victim);
              if done_ = 2 then
                spawned :=
                  Some
                    (Scheduler.submit ~name:"from-progress" sch ~tasks:2
                       (fun ~member:_ _ -> ())))
            (fun ~member:_ _ -> ())
        in
        victim :=
          Some
            (Scheduler.submit ~name:"victim" ~priority:(-1) sch ~tasks:100
               (fun ~member:_ _ -> ()));
        Scheduler.run sch;
        check_bool "driver done" true (Scheduler.status sch j = Scheduler.Done);
        check_bool "victim cancelled from progress" true
          (Scheduler.status sch (Option.get !victim) = Scheduler.Cancelled);
        check_bool "job submitted from progress ran" true
          (Scheduler.status sch (Option.get !spawned) = Scheduler.Done);
        Scheduler.shutdown sch);
    tc "progress exception fails the job" (fun () ->
        let sch = Scheduler.create ~domains:1 () in
        let j =
          Scheduler.submit ~name:"bad-progress" sch ~tasks:3
            ~progress:(fun ~done_ ~total:_ ->
              if done_ = 2 then failwith "progress blew up")
            (fun ~member:_ _ -> ())
        in
        Scheduler.run sch;
        check_bool "failed via progress" true
          (match Scheduler.status sch j with
          | Scheduler.Failed (Failure _) -> true
          | _ -> false);
        Scheduler.shutdown sch);
  ]

(* Satellite 3: stuck-cycle backstop ------------------------------------ *)

let backstop_tests =
  [
    tc "mid-run-submitted cycle trips the backstop, scheduler reusable"
      (fun () ->
        let sch = Scheduler.create ~domains:2 () in
        let d1r = ref None and d2r = ref None in
        let x =
          Scheduler.submit ~name:"x" sch ~tasks:1 (fun ~member:_ _ ->
              (* the up-front check in [run] cannot see this cycle: it is
                 created while the team is already running *)
              let d1 =
                Scheduler.submit ~name:"d1" sch ~tasks:1 (fun ~member:_ _ ->
                    Alcotest.fail "cyclic job ran")
              in
              let d2 =
                Scheduler.submit ~name:"d2" ~deps:[ d1 ] sch ~tasks:1
                  (fun ~member:_ _ -> Alcotest.fail "cyclic job ran")
              in
              Scheduler.depend sch ~job:d1 ~on:[ d2 ];
              d1r := Some d1;
              d2r := Some d2)
        in
        (match Scheduler.run sch with
        | () -> Alcotest.fail "mid-run cycle not detected"
        | exception Scheduler.Dependency_cycle w ->
          check_bool "witness names the cycle" true
            (List.sort compare w = [ "d1"; "d2" ]));
        check_bool "honest job completed" true
          (Scheduler.status sch x = Scheduler.Done);
        List.iter
          (fun jr ->
            let j = Option.get !jr in
            check_bool "cyclic job cancelled" true
              (Scheduler.status sch j = Scheduler.Cancelled);
            check_bool "backstop journaled" true
              (trail_has sch j "backstop"))
          [ d1r; d2r ];
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch 6 (fun ~member:_ _ -> Atomic.incr ran);
        check_int "reusable after backstop" 6 (Atomic.get ran);
        Scheduler.shutdown sch);
    tc "backoff-parked jobs do not trip the backstop" (fun () ->
        (* a retrying job whose whole team is waiting on its backoff due
           time must park (the ticker wakes it), not be mistaken for a
           stuck cycle *)
        let sch = Scheduler.create ~domains:2 () in
        let policy =
          Resilience.retry ~max_attempts:3 ~base_delay:0.02 ~max_delay:0.05
            ~jitter:0.0 ()
        in
        let failed_once = Atomic.make false in
        let j =
          Scheduler.submit ~name:"parked" ~retry:policy sch ~tasks:1
            (fun ~member:_ _ ->
              if not (Atomic.exchange failed_once true) then
                failwith "first attempt fails")
        in
        Scheduler.run sch;
        check_bool "recovered after the parked backoff" true
          (Scheduler.status sch j = Scheduler.Done);
        Scheduler.shutdown sch);
    qc ~count:12 "backstop firing always leaves the scheduler reusable"
      QCheck2.Gen.(pair (int_range 2 4) (int_range 1 6))
      (fun (ring, extra) ->
        let sch = Scheduler.create ~domains:2 () in
        let _driver =
          Scheduler.submit ~name:"driver" sch ~tasks:1 (fun ~member:_ _ ->
              let jobs =
                List.init ring (fun i ->
                    Scheduler.submit
                      ~name:(Printf.sprintf "ring%d" i)
                      sch ~tasks:1
                      (fun ~member:_ _ -> ()))
              in
              (* close the ring: each depends on the next, last on first *)
              let rec link = function
                | a :: (b :: _ as rest) ->
                  Scheduler.depend sch ~job:a ~on:[ b ];
                  link rest
                | [ last ] ->
                  Scheduler.depend sch ~job:last ~on:[ List.hd jobs ]
                | [] -> ()
              in
              link jobs)
        in
        let tripped =
          match Scheduler.run sch with
          | () -> false
          | exception Scheduler.Dependency_cycle _ -> true
        in
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch extra (fun ~member:_ _ -> Atomic.incr ran);
        let ok = tripped && Atomic.get ran = extra in
        Scheduler.shutdown sch;
        ok);
  ]

(* Satellite 2: cache eviction counter exactness ------------------------ *)

let cache_counter_tests =
  [
    tc "sequential evictions: misses = entries + evictions exactly"
      (fun () ->
        let cache = Cache.create ~capacity:3 () in
        for n = 1 to 10 do
          ignore (Cache.compile cache (ripple_netlist n))
        done;
        let s = Cache.stats cache in
        check_int "entries at capacity" 3 s.Cache.entries;
        check_int "misses" 10 s.Cache.misses;
        (* the satellite regression: every removed entry is counted as
           an eviction, no silent count resets *)
        check_int "evictions exact" 7 s.Cache.evictions);
    tc "concurrent hammering keeps counters consistent" (fun () ->
        let cache = Cache.create ~capacity:4 () in
        let pool = Hydra_parallel.Pool.create ~domains:4 () in
        let nls = Array.init 8 (fun i -> ripple_netlist (i + 1)) in
        Hydra_parallel.Pool.run_team pool (fun member ->
            for round = 0 to 14 do
              ignore (Cache.compile cache nls.((member + round) mod 8))
            done);
        Hydra_parallel.Pool.shutdown pool;
        let s = Cache.stats cache in
        check_bool "capacity respected" true (s.Cache.entries <= 4);
        (* each miss inserts at most one entry (racing duplicates defer),
           and every insert is either still resident or was counted out *)
        check_bool "entries + evictions <= misses" true
          (s.Cache.entries + s.Cache.evictions <= s.Cache.misses);
        check_bool "evictions happened" true (s.Cache.evictions > 0));
    tc "fault hook storms leave the cache consistent" (fun () ->
        let cache = Cache.create ~capacity:3 () in
        let plan = Chaos.plan ~seed:99 ~delay_rate:0.0 ~exn_rate:0.5 () in
        Cache.set_fault_hook cache (Some (Chaos.hook plan ~label:"cache"));
        let injected = ref 0 in
        for n = 1 to 8 do
          match Cache.compile cache (ripple_netlist n) with
          | _ -> ()
          | exception Chaos.Injected _ -> incr injected
        done;
        check_bool "storm actually injected" true (!injected > 0);
        Cache.set_fault_hook cache None;
        (* after the storm: hits and inserts still work, counters sane *)
        let nl = ripple_netlist 2 in
        let p1 = Cache.compile cache nl in
        let p2 = Cache.compile cache nl in
        check_bool "post-storm hit is the same program" true (p1 == p2);
        let s = Cache.stats cache in
        check_bool "capacity respected" true (s.Cache.entries <= 3);
        check_bool "counters consistent" true
          (s.Cache.entries + s.Cache.evictions <= s.Cache.misses));
  ]

(* Chaos soak ----------------------------------------------------------- *)

(* The acceptance soak: storms of injected delays, exceptions and stuck
   spins over many scheduler jobs, with retry policies recovering.  The
   invariants: no lost tasks, no double-completions (every task's
   success counter is exactly 1), all jobs settle, and the scheduler
   stays reusable.  [HYDRA_CHAOS_FAULTS] scales the storm (CI runs
   10000+; the default keeps tier-1 fast). *)
let chaos_soak_target () =
  match int_of_string_opt (try Sys.getenv "HYDRA_CHAOS_FAULTS" with Not_found -> "") with
  | Some n when n > 0 -> n
  | _ -> 400

let chaos_tests =
  [
    tc "soak: storms lose nothing, double-complete nothing" (fun () ->
        let target = chaos_soak_target () in
        let sch = Scheduler.create ~domains:3 () in
        let policy =
          Resilience.retry ~max_attempts:15 ~base_delay:0.0003
            ~max_delay:0.003 ()
        in
        let jobs_per_round = 8 and tasks_per_job = 100 in
        let total_injected = ref 0 in
        let round = ref 0 in
        while !total_injected < target do
          incr round;
          let plan =
            Chaos.plan ~seed:(0xbad + !round) ~delay_rate:0.15 ~exn_rate:0.3
              ~stuck_rate:0.02 ~max_delay:0.001 ~stuck_spin:0.01 ()
          in
          let success =
            Array.init jobs_per_round (fun _ ->
                Array.init tasks_per_job (fun _ -> Atomic.make 0))
          in
          let jobs =
            List.init jobs_per_round (fun jn ->
                Scheduler.submit
                  ~name:(Printf.sprintf "storm%d.%d" !round jn)
                  ~priority:(jn mod 3) ~retry:policy sch ~tasks:tasks_per_job
                  (Chaos.wrap plan ~label:(Printf.sprintf "j%d" jn)
                     (fun ~member:_ i -> Atomic.incr success.(jn).(i))))
          in
          Scheduler.run sch;
          List.iteri
            (fun jn j ->
              (match Scheduler.status sch j with
              | Scheduler.Done -> ()
              | s ->
                Alcotest.failf "round %d job %d not Done (%s)" !round jn
                  (match s with
                  | Scheduler.Failed e -> "Failed " ^ Printexc.to_string e
                  | Scheduler.Cancelled -> "Cancelled"
                  | Scheduler.Timed_out -> "Timed_out"
                  | _ -> "unsettled"));
              Array.iteri
                (fun i c ->
                  let n = Atomic.get c in
                  if n <> 1 then
                    Alcotest.failf
                      "round %d job %d task %d completed %d times" !round jn
                      i n)
                success.(jn))
            jobs;
          let c = Chaos.injected plan in
          total_injected :=
            !total_injected + c.Chaos.delays + c.Chaos.exns + c.Chaos.stucks
        done;
        check_bool "enough chaos injected" true (!total_injected >= target);
        (* after every storm: a clean run still works *)
        let ran = Atomic.make 0 in
        Scheduler.run_tasks sch 10 (fun ~member:_ _ -> Atomic.incr ran);
        check_int "scheduler reusable after the storms" 10 (Atomic.get ran);
        Scheduler.shutdown sch);
    tc "campaign under chaos + retry stays bit-identical" (fun () ->
        let nl = ripple_netlist 8 in
        let faults = Campaign.all_stuck_at nl in
        let stimulus = Campaign.random_stimulus ~seed:7 ~cycles:10 nl in
        let clean = Campaign.run nl ~faults ~stimulus ~cycles:10 in
        let sch = Scheduler.create ~domains:2 () in
        let plan =
          Chaos.plan ~seed:1234 ~delay_rate:0.1 ~exn_rate:0.25
            ~max_delay:0.002 ()
        in
        let stormy =
          Campaign.run ~scheduler:sch
            ~retry:(Resilience.retry ~max_attempts:8 ~base_delay:0.001 ())
            ~chaos:plan nl ~faults ~stimulus ~cycles:10
        in
        Scheduler.shutdown sch;
        check_bool "verdicts bit-identical through the storm" true
          (clean.Campaign.verdicts = stormy.Campaign.verdicts);
        check_int "totals match" clean.Campaign.total stormy.Campaign.total);
    tc "chaos replay: same seed, same storm" (fun () ->
        let run_once () =
          let plan =
            Chaos.plan ~seed:77 ~delay_rate:0.2 ~exn_rate:0.3 ~max_delay:0.0005
              ()
          in
          let outcomes = ref [] in
          for task = 0 to 199 do
            (match Chaos.inject plan ~label:"replay" ~task () with
            | () -> outcomes := (task, "ok") :: !outcomes
            | exception Chaos.Injected _ ->
              outcomes := (task, "exn") :: !outcomes)
          done;
          (List.rev !outcomes, Chaos.injected plan)
        in
        let o1, c1 = run_once () in
        let o2, c2 = run_once () in
        check_bool "identical outcome sequence" true (o1 = o2);
        check_bool "identical counts" true (c1 = c2);
        check_bool "storm non-trivial" true (c1.Chaos.exns > 0));
  ]

let suite =
  deadline_tests @ retry_tests @ watchdog_tests @ admission_tests
  @ reentrancy_tests @ backstop_tests @ cache_counter_tests @ chaos_tests
