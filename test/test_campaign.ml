(* The lane-parallel fault-campaign engine: force-mask injection
   equivalence with netlist rewriting, coverage bit-identity with the
   historic per-fault-recompile loop, fault classification (detected /
   latent / masked), the SEU and intermittent models, the ECC and CPU
   graceful-degradation demonstrations, and the pinned JSON contract. *)

open Util

module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module W = Hydra_engine.Compiled_wide
module Sharded = Hydra_engine.Sharded
module Fault = Hydra_verify.Fault
module C = Hydra_verify.Campaign
module Lint = Hydra_analyze.Lint
module D = Hydra_analyze.Diagnostic

let fig1 () =
  let a = G.input "a" and b = G.input "b" in
  N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ]

let ripple n =
  let module A = Hydra_circuits.Arith.Make (G) in
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  N.of_graph
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

(* out = dff(dff x): input effects need two observation cycles to reach
   the output, so cycles_per_vector matters. *)
let two_stage () =
  let x = G.input "x" in
  N.of_graph ~outputs:[ ("y", G.dff (G.dff x)) ]

(* The secded catalogue circuit: SECDED-protected register next to an
   unprotected two-stage pipeline over the same 4 data inputs. *)
let secded () =
  let module E = Hydra_circuits.Ecc.Protected (G) in
  let data = List.init 4 (fun i -> G.input (Printf.sprintf "d%d" i)) in
  let dec, single, double = E.secded_reg data in
  let plain = E.plain_pipeline data in
  N.of_graph
    ~outputs:
      (List.mapi (fun i s -> (Printf.sprintf "p%d" i, s)) dec
      @ [ ("single", single); ("double", double) ]
      @ List.mapi (fun i s -> (Printf.sprintf "u%d" i, s)) plain)

let classification_of report fault =
  let v = List.find (fun v -> v.C.fault = fault) report.C.verdicts in
  v.C.classification

let is_detected = function C.Detected _ -> true | C.Latent | C.Masked -> false

let check_cov_equal name (a : Fault.coverage) (b : Fault.coverage) =
  check_int (name ^ ": total") a.Fault.total b.Fault.total;
  check_int (name ^ ": detected") a.Fault.detected b.Fault.detected;
  check_bool (name ^ ": undetected lists") true
    (a.Fault.undetected = b.Fault.undetected)

let suite =
  [
    (* ---- force masks vs netlist rewriting ---- *)
    tc "campaign: stuck-at force matches Fault.inject per cycle" (fun () ->
        let nl = fig1 () in
        let vectors = Hydra_core.Bit.vectors 2 in
        let good = Fault.response nl ~vectors ~cycles_per_vector:1 in
        List.iter
          (fun f ->
            let bad =
              Fault.response (Fault.inject nl f) ~vectors ~cycles_per_vector:1
            in
            let stimulus, cycles = C.stimulus_of_vectors nl vectors in
            let report =
              C.run nl
                ~faults:
                  [ C.Stuck_at { site = f.Fault.site; value = f.Fault.stuck } ]
                ~stimulus ~cycles
            in
            check_bool (Fault.fault_name nl f) (bad <> good)
              (is_detected (List.hd report.C.verdicts).C.classification))
          (Fault.all_faults nl));
    tc "campaign: set_forces rejects fused engines and bad sites" (fun () ->
        let nl = ripple 8 in
        let fused = W.create nl in
        Alcotest.check_raises "fused"
          (Invalid_argument
             "Compiled_wide.set_forces: requires an engine built with \
              ~fuse:false")
          (fun () -> W.set_forces fused [| { W.f_site = 1; force0 = 0; force1 = 2; flip = 0 } |]);
        let sim = W.create ~optimize:false ~relayout:false ~fuse:false nl in
        let n = N.size nl in
        Alcotest.check_raises "site range"
          (Invalid_argument
             (Printf.sprintf
                "Compiled_wide.set_forces: force site %d out of range (netlist \
                 has %d components)"
                n n))
          (fun () ->
            W.set_forces sim
              [| { W.f_site = n; force0 = 0; force1 = 2; flip = 0 } |]);
        Alcotest.check_raises "negative site"
          (Invalid_argument
             (Printf.sprintf
                "Compiled_wide.set_forces: force site -1 out of range (netlist \
                 has %d components)"
                n))
          (fun () ->
            W.set_forces sim
              [| { W.f_site = -1; force0 = 0; force1 = 0; flip = 1 } |]));
    (* ---- coverage bit-identity ---- *)
    tc "campaign: coverage bit-identical to recompile loop (combinational)"
      (fun () ->
        List.iter
          (fun (name, nl, inputs) ->
            let vectors = Fault.random_vectors ~seed:3 ~inputs 24 in
            check_cov_equal name
              (Fault.coverage_recompile nl ~vectors)
              (Fault.coverage nl ~vectors))
          [
            ("fig1", fig1 (), 2);
            (* 124 faults: exercises >61-fault chunking over domains *)
            ("ripple8", ripple 8, 16);
          ]);
    tc "campaign: coverage bit-identical on a sequential circuit, cpv=2"
      (fun () ->
        let nl = two_stage () in
        let vectors = Fault.random_vectors ~seed:5 ~inputs:1 12 in
        check_cov_equal "two_stage"
          (Fault.coverage_recompile nl ~vectors ~cycles_per_vector:2)
          (Fault.coverage nl ~vectors ~cycles_per_vector:2));
    tc "campaign: sharded reuse matches one-shot runs" (fun () ->
        let nl = ripple 8 in
        let sh = Sharded.create ~optimize:false ~relayout:false ~fuse:false nl in
        Fun.protect
          ~finally:(fun () -> Sharded.shutdown sh)
          (fun () ->
            let faults = C.all_stuck_at nl in
            let stimulus = C.random_stimulus ~seed:11 ~cycles:20 nl in
            let once = C.run nl ~faults ~stimulus ~cycles:20 in
            let shared1 = C.run ~sharded:sh nl ~faults ~stimulus ~cycles:20 in
            let shared2 = C.run ~sharded:sh nl ~faults ~stimulus ~cycles:20 in
            check_bool "first shared run" true
              (once.C.verdicts = shared1.C.verdicts);
            check_bool "second shared run (replica state cleared)" true
              (once.C.verdicts = shared2.C.verdicts);
            Alcotest.check_raises "foreign netlist rejected"
              (Invalid_argument
                 "Campaign.run: sharded engine compiled from a different \
                  netlist (build it with ~optimize:false ~relayout:false \
                  ~fuse:false on the campaign netlist)")
              (fun () ->
                ignore
                  (C.run ~sharded:sh (fig1 ())
                     ~faults:[ C.Stuck_at { site = 1; value = true } ]
                     ~stimulus:[] ~cycles:1))));
    (* ---- generate_tests: cycles_per_vector threading (the old bug) ---- *)
    tc "campaign: generate_tests threads cycles_per_vector" (fun () ->
        let nl = two_stage () in
        (* a dff output fault needs 2 cycles of observation per vector to
           show at the output before the next vector overwrites stage 1 *)
        let vectors, cov2 =
          Fault.generate_tests ~seed:1 ~batch:4 ~max_vectors:32
            ~cycles_per_vector:2 nl
        in
        (* the returned coverage is exactly coverage at the same cpv *)
        check_cov_equal "returned = recomputed"
          (Fault.coverage nl ~vectors ~cycles_per_vector:2)
          cov2;
        (* and the old bug is gone: grading at cpv=1 would disagree *)
        let cov1 = Fault.coverage nl ~vectors ~cycles_per_vector:1 in
        check_bool "cpv=2 detects at least as much" true
          (cov2.Fault.detected >= cov1.Fault.detected));
    tc "campaign: generate_tests default grading unchanged" (fun () ->
        (* pre-rewire behaviour at the default cpv, pinned on an adder *)
        let nl = ripple 4 in
        let vectors, cov = Fault.generate_tests ~seed:42 ~target:0.95 nl in
        check_cov_equal "consistent with coverage"
          (Fault.coverage nl ~vectors) cov;
        check_bool "95%+ reached" true (Fault.ratio cov >= 0.95));
    (* ---- satellite: injected netlists validate and lint ---- *)
    tc "campaign: injected netlist validates; lint reports dead-logic"
      (fun () ->
        let nl = fig1 () in
        List.iter
          (fun f ->
            let bad = Fault.inject nl f in
            (match N.validate bad with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("validate: " ^ e));
            (* the faulted site still evaluates but drives nothing *)
            let diags = Lint.run bad in
            check_bool
              (Fault.fault_name nl f ^ ": dead-logic reported")
              true
              (List.exists (fun d -> d.D.rule = "dead-logic") diags))
          (Fault.all_faults nl));
    (* ---- satellite: SEU before reset completes vs power-up X ---- *)
    tc "campaign: SEU inside the power-up X window is not double-counted"
      (fun () ->
        let nl = two_stage () in
        (* establish the X window with the ternary simulator: both dffs
           unknown at power-up, known only after two steps *)
        let xs = Hydra_engine.Xsim.create ~respect_init:false nl in
        Hydra_engine.Xsim.set_input_bool xs "x" true;
        check_int "both dffs X at cycle 0" 2 (Hydra_engine.Xsim.unknown_dffs xs);
        Hydra_engine.Xsim.step xs;
        check_int "stage 2 still X at cycle 1" 1
          (Hydra_engine.Xsim.unknown_dffs xs);
        (* the output dff is the outport's driver *)
        let out_dff = nl.N.fanin.(List.assoc "y" nl.N.outputs).(0) in
        let stimulus = [ ("x", [ true; true; true; true; true; true ]) ] in
        let in_window = C.Seu { site = out_dff; at_cycle = 0 } in
        let after_window = C.Seu { site = out_dff; at_cycle = 3 } in
        let report =
          C.run nl ~faults:[ in_window; after_window ] ~stimulus ~cycles:6
        in
        (* exactly one verdict per scheduled fault — the two-valued
           campaign powers up from declared inits, so an upset inside the
           X window is one ordinary flip, not an extra power-up unknown *)
        check_int "one verdict per fault" 2 report.C.total;
        (match (classification_of report in_window,
                classification_of report after_window) with
        | C.Detected { latency = l0; _ }, C.Detected { latency = l3; _ } ->
          check_int "same latency in and out of the X window" l0 l3
        | _ -> Alcotest.fail "both upsets must be detected"));
    (* ---- classification semantics ---- *)
    tc "campaign: latent vs masked split on an unread register" (fun () ->
        (* y = dff(x), plus a self-holding register that never reaches y *)
        let x = G.input "x" in
        let dead = G.feedback (fun q -> G.dff q) in
        let live = G.dff x in
        (* keep [dead] in the netlist by routing it through an and with
           constant 0: y = live or (dead and 0) = live *)
        let y = G.or2 live (G.and2 dead G.zero) in
        let nl = N.of_graph ~outputs:[ ("y", y) ] in
        let dffs = C.dff_sites nl in
        check_int "two dffs" 2 (List.length dffs);
        let stimulus = [ ("x", [ true; true; false; true ]) ] in
        let faults = C.all_seu ~at_cycle:1 nl in
        let report = C.run nl ~faults ~stimulus ~cycles:4 in
        (* the self-holding dff keeps its upset forever but never reaches
           y: latent.  Upsetting the live dff shows at y the same cycle:
           detected. *)
        let classes =
          List.map (fun v -> C.class_string v.C.classification) report.C.verdicts
        in
        check_bool "one latent, one detected" true
          (List.sort compare classes = [ "detected"; "latent" ]));
    tc "campaign: SEU scheduled past the window is masked" (fun () ->
        let nl = two_stage () in
        let dff = List.hd (C.dff_sites nl) in
        let report =
          C.run nl
            ~faults:[ C.Seu { site = dff; at_cycle = 50 } ]
            ~stimulus:[ ("x", [ true; true ]) ]
            ~cycles:2
        in
        check_string "masked" "masked"
          (C.class_string (List.hd report.C.verdicts).C.classification));
    (* ---- intermittent model ---- *)
    tc "campaign: intermittent rate 1.0 detects, rate 0.0 masks" (fun () ->
        let nl = fig1 () in
        (* site 1 is the inv gate (inport a = 0) *)
        let stimulus, cycles =
          C.stimulus_of_vectors nl (Hydra_core.Bit.vectors 2)
        in
        let r1 =
          C.run nl
            ~faults:[ C.Intermittent { site = 1; rate = 1.0; seed = 9 } ]
            ~stimulus ~cycles
        in
        check_bool "always flipping is detected" true
          (is_detected (List.hd r1.C.verdicts).C.classification);
        let r0 =
          C.run nl
            ~faults:[ C.Intermittent { site = 1; rate = 0.0; seed = 9 } ]
            ~stimulus ~cycles
        in
        check_string "never flipping is masked" "masked"
          (C.class_string (List.hd r0.C.verdicts).C.classification));
    tc "campaign: intermittent verdict independent of chunk placement"
      (fun () ->
        let nl = ripple 8 in
        let stimulus = C.random_stimulus ~seed:2 ~cycles:16 nl in
        let im = C.Intermittent { site = 20; rate = 0.5; seed = 33 } in
        let alone =
          (List.hd (C.run nl ~faults:[ im ] ~stimulus ~cycles:16).C.verdicts)
            .C.classification
        in
        (* same fault rides in the second chunk of a 124-fault campaign *)
        let packed = C.all_stuck_at nl @ [ im ] in
        let big = C.run nl ~faults:packed ~stimulus ~cycles:16 in
        let last = List.nth big.C.verdicts (big.C.total - 1) in
        check_string "same classification" (C.class_string alone)
          (C.class_string last.C.classification));
    (* ---- replay ---- *)
    tc "campaign: replay reproduces every verdict" (fun () ->
        let nl = ripple 4 in
        let stimulus = C.random_stimulus ~seed:21 ~cycles:12 nl in
        let report =
          C.run nl ~faults:(C.all_stuck_at nl) ~stimulus ~cycles:12
        in
        List.iter
          (fun v ->
            let again = C.replay report v.C.fault in
            check_bool (v.C.name ^ " replays identically") true
              (again.C.classification = v.C.classification))
          report.C.verdicts);
    (* ---- ECC graceful degradation (the acceptance demo) ---- *)
    tc "campaign: SECDED masks every codeword SEU, bare pipeline diverges"
      (fun () ->
        let nl = secded () in
        let stimulus = C.random_stimulus ~seed:17 ~cycles:8 nl in
        let report =
          C.run nl
            ~status_outputs:[ "single"; "double" ]
            ~faults:(C.all_seu ~at_cycle:3 nl)
            ~stimulus ~cycles:8
        in
        (* 8 codeword dffs + 8 pipeline dffs *)
        check_int "16 dffs swept" 16 report.C.total;
        let masked, detected =
          List.partition
            (fun v -> v.C.classification = C.Masked)
            report.C.verdicts
        in
        check_int "codeword upsets all masked" 8 (List.length masked);
        check_int "pipeline upsets all detected" 8 (List.length detected);
        List.iter
          (fun v ->
            check_bool (v.C.name ^ ": error_detected asserted") true
              (List.assoc "single" v.C.status);
            check_bool (v.C.name ^ ": not a double error") false
              (List.assoc "double" v.C.status))
          masked;
        let latencies =
          List.filter_map
            (fun v ->
              match v.C.classification with
              | C.Detected { latency; output; _ } ->
                (* divergence must surface on the unprotected copy *)
                check_bool (v.C.name ^ " via u output") true
                  (String.length output > 0 && output.[0] = 'u');
                Some latency
              | _ -> None)
            detected
        in
        (* stage-2 upsets show the same cycle, stage-1 one cycle later *)
        check_int_list "latencies 0 and 1, four each" [ 0; 0; 0; 0; 1; 1; 1; 1 ]
          (List.sort compare latencies));
    (* ---- CPU campaign against the golden execution ---- *)
    tc "campaign: program_stimulus reproduces run_structural's halt cycle"
      (fun () ->
        let module Asm = Hydra_cpu.Asm in
        let module Driver = Hydra_cpu.Driver in
        let program =
          Asm.assemble
            "  ldval R1,3[R0]\n\
            \  ldval R2,4[R0]\n\
            \  add R3,R1,R2\n\
            \  store R3,result[R0]\n\
            \  halt\n\
             result: data 0\n"
        in
        let res = Driver.run_structural ~mem_bits:6 program in
        check_bool "reference run halts" true res.Driver.halted;
        let stimulus, cycles =
          Driver.program_stimulus ~mem_bits:6 ~max_cycles:200 program
        in
        let nl = Driver.system_netlist ~mem_bits:6 () in
        let sim = W.create ~optimize:false ~relayout:false ~fuse:false nl in
        let first_halt = ref (-1) in
        List.iteri
          (fun cycle _ ->
            if !first_halt < 0 && cycle < cycles then begin
              List.iter
                (fun (port, bits) ->
                  W.set_input_bool sim port
                    (match List.nth_opt bits cycle with
                    | Some b -> b
                    | None -> false))
                stimulus;
              W.settle sim;
              if W.output_lane sim "halted" 0 then first_halt := cycle;
              W.tick sim
            end)
          (List.init cycles Fun.id);
        check_int "halt cycle = run_structural cycles + program length"
          (res.Driver.cycles + List.length program)
          !first_halt);
    tc "campaign: CPU SEUs — pc upset detected, cold memory cell latent"
      (fun () ->
        let module Asm = Hydra_cpu.Asm in
        let module Driver = Hydra_cpu.Driver in
        let program =
          Asm.assemble
            "  ldval R1,0[R0]\n\
             loop: ldval R2,1[R0]\n\
            \  add R1,R1,R2\n\
            \  cmpeq R3,R1,R0\n\
            \  jumpf R3,loop2[R0]\n\
             loop2: cmpeq R3,R1,R0\n\
            \  halt\n"
        in
        let len = List.length program in
        let res = Driver.run_structural ~mem_bits:6 program in
        check_bool "golden halts" true res.Driver.halted;
        let stimulus, cycles =
          Driver.program_stimulus ~mem_bits:6 ~max_cycles:100 program
        in
        let nl = Driver.system_netlist ~mem_bits:6 () in
        (* inject while the program is executing *)
        let at_cycle = len + 2 in
        check_bool "injection before halt" true
          (at_cycle < len + res.Driver.cycles);
        (* the dff driving the pc0 outport is a pc register bit *)
        let pc0 = nl.N.fanin.(List.assoc "pc0" nl.N.outputs).(0) in
        check_bool "pc0 is dff-driven"
          (match nl.N.components.(pc0) with N.Dffc _ -> true | _ -> false)
          true;
        let faults = [ C.Seu { site = pc0; at_cycle } ] in
        let report = C.run nl ~faults ~stimulus ~cycles in
        (match (List.hd report.C.verdicts).C.classification with
        | C.Detected { latency; output; _ } ->
          check_int "pc divergence is immediate" 0 latency;
          check_string "seen on the pc outputs" "pc0" output
        | c ->
          Alcotest.fail ("pc upset should be detected, got " ^ C.class_string c));
        (* memory cells beyond the program are loaded by nothing, read by
           nothing: an upset there persists silently *)
        let sample_dffs =
          (* the structural RAM dominates the dff population; sample a
             spread and require some latent verdicts *)
          let all = Array.of_list (C.dff_sites nl) in
          List.init 24 (fun i ->
              C.Seu
                {
                  site = all.(Array.length all - 1 - (i * 7));
                  at_cycle;
                })
        in
        let r2 = C.run nl ~faults:sample_dffs ~stimulus ~cycles in
        check_bool "some upsets stay latent" true (r2.C.latent > 0));
    (* ---- renderers ---- *)
    tc "campaign: JSON report shape is pinned" (fun () ->
        let x = G.input "x" in
        let nl = N.of_graph ~outputs:[ ("y", G.dff x) ] in
        let faults =
          [ C.Stuck_at { site = 1; value = true }; C.Seu { site = 1; at_cycle = 1 } ]
        in
        let stimulus = [ ("x", [ false; false; true ]) ] in
        let report = C.run nl ~faults ~stimulus ~cycles:3 in
        check_string "json"
          "{\"version\":1,\"total\":2,\"detected\":2,\"latent\":0,\"masked\":0,\"cycles\":3,\"verdicts\":[{\"name\":\"dff#1 stuck-at-1\",\"model\":\"stuck_at\",\"site\":1,\"value\":1,\"class\":\"detected\",\"latency\":0,\"cycle\":0,\"output\":\"y\"},{\"name\":\"dff#1 seu@1\",\"model\":\"seu\",\"site\":1,\"at_cycle\":1,\"class\":\"detected\",\"latency\":0,\"cycle\":1,\"output\":\"y\"}]}"
          (C.to_json report);
        check_string "summary"
          "fault campaign: 2 faults over 3 cycles: 2 detected (100.0%), 0 \
           latent, 0 masked"
          (C.summary_string report));
    tc "campaign: run validates fault descriptors" (fun () ->
        let nl = fig1 () in
        Alcotest.check_raises "seu on a gate"
          (Invalid_argument "Campaign.run: SEU site 1 is not a dff") (fun () ->
            ignore
              (C.run nl
                 ~faults:[ C.Seu { site = 1; at_cycle = 0 } ]
                 ~stimulus:[] ~cycles:1));
        Alcotest.check_raises "rate out of range"
          (Invalid_argument "Campaign.run: intermittent rate outside [0,1]")
          (fun () ->
            ignore
              (C.run nl
                 ~faults:[ C.Intermittent { site = 1; rate = 1.5; seed = 0 } ]
                 ~stimulus:[] ~cycles:1));
        Alcotest.check_raises "unknown stimulus port"
          (Invalid_argument "Campaign.run: stimulus for unknown input zz")
          (fun () ->
            ignore
              (C.run nl
                 ~faults:[ C.Stuck_at { site = 1; value = true } ]
                 ~stimulus:[ ("zz", [ true ]) ]
                 ~cycles:1)));
    (* ---- the slab-backed campaign: more than 61 faults per pass ---- *)
    tc "campaign: slab engine verdicts = wide engine verdicts" (fun () ->
        let nl = secded () in
        let stimulus = C.random_stimulus ~seed:11 ~cycles:24 nl in
        (* a mixed fault list well past one wide chunk: every stuck-at,
           every SEU, and a few intermittents *)
        let faults =
          C.all_stuck_at nl
          @ C.all_seu ~at_cycle:3 nl
          @ List.map
              (fun (site, seed) -> C.Intermittent { site; rate = 0.4; seed })
              [ (1, 7); (3, 8); (5, 9) ]
        in
        check_bool "more than one wide chunk" true (List.length faults > 61);
        let wide =
          C.run ~status_outputs:[ "single"; "double" ] nl ~faults ~stimulus
            ~cycles:24
        in
        List.iter
          (fun k ->
            let slab =
              C.run ~engine:(`Slab k)
                ~status_outputs:[ "single"; "double" ] nl ~faults ~stimulus
                ~cycles:24
            in
            check_int (Printf.sprintf "k=%d detected" k) wide.C.detected
              slab.C.detected;
            check_bool
              (Printf.sprintf "k=%d verdicts bit-identical" k)
              true
              (wide.C.verdicts = slab.C.verdicts))
          [ 1; 2; 4 ];
        (* cluster gating composes with the campaign's forces: same
           verdicts, bit for bit *)
        let gated =
          C.run ~engine:(`Slab 2) ~gating:true
            ~status_outputs:[ "single"; "double" ] nl ~faults ~stimulus
            ~cycles:24
        in
        check_bool "gated verdicts bit-identical" true
          (wide.C.verdicts = gated.C.verdicts);
        (* k=4 fits the whole list in a single engine pass *)
        check_bool "fits one slab pass" true (List.length faults <= (62 * 4) - 1));
    tc "campaign: slab engine option validation" (fun () ->
        let nl = fig1 () in
        let faults = [ C.Stuck_at { site = 1; value = true } ] in
        Alcotest.check_raises "k < 1"
          (Invalid_argument "Campaign.run: slab k must be >= 1") (fun () ->
            ignore (C.run ~engine:(`Slab 0) nl ~faults ~stimulus:[] ~cycles:1));
        Alcotest.check_raises "gating on wide"
          (Invalid_argument "Campaign.run: ?gating requires ~engine:(`Slab k)")
          (fun () ->
            ignore (C.run ~gating:true nl ~faults ~stimulus:[] ~cycles:1));
        let sh =
          Sharded.create ~optimize:false ~relayout:false ~fuse:false nl
        in
        Alcotest.check_raises "sharded + slab"
          (Invalid_argument
             "Campaign.run: ?sharded reuses a wide engine; pass ?domains with \
              ~engine:(`Slab k) instead")
          (fun () ->
            ignore
              (C.run ~sharded:sh ~engine:(`Slab 2) nl ~faults ~stimulus:[]
                 ~cycles:1));
        Sharded.shutdown sh);
  ]
