(* Shared helpers for the test suites. *)

module Bit = Hydra_core.Bit
module Bitvec = Hydra_core.Bitvec
module Patterns = Hydra_core.Patterns

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool_list = Alcotest.(check (list bool))
let check_int_list = Alcotest.(check (list int))
let check_rows = Alcotest.(check (list (list bool)))

let tc name f = Alcotest.test_case name `Quick f

let qc ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Generators *)
let gen_width = QCheck2.Gen.int_range 1 12
let gen_word width = QCheck2.Gen.list_size (QCheck2.Gen.return width) QCheck2.Gen.bool

let gen_sized_word =
  QCheck2.Gen.(gen_width >>= fun w -> pair (return w) (gen_word w))

(* Evaluate a Bit-semantics word circuit on integer operands. *)
let eval2 ~width f x y =
  let xs = Bitvec.of_int ~width x and ys = Bitvec.of_int ~width y in
  Bitvec.to_int (f xs ys)

let mask width = (1 lsl width) - 1

(* A tiny JSON well-formedness scanner: enough to check the --json and
   --sarif contracts parse (balanced structure, legal strings/numbers),
   without pulling a JSON library into the build. *)
let json_parses (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('0' .. '9' | '-') -> number ()
      | Some 't' -> keyword "true"
      | Some 'f' -> keyword "false"
      | Some 'n' -> keyword "null"
      | _ -> fail := true
    end
  and keyword k =
    String.iter (fun c -> expect c) k
  and number () =
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance ()
      | _ -> continue := false
    done
  and string_lit () =
    expect '"';
    let continue = ref true in
    while !continue && not !fail do
      match peek () with
      | Some '"' -> advance (); continue := false
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail := true
          done
        | _ -> fail := true)
      | Some _ -> advance ()
      | None -> fail := true
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' -> advance (); continue := false
        | _ -> fail := true
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' -> advance (); continue := false
        | _ -> fail := true
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n
