(* Tests for the multi-word slab engine (Slab): every word of a slab must
   behave as an independent 62-lane wide engine — on random dff-heavy
   circuits, across the three inner-loop flavors (k = 1, generic k,
   4-unrolled k), with and without activity gating — and the slab-only
   surfaces (word-indexed I/O, global lanes, K-word forces, gated
   pokes) must hold their contracts. *)

open Util
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Packed = Hydra_core.Packed
module Compiled = Hydra_engine.Compiled
module Wide = Hydra_engine.Compiled_wide
module Slab = Hydra_engine.Slab
module Kernel = Hydra_engine.Kernel
module Simd = Hydra_engine.Simd
module Sharded = Hydra_engine.Sharded
module Testbench = Hydra_engine.Testbench
module Equiv = Hydra_verify.Equiv

(* k values covering each settle flavor: 1 (wide-verbatim loops),
   2 and 3 (generic), 4 and 8 (4-unrolled) *)
let ks = [ 1; 2; 3; 4; 8 ]

let random_word st =
  Random.State.bits st
  lor (Random.State.bits st lsl 30)
  lor (Random.State.bits st lsl 60)
  land Wide.lane_mask

(* Output list of the compiled netlist *)
let outputs_of (nl : N.t) = nl.N.outputs

(* Drive every word of a slab and one wide engine per word with the same
   per-word random streams; all outputs must agree word-for-word each
   cycle. *)
let words_independent ~k ~gating nodes =
  let nl = Test_wide.netlist_of nodes in
  let slab = Slab.create ~k ~gating nl in
  let wides = Array.init k (fun _ -> Wide.create nl) in
  let st = Random.State.make [| 0x51ab; k; Bool.to_int gating |] in
  let ok = ref true in
  for _cycle = 0 to 8 do
    List.iter
      (fun name ->
        for w = 0 to k - 1 do
          let v = random_word st in
          Slab.set_input_word slab name w v;
          Wide.set_input wides.(w) name v
        done)
      [ "a"; "b"; "c" ];
    Slab.settle slab;
    Array.iter Wide.settle wides;
    List.iter
      (fun (out, _) ->
        for w = 0 to k - 1 do
          if Slab.output_word slab out w <> Wide.output wides.(w) out then
            ok := false
        done)
      (outputs_of (Slab.netlist slab));
    Slab.tick slab;
    Array.iter Wide.tick wides
  done;
  !ok

let suite =
  [
    qc ~count:25 "slab words = independent wide engines (all k, gating)"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        List.for_all
          (fun k ->
            words_independent ~k ~gating:false nodes
            && words_independent ~k ~gating:true nodes)
          ks);
    qc ~count:25 "run_packed = wide run_packed (broadcast words)"
      (Test_wide.gen_case Test_wide.dff_heavy_ops)
      (fun (nodes, lane_rows) ->
        let nl = Test_wide.netlist_of nodes in
        let cycles = List.length (List.hd lane_rows) in
        let inputs =
          List.mapi
            (fun j name ->
              ( name,
                List.init cycles (fun t ->
                    Packed.pack
                      (List.map
                         (fun rows -> List.nth (List.nth rows t) j)
                         lane_rows)) ))
            [ "a"; "b"; "c" ]
        in
        let expect = Wide.run_packed (Wide.create nl) ~inputs ~cycles in
        List.for_all
          (fun k ->
            Slab.run_packed (Slab.create ~k nl) ~inputs ~cycles = expect
            && Slab.run_packed (Slab.create ~k ~gating:true nl) ~inputs ~cycles
               = expect)
          [ 1; 3; 4 ]);
    tc "run_vectors = scalar settle, multi-pass" (fun () ->
        let module A = Hydra_circuits.Arith.Make (G) in
        let xs = List.init 5 (fun i -> G.input (Printf.sprintf "x%d" i)) in
        let ys = List.init 5 (fun i -> G.input (Printf.sprintf "y%d" i)) in
        let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
        let nl =
          N.extract ~inputs:(xs @ ys)
            ~outputs:
              (("cout", cout)
              :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)
        in
        let st = Random.State.make [| 0xbeef |] in
        (* 300 vectors: > 2 passes at k = 2 (124 lanes/pass) *)
        let vectors =
          Array.init 300 (fun _ -> Array.init 10 (fun _ -> Random.State.bool st))
        in
        let scalar = Compiled.create nl in
        let in_names = List.map fst nl.N.inputs in
        let expect =
          Array.map
            (fun v ->
              Compiled.reset scalar;
              List.iteri
                (fun j name -> Compiled.set_input scalar name v.(j))
                in_names;
              Compiled.settle scalar;
              Array.of_list (List.map snd (Compiled.outputs scalar)))
            vectors
        in
        List.iter
          (fun (k, gating) ->
            let slab = Slab.create ~k ~gating nl in
            let got = Slab.run_vectors slab vectors in
            Array.iteri
              (fun i row ->
                if row <> expect.(i) then
                  Alcotest.failf "vector %d diverges (k=%d gating=%b)" i k
                    gating)
              got)
          [ (1, false); (2, false); (4, false); (2, true); (4, true) ]);
    tc "gated settle is incremental: quiescent cycles change nothing"
      (fun () ->
        let nl = Test_wide.cpu_netlist () in
        let program = Hydra_cpu.Asm.assemble Test_wide.sum_loop_src in
        let cycles = List.length program + 420 in
        let schedule = Test_wide.cpu_schedule program cycles in
        let gated = Slab.create ~k:2 ~gating:true nl in
        let plain = Slab.create ~k:2 nl in
        List.iteri
          (fun cyc row ->
            List.iter
              (fun (port, v) ->
                Slab.set_input_bool gated port v;
                Slab.set_input_bool plain port v)
              row;
            Slab.settle gated;
            Slab.settle plain;
            List.iter
              (fun (out, _) ->
                for w = 0 to 1 do
                  if
                    Slab.output_word gated out w <> Slab.output_word plain out w
                  then Alcotest.failf "cycle %d, output %s, word %d" cyc out w
                done)
              (outputs_of (Slab.netlist gated));
            Slab.tick gated;
            Slab.tick plain)
          schedule;
        (* both CPUs halted on every lane *)
        check_int "halted (gated)" Wide.lane_mask
          (Slab.output_word gated "halted" 0);
        check_int "halted word 1" Wide.lane_mask
          (Slab.output_word gated "halted" 1));
    tc "repeated gated settles are stable and cheap-path exact" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl =
          N.extract ~inputs:[ a; b ]
            ~outputs:[ ("q", G.dff (G.xor2 a (G.and2 a b))) ]
        in
        let s = Slab.create ~k:4 ~gating:true nl in
        Slab.set_input_word s "a" 2 0x3ff;
        Slab.set_input_word s "b" 2 0x0f0;
        Slab.settle s;
        let snap = Array.init 4 (fun w -> Slab.peek_word s 0 w) in
        (* nothing mutated: further settles must not disturb any word *)
        Slab.settle s;
        Slab.settle s;
        Array.iteri
          (fun w v -> check_int (Printf.sprintf "word %d" w) v (Slab.peek_word s 0 w))
          snap);
    tc "global lanes: set_input_lane / output_lane address word l/62"
      (fun () ->
        let a = G.input "a" in
        let nl = N.extract ~inputs:[ a ] ~outputs:[ ("y", G.inv a) ] in
        let s = Slab.create ~k:3 nl in
        let lane = (2 * Slab.lanes_per_word) + 17 in
        Slab.set_input_lane s "a" lane true;
        Slab.settle s;
        check_bool "set lane reads back inverted" false
          (Slab.output_lane s "y" lane);
        check_bool "neighbour lane untouched" true
          (Slab.output_lane s "y" (lane + 1));
        check_int "word 2 carries bit 17" (1 lsl 17) (Slab.peek_word s 0 2);
        check_int "word 0 unchanged" 0 (Slab.peek_word s 0 0);
        Alcotest.check_raises "lane range"
          (Invalid_argument
             "Slab.set_input_lane: lane 186 out of range (engine has 186 lanes)")
          (fun () -> Slab.set_input_lane s "a" (3 * Slab.lanes_per_word) true));
    tc "gated pokes mark readers: poke -> settle recomputes" (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let nl =
          N.extract ~inputs:[ a; b ] ~outputs:[ ("y", G.xor2 a b) ]
        in
        let s = Slab.create ~k:2 ~gating:true nl in
        let nl' = Slab.netlist s in
        let ai = List.assoc "a" nl'.N.inputs in
        Slab.settle s;
        check_int "all zero" 0 (Slab.output_word s "y" 1);
        Slab.poke_word s ai 1 0x55;
        Slab.settle s;
        check_int "poked word recomputed" 0x55 (Slab.output_word s "y" 1);
        check_int "other word untouched" 0 (Slab.output_word s "y" 0));
    tc "set_forces: rejections and descriptive range error" (fun () ->
        let nl =
          let x = G.input "x" in
          N.extract ~inputs:[ x ]
            ~outputs:[ ("y", G.or2 (G.and2 x (G.inv x)) x) ]
        in
        let zero_force site =
          {
            Slab.f_site = site;
            force0 = [| 0; 0 |];
            force1 = [| 0; 0 |];
            flip = [| 0; 0 |];
          }
        in
        let fused = Slab.create ~k:2 nl in
        Alcotest.check_raises "fused"
          (Invalid_argument
             "Slab.set_forces: requires an engine built with ~fuse:false")
          (fun () -> Slab.set_forces fused [| zero_force 0 |]);
        (* a gated engine accepts forces since the cluster-gating PR *)
        let gated =
          Slab.create ~k:2 ~gating:true ~fuse:false ~relayout:false nl
        in
        Slab.set_forces gated [| zero_force 0 |];
        Slab.clear_forces gated;
        let plain = Slab.create ~k:3 ~fuse:false ~relayout:false nl in
        Alcotest.check_raises "mask arity"
          (Invalid_argument "Slab.set_forces: mask arrays must have k = 3 words")
          (fun () -> Slab.set_forces plain [| zero_force 0 |]);
        let n = N.size nl in
        Alcotest.check_raises "site range"
          (Invalid_argument
             (Printf.sprintf
                "Slab.set_forces: force site %d out of range (netlist has %d \
                 components)"
                n n))
          (fun () ->
            Slab.set_forces plain
              [|
                {
                  Slab.f_site = n;
                  force0 = [| 0; 0; 0 |];
                  force1 = [| 0; 0; 0 |];
                  flip = [| 0; 0; 0 |];
                };
              |]));
    qc ~count:20 "forces are word-selective and match the wide engine"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        let mk_wide () = Wide.create ~relayout:false ~fuse:false nl in
        let slab = Slab.create ~k:2 ~relayout:false ~fuse:false nl in
        let wide_plain = mk_wide () and wide_forced = mk_wide () in
        (* flip a mid-netlist site in word 1 only *)
        let site = N.size nl / 2 in
        let mask = 0x2a5 in
        Slab.set_forces slab
          [|
            {
              Slab.f_site = site;
              force0 = [| 0; 0 |];
              force1 = [| 0; 0 |];
              flip = [| 0; mask |];
            };
          |];
        Wide.set_forces wide_forced
          [| { Wide.f_site = site; force0 = 0; force1 = 0; flip = mask } |];
        let st = Random.State.make [| 0xf0 |] in
        let ok = ref true in
        for _ = 0 to 5 do
          List.iter
            (fun name ->
              let v = random_word st in
              Slab.set_input_word slab name 0 v;
              Slab.set_input_word slab name 1 v;
              Wide.set_input wide_plain name v;
              Wide.set_input wide_forced name v)
            [ "a"; "b"; "c" ];
          Slab.settle slab;
          Wide.settle wide_plain;
          Wide.settle wide_forced;
          List.iter
            (fun (out, _) ->
              if
                Slab.output_word slab out 0 <> Wide.output wide_plain out
                || Slab.output_word slab out 1 <> Wide.output wide_forced out
              then ok := false)
            (outputs_of (Slab.netlist slab));
          Slab.tick slab;
          Wide.tick wide_plain;
          Wide.tick wide_forced
        done;
        !ok);
    qc ~count:15
      "forces compose with gating: install, mutate in place, clear — all heal"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        (* tiny blocks so the force sites and their consumers span several
           blocks even on a small random netlist *)
        let tuning = { Kernel.default_tuning with Kernel.block_gates = 2 } in
        let mk gating =
          Slab.create ~k:2 ~gating ~tuning ~fuse:false ~relayout:false nl
        in
        let gated = mk true and plain = mk false in
        let force () =
          {
            Slab.f_site = N.size nl / 2;
            force0 = [| 0; 0 |];
            force1 = [| 0; 0 |];
            flip = [| 0; 0x155 |];
          }
        in
        let gf = force () and pf = force () in
        let st = Random.State.make [| 0xf06 |] in
        let ok = ref true in
        let phase ~toggling cycles =
          for _ = 1 to cycles do
            List.iter
              (fun name ->
                for w = 0 to 1 do
                  let v = if toggling then random_word st else 0 in
                  Slab.set_input_word gated name w v;
                  Slab.set_input_word plain name w v
                done)
              [ "a"; "b"; "c" ];
            Slab.settle gated;
            Slab.settle plain;
            List.iter
              (fun (out, _) ->
                for w = 0 to 1 do
                  if Slab.output_word gated out w <> Slab.output_word plain out w
                  then ok := false
                done)
              (outputs_of (Slab.netlist gated));
            Slab.tick gated;
            Slab.tick plain
          done
        in
        phase ~toggling:true 10;
        Slab.set_forces gated [| gf |];
        Slab.set_forces plain [| pf |];
        phase ~toggling:true 10;
        (* quiescent inputs with a live force: gating must keep the
           forced cone correct while skipping the rest *)
        phase ~toggling:false 12;
        (* in-place mask re-seed (the Campaign intermittent-fault path):
           no set_forces call, detection alone must propagate it *)
        gf.Slab.flip.(0) <- 0x2a;
        pf.Slab.flip.(0) <- 0x2a;
        phase ~toggling:false 12;
        (* cleared forces must heal even while inputs are held *)
        Slab.clear_forces gated;
        Slab.clear_forces plain;
        phase ~toggling:false 12;
        phase ~toggling:true 8;
        !ok);
    qc ~count:15 "tiny rank blocks are value-transparent (tuning sweep)"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        List.for_all
          (fun tuning ->
            Equiv.seq_equivalent
              (Equiv.slab_vs_wide ~passes:1 ~cycles:8 ~k:2 ~tuning nl)
            && Equiv.seq_equivalent
                 (Equiv.slab_vs_wide ~passes:1 ~cycles:8 ~k:2 ~gating:true
                    ~tuning nl))
          [
            { Kernel.default_tuning with Kernel.block_gates = 1 };
            { Kernel.default_tuning with Kernel.block_gates = 3 };
            { Kernel.default_tuning with Kernel.block_words = 16 };
            {
              Kernel.block_words = 64;
              block_gates = 0;
              hot_after = 1;
              probe_period = 2;
            };
          ]);
    qc ~count:15 "simd kernels = pure OCaml kernels (all k, gating)"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        List.for_all
          (fun k ->
            Equiv.seq_equivalent
              (Equiv.slab_vs_wide ~passes:1 ~cycles:8 ~k ~simd:true nl)
            && Equiv.seq_equivalent
                 (Equiv.slab_vs_wide ~passes:1 ~cycles:8 ~k ~simd:true
                    ~gating:true nl))
          (* 1 and 3: scalar-tail-only at any vector width; 8: full
             vector bodies *)
          [ 1; 3; 8 ]);
    tc "Kernel tuning specs: parse, merge, print, reject" (fun () ->
        let t = Kernel.tuning_of_spec "block-words=512,hot-after=2" in
        check_int "block words" 512 t.Kernel.block_words;
        check_int "hot after" 2 t.Kernel.hot_after;
        check_int "probe period inherited"
          Kernel.default_tuning.Kernel.probe_period t.Kernel.probe_period;
        let t2 = Kernel.tuning_of_spec ~base:t "block_gates=7" in
        check_int "underscores normalize" 7 t2.Kernel.block_gates;
        check_int "base carried through" 512 t2.Kernel.block_words;
        check_bool "spec roundtrip" true
          (Kernel.tuning_of_spec (Kernel.tuning_to_spec t2) = t2);
        check_int "derived gates per block honors override" 7
          (Kernel.gates_per_block ~k:4 t2);
        check_int "derived gates per block from block words" 42
          (Kernel.gates_per_block ~k:4
             { t2 with Kernel.block_gates = 0; block_words = 512 });
        Alcotest.check_raises "unknown key"
          (Invalid_argument
             "Kernel.tuning_of_spec: unknown key \"block\" (expected \
              block-words, block-gates, hot-after or probe-period)")
          (fun () -> ignore (Kernel.tuning_of_spec "block=3"));
        Alcotest.check_raises "non-integer"
          (Invalid_argument
             "Kernel.tuning_of_spec: value of hot-after must be an integer, \
              got \"soon\"")
          (fun () -> ignore (Kernel.tuning_of_spec "hot-after=soon"));
        Alcotest.check_raises "missing ="
          (Invalid_argument
             "Kernel.tuning_of_spec: expected key=int, got \"3072\"")
          (fun () -> ignore (Kernel.tuning_of_spec "3072"));
        Alcotest.check_raises "range check"
          (Invalid_argument "Kernel: tuning.block_words must be >= 1")
          (fun () -> ignore (Kernel.tuning_of_spec "block-words=0"));
        (* the engine handle spells the whole flavor out *)
        let (module E) =
          Slab.engine ~gating:true ~simd:true
            ~tuning:{ Kernel.default_tuning with Kernel.block_gates = 9 }
            4
        in
        check_string "engine name"
          "slab(k=4,gated,simd,block-words=3072,block-gates=9,hot-after=4,probe-period=128)"
          E.name;
        let (module D) = Slab.engine ~tuning:Kernel.default_tuning 2 in
        check_string "default tuning elided" "slab(k=2)" D.name);
    tc "word index range errors are descriptive" (fun () ->
        let a = G.input "a" in
        let nl = N.extract ~inputs:[ a ] ~outputs:[ ("y", G.inv a) ] in
        let s = Slab.create ~k:2 nl in
        Alcotest.check_raises "set_input_word"
          (Invalid_argument
             "Slab.set_input_word: word index 2 out of range (engine has 2 \
              words)")
          (fun () -> Slab.set_input_word s "a" 2 0);
        Alcotest.check_raises "peek_word"
          (Invalid_argument
             "Slab.peek_word: word index -1 out of range (engine has 2 words)")
          (fun () -> ignore (Slab.peek_word s 0 (-1)));
        let w = Wide.create nl in
        Alcotest.check_raises "wide word alias"
          (Invalid_argument
             "Compiled_wide.peek_word: word index 1 out of range (engine has \
              1 word)")
          (fun () -> ignore (Wide.peek_word w 0 1)));
    (* ---- the engine-polymorphic entry points, slab-instantiated ---- *)
    tc "Slab_sharded: run_batches / run_vectors / step_batches match wide"
      (fun () ->
        let nl =
          Test_wide.netlist_of
            [ (Test_wide.Rand, 0, 1); (Test_wide.Rdff, 3, 3);
              (Test_wide.Rxor, 2, 4); (Test_wide.Rdff, 5, 5);
              (Test_wide.Ror, 4, 6) ]
        in
        let module SSh = Sharded.Slab_sharded in
        let st = Random.State.make [| 0x51ab5 |] in
        let batches =
          Array.init 7 (fun _ ->
              List.map
                (fun name ->
                  (name, List.init 9 (fun _ -> random_word st)))
                [ "a"; "b"; "c" ])
        in
        let wsh = Sharded.create ~domains:2 nl in
        let ssh = SSh.of_base ~domains:2 (Slab.create ~k:3 nl) in
        check_int "lanes" (3 * Wide.lanes) (SSh.lanes ssh);
        let wb = Sharded.run_batches wsh ~batches ~cycles:9 in
        let sb = SSh.run_batches ssh ~batches ~cycles:9 in
        check_bool "run_batches agree" true (wb = sb);
        let vectors =
          Array.init 200 (fun _ -> Array.init 3 (fun _ -> Random.State.bool st))
        in
        check_bool "run_vectors agree" true
          (Sharded.run_vectors wsh vectors = SSh.run_vectors ssh vectors);
        (* step_batches pokes/peeks word 0, so the checksum is engine
           independent *)
        check_int "step_batches checksum"
          (Sharded.step_batches wsh ~batches:12 ~cycles:20)
          (SSh.step_batches ssh ~batches:12 ~cycles:20);
        Sharded.shutdown wsh;
        SSh.shutdown ssh);
    tc "testbench run_batched ?engine slab = default engine" (fun () ->
        let x = G.input "x" and en = G.input "en" in
        let q = G.dff (G.xor2 x (G.and2 en (G.input "y"))) in
        let nl =
          N.extract ~inputs:[ x; en; G.input "y" ] ~outputs:[ ("q", q) ]
        in
        let case k =
          let stimuli =
            [
              Testbench.Bit_fun ("x", fun t -> (t + k) mod 3 = 0);
              Testbench.Bit_values ("en", [ k mod 2 = 0; true ]);
              Testbench.Bit_fun ("y", fun t -> t mod 2 = k mod 2);
            ]
          in
          let expectations =
            if k = 70 then
              [ Testbench.Expect_bit { cycle = 0; port = "q"; value = true } ]
            else []
          in
          (stimuli, expectations)
        in
        (* 300 cases: several chunks at 62 lanes, two at 62*4 *)
        let cases = Array.init 300 case in
        let reference = Testbench.run_batched ~cycles:8 ~cases nl in
        List.iter
          (fun (k, gating) ->
            let got =
              Testbench.run_batched
                ~engine:(Slab.engine ~gating k)
                ~cycles:8 ~cases nl
            in
            Array.iteri
              (fun i r ->
                if r <> reference.(i) then
                  Alcotest.failf "case %d differs (k=%d gating=%b)" i k gating)
              got)
          [ (1, false); (4, false); (3, true) ];
        check_bool "case 70 failed" false (Testbench.passed reference.(70));
        let sh = Sharded.create nl in
        Alcotest.check_raises "sharded + engine"
          (Invalid_argument
             "Testbench.run_batched: pass either ?sharded or ?engine, not both")
          (fun () ->
            ignore
              (Testbench.run_batched ~sharded:sh ~engine:(Slab.engine 2)
                 ~cycles:1 ~cases nl));
        Sharded.shutdown sh);
    qc ~count:10 "Equiv.slab_vs_wide holds on random netlists (k, gating)"
      (Test_wide.gen_nodes Test_wide.dff_heavy_ops)
      (fun nodes ->
        let nl = Test_wide.netlist_of nodes in
        List.for_all
          (fun k ->
            Equiv.seq_equivalent
              (Equiv.slab_vs_wide ~passes:2 ~cycles:10 ~k nl)
            && Equiv.seq_equivalent
                 (Equiv.slab_vs_wide ~passes:2 ~cycles:10 ~k ~gating:true nl))
          [ 1; 4; 8 ]);
    tc "engine_random_netlists finds a planted mismatch on every word"
      (fun () ->
        let mk invert =
          let a = G.input "a" and b = G.input "b" in
          let q = G.dff (G.xor2 a (G.and2 b (G.dff a))) in
          N.extract ~inputs:[ a; b ]
            ~outputs:[ ("q", (if invert then G.inv q else q)) ]
        in
        (match
           Equiv.engine_random_netlists ~passes:1 ~cycles:4
             (Slab.engine 4) Hydra_engine.Engine_intf.wide (mk false) (mk true)
         with
        | Equiv.Seq_mismatch { output = "q"; cycle = 0; inputs } ->
          check_int "two stimulus streams" 2 (List.length inputs)
        | Equiv.Seq_mismatch _ -> Alcotest.fail "unexpected mismatch shape"
        | Equiv.Seq_equivalent -> Alcotest.fail "mismatch not found");
        (* and the symmetric orientation, wide first *)
        check_bool "wide vs slab" false
          (Equiv.seq_equivalent
             (Equiv.engine_random_netlists ~passes:1 ~cycles:4
                Hydra_engine.Engine_intf.wide (Slab.engine ~gating:true 3)
                (mk false) (mk true))));
    tc "adaptive gating: hot, quiescent and re-activated phases match ungated"
      (fun () ->
        let a = G.input "a" and b = G.input "b" in
        let d1 = G.dff (G.xor2 a b) in
        let d2 = G.dff (G.or2 d1 (G.and2 a (G.inv b))) in
        let nl =
          N.of_graph
            ~outputs:[ ("q", G.xor2 d1 d2); ("r", G.and2 d1 (G.inv d2)) ]
        in
        let k = 4 in
        let gated = Slab.create ~k ~gating:true nl in
        let plain = Slab.create ~k nl in
        let st = Random.State.make [| 0x407 |] in
        (* 90 toggle cycles push ranks hot and across the detect probe,
           40 held cycles drain to a full skip, 90 more re-dirty the hot
           ranks; every output word must match the ungated slab at every
           cycle of every phase *)
        let phase cycles toggling =
          for _ = 1 to cycles do
            List.iter
              (fun name ->
                for w = 0 to k - 1 do
                  let v = if toggling then random_word st else 0 in
                  Slab.set_input_word gated name w v;
                  Slab.set_input_word plain name w v
                done)
              [ "a"; "b" ];
            Slab.settle gated;
            Slab.settle plain;
            List.iter
              (fun (out, _) ->
                for w = 0 to k - 1 do
                  check_int
                    (Printf.sprintf "%s word %d cycle %d" out w
                       (Slab.cycle plain))
                    (Slab.output_word plain out w)
                    (Slab.output_word gated out w)
                done)
              (outputs_of nl);
            Slab.tick gated;
            Slab.tick plain
          done
        in
        phase 90 true;
        phase 40 false;
        phase 90 true);
  ]
