(* Tests for the word-parallel wide engine (Compiled_wide) and its
   surrounding toolkit: every lane of a wide run must agree bit-for-bit
   with a scalar Compiled run and with the stream semantics — on random
   combinational and dff-heavy circuits, under the ?optimize pre-pass,
   and for the full section-6 CPU running a different program instance in
   each lane. *)

open Util
module S = Hydra_core.Stream_sim
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module Packed = Hydra_core.Packed
module Compiled = Hydra_engine.Compiled
module Wide = Hydra_engine.Compiled_wide
module Testbench = Hydra_engine.Testbench
module Equiv = Hydra_verify.Equiv

(* Random synchronous circuits, as in Test_engine: node i is (op, src1,
   src2) with sources indexing into inputs @ earlier nodes. *)
type rop = Rinv | Rand | Ror | Rxor | Rdff

let build (type s) (module X : Hydra_core.Signal_intf.CLOCKED with type t = s)
    ~(inputs : s list) (nodes : (rop * int * int) list) : s list =
  let pool = ref (Array.of_list inputs) in
  List.iter
    (fun (op, s1, s2) ->
      let arr = !pool in
      let a = arr.(s1 mod Array.length arr)
      and b = arr.(s2 mod Array.length arr) in
      let v =
        match op with
        | Rinv -> X.inv a
        | Rand -> X.and2 a b
        | Ror -> X.or2 a b
        | Rxor -> X.xor2 a b
        | Rdff -> X.dff a
      in
      pool := Array.append arr [| v |])
    nodes;
  let arr = !pool in
  let n = Array.length arr in
  List.init (min 4 n) (fun i -> arr.(n - 1 - i))

let gen_nodes ops =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (triple (oneofl ops) (int_bound 1000) (int_bound 1000)))

let all_ops = [ Rinv; Rand; Ror; Rxor; Rdff ]

(* three extra Rdff entries: sequential state dominates *)
let dff_heavy_ops = [ Rinv; Rand; Ror; Rxor; Rdff; Rdff; Rdff; Rdff ]

let lanes_tested = 8

(* per lane, 12 cycles of 3 input bits *)
let gen_lane_rows =
  QCheck2.Gen.(
    list_size (return lanes_tested)
      (list_size (return 12) (list_size (return 3) bool)))

let gen_case ops = QCheck2.Gen.pair (gen_nodes ops) gen_lane_rows

let netlist_of nodes =
  let a = G.input "a" and b = G.input "b" and c = G.input "c" in
  let outs = build (module G) ~inputs:[ a; b; c ] nodes in
  N.extract ~inputs:[ a; b; c ]
    ~outputs:(List.mapi (fun i o -> (Printf.sprintf "o%d" i, o)) outs)

let stream_reference nodes rows =
  S.simulate ~inputs:(Bitvec.columns rows) ~cycles:(List.length rows)
    (fun ins -> build (module S) ~inputs:ins nodes)

let compiled_rows ?optimize nodes rows =
  let nl = netlist_of nodes in
  let cols = Bitvec.columns rows in
  let inputs = List.map2 (fun n vs -> (n, vs)) [ "a"; "b"; "c" ] cols in
  Compiled.(run (create ?optimize nl)) ~inputs ~cycles:(List.length rows)
  |> List.map (List.map snd)

(* Run all [lane_rows] stimulus streams at once in the wide engine (lane l
   carries stream l), return the per-lane output rows. *)
let wide_lane_rows ?optimize nodes lane_rows =
  let nl = netlist_of nodes in
  let cycles = List.length (List.hd lane_rows) in
  let packed_inputs =
    List.mapi
      (fun j name ->
        ( name,
          List.init cycles (fun t ->
              Packed.pack
                (List.map (fun rows -> List.nth (List.nth rows t) j) lane_rows))
        ))
      [ "a"; "b"; "c" ]
  in
  let rows = Wide.(run_packed (create ?optimize nl)) ~inputs:packed_inputs ~cycles in
  List.init (List.length lane_rows) (fun l ->
      List.map (List.map (fun (_, w) -> Packed.lane w l)) rows)

(* The section-6 CPU: sum the integers 1..n, with n patched per lane. *)
let sum_loop_src =
  "  ldval R1,0[R0]\n\
  \  load R2,n[R0]\n\
   loop: cmpeq R3,R2,R0\n\
  \  jumpt R3,done[R0]\n\
  \  add R1,R1,R2\n\
  \  ldval R4,1[R0]\n\
  \  sub R2,R2,R4\n\
  \  jump loop[R0]\n\
   done: store R1,result[R0]\n\
  \  halt\n\
   n: data 6\n\
   result: data 0\n"

let cpu_netlist () =
  let module SysG = Hydra_cpu.System.Make (G) in
  let word n = List.init 16 (fun i -> G.input (Printf.sprintf "%s%d" n i)) in
  let start = G.input "start" and dma = G.input "dma" in
  let da = word "da" and dd = word "dd" in
  let outs =
    SysG.system ~mem_bits:6 { SysG.start; dma; dma_a = da; dma_d = dd }
  in
  N.extract
    ~inputs:([ start; dma ] @ da @ dd)
    ~outputs:
      (("halted", outs.SysG.halted)
      :: List.mapi (fun i s -> (Printf.sprintf "pc%d" i, s)) outs.SysG.dp.SysG.D.pc)

(* The DMA-load / start / run input schedule of Driver.run_structural for
   one program, as (port, value) rows per cycle. *)
let cpu_schedule program cycles =
  let prog = Array.of_list program in
  let len = Array.length prog in
  let word_bits prefix v =
    List.mapi
      (fun i b -> (Printf.sprintf "%s%d" prefix i, b))
      (Bitvec.of_int ~width:16 v)
  in
  List.init cycles (fun t ->
      let dma_active = t < len in
      [ ("start", t = len); ("dma", dma_active) ]
      @ word_bits "da" (if dma_active then t else 0)
      @ word_bits "dd" (if dma_active then prog.(t) else 0))

let suite =
  [
    (* engine agreement on random circuits, every lane at once *)
    qc ~count:40 "wide lanes = compiled = stream semantics"
      (gen_case all_ops)
      (fun (nodes, lane_rows) ->
        let wide = wide_lane_rows nodes lane_rows in
        List.for_all2
          (fun rows wide_rows ->
            let scalar = compiled_rows nodes rows in
            let stream = stream_reference nodes rows in
            wide_rows = scalar && wide_rows = stream)
          lane_rows wide);
    qc ~count:40 "wide lanes = compiled on dff-heavy circuits"
      (gen_case dff_heavy_ops)
      (fun (nodes, lane_rows) ->
        List.for_all2
          (fun rows wide_rows -> wide_rows = compiled_rows nodes rows)
          lane_rows
          (wide_lane_rows nodes lane_rows));
    (* the ?optimize pre-pass must be observation-equivalent *)
    qc ~count:40 "compiled ~optimize = compiled" (gen_case all_ops)
      (fun (nodes, lane_rows) ->
        let rows = List.hd lane_rows in
        compiled_rows ~optimize:true nodes rows = compiled_rows nodes rows);
    qc ~count:40 "wide ~optimize lanes = compiled" (gen_case dff_heavy_ops)
      (fun (nodes, lane_rows) ->
        List.for_all2
          (fun rows wide_rows -> wide_rows = compiled_rows nodes rows)
          lane_rows
          (wide_lane_rows ~optimize:true nodes lane_rows));
    (* sequential random equivalence on the wide engine *)
    qc ~count:25 "wide_random_netlists: optimize is equivalence"
      (gen_nodes dff_heavy_ops)
      (fun nodes ->
        let nl = netlist_of nodes in
        Equiv.seq_equivalent
          (Equiv.wide_random_netlists ~passes:2 ~cycles:12 nl
             (Hydra_netlist.Optimize.optimize nl)));
    tc "wide_random_netlists: detects an inverted output" (fun () ->
        let mk invert =
          let a = G.input "a" and b = G.input "b" in
          let x = G.and2 (G.inv a) b in
          N.extract ~inputs:[ a; b ]
            ~outputs:[ ("x", (if invert then G.inv x else x)) ]
        in
        match Equiv.wide_random_netlists ~passes:1 ~cycles:2 (mk false) (mk true) with
        | Equiv.Seq_equivalent -> Alcotest.fail "expected mismatch"
        | Equiv.Seq_mismatch { output; cycle; inputs } ->
          check_string "output" "x" output;
          check_int "cycle" 0 cycle;
          check_int "streams" 2 (List.length inputs));
    (* the CPU with a different program instance in every lane *)
    tc "cpu: different n per lane, lanes = scalar runs" (fun () ->
        let module Asm = Hydra_cpu.Asm in
        let program = Asm.assemble sum_loop_src in
        let n_addr = List.length program - 2 in
        let lanes_n = [ 2; 6; 9 ] in
        let programs =
          List.map
            (fun n -> List.mapi (fun i w -> if i = n_addr then n else w) program)
            lanes_n
        in
        let cycles = List.length program + 420 in
        let schedules = List.map (fun p -> cpu_schedule p cycles) programs in
        let nl = cpu_netlist () in
        let scalars = List.map (fun _ -> Compiled.create nl) programs in
        let wide = Wide.create nl in
        let out_names = List.map fst nl.N.outputs in
        for t = 0 to cycles - 1 do
          (* drive scalar sim l with schedule l, the wide sim with all *)
          List.iteri
            (fun l (sim, sched) ->
              List.iter
                (fun (port, v) ->
                  Compiled.set_input sim port v;
                  Wide.set_input_lane wide port l v)
                (List.nth sched t))
            (List.combine scalars schedules);
          Wide.settle wide;
          List.iter (fun sim -> Compiled.settle sim) scalars;
          List.iter
            (fun name ->
              let w = Wide.output wide name in
              List.iteri
                (fun l sim ->
                  if Packed.lane w l <> Compiled.output sim name then
                    Alcotest.failf "cycle %d, lane %d, output %s diverges" t l
                      name)
                scalars)
            out_names;
          Wide.tick wide;
          List.iter (fun sim -> Compiled.tick sim) scalars
        done;
        (* the test must actually have run the programs to completion *)
        List.iteri
          (fun l _ ->
            check_bool
              (Printf.sprintf "lane %d halted" l)
              true
              (Wide.output_lane wide "halted" l))
          lanes_n);
    (* batched combinational testbench *)
    tc "run_vectors = scalar settle, with and without pool" (fun () ->
        let module A = Hydra_circuits.Arith.Make (G) in
        let xs = List.init 8 (fun i -> G.input (Printf.sprintf "x%d" i)) in
        let ys = List.init 8 (fun i -> G.input (Printf.sprintf "y%d" i)) in
        let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
        let nl =
          N.extract ~inputs:(xs @ ys)
            ~outputs:
              (("cout", cout)
              :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)
        in
        let st = Random.State.make [| 42 |] in
        let vectors =
          Array.init 200 (fun _ -> Array.init 16 (fun _ -> Random.State.bool st))
        in
        let wide = Wide.create nl in
        let got = Wide.run_vectors wide vectors in
        let scalar = Compiled.create nl in
        let in_names = List.map fst nl.N.inputs in
        Array.iteri
          (fun k v ->
            Compiled.reset scalar;
            List.iteri (fun j name -> Compiled.set_input scalar name v.(j)) in_names;
            Compiled.settle scalar;
            let expect =
              Array.of_list (List.map snd (Compiled.outputs scalar))
            in
            if got.(k) <> expect then Alcotest.failf "vector %d diverges" k)
          vectors;
        let pool = Hydra_parallel.Pool.create ~domains:4 () in
        let got_pooled = Wide.run_vectors ~pool wide vectors in
        Hydra_parallel.Pool.shutdown pool;
        check_bool "pooled = sequential" true (got_pooled = got));
    tc "testbench run_batched = scalar run per case" (fun () ->
        let x = G.input "x" and en = G.input "en" in
        let q = G.dff (G.xor2 x (G.and2 en (G.input "y"))) in
        let nl =
          N.extract ~inputs:[ x; en; G.input "y" ]
            ~outputs:[ ("q", q) ]
        in
        let case k =
          let stimuli =
            [
              Testbench.Bit_fun ("x", fun t -> (t + k) mod 3 = 0);
              Testbench.Bit_values ("en", [ k mod 2 = 0; true ]);
              Testbench.Bit_fun ("y", fun t -> t mod 2 = k mod 2);
            ]
          in
          let expectations =
            (* one deliberately wrong expectation in case 5 *)
            if k = 5 then [ Testbench.Expect_bit { cycle = 0; port = "q"; value = true } ]
            else []
          in
          (stimuli, expectations)
        in
        let cases = Array.init 100 case in
        let reports = Testbench.run_batched ~cycles:8 ~cases nl in
        Array.iteri
          (fun k (stimuli, expectations) ->
            let scalar = Testbench.run ~cycles:8 ~stimuli ~expectations nl in
            if reports.(k) <> scalar then Alcotest.failf "case %d report differs" k)
          cases;
        check_bool "case 5 failed" false (Testbench.passed reports.(5));
        check_bool "case 6 passed" true (Testbench.passed reports.(6)));
    (* packed_random agrees with scalar random and finds real bugs *)
    tc "packed_random: equivalence and counterexamples" (fun () ->
        let adder broken =
          {
            Equiv.apply =
              (fun (type a)
                   (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
                let module A = Hydra_circuits.Arith.Make (C) in
                let xs, ys = Patterns.split_at 4 v in
                let cout, sums = A.ripple_add C.zero (List.combine xs ys) in
                if broken then C.inv cout :: sums else cout :: sums);
          }
        in
        check_bool "equivalent" true
          (Equiv.is_equivalent
             (Equiv.packed_random ~trials:500 ~inputs:8 (adder false) (adder false)));
        match Equiv.packed_random ~trials:500 ~inputs:8 (adder false) (adder true) with
        | Equiv.Equivalent -> Alcotest.fail "expected a counterexample"
        | Equiv.Inequivalent cex ->
          check_int "cex arity" 8 (List.length cex);
          (* the counterexample must really distinguish the circuits *)
          let f = (adder false).Equiv.apply (module Hydra_core.Bit)
          and g = (adder true).Equiv.apply (module Hydra_core.Bit) in
          check_bool "cex is genuine" false (f cex = g cex));
    (* lazy enumeration *)
    tc "packed enumerate: lazy for 30 inputs, rejects 31" (fun () ->
        (match (Packed.enumerate ~inputs:30) () with
        | Seq.Nil -> Alcotest.fail "expected a pass"
        | Seq.Cons ((words, count), _) ->
          check_int "words" 30 (List.length words);
          check_int "count" Packed.lanes count);
        Alcotest.check_raises "31 inputs"
          (Invalid_argument "Packed.enumerate: too many inputs (max 30)")
          (fun () ->
            let (_ : (Packed.t list * int) Seq.t) =
              Packed.enumerate ~inputs:31
            in
            ()));
    (* lane plumbing *)
    tc "set_input_lane / output_lane round-trip" (fun () ->
        let a = G.input "a" in
        let nl = N.of_graph ~outputs:[ ("y", G.inv a) ] in
        let sim = Wide.create nl in
        Wide.set_input sim "a" 0;
        Wide.set_input_lane sim "a" 3 true;
        Wide.set_input_lane sim "a" 61 true;
        Wide.settle sim;
        check_bool "lane 3" false (Wide.output_lane sim "y" 3);
        check_bool "lane 61" false (Wide.output_lane sim "y" 61);
        check_bool "lane 0" true (Wide.output_lane sim "y" 0);
        check_int "word" (Wide.lane_mask land lnot ((1 lsl 3) lor (1 lsl 61)))
          (Wide.output sim "y"));
  ]
