(* Test runner: one Alcotest suite per subsystem. *)

let () =
  Alcotest.run "hydra"
    [
      ("patterns", Test_patterns.suite);
      ("bitvec", Test_bitvec.suite);
      ("semantics", Test_semantics.suite);
      ("circuits", Test_circuits.suite);
      ("arith", Test_arith.suite);
      ("regs", Test_regs.suite);
      ("netlist", Test_netlist.suite);
      ("parallel", Test_parallel.suite);
      ("engine", Test_engine.suite);
      ("wide", Test_wide.suite);
      ("slab", Test_slab.suite);
      ("engine_laws", Test_engine_laws.suite);
      ("sharded", Test_sharded.suite);
      ("isa", Test_isa.suite);
      ("cpu", Test_cpu.suite);
      ("verify", Test_verify.suite);
      ("sorter", Test_sorter.suite);
      ("extras", Test_extras.suite);
      ("synth", Test_synth.suite);
      ("uart", Test_uart.suite);
      ("stack", Test_stack.suite);
      ("bench_tools", Test_bench_tools.suite);
      ("interconnect", Test_interconnect.suite);
      ("more", Test_more.suite);
      ("gaps", Test_gaps.suite);
      ("transform", Test_transform.suite);
      ("analyze", Test_analyze.suite);
      ("dataflow", Test_dataflow.suite);
      ("campaign", Test_campaign.suite);
      ("cache", Test_cache.suite);
      ("scheduler", Test_scheduler.suite);
      ("resilience", Test_resilience.suite);
    ]
