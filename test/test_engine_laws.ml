(* A shared law battery over every simulation engine: the scalar
   {!Compiled}, the 62-lane {!Compiled_wide} and the K-word {!Slab} in
   all its flavors — ungated, cluster-gated, simd, tiny rank blocks,
   twitchy hot/detect adaptation — are all driven through one
   lane-level adapter, so each law — poke/peek round-trip,
   reset-to-power-up, settle idempotence, step determinism across
   replicas, force/clear (including forces under gating) — is checked
   once and holds engine-independently. *)

open Util

module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module P = Hydra_core.Packed
module C = Hydra_engine.Compiled
module W = Hydra_engine.Compiled_wide
module Slab = Hydra_engine.Slab
module Kernel = Hydra_engine.Kernel

(* The lane-level face the laws are written against.  [create] compiles
   without optimization passes so component indices are the caller's
   (the force law names raw sites); [poke_lane]/[peek_lane] address one
   lane of one component; [set_force] stuck-forces a site on every
   lane.  Engines without runtime forces say so via [has_forces]. *)
module type LANE_ENGINE = sig
  type t

  val name : string
  val create : N.t -> t
  val lanes : t -> int
  val reset : t -> unit
  val set_input_lane : t -> string -> int -> bool -> unit
  val settle : t -> unit
  val step : t -> unit
  val output_lane : t -> string -> int -> bool
  val peek_lane : t -> int -> int -> bool
  val poke_lane : t -> int -> int -> bool -> unit
  val cycle : t -> int
  val has_forces : bool
  val set_force : t -> site:int -> value:bool -> unit
  val clear_forces : t -> unit
end

module Scalar_adapter : LANE_ENGINE = struct
  type t = C.t

  let name = "compiled"
  let create nl = C.create ~optimize:false nl
  let lanes _ = 1
  let reset = C.reset
  let set_input_lane t n _ v = C.set_input t n v
  let settle = C.settle
  let step = C.step
  let output_lane t n _ = C.output t n
  let peek_lane t i _ = C.peek t i
  let poke_lane t i _ v = C.poke t i v
  let cycle = C.cycle
  let has_forces = false
  let set_force _ ~site:_ ~value:_ = ()
  let clear_forces _ = ()
end

module Wide_adapter : LANE_ENGINE = struct
  type t = W.t

  let name = "wide"
  let create nl = W.create ~optimize:false ~relayout:false ~fuse:false nl
  let lanes _ = W.lanes
  let set_input_lane = W.set_input_lane
  let reset = W.reset
  let settle = W.settle
  let step = W.step
  let output_lane t n l = P.lane (W.output t n) l
  let peek_lane t i l = P.lane (W.peek t i) l
  let poke_lane t i l v = W.poke t i (P.set_lane (W.peek t i) l v)
  let cycle = W.cycle
  let has_forces = true

  let set_force t ~site ~value =
    W.set_forces t
      [|
        {
          W.f_site = site;
          force0 = (if value then 0 else W.lane_mask);
          force1 = (if value then W.lane_mask else 0);
          flip = 0;
        };
      |]

  let clear_forces = W.clear_forces
end

module Slab_adapter (K : sig
  val k : int
  val gating : bool
  val simd : bool
  val tuning : Kernel.tuning
end) : LANE_ENGINE = struct
  type t = Slab.t

  let name =
    Printf.sprintf "slab(k=%d%s%s%s)" K.k
      (if K.gating then ",gated" else "")
      (if K.simd then ",simd" else "")
      (if K.tuning <> Kernel.default_tuning then ",tuned" else "")

  let create nl =
    Slab.create ~k:K.k ~gating:K.gating ~simd:K.simd ~tuning:K.tuning
      ~optimize:false ~relayout:false ~fuse:false nl

  let lanes = Slab.lanes
  let reset = Slab.reset
  let set_input_lane = Slab.set_input_lane
  let settle = Slab.settle
  let step = Slab.step
  let output_lane = Slab.output_lane

  let peek_lane t i l =
    P.lane (Slab.peek_word t i (l / P.lanes)) (l mod P.lanes)

  let poke_lane t i l v =
    let w = l / P.lanes in
    Slab.poke_word t i w (P.set_lane (Slab.peek_word t i w) (l mod P.lanes) v)

  let cycle = Slab.cycle

  (* forces compose with gating since the cluster-gating PR *)
  let has_forces = true

  let set_force t ~site ~value =
    Slab.set_forces t
      [|
        {
          Slab.f_site = site;
          force0 = Array.make K.k (if value then 0 else Slab.lane_mask);
          force1 = Array.make K.k (if value then Slab.lane_mask else 0);
          flip = Array.make K.k 0;
        };
      |]

  let clear_forces = Slab.clear_forces
end

(* Rank blocks of 2 gates: several blocks per rank even on the tiny law
   circuits, so the blocked sweep and per-block gating really multi-block *)
let tiny_blocks = { Kernel.default_tuning with Kernel.block_gates = 2 }

(* hot_after = 1, probe_period = 2: the gating adaptation flips between
   hot and detecting every couple of runs inside an 11-cycle law *)
let twitchy =
  { Kernel.block_gates = 2; block_words = 64; hot_after = 1; probe_period = 2 }

module Slab1_adapter = Slab_adapter (struct
  let k = 1
  let gating = false
  let simd = false
  let tuning = Kernel.default_tuning
end)

module Slab3_adapter = Slab_adapter (struct
  let k = 3
  let gating = false
  let simd = false
  let tuning = Kernel.default_tuning
end)

module Slab4_adapter = Slab_adapter (struct
  let k = 4
  let gating = false
  let simd = false
  let tuning = Kernel.default_tuning
end)

module Slab4g_adapter = Slab_adapter (struct
  let k = 4
  let gating = true
  let simd = false
  let tuning = Kernel.default_tuning
end)

module Slab2b_adapter = Slab_adapter (struct
  let k = 2
  let gating = false
  let simd = false
  let tuning = tiny_blocks
end)

module Slab3gb_adapter = Slab_adapter (struct
  let k = 3
  let gating = true
  let simd = false
  let tuning = twitchy
end)

module Slab4s_adapter = Slab_adapter (struct
  let k = 4
  let gating = false
  let simd = true
  let tuning = Kernel.default_tuning
end)

module Slab2gs_adapter = Slab_adapter (struct
  let k = 2
  let gating = true
  let simd = true
  let tuning = tiny_blocks
end)

(* Circuits the laws run on: a combinational mixer and a registered
   accumulator, both with raw gate sites to force. *)

let comb_nl () =
  let a = G.input "a" and b = G.input "b" and c = G.input "c" in
  N.of_graph
    ~outputs:
      [
        ("x", G.xor2 (G.and2 a b) (G.or2 b (G.inv c)));
        ("y", G.or2 (G.xor2 a c) (G.and2 (G.inv a) b));
      ]

let seq_nl () =
  let a = G.input "a" and b = G.input "b" in
  let d1 = G.dff (G.xor2 a b) in
  let d2 = G.dff (G.or2 d1 (G.and2 a (G.inv b))) in
  N.of_graph ~outputs:[ ("q", G.xor2 d1 d2); ("r", G.and2 d1 (G.inv d2)) ]

let in_names nl = List.map fst nl.N.inputs
let out_names nl = List.map fst nl.N.outputs

(* Drive pseudo-random per-lane stimulus for [cycles] cycles and return
   every output's per-lane stream; the stimulus depends only on [seed]
   and lane/cycle/input indices, never on the engine. *)
module Drive (E : LANE_ENGINE) = struct
  let stim seed cyc j l = (seed * 0x9e3779b9) + (cyc * 131) + (j * 17) + l

  let run sim nl ~seed ~cycles =
    let ins = in_names nl and outs = out_names nl in
    let lanes = E.lanes sim in
    let trace = ref [] in
    for cyc = 0 to cycles - 1 do
      List.iteri
        (fun j name ->
          for l = 0 to lanes - 1 do
            E.set_input_lane sim name l (stim seed cyc j l land 8 <> 0)
          done)
        ins;
      E.settle sim;
      trace :=
        List.map
          (fun name -> List.init lanes (fun l -> E.output_lane sim name l))
          outs
        :: !trace;
      E.step sim
    done;
    List.rev !trace
end

module Laws (E : LANE_ENGINE) = struct
  module D = Drive (E)

  let what law = Printf.sprintf "%s: %s" E.name law

  let poke_peek_roundtrip () =
    let nl = comb_nl () in
    let sim = E.create nl in
    let lanes = E.lanes sim in
    for i = 0 to N.size nl - 1 do
      for l = 0 to lanes - 1 do
        let v = (i + l) land 1 = 0 in
        E.poke_lane sim i l v;
        check_bool (what "poke/peek round-trip") v (E.peek_lane sim i l)
      done
    done

  let reset_is_power_up () =
    let nl = seq_nl () in
    let sim = E.create nl in
    let t1 = D.run sim nl ~seed:1 ~cycles:9 in
    E.reset sim;
    check_int (what "cycle 0 after reset") 0 (E.cycle sim);
    let t2 = D.run sim nl ~seed:1 ~cycles:9 in
    check_bool (what "reset replays power-up") true (t1 = t2)

  let settle_idempotent () =
    let nl = comb_nl () in
    let sim = E.create nl in
    let lanes = E.lanes sim in
    List.iteri
      (fun j name ->
        for l = 0 to lanes - 1 do
          E.set_input_lane sim name l ((j + l) land 3 = 1)
        done)
      (in_names nl);
    E.settle sim;
    let snap1 =
      List.map
        (fun n -> List.init lanes (E.output_lane sim n))
        (out_names nl)
    in
    E.settle sim;
    E.settle sim;
    let snap2 =
      List.map
        (fun n -> List.init lanes (E.output_lane sim n))
        (out_names nl)
    in
    check_bool (what "settle idempotent") true (snap1 = snap2)

  let step_deterministic () =
    let nl = seq_nl () in
    let s1 = E.create nl and s2 = E.create nl in
    let t1 = D.run s1 nl ~seed:7 ~cycles:11 in
    let t2 = D.run s2 nl ~seed:7 ~cycles:11 in
    check_bool (what "two instances agree") true (t1 = t2)

  let force_then_clear () =
    if E.has_forces then begin
      let nl = comb_nl () in
      let sim = E.create nl in
      let lanes = E.lanes sim in
      let drive () =
        List.iteri
          (fun j name ->
            for l = 0 to lanes - 1 do
              E.set_input_lane sim name l ((j + (5 * l)) land 5 <> 0)
            done)
          (in_names nl)
      in
      drive ();
      E.settle sim;
      let free =
        List.map (fun n -> List.init lanes (E.output_lane sim n)) (out_names nl)
      in
      (* force every gate site to 1 in turn: the site must read forced on
         every lane after settle *)
      Array.iteri
        (fun i comp ->
          match comp with
          | N.Invc | N.And2c | N.Or2c | N.Xor2c ->
            E.set_force sim ~site:i ~value:true;
            E.settle sim;
            for l = 0 to lanes - 1 do
              check_bool (what "forced site reads forced") true
                (E.peek_lane sim i l)
            done
          | _ -> ())
        nl.N.components;
      E.clear_forces sim;
      drive ();
      E.settle sim;
      let cleared =
        List.map (fun n -> List.init lanes (E.output_lane sim n)) (out_names nl)
      in
      check_bool (what "clear_forces restores free outputs") true (free = cleared)
    end

  let tests =
    [
      tc (E.name ^ ": poke/peek round-trip") poke_peek_roundtrip;
      tc (E.name ^ ": reset is power-up") reset_is_power_up;
      tc (E.name ^ ": settle idempotent") settle_idempotent;
      tc (E.name ^ ": step deterministic") step_deterministic;
      tc (E.name ^ ": force then clear") force_then_clear;
    ]
end

(* Cross-engine agreement: the same law-battery stimulus must produce
   lane-0 output streams that agree across all engines (the scalar
   engine is the reference). *)
let cross_engine_lane0 () =
  let nl = seq_nl () in
  let run (module E : LANE_ENGINE) =
    let module D = Drive (E) in
    let sim = E.create nl in
    (* restrict to lane 0: drive other lanes identically so broadcast
       engines still agree lane-by-lane *)
    List.map (fun row -> List.map (fun lanes -> List.hd lanes) row)
      (D.run sim nl ~seed:3 ~cycles:13)
  in
  let reference = run (module Scalar_adapter) in
  List.iter
    (fun ((module E : LANE_ENGINE) as e) ->
      check_bool ("lane 0 agrees: " ^ E.name) true (run e = reference))
    [
      (module Wide_adapter : LANE_ENGINE);
      (module Slab3_adapter);
      (module Slab4g_adapter);
      (module Slab2b_adapter);
      (module Slab3gb_adapter);
      (module Slab4s_adapter);
      (module Slab2gs_adapter);
    ]

module Scalar_laws = Laws (Scalar_adapter)
module Wide_laws = Laws (Wide_adapter)
module Slab1_laws = Laws (Slab1_adapter)
module Slab4_laws = Laws (Slab4_adapter)
module Slab4g_laws = Laws (Slab4g_adapter)
module Slab2b_laws = Laws (Slab2b_adapter)
module Slab3gb_laws = Laws (Slab3gb_adapter)
module Slab4s_laws = Laws (Slab4s_adapter)
module Slab2gs_laws = Laws (Slab2gs_adapter)

let suite =
  Scalar_laws.tests @ Wide_laws.tests @ Slab1_laws.tests @ Slab4_laws.tests
  @ Slab4g_laws.tests @ Slab2b_laws.tests @ Slab3gb_laws.tests
  @ Slab4s_laws.tests @ Slab2gs_laws.tests
  @ [ tc "lane 0 agrees across engines" cross_engine_lane0 ]
