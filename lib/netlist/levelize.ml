(* Levelization: assign each component the number of gate delays after the
   start of a clock cycle at which its output is valid.

   Inports, constants and dff outputs are level 0; a combinational gate is
   one more than its deepest driver; an outport takes its driver's level.
   A dff's input edge does not constrain the dff (the synchronous model
   breaks cycles at flip flops, paper section 3), so this is a Kahn
   topological sort over combinational edges only.  Components left
   unleveled form combinational cycles, which the synchronous model
   forbids — they are reported rather than silently accepted. *)

type t = {
  levels : int array;            (* per component; -1 inside a cycle *)
  order : int array;             (* combinational evaluation order *)
  by_level : int array array;    (* combinational components per level *)
  critical_path : int;
  cyclic : int list;             (* components on combinational cycles *)
}

exception Combinational_cycle of int list

let compute (nl : Netlist.t) =
  let n = Netlist.size nl in
  let levels = Array.make n (-1) in
  let remaining = Array.make n 0 in
  let fanout = Netlist.fanout nl in
  let is_source i =
    match nl.Netlist.components.(i) with
    | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> true
    | Netlist.Outport _ | Netlist.Invc | Netlist.And2c | Netlist.Or2c
    | Netlist.Xor2c -> false
  in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if is_source i then begin
      levels.(i) <- 0;
      Queue.add i queue
    end
    else remaining.(i) <- Array.length nl.Netlist.fanin.(i)
  done;
  let order = ref [] in
  (* Every non-source occupies its own rank, one past its deepest driver —
     including outports, so that per-level parallel execution never
     schedules a port in the same rank as its driver.  (This does not
     affect the critical path, which is computed from the *drivers* of
     outports and dffs below.) *)
  let gate_delay _ = 1 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not (is_source i) then order := i :: !order;
    List.iter
      (fun (sink, _port) ->
        (* edges into a dff do not constrain the dff's level *)
        match nl.Netlist.components.(sink) with
        | Netlist.Dffc _ -> ()
        | _ ->
          remaining.(sink) <- remaining.(sink) - 1;
          let lvl = levels.(i) + gate_delay sink in
          if lvl > levels.(sink) then levels.(sink) <- lvl;
          if remaining.(sink) = 0 then Queue.add sink queue)
      fanout.(i)
  done;
  (* Unleveled = never fully scheduled (a cycle member, or downstream of
     one).  Cannot be read off [levels] alone: the eager max-update above
     gives a cycle member with one acyclic driver a tentative level even
     though it never entered the queue — reset those to -1.  Sorted
     ascending so cycle reports are stable across runs and engines. *)
  let cyclic = ref [] in
  for i = n - 1 downto 0 do
    if (not (is_source i)) && remaining.(i) > 0 then begin
      levels.(i) <- -1;
      cyclic := i :: !cyclic
    end
  done;
  let cyclic = ref (List.sort_uniq compare !cyclic) in
  (* Critical path: deepest signal that must settle before the next tick —
     at an output port or at a dff input. *)
  let critical = ref 0 in
  for i = 0 to n - 1 do
    match nl.Netlist.components.(i) with
    | Netlist.Outport _ | Netlist.Dffc _ ->
      Array.iter
        (fun drv -> if levels.(drv) > !critical then critical := levels.(drv))
        nl.Netlist.fanin.(i)
    | _ -> ()
  done;
  let order = Array.of_list (List.rev !order) in
  let max_level = Array.fold_left max 0 levels in
  let buckets = Array.make (max_level + 1) [] in
  Array.iter
    (fun i ->
      let l = levels.(i) in
      buckets.(l) <- i :: buckets.(l))
    order;
  let by_level =
    Array.map (fun l -> Array.of_list (List.rev l)) buckets
  in
  { levels; order; by_level; critical_path = !critical; cyclic = !cyclic }

(* An ordered witness for the cycle report: walk driver edges inside the
   unleveled set (every unleveled component has at least one unleveled
   driver, or it would have been leveled) until a component repeats; the
   slice between the two visits is a concrete directed combinational
   cycle.  Choosing the smallest unleveled index at every step makes the
   witness deterministic; the result is rotated to start at its smallest
   member and listed in driver -> sink order, so each element drives the
   next and the last drives the first. *)
let cycle_witness (nl : Netlist.t) t =
  match t.cyclic with
  | [] -> None
  | start :: _ ->
    let pos : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let path = ref [] in
    let rec walk i k =
      match Hashtbl.find_opt pos i with
      | Some p ->
        List.filter (fun j -> Hashtbl.find pos j >= p) (List.rev !path)
      | None ->
        Hashtbl.add pos i k;
        path := i :: !path;
        let next = ref (-1) in
        Array.iter
          (fun d ->
            if t.levels.(d) < 0 && (!next = -1 || d < !next) then next := d)
          nl.Netlist.fanin.(i);
        assert (!next >= 0);
        walk !next (k + 1)
    in
    (* the walk follows fanin (sink -> driver); reverse for driver -> sink *)
    let cyc = List.rev (walk start 0) in
    (* rotate to start at the smallest member *)
    let m = List.fold_left min max_int cyc in
    let rec rotate = function
      | x :: rest when x <> m -> rotate (rest @ [ x ])
      | l -> l
    in
    Some (rotate cyc)

let describe_cycle (nl : Netlist.t) cyc =
  match cyc with
  | [] -> "(no cycle)"
  | first :: _ ->
    String.concat " -> "
      (List.map (Netlist.describe nl) cyc @ [ Netlist.describe nl first ])

let check nl =
  let t = compute nl in
  if t.cyclic <> [] then raise (Combinational_cycle t.cyclic);
  t

let critical_path nl = (compute nl).critical_path
