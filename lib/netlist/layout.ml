(* Memory re-layout: permute component indices into a rank-major,
   fanout-clustered order.

   The levelized compiled engines walk the netlist rank by rank and, inside
   a rank, one flat loop per gate kind; extraction order (post-order over
   the circuit graph) scatters the members of a rank all over the value
   array, so those loops read and write with large strides.  This pass
   renumbers components so the traversal the engine actually performs is
   the memory order:

   - level 0 first: declared inports (in port-list order), then constants,
     then all dffs contiguously — the dff block is what the latch phase
     walks every cycle;
   - then each levelized rank in ascending order, its members grouped by
     gate kind in the engines' kernel order (inv, and, or, xor, outports)
     so each per-kind destination array becomes one ascending contiguous
     range;
   - within a kind, members sorted by their (already renumbered) source
     indices, so gates reading the same or neighbouring drivers — high
     fanout nets — sit next to each other and their reads hit the same
     cache lines.

   The result is behaviourally identical (it is a pure index permutation;
   the equivalence suite checks it), but the compiled engines' inner loops
   become near-sequential sweeps of the value array. *)

let kind_order (c : Netlist.component) =
  match c with
  | Netlist.Invc -> 0
  | Netlist.And2c -> 1
  | Netlist.Or2c -> 2
  | Netlist.Xor2c -> 3
  | Netlist.Outport _ -> 4
  | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> 5

(* [rank_major_permutation nl] is the re-laid-out netlist together with
   the permutation it applied: [new_of_old.(i)] is the new index of old
   component [i].  Netlists with combinational cycles are returned
   unchanged (identity permutation) — the engines' own [Levelize.check]
   reports the cycle against the original indices. *)
let rank_major_permutation (nl : Netlist.t) =
  let n = Netlist.size nl in
  let identity () = Array.init n (fun i -> i) in
  let lv = Levelize.compute nl in
  if lv.Levelize.cyclic <> [] then (nl, identity ())
  else begin
    let new_of_old = Array.make n (-1) in
    let next = ref 0 in
    let assign i =
      new_of_old.(i) <- !next;
      incr next
    in
    (* level 0: inports in declaration order, then constants, then the
       dff block *)
    let consts = ref [] and dffs = ref [] in
    Array.iteri
      (fun i c ->
        match c with
        | Netlist.Constant _ -> consts := i :: !consts
        | Netlist.Dffc _ -> dffs := i :: !dffs
        | _ -> ())
      nl.Netlist.components;
    List.iter (fun (_, i) -> assign i) nl.Netlist.inputs;
    List.iter assign (List.rev !consts);
    List.iter assign (List.rev !dffs);
    (* combinational ranks, kind-grouped and source-clustered.  Sources of
       a rank's members live at strictly lower ranks, so their new indices
       are already assigned when the rank is sorted. *)
    let key i =
      let fi = nl.Netlist.fanin.(i) in
      let s0 = if Array.length fi > 0 then new_of_old.(fi.(0)) else -1 in
      let s1 = if Array.length fi > 1 then new_of_old.(fi.(1)) else -1 in
      (kind_order nl.Netlist.components.(i), s0, s1, i)
    in
    Array.iter
      (fun rank ->
        let sorted = Array.copy rank in
        Array.sort (fun a b -> compare (key a) (key b)) sorted;
        Array.iter assign sorted)
      lv.Levelize.by_level;
    assert (!next = n);
    let components = Array.make n (Netlist.Constant false) in
    let fanin = Array.make n [||] in
    let names = Array.make n [] in
    for i = 0 to n - 1 do
      let j = new_of_old.(i) in
      components.(j) <- nl.Netlist.components.(i);
      names.(j) <- nl.Netlist.names.(i);
      fanin.(j) <- Array.map (fun s -> new_of_old.(s)) nl.Netlist.fanin.(i)
    done;
    ( {
        Netlist.components;
        fanin;
        names;
        inputs = List.map (fun (s, i) -> (s, new_of_old.(i))) nl.Netlist.inputs;
        outputs =
          List.map (fun (s, i) -> (s, new_of_old.(i))) nl.Netlist.outputs;
      },
      new_of_old )
  end

let rank_major nl = fst (rank_major_permutation nl)
