(* Netlist serialization: a simple line-based text format, so circuits can
   be saved, diffed, versioned and reloaded — the "netlist as artifact"
   half of the paper's fabrication story.

   Format (one component per line, index order):

     hydra-netlist 1
     component <idx> <kind> [<fanin> ...]    kind: in:<name> out:<name>
                                                   const0 const1 inv and2
                                                   or2 xor2 dff0 dff1
     name <idx> <label>
     end *)

let kind_string (nl : Netlist.t) i =
  match nl.Netlist.components.(i) with
  | Netlist.Inport s -> "in:" ^ s
  | Netlist.Outport s -> "out:" ^ s
  | Netlist.Constant b -> if b then "const1" else "const0"
  | Netlist.Invc -> "inv"
  | Netlist.And2c -> "and2"
  | Netlist.Or2c -> "or2"
  | Netlist.Xor2c -> "xor2"
  | Netlist.Dffc b -> if b then "dff1" else "dff0"

let to_string (nl : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "hydra-netlist 1\n";
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf
        (Printf.sprintf "component %d %s%s\n" i (kind_string nl i)
           (String.concat ""
              (Array.to_list
                 (Array.map (Printf.sprintf " %d") nl.Netlist.fanin.(i))))))
    nl.Netlist.components;
  Array.iteri
    (fun i names ->
      List.iter
        (fun n -> Buffer.add_string buf (Printf.sprintf "name %d %s\n" i n))
        names)
    nl.Netlist.names;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let of_string text =
  let lines = String.split_on_char '\n' text in
  let comps = ref [] and names = ref [] in
  let seen_header = ref false and seen_end = ref false in
  List.iteri
    (fun lineno0 line ->
      let lineno = lineno0 + 1 in
      let line = String.trim line in
      if line = "" || !seen_end then ()
      else if not !seen_header then
        if line = "hydra-netlist 1" then seen_header := true
        else parse_error lineno "expected header, got %S" line
      else
        match String.split_on_char ' ' line with
        | "end" :: _ -> seen_end := true
        | "component" :: idx :: kind :: fanin ->
          let idx = int_of_string idx in
          let comp =
            if String.length kind > 3 && String.sub kind 0 3 = "in:" then
              Netlist.Inport (String.sub kind 3 (String.length kind - 3))
            else if String.length kind > 4 && String.sub kind 0 4 = "out:"
            then Netlist.Outport (String.sub kind 4 (String.length kind - 4))
            else
              match kind with
              | "const0" -> Netlist.Constant false
              | "const1" -> Netlist.Constant true
              | "inv" -> Netlist.Invc
              | "and2" -> Netlist.And2c
              | "or2" -> Netlist.Or2c
              | "xor2" -> Netlist.Xor2c
              | "dff0" -> Netlist.Dffc false
              | "dff1" -> Netlist.Dffc true
              | k -> parse_error lineno "unknown component kind %S" k
          in
          let fanin = Array.of_list (List.map int_of_string fanin) in
          if Array.length fanin <> Netlist.input_arity comp then
            parse_error lineno "component %d: wrong fanin arity" idx;
          comps := (idx, comp, fanin) :: !comps
        | "name" :: idx :: label ->
          names := (int_of_string idx, String.concat " " label) :: !names
        | _ -> parse_error lineno "unparseable line %S" line)
    lines;
  if not !seen_end then parse_error 0 "missing end marker";
  let comps = List.sort (fun (a, _, _) (b, _, _) -> compare a b) (List.rev !comps) in
  let n = List.length comps in
  List.iteri
    (fun expect (idx, _, _) ->
      if idx <> expect then parse_error 0 "component indices not dense")
    comps;
  let components = Array.make n (Netlist.Constant false) in
  let fanin = Array.make n [||] in
  let names_arr = Array.make n [] in
  List.iter
    (fun (idx, comp, fi) ->
      components.(idx) <- comp;
      Array.iter
        (fun d ->
          if d < 0 || d >= n then parse_error 0 "fanin %d out of range" d)
        fi;
      fanin.(idx) <- fi)
    comps;
  List.iter
    (fun (idx, label) ->
      if idx < 0 || idx >= n then parse_error 0 "name index out of range";
      names_arr.(idx) <- names_arr.(idx) @ [ label ])
    (List.rev !names);
  let inputs = ref [] and outputs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Inport s -> inputs := (s, i) :: !inputs
      | Netlist.Outport s -> outputs := (s, i) :: !outputs
      | _ -> ())
    components;
  let nl =
    {
      Netlist.components;
      fanin;
      names = names_arr;
      inputs = List.rev !inputs;
      outputs = List.rev !outputs;
    }
  in
  (* Corrupt files must fail here with a message, not later as an array
     bound violation inside an engine. *)
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error m -> parse_error 0 "invalid netlist: %s" m);
  nl

let to_file nl path =
  let oc = open_out path in
  output_string oc (to_string nl);
  close_out oc

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
