(** Rank-major, fanout-clustered memory re-layout.

    Permutes component indices so the levelized engines' traversal order
    is the memory order: level 0 (inports, constants, then a contiguous
    dff block) followed by each rank with its members grouped by gate
    kind and sorted by source index.  Pure index permutation — behaviour
    is unchanged; the per-kind kernel loops of {!Hydra_engine} (wide
    engine) become near-sequential sweeps of the value array. *)

val rank_major : Netlist.t -> Netlist.t
(** The re-laid-out netlist.  Netlists with combinational cycles are
    returned unchanged, so cycle reporting still refers to the caller's
    indices. *)

val rank_major_permutation : Netlist.t -> Netlist.t * int array
(** As {!rank_major}, also returning [new_of_old]: element [i] is the new
    index of old component [i] (the identity for cyclic netlists). *)
