(** Netlist optimization: constant folding, structural deduplication,
    inverter-pair collapsing and dead-component elimination, iterated to a
    fixed point.  Behaviour-preserving (checked against the original on
    random circuits in the test suite) and never larger. *)

type alias = Self | To of int | Const of bool
(** What a component's output is equivalent to: itself, another
    component's output, or a constant. *)

val apply_aliases : Netlist.t -> alias array -> Netlist.t
(** Rebuild the netlist under an alias map: every fanin is redirected to
    its canonical representative (alias chains are followed), needed
    constants are materialized, and components no longer reachable from
    an output are dropped (declared inputs are kept).  This is the
    mechanism behind both the internal folding pass and
    [Hydra_analyze.Sweep]; the caller asserts the aliases are
    behaviour-preserving — validate each run with
    [Hydra_analyze.Certify].  Raises [Invalid_argument] on a length
    mismatch, an aliased port component, or a [To] cycle. *)

val once : Netlist.t -> Netlist.t * bool
(** One folding/dedup pass followed by a rebuild; the flag reports whether
    any rewriting happened. *)

val optimize : ?max_rounds:int -> Netlist.t -> Netlist.t
