(* Netlist optimization: constant folding, structural deduplication and
   dead-component elimination.

   A light logic-synthesis pass over the extracted netlist.  The paper's
   specifications deliberately describe structure ("it is poor design
   style to force the wrong component to do a job"), but generic patterns
   instantiated at concrete sizes often leave constants (e.g. a ripple
   adder's zero carry-in) and duplicated subterms; this pass cleans them
   up while provably preserving behaviour (the test suite checks
   optimized-vs-original equivalence on random circuits).

   Passes, iterated to a fixed point:
   - constant folding: a gate with constant inputs becomes a constant;
     and2(x,1) = x and friends become aliases,
   - structural dedup: two gates of the same kind with the same drivers
     are merged,
   - inverter pairs: inv(inv(x)) becomes x,
   - dead elimination: components that reach no output and no dff that
     itself reaches an output are dropped. *)

type alias = Self | To of int | Const of bool

let fold_and_dedup (nl : Netlist.t) =
  let n = Netlist.size nl in
  (* alias.(i): what component i's output is equivalent to *)
  let alias = Array.make n Self in
  let rec resolve i =
    match alias.(i) with
    | Self -> (
        match nl.Netlist.components.(i) with
        | Netlist.Constant b -> `Const b
        | _ -> `Comp i)
    | Const b -> `Const b
    | To j -> (
        match resolve j with
        | `Comp k as r ->
          if k <> j then alias.(i) <- To k;
          r
        | `Const _ as r -> r)
  in
  let dedup : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref false in
  (* process in topological-ish order: index order works because the
     extraction emits children first except across feedback, where dffs
     stop folding anyway *)
  for i = 0 to n - 1 do
    let comp = nl.Netlist.components.(i) in
    let driver k =
      resolve nl.Netlist.fanin.(i).(k)
    in
    let set a =
      alias.(i) <- a;
      changed := true
    in
    (match comp with
    | Netlist.Constant b ->
      (* canonicalize multiple constants *)
      let key = Printf.sprintf "const%b" b in
      (match Hashtbl.find_opt dedup key with
      | Some j when j <> i -> set (To j)
      | _ -> Hashtbl.replace dedup key i)
    | Netlist.Invc -> (
        match driver 0 with
        | `Const b -> set (Const (not b))
        | `Comp d -> (
            (* inv (inv x) = x *)
            match nl.Netlist.components.(d) with
            | Netlist.Invc when (match resolve nl.Netlist.fanin.(d).(0) with
                                 | `Comp _ -> true
                                 | `Const _ -> false) -> (
                match resolve nl.Netlist.fanin.(d).(0) with
                | `Comp x -> set (To x)
                | `Const b -> set (Const b))
            | _ ->
              let key = Printf.sprintf "inv:%d" d in
              (match Hashtbl.find_opt dedup key with
              | Some j when j <> i -> set (To j)
              | _ -> Hashtbl.replace dedup key i)))
    | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c -> (
        let commutative_key tag a b =
          if a <= b then Printf.sprintf "%s:%d,%d" tag a b
          else Printf.sprintf "%s:%d,%d" tag b a
        in
        match (comp, driver 0, driver 1) with
        (* and *)
        | Netlist.And2c, `Const false, _ | Netlist.And2c, _, `Const false ->
          set (Const false)
        | Netlist.And2c, `Const true, `Const true -> set (Const true)
        | Netlist.And2c, `Const true, `Comp x
        | Netlist.And2c, `Comp x, `Const true ->
          set (To x)
        | Netlist.And2c, `Comp x, `Comp y when x = y -> set (To x)
        (* or *)
        | Netlist.Or2c, `Const true, _ | Netlist.Or2c, _, `Const true ->
          set (Const true)
        | Netlist.Or2c, `Const false, `Const false -> set (Const false)
        | Netlist.Or2c, `Const false, `Comp x
        | Netlist.Or2c, `Comp x, `Const false ->
          set (To x)
        | Netlist.Or2c, `Comp x, `Comp y when x = y -> set (To x)
        (* xor *)
        | Netlist.Xor2c, `Const a, `Const b -> set (Const (a <> b))
        | Netlist.Xor2c, `Const false, `Comp x
        | Netlist.Xor2c, `Comp x, `Const false ->
          set (To x)
        | Netlist.Xor2c, `Comp x, `Comp y when x = y -> set (Const false)
        (* dedup on normalized drivers *)
        | (Netlist.And2c | Netlist.Or2c | Netlist.Xor2c), `Comp x, `Comp y ->
          let tag =
            match comp with
            | Netlist.And2c -> "and"
            | Netlist.Or2c -> "or"
            | _ -> "xor"
          in
          let key = commutative_key tag x y in
          (match Hashtbl.find_opt dedup key with
          | Some j when j <> i -> alias.(i) <- To j
          | _ -> Hashtbl.replace dedup key i)
        | _ -> ())
    | Netlist.Inport _ | Netlist.Outport _ | Netlist.Dffc _ -> ());
    ()
  done;
  (alias, resolve, !changed)

(* Rebuild a netlist applying an alias map and dropping dead components. *)
let rebuild (nl : Netlist.t) resolve =
  let n = Netlist.size nl in
  (* We may need fresh constant components for Const aliases. *)
  let const_idx = [| None; None |] in
  let live = Array.make n false in
  let need_const = [| false; false |] in
  let canonical i =
    match resolve i with
    | `Comp j -> `Comp j
    | `Const b ->
      need_const.(Bool.to_int b) <- true;
      `Const b
  in
  (* mark live from outputs, walking canonical drivers *)
  let rec mark i =
    match canonical i with
    | `Const _ -> ()
    | `Comp j ->
      if not live.(j) then begin
        live.(j) <- true;
        Array.iter mark nl.Netlist.fanin.(j)
      end
  in
  List.iter (fun (_, i) -> live.(i) <- true) nl.Netlist.outputs;
  List.iter
    (fun (_, i) -> Array.iter mark nl.Netlist.fanin.(i))
    nl.Netlist.outputs;
  (* keep declared inputs *)
  List.iter (fun (_, i) -> live.(i) <- true) nl.Netlist.inputs;
  (* assign new indices *)
  let remap = Array.make n (-1) in
  let count = ref 0 in
  for b = 0 to 1 do
    if need_const.(b) then begin
      const_idx.(b) <- Some !count;
      incr count
    end
  done;
  for i = 0 to n - 1 do
    if live.(i) then begin
      remap.(i) <- !count;
      incr count
    end
  done;
  let total = !count in
  let components = Array.make total (Netlist.Constant false) in
  let fanin = Array.make total [||] in
  let names = Array.make total [] in
  for b = 0 to 1 do
    match const_idx.(b) with
    | Some idx -> components.(idx) <- Netlist.Constant (b = 1)
    | None -> ()
  done;
  let tr i =
    match canonical i with
    | `Comp j -> remap.(j)
    | `Const b -> Option.get const_idx.(Bool.to_int b)
  in
  for i = 0 to n - 1 do
    if live.(i) then begin
      let idx = remap.(i) in
      components.(idx) <- nl.Netlist.components.(i);
      names.(idx) <- nl.Netlist.names.(i);
      fanin.(idx) <- Array.map tr nl.Netlist.fanin.(i)
    end
  done;
  {
    Netlist.components;
    fanin;
    names;
    inputs = List.map (fun (s, i) -> (s, remap.(i))) nl.Netlist.inputs;
    outputs = List.map (fun (s, i) -> (s, remap.(i))) nl.Netlist.outputs;
  }

(* Public alias application: the rebuild machinery above, driven by a
   caller-supplied alias map instead of fold_and_dedup's.  This is the
   netlist-layer half of Hydra_analyze.Sweep: the analysis computes which
   components are constant / duplicated / invisible, this function does
   the (behaviour-affecting, therefore Certify-checked) surgery.  Alias
   chains are followed with path compression; a [To] loop in a
   hand-built map is a caller bug and raises rather than spinning. *)
let apply_aliases (nl : Netlist.t) (alias : alias array) =
  let n = Netlist.size nl in
  if Array.length alias <> n then
    invalid_arg
      (Printf.sprintf
         "Optimize.apply_aliases: %d aliases for %d components"
         (Array.length alias) n);
  let alias = Array.copy alias in
  let rec resolve ?(fuel = n) i =
    if fuel < 0 then
      invalid_arg "Optimize.apply_aliases: alias cycle"
    else
      match alias.(i) with
      | Self -> (
          match nl.Netlist.components.(i) with
          | Netlist.Constant b -> `Const b
          | _ -> `Comp i)
      | Const b -> `Const b
      | To j -> (
          match resolve ~fuel:(fuel - 1) j with
          | `Comp k as r ->
            if k <> j then alias.(i) <- To k;
            r
          | `Const _ as r -> r)
  in
  (match
     List.find_opt
       (fun (_, i) -> alias.(i) <> Self)
       (nl.Netlist.inputs @ nl.Netlist.outputs)
   with
  | Some (name, _) ->
    invalid_arg
      ("Optimize.apply_aliases: port component " ^ name ^ " is aliased")
  | None -> ());
  rebuild nl (fun i -> resolve i)

let once nl =
  let _alias, resolve, changed = fold_and_dedup nl in
  (rebuild nl resolve, changed)

(* Iterate to a fixed point (size strictly decreases or aliasing stops). *)
let optimize ?(max_rounds = 20) nl =
  let rec go nl rounds =
    if rounds = 0 then nl
    else
      let nl', changed = once nl in
      if (not changed) && Netlist.size nl' >= Netlist.size nl then nl'
      else go nl' (rounds - 1)
  in
  go nl max_rounds
