(** Flat netlists extracted from the graph semantics (paper section 4.4):
    the fabrication interface — components plus the connections between
    their ports. *)

type component =
  | Inport of string
  | Outport of string
  | Constant of bool
  | Invc
  | And2c
  | Or2c
  | Xor2c
  | Dffc of bool  (** carries the power-up value *)

type t = {
  components : component array;
  fanin : int array array;
      (** [fanin.(c)] lists the component driving each input port of [c],
          in port order *)
  names : string list array;
      (** labels attached via {!Hydra_core.Graph.label} *)
  inputs : (string * int) list;  (** port name, component index *)
  outputs : (string * int) list;
}

val component_name : component -> string

val input_arity : component -> int
(** Number of input ports (the output port's index, in the paper's
    numbering). *)

val extract : inputs:Hydra_core.Graph.t list -> outputs:(string * Hydra_core.Graph.t) list -> t
(** Extract the netlist reachable from [outputs], declaring [inputs]
    explicitly so that unused input ports still appear.  Components are
    numbered children-first (the paper's order); circular graphs from
    feedback are handled. *)

val of_graph : outputs:(string * Hydra_core.Graph.t) list -> t
(** [extract ~inputs:[]]. *)

val validate : t -> (unit, string) result
(** Structural well-formedness: fanin arity matches {!input_arity}, every
    fanin index is in bounds and not an outport, and the input/output
    port lists refer to [Inport]/[Outport] components with the same name.
    The engines index arrays with these numbers unchecked, so corrupt
    netlists must fail here with a message, not later out of bounds. *)

val describe : t -> int -> string
(** Human label for diagnostics: ["and2#5(carry)"] — kind, index, and
    attached labels when present. *)

type stats = {
  gates : int;
  dffs : int;
  inports : int;
  outports : int;
  constants : int;
  total : int;
}

val stats : t -> stats
val size : t -> int

val fanout : t -> (int * int) list array
(** Per component: the (sink component, sink input port) pairs it
    drives. *)

val digest : t -> string
(** Stable content hash (hex) of the observable circuit: components are
    renumbered canonically by a fanin-order traversal rooted at the
    name-sorted output then input ports, so the digest is invariant
    under component renumberings ({!Layout.rank_major}) and under
    {!Serial} round-trips, while distinct circuits get distinct digests
    (modulo hash collisions).  Components unreachable from any port
    contribute per-kind counts only.  Used as the {!Hydra_engine.Cache}
    key, which additionally verifies structural equality on hits — so a
    collision can cost a duplicate cache entry, never a wrong program. *)
