(** Levelization: rank every component by the number of gate delays after
    a clock tick at which its output is valid.  Flip-flop inputs do not
    constrain the flip flop (the synchronous model breaks loops at
    registers), so purely combinational cycles — which the model forbids —
    are detected and reported. *)

type t = {
  levels : int array;  (** per component; -1 inside a combinational cycle *)
  order : int array;  (** combinational evaluation order (topological) *)
  by_level : int array array;
      (** combinational components grouped by rank; every rank's members
          are mutually independent, which is what the parallel engines
          exploit *)
  critical_path : int;
      (** deepest signal that must settle before the next tick (at an
          output port or a dff input) *)
  cyclic : int list;
      (** components on combinational cycles, sorted ascending
          (deterministic) *)
}

exception Combinational_cycle of int list

val compute : Netlist.t -> t

val cycle_witness : Netlist.t -> t -> int list option
(** A concrete directed combinational cycle, when {!cyclic} is non-empty:
    an ordered component path in driver -> sink order (each element
    drives the next; the last drives the first), deterministic, rotated
    to start at its smallest member. *)

val describe_cycle : Netlist.t -> int list -> string
(** Render a witness path with component names:
    ["and2#3(q) -> inv#4 -> and2#3(q)"]. *)

val check : Netlist.t -> t
(** As {!compute}, but raises {!Combinational_cycle} when the netlist has
    one. *)

val critical_path : Netlist.t -> int
