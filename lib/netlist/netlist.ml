(* Flat netlists extracted from the graph semantics (paper section 4.4,
   second step).

   A netlist lists the components of a circuit and the connections between
   their ports; it is the fabrication interface.  Extraction traverses the
   (possibly circular) graph with an id-based visited set, so feedback
   loops — which make the graph circular, isomorphic to the schematic —
   are handled exactly once. *)

module Graph = Hydra_core.Graph

type component =
  | Inport of string
  | Outport of string
  | Constant of bool
  | Invc
  | And2c
  | Or2c
  | Xor2c
  | Dffc of bool  (* power-up value *)

type t = {
  components : component array;
  fanin : int array array;
      (* [fanin.(c)] lists the components driving each input port of [c],
         in port order *)
  names : string list array;  (* labels attached via [Graph.label] *)
  inputs : (string * int) list;   (* port name, component index *)
  outputs : (string * int) list;
}

let component_name = function
  | Inport s -> "inport:" ^ s
  | Outport s -> "outport:" ^ s
  | Constant b -> if b then "const1" else "const0"
  | Invc -> "inv"
  | And2c -> "and2"
  | Or2c -> "or2"
  | Xor2c -> "xor2"
  | Dffc _ -> "dff"

let input_arity = function
  | Inport _ | Constant _ -> 0
  | Outport _ | Invc | Dffc _ -> 1
  | And2c | Or2c | Xor2c -> 2

(* Extraction ----------------------------------------------------------- *)

let extract ~inputs ~outputs =
  (* Post-order emission — children before parents, which reproduces the
     paper's component numbering — with an on-stack marker so that the
     circular graphs produced by feedback terminate: a back edge simply
     records the target's graph id, and every fanin is translated to a
     component index once all nodes have been emitted. *)
  let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let on_stack : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let comps = ref [] and fanins = ref [] and names = ref [] in
  let count = ref 0 in
  let add comp fanin_ids nms =
    let idx = !count in
    incr count;
    comps := comp :: !comps;
    fanins := fanin_ids :: !fanins;
    names := nms :: !names;
    idx
  in
  let rec visit node =
    let node = Graph.resolve node in
    if
      not
        (Hashtbl.mem index node.Graph.id
        || Hashtbl.mem on_stack node.Graph.id)
    then begin
      Hashtbl.add on_stack node.Graph.id ();
      let children = Graph.children node in
      List.iter visit children;
      let comp =
        match node.Graph.def with
        | Graph.Input s -> Inport s
        | Graph.Const b -> Constant b
        | Graph.Inv _ -> Invc
        | Graph.And2 _ -> And2c
        | Graph.Or2 _ -> Or2c
        | Graph.Xor2 _ -> Xor2c
        | Graph.Dff (init, _) -> Dffc init
        | Graph.Forward _ -> assert false
      in
      let child_ids = List.map Graph.id children in
      let idx = add comp child_ids (List.rev node.Graph.names) in
      Hashtbl.remove on_stack node.Graph.id;
      Hashtbl.add index node.Graph.id idx
    end
  in
  (* Declared inputs come first (even when no gate reads them), so that a
     circuit's port list does not depend on which inputs happen to be
     used. *)
  List.iter visit inputs;
  let out_entries =
    List.map
      (fun (name, node) ->
        visit node;
        let idx = add (Outport name) [ Graph.id node ] [] in
        (name, idx))
      outputs
  in
  let n = !count in
  let components = Array.make n (Constant false) in
  let fanin = Array.make n [||] in
  let names_arr = Array.make n [] in
  List.iteri (fun i comp -> components.(n - 1 - i) <- comp) !comps;
  List.iteri
    (fun i ids ->
      fanin.(n - 1 - i) <-
        Array.of_list (List.map (fun gid -> Hashtbl.find index gid) ids))
    !fanins;
  List.iteri (fun i nm -> names_arr.(n - 1 - i) <- nm) !names;
  let inputs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with Inport s -> inputs := (s, i) :: !inputs | _ -> ())
    components;
  {
    components;
    fanin;
    names = names_arr;
    inputs = List.rev !inputs;
    outputs = out_entries;
  }

(* Validation ----------------------------------------------------------- *)

(* Structural well-formedness: every fanin table matches its component's
   arity, every index is in bounds, nothing is driven by an outport, and
   the port lists point at the right components.  The engines index
   arrays with these numbers unchecked, so a corrupt netlist (a
   hand-edited file, a buggy transform) must be caught here, with a
   message, rather than later as an array bound violation. *)
let validate t =
  let n = Array.length t.components in
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  try
    if Array.length t.fanin <> n then
      bad "fanin table has %d entries for %d components"
        (Array.length t.fanin) n;
    if Array.length t.names <> n then
      bad "names table has %d entries for %d components"
        (Array.length t.names) n;
    Array.iteri
      (fun i comp ->
        let fi = t.fanin.(i) in
        let arity = input_arity comp in
        if Array.length fi <> arity then
          bad "component %d (%s): %d fanin entries but arity %d" i
            (component_name comp) (Array.length fi) arity;
        Array.iteri
          (fun port d ->
            if d < 0 || d >= n then
              bad "component %d (%s) port %d: dangling fanin index %d \
                   (valid range 0..%d)"
                i (component_name comp) port d (n - 1)
            else
              match t.components.(d) with
              | Outport s ->
                bad "component %d (%s) port %d is driven by outport:%s" i
                  (component_name comp) port s
              | _ -> ())
          fi)
      t.components;
    List.iter
      (fun (s, i) ->
        if i < 0 || i >= n then
          bad "input port %S: component index %d out of bounds" s i
        else
          match t.components.(i) with
          | Inport s' when s' = s -> ()
          | c ->
            bad "input port %S: component %d is %s, not inport:%s" s i
              (component_name c) s)
      t.inputs;
    List.iter
      (fun (s, i) ->
        if i < 0 || i >= n then
          bad "output port %S: component index %d out of bounds" s i
        else
          match t.components.(i) with
          | Outport s' when s' = s -> ()
          | c ->
            bad "output port %S: component %d is %s, not outport:%s" s i
              (component_name c) s)
      t.outputs;
    Ok ()
  with Bad m -> Error m

(* A human label for diagnostics: kind, index, and the first attached
   [Graph.label] names when present. *)
let describe t i =
  let base =
    Printf.sprintf "%s#%d" (component_name t.components.(i)) i
  in
  match t.names.(i) with
  | [] -> base
  | nms -> Printf.sprintf "%s(%s)" base (String.concat "," nms)

(* Statistics ----------------------------------------------------------- *)

type stats = {
  gates : int;
  dffs : int;
  inports : int;
  outports : int;
  constants : int;
  total : int;
}

let stats t =
  let gates = ref 0
  and dffs = ref 0
  and ins = ref 0
  and outs = ref 0
  and consts = ref 0 in
  Array.iter
    (function
      | Invc | And2c | Or2c | Xor2c -> incr gates
      | Dffc _ -> incr dffs
      | Inport _ -> incr ins
      | Outport _ -> incr outs
      | Constant _ -> incr consts)
    t.components;
  {
    gates = !gates;
    dffs = !dffs;
    inports = !ins;
    outports = !outs;
    constants = !consts;
    total = Array.length t.components;
  }

let size t = Array.length t.components

(* Fanout: for each component, the list of (sink component, sink input
   port) pairs it drives. *)
let fanout t =
  let out = Array.make (size t) [] in
  Array.iteri
    (fun sink drivers ->
      Array.iteri
        (fun port driver -> out.(driver) <- (sink, port) :: out.(driver))
        drivers)
    t.fanin;
  Array.map List.rev out

(* Content digest ------------------------------------------------------- *)

(* A stable content hash: equal for netlists that differ only in
   component numbering or port-list order, different (modulo hash
   collisions) when the observable circuit differs.

   Components are renumbered canonically by an iterative post-order DFS
   over fanin edges, rooted at the output ports in name order and then
   the input ports in name order.  The traversal is determined solely by
   port names, per-component port order, and graph structure — all
   invariant under index permutations such as [Layout.rank_major] and
   under [Serial] round-trips (which may re-sort the port lists by
   component index).  Back edges through feedback loops are skipped
   exactly as in [extract], so the walk terminates on circular fanin.

   Components unreachable from any port (dead logic) contribute only
   per-kind counts: they cannot affect observable behaviour, but their
   presence still distinguishes the netlist.  Labels ([names]) travel
   with their component and are hashed too. *)
let compute_digest t =
  let n = size t in
  let canon = Array.make n (-1) in
  let on_stack = Array.make n false in
  let next = ref 0 in
  let rev_order = ref [] in
  let visit root =
    if canon.(root) < 0 && not on_stack.(root) then begin
      on_stack.(root) <- true;
      let stack = ref [ (root, 0) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (i, port) :: rest ->
          let fi = t.fanin.(i) in
          if port < Array.length fi then begin
            stack := (i, port + 1) :: rest;
            let c = fi.(port) in
            if canon.(c) < 0 && not on_stack.(c) then begin
              on_stack.(c) <- true;
              stack := (c, 0) :: !stack
            end
          end
          else begin
            on_stack.(i) <- false;
            canon.(i) <- !next;
            incr next;
            rev_order := i :: !rev_order;
            stack := rest
          end
      done
    end
  in
  let by_name l = List.stable_sort (fun (a, _) (b, _) -> compare a b) l in
  List.iter (fun (_, i) -> visit i) (by_name t.outputs);
  List.iter (fun (_, i) -> visit i) (by_name t.inputs);
  let token = function
    | Dffc b -> if b then "dff1" else "dff0"
    | c -> component_name c
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "hydra-digest 1\n";
  List.iter
    (fun i ->
      Buffer.add_string buf (token t.components.(i));
      Array.iter
        (fun c ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int canon.(c)))
        t.fanin.(i);
      List.iter
        (fun nm ->
          Buffer.add_string buf " !";
          Buffer.add_string buf nm)
        t.names.(i);
      Buffer.add_char buf '\n')
    (List.rev !rev_order);
  let port label l =
    List.iter
      (fun (s, i) ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %d\n" label s canon.(i)))
      (by_name l)
  in
  port "input" t.inputs;
  port "output" t.outputs;
  let orphans = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      if canon.(i) < 0 then begin
        let tok = token c in
        Hashtbl.replace orphans tok
          (1 + Option.value ~default:0 (Hashtbl.find_opt orphans tok))
      end)
    t.components;
  List.iter
    (fun (tok, count) ->
      Buffer.add_string buf (Printf.sprintf "orphan %s %d\n" tok count))
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) orphans []));
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The canonical traversal + MD5 above costs milliseconds on the big
   netlists — enough to dominate a warm compiled-circuit cache lookup —
   so memoize per physical netlist value.  Netlist values are only ever
   mutated while being constructed (builders patch fresh arrays before
   publishing the record), so physical identity implies content
   identity; the ephemeron keeps the memo from outliving its netlist,
   and the lock makes it safe from concurrent scheduler task bodies. *)
module Digest_memo = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let digest_memo : string Digest_memo.t = Digest_memo.create 32
let digest_memo_lock = Mutex.create ()

let digest t =
  Mutex.lock digest_memo_lock;
  let cached = Digest_memo.find_opt digest_memo t in
  Mutex.unlock digest_memo_lock;
  match cached with
  | Some d -> d
  | None ->
    let d = compute_digest t in
    Mutex.lock digest_memo_lock;
    Digest_memo.replace digest_memo t d;
    Mutex.unlock digest_memo_lock;
    d

(* [of_graph ~outputs] extracts the netlist reachable from [outputs];
   [extract ~inputs ~outputs] additionally declares input ports explicitly,
   so that unused inputs still appear in the port list. *)
let of_graph ~outputs = extract ~inputs:[] ~outputs
