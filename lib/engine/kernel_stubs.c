/* C kernels for the Slab engine's ~simd:true flavor.
 *
 * hydra_settle_block(values, desc) evaluates one compiled block of the
 * shared Kernel program directly over the OCaml int-array slab.  The
 * descriptor is a flat OCaml int array: [k | n_inv n_and n_or n_xor
 * n_andor n_orand n_xor3 n_out | per-kind (dst, src...) tuples], with
 * every index pre-scaled by k, so a gate's K words live at consecutive
 * addresses and the inner w-loops vectorize.
 *
 * All arithmetic runs on the tagged representation (t = 2v + 1):
 *   - and/or preserve the tag:   (2a+1) & (2b+1) = 2(a&b) + 1
 *   - xor clears it:             (2a+1) ^ (2b+1) = 2(a^b), so re-| 1
 *   - inv via the shifted mask:  ~(2a+1) = 2(~a); & (lane_mask << 1)
 *     drops the sign/overflow bits, then | 1 re-tags
 * so tagged words load straight into vector lanes: one AVX2 register
 * holds 4 tagged 62-lane words, one NEON register holds 2.
 *
 * The stub never allocates, never touches the OCaml runtime and never
 * releases the domain lock ([@@noalloc] on the OCaml side), so the
 * arrays cannot move while it runs.  Vector paths are compile-time
 * gated: -mavx2 comes from the dune probe rule (which requires the
 * host to both compile and *run* AVX2), NEON is baseline on aarch64.
 */

#include <caml/mlvalues.h>

#if defined(__AVX2__)
#include <immintrin.h>
#define HYDRA_SIMD_KIND 2
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define HYDRA_SIMD_KIND 1
#else
#define HYDRA_SIMD_KIND 0
#endif

/* lane_mask << 1: keeps the 62 payload bits of a tagged word, clears
 * the tag and the two top bits. */
#define M2 ((value)0x7FFFFFFFFFFFFFFEULL)

CAMLprim value hydra_simd_kind(value unit)
{
  (void)unit;
  return Val_long(HYDRA_SIMD_KIND);
}

CAMLprim value hydra_settle_block(value v_values, value v_desc)
{
  value *vals = Op_val(v_values);
  const value *d = Op_val(v_desc);
  const long k = Long_val(d[0]);
  const value *p = d + 9;
  long n, j, w;

#if HYDRA_SIMD_KIND == 2
  const __m256i vtag = _mm256_set1_epi64x(1);
  const __m256i vm2 = _mm256_set1_epi64x((long long)M2);
#define VLOAD(a, w) _mm256_loadu_si256((const __m256i *)((a) + (w)))
#define VSTORE(a, w, x) _mm256_storeu_si256((__m256i *)((a) + (w)), (x))
#define VEC_STEP 4
#elif HYDRA_SIMD_KIND == 1
  const int64x2_t vtag = vdupq_n_s64(1);
  const int64x2_t vm2 = vdupq_n_s64((long long)M2);
#define VLOAD(a, w) vld1q_s64((const int64_t *)((a) + (w)))
#define VSTORE(a, w, x) vst1q_s64((int64_t *)((a) + (w)), (x))
#define VEC_STEP 2
#endif

  /* inv: dst = (~src & M2) | 1 */
  n = Long_val(d[1]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *src = vals + Long_val(p[1]);
    p += 2;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             _mm256_or_si256(_mm256_andnot_si256(VLOAD(src, w), vm2), vtag));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, vorrq_s64(vbicq_s64(vm2, VLOAD(src, w)), vtag));
#endif
    for (; w < k; w++)
      dst[w] = (~src[w] & M2) | 1;
  }

  /* and2: tags preserved */
  n = Long_val(d[2]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *s0 = vals + Long_val(p[1]);
    const value *s1 = vals + Long_val(p[2]);
    p += 3;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, _mm256_and_si256(VLOAD(s0, w), VLOAD(s1, w)));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, vandq_s64(VLOAD(s0, w), VLOAD(s1, w)));
#endif
    for (; w < k; w++)
      dst[w] = s0[w] & s1[w];
  }

  /* or2: tags preserved */
  n = Long_val(d[3]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *s0 = vals + Long_val(p[1]);
    const value *s1 = vals + Long_val(p[2]);
    p += 3;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, _mm256_or_si256(VLOAD(s0, w), VLOAD(s1, w)));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, vorrq_s64(VLOAD(s0, w), VLOAD(s1, w)));
#endif
    for (; w < k; w++)
      dst[w] = s0[w] | s1[w];
  }

  /* xor2: re-tag */
  n = Long_val(d[4]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *s0 = vals + Long_val(p[1]);
    const value *s1 = vals + Long_val(p[2]);
    p += 3;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             _mm256_or_si256(_mm256_xor_si256(VLOAD(s0, w), VLOAD(s1, w)),
                             vtag));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, vorrq_s64(veorq_s64(VLOAD(s0, w), VLOAD(s1, w)), vtag));
#endif
    for (; w < k; w++)
      dst[w] = (s0[w] ^ s1[w]) | 1;
  }

  /* andor: dst = (a & b) | (c & e) — tags preserved */
  n = Long_val(d[5]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *a = vals + Long_val(p[1]);
    const value *b = vals + Long_val(p[2]);
    const value *c = vals + Long_val(p[3]);
    const value *e = vals + Long_val(p[4]);
    p += 5;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             _mm256_or_si256(_mm256_and_si256(VLOAD(a, w), VLOAD(b, w)),
                             _mm256_and_si256(VLOAD(c, w), VLOAD(e, w))));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             vorrq_s64(vandq_s64(VLOAD(a, w), VLOAD(b, w)),
                       vandq_s64(VLOAD(c, w), VLOAD(e, w))));
#endif
    for (; w < k; w++)
      dst[w] = (a[w] & b[w]) | (c[w] & e[w]);
  }

  /* orand: dst = (a & b) | c — tags preserved */
  n = Long_val(d[6]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *a = vals + Long_val(p[1]);
    const value *b = vals + Long_val(p[2]);
    const value *c = vals + Long_val(p[3]);
    p += 4;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             _mm256_or_si256(_mm256_and_si256(VLOAD(a, w), VLOAD(b, w)),
                             VLOAD(c, w)));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             vorrq_s64(vandq_s64(VLOAD(a, w), VLOAD(b, w)), VLOAD(c, w)));
#endif
    for (; w < k; w++)
      dst[w] = (a[w] & b[w]) | c[w];
  }

  /* xor3: dst = a ^ b ^ c — two xors leave the tag set */
  n = Long_val(d[7]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *a = vals + Long_val(p[1]);
    const value *b = vals + Long_val(p[2]);
    const value *c = vals + Long_val(p[3]);
    p += 4;
    w = 0;
#if HYDRA_SIMD_KIND == 2
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             _mm256_xor_si256(_mm256_xor_si256(VLOAD(a, w), VLOAD(b, w)),
                              VLOAD(c, w)));
#elif HYDRA_SIMD_KIND == 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w,
             veorq_s64(veorq_s64(VLOAD(a, w), VLOAD(b, w)), VLOAD(c, w)));
#endif
    for (; w < k; w++)
      dst[w] = a[w] ^ b[w] ^ c[w];
  }

  /* outports: plain copies */
  n = Long_val(d[8]);
  for (j = 0; j < n; j++) {
    value *dst = vals + Long_val(p[0]);
    const value *src = vals + Long_val(p[1]);
    p += 2;
    w = 0;
#if HYDRA_SIMD_KIND >= 1
    for (; w + VEC_STEP <= k; w += VEC_STEP)
      VSTORE(dst, w, VLOAD(src, w));
#endif
    for (; w < k; w++)
      dst[w] = src[w];
  }

  return Val_unit;
}
