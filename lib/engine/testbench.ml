(* A test-bench DSL: declarative stimulus and expectations over named
   ports, runnable against any netlist engine.

   Paper section 6.4: "Hydra provides a set of tools for defining
   simulation drivers — functions that take inputs in a convenient form
   and generate the corresponding circuit input signals, and similarly
   format the circuit outputs".  This module is that toolkit for the
   netlist engines: drive words (not just bits) with per-cycle values or
   generator functions, check expected values where specified, and get a
   readable report (with ASCII waveforms on failure). *)

module Netlist = Hydra_netlist.Netlist

(* How to drive one logical signal (a named bit or a named word whose bit
   ports are [name0 .. name{w-1}], MSB first — the convention used
   throughout the library). *)
type stimulus =
  | Bit_values of string * bool list  (* port, value per cycle (then hold last) *)
  | Bit_fun of string * (int -> bool)
  | Word_values of string * int * int list  (* prefix, width, value per cycle *)
  | Word_fun of string * int * (int -> int)

type expectation =
  | Expect_bit of { cycle : int; port : string; value : bool }
  | Expect_word of { cycle : int; prefix : string; width : int; value : int }

type failure = {
  at_cycle : int;
  what : string;
  expected : string;
  got : string;
}

type report = {
  cycles_run : int;
  failures : failure list;
  observed : (string * bool list) list;  (* every output's full trace *)
}

let passed r = r.failures = []

let bit_port_names = function
  | Bit_values (p, _) | Bit_fun (p, _) -> [ p ]
  | Word_values (p, w, _) | Word_fun (p, w, _) ->
    List.init w (fun i -> Printf.sprintf "%s%d" p i)

let value_at stim t =
  match stim with
  | Bit_values (_, vs) -> (
      let n = List.length vs in
      match vs with
      | [] -> [ false ]
      | _ -> [ List.nth vs (min t (n - 1)) ])
  | Bit_fun (_, f) -> [ f t ]
  | Word_values (_, w, vs) ->
    let n = List.length vs in
    let v = if n = 0 then 0 else List.nth vs (min t (n - 1)) in
    Hydra_core.Bitvec.of_int ~width:w v
  | Word_fun (_, w, f) -> Hydra_core.Bitvec.of_int ~width:w (f t)

(* Run on the compiled engine. *)
let run ?(engine = `Compiled) ~cycles ~stimuli ~expectations netlist =
  let sim =
    match engine with
    | `Compiled -> `C (Compiled.create netlist)
    | `Interp -> `I (Interp.create netlist)
  in
  let set name v =
    match sim with
    | `C s -> Compiled.set_input s name v
    | `I s -> Interp.set_input s name v
  in
  let settle () = match sim with `C s -> Compiled.settle s | `I _ -> () in
  let outputs () =
    match sim with `C s -> Compiled.outputs s | `I s -> Interp.outputs s
  in
  let tick () =
    match sim with `C s -> Compiled.tick s | `I s -> Interp.step s
  in
  let out_names = List.map fst netlist.Netlist.outputs in
  let traces = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace traces n []) out_names;
  let failures = ref [] in
  for t = 0 to cycles - 1 do
    List.iter
      (fun stim ->
        List.iter2 set (bit_port_names stim) (value_at stim t))
      stimuli;
    settle ();
    let outs = outputs () in
    List.iter
      (fun (n, v) -> Hashtbl.replace traces n (v :: Hashtbl.find traces n))
      outs;
    List.iter
      (fun exp ->
        match exp with
        | Expect_bit { cycle; port; value } when cycle = t -> (
            match List.assoc_opt port outs with
            | Some got when got = value -> ()
            | Some got ->
              failures :=
                {
                  at_cycle = t;
                  what = port;
                  expected = string_of_bool value;
                  got = string_of_bool got;
                }
                :: !failures
            | None ->
              failures :=
                { at_cycle = t; what = port; expected = "port"; got = "missing" }
                :: !failures)
        | Expect_word { cycle; prefix; width; value } when cycle = t -> (
            let bits =
              List.init width (fun i ->
                  List.assoc_opt (Printf.sprintf "%s%d" prefix i) outs)
            in
            if List.exists Option.is_none bits then
              failures :=
                {
                  at_cycle = t;
                  what = prefix;
                  expected = "word ports";
                  got = "missing";
                }
                :: !failures
            else
              let got =
                Hydra_core.Bitvec.to_int (List.map Option.get bits)
              in
              if got <> value then
                failures :=
                  {
                    at_cycle = t;
                    what = prefix;
                    expected = string_of_int value;
                    got = string_of_int got;
                  }
                  :: !failures)
        | Expect_bit _ | Expect_word _ -> ())
      expectations;
    tick ()
  done;
  {
    cycles_run = cycles;
    failures = List.rev !failures;
    observed =
      List.map (fun n -> (n, List.rev (Hashtbl.find traces n))) out_names;
  }

(* Batched test benches on a lane-packed engine: up to [62 x words]
   independent cases (each its own stimuli + expectations over the same
   netlist) ride in the lanes of one word-parallel simulation, so N cases
   cost ceil(N/lanes) sequential runs.  Cases may drive different ports;
   a port no case drives in some lane simply stays 0 there, exactly as in
   a scalar run.  The chunk runner is a functor over {!Engine_intf.S} so
   the same checking code serves {!Compiled_wide} (the default, 62 cases
   per chunk) and any [?engine] handle such as {!Slab.engine} (62*K cases
   per chunk).  With [?sharded], the 62-case chunks become sharded jobs
   on the wide engine's persistent per-domain replicas; with
   [?scheduler], they become tasks of one job on the scheduler's team
   (per-member replicas aligned by member index). *)
let run_batched ?scheduler ?sharded ?engine ?deadline ~cycles ~cases netlist =
  let ncases = Array.length cases in
  (* deadline enforcement at chunk boundaries: scheduler paths delegate
     to the job deadline (same semantics), direct paths check between
     chunks and raise the same exception *)
  let t0 = Resilience.now () in
  let check_deadline () =
    match deadline with
    | Some d when Resilience.now () -. t0 > d ->
      raise
        (Resilience.Deadline_exceeded
           { job = "testbench"; elapsed = Resilience.now () -. t0 })
    | _ -> ()
  in
  let out_names = List.map fst netlist.Netlist.outputs in
  let reports = Array.make ncases { cycles_run = 0; failures = []; observed = [] } in
  let module Run (E : Engine_intf.S) = struct
    (* lane [l] of chunk [c] carries case [c * lanes + l]; reads go
       through word [l / 62], bit [l mod 62] *)
    let chunk sim c =
      let words = E.words sim in
      let lanes = Hydra_core.Packed.lanes * words in
      let base = c * lanes in
      let count = min lanes (ncases - base) in
      E.reset sim;
      let traces = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace traces n []) out_names;
      let failures = Array.make count [] in
      let lane_of ws l =
        Hydra_core.Packed.lane
          ws.(l / Hydra_core.Packed.lanes)
          (l mod Hydra_core.Packed.lanes)
      in
      for t = 0 to cycles - 1 do
        for l = 0 to count - 1 do
          let stimuli, _ = cases.(base + l) in
          List.iter
            (fun stim ->
              List.iter2
                (fun port v -> E.set_input_lane sim port l v)
                (bit_port_names stim) (value_at stim t))
            stimuli
        done;
        E.settle sim;
        let outs =
          List.map (fun n -> (n, Array.init words (E.output_word sim n))) out_names
        in
        List.iter
          (fun (n, ws) -> Hashtbl.replace traces n (ws :: Hashtbl.find traces n))
          outs;
        for l = 0 to count - 1 do
          let _, expectations = cases.(base + l) in
          let fail f = failures.(l) <- f :: failures.(l) in
          List.iter
            (fun exp ->
              match exp with
              | Expect_bit { cycle; port; value } when cycle = t -> (
                  match List.assoc_opt port outs with
                  | Some ws ->
                    let got = lane_of ws l in
                    if got <> value then
                      fail
                        {
                          at_cycle = t;
                          what = port;
                          expected = string_of_bool value;
                          got = string_of_bool got;
                        }
                  | None ->
                    fail
                      { at_cycle = t; what = port; expected = "port"; got = "missing" })
              | Expect_word { cycle; prefix; width; value } when cycle = t -> (
                  let bits =
                    List.init width (fun i ->
                        List.assoc_opt (Printf.sprintf "%s%d" prefix i) outs)
                  in
                  if List.exists Option.is_none bits then
                    fail
                      {
                        at_cycle = t;
                        what = prefix;
                        expected = "word ports";
                        got = "missing";
                      }
                  else
                    let got =
                      Hydra_core.Bitvec.to_int
                        (List.map (fun ws -> lane_of (Option.get ws) l) bits)
                    in
                    if got <> value then
                      fail
                        {
                          at_cycle = t;
                          what = prefix;
                          expected = string_of_int value;
                          got = string_of_int got;
                        })
              | Expect_bit _ | Expect_word _ -> ())
            expectations
        done;
        E.tick sim
      done;
      for l = 0 to count - 1 do
        reports.(base + l) <-
          {
            cycles_run = cycles;
            failures = List.rev failures.(l);
            observed =
              List.map
                (fun n ->
                  (n, List.rev_map (fun ws -> lane_of ws l) (Hashtbl.find traces n)))
                out_names;
          }
      done
  end in
  (match (sharded, engine) with
  | Some _, Some _ ->
    invalid_arg "Testbench.run_batched: pass either ?sharded or ?engine, not both"
  | Some sh, None ->
    (match scheduler with
    | Some sch when Scheduler.pool sch != Sharded.pool sh ->
      invalid_arg
        "Testbench.run_batched: ?scheduler and ?sharded must share one pool"
    | _ -> ());
    let module C = Run (struct
      include Compiled_wide

      let name = "wide"

      let create ?optimize ?relayout ?fuse ?certify nl =
        Compiled_wide.create ?optimize ?relayout ?fuse ?certify nl
    end) in
    let ch = Scheduler.chunking ~lanes:Sharded.lanes ncases in
    (match scheduler with
    | Some sch ->
      Scheduler.run_tasks sch ~name:"testbench" ?deadline ch.Scheduler.count
        (fun ~member c -> C.chunk (Sharded.replica sh member) c)
    | None ->
      Sharded.dispatch sh ch.Scheduler.count (fun sim c ->
          check_deadline ();
          C.chunk sim c))
  | None, eng ->
    let (module E) = Option.value eng ~default:Engine_intf.wide in
    let module C = Run (E) in
    let sim = E.create netlist in
    let lanes = Hydra_core.Packed.lanes * E.words sim in
    let ch = Scheduler.chunking ~lanes ncases in
    (match scheduler with
    | Some sch when Scheduler.domains sch > 1 && ch.Scheduler.count > 1 ->
      let sims =
        Array.init (Scheduler.domains sch) (fun i ->
            if i = 0 then sim else E.replicate sim)
      in
      Scheduler.run_tasks sch ~name:"testbench" ?deadline ch.Scheduler.count
        (fun ~member c -> C.chunk sims.(member) c)
    | _ ->
      for c = 0 to ch.Scheduler.count - 1 do
        check_deadline ();
        C.chunk sim c
      done));
  reports

let report_string r =
  if passed r then Printf.sprintf "PASS (%d cycles)" r.cycles_run
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "FAIL: %d mismatch(es) in %d cycles\n"
         (List.length r.failures) r.cycles_run);
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "  cycle %d, %s: expected %s, got %s\n" f.at_cycle
             f.what f.expected f.got))
      r.failures;
    Buffer.add_string buf "observed waveforms:\n";
    Buffer.add_string buf
      (Wave.render (List.map (fun (n, vs) -> Wave.bit n vs) r.observed));
    Buffer.contents buf
  end
