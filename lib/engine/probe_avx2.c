/* Build-time probe: does this host compile AND execute AVX2?  Compiled
 * and run by probe_simd.sh; exits 0 only if a real AVX2 instruction
 * retires, so a cross-build or an old CPU behind a new compiler both
 * fall back to scalar. */
#include <immintrin.h>

int main(void)
{
  volatile long long x[4] = {1, 2, 3, 4};
  __m256i a = _mm256_loadu_si256((const __m256i *)x);
  __m256i b = _mm256_add_epi64(a, a);
  _mm256_storeu_si256((__m256i *)x, b);
  return x[0] == 2 ? 0 : 1;
}
