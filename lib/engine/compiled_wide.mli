(** Word-parallel (62-lane) levelized compiled simulator: every net holds
    a machine word of {!lanes} independent simulation lanes, so one pass
    over the gate arrays advances 62 stimulus streams at once — the
    sequential generalization of {!Hydra_core.Packed}.  The inner loop is
    branch-free: each levelized rank is pre-split into per-gate-kind
    index arrays at compile time, the netlist is re-laid-out rank-major
    so those loops sweep the value array near-sequentially, and common
    2-level patterns (and-or, or-and, xor chains) run as fused kernels. *)

type t

val lanes : int
(** 62, see {!Hydra_core.Packed.lanes}. *)

val lane_mask : int

val create : ?optimize:bool -> ?relayout:bool -> ?fuse:bool ->
  ?certify:bool -> ?tuning:Kernel.tuning -> Hydra_netlist.Netlist.t -> t
(** Raises {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit.  [~optimize:true] (default false) runs the
    {!Hydra_netlist.Optimize} pre-pass before compilation.
    [~relayout] (default true) applies the
    {!Hydra_netlist.Layout.rank_major} memory re-layout.  [~fuse]
    (default true) absorbs fanout-1 inner gates into fused and-or /
    or-and / xor-chain kernels.  [~certify:true] (default false)
    translation-validates each pre-pass run with
    {!Hydra_analyze.Certify} — packed-random I/O equivalence for the
    optimizer, a complete permutation proof for the re-layout — and
    raises {!Hydra_analyze.Certify.Certification_failed} on a lie.
    [~tuning] (default {!Kernel.default_tuning}) sizes the rank blocks
    ({!Kernel.tuning}); it never changes what is computed. *)

val of_program : Kernel.program -> t
(** Build an engine over an already-compiled {!Kernel.program} (from
    {!Kernel.compile}, {!Kernel.patch} or {!Cache}), skipping every
    compile-time pass: only the per-instance value state is allocated.
    Requires a program compiled with [k = 1]. *)

val program : t -> Kernel.program
(** The shared compiled program this engine runs. *)

val replicate : t -> t
(** A fresh engine over the same compiled circuit: shares the immutable
    compiled arrays, owns its own value state (at power-up), padded so
    replicas never share a cache line.  Safe to run concurrently with the
    original in another domain. *)

val reset : t -> unit
(** Restore power-up values in every lane. *)

val set_input : t -> string -> int -> unit
(** Set an input's packed word (lane [l] = bit [l]; masked to
    {!lane_mask}). *)

val set_input_bool : t -> string -> bool -> unit
(** Broadcast one value to every lane. *)

val set_input_lane : t -> string -> int -> bool -> unit
(** Set one lane of an input, leaving the others unchanged. *)

val settle : t -> unit
(** Evaluate the combinational logic for the current cycle (all lanes). *)

val tick : t -> unit
(** Latch every dff from its settled input (word copies) and advance the
    clock. *)

val step : t -> unit
(** [settle] then [tick]. *)

val output : t -> string -> int
(** An output's packed word. *)

val output_lane : t -> string -> int -> bool
val outputs : t -> (string * int) list

val peek : t -> int -> int
(** Current packed word of a component (post-optimize, post-relayout
    index — see {!netlist}).  The word of a gate absorbed into a fused
    kernel (fanout-1 inner gate, see {!fused_gates}) is never written and
    reads as stale; every other component is exact. *)

val poke : t -> int -> int -> unit
(** Set the packed word of a component directly by its (post-optimize,
    post-relayout) index — the hashtable-free counterpart of
    {!set_input} for hot loops that resolved {!netlist} port indices up
    front.  Only meaningful on inputs and dffs: a poked gate output is
    overwritten by the next {!settle}. *)

type force = {
  f_site : int;  (** component index in {!netlist} *)
  mutable force0 : int;  (** lanes driven to 0 *)
  mutable force1 : int;  (** lanes driven to 1 (wins over [force0]) *)
  mutable flip : int;  (** lanes inverted, after the stuck masks *)
}
(** A per-lane value override applied at one component's output during
    every {!settle} — the runtime fault-injection hook used by
    {!Hydra_verify.Campaign}.  The mask words are mutable so a campaign
    can re-seed per-cycle (intermittent) faults without re-registering. *)

val set_forces : t -> force array -> unit
(** Replace the registered force set.  Forces apply at the rank boundary
    where the forced component's word becomes visible to its readers:
    before rank 0 for inputs, dffs and constants; right after the
    component's own rank for gates and outports.  Raises [Invalid_argument]
    on an engine built with fused kernels (a consumed inner gate's word is
    never materialized, so its force would be lost — build with
    [~fuse:false]) or on an out-of-range site. *)

val clear_forces : t -> unit
(** Drop all forces, restoring the zero-overhead hot path. *)

val cycle : t -> int
val critical_path : t -> int

val words : t -> int
(** Words per signal — always 1 here; the {!Engine_intf.S} view of this
    engine.  {!Slab} generalizes to K. *)

val set_input_word : t -> string -> int -> int -> unit
(** [set_input_word t name w v]: word-indexed {!set_input}; the word
    index [w] must be 0 (raises a descriptive [Invalid_argument]
    otherwise). *)

val output_word : t -> string -> int -> int
(** Word-indexed {!output}; the word index must be 0. *)

val peek_word : t -> int -> int -> int
(** Word-indexed {!peek}; the word index must be 0. *)

val poke_word : t -> int -> int -> int -> unit
(** Word-indexed {!poke}; the word index must be 0. *)

val fused_gates : t -> int
(** Number of gates evaluated inside fused kernels rather than stored —
    array traffic saved per pass. *)

val netlist : t -> Hydra_netlist.Netlist.t
(** The netlist actually compiled — post-[~optimize], post-[~relayout]:
    component indices (as used by {!peek}) refer to this netlist. *)

val run_packed :
  t -> inputs:(string * int list) list -> cycles:int -> (string * int) list list
(** Whole packed simulation, the word analogue of {!Compiled.run}: per
    input, one packed word per cycle (shorter streams padded with 0);
    returns one packed output row per cycle. *)

val run_vectors :
  ?pool:Hydra_parallel.Pool.t -> t -> bool array array -> bool array array
(** Batched combinational testbench: row [k] of the argument is one test
    vector (one bool per declared input, in port-list order); row [k] of
    the result is the settled outputs (port-list order).  Vectors are
    packed 62 per pass; with [?pool], passes chunk across domains, each
    chunk simulating its own {!replicate} — no barriers inside a chunk.
    {!Sharded.run_vectors} is the persistent-replica version. *)

val run_batches :
  ?pool:Hydra_parallel.Pool.t ->
  t ->
  batches:(string * int list) list array ->
  cycles:int ->
  (string * int) list list array
(** Independent sequential lane-batches: element [b] of the result is
    [run_packed] of [batches.(b)].  With [?pool], batches chunk across
    domains (one replica per chunk) — batch-level parallelism composing
    with lane-level packing.  {!Sharded.run_batches} is the
    persistent-replica version. *)
