(* The word-indexed face shared by the compiled word-parallel engines.

   {!Compiled_wide} (1 word per signal, 62 lanes) and {!Slab} (K words,
   62*K lanes) expose the same operations once the word index is explicit;
   this signature is what the engine-polymorphic entry points
   ({!Testbench.run_batched} [?engine], {!Hydra_verify.Equiv}'s
   engine-vs-engine checks, the shared test battery) program against.
   Values of type [(module S)] are runtime handles — [Slab.engine] bakes
   a chosen K and gating mode into one. *)

module type S = sig
  type t

  val name : string
  (** Display name for reports ("wide", "slab(k=8)", ...). *)

  val create :
    ?optimize:bool ->
    ?relayout:bool ->
    ?fuse:bool ->
    ?certify:bool ->
    Hydra_netlist.Netlist.t ->
    t

  val words : t -> int
  (** Words per signal; total lanes = [62 * words t]. *)

  val replicate : t -> t
  val reset : t -> unit

  val set_input_word : t -> string -> int -> int -> unit
  (** [set_input_word t name w v]: packed word [w] (0-based) of an
      input. *)

  val set_input_lane : t -> string -> int -> bool -> unit
  (** Global lane index, [0 <= lane < 62 * words t]. *)

  val settle : t -> unit
  val tick : t -> unit
  val step : t -> unit
  val output_word : t -> string -> int -> int
  val output_lane : t -> string -> int -> bool
  val peek_word : t -> int -> int -> int
  val poke_word : t -> int -> int -> int -> unit
  val cycle : t -> int
  val netlist : t -> Hydra_netlist.Netlist.t
end

(* {!Compiled_wide} as an engine handle (words = 1). *)
let wide : (module S) =
  (module struct
    include Compiled_wide

    let name = "wide"

    (* Re-bind create without the ?tuning parameter so the module keeps
       matching [S] — the handle always compiles with default tuning. *)
    let create ?optimize ?relayout ?fuse ?certify nl =
      Compiled_wide.create ?optimize ?relayout ?fuse ?certify nl
  end)
