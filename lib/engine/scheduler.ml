(* Unified job-graph scheduler: the one fan-out layer every tool chunks
   through (Campaign, Equiv, Fault, Testbench, bench).

   A scheduler owns (or borrows) one {!Pool} domain team.  Clients
   submit jobs — a name, a priority, dependencies, a task count and a
   [body ~member task] — and [run] drains the whole graph on the team:
   each member claims tasks one at a time from the highest-priority
   ready job, so independent jobs interleave on one set of domains
   instead of each spinning up its own pool.  [member] indexes the
   claiming team member (0 .. domains-1), which is how engine clients
   pick a per-member replica: replicas built over [pool t] line up with
   the member indices handed to bodies.

   Scheduling state lives behind one mutex; bodies and progress
   callbacks always run outside it (so a callback may safely re-enter
   the scheduler: cancel, submit, status).  That coarse lock is
   deliberate: tasks here are chunk-sized (one 62·K-lane engine pass, a
   whole equivalence pass), so the per-claim lock is noise next to the
   work, and it keeps cancellation, failure propagation and the
   dependency bookkeeping obviously correct.

   Resilience (PR 10): jobs may carry a deadline (expiry at a chunk
   boundary moves the job to the terminal [Timed_out] state, which
   cancels dependents exactly like a failure), a retry policy (failed
   tasks classified transient are re-claimed after an exponential
   backoff with deterministic jitter, attempts capped and journaled in
   the job's {!trail}), and a lane demand (an [?admission] controller
   sheds the lowest-priority pending jobs when the in-flight lane
   budget is exceeded).  A [?watchdog] horizon arms a monitor that
   fails the owning job of any pool member whose heartbeat goes stale —
   with a stack-site witness — instead of hanging the team.  Deadlines,
   backoff due-times and the watchdog are driven by a ticker domain
   that wakes parked members; it exists only while [run] executes and
   only when some job needs it. *)

module Pool = Hydra_parallel.Pool

exception Dependency_cycle of string list

exception Interrupted

type status =
  | Pending
  | Running
  | Done
  | Failed of exn
  | Cancelled
  | Timed_out

type job = {
  id : int;
  name : string;
  priority : int;
  tasks : int;
  body : member:int -> int -> unit;
  progress : (done_:int -> total:int -> unit) option;
  deadline : float option;  (* absolute wall clock *)
  retry : Resilience.retry option;
  lanes : int option;  (* declared engine-lane demand, for admission *)
  submitted : float;
  attempts : (int, int) Hashtbl.t;  (* task -> failed attempts *)
  mutable deps : job list;
  mutable state : status;
  mutable next : int;  (* next unclaimed fresh task *)
  mutable retry_queue : int list;  (* failed tasks awaiting re-claim *)
  mutable not_before : float;  (* earliest next claim (backoff) *)
  mutable completed : int;
  mutable inflight : int;
  mutable shed : bool;  (* cancelled by the admission controller *)
  mutable trail : string list;  (* journal, newest entry first *)
}

type t = {
  pool : Pool.t;
  owns_pool : bool;
  watchdog : float option;  (* heartbeat horizon, seconds *)
  admission : Resilience.admission option;
  m : Mutex.t;
  cv : Condition.t;
  mutable jobs : job list;  (* newest first *)
  mutable seq : int;
  mutable running : bool;
  mutable stuck : string list option;
  mutable active : (job * float) option array;  (* per member: claim *)
  mutable ticker : unit Domain.t option;
}

let make_t ~pool ~owns_pool ~watchdog ~admission =
  (match watchdog with
  | Some h when h <= 0.0 ->
    invalid_arg "Scheduler: watchdog horizon must be > 0"
  | _ -> ());
  {
    pool;
    owns_pool;
    watchdog;
    admission;
    m = Mutex.create ();
    cv = Condition.create ();
    jobs = [];
    seq = 0;
    running = false;
    stuck = None;
    active = Array.make (Pool.size pool) None;
    ticker = None;
  }

let create ?domains ?watchdog ?admission () =
  make_t ~pool:(Pool.create ?domains ()) ~owns_pool:true ~watchdog ~admission

let of_pool ?watchdog ?admission pool =
  make_t ~pool ~owns_pool:false ~watchdog ~admission

let pool t = t.pool
let domains t = Pool.size t.pool
let shutdown t = if t.owns_pool then Pool.shutdown t.pool
let job_name j = j.name

let status t j =
  Mutex.lock t.m;
  let s = j.state in
  Mutex.unlock t.m;
  s

(* Journal an event on the job's progress trail (lock held).  Entries
   are stamped relative to submission so replays line up. *)
let journal j msg =
  j.trail <-
    Printf.sprintf "+%.3fs %s" (Resilience.now () -. j.submitted) msg
    :: j.trail

let trail t j =
  Mutex.lock t.m;
  let tr = List.rev j.trail in
  Mutex.unlock t.m;
  tr

(* A job is settled when nothing about it will change again: terminal
   state and no body still executing. *)
let terminal j =
  match j.state with
  | Done | Failed _ | Cancelled | Timed_out -> true
  | Pending | Running -> false

let settled j = terminal j && j.inflight = 0

let doomed t j =
  Mutex.lock t.m;
  let d =
    match j.state with
    | Failed _ | Cancelled | Timed_out -> true
    | Pending | Running | Done -> false
  in
  Mutex.unlock t.m;
  d

let checkpoint t j = if doomed t j then raise Interrupted

let beat t ~member =
  if member >= 0 && member < Pool.size t.pool then begin
    let _, site = Pool.last_beat t.pool member in
    Pool.heartbeat t.pool ~member ~site
  end

let dep_done d = d.state = Done

let dep_doomed d =
  match d.state with
  | Failed _ | Cancelled | Timed_out -> true
  | Pending | Running | Done -> false

(* Kill a job's unclaimed work (lock held). *)
let seal j =
  j.next <- j.tasks;
  j.retry_queue <- []

(* Admission shedding (lock held): while the declared lane demand of
   live jobs exceeds the budget, cancel the lowest-priority pending
   not-yet-started job (ties: the newest goes first).  Jobs without a
   lane declaration are outside the budget. *)
let shed_overload t a =
  let live_lanes () =
    List.fold_left
      (fun acc j ->
        match j.lanes with
        | Some l when not (terminal j) -> acc + l
        | _ -> acc)
      0 t.jobs
  in
  let sheddable j =
    (not (terminal j))
    && j.state = Pending
    && j.inflight = 0 && j.completed = 0
    && j.lanes <> None
  in
  let budget = Resilience.budget a in
  let continue_ = ref true in
  while !continue_ && live_lanes () > budget do
    let victim =
      List.fold_left
        (fun best j ->
          if not (sheddable j) then best
          else
            match best with
            | Some b
              when b.priority < j.priority
                   || (b.priority = j.priority && b.id > j.id) ->
              best
            | _ -> Some j)
        None t.jobs
    in
    match victim with
    | None -> continue_ := false
    | Some j ->
      j.state <- Cancelled;
      j.shed <- true;
      seal j;
      journal j
        (Printf.sprintf "shed: in-flight lane demand exceeds budget %d" budget);
      Resilience.count_shed a
  done

(* Deadline expiry and watchdog verdicts (lock held).  Called from
   every scheduling scan and from the ticker, so expiries are observed
   even while all members are parked or busy.  Returns whether any
   state changed (the caller broadcasts). *)
let reap t ~now =
  let changed = ref false in
  List.iter
    (fun j ->
      match (j.state, j.deadline) with
      | (Pending | Running), Some d when now > d ->
        j.state <- Timed_out;
        seal j;
        journal j
          (Printf.sprintf "deadline exceeded after %.3fs (%d/%d tasks done)"
             (now -. j.submitted) j.completed j.tasks);
        changed := true
      | _ -> ())
    t.jobs;
  (match t.watchdog with
  | None -> ()
  | Some horizon ->
    Array.iteri
      (fun member slot ->
        match slot with
        | Some (j, _since) when not (terminal j) ->
          let bt, site = Pool.last_beat t.pool member in
          let age = now -. bt in
          if age > horizon then begin
            j.state <- Failed (Resilience.Stuck_member { member; site; age });
            seal j;
            journal j
              (Printf.sprintf
                 "watchdog: member %d stuck at %S for %.3fs (> %.3fs horizon)"
                 member site age horizon);
            changed := true
          end
        | _ -> ())
      t.active);
  !changed

let rec submit ?(name = "job") ?(priority = 0) ?progress ?(deps = []) ?deadline
    ?retry ?lanes t ~tasks body =
  if tasks < 0 then invalid_arg "Scheduler.submit: tasks must be >= 0";
  (match deadline with
  | Some d when d <= 0.0 ->
    invalid_arg "Scheduler.submit: deadline must be > 0 seconds"
  | _ -> ());
  (match lanes with
  | Some l when l < 1 -> invalid_arg "Scheduler.submit: lanes must be >= 1"
  | _ -> ());
  let now = Resilience.now () in
  Mutex.lock t.m;
  let j =
    {
      id = t.seq;
      name;
      priority;
      tasks;
      body;
      progress;
      deadline = Option.map (fun d -> now +. d) deadline;
      retry;
      lanes;
      submitted = now;
      attempts = Hashtbl.create 4;
      deps;
      state = Pending;
      next = 0;
      retry_queue = [];
      not_before = now;
      completed = 0;
      inflight = 0;
      shed = false;
      trail = [];
    }
  in
  t.seq <- t.seq + 1;
  t.jobs <- j :: t.jobs;
  (match t.admission with Some a -> shed_overload t a | None -> ());
  (* a mid-run submission with a deadline or retry policy needs the
     ticker so backoff due-times and expiries fire while members park *)
  if
    t.running && t.ticker = None
    && (t.watchdog <> None || deadline <> None || retry <> None)
  then t.ticker <- Some (Domain.spawn (fun () -> ticker_loop t));
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  j

(* The ticker: a lightweight monitor domain alive for the duration of
   one [run].  Every tick it reaps expired deadlines and stale members
   and wakes the team, so a fully-parked team still observes timeouts
   and due backoffs.  Stops when [run] clears [running]. *)
and ticker_loop t =
  let tick =
    match t.watchdog with
    | Some h -> Float.min 0.001 (h /. 4.0)
    | None -> 0.001
  in
  let rec loop () =
    Unix.sleepf tick;
    Mutex.lock t.m;
    let continue_ = t.running in
    if continue_ then begin
      ignore (reap t ~now:(Resilience.now ()));
      Condition.broadcast t.cv
    end;
    Mutex.unlock t.m;
    if continue_ then loop ()
  in
  loop ()

let depend t ~job ~on =
  Mutex.lock t.m;
  job.deps <- on @ job.deps;
  Mutex.unlock t.m

let cancel t j =
  Mutex.lock t.m;
  (match j.state with
  | Pending | Running ->
    j.state <- Cancelled;
    seal j;
    journal j "cancelled";
    Condition.broadcast t.cv
  | Done | Failed _ | Cancelled | Timed_out -> ());
  Mutex.unlock t.m

(* Depth-first search for a dependency cycle among unsettled jobs; the
   witness lists the job names along the cycle, each depending on the
   next (and the last on the first).  Caller holds the lock. *)
let find_cycle jobs =
  let color : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let witness = ref None in
  let rec visit path j =
    if !witness = None && not (terminal j) then
      match Hashtbl.find_opt color j.id with
      | Some 2 -> ()
      | Some 1 ->
        (* [path] runs newest-first from the current job back to the
           root, with [j] itself at the head (just re-encountered); the
           cycle is everything from the head down to [j]'s previous
           visit, that occurrence included *)
        let rec take acc = function
          | [] -> acc
          | x :: _ when x.id = j.id -> x.name :: acc
          | x :: rest -> take (x.name :: acc) rest
        in
        witness := Some (match path with _ :: rest -> take [] rest | [] -> [])
      | Some _ | None ->
        Hashtbl.replace color j.id 1;
        List.iter (fun d -> visit (d :: path) d) j.deps;
        Hashtbl.replace color j.id 2
  in
  List.iter (fun j -> visit [ j ] j) jobs;
  !witness

(* One scheduling decision, lock held: settle what can settle, then
   either claim a task, finish (all settled), or park on the condvar. *)
type claim = Task of job * int | Finish | Park

(* Does the job have work a member could claim right now (ignoring the
   backoff gate)? *)
let claimable j =
  (match j.state with Pending | Running -> true | _ -> false)
  && (j.retry_queue <> [] || j.next < j.tasks)
  && List.for_all dep_done j.deps

let scan t ~member =
  let now = Resilience.now () in
  let changed = ref (reap t ~now) in
  (* propagate cancellation through doomed dependencies and settle ready
     zero-task jobs, to a fixpoint *)
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun j ->
        match j.state with
        | Pending ->
          if List.exists dep_doomed j.deps then begin
            j.state <- Cancelled;
            seal j;
            journal j "cancelled: dependency failed, timed out or cancelled";
            progressed := true;
            changed := true
          end
          else if j.tasks = 0 && List.for_all dep_done j.deps then begin
            j.state <- Done;
            progressed := true;
            changed := true
          end
        | _ -> ())
      t.jobs
  done;
  if !changed then Condition.broadcast t.cv;
  let best = ref None in
  List.iter
    (fun j ->
      if claimable j && now >= j.not_before then
        match !best with
        | Some b
          when b.priority > j.priority
               || (b.priority = j.priority && b.id < j.id) -> ()
        | _ -> best := Some j)
    t.jobs;
  match !best with
  | Some j ->
    if j.state = Pending then j.state <- Running;
    let i =
      match j.retry_queue with
      | i :: rest ->
        j.retry_queue <- rest;
        i
      | [] ->
        let i = j.next in
        j.next <- i + 1;
        i
    in
    j.inflight <- j.inflight + 1;
    t.active.(member) <- Some (j, now);
    Pool.heartbeat t.pool ~member ~site:j.name;
    Task (j, i)
  | None ->
    if List.for_all settled t.jobs then Finish
    else if
      List.exists (fun j -> j.inflight > 0) t.jobs
      || List.exists (fun j -> claimable j && now < j.not_before) t.jobs
    then Park
      (* nothing runnable this instant, but either bodies are still in
         flight or a backoff/due-time will make work claimable; the
         completion broadcast or the ticker wakes us *)
    else begin
      (* nothing claimable, nothing running, no pending due-time,
         unsettled jobs remain: a dependency cycle slipped in after
         [run]'s up-front check (jobs submitted mid-run).  Cancel the
         stragglers so every member can exit, and let [run] raise the
         witness. *)
      if t.stuck = None then
        t.stuck <- Some (Option.value ~default:[] (find_cycle t.jobs));
      List.iter
        (fun j ->
          if not (terminal j) then begin
            j.state <- Cancelled;
            seal j;
            journal j "cancelled: stuck-cycle backstop"
          end)
        t.jobs;
      Condition.broadcast t.cv;
      Finish
    end

let worker t member =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    let rec decide () =
      match scan t ~member with
      | Park ->
        Condition.wait t.cv t.m;
        decide ()
      | (Task _ | Finish) as c -> c
    in
    match decide () with
    | Park -> assert false
    | Finish ->
      Mutex.unlock t.m;
      continue_ := false
    | Task (j, i) ->
      Mutex.unlock t.m;
      (* the body runs unlocked; an exception from it fails the job
         unless a retry policy classifies it transient with attempts to
         spare (siblings and unrelated jobs are unaffected — their
         claims continue; dependents get cancelled by the scan).
         [Interrupted] — the checkpoint signal on an already-doomed job
         — falls through harmlessly: the terminal state wins below. *)
      let err = try j.body ~member i; None with e -> Some e in
      let fire_progress = ref None in
      Mutex.lock t.m;
      j.inflight <- j.inflight - 1;
      t.active.(member) <- None;
      Pool.heartbeat t.pool ~member ~site:"idle";
      (match err with
      | None -> (
        match j.state with
        | Pending | Running ->
          j.completed <- j.completed + 1;
          if
            j.completed = j.tasks && j.retry_queue = []
            && j.next >= j.tasks
          then j.state <- Done;
          fire_progress :=
            Option.map (fun p -> (p, j.completed, j.tasks)) j.progress
        | Done | Failed _ | Cancelled | Timed_out -> ())
      | Some e -> (
        match j.state with
        | Pending | Running -> (
          let attempt = 1 + (try Hashtbl.find j.attempts i with Not_found -> 0) in
          Hashtbl.replace j.attempts i attempt;
          match j.retry with
          | Some p when attempt < p.Resilience.max_attempts
                        && p.Resilience.transient e ->
            let delay =
              Resilience.backoff p ~attempt
                ~seed:((j.id * 8191) + i)
            in
            j.retry_queue <- j.retry_queue @ [ i ];
            j.not_before <-
              Float.max j.not_before (Resilience.now () +. delay);
            journal j
              (Printf.sprintf
                 "task %d attempt %d/%d failed (%s); retry in %.1fms" i
                 attempt p.Resilience.max_attempts (Printexc.to_string e)
                 (delay *. 1000.))
          | _ ->
            j.state <- Failed e;
            seal j;
            journal j
              (Printf.sprintf "task %d attempt %d failed permanently (%s)" i
                 attempt (Printexc.to_string e)))
        | Done | Failed _ | Cancelled | Timed_out -> ()));
      Condition.broadcast t.cv;
      Mutex.unlock t.m;
      (* the progress callback runs strictly outside the claim lock, so
         it may re-enter the scheduler (cancel, submit, status) without
         deadlocking; an exception from it fails the job like a body
         exception *)
      (match !fire_progress with
      | None -> ()
      | Some (p, done_, total) -> (
        match p ~done_ ~total with
        | () -> ()
        | exception e ->
          Mutex.lock t.m;
          (match j.state with
          | Pending | Running | Done ->
            j.state <- Failed e;
            seal j;
            journal j
              (Printf.sprintf "progress callback failed (%s)"
                 (Printexc.to_string e))
          | Failed _ | Cancelled | Timed_out -> ());
          Condition.broadcast t.cv;
          Mutex.unlock t.m))
  done

let run t =
  Mutex.lock t.m;
  if t.running then begin
    Mutex.unlock t.m;
    invalid_arg "Scheduler.run: already running"
  end;
  (match find_cycle t.jobs with
  | Some w ->
    (* reject the whole submitted graph (nothing has started, so there
       is nothing partial to preserve) and leave the scheduler empty and
       reusable *)
    List.iter
      (fun j ->
        if not (terminal j) then begin
          j.state <- Cancelled;
          seal j
        end)
      t.jobs;
    t.jobs <- [];
    Mutex.unlock t.m;
    raise (Dependency_cycle w)
  | None -> ());
  t.running <- true;
  t.stuck <- None;
  if Array.length t.active <> Pool.size t.pool then
    t.active <- Array.make (Pool.size t.pool) None
  else Array.fill t.active 0 (Array.length t.active) None;
  if
    t.ticker = None
    && (t.watchdog <> None
       || List.exists
            (fun j -> j.deadline <> None || j.retry <> None)
            t.jobs)
  then t.ticker <- Some (Domain.spawn (fun () -> ticker_loop t));
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.running <- false;
      Mutex.unlock t.m;
      (match t.ticker with
      | Some d ->
        Domain.join d;
        t.ticker <- None
      | None -> ()))
    (fun () -> Pool.run_team t.pool (fun member -> worker t member));
  Mutex.lock t.m;
  let stuck = t.stuck in
  t.jobs <- List.filter (fun j -> not (settled j)) t.jobs;
  Mutex.unlock t.m;
  match stuck with Some w -> raise (Dependency_cycle w) | None -> ()

let run_tasks t ?name ?priority ?deadline ?retry ?lanes n body =
  if n > 0 then begin
    let j = submit t ?name ?priority ?deadline ?retry ?lanes ~tasks:n body in
    run t;
    match j.state with
    | Done -> ()
    | Failed e -> raise e
    | Timed_out ->
      raise
        (Resilience.Deadline_exceeded
           { job = j.name; elapsed = Resilience.now () -. j.submitted })
    | Cancelled when j.shed ->
      raise (Resilience.Shed { job = j.name; priority = j.priority })
    | Cancelled ->
      failwith
        (Printf.sprintf "Scheduler.run_tasks: job %S was cancelled" j.name)
    | Pending | Running -> assert false
  end

(* Chunking policy ------------------------------------------------------ *)

(* The one lane-packing computation (previously triplicated across
   Campaign, Equiv and Testbench): split [total] cases into chunks of
   [lanes - reserved] so each chunk fills one engine instance's lanes,
   minus any lanes the client keeps for itself (Campaign reserves lane 0
   of every chunk for the golden run). *)
type chunks = { count : int; per_chunk : int; bounds : int -> int * int }

let chunking ?(reserved = 0) ~lanes total =
  if reserved < 0 then invalid_arg "Scheduler.chunking: reserved must be >= 0";
  if lanes <= reserved then
    invalid_arg
      (Printf.sprintf
         "Scheduler.chunking: lanes (%d) must exceed reserved lanes (%d)"
         lanes reserved);
  let per_chunk = lanes - reserved in
  let count = if total <= 0 then 0 else (total + per_chunk - 1) / per_chunk in
  {
    count;
    per_chunk;
    bounds =
      (fun c ->
        let lo = c * per_chunk in
        (lo, min total (lo + per_chunk)));
  }
