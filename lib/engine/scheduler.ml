(* Unified job-graph scheduler: the one fan-out layer every tool chunks
   through (Campaign, Equiv, Fault, Testbench, bench).

   A scheduler owns (or borrows) one {!Pool} domain team.  Clients
   submit jobs — a name, a priority, dependencies, a task count and a
   [body ~member task] — and [run] drains the whole graph on the team:
   each member claims tasks one at a time from the highest-priority
   ready job, so independent jobs interleave on one set of domains
   instead of each spinning up its own pool.  [member] indexes the
   claiming team member (0 .. domains-1), which is how engine clients
   pick a per-member replica: replicas built over [pool t] line up with
   the member indices handed to bodies.

   Scheduling state lives behind one mutex; bodies run outside it.
   That coarse lock is deliberate: tasks here are chunk-sized (one
   62·K-lane engine pass, a whole equivalence pass), so the per-claim
   lock is noise next to the work, and it keeps cancellation, failure
   propagation and the dependency bookkeeping obviously correct. *)

module Pool = Hydra_parallel.Pool

exception Dependency_cycle of string list

type status = Pending | Running | Done | Failed of exn | Cancelled

type job = {
  id : int;
  name : string;
  priority : int;
  tasks : int;
  body : member:int -> int -> unit;
  progress : (done_:int -> total:int -> unit) option;
  mutable deps : job list;
  mutable state : status;
  mutable next : int;  (* next unclaimed task *)
  mutable completed : int;
  mutable inflight : int;
}

type t = {
  pool : Pool.t;
  owns_pool : bool;
  m : Mutex.t;
  cv : Condition.t;
  mutable jobs : job list;  (* newest first *)
  mutable seq : int;
  mutable running : bool;
  mutable stuck : string list option;
}

let create ?domains () =
  {
    pool = Pool.create ?domains ();
    owns_pool = true;
    m = Mutex.create ();
    cv = Condition.create ();
    jobs = [];
    seq = 0;
    running = false;
    stuck = None;
  }

let of_pool pool =
  {
    pool;
    owns_pool = false;
    m = Mutex.create ();
    cv = Condition.create ();
    jobs = [];
    seq = 0;
    running = false;
    stuck = None;
  }

let pool t = t.pool
let domains t = Pool.size t.pool
let shutdown t = if t.owns_pool then Pool.shutdown t.pool
let job_name j = j.name

let status t j =
  Mutex.lock t.m;
  let s = j.state in
  Mutex.unlock t.m;
  s

let submit ?(name = "job") ?(priority = 0) ?progress ?(deps = []) t ~tasks
    body =
  if tasks < 0 then invalid_arg "Scheduler.submit: tasks must be >= 0";
  Mutex.lock t.m;
  let j =
    {
      id = t.seq;
      name;
      priority;
      tasks;
      body;
      progress;
      deps;
      state = Pending;
      next = 0;
      completed = 0;
      inflight = 0;
    }
  in
  t.seq <- t.seq + 1;
  t.jobs <- j :: t.jobs;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  j

let depend t ~job ~on =
  Mutex.lock t.m;
  job.deps <- on @ job.deps;
  Mutex.unlock t.m

let cancel t j =
  Mutex.lock t.m;
  (match j.state with
  | Pending | Running ->
    j.state <- Cancelled;
    j.next <- j.tasks;
    Condition.broadcast t.cv
  | Done | Failed _ | Cancelled -> ());
  Mutex.unlock t.m

(* A job is settled when nothing about it will change again: terminal
   state and no body still executing. *)
let terminal j =
  match j.state with Done | Failed _ | Cancelled -> true | Pending | Running -> false

let settled j = terminal j && j.inflight = 0

let dep_done d = d.state = Done

let dep_doomed d =
  match d.state with Failed _ | Cancelled -> true | _ -> false

(* Depth-first search for a dependency cycle among unsettled jobs; the
   witness lists the job names along the cycle, each depending on the
   next (and the last on the first).  Caller holds the lock. *)
let find_cycle jobs =
  let color : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let witness = ref None in
  let rec visit path j =
    if !witness = None && not (terminal j) then
      match Hashtbl.find_opt color j.id with
      | Some 2 -> ()
      | Some 1 ->
        (* [path] runs newest-first from the current job back to the
           root, with [j] itself at the head (just re-encountered); the
           cycle is everything from the head down to [j]'s previous
           visit, that occurrence included *)
        let rec take acc = function
          | [] -> acc
          | x :: _ when x.id = j.id -> x.name :: acc
          | x :: rest -> take (x.name :: acc) rest
        in
        witness := Some (match path with _ :: rest -> take [] rest | [] -> [])
      | Some _ | None ->
        Hashtbl.replace color j.id 1;
        List.iter (fun d -> visit (d :: path) d) j.deps;
        Hashtbl.replace color j.id 2
  in
  List.iter (fun j -> visit [ j ] j) jobs;
  !witness

(* One scheduling decision, lock held: settle what can settle, then
   either claim a task, finish (all settled), or park on the condvar. *)
type claim = Task of job * int | Finish | Park

let scan t =
  (* propagate cancellation through doomed dependencies and settle ready
     zero-task jobs, to a fixpoint *)
  let changed = ref false in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun j ->
        match j.state with
        | Pending ->
          if List.exists dep_doomed j.deps then begin
            j.state <- Cancelled;
            j.next <- j.tasks;
            progressed := true;
            changed := true
          end
          else if j.tasks = 0 && List.for_all dep_done j.deps then begin
            j.state <- Done;
            progressed := true;
            changed := true
          end
        | _ -> ())
      t.jobs
  done;
  if !changed then Condition.broadcast t.cv;
  let best = ref None in
  List.iter
    (fun j ->
      match j.state with
      | (Pending | Running)
        when j.next < j.tasks && List.for_all dep_done j.deps -> (
        match !best with
        | Some b
          when b.priority > j.priority
               || (b.priority = j.priority && b.id < j.id) -> ()
        | _ -> best := Some j)
      | _ -> ())
    t.jobs;
  match !best with
  | Some j ->
    if j.state = Pending then j.state <- Running;
    let i = j.next in
    j.next <- i + 1;
    j.inflight <- j.inflight + 1;
    Task (j, i)
  | None ->
    if List.for_all settled t.jobs then Finish
    else if List.exists (fun j -> j.inflight > 0) t.jobs then Park
    else begin
      (* nothing claimable, nothing running, unsettled jobs remain: a
         dependency cycle slipped in after [run]'s up-front check (jobs
         submitted mid-run).  Cancel the stragglers so every member can
         exit, and let [run] raise the witness. *)
      if t.stuck = None then
        t.stuck <-
          Some (Option.value ~default:[] (find_cycle t.jobs));
      List.iter
        (fun j -> if not (terminal j) then j.state <- Cancelled)
        t.jobs;
      Condition.broadcast t.cv;
      Finish
    end

let worker t member =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    let rec decide () =
      match scan t with
      | Park ->
        Condition.wait t.cv t.m;
        decide ()
      | (Task _ | Finish) as c -> c
    in
    match decide () with
    | Park -> assert false
    | Finish ->
      Mutex.unlock t.m;
      continue_ := false
    | Task (j, i) ->
      Mutex.unlock t.m;
      (* body and progress run unlocked; an exception from either fails
         the job (siblings and unrelated jobs are unaffected — their
         claims continue; dependents get cancelled by the scan) *)
      let err =
        try
          j.body ~member i;
          (match j.progress with
          | Some p ->
            Mutex.lock t.m;
            let d = j.completed + 1 in
            Mutex.unlock t.m;
            p ~done_:d ~total:j.tasks
          | None -> ());
          None
        with e -> Some e
      in
      Mutex.lock t.m;
      j.inflight <- j.inflight - 1;
      (match err with
      | None ->
        j.completed <- j.completed + 1;
        if j.state = Running && j.completed = j.tasks then j.state <- Done
      | Some e -> (
        match j.state with
        | Pending | Running ->
          j.state <- Failed e;
          j.next <- j.tasks
        | Done | Failed _ | Cancelled -> ()));
      Condition.broadcast t.cv;
      Mutex.unlock t.m
  done

let run t =
  Mutex.lock t.m;
  if t.running then begin
    Mutex.unlock t.m;
    invalid_arg "Scheduler.run: already running"
  end;
  (match find_cycle t.jobs with
  | Some w ->
    (* reject the whole submitted graph (nothing has started, so there
       is nothing partial to preserve) and leave the scheduler empty and
       reusable *)
    List.iter
      (fun j ->
        if not (terminal j) then begin
          j.state <- Cancelled;
          j.next <- j.tasks
        end)
      t.jobs;
    t.jobs <- [];
    Mutex.unlock t.m;
    raise (Dependency_cycle w)
  | None -> ());
  t.running <- true;
  t.stuck <- None;
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.running <- false;
      Mutex.unlock t.m)
    (fun () -> Pool.run_team t.pool (fun member -> worker t member));
  Mutex.lock t.m;
  let stuck = t.stuck in
  t.jobs <- List.filter (fun j -> not (settled j)) t.jobs;
  Mutex.unlock t.m;
  match stuck with Some w -> raise (Dependency_cycle w) | None -> ()

let run_tasks t ?name ?priority n body =
  if n > 0 then begin
    let j = submit t ?name ?priority ~tasks:n body in
    run t;
    match j.state with
    | Done -> ()
    | Failed e -> raise e
    | Cancelled ->
      failwith
        (Printf.sprintf "Scheduler.run_tasks: job %S was cancelled" j.name)
    | Pending | Running -> assert false
  end

(* Chunking policy ------------------------------------------------------ *)

(* The one lane-packing computation (previously triplicated across
   Campaign, Equiv and Testbench): split [total] cases into chunks of
   [lanes - reserved] so each chunk fills one engine instance's lanes,
   minus any lanes the client keeps for itself (Campaign reserves lane 0
   of every chunk for the golden run). *)
type chunks = { count : int; per_chunk : int; bounds : int -> int * int }

let chunking ?(reserved = 0) ~lanes total =
  if reserved < 0 then invalid_arg "Scheduler.chunking: reserved must be >= 0";
  if lanes <= reserved then
    invalid_arg
      (Printf.sprintf
         "Scheduler.chunking: lanes (%d) must exceed reserved lanes (%d)"
         lanes reserved);
  let per_chunk = lanes - reserved in
  let count = if total <= 0 then 0 else (total + per_chunk - 1) / per_chunk in
  {
    count;
    per_chunk;
    bounds =
      (fun c ->
        let lo = c * per_chunk in
        (lo, min total (lo + per_chunk)));
  }
