(* Domain-sharded word-parallel simulation: multiply a lane-packed engine
   by core count.

   The paper's synchronous model (section 4.3) makes every gate within a
   levelized rank independent; {!Compiled_wide} exploits that within one
   machine word (62 lanes per pass) and {!Slab} within K consecutive
   words (62*K lanes).  This module adds the second parallelism axis —
   domains — the only way that composes instead of fighting:
   *batch-level* sharding.  Per-rank fork-join ({!Parallel_sim}) pays two
   barriers per rank per cycle; sharding pays one synchronization per
   *job*.

   Architecture (engine-polymorphic via {!Make}):

   - One base engine is compiled once; every domain owns a private
     [replicate] — separate (cache-line padded) value/dff state over the
     shared immutable compiled index arrays.  Replicas are created once
     at {!of_base} and reused for the sharded engine's whole lifetime, so
     steady-state jobs allocate nothing per batch (the
     transient-replica-per-chunk of {!Compiled_wide.run_batches} was
     measurably slower than a single instance).

   - Work arrives as an array of independent lane-batches.  Pool members
     run in {!Hydra_parallel.Pool.run_team} mode — one long-lived body
     per member — and drain batch indices from a single atomic counter.
     There are no per-cycle and no per-level barriers: a member simulates
     its whole batch undisturbed, claims the next, and the only join is
     when the queue is empty.

   Peak independent simulations per settle pass: [62 x words x domains].
   The top-level values specialize {!Make} to {!Compiled_wide} (the
   historical interface); [Make (Slab)] — predefined as {!Slab_sharded} —
   shards the multi-word slab engine the same way. *)

module W = Compiled_wide
module Pool = Hydra_parallel.Pool
module Netlist = Hydra_netlist.Netlist
module Packed = Hydra_core.Packed

(* What {!Make} needs from an engine: creation is *not* included (engine
   families differ in their configuration surface — Slab has ?k/?gating —
   so the base engine is built by the caller and handed to [of_base]). *)
module type ENGINE = sig
  type t

  val words : t -> int
  val replicate : t -> t
  val reset : t -> unit
  val set_input : t -> string -> int -> unit
  val set_input_word : t -> string -> int -> int -> unit
  val settle : t -> unit
  val step : t -> unit
  val output_word : t -> string -> int -> int
  val peek : t -> int -> int
  val poke : t -> int -> int -> unit
  val netlist : t -> Netlist.t

  val run_packed :
    t -> inputs:(string * int list) list -> cycles:int -> (string * int) list list
end

module type S = sig
  type engine
  type t

  val of_base : ?domains:int -> ?pool:Pool.t -> engine -> t
  val pool : t -> Pool.t
  val domains : t -> int
  val base : t -> engine
  val replica : t -> int -> engine
  val netlist : t -> Netlist.t
  val lanes : t -> int
  val run_tasks : t -> int -> (member:int -> int -> unit) -> unit
  val dispatch : t -> int -> (engine -> int -> unit) -> unit

  val run_batches :
    t ->
    batches:(string * int list) list array ->
    cycles:int ->
    (string * int) list list array

  val run_vectors : t -> bool array array -> bool array array
  val step_batches : t -> batches:int -> cycles:int -> int
  val shutdown : t -> unit
end

module Make (E : ENGINE) = struct
  type engine = E.t

  type t = {
    pool : Pool.t;
    owns_pool : bool;
    replicas : E.t array;  (* one per pool member; [replicas.(0)] is the base *)
  }

  let of_base ?domains ?pool base =
    let pool, owns_pool =
      match pool with
      | Some p -> (p, false)
      | None -> (Pool.create ?domains (), true)
    in
    let replicas =
      Array.init (Pool.size pool) (fun i ->
          if i = 0 then base else E.replicate base)
    in
    { pool; owns_pool; replicas }

  let pool t = t.pool
  let domains t = Pool.size t.pool
  let base t = t.replicas.(0)
  let replica t m = t.replicas.(m)
  let netlist t = E.netlist t.replicas.(0)
  let lanes t = Packed.lanes * E.words t.replicas.(0)
  let shutdown t = if t.owns_pool then Pool.shutdown t.pool

  (* The scheduling core: run [f ~member job] for every [0 <= job < n].
     Members drain jobs from one atomic counter — synchronization at
     batch granularity only — and each call sees the member index, so
     callers can keep per-member state of their own (e.g. a second
     engine's replicas) aligned with ours. *)
  let run_tasks t n f =
    if n <= 0 then ()
    else if domains t = 1 || n = 1 then
      for job = 0 to n - 1 do
        f ~member:0 job
      done
    else begin
      let next = Atomic.make 0 in
      Pool.run_team t.pool (fun member ->
          let rec drain () =
            let job = Atomic.fetch_and_add next 1 in
            if job < n then begin
              f ~member job;
              drain ()
            end
          in
          drain ())
    end

  (* [dispatch t n f] runs [f sim job] for every job on some private
     replica — the common case where only the engine matters. *)
  let dispatch t n f =
    run_tasks t n (fun ~member job -> f t.replicas.(member) job)

  (* Independent sequential lane-batches on persistent replicas: element
     [b] of the result is [run_packed] of [batches.(b)]. *)
  let run_batches t ~batches ~cycles =
    let n = Array.length batches in
    let results = Array.make n [] in
    dispatch t n (fun sim b ->
        results.(b) <- E.run_packed sim ~inputs:batches.(b) ~cycles);
    results

  (* Batched combinational testbench across lanes *and* domains: vector
     [v] rides word [(v mod lanes) / 62], bit [v mod 62] of pass
     [v / lanes]; passes are the sharded jobs. *)
  let run_vectors t vectors =
    let nvec = Array.length vectors in
    let nl = netlist t in
    let in_ports = Array.of_list nl.Netlist.inputs in
    let out_ports = Array.of_list nl.Netlist.outputs in
    let nin = Array.length in_ports and nout = Array.length out_ports in
    Array.iter
      (fun v ->
        if Array.length v <> nin then
          invalid_arg "Sharded.run_vectors: vector arity mismatch")
      vectors;
    let words = E.words t.replicas.(0) in
    let per_pass = lanes t in
    let results = Array.make nvec [||] in
    let ch = Scheduler.chunking ~lanes:per_pass nvec in
    dispatch t ch.Scheduler.count (fun sim p ->
        let bse, hi = ch.Scheduler.bounds p in
        let count = hi - bse in
        E.reset sim;
        for j = 0 to nin - 1 do
          let name = fst in_ports.(j) in
          for w = 0 to words - 1 do
            let word = ref 0 in
            let lo = w * Packed.lanes in
            let hi = min (lo + Packed.lanes) count in
            for l = lo to hi - 1 do
              if vectors.(bse + l).(j) then word := !word lor (1 lsl (l - lo))
            done;
            E.set_input_word sim name w !word
          done
        done;
        E.settle sim;
        let out_words =
          Array.map
            (fun (name, _) -> Array.init words (E.output_word sim name))
            out_ports
        in
        for l = 0 to count - 1 do
          let w = l / Packed.lanes and bit = l mod Packed.lanes in
          results.(bse + l) <-
            Array.init nout (fun j -> Packed.lane out_words.(j).(w) bit)
        done);
    results

  (* Raw stepping throughput — the benchmark workload: every job resets
     its replica, drives one packed word per input, then settles/ticks
     [cycles] times.  No outputs are materialized (a checksum defeats
     dead-code elimination), so this measures exactly what a single
     engine's step-loop measures, times [62 x words x domains]
     independent simulations. *)
  let step_batches t ~batches ~cycles =
    let nl = netlist t in
    (* port indices resolved once — no per-batch name lookups in the
       measured loop *)
    let in_idx = Array.of_list (List.map snd nl.Netlist.inputs) in
    let out_idx = Array.of_list (List.map snd nl.Netlist.outputs) in
    let sum = Atomic.make 0 in
    dispatch t batches (fun sim b ->
        E.reset sim;
        Array.iteri
          (fun j i -> E.poke sim i (b * 0x9e3779b9 + (j * 0x85ebca77)))
          in_idx;
        for _ = 1 to cycles do
          E.step sim
        done;
        let local =
          Array.fold_left (fun acc i -> acc lxor E.peek sim i) 0 out_idx
        in
        ignore (Atomic.fetch_and_add sum (local land 0xff)));
    Atomic.get sum
end

(* The multi-word slab engine, sharded: 62 x k x domains lanes. *)
module Slab_sharded = Make (Slab)

(* ------------------------------------------------------------------ *)
(* The historical wide-engine interface: {!Make} specialized to
   {!Compiled_wide}, plus netlist-level [create].                      *)

module Wide_sharded = Make (W)

type t = Wide_sharded.t

let lanes = W.lanes

let create ?optimize ?relayout ?fuse ?certify ?domains ?pool netlist =
  Wide_sharded.of_base ?domains ?pool
    (W.create ?optimize ?relayout ?fuse ?certify netlist)

let of_base = Wide_sharded.of_base
let pool = Wide_sharded.pool
let domains = Wide_sharded.domains
let base = Wide_sharded.base
let replica = Wide_sharded.replica
let netlist = Wide_sharded.netlist
let shutdown = Wide_sharded.shutdown
let run_tasks = Wide_sharded.run_tasks
let dispatch = Wide_sharded.dispatch
let run_batches = Wide_sharded.run_batches
let run_vectors = Wide_sharded.run_vectors
let step_batches = Wide_sharded.step_batches
