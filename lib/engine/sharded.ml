(* Domain-sharded wide simulation: multiply the 62-lane engine by core
   count.

   The paper's synchronous model (section 4.3) makes every gate within a
   levelized rank independent; {!Compiled_wide} exploits that within one
   machine word (62 lanes per pass).  This module adds the second
   parallelism axis — domains — the only way that composes instead of
   fighting: *batch-level* sharding.  Per-rank fork-join
   ({!Parallel_sim}) pays two barriers per rank per cycle; sharding pays
   one synchronization per *job*.

   Architecture:

   - One {!Compiled_wide} base engine is compiled once; every domain owns
     a private {!Compiled_wide.replicate} — separate (cache-line padded)
     value/dff state over the shared immutable compiled index arrays.
     Replicas are created once at {!create} and reused for the sharded
     engine's whole lifetime, so steady-state jobs allocate nothing per
     batch (the transient-replica-per-chunk of
     {!Compiled_wide.run_batches} was measurably slower than a single
     instance).

   - Work arrives as an array of independent lane-batches.  Pool members
     run in {!Hydra_parallel.Pool.run_team} mode — one long-lived body
     per member — and drain batch indices from a single atomic counter.
     There are no per-cycle and no per-level barriers: a member simulates
     its whole batch (62 lanes x N cycles) undisturbed, claims the next,
     and the only join is when the queue is empty.

   Peak independent simulations per settle pass: 62 lanes x [domains]. *)

module W = Compiled_wide
module Pool = Hydra_parallel.Pool
module Netlist = Hydra_netlist.Netlist

type t = {
  pool : Pool.t;
  owns_pool : bool;
  replicas : W.t array;  (* one per pool member; [replicas.(0)] is the base *)
}

let lanes = W.lanes

let create ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) ?domains ?pool netlist =
  let pool, owns_pool =
    match pool with
    | Some p -> (p, false)
    | None -> (Pool.create ?domains (), true)
  in
  let base = W.create ~optimize ~relayout ~fuse ~certify netlist in
  let replicas =
    Array.init (Pool.size pool) (fun i ->
        if i = 0 then base else W.replicate base)
  in
  { pool; owns_pool; replicas }

let domains t = Pool.size t.pool
let base t = t.replicas.(0)
let replica t m = t.replicas.(m)
let netlist t = W.netlist t.replicas.(0)

let shutdown t = if t.owns_pool then Pool.shutdown t.pool

(* The scheduling core: run [f ~member job] for every [0 <= job < n].
   Members drain jobs from one atomic counter — synchronization at batch
   granularity only — and each call sees the member index, so callers can
   keep per-member state of their own (e.g. a second engine's replicas)
   aligned with ours. *)
let run_tasks t n f =
  if n <= 0 then ()
  else if domains t = 1 || n = 1 then
    for job = 0 to n - 1 do
      f ~member:0 job
    done
  else begin
    let next = Atomic.make 0 in
    Pool.run_team t.pool (fun member ->
        let rec drain () =
          let job = Atomic.fetch_and_add next 1 in
          if job < n then begin
            f ~member job;
            drain ()
          end
        in
        drain ())
  end

(* [dispatch t n f] runs [f sim job] for every job on some private
   replica — the common case where only the engine matters. *)
let dispatch t n f = run_tasks t n (fun ~member job -> f t.replicas.(member) job)

(* Independent sequential lane-batches, the {!Compiled_wide.run_batches}
   workload on persistent replicas: element [b] of the result is
   [W.run_packed] of [batches.(b)]. *)
let run_batches t ~batches ~cycles =
  let n = Array.length batches in
  let results = Array.make n [] in
  dispatch t n (fun sim b ->
      results.(b) <- W.run_packed sim ~inputs:batches.(b) ~cycles);
  results

(* Batched combinational testbench across lanes *and* domains: vector [k]
   rides in lane [k mod 62] of pass [k / 62]; passes are the sharded
   jobs. *)
let run_vectors t vectors =
  let nvec = Array.length vectors in
  let nl = netlist t in
  let in_ports = Array.of_list nl.Netlist.inputs in
  let out_ports = Array.of_list nl.Netlist.outputs in
  let nin = Array.length in_ports and nout = Array.length out_ports in
  Array.iter
    (fun v ->
      if Array.length v <> nin then
        invalid_arg "Sharded.run_vectors: vector arity mismatch")
    vectors;
  let results = Array.make nvec [||] in
  let npasses = (nvec + lanes - 1) / lanes in
  dispatch t npasses (fun sim p ->
      let bse = p * lanes in
      let count = min lanes (nvec - bse) in
      W.reset sim;
      for j = 0 to nin - 1 do
        let w = ref 0 in
        for l = 0 to count - 1 do
          if vectors.(bse + l).(j) then w := !w lor (1 lsl l)
        done;
        W.set_input sim (fst in_ports.(j)) !w
      done;
      W.settle sim;
      let out_words = Array.map (fun (name, _) -> W.output sim name) out_ports in
      for l = 0 to count - 1 do
        results.(bse + l) <-
          Array.init nout (fun j -> Hydra_core.Packed.lane out_words.(j) l)
      done);
  results

(* Raw stepping throughput — the benchmark workload: every job resets its
   replica, drives one packed word per input, then settles/ticks [cycles]
   times.  No outputs are materialized (a checksum defeats dead-code
   elimination), so this measures exactly what a single engine's
   step-loop measures, times [62 x domains] independent simulations. *)
let step_batches t ~batches ~cycles =
  let nl = netlist t in
  (* port indices resolved once — no per-batch name lookups in the
     measured loop *)
  let in_idx = Array.of_list (List.map snd nl.Netlist.inputs) in
  let out_idx = Array.of_list (List.map snd nl.Netlist.outputs) in
  let sum = Atomic.make 0 in
  dispatch t batches (fun sim b ->
      W.reset sim;
      Array.iteri
        (fun j i -> W.poke sim i (b * 0x9e3779b9 + (j * 0x85ebca77)))
        in_idx;
      for _ = 1 to cycles do
        W.step sim
      done;
      let local =
        Array.fold_left (fun acc i -> acc lxor W.peek sim i) 0 out_idx
      in
      ignore (Atomic.fetch_and_add sum (local land 0xff)));
  Atomic.get sum
