(* Resilience primitives for the execution layer: deadlines, retry
   policies with exponential backoff + deterministic jitter, heartbeat
   watchdog verdicts and an overload-shedding admission controller.

   These are deliberately small, lock-light value types: the {!Scheduler}
   weaves them through its claim loop, {!Hydra_verify.Campaign} and
   friends expose them as optional knobs, and the chaos harness
   falsifies them.  Everything that involves randomness (jitter) is
   derived from a splitmix-style hash of caller-supplied integers, so a
   replayed run produces the identical schedule — the same discipline
   the fault campaigns use for intermittent coins. *)

let now () = Unix.gettimeofday ()

exception Deadline_exceeded of { job : string; elapsed : float }

exception Stuck_member of { member : int; site : string; age : float }

exception Shed of { job : string; priority : int }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { job; elapsed } ->
      Some
        (Printf.sprintf "Resilience.Deadline_exceeded(job=%S, elapsed=%.3fs)"
           job elapsed)
    | Stuck_member { member; site; age } ->
      Some
        (Printf.sprintf
           "Resilience.Stuck_member(member=%d, site=%S, stuck for %.3fs)"
           member site age)
    | Shed { job; priority } ->
      Some (Printf.sprintf "Resilience.Shed(job=%S, priority=%d)" job priority)
    | _ -> None)

(* Deterministic unit-interval hash: splitmix64 finalizer over the mixed
   seeds, mapped to [0, 1).  Pure, so replays are exact. *)
let unit_hash seeds =
  let mix h k =
    let h = Int64.logxor h (Int64.of_int k) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  let h = List.fold_left mix 0x9e3779b97f4a7c15L seeds in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

(* Retry policies ------------------------------------------------------- *)

type retry = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  transient : exn -> bool;
}

(* Programming errors and resource exhaustion are permanent; everything
   else — injected chaos, I/O hiccups, Failure — defaults to transient. *)
let default_transient = function
  | Invalid_argument _ | Assert_failure _ | Match_failure _ | Out_of_memory
  | Stack_overflow ->
    false
  | _ -> true

let retry ?(max_attempts = 3) ?(base_delay = 0.002) ?(max_delay = 0.25)
    ?(jitter = 0.5) ?(transient = default_transient) () =
  if max_attempts < 1 then
    invalid_arg "Resilience.retry: max_attempts must be >= 1";
  if base_delay < 0.0 || max_delay < base_delay then
    invalid_arg "Resilience.retry: need 0 <= base_delay <= max_delay";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Resilience.retry: jitter must be in [0, 1]";
  { max_attempts; base_delay; max_delay; jitter; transient }

(* Exponential backoff with deterministic jitter: attempt [a] (1-based,
   the attempt that just failed) sleeps
   [cap(base * 2^(a-1)) * (1 - jitter * u)] where [u] is hashed from the
   seeds — "full jitter below the exponential envelope", replayable. *)
let backoff policy ~attempt ~seed =
  if attempt < 1 then invalid_arg "Resilience.backoff: attempt must be >= 1";
  let envelope =
    min policy.max_delay
      (policy.base_delay *. (2.0 ** float_of_int (min 30 (attempt - 1))))
  in
  let u = unit_hash [ seed; attempt; 0x6a09 ] in
  envelope *. (1.0 -. (policy.jitter *. u))

(* Admission controller ------------------------------------------------- *)

type admission = {
  max_lanes : int;
  min_lanes : int;
  a_lock : Mutex.t;
  mutable in_flight : int;
  mutable a_admitted : int;
  mutable a_degraded : int;
  mutable a_shed : int;
}

type admission_stats = {
  admitted : int;
  degraded : int;
  shed : int;
  in_flight_lanes : int;
  max_lanes : int;
}

let admission ?(min_lanes = 62) ~max_lanes () =
  if min_lanes < 1 then
    invalid_arg "Resilience.admission: min_lanes must be >= 1";
  if max_lanes < min_lanes then
    invalid_arg "Resilience.admission: max_lanes must be >= min_lanes";
  {
    max_lanes;
    min_lanes;
    a_lock = Mutex.create ();
    in_flight = 0;
    a_admitted = 0;
    a_degraded = 0;
    a_shed = 0;
  }

let budget (a : admission) = a.max_lanes

let admission_stats a =
  Mutex.lock a.a_lock;
  let s =
    {
      admitted = a.a_admitted;
      degraded = a.a_degraded;
      shed = a.a_shed;
      in_flight_lanes = a.in_flight;
      max_lanes = a.max_lanes;
    }
  in
  Mutex.unlock a.a_lock;
  s

(* Reserve [lanes] lanes of budget, degrading rather than rejecting: a
   request that does not fit whole is granted the largest multiple of
   [min_lanes] that fits the free budget.  Only when less than one
   [min_lanes] quantum is free is the request shed.  Callers release
   exactly what was granted. *)
let acquire a ~lanes =
  if lanes < 1 then invalid_arg "Resilience.acquire: lanes must be >= 1";
  Mutex.lock a.a_lock;
  let free = a.max_lanes - a.in_flight in
  let verdict =
    if lanes <= free then begin
      a.in_flight <- a.in_flight + lanes;
      a.a_admitted <- a.a_admitted + 1;
      `Granted lanes
    end
    else begin
      let quanta = free / a.min_lanes in
      if quanta < 1 then begin
        a.a_shed <- a.a_shed + 1;
        `Shed
      end
      else begin
        let granted = min lanes (quanta * a.min_lanes) in
        a.in_flight <- a.in_flight + granted;
        a.a_admitted <- a.a_admitted + 1;
        a.a_degraded <- a.a_degraded + 1;
        `Granted granted
      end
    end
  in
  Mutex.unlock a.a_lock;
  verdict

let release a ~lanes =
  Mutex.lock a.a_lock;
  a.in_flight <- max 0 (a.in_flight - lanes);
  Mutex.unlock a.a_lock

(* Scheduler-side shed accounting (the scheduler evicts whole jobs by
   priority; it reports each eviction here so one counter covers both
   shed paths). *)
let count_shed a =
  Mutex.lock a.a_lock;
  a.a_shed <- a.a_shed + 1;
  Mutex.unlock a.a_lock

let describe_admission a =
  let s = admission_stats a in
  Printf.sprintf
    "admission: %d/%d lanes in flight, %d admitted (%d degraded), %d shed"
    s.in_flight_lanes s.max_lanes s.admitted s.degraded s.shed
