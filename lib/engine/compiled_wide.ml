(* Word-parallel (62-lane) levelized compiled simulator.

   Every net holds a machine word carrying [Packed.lanes] = 62 independent
   simulation lanes, so one pass over the gate arrays advances 62 test
   vectors / stimulus streams at once: gates become [land]/[lor]/[lxor]/
   [lnot] on whole words and the dff latch phase copies words.  This
   generalizes the combinational {!Hydra_core.Packed} semantics to
   sequential circuits — the full section-5/6 processors run 62 programs
   per pass.

   Throughput levers over the scalar {!Compiled} engine:

   - The per-gate variant dispatch of [Compiled.eval_component] is
     replaced by pre-split per-op index arrays: at compile time each
     levelized rank is split into one flat (dst, src) array per gate
     kind, and [settle] runs one tight branch-free loop per kind per
     rank.  The inner loops contain no matches and no polymorphism — just
     unsafe int-array reads, a logical op, and a write.

   - A rank-major, fanout-clustered memory re-layout
     ({!Hydra_netlist.Layout.rank_major}, on by default) renumbers the
     netlist so each rank's per-kind destination ranges are contiguous
     and gates reading the same driver sit on the same cache lines.

   - Fused kernels for the common 2-level patterns the netlists are full
     of: and-or ([x = (a&b) | (c&d)] — mux and carry-select shapes),
     or-and ([x = (a&b) | c] — the carry chain), and xor chains
     ([x = a ^ b ^ c] — full-adder sums).  When the inner gate feeds only
     the outer one (fanout 1) it is evaluated inside the outer gate's
     loop and never written to memory, saving a store and a reload per
     fused gate per pass.

   - Independent lane-batches chunk over {!Hydra_parallel.Pool}
     ({!run_vectors} / {!run_batches}): each domain simulates its own
     {!replicate} of the engine (sharing the immutable compiled arrays,
     owning its value state), so batch-level parallelism composes with
     lane-level packing and there are no barriers inside a batch — unlike
     {!Parallel_sim}'s per-level barriers, which only pay off on very
     wide ranks.  {!Sharded} scales this pattern with persistent
     per-domain replicas and a work queue.

   The compile-time pipeline (pre-passes, levelize, fusion planning,
   per-kind index splitting) lives in {!Kernel} and is shared with the
   multi-word {!Slab} engine; this module owns only the 1-word-per-signal
   runtime state and hot loops. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Packed = Hydra_core.Packed
module Pool = Hydra_parallel.Pool

let lanes = Packed.lanes
let lane_mask = Packed.lane_mask

(* A per-lane value override applied at one component's kernel output
   during [settle] (fault injection, see {!Hydra_verify.Campaign}): lanes
   set in [force0] are driven to 0, lanes in [force1] to 1, lanes in
   [flip] are inverted, in that order.  The words are mutable so a
   campaign can re-seed per-cycle (intermittent) faults without
   re-registering. *)
type force = {
  f_site : int;
  mutable force0 : int;
  mutable force1 : int;
  mutable flip : int;
}

type t = {
  prog : Kernel.program;
  consts : (int * int) array;  (* component index, broadcast word *)
  dff_init_w : int array;  (* broadcast power-up words *)
  values : int array;
  dff_next : int array;
  mutable cycle : int;
  mutable force_slots : force array array;
      (* slot 0 applies before rank 0, slot [l + 1] after rank [l]'s
         kernels; [[||]] when no forces are registered (the hot path) *)
}

let apply_initial t =
  Array.iter (fun (i, w) -> Array.unsafe_set t.values i w) t.consts;
  Array.iteri
    (fun j i -> Array.unsafe_set t.values i t.dff_init_w.(j))
    t.prog.Kernel.dffs

(* Hot arrays get a cache line of slack at the end so replicas allocated
   back to back never share a line across domains. *)
let pad = 8

let of_program prog =
  if prog.Kernel.k <> 1 then
    invalid_arg
      (Printf.sprintf
         "Compiled_wide.of_program: program compiled for k=%d, need k=1"
         prog.Kernel.k);
  let t =
    {
      prog;
      consts = Array.map (fun (i, b) -> (i, Packed.broadcast b)) prog.Kernel.consts;
      dff_init_w = Array.map Packed.broadcast prog.Kernel.dff_init;
      values = Array.make (Kernel.size prog + pad) 0;
      dff_next = Array.make (Array.length prog.Kernel.dffs + pad) 0;
      cycle = 0;
      force_slots = [||];
    }
  in
  apply_initial t;
  t

let create ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) ?(tuning = Kernel.default_tuning) netlist =
  of_program (Kernel.compile ~optimize ~relayout ~fuse ~certify ~tuning ~k:1 netlist)

let program t = t.prog

(* A fresh engine over the same compiled circuit: shares every immutable
   compiled array, owns its own (padded) value state.  Safe to run in
   another domain concurrently with the original. *)
let replicate t =
  let r =
    {
      t with
      values = Array.make (Array.length t.values) 0;
      dff_next = Array.make (Array.length t.dff_next) 0;
      cycle = 0;
      force_slots = [||];  (* replicas start unforced *)
    }
  in
  apply_initial r;
  r

let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  apply_initial t;
  t.cycle <- 0

let set_input t name w =
  match Hashtbl.find_opt t.prog.Kernel.input_index name with
  | Some i -> t.values.(i) <- w land lane_mask
  | None -> invalid_arg ("Compiled_wide.set_input: unknown input " ^ name)

let set_input_bool t name b = set_input t name (Packed.broadcast b)

let set_input_lane t name lane b =
  match Hashtbl.find_opt t.prog.Kernel.input_index name with
  | Some i -> t.values.(i) <- Packed.set_lane t.values.(i) lane b
  | None -> invalid_arg ("Compiled_wide.set_input_lane: unknown input " ^ name)

(* Group forces by the rank at which the forced value must exist so that
   every consumer — which is always at a strictly higher rank — reads the
   overridden word: gates and outports right after their own rank's
   kernels, inputs/dffs/constants before rank 0.  Fused engines are
   rejected because a consumed inner gate's word is never materialized,
   so a force on (or through) it would be silently lost. *)
let set_forces t forces =
  if t.prog.Kernel.fused > 0 then
    invalid_arg "Compiled_wide.set_forces: requires an engine built with ~fuse:false";
  let slots = Array.make (Kernel.n_force_slots t.prog) [] in
  Array.iter
    (fun f ->
      let slot = Kernel.force_slot ~what:"Compiled_wide.set_forces" t.prog f.f_site in
      slots.(slot) <- f :: slots.(slot))
    forces;
  t.force_slots <- Array.map (fun l -> Array.of_list (List.rev l)) slots

let clear_forces t = t.force_slots <- [||]

let apply_forces values slot =
  for j = 0 to Array.length slot - 1 do
    let f = Array.unsafe_get slot j in
    let w = Array.unsafe_get values f.f_site in
    Array.unsafe_set values f.f_site
      ((((w land lnot f.force0) lor f.force1) lxor f.flip) land lane_mask)
  done

(* The hot path: one branch-free loop per gate kind per block.  Blocks
   are the compile-time L1/L2 tiles of a rank ({!Kernel.tuning}); running
   every kind's loop over one block before moving to the next re-walks a
   cache-hot tile instead of streaming the whole rank per kind. *)
let run_block values (k : Kernel.kernel) =
  let dst = k.inv_dst and src = k.inv_src in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (lnot (Array.unsafe_get values (Array.unsafe_get src j)) land lane_mask)
  done;
  let dst = k.and_dst and s0 = k.and_s0 and s1 = k.and_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      land Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = k.or_dst and s0 = k.or_s0 and s1 = k.or_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      lor Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = k.xor_dst and s0 = k.xor_s0 and s1 = k.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      lxor Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = k.andor_dst and a = k.andor_a and b = k.andor_b
  and c = k.andor_c and d = k.andor_d in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
       land Array.unsafe_get values (Array.unsafe_get b j)
      lor (Array.unsafe_get values (Array.unsafe_get c j)
          land Array.unsafe_get values (Array.unsafe_get d j)))
  done;
  let dst = k.orand_dst and a = k.orand_a and b = k.orand_b
  and c = k.orand_c in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
       land Array.unsafe_get values (Array.unsafe_get b j)
      lor Array.unsafe_get values (Array.unsafe_get c j))
  done;
  let dst = k.xor3_dst and a = k.xor3_a and b = k.xor3_b and c = k.xor3_c in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
      lxor Array.unsafe_get values (Array.unsafe_get b j)
      lxor Array.unsafe_get values (Array.unsafe_get c j))
  done;
  let dst = k.out_dst and src = k.out_src in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get src j))
  done

let settle t =
  let values = t.values in
  let blocks = t.prog.Kernel.blocks in
  let rfb = t.prog.Kernel.rank_first_block in
  let slots = t.force_slots in
  let forced = Array.length slots > 0 in
  if forced then apply_forces values (Array.unsafe_get slots 0);
  for lvl = 0 to Array.length rfb - 2 do
    for b = Array.unsafe_get rfb lvl to Array.unsafe_get rfb (lvl + 1) - 1 do
      run_block values (Array.unsafe_get blocks b)
    done;
    if forced then apply_forces values (Array.unsafe_get slots (lvl + 1))
  done

let tick t =
  let values = t.values and next = t.dff_next in
  let dffs = t.prog.Kernel.dffs and src = t.prog.Kernel.dff_src in
  for j = 0 to Array.length dffs - 1 do
    Array.unsafe_set next j
      (Array.unsafe_get values (Array.unsafe_get src j))
  done;
  for j = 0 to Array.length dffs - 1 do
    Array.unsafe_set values (Array.unsafe_get dffs j) (Array.unsafe_get next j)
  done;
  t.cycle <- t.cycle + 1

let step t =
  settle t;
  tick t

let output t name =
  match Hashtbl.find_opt t.prog.Kernel.output_index name with
  | Some i -> t.values.(i)
  | None -> invalid_arg ("Compiled_wide.output: unknown output " ^ name)

let output_lane t name lane = Packed.lane (output t name) lane

let outputs t =
  List.map (fun (s, i) -> (s, t.values.(i))) t.prog.Kernel.netlist.Netlist.outputs

let peek t i = t.values.(i)
let poke t i w = t.values.(i) <- w land lane_mask
let cycle t = t.cycle
let netlist t = t.prog.Kernel.netlist
let critical_path t = t.prog.Kernel.levels.Levelize.critical_path
let fused_gates t = t.prog.Kernel.fused

(* Word-indexed aliases, the {!Engine_intf.S} view of this engine: one
   word per signal, so the only valid word index is 0. *)
let words _ = 1

let check_word what w =
  if w <> 0 then
    invalid_arg
      (Printf.sprintf "%s: word index %d out of range (engine has 1 word)"
         what w)

let set_input_word t name w v =
  check_word "Compiled_wide.set_input_word" w;
  set_input t name v

let output_word t name w =
  check_word "Compiled_wide.output_word" w;
  output t name

let peek_word t i w =
  check_word "Compiled_wide.peek_word" w;
  peek t i

let poke_word t i w v =
  check_word "Compiled_wide.poke_word" w;
  poke t i v

(* Whole packed simulation, the word analogue of [Compiled.run]: every
   input stream is a packed word per cycle (shorter streams padded with
   0), output rows are packed words. *)
let run_packed t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some w -> w | None -> 0 in
        set_input t name value)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows

(* Batched combinational testbench: vector [k] (one bool per declared
   input, in port-list order) rides in lane [k mod 62] of pass [k / 62];
   each pass is reset / set inputs / settle / read outputs.  Passes are
   independent, so with a pool they chunk across domains, each on its own
   replica. *)
let run_vectors ?pool t vectors =
  let nvec = Array.length vectors in
  let in_ports = Array.of_list (netlist t).Netlist.inputs in
  let out_ports = Array.of_list (netlist t).Netlist.outputs in
  let nin = Array.length in_ports and nout = Array.length out_ports in
  Array.iter
    (fun v ->
      if Array.length v <> nin then
        invalid_arg "Compiled_wide.run_vectors: vector arity mismatch")
    vectors;
  let results = Array.make nvec [||] in
  let npasses = (nvec + lanes - 1) / lanes in
  let run_pass sim p =
    let base = p * lanes in
    let count = min lanes (nvec - base) in
    reset sim;
    for j = 0 to nin - 1 do
      let w = ref 0 in
      for l = 0 to count - 1 do
        if vectors.(base + l).(j) then w := !w lor (1 lsl l)
      done;
      sim.values.(snd in_ports.(j)) <- !w
    done;
    settle sim;
    let out_words = Array.map (fun (_, i) -> sim.values.(i)) out_ports in
    for l = 0 to count - 1 do
      results.(base + l) <-
        Array.init nout (fun j -> Packed.lane out_words.(j) l)
    done
  in
  (match pool with
  | Some pool when npasses > 1 && Pool.size pool > 1 ->
    (* ~4 chunks per domain for load balance; each chunk gets a replica *)
    let nchunks = min npasses (4 * Pool.size pool) in
    Pool.parallel_for ~chunk:1 pool 0 nchunks (fun c ->
        let sim = replicate t in
        let lo = c * npasses / nchunks and hi = (c + 1) * npasses / nchunks in
        for p = lo to hi - 1 do
          run_pass sim p
        done)
  | _ ->
    for p = 0 to npasses - 1 do
      run_pass t p
    done);
  results

(* Independent sequential lane-batches over the pool: each batch is a
   full packed stimulus set (cf. [run_packed]); batches run concurrently,
   one replica per chunk, no barriers inside a batch.  {!Sharded} provides
   the same operation with persistent per-domain replicas. *)
let run_batches ?pool t ~batches ~cycles =
  let n = Array.length batches in
  let results = Array.make n [] in
  let run_one sim b = results.(b) <- run_packed sim ~inputs:batches.(b) ~cycles in
  (match pool with
  | Some pool when n > 1 && Pool.size pool > 1 ->
    let nchunks = min n (4 * Pool.size pool) in
    Pool.parallel_for ~chunk:1 pool 0 nchunks (fun c ->
        let sim = replicate t in
        let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
        for b = lo to hi - 1 do
          run_one sim b
        done)
  | _ ->
    for b = 0 to n - 1 do
      run_one t b
    done);
  results
