(* Word-parallel (62-lane) levelized compiled simulator.

   Every net holds a machine word carrying [Packed.lanes] = 62 independent
   simulation lanes, so one pass over the gate arrays advances 62 test
   vectors / stimulus streams at once: gates become [land]/[lor]/[lxor]/
   [lnot] on whole words and the dff latch phase copies words.  This
   generalizes the combinational {!Hydra_core.Packed} semantics to
   sequential circuits — the full section-5/6 processors run 62 programs
   per pass.

   Throughput levers over the scalar {!Compiled} engine:

   - The per-gate variant dispatch of [Compiled.eval_component] is
     replaced by pre-split per-op index arrays: at compile time each
     levelized rank is split into one flat (dst, src) array per gate
     kind, and [settle] runs one tight branch-free loop per kind per
     rank.  The inner loops contain no matches and no polymorphism — just
     unsafe int-array reads, a logical op, and a write.

   - A rank-major, fanout-clustered memory re-layout
     ({!Hydra_netlist.Layout.rank_major}, on by default) renumbers the
     netlist so each rank's per-kind destination ranges are contiguous
     and gates reading the same driver sit on the same cache lines.

   - Fused kernels for the common 2-level patterns the netlists are full
     of: and-or ([x = (a&b) | (c&d)] — mux and carry-select shapes),
     or-and ([x = (a&b) | c] — the carry chain), and xor chains
     ([x = a ^ b ^ c] — full-adder sums).  When the inner gate feeds only
     the outer one (fanout 1) it is evaluated inside the outer gate's
     loop and never written to memory, saving a store and a reload per
     fused gate per pass.

   - Independent lane-batches chunk over {!Hydra_parallel.Pool}
     ({!run_vectors} / {!run_batches}): each domain simulates its own
     {!replicate} of the engine (sharing the immutable compiled arrays,
     owning its value state), so batch-level parallelism composes with
     lane-level packing and there are no barriers inside a batch — unlike
     {!Parallel_sim}'s per-level barriers, which only pay off on very
     wide ranks.  {!Sharded} scales this pattern with persistent
     per-domain replicas and a work queue. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Layout = Hydra_netlist.Layout
module Packed = Hydra_core.Packed
module Pool = Hydra_parallel.Pool

let lanes = Packed.lanes
let lane_mask = Packed.lane_mask

(* One levelized rank, pre-split by gate kind into flat index arrays:
   [x_dst.(k)] is evaluated from [x_src*.(k)] for every [k], in any order
   (all sources settled at strictly lower ranks; fused kernels read the
   consumed inner gate's sources, which settle earlier still). *)
type kernel = {
  inv_dst : int array;
  inv_src : int array;
  and_dst : int array;
  and_s0 : int array;
  and_s1 : int array;
  or_dst : int array;
  or_s0 : int array;
  or_s1 : int array;
  xor_dst : int array;
  xor_s0 : int array;
  xor_s1 : int array;
  (* fused 2-level patterns *)
  andor_dst : int array;  (* dst = (a & b) | (c & d) *)
  andor_a : int array;
  andor_b : int array;
  andor_c : int array;
  andor_d : int array;
  orand_dst : int array;  (* dst = (a & b) | c *)
  orand_a : int array;
  orand_b : int array;
  orand_c : int array;
  xor3_dst : int array;  (* dst = a ^ b ^ c *)
  xor3_a : int array;
  xor3_b : int array;
  xor3_c : int array;
  out_dst : int array;  (* outports: plain word copies *)
  out_src : int array;
}

(* A per-lane value override applied at one component's kernel output
   during [settle] (fault injection, see {!Hydra_verify.Campaign}): lanes
   set in [force0] are driven to 0, lanes in [force1] to 1, lanes in
   [flip] are inverted, in that order.  The words are mutable so a
   campaign can re-seed per-cycle (intermittent) faults without
   re-registering. *)
type force = {
  f_site : int;
  mutable force0 : int;
  mutable force1 : int;
  mutable flip : int;
}

type t = {
  netlist : Netlist.t;
      (* the netlist actually compiled (post-optimize, post-relayout) *)
  levels : Levelize.t;
  kernels : kernel array;
  consts : (int * int) array;  (* component index, broadcast word *)
  dffs : int array;
  dff_src : int array;  (* driver of each dff, indexed like dffs *)
  dff_init : int array;  (* broadcast power-up words *)
  fused : int;  (* gates evaluated inside a fused kernel (never stored) *)
  values : int array;
  dff_next : int array;
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
  mutable cycle : int;
  mutable force_slots : force array array;
      (* slot 0 applies before rank 0, slot [l + 1] after rank [l]'s
         kernels; [[||]] when no forces are registered (the hot path) *)
}

(* How the outer gate at [dst] absorbs a fanout-1 inner gate. *)
type fusion =
  | Andor of int * int * int * int
  | Orand of int * int * int
  | Xor3 of int * int * int

let build_kernel (nl : Netlist.t) (fusion : fusion option array)
    (consumed : bool array) rank =
  let invs = ref [] and ands = ref [] and ors = ref [] and xors = ref []
  and andors = ref [] and orands = ref [] and xor3s = ref []
  and outs = ref [] in
  Array.iter
    (fun i ->
      if not consumed.(i) then
        let fi = nl.Netlist.fanin.(i) in
        match fusion.(i) with
        | Some (Andor (a, b, c, d)) -> andors := (i, a, b, c, d) :: !andors
        | Some (Orand (a, b, c)) -> orands := (i, a, b, c) :: !orands
        | Some (Xor3 (a, b, c)) -> xor3s := (i, a, b, c) :: !xor3s
        | None -> (
            match nl.Netlist.components.(i) with
            | Netlist.Invc -> invs := (i, fi.(0)) :: !invs
            | Netlist.And2c -> ands := (i, fi.(0), fi.(1)) :: !ands
            | Netlist.Or2c -> ors := (i, fi.(0), fi.(1)) :: !ors
            | Netlist.Xor2c -> xors := (i, fi.(0), fi.(1)) :: !xors
            | Netlist.Outport _ -> outs := (i, fi.(0)) :: !outs
            | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> ()))
    rank;
  let arr1 l = Array.of_list (List.rev_map fst l)
  and arr2 l = Array.of_list (List.rev_map snd l) in
  let a3 sel l = Array.of_list (List.rev_map sel l) in
  {
    inv_dst = arr1 !invs;
    inv_src = arr2 !invs;
    and_dst = a3 (fun (i, _, _) -> i) !ands;
    and_s0 = a3 (fun (_, a, _) -> a) !ands;
    and_s1 = a3 (fun (_, _, b) -> b) !ands;
    or_dst = a3 (fun (i, _, _) -> i) !ors;
    or_s0 = a3 (fun (_, a, _) -> a) !ors;
    or_s1 = a3 (fun (_, _, b) -> b) !ors;
    xor_dst = a3 (fun (i, _, _) -> i) !xors;
    xor_s0 = a3 (fun (_, a, _) -> a) !xors;
    xor_s1 = a3 (fun (_, _, b) -> b) !xors;
    andor_dst = a3 (fun (i, _, _, _, _) -> i) !andors;
    andor_a = a3 (fun (_, a, _, _, _) -> a) !andors;
    andor_b = a3 (fun (_, _, b, _, _) -> b) !andors;
    andor_c = a3 (fun (_, _, _, c, _) -> c) !andors;
    andor_d = a3 (fun (_, _, _, _, d) -> d) !andors;
    orand_dst = a3 (fun (i, _, _, _) -> i) !orands;
    orand_a = a3 (fun (_, a, _, _) -> a) !orands;
    orand_b = a3 (fun (_, _, b, _) -> b) !orands;
    orand_c = a3 (fun (_, _, _, c) -> c) !orands;
    xor3_dst = a3 (fun (i, _, _, _) -> i) !xor3s;
    xor3_a = a3 (fun (_, a, _, _) -> a) !xor3s;
    xor3_b = a3 (fun (_, _, b, _) -> b) !xor3s;
    xor3_c = a3 (fun (_, _, _, c) -> c) !xor3s;
    out_dst = arr1 !outs;
    out_src = arr2 !outs;
  }

(* Decide which fanout-1 inner gates each or/xor absorbs.  Processed rank
   by rank, ascending, so an inner candidate's own fusion status is final
   when its sink is examined: a gate that already absorbed something
   ([fusion.(x) <> None]) is not consumable — consuming it would discard
   its kernel and leave its (possibly consumed) sources dangling.  The
   sources of a consumed gate are therefore always materialized. *)
let plan_fusion (nl : Netlist.t) (levels : Levelize.t) =
  let n = Netlist.size nl in
  let fanout_count = Array.make n 0 in
  Array.iter
    (fun fi ->
      Array.iter (fun d -> fanout_count.(d) <- fanout_count.(d) + 1) fi)
    nl.Netlist.fanin;
  let fusion : fusion option array = Array.make n None in
  let consumed = Array.make n false in
  let inner kind x =
    fanout_count.(x) = 1
    && (not consumed.(x))
    && fusion.(x) = None
    &&
    match (kind, nl.Netlist.components.(x)) with
    | `And, Netlist.And2c -> true
    | `Xor, Netlist.Xor2c -> true
    | _ -> false
  in
  Array.iter
    (fun rank ->
      Array.iter
        (fun i ->
          let fi = nl.Netlist.fanin.(i) in
          match nl.Netlist.components.(i) with
          | Netlist.Or2c ->
            let x = fi.(0) and y = fi.(1) in
            if inner `And x && inner `And y then begin
              let fx = nl.Netlist.fanin.(x) and fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Andor (fx.(0), fx.(1), fy.(0), fy.(1)));
              consumed.(x) <- true;
              consumed.(y) <- true
            end
            else if inner `And x then begin
              let fx = nl.Netlist.fanin.(x) in
              fusion.(i) <- Some (Orand (fx.(0), fx.(1), y));
              consumed.(x) <- true
            end
            else if inner `And y then begin
              let fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Orand (fy.(0), fy.(1), x));
              consumed.(y) <- true
            end
          | Netlist.Xor2c ->
            let x = fi.(0) and y = fi.(1) in
            if inner `Xor x then begin
              let fx = nl.Netlist.fanin.(x) in
              fusion.(i) <- Some (Xor3 (fx.(0), fx.(1), y));
              consumed.(x) <- true
            end
            else if inner `Xor y then begin
              let fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Xor3 (fy.(0), fy.(1), x));
              consumed.(y) <- true
            end
          | _ -> ())
        rank)
    levels.Levelize.by_level;
  (fusion, consumed)

let apply_initial t =
  Array.iter (fun (i, w) -> Array.unsafe_set t.values i w) t.consts;
  Array.iteri
    (fun j i -> Array.unsafe_set t.values i t.dff_init.(j))
    t.dffs

(* Hot arrays get a cache line of slack at the end so replicas allocated
   back to back never share a line across domains. *)
let pad = 8

let create ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) netlist =
  (* [?certify] translation-validates each pre-pass run
     ({!Hydra_analyze.Certify}): packed-random I/O equivalence for the
     optimizer's rewrites, a complete permutation proof for the
     re-layout. *)
  let netlist =
    if optimize then begin
      let post = Hydra_netlist.Optimize.optimize netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure (check ~transform:"Optimize.optimize" ~pre:netlist ~post ()));
      post
    end
    else netlist
  in
  let netlist =
    if relayout then begin
      let post, perm = Layout.rank_major_permutation netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure
            (check_permutation ~transform:"Layout.rank_major" ~pre:netlist
               ~post ~perm));
      post
    end
    else netlist
  in
  let levels = Levelize.check netlist in
  let n = Netlist.size netlist in
  let fusion, consumed =
    if fuse then plan_fusion netlist levels
    else (Array.make n None, Array.make n false)
  in
  let kernels =
    Array.map (build_kernel netlist fusion consumed) levels.Levelize.by_level
  in
  let consts = ref [] and dffs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Constant b -> consts := (i, Packed.broadcast b) :: !consts
      | Netlist.Dffc _ -> dffs := i :: !dffs
      | _ -> ())
    netlist.Netlist.components;
  let dffs = Array.of_list (List.rev !dffs) in
  let dff_src = Array.map (fun i -> netlist.Netlist.fanin.(i).(0)) dffs in
  let dff_init =
    Array.map
      (fun i ->
        match netlist.Netlist.components.(i) with
        | Netlist.Dffc b -> Packed.broadcast b
        | _ -> assert false)
      dffs
  in
  let input_index = Hashtbl.create 16 and output_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  List.iter (fun (s, i) -> Hashtbl.replace output_index s i) netlist.Netlist.outputs;
  let nfused = Array.fold_left (fun a c -> if c then a + 1 else a) 0 consumed in
  let t =
    {
      netlist;
      levels;
      kernels;
      consts = Array.of_list (List.rev !consts);
      dffs;
      dff_src;
      dff_init;
      fused = nfused;
      values = Array.make (n + pad) 0;
      dff_next = Array.make (Array.length dffs + pad) 0;
      input_index;
      output_index;
      cycle = 0;
      force_slots = [||];
    }
  in
  apply_initial t;
  t

(* A fresh engine over the same compiled circuit: shares every immutable
   compiled array, owns its own (padded) value state.  Safe to run in
   another domain concurrently with the original. *)
let replicate t =
  let r =
    {
      t with
      values = Array.make (Array.length t.values) 0;
      dff_next = Array.make (Array.length t.dff_next) 0;
      cycle = 0;
      force_slots = [||];  (* replicas start unforced *)
    }
  in
  apply_initial r;
  r

let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  apply_initial t;
  t.cycle <- 0

let set_input t name w =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.values.(i) <- w land lane_mask
  | None -> invalid_arg ("Compiled_wide.set_input: unknown input " ^ name)

let set_input_bool t name b = set_input t name (Packed.broadcast b)

let set_input_lane t name lane b =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.values.(i) <- Packed.set_lane t.values.(i) lane b
  | None -> invalid_arg ("Compiled_wide.set_input_lane: unknown input " ^ name)

(* Group forces by the rank at which the forced value must exist so that
   every consumer — which is always at a strictly higher rank — reads the
   overridden word: gates and outports right after their own rank's
   kernels, inputs/dffs/constants before rank 0.  Fused engines are
   rejected because a consumed inner gate's word is never materialized,
   so a force on (or through) it would be silently lost. *)
let set_forces t forces =
  if t.fused > 0 then
    invalid_arg "Compiled_wide.set_forces: requires an engine built with ~fuse:false";
  let n = Netlist.size t.netlist in
  let nslots = Array.length t.kernels + 1 in
  let slots = Array.make nslots [] in
  Array.iter
    (fun f ->
      if f.f_site < 0 || f.f_site >= n then
        invalid_arg "Compiled_wide.set_forces: site out of range";
      let slot =
        match t.netlist.Netlist.components.(f.f_site) with
        | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> 0
        | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
        | Netlist.Outport _ ->
          t.levels.Levelize.levels.(f.f_site) + 1
      in
      slots.(slot) <- f :: slots.(slot))
    forces;
  t.force_slots <- Array.map (fun l -> Array.of_list (List.rev l)) slots

let clear_forces t = t.force_slots <- [||]

let apply_forces values slot =
  for j = 0 to Array.length slot - 1 do
    let f = Array.unsafe_get slot j in
    let w = Array.unsafe_get values f.f_site in
    Array.unsafe_set values f.f_site
      ((((w land lnot f.force0) lor f.force1) lxor f.flip) land lane_mask)
  done

(* The hot path: one branch-free loop per gate kind per rank. *)
let settle t =
  let values = t.values in
  let kernels = t.kernels in
  let slots = t.force_slots in
  let forced = Array.length slots > 0 in
  if forced then apply_forces values (Array.unsafe_get slots 0);
  for lvl = 0 to Array.length kernels - 1 do
    let k = Array.unsafe_get kernels lvl in
    let dst = k.inv_dst and src = k.inv_src in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (lnot (Array.unsafe_get values (Array.unsafe_get src j)) land lane_mask)
    done;
    let dst = k.and_dst and s0 = k.and_s0 and s1 = k.and_s1 in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get s0 j)
        land Array.unsafe_get values (Array.unsafe_get s1 j))
    done;
    let dst = k.or_dst and s0 = k.or_s0 and s1 = k.or_s1 in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get s0 j)
        lor Array.unsafe_get values (Array.unsafe_get s1 j))
    done;
    let dst = k.xor_dst and s0 = k.xor_s0 and s1 = k.xor_s1 in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get s0 j)
        lxor Array.unsafe_get values (Array.unsafe_get s1 j))
    done;
    let dst = k.andor_dst and a = k.andor_a and b = k.andor_b
    and c = k.andor_c and d = k.andor_d in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get a j)
         land Array.unsafe_get values (Array.unsafe_get b j)
        lor (Array.unsafe_get values (Array.unsafe_get c j)
            land Array.unsafe_get values (Array.unsafe_get d j)))
    done;
    let dst = k.orand_dst and a = k.orand_a and b = k.orand_b
    and c = k.orand_c in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get a j)
         land Array.unsafe_get values (Array.unsafe_get b j)
        lor Array.unsafe_get values (Array.unsafe_get c j))
    done;
    let dst = k.xor3_dst and a = k.xor3_a and b = k.xor3_b and c = k.xor3_c in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get a j)
        lxor Array.unsafe_get values (Array.unsafe_get b j)
        lxor Array.unsafe_get values (Array.unsafe_get c j))
    done;
    let dst = k.out_dst and src = k.out_src in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get src j))
    done;
    if forced then apply_forces values (Array.unsafe_get slots (lvl + 1))
  done

let tick t =
  let values = t.values and next = t.dff_next in
  let dffs = t.dffs and src = t.dff_src in
  for j = 0 to Array.length dffs - 1 do
    Array.unsafe_set next j
      (Array.unsafe_get values (Array.unsafe_get src j))
  done;
  for j = 0 to Array.length dffs - 1 do
    Array.unsafe_set values (Array.unsafe_get dffs j) (Array.unsafe_get next j)
  done;
  t.cycle <- t.cycle + 1

let step t =
  settle t;
  tick t

let output t name =
  match Hashtbl.find_opt t.output_index name with
  | Some i -> t.values.(i)
  | None -> invalid_arg ("Compiled_wide.output: unknown output " ^ name)

let output_lane t name lane = Packed.lane (output t name) lane
let outputs t = List.map (fun (s, i) -> (s, t.values.(i))) t.netlist.Netlist.outputs
let peek t i = t.values.(i)
let poke t i w = t.values.(i) <- w land lane_mask
let cycle t = t.cycle
let netlist t = t.netlist
let critical_path t = t.levels.Levelize.critical_path
let fused_gates t = t.fused

(* Whole packed simulation, the word analogue of [Compiled.run]: every
   input stream is a packed word per cycle (shorter streams padded with
   0), output rows are packed words. *)
let run_packed t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some w -> w | None -> 0 in
        set_input t name value)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows

(* Batched combinational testbench: vector [k] (one bool per declared
   input, in port-list order) rides in lane [k mod 62] of pass [k / 62];
   each pass is reset / set inputs / settle / read outputs.  Passes are
   independent, so with a pool they chunk across domains, each on its own
   replica. *)
let run_vectors ?pool t vectors =
  let nvec = Array.length vectors in
  let in_ports = Array.of_list t.netlist.Netlist.inputs in
  let out_ports = Array.of_list t.netlist.Netlist.outputs in
  let nin = Array.length in_ports and nout = Array.length out_ports in
  Array.iter
    (fun v ->
      if Array.length v <> nin then
        invalid_arg "Compiled_wide.run_vectors: vector arity mismatch")
    vectors;
  let results = Array.make nvec [||] in
  let npasses = (nvec + lanes - 1) / lanes in
  let run_pass sim p =
    let base = p * lanes in
    let count = min lanes (nvec - base) in
    reset sim;
    for j = 0 to nin - 1 do
      let w = ref 0 in
      for l = 0 to count - 1 do
        if vectors.(base + l).(j) then w := !w lor (1 lsl l)
      done;
      sim.values.(snd in_ports.(j)) <- !w
    done;
    settle sim;
    let out_words = Array.map (fun (_, i) -> sim.values.(i)) out_ports in
    for l = 0 to count - 1 do
      results.(base + l) <-
        Array.init nout (fun j -> Packed.lane out_words.(j) l)
    done
  in
  (match pool with
  | Some pool when npasses > 1 && Pool.size pool > 1 ->
    (* ~4 chunks per domain for load balance; each chunk gets a replica *)
    let nchunks = min npasses (4 * Pool.size pool) in
    Pool.parallel_for ~chunk:1 pool 0 nchunks (fun c ->
        let sim = replicate t in
        let lo = c * npasses / nchunks and hi = (c + 1) * npasses / nchunks in
        for p = lo to hi - 1 do
          run_pass sim p
        done)
  | _ ->
    for p = 0 to npasses - 1 do
      run_pass t p
    done);
  results

(* Independent sequential lane-batches over the pool: each batch is a
   full packed stimulus set (cf. [run_packed]); batches run concurrently,
   one replica per chunk, no barriers inside a batch.  {!Sharded} provides
   the same operation with persistent per-domain replicas. *)
let run_batches ?pool t ~batches ~cycles =
  let n = Array.length batches in
  let results = Array.make n [] in
  let run_one sim b = results.(b) <- run_packed sim ~inputs:batches.(b) ~cycles in
  (match pool with
  | Some pool when n > 1 && Pool.size pool > 1 ->
    let nchunks = min n (4 * Pool.size pool) in
    Pool.parallel_for ~chunk:1 pool 0 nchunks (fun c ->
        let sim = replicate t in
        let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
        for b = lo to hi - 1 do
          run_one sim b
        done)
  | _ ->
    for b = 0 to n - 1 do
      run_one t b
    done);
  results
