(* Word-parallel (62-lane) levelized compiled simulator.

   Every net holds a machine word carrying [Packed.lanes] = 62 independent
   simulation lanes, so one pass over the gate arrays advances 62 test
   vectors / stimulus streams at once: gates become [land]/[lor]/[lxor]/
   [lnot] on whole words and the dff latch phase copies words.  This
   generalizes the combinational {!Hydra_core.Packed} semantics to
   sequential circuits — the full section-5/6 processors run 62 programs
   per pass.

   Two further throughput levers over the scalar {!Compiled} engine:

   - The per-gate variant dispatch of [Compiled.eval_component] is
     replaced by pre-split per-op index arrays: at compile time each
     levelized rank is split into one flat (dst, src) array per gate
     kind, and [settle] runs one tight branch-free loop per kind per
     rank.  The inner loops contain no matches and no polymorphism — just
     unsafe int-array reads, a logical op, and a write.

   - Independent lane-batches chunk over {!Hydra_parallel.Pool}
     ({!run_vectors} / {!run_batches}): each domain simulates its own
     {!replicate} of the engine (sharing the immutable compiled arrays,
     owning its value state), so batch-level parallelism composes with
     lane-level packing and there are no barriers inside a batch — unlike
     {!Parallel_sim}'s per-level barriers, which only pay off on very
     wide ranks. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Packed = Hydra_core.Packed
module Pool = Hydra_parallel.Pool

let lanes = Packed.lanes
let lane_mask = Packed.lane_mask

(* One levelized rank, pre-split by gate kind into flat index arrays:
   [x_dst.(k)] is evaluated from [x_src*.(k)] for every [k], in any order
   (all sources settled at strictly lower ranks). *)
type kernel = {
  inv_dst : int array;
  inv_src : int array;
  and_dst : int array;
  and_s0 : int array;
  and_s1 : int array;
  or_dst : int array;
  or_s0 : int array;
  or_s1 : int array;
  xor_dst : int array;
  xor_s0 : int array;
  xor_s1 : int array;
  out_dst : int array;  (* outports: plain word copies *)
  out_src : int array;
}

type t = {
  netlist : Netlist.t;  (* the netlist actually compiled (post-optimize) *)
  levels : Levelize.t;
  kernels : kernel array;
  consts : (int * int) array;  (* component index, broadcast word *)
  dffs : int array;
  dff_src : int array;  (* driver of each dff, indexed like dffs *)
  dff_init : int array;  (* broadcast power-up words *)
  values : int array;
  dff_next : int array;
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
  mutable cycle : int;
}

let build_kernel (nl : Netlist.t) rank =
  let invs = ref [] and ands = ref [] and ors = ref [] and xors = ref []
  and outs = ref [] in
  Array.iter
    (fun i ->
      let fi = nl.Netlist.fanin.(i) in
      match nl.Netlist.components.(i) with
      | Netlist.Invc -> invs := (i, fi.(0)) :: !invs
      | Netlist.And2c -> ands := (i, fi.(0), fi.(1)) :: !ands
      | Netlist.Or2c -> ors := (i, fi.(0), fi.(1)) :: !ors
      | Netlist.Xor2c -> xors := (i, fi.(0), fi.(1)) :: !xors
      | Netlist.Outport _ -> outs := (i, fi.(0)) :: !outs
      | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> ())
    rank;
  let arr1 l = Array.of_list (List.rev_map fst l)
  and arr2 l = Array.of_list (List.rev_map snd l) in
  let a3 sel l = Array.of_list (List.rev_map sel l) in
  {
    inv_dst = arr1 !invs;
    inv_src = arr2 !invs;
    and_dst = a3 (fun (i, _, _) -> i) !ands;
    and_s0 = a3 (fun (_, a, _) -> a) !ands;
    and_s1 = a3 (fun (_, _, b) -> b) !ands;
    or_dst = a3 (fun (i, _, _) -> i) !ors;
    or_s0 = a3 (fun (_, a, _) -> a) !ors;
    or_s1 = a3 (fun (_, _, b) -> b) !ors;
    xor_dst = a3 (fun (i, _, _) -> i) !xors;
    xor_s0 = a3 (fun (_, a, _) -> a) !xors;
    xor_s1 = a3 (fun (_, _, b) -> b) !xors;
    out_dst = arr1 !outs;
    out_src = arr2 !outs;
  }

let apply_initial t =
  Array.iter (fun (i, w) -> Array.unsafe_set t.values i w) t.consts;
  Array.iteri
    (fun j i -> Array.unsafe_set t.values i t.dff_init.(j))
    t.dffs

let create ?(optimize = false) netlist =
  let netlist =
    if optimize then Hydra_netlist.Optimize.optimize netlist else netlist
  in
  let levels = Levelize.check netlist in
  let n = Netlist.size netlist in
  let kernels = Array.map (build_kernel netlist) levels.Levelize.by_level in
  let consts = ref [] and dffs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Constant b -> consts := (i, Packed.broadcast b) :: !consts
      | Netlist.Dffc _ -> dffs := i :: !dffs
      | _ -> ())
    netlist.Netlist.components;
  let dffs = Array.of_list (List.rev !dffs) in
  let dff_src = Array.map (fun i -> netlist.Netlist.fanin.(i).(0)) dffs in
  let dff_init =
    Array.map
      (fun i ->
        match netlist.Netlist.components.(i) with
        | Netlist.Dffc b -> Packed.broadcast b
        | _ -> assert false)
      dffs
  in
  let input_index = Hashtbl.create 16 and output_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  List.iter (fun (s, i) -> Hashtbl.replace output_index s i) netlist.Netlist.outputs;
  let t =
    {
      netlist;
      levels;
      kernels;
      consts = Array.of_list (List.rev !consts);
      dffs;
      dff_src;
      dff_init;
      values = Array.make n 0;
      dff_next = Array.make (Array.length dffs) 0;
      input_index;
      output_index;
      cycle = 0;
    }
  in
  apply_initial t;
  t

(* A fresh engine over the same compiled circuit: shares every immutable
   compiled array, owns its own value state.  Safe to run in another
   domain concurrently with the original. *)
let replicate t =
  let r =
    {
      t with
      values = Array.make (Array.length t.values) 0;
      dff_next = Array.make (Array.length t.dff_next) 0;
      cycle = 0;
    }
  in
  apply_initial r;
  r

let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  apply_initial t;
  t.cycle <- 0

let set_input t name w =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.values.(i) <- w land lane_mask
  | None -> invalid_arg ("Compiled_wide.set_input: unknown input " ^ name)

let set_input_bool t name b = set_input t name (Packed.broadcast b)

let set_input_lane t name lane b =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.values.(i) <- Packed.set_lane t.values.(i) lane b
  | None -> invalid_arg ("Compiled_wide.set_input_lane: unknown input " ^ name)

(* The hot path: one branch-free loop per gate kind per rank. *)
let settle t =
  let values = t.values in
  let kernels = t.kernels in
  for lvl = 0 to Array.length kernels - 1 do
    let k = Array.unsafe_get kernels lvl in
    let dst = k.inv_dst and src = k.inv_src in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (lnot (Array.unsafe_get values (Array.unsafe_get src j)) land lane_mask)
    done;
    let dst = k.and_dst and s0 = k.and_s0 and s1 = k.and_s1 in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get s0 j)
        land Array.unsafe_get values (Array.unsafe_get s1 j))
    done;
    let dst = k.or_dst and s0 = k.or_s0 and s1 = k.or_s1 in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get s0 j)
        lor Array.unsafe_get values (Array.unsafe_get s1 j))
    done;
    let dst = k.xor_dst and s0 = k.xor_s0 and s1 = k.xor_s1 in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get s0 j)
        lxor Array.unsafe_get values (Array.unsafe_get s1 j))
    done;
    let dst = k.out_dst and src = k.out_src in
    for j = 0 to Array.length dst - 1 do
      Array.unsafe_set values
        (Array.unsafe_get dst j)
        (Array.unsafe_get values (Array.unsafe_get src j))
    done
  done

let tick t =
  let values = t.values and next = t.dff_next in
  let dffs = t.dffs and src = t.dff_src in
  for j = 0 to Array.length dffs - 1 do
    Array.unsafe_set next j
      (Array.unsafe_get values (Array.unsafe_get src j))
  done;
  for j = 0 to Array.length dffs - 1 do
    Array.unsafe_set values (Array.unsafe_get dffs j) (Array.unsafe_get next j)
  done;
  t.cycle <- t.cycle + 1

let step t =
  settle t;
  tick t

let output t name =
  match Hashtbl.find_opt t.output_index name with
  | Some i -> t.values.(i)
  | None -> invalid_arg ("Compiled_wide.output: unknown output " ^ name)

let output_lane t name lane = Packed.lane (output t name) lane
let outputs t = List.map (fun (s, i) -> (s, t.values.(i))) t.netlist.Netlist.outputs
let peek t i = t.values.(i)
let cycle t = t.cycle
let netlist t = t.netlist
let critical_path t = t.levels.Levelize.critical_path

(* Whole packed simulation, the word analogue of [Compiled.run]: every
   input stream is a packed word per cycle (shorter streams padded with
   0), output rows are packed words. *)
let run_packed t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some w -> w | None -> 0 in
        set_input t name value)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows

(* Batched combinational testbench: vector [k] (one bool per declared
   input, in port-list order) rides in lane [k mod 62] of pass [k / 62];
   each pass is reset / set inputs / settle / read outputs.  Passes are
   independent, so with a pool they chunk across domains, each on its own
   replica. *)
let run_vectors ?pool t vectors =
  let nvec = Array.length vectors in
  let in_ports = Array.of_list t.netlist.Netlist.inputs in
  let out_ports = Array.of_list t.netlist.Netlist.outputs in
  let nin = Array.length in_ports and nout = Array.length out_ports in
  Array.iter
    (fun v ->
      if Array.length v <> nin then
        invalid_arg "Compiled_wide.run_vectors: vector arity mismatch")
    vectors;
  let results = Array.make nvec [||] in
  let npasses = (nvec + lanes - 1) / lanes in
  let run_pass sim p =
    let base = p * lanes in
    let count = min lanes (nvec - base) in
    reset sim;
    for j = 0 to nin - 1 do
      let w = ref 0 in
      for l = 0 to count - 1 do
        if vectors.(base + l).(j) then w := !w lor (1 lsl l)
      done;
      sim.values.(snd in_ports.(j)) <- !w
    done;
    settle sim;
    let out_words = Array.map (fun (_, i) -> sim.values.(i)) out_ports in
    for l = 0 to count - 1 do
      results.(base + l) <-
        Array.init nout (fun j -> Packed.lane out_words.(j) l)
    done
  in
  (match pool with
  | Some pool when npasses > 1 && Pool.size pool > 1 ->
    (* ~4 chunks per domain for load balance; each chunk gets a replica *)
    let nchunks = min npasses (4 * Pool.size pool) in
    Pool.parallel_for ~chunk:1 pool 0 nchunks (fun c ->
        let sim = replicate t in
        let lo = c * npasses / nchunks and hi = (c + 1) * npasses / nchunks in
        for p = lo to hi - 1 do
          run_pass sim p
        done)
  | _ ->
    for p = 0 to npasses - 1 do
      run_pass t p
    done);
  results

(* Independent sequential lane-batches over the pool: each batch is a
   full packed stimulus set (cf. [run_packed]); batches run concurrently,
   one replica per chunk, no barriers inside a batch. *)
let run_batches ?pool t ~batches ~cycles =
  let n = Array.length batches in
  let results = Array.make n [] in
  let run_one sim b = results.(b) <- run_packed sim ~inputs:batches.(b) ~cycles in
  (match pool with
  | Some pool when n > 1 && Pool.size pool > 1 ->
    let nchunks = min n (4 * Pool.size pool) in
    Pool.parallel_for ~chunk:1 pool 0 nchunks (fun c ->
        let sim = replicate t in
        let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
        for b = lo to hi - 1 do
          run_one sim b
        done)
  | _ ->
    for b = 0 to n - 1 do
      run_one t b
    done);
  results
