#!/bin/sh
# Emits the extra C flags for kernel_stubs.c as a dune (:include ...)
# sexp.  "(-mavx2)" only when the host both compiles and *runs* AVX2
# (see probe_avx2.c); "()" otherwise, so the stubs build their portable
# scalar (or baseline-NEON) paths.  HYDRA_SIMD=off forces "()".
#
# Usage: probe_simd.sh <probe.c> <cc> [cc-flags...]
set -u
src="${1:-probe_avx2.c}"
shift 2>/dev/null || true
if [ "$#" -eq 0 ]; then
  set -- cc
fi
if [ "${HYDRA_SIMD:-}" = "off" ]; then
  echo "()"
  exit 0
fi
tmp="probe_avx2_exe.$$"
if "$@" -mavx2 -O1 -o "$tmp" "$src" >/dev/null 2>&1 && "./$tmp" >/dev/null 2>&1; then
  echo "(-mavx2)"
else
  echo "()"
fi
rm -f "$tmp"
exit 0
