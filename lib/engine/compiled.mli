(** Levelized compiled netlist simulator: the netlist flattened into
    integer arrays, one cycle = set inputs, {!settle}, read outputs,
    {!tick}.  The fast sequential baseline engine (experiment E12). *)

type t

val create : ?optimize:bool -> ?certify:bool -> Hydra_netlist.Netlist.t -> t
(** Raises {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit.  [~optimize:true] (default false) runs the
    {!Hydra_netlist.Optimize} pre-pass before compilation — identical
    port-level behaviour, fewer components per cycle.  [~certify:true]
    (default false) translation-validates that pre-pass run with
    {!Hydra_analyze.Certify} and raises
    {!Hydra_analyze.Certify.Certification_failed} if the optimizer
    changed behaviour. *)

val reset : t -> unit
(** Restore power-up values. *)

val set_input : t -> string -> bool -> unit
val settle : t -> unit
(** Evaluate the combinational logic for the current cycle. *)

val tick : t -> unit
(** Latch every dff from its (settled) input and advance the clock. *)

val step : t -> unit
(** [settle] then [tick]. *)

val output : t -> string -> bool
val outputs : t -> (string * bool) list
val cycle : t -> int
val critical_path : t -> int
val levels : t -> Hydra_netlist.Levelize.t

val run :
  t -> inputs:(string * bool list) list -> cycles:int -> (string * bool) list list
(** Whole simulation: per-input value streams (padded with [false]);
    returns one output row per cycle. *)

type snapshot

val save : t -> snapshot
(** Checkpoint the full simulation state. *)

val restore : t -> snapshot -> unit
(** Return to a checkpoint of the same circuit. *)

(** {1 Internals exposed for the parallel engines and model checkers} *)

val eval_component : t -> int -> unit
val dff_indices : t -> int array
val latch_one : t -> int -> unit
val commit_one : t -> int -> unit
val bump_cycle : t -> unit
val peek : t -> int -> bool
val poke : t -> int -> bool -> unit
