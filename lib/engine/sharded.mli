(** Domain-sharded wide simulation: the 62-lane {!Compiled_wide} engine
    multiplied by core count.

    Each pool member owns a private, persistent {!Compiled_wide.replicate}
    (shared immutable compiled arrays, cache-line padded private state)
    and drains independent lane-batches from an atomic work queue in
    {!Hydra_parallel.Pool.run_team} mode — no per-cycle or per-level
    barriers, synchronization at batch granularity only.  Peak
    parallelism: 62 lanes x [domains] independent simulations per settle
    pass. *)

type t

val lanes : int
(** {!Compiled_wide.lanes} = 62. *)

val create :
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?domains:int ->
  ?pool:Hydra_parallel.Pool.t ->
  Hydra_netlist.Netlist.t ->
  t
(** Compile once, replicate per pool member.  [?optimize] / [?relayout] /
    [?fuse] / [?certify] as in {!Compiled_wide.create} (the base engine
    is compiled — and its pre-passes certified — once; replicas share
    it).  [?pool] shares an existing
    pool (not shut down by {!shutdown}); otherwise a pool of [?domains]
    (default {!Hydra_parallel.Pool.default_domains}) is created and
    owned. *)

val domains : t -> int
(** Pool size = replica count. *)

val base : t -> Compiled_wide.t
(** Replica 0 — usable directly as an ordinary wide engine between sharded
    jobs (never concurrently with one). *)

val replica : t -> int -> Compiled_wide.t
(** [replica t m] is member [m]'s private engine. *)

val netlist : t -> Hydra_netlist.Netlist.t
(** The compiled netlist (post-optimize/relayout), as
    {!Compiled_wide.netlist}. *)

val run_tasks : t -> int -> (member:int -> int -> unit) -> unit
(** [run_tasks t n f] runs [f ~member job] for every [0 <= job < n]:
    members drain jobs from one atomic counter, each passing its member
    index so callers can keep their own per-member state (a second
    engine's replicas, accumulators) race-free.  [f] must be safe to run
    concurrently for distinct members; jobs are claimed in order but
    finish in any order.  Returns when all jobs are done (the only
    barrier). *)

val dispatch : t -> int -> (Compiled_wide.t -> int -> unit) -> unit
(** [dispatch t n f] runs [f sim job] for every job on the claiming
    member's private replica — {!run_tasks} specialized to the common
    case. *)

val run_batches :
  t ->
  batches:(string * int list) list array ->
  cycles:int ->
  (string * int) list list array
(** Independent sequential lane-batches on persistent replicas: element
    [b] of the result is {!Compiled_wide.run_packed} of [batches.(b)]. *)

val run_vectors : t -> bool array array -> bool array array
(** Batched combinational testbench across lanes and domains (see
    {!Compiled_wide.run_vectors}): 62-vector passes are the sharded
    jobs. *)

val step_batches : t -> batches:int -> cycles:int -> int
(** Raw stepping throughput for benchmarks: [batches] independent jobs,
    each reset + one packed input word per port + [cycles] steps, no
    per-cycle output materialization.  Returns an output checksum (so the
    work cannot be optimized away). *)

val shutdown : t -> unit
(** Shut down the owned pool (a shared [?pool] is left running).  The
    sharded engine must not be used afterwards. *)
