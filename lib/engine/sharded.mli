(** Domain-sharded word-parallel simulation: a lane-packed engine
    multiplied by core count.

    Each pool member owns a private, persistent replica of a base engine
    (shared immutable compiled arrays, cache-line padded private state)
    and drains independent lane-batches from an atomic work queue in
    {!Hydra_parallel.Pool.run_team} mode — no per-cycle or per-level
    barriers, synchronization at batch granularity only.  Peak
    parallelism: [62 x words x domains] independent simulations per
    settle pass.

    The sharding machinery is engine-polymorphic: {!Make} builds a
    sharded driver for any module matching {!ENGINE} ({!Compiled_wide}
    and {!Slab} both do).  The top-level values are the historical
    wide-engine specialization; {!Slab_sharded} shards the multi-word
    slab engine. *)

(** What {!Make} needs from an engine.  Creation is deliberately not
    part of the signature — engine families differ in their
    configuration surface (e.g. {!Slab}'s [?k]/[?gating]) — so the base
    engine is built by the caller and handed to [of_base]; replicas are
    derived from it. *)
module type ENGINE = sig
  type t

  val words : t -> int
  val replicate : t -> t
  val reset : t -> unit
  val set_input : t -> string -> int -> unit
  val set_input_word : t -> string -> int -> int -> unit
  val settle : t -> unit
  val step : t -> unit
  val output_word : t -> string -> int -> int
  val peek : t -> int -> int
  val poke : t -> int -> int -> unit
  val netlist : t -> Hydra_netlist.Netlist.t

  val run_packed :
    t ->
    inputs:(string * int list) list ->
    cycles:int ->
    (string * int) list list
end

(** A sharded driver over engine type [engine]. *)
module type S = sig
  type engine
  type t

  val of_base : ?domains:int -> ?pool:Hydra_parallel.Pool.t -> engine -> t
  (** Wrap a compiled base engine: replica 0 {e is} the base; members
      1..n-1 get private [replicate]s.  [?pool] shares an existing pool
      (not shut down by {!shutdown}); otherwise a pool of [?domains]
      (default {!Hydra_parallel.Pool.default_domains}) is created and
      owned. *)

  val pool : t -> Hydra_parallel.Pool.t
  (** The pool the replicas are aligned with — hand it to
      {!Scheduler.of_pool} to drive this engine's members from a job
      graph. *)

  val domains : t -> int
  (** Pool size = replica count. *)

  val base : t -> engine
  (** Replica 0 — usable directly as an ordinary engine between sharded
      jobs (never concurrently with one). *)

  val replica : t -> int -> engine
  (** [replica t m] is member [m]'s private engine. *)

  val netlist : t -> Hydra_netlist.Netlist.t

  val lanes : t -> int
  (** Total lanes per job: [62 x words] of the base engine. *)

  val run_tasks : t -> int -> (member:int -> int -> unit) -> unit
  (** [run_tasks t n f] runs [f ~member job] for every [0 <= job < n]:
      members drain jobs from one atomic counter, each passing its
      member index so callers can keep their own per-member state (a
      second engine's replicas, accumulators) race-free.  [f] must be
      safe to run concurrently for distinct members; jobs are claimed in
      order but finish in any order.  Returns when all jobs are done
      (the only barrier). *)

  val dispatch : t -> int -> (engine -> int -> unit) -> unit
  (** [dispatch t n f] runs [f sim job] for every job on the claiming
      member's private replica — {!run_tasks} specialized to the common
      case. *)

  val run_batches :
    t ->
    batches:(string * int list) list array ->
    cycles:int ->
    (string * int) list list array
  (** Independent sequential lane-batches on persistent replicas:
      element [b] of the result is the engine's [run_packed] of
      [batches.(b)]. *)

  val run_vectors : t -> bool array array -> bool array array
  (** Batched combinational testbench across lanes and domains:
      [lanes t]-vector passes are the sharded jobs. *)

  val step_batches : t -> batches:int -> cycles:int -> int
  (** Raw stepping throughput for benchmarks: [batches] independent
      jobs, each reset + one packed input word per port + [cycles]
      steps, no per-cycle output materialization.  Returns an output
      checksum (so the work cannot be optimized away). *)

  val shutdown : t -> unit
  (** Shut down the owned pool (a shared [?pool] is left running).  The
      sharded engine must not be used afterwards. *)
end

module Make (E : ENGINE) : S with type engine = E.t

module Slab_sharded : S with type engine = Slab.t
(** The multi-word {!Slab} engine, sharded: [62 x k x domains] lanes. *)

(** {1 The wide specialization}

    {!Make} applied to {!Compiled_wide}, with a netlist-level [create]
    for compatibility: this is the interface the rest of the tree
    ({!Hydra_verify.Equiv}, {!Hydra_verify.Campaign}, {!Testbench},
    benches) programs against. *)

type t

val lanes : int
(** {!Compiled_wide.lanes} = 62. *)

val create :
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?domains:int ->
  ?pool:Hydra_parallel.Pool.t ->
  Hydra_netlist.Netlist.t ->
  t
(** Compile once, replicate per pool member.  [?optimize] / [?relayout] /
    [?fuse] / [?certify] as in {!Compiled_wide.create} (the base engine
    is compiled — and its pre-passes certified — once; replicas share
    it).  Pool options as in {!S.of_base}. *)

val of_base : ?domains:int -> ?pool:Hydra_parallel.Pool.t -> Compiled_wide.t -> t
(** Wrap an already-compiled wide engine (see {!S.of_base}). *)

val pool : t -> Hydra_parallel.Pool.t
val domains : t -> int
val base : t -> Compiled_wide.t
val replica : t -> int -> Compiled_wide.t
val netlist : t -> Hydra_netlist.Netlist.t
val run_tasks : t -> int -> (member:int -> int -> unit) -> unit
val dispatch : t -> int -> (Compiled_wide.t -> int -> unit) -> unit

val run_batches :
  t ->
  batches:(string * int list) list array ->
  cycles:int ->
  (string * int) list list array

val run_vectors : t -> bool array array -> bool array array
val step_batches : t -> batches:int -> cycles:int -> int
val shutdown : t -> unit
