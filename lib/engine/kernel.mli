(** Shared compile-time plumbing of the word-parallel engines.

    {!Compiled_wide} (one 62-lane word per signal) and {!Slab} (K
    consecutive words per signal) run the same branch-free per-op loops
    over the same pre-split index arrays; this module is the common
    front end that builds them.  [compile] runs the optional
    [?optimize]/[?relayout] pre-passes (optionally translation-validated
    by {!Hydra_analyze.Certify}), levelizes, plans kernel fusion, and
    splits every rank into flat per-gate-kind (dst, src) index arrays.
    The resulting {!program} is immutable and engine-agnostic: engines
    layer their own value state (one word or K words per component) on
    top of it and may share one program between many replicas. *)

(** One levelized rank, pre-split by gate kind: [x_dst.(j)] is evaluated
    from [x_src*.(j)] for every [j], in any order (all sources settle at
    strictly lower ranks; fused kernels read the consumed inner gate's
    sources, which settle earlier still). *)
type kernel = {
  inv_dst : int array;
  inv_src : int array;
  and_dst : int array;
  and_s0 : int array;
  and_s1 : int array;
  or_dst : int array;
  or_s0 : int array;
  or_s1 : int array;
  xor_dst : int array;
  xor_s0 : int array;
  xor_s1 : int array;
  andor_dst : int array;  (** dst = (a & b) | (c & d) *)
  andor_a : int array;
  andor_b : int array;
  andor_c : int array;
  andor_d : int array;
  orand_dst : int array;  (** dst = (a & b) | c *)
  orand_a : int array;
  orand_b : int array;
  orand_c : int array;
  xor3_dst : int array;  (** dst = a ^ b ^ c *)
  xor3_a : int array;
  xor3_b : int array;
  xor3_c : int array;
  out_dst : int array;  (** outports: plain word copies *)
  out_src : int array;
}

type program = {
  netlist : Hydra_netlist.Netlist.t;
      (** the netlist actually compiled (post-optimize, post-relayout) *)
  levels : Hydra_netlist.Levelize.t;
  kernels : kernel array;  (** one per levelized rank *)
  consts : (int * bool) array;  (** component index, constant value *)
  dffs : int array;
  dff_src : int array;  (** driver of each dff, indexed like [dffs] *)
  dff_init : bool array;  (** power-up values, indexed like [dffs] *)
  fused : int;  (** gates evaluated inside a fused kernel (never stored) *)
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
}

val compile :
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  Hydra_netlist.Netlist.t ->
  program
(** Raises {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit.  [~optimize:true] (default false) runs the
    {!Hydra_netlist.Optimize} pre-pass; [~relayout] (default true)
    applies the {!Hydra_netlist.Layout.rank_major} memory re-layout;
    [~fuse] (default true) absorbs fanout-1 inner gates into fused
    and-or / or-and / xor-chain kernels; [~certify:true] (default
    false) translation-validates each pre-pass run with
    {!Hydra_analyze.Certify} and raises
    {!Hydra_analyze.Certify.Certification_failed} on a lie. *)

val size : program -> int
(** Component count of the compiled netlist. *)

val force_slot : what:string -> program -> int -> int
(** The rank-boundary slot at which a forced value on the given
    component must be applied so that every consumer (always at a
    strictly higher rank) reads the overridden word: slot 0 (before rank
    0) for inports, constants and dffs; slot [rank + 1] (right after the
    component's own rank) for gates and outports.  Raises a descriptive
    [Invalid_argument] — prefixed with [what] — when the component index
    is outside the compiled netlist. *)

val n_force_slots : program -> int
(** Number of force slots: rank count + 1. *)

val consumer_ranks : program -> int array array
(** [consumer_ranks p] maps every component to the sorted list of ranks
    whose kernels read it — computed from the kernel source arrays
    themselves, so a fused inner gate's sources are charged to the
    *outer* gate's rank (where the read actually happens).  Reads by the
    dff latch phase are not ranks and are not included.  This is the
    dependency metadata behind {!Slab}'s activity gating: when a
    component's word changes, exactly these rank blocks must re-run. *)
