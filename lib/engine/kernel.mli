(** Shared compile-time plumbing of the word-parallel engines.

    {!Compiled_wide} (one 62-lane word per signal) and {!Slab} (K
    consecutive words per signal) run the same branch-free per-op loops
    over the same pre-split index arrays; this module is the common
    front end that builds them.  [compile] runs the optional
    [?optimize]/[?relayout] pre-passes (optionally translation-validated
    by {!Hydra_analyze.Certify}), levelizes, plans kernel fusion, and
    splits every rank into flat per-gate-kind (dst, src) index arrays.
    The resulting {!program} is immutable and engine-agnostic: engines
    layer their own value state (one word or K words per component) on
    top of it and may share one program between many replicas. *)

(** One levelized rank, pre-split by gate kind: [x_dst.(j)] is evaluated
    from [x_src*.(j)] for every [j], in any order (all sources settle at
    strictly lower ranks; fused kernels read the consumed inner gate's
    sources, which settle earlier still). *)
type kernel = {
  inv_dst : int array;
  inv_src : int array;
  and_dst : int array;
  and_s0 : int array;
  and_s1 : int array;
  or_dst : int array;
  or_s0 : int array;
  or_s1 : int array;
  xor_dst : int array;
  xor_s0 : int array;
  xor_s1 : int array;
  andor_dst : int array;  (** dst = (a & b) | (c & d) *)
  andor_a : int array;
  andor_b : int array;
  andor_c : int array;
  andor_d : int array;
  orand_dst : int array;  (** dst = (a & b) | c *)
  orand_a : int array;
  orand_b : int array;
  orand_c : int array;
  xor3_dst : int array;  (** dst = a ^ b ^ c *)
  xor3_a : int array;
  xor3_b : int array;
  xor3_c : int array;
  out_dst : int array;  (** outports: plain word copies *)
  out_src : int array;
}

(** Cache-tiling and gating knobs shared by every engine compiled
    through this module.  [block_words] is the target number of value
    words one block's kernels touch per pass (dst plus sources, times
    the engine's K words per signal) — size it to L1/L2;
    [block_gates] > 0 overrides the derivation with an explicit
    gates-per-block.  [hot_after] and [probe_period] drive {!Slab}'s
    per-block hot/detect adaptation: a block that changes on
    [hot_after] consecutive detect runs goes hot (plain kernels,
    conservative consumer marking) for [probe_period] runs before being
    re-probed with change detection. *)
type tuning = {
  block_words : int;  (** cache target in value words, default 3072 *)
  block_gates : int;  (** explicit gates per block; 0 (default) derives *)
  hot_after : int;  (** detect runs with changes before hot, default 4 *)
  probe_period : int;  (** hot runs between re-probes, default 128 *)
}

val default_tuning : tuning

val tuning_of_spec : ?base:tuning -> string -> tuning
(** Parse a ["key=int,key=int"] spec (keys [block-words], [block-gates],
    [hot-after], [probe-period]; underscores accepted) over [?base]
    (default {!default_tuning}).  Raises a descriptive
    [Invalid_argument] on unknown keys, non-integer values or
    out-of-range results — the shared parser behind the [--tuning] CLI
    knobs. *)

val tuning_to_spec : tuning -> string
(** Inverse of {!tuning_of_spec}: a spec string listing every field. *)

val gates_per_block : k:int -> tuning -> int
(** The block size [compile] will use for an engine with [k] words per
    signal: [block_gates] when set, else derived from [block_words]. *)

(** How the outer gate at [dst] absorbed a fanout-1 inner gate (the
    fusion plan is carried in the program so {!patch} can undo it
    locally). *)
type fusion =
  | Andor of int * int * int * int  (** dst = (a & b) | (c & d) *)
  | Orand of int * int * int  (** dst = (a & b) | c *)
  | Xor3 of int * int * int  (** dst = a ^ b ^ c *)

type program = {
  netlist : Hydra_netlist.Netlist.t;
      (** the netlist actually compiled (post-optimize, post-relayout) *)
  levels : Hydra_netlist.Levelize.t;
  blocks : kernel array;
      (** rank-major: every levelized rank tiled into consecutive blocks
          of at most {!gates_per_block} gates.  Within a rank the split
          is arbitrary but order-safe (all sources settle at strictly
          lower ranks), so engines run blocks [rank_first_block.(r)] to
          [rank_first_block.(r+1) - 1] in any order — ascending re-walks
          a cache-hot tile instead of streaming the whole rank. *)
  block_rank : int array;  (** owning rank of each block *)
  rank_first_block : int array;
      (** length rank-count + 1: blocks of rank [r] are
          [rank_first_block.(r) .. rank_first_block.(r+1) - 1] *)
  consts : (int * bool) array;  (** component index, constant value *)
  dffs : int array;
  dff_src : int array;  (** driver of each dff, indexed like [dffs] *)
  dff_init : bool array;  (** power-up values, indexed like [dffs] *)
  fused : int;  (** gates evaluated inside a fused kernel (never stored) *)
  fusion : fusion option array;
      (** per component: the fusion its kernel entry uses, if any *)
  consumed : bool array;
      (** per component: absorbed into an outer fused kernel, never
          stored *)
  consumed_by : int array;
      (** per component: the outer gate that absorbed it, or -1 *)
  tuning : tuning;  (** the tuning the blocks were sized with *)
  k : int;  (** the words-per-signal the blocks were sized for *)
  dffs_per_cluster : int;
      (** dff latch gating granularity: dff [j] (index into [dffs])
          belongs to cluster [j / dffs_per_cluster] *)
  n_dff_clusters : int;
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
}

val compile :
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?tuning:tuning ->
  ?k:int ->
  Hydra_netlist.Netlist.t ->
  program
(** Raises {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit.  [~optimize:true] (default false) runs the
    {!Hydra_netlist.Optimize} pre-pass; [~relayout] (default true)
    applies the {!Hydra_netlist.Layout.rank_major} memory re-layout;
    [~fuse] (default true) absorbs fanout-1 inner gates into fused
    and-or / or-and / xor-chain kernels; [~certify:true] (default
    false) translation-validates each pre-pass run with
    {!Hydra_analyze.Certify} and raises
    {!Hydra_analyze.Certify.Certification_failed} on a lie.
    [~tuning] (default {!default_tuning}) and [~k] (the engine's
    words-per-signal, default 1) size the rank blocks; they change only
    how ranks are tiled, never what is computed. *)

val n_ranks : program -> int

val size : program -> int
(** Component count of the compiled netlist. *)

(** What {!patch} actually did, for perf accounting: the edit set size,
    fusions undone, ranks rebuilt vs reused, and kernel entries
    recompiled vs the component total. *)
type patch_stats = {
  p_edited : int;
  p_defused : int;
  p_ranks_rebuilt : int;
  p_ranks_total : int;
  p_comps_recompiled : int;
  p_comps_total : int;
}

val patch :
  program -> Hydra_netlist.Netlist.t -> edited:int list -> program * patch_stats
(** Incremental recompilation: rebuild only what a small edit invalidated
    instead of recompiling from scratch.  The edited netlist must share
    the program's index space — same size, every component outside
    [~edited] identical (kind and fanin), and every edited site a
    combinational gate ([Invc]/[And2c]/[Or2c]/[Xor2c]) on both sides —
    because the edit is expressed against [program.netlist] (the
    post-optimize/post-relayout netlist the blocks index into).
    Re-levelizes incrementally from the edit, un-fuses any fused kernel
    the edit touches (fusion is never *added* by a patch), and rebuilds
    exactly the ranks whose membership or kernel content changed; every
    other rank's blocks are reused by reference.  Raises
    [Invalid_argument] on contract violations and
    {!Hydra_netlist.Levelize.Combinational_cycle} (with witness) when
    the edit closes a combinational loop.  The patched program is a
    normal immutable {!program}: engines build from it as usual, and
    {!Hydra_verify.Equiv.certify_patch} checks it against a fresh full
    compile. *)

val force_slot : what:string -> program -> int -> int
(** The rank-boundary slot at which a forced value on the given
    component must be applied so that every consumer (always at a
    strictly higher rank) reads the overridden word: slot 0 (before rank
    0) for inports, constants and dffs; slot [rank + 1] (right after the
    component's own rank) for gates and outports.  Raises a descriptive
    [Invalid_argument] — prefixed with [what] — when the component index
    is outside the compiled netlist. *)

val n_force_slots : program -> int
(** Number of force slots: rank count + 1. *)

val consumer_blocks : program -> int array array
(** [consumer_blocks p] maps every component to the sorted list of
    blocks whose kernels read it — computed from the kernel source
    arrays themselves, so a fused inner gate's sources are charged to
    the *outer* gate's block (where the read actually happens).  Reads
    by the dff latch phase are not blocks and are not included (see
    {!dff_sink_clusters}).  This is the dependency metadata behind
    {!Slab}'s cluster-granular activity gating: when a component's word
    changes, exactly these blocks must re-run.  Every consumer block
    lives at a strictly higher rank than the component, so one ascending
    block sweep propagates the whole active cone. *)

val dff_sink_clusters : program -> int array array
(** [dff_sink_clusters p] maps every component to the sorted list of
    dff clusters (see [dffs_per_cluster]) whose latch phase reads it —
    the sequential-phase complement of {!consumer_blocks}: when a
    component's word changes, exactly these clusters must re-latch on
    the next tick. *)

val comp_block : program -> int array
(** [comp_block p] maps every component to the block whose kernel
    stores it, or [-1] for components settled outside the kernels
    (inports, constants, dffs and fused inner gates).  Lets gating
    re-mark a site's own block when a force is installed or cleared. *)
