(* Levelized compiled netlist simulator.

   The netlist is flattened into plain integer arrays (opcode and fanin per
   component) and each clock cycle is: write the inputs, evaluate the
   combinational components in topological order, read the outputs, then
   latch every dff from its input.  This is the fast consumer of the
   netlists Hydra generates — the same circuit the stream semantics
   simulates, now executed at array speed (experiment E12 quantifies the
   difference). *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize

type op = Op_input | Op_const | Op_inv | Op_and | Op_or | Op_xor | Op_out | Op_dff

type t = {
  netlist : Netlist.t;
  levels : Levelize.t;
  ops : op array;
  f0 : int array;  (* first fanin, -1 if none *)
  f1 : int array;  (* second fanin, -1 if none *)
  order : int array;  (* combinational evaluation order *)
  dffs : int array;
  dff_init : bool array;
  values : Bytes.t;
  dff_next : Bytes.t;  (* scratch: next state per dff (indexed like dffs) *)
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
  mutable cycle : int;
}

let v t i = Bytes.unsafe_get t.values i <> '\000'
let setv t i b = Bytes.unsafe_set t.values i (if b then '\001' else '\000')

(* [?optimize] runs the {!Hydra_netlist.Optimize} pre-pass (constant
   folding, dedup, dead elimination) before compilation: fewer components
   to evaluate per cycle, identical port-level behaviour.  [?certify]
   translation-validates that pre-pass run ({!Hydra_analyze.Certify}):
   structural invariants plus packed-random I/O equivalence against the
   unoptimized netlist on an independent reference simulator. *)
let create ?(optimize = false) ?(certify = false) netlist =
  let netlist =
    if optimize then begin
      let post = Hydra_netlist.Optimize.optimize netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure (check ~transform:"Optimize.optimize" ~pre:netlist ~post ()));
      post
    end
    else netlist
  in
  let levels = Levelize.check netlist in
  let n = Netlist.size netlist in
  let ops = Array.make n Op_const in
  let f0 = Array.make n (-1) and f1 = Array.make n (-1) in
  let dffs = ref [] in
  Array.iteri
    (fun i comp ->
      let fi = netlist.Netlist.fanin.(i) in
      if Array.length fi > 0 then f0.(i) <- fi.(0);
      if Array.length fi > 1 then f1.(i) <- fi.(1);
      ops.(i) <-
        (match comp with
        | Netlist.Inport _ -> Op_input
        | Netlist.Constant _ -> Op_const
        | Netlist.Invc -> Op_inv
        | Netlist.And2c -> Op_and
        | Netlist.Or2c -> Op_or
        | Netlist.Xor2c -> Op_xor
        | Netlist.Outport _ -> Op_out
        | Netlist.Dffc _ ->
          dffs := i :: !dffs;
          Op_dff))
    netlist.Netlist.components;
  let dffs = Array.of_list (List.rev !dffs) in
  let dff_init =
    Array.map
      (fun i ->
        match netlist.Netlist.components.(i) with
        | Netlist.Dffc b -> b
        | _ -> assert false)
      dffs
  in
  let input_index = Hashtbl.create 16 and output_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  List.iter (fun (s, i) -> Hashtbl.replace output_index s i) netlist.Netlist.outputs;
  let t =
    {
      netlist;
      levels;
      ops;
      f0;
      f1;
      order = levels.Levelize.order;
      dffs;
      dff_init;
      values = Bytes.make n '\000';
      dff_next = Bytes.make (Array.length dffs) '\000';
      input_index;
      output_index;
      cycle = 0;
    }
  in
  (* constants and dff power-up values *)
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Constant b -> setv t i b
      | _ -> ())
    netlist.Netlist.components;
  Array.iteri (fun j i -> setv t i dff_init.(j)) dffs;
  t

let reset t =
  Bytes.fill t.values 0 (Bytes.length t.values) '\000';
  Array.iteri
    (fun i comp ->
      match comp with Netlist.Constant b -> setv t i b | _ -> ())
    t.netlist.Netlist.components;
  Array.iteri (fun j i -> setv t i t.dff_init.(j)) t.dffs;
  t.cycle <- 0

let set_input t name b =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> setv t i b
  | None -> invalid_arg ("Compiled.set_input: unknown input " ^ name)

let eval_component t i =
  match Array.unsafe_get t.ops i with
  | Op_inv -> setv t i (not (v t t.f0.(i)))
  | Op_and -> setv t i (v t t.f0.(i) && v t t.f1.(i))
  | Op_or -> setv t i (v t t.f0.(i) || v t t.f1.(i))
  | Op_xor -> setv t i (v t t.f0.(i) <> v t t.f1.(i))
  | Op_out -> setv t i (v t t.f0.(i))
  | Op_input | Op_const | Op_dff -> ()

(* Evaluate the combinational logic for the current cycle (after the inputs
   have been set); outputs become readable. *)
let settle t =
  let order = t.order in
  for k = 0 to Array.length order - 1 do
    eval_component t (Array.unsafe_get order k)
  done

(* Latch every dff from its input and advance to the next cycle. *)
let tick t =
  let dffs = t.dffs in
  for j = 0 to Array.length dffs - 1 do
    Bytes.unsafe_set t.dff_next j
      (if v t t.f0.(Array.unsafe_get dffs j) then '\001' else '\000')
  done;
  for j = 0 to Array.length dffs - 1 do
    Bytes.unsafe_set t.values (Array.unsafe_get dffs j) (Bytes.unsafe_get t.dff_next j)
  done;
  t.cycle <- t.cycle + 1

let step t =
  settle t;
  tick t

let output t name =
  match Hashtbl.find_opt t.output_index name with
  | Some i -> v t i
  | None -> invalid_arg ("Compiled.output: unknown output " ^ name)

let outputs t =
  List.map (fun (s, i) -> (s, v t i)) t.netlist.Netlist.outputs

let peek = v

(* [poke] overwrites a component's current value — used by model checkers
   to restore saved dff states. *)
let poke = setv

(* Checkpointing: snapshot and restore the full simulation state (all
   component values and the cycle counter). *)
type snapshot = { snap_values : Bytes.t; snap_cycle : int }

let save t = { snap_values = Bytes.copy t.values; snap_cycle = t.cycle }

let restore t s =
  if Bytes.length s.snap_values <> Bytes.length t.values then
    invalid_arg "Compiled.restore: snapshot from a different circuit";
  Bytes.blit s.snap_values 0 t.values 0 (Bytes.length t.values);
  t.cycle <- s.snap_cycle
let cycle t = t.cycle
let critical_path t = t.levels.Levelize.critical_path
let levels t = t.levels
let dff_indices t = t.dffs

(* Fine-grained latch phases, exposed so that {!Parallel_sim} can
   parallelize them: [latch_one] computes dff [j]'s next state,
   [commit_one] installs it, [bump_cycle] advances the clock. *)
let latch_one t j =
  Bytes.unsafe_set t.dff_next j
    (if v t t.f0.(Array.unsafe_get t.dffs j) then '\001' else '\000')

let commit_one t j =
  Bytes.unsafe_set t.values (Array.unsafe_get t.dffs j)
    (Bytes.unsafe_get t.dff_next j)

let bump_cycle t = t.cycle <- t.cycle + 1

(* Run a whole simulation: per-input value streams (shorter streams are
   padded with false), for [cycles] cycles; returns per-cycle output
   rows. *)
let run t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some b -> b | None -> false in
        set_input t name value)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows
