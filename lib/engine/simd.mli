(** C kernel stubs behind {!Slab}'s [~simd:true] flavor.

    The stubs are always compiled and always correct — what varies by
    build host is whether they carry AVX2/NEON vector paths or portable
    scalar C, so [~simd:true] is safe to request (and test)
    everywhere.  The dune rule probing the toolchain only enables
    [-mavx2] when the host both compiles {e and executes} an AVX2
    program; NEON is baseline on aarch64 and needs no probe.  Set
    [HYDRA_SIMD=off] in the environment at build time to force the
    scalar flavor. *)

val settle_block : int array -> int array -> unit
(** [settle_block values desc]: evaluate one compiled block, reading
    and writing the value slab in place.  [desc] is the descriptor
    {!Slab} builds per block: [k; n_inv; n_and; n_or; n_xor; n_andor;
    n_orand; n_xor3; n_out] followed by per-kind (dst, src...) index
    tuples in that order, indices pre-scaled by [k].  Assumes a
    well-formed descriptor (indices in range) — {!Slab} is the only
    intended caller. *)

val flavor : unit -> string
(** The code path this build compiled: ["avx2"], ["neon"] or
    ["scalar-c"]. *)

val vectorized : unit -> bool
(** Whether a vector path (AVX2 or NEON) was compiled in. *)
