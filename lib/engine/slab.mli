(** Multi-word slab simulator: the {!Compiled_wide} hot loops widened to
    K words per signal, breaking the 62-lane ceiling of one tagged int.

    Every signal owns [k] consecutive 62-lane words in one flat int-array
    slab, so a single settle pass advances [62 * k] independent
    simulation lanes — 496 lanes at the default [k = 8], 992 at
    [k = 16] — while the per-gate index traffic (the dst/src loads that
    bound {!Compiled_wide}) is amortized over the whole K-word run.  The
    compile pipeline ({!Kernel}) is shared with {!Compiled_wide}, so
    layout, fusion and force-slot placement are identical; the slab
    engine only scales the index arrays by [k] at creation.

    Since PR 7 the shared pipeline tiles each levelized rank into
    {e blocks} of roughly [Kernel.tuning.block_words] slab words
    ({!Kernel.gates_per_block}), and the hot loops walk block-major /
    kind-minor, so a rank too large for cache is processed one
    resident tile at a time.  [~tuning] picks the block geometry (and
    the gating adaptation constants); it never changes what is
    computed.

    On top of the wide words sits optional {e activity gating}
    ([~gating:true]), now {e cluster-granular}: every block carries a
    dirty bit (an int-word bitset), every mutation (input/poke writes,
    the dff latch phase, force edits) change-detects against the
    previous value and marks exactly the blocks that read the changed
    component (from {!Kernel.consumer_blocks}), and [settle] skips
    clean blocks entirely.  The dff latch phase is gated the same way
    at {e cluster} granularity ({!Kernel} packs dffs into clusters of
    [dffs_per_cluster]): a clean cluster's registers are not even
    read.  A circuit that has gone quiescent — an idle CPU, a sorter
    whose inputs are held — costs only two bitset scans per cycle.
    Gating adapts per block: one that changes on several consecutive
    runs switches to a {e hot} mode running the plain ungated kernels
    with conservative consumer marking (re-probing with detection
    periodically), so a high-toggle circuit pays only the bitset
    scan — a few percent — rather than a per-gate change-detection
    tax.  The hot/detect state is a performance cache: it cannot
    affect simulated values and deliberately survives {!reset}.
    Unlike the rank-granular PR 5 design, {!set_forces} now composes
    with gating: force edits mark the affected sites' own blocks, dff
    clusters and consumers, and a gated settle applies force slots
    with change detection.

    [~simd:true] swaps the portable OCaml block kernels for the C
    stubs in {!Simd} (AVX2 / NEON when the build host supports them,
    portable scalar C otherwise) — same block geometry, same results,
    available on every build. *)

type t

val lanes_per_word : int
(** 62, see {!Hydra_core.Packed.lanes}. *)

val lane_mask : int

val create :
  ?k:int ->
  ?gating:bool ->
  ?simd:bool ->
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?tuning:Kernel.tuning ->
  Hydra_netlist.Netlist.t ->
  t
(** [?k] (default 8, must be >= 1) words per signal — [62 * k] lanes per
    settle pass.  [?gating] (default false) enables cluster-granular
    activity gating.  [?simd] (default false) runs blocks through the C
    stubs ({!Simd} — vectorized when the build host supports it,
    portable scalar C otherwise).  [?tuning] (default
    {!Kernel.default_tuning}) sizes rank blocks and dff clusters and
    sets the gating adaptation constants; see {!Kernel.tuning_of_spec}
    for the ["block-words=3072,hot-after=4"] string form.  The
    remaining options are {!Compiled_wide.create}'s, compiled through
    the shared {!Kernel} pipeline.  Raises
    {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit. *)

val of_program : ?gating:bool -> ?simd:bool -> Kernel.program -> t
(** Build an engine over an already-compiled {!Kernel.program} (from
    {!Kernel.compile}, {!Kernel.patch} or {!Cache}), skipping every
    compile-time pass; the slab's K is the program's [k].  Only the
    per-instance value state and the gating/simd metadata are built. *)

val program : t -> Kernel.program
(** The shared compiled program this engine runs. *)

val k : t -> int
val words : t -> int
(** = {!k}: words per signal (the {!Engine_intf.S} accessor). *)

val lanes : t -> int
(** [62 * k]: independent lanes per settle pass. *)

val gated : t -> bool

val simd : t -> bool
(** Whether this engine runs its blocks through the {!Simd} C stubs
    (regardless of whether that build vectorized — see
    {!Simd.flavor}). *)

val replicate : t -> t
(** Fresh engine over the same compiled circuit: shares the immutable
    scaled index arrays, owns its value slab / dirty bits (at power-up).
    Safe to run concurrently with the original in another domain. *)

val reset : t -> unit

val set_input : t -> string -> int -> unit
(** Set word 0 of an input ({!Compiled_wide.set_input} drop-in). *)

val set_input_word : t -> string -> int -> int -> unit
(** [set_input_word t name w v]: set word [w] (0-based, [< k]) of an
    input to the packed word [v]. *)

val set_input_bool : t -> string -> bool -> unit
(** Broadcast one value to every lane of every word. *)

val set_input_lane : t -> string -> int -> bool -> unit
(** Set one global lane ([0 <= lane < 62 * k]): word [lane / 62], bit
    [lane mod 62]. *)

val settle : t -> unit
val tick : t -> unit
val step : t -> unit

val output : t -> string -> int
(** Word 0 of an output. *)

val output_word : t -> string -> int -> int
val output_lane : t -> string -> int -> bool
(** Global lane of an output, [0 <= lane < 62 * k]. *)

val outputs : t -> (string * int) list
(** Word-0 view of every output ({!Compiled_wide.outputs} drop-in). *)

val peek : t -> int -> int
(** Word 0 of a component (post-optimize, post-relayout index); same
    staleness caveat for fused inner gates as {!Compiled_wide.peek}. *)

val peek_word : t -> int -> int -> int
val poke : t -> int -> int -> unit
val poke_word : t -> int -> int -> int -> unit
(** [poke_word t i w v].  On a gated engine pokes are change-detected and
    mark the reader blocks (and dff sink clusters) dirty, so they
    compose with gating. *)

type force = {
  f_site : int;  (** component index in {!netlist} *)
  force0 : int array;  (** per word: lanes driven to 0 *)
  force1 : int array;  (** per word: lanes driven to 1 (wins) *)
  flip : int array;  (** per word: lanes inverted, after the stuck masks *)
}
(** The K-word generalization of {!Compiled_wide.force}: each mask is one
    word per slab word (length [k]).  The arrays are mutable in place so
    a campaign can re-seed per-cycle faults without re-registering. *)

val set_forces : t -> force array -> unit
(** As {!Compiled_wide.set_forces}.  Composes with gating: installing,
    replacing or clearing forces marks every affected site's own block,
    its dff cluster (for forced register outputs) and its consumer
    blocks dirty — for the {e old} force set as well as the new one, so
    a dropped force heals — and a gated settle applies force slots with
    change detection every pass.  Raises [Invalid_argument] on a fused
    engine (build with [~fuse:false]), on a mask array whose length is
    not [k], and — descriptively — on an out-of-range site. *)

val clear_forces : t -> unit

val cycle : t -> int
val critical_path : t -> int
val fused_gates : t -> int

val netlist : t -> Hydra_netlist.Netlist.t
(** The netlist actually compiled (post-optimize, post-relayout). *)

val run_packed :
  t -> inputs:(string * int list) list -> cycles:int -> (string * int) list list
(** {!Compiled_wide.run_packed} drop-in: each packed input word is
    broadcast to all [k] words (so every word simulates the same 62
    streams) and rows report word 0 — bit-identical to the wide engine on
    the same stimulus, whatever [k] and gating. *)

val run_vectors : t -> bool array array -> bool array array
(** Batched combinational testbench, [62 * k] vectors per settle pass:
    vector [j] of a pass rides word [j / 62], bit [j mod 62]. *)

val engine :
  ?gating:bool -> ?simd:bool -> ?tuning:Kernel.tuning -> int ->
  (module Engine_intf.S)
(** [engine ?gating ?simd ?tuning k]: this engine as a first-class
    {!Engine_intf.S} with the whole flavor baked into [create] — the
    handle {!Testbench}/{!Equiv} entry points take.  The handle's
    [name] spells the flavor out: ["slab(k=8,gated,simd)"], with a
    non-default tuning appended as its {!Kernel.tuning_to_spec}
    string. *)
