(* Shared compile-time plumbing of the word-parallel engines: pre-pass,
   levelize, fusion planning and per-op index-array splitting.  See the
   interface for the contract; {!Compiled_wide} and {!Slab} both compile
   through here, so the two engines always agree on layout, fusion and
   force-slot placement. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Layout = Hydra_netlist.Layout

type kernel = {
  inv_dst : int array;
  inv_src : int array;
  and_dst : int array;
  and_s0 : int array;
  and_s1 : int array;
  or_dst : int array;
  or_s0 : int array;
  or_s1 : int array;
  xor_dst : int array;
  xor_s0 : int array;
  xor_s1 : int array;
  andor_dst : int array;
  andor_a : int array;
  andor_b : int array;
  andor_c : int array;
  andor_d : int array;
  orand_dst : int array;
  orand_a : int array;
  orand_b : int array;
  orand_c : int array;
  xor3_dst : int array;
  xor3_a : int array;
  xor3_b : int array;
  xor3_c : int array;
  out_dst : int array;
  out_src : int array;
}

type tuning = {
  block_words : int;
  block_gates : int;
  hot_after : int;
  probe_period : int;
}

let default_tuning =
  { block_words = 3072; block_gates = 0; hot_after = 4; probe_period = 128 }

let check_tuning t =
  if t.block_words < 1 then invalid_arg "Kernel: tuning.block_words must be >= 1";
  if t.block_gates < 0 then invalid_arg "Kernel: tuning.block_gates must be >= 0";
  if t.hot_after < 1 then invalid_arg "Kernel: tuning.hot_after must be >= 1";
  if t.probe_period < 1 then invalid_arg "Kernel: tuning.probe_period must be >= 1"

let tuning_of_spec ?(base = default_tuning) spec =
  let parse_kv acc kv =
    match String.index_opt kv '=' with
    | None ->
      invalid_arg
        (Printf.sprintf "Kernel.tuning_of_spec: expected key=int, got %S" kv)
    | Some eq ->
      let key =
        String.map (function '_' -> '-' | c -> c) (String.sub kv 0 eq)
      in
      let v =
        let s = String.sub kv (eq + 1) (String.length kv - eq - 1) in
        match int_of_string_opt s with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf
               "Kernel.tuning_of_spec: value of %s must be an integer, got %S"
               key s)
      in
      (match key with
      | "block-words" -> { acc with block_words = v }
      | "block-gates" -> { acc with block_gates = v }
      | "hot-after" -> { acc with hot_after = v }
      | "probe-period" -> { acc with probe_period = v }
      | _ ->
        invalid_arg
          (Printf.sprintf
             "Kernel.tuning_of_spec: unknown key %S (expected block-words, \
              block-gates, hot-after or probe-period)"
             key))
  in
  let t =
    String.split_on_char ',' spec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.fold_left (fun acc kv -> parse_kv acc (String.trim kv)) base
  in
  check_tuning t;
  t

let tuning_to_spec t =
  Printf.sprintf "block-words=%d,block-gates=%d,hot-after=%d,probe-period=%d"
    t.block_words t.block_gates t.hot_after t.probe_period

(* Gates per block: explicit override, or derived so one block's value
   traffic (~3 words touched per gate — dst plus two sources — times the
   engine's K words per signal) fits the [block_words] cache target. *)
let gates_per_block ~k t =
  if t.block_gates > 0 then t.block_gates
  else max 32 (t.block_words / (3 * k))

let dffs_per_cluster_of ~k t = max 8 (t.block_words / (2 * k))

(* How the outer gate at [dst] absorbs a fanout-1 inner gate. *)
type fusion =
  | Andor of int * int * int * int
  | Orand of int * int * int
  | Xor3 of int * int * int

type program = {
  netlist : Netlist.t;
  levels : Levelize.t;
  blocks : kernel array;
  block_rank : int array;
  rank_first_block : int array;
  consts : (int * bool) array;
  dffs : int array;
  dff_src : int array;
  dff_init : bool array;
  fused : int;
  fusion : fusion option array;
  consumed : bool array;
  consumed_by : int array;
  tuning : tuning;
  k : int;
  dffs_per_cluster : int;
  n_dff_clusters : int;
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
}

let n_ranks p = Array.length p.rank_first_block - 1

let build_kernel (nl : Netlist.t) (fusion : fusion option array)
    (consumed : bool array) rank =
  let invs = ref [] and ands = ref [] and ors = ref [] and xors = ref []
  and andors = ref [] and orands = ref [] and xor3s = ref []
  and outs = ref [] in
  Array.iter
    (fun i ->
      if not consumed.(i) then
        let fi = nl.Netlist.fanin.(i) in
        match fusion.(i) with
        | Some (Andor (a, b, c, d)) -> andors := (i, a, b, c, d) :: !andors
        | Some (Orand (a, b, c)) -> orands := (i, a, b, c) :: !orands
        | Some (Xor3 (a, b, c)) -> xor3s := (i, a, b, c) :: !xor3s
        | None -> (
            match nl.Netlist.components.(i) with
            | Netlist.Invc -> invs := (i, fi.(0)) :: !invs
            | Netlist.And2c -> ands := (i, fi.(0), fi.(1)) :: !ands
            | Netlist.Or2c -> ors := (i, fi.(0), fi.(1)) :: !ors
            | Netlist.Xor2c -> xors := (i, fi.(0), fi.(1)) :: !xors
            | Netlist.Outport _ -> outs := (i, fi.(0)) :: !outs
            | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> ()))
    rank;
  let arr1 l = Array.of_list (List.rev_map fst l)
  and arr2 l = Array.of_list (List.rev_map snd l) in
  let a3 sel l = Array.of_list (List.rev_map sel l) in
  {
    inv_dst = arr1 !invs;
    inv_src = arr2 !invs;
    and_dst = a3 (fun (i, _, _) -> i) !ands;
    and_s0 = a3 (fun (_, a, _) -> a) !ands;
    and_s1 = a3 (fun (_, _, b) -> b) !ands;
    or_dst = a3 (fun (i, _, _) -> i) !ors;
    or_s0 = a3 (fun (_, a, _) -> a) !ors;
    or_s1 = a3 (fun (_, _, b) -> b) !ors;
    xor_dst = a3 (fun (i, _, _) -> i) !xors;
    xor_s0 = a3 (fun (_, a, _) -> a) !xors;
    xor_s1 = a3 (fun (_, _, b) -> b) !xors;
    andor_dst = a3 (fun (i, _, _, _, _) -> i) !andors;
    andor_a = a3 (fun (_, a, _, _, _) -> a) !andors;
    andor_b = a3 (fun (_, _, b, _, _) -> b) !andors;
    andor_c = a3 (fun (_, _, _, c, _) -> c) !andors;
    andor_d = a3 (fun (_, _, _, _, d) -> d) !andors;
    orand_dst = a3 (fun (i, _, _, _) -> i) !orands;
    orand_a = a3 (fun (_, a, _, _) -> a) !orands;
    orand_b = a3 (fun (_, _, b, _) -> b) !orands;
    orand_c = a3 (fun (_, _, _, c) -> c) !orands;
    xor3_dst = a3 (fun (i, _, _, _) -> i) !xor3s;
    xor3_a = a3 (fun (_, a, _, _) -> a) !xor3s;
    xor3_b = a3 (fun (_, _, b, _) -> b) !xor3s;
    xor3_c = a3 (fun (_, _, _, c) -> c) !xor3s;
    out_dst = arr1 !outs;
    out_src = arr2 !outs;
  }

(* Decide which fanout-1 inner gates each or/xor absorbs.  Processed rank
   by rank, ascending, so an inner candidate's own fusion status is final
   when its sink is examined: a gate that already absorbed something
   ([fusion.(x) <> None]) is not consumable — consuming it would discard
   its kernel and leave its (possibly consumed) sources dangling.  The
   sources of a consumed gate are therefore always materialized. *)
let plan_fusion (nl : Netlist.t) (levels : Levelize.t) =
  let n = Netlist.size nl in
  let fanout_count = Array.make n 0 in
  Array.iter
    (fun fi ->
      Array.iter (fun d -> fanout_count.(d) <- fanout_count.(d) + 1) fi)
    nl.Netlist.fanin;
  let fusion : fusion option array = Array.make n None in
  let consumed = Array.make n false in
  let consumed_by = Array.make n (-1) in
  let inner kind x =
    fanout_count.(x) = 1
    && (not consumed.(x))
    && fusion.(x) = None
    &&
    match (kind, nl.Netlist.components.(x)) with
    | `And, Netlist.And2c -> true
    | `Xor, Netlist.Xor2c -> true
    | _ -> false
  in
  Array.iter
    (fun rank ->
      Array.iter
        (fun i ->
          let fi = nl.Netlist.fanin.(i) in
          match nl.Netlist.components.(i) with
          | Netlist.Or2c ->
            let x = fi.(0) and y = fi.(1) in
            if inner `And x && inner `And y then begin
              let fx = nl.Netlist.fanin.(x) and fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Andor (fx.(0), fx.(1), fy.(0), fy.(1)));
              consumed.(x) <- true;
              consumed_by.(x) <- i;
              consumed.(y) <- true;
              consumed_by.(y) <- i
            end
            else if inner `And x then begin
              let fx = nl.Netlist.fanin.(x) in
              fusion.(i) <- Some (Orand (fx.(0), fx.(1), y));
              consumed.(x) <- true;
              consumed_by.(x) <- i
            end
            else if inner `And y then begin
              let fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Orand (fy.(0), fy.(1), x));
              consumed.(y) <- true;
              consumed_by.(y) <- i
            end
          | Netlist.Xor2c ->
            let x = fi.(0) and y = fi.(1) in
            if inner `Xor x then begin
              let fx = nl.Netlist.fanin.(x) in
              fusion.(i) <- Some (Xor3 (fx.(0), fx.(1), y));
              consumed.(x) <- true;
              consumed_by.(x) <- i
            end
            else if inner `Xor y then begin
              let fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Xor3 (fy.(0), fy.(1), x));
              consumed.(y) <- true;
              consumed_by.(y) <- i
            end
          | _ -> ())
        rank)
    levels.Levelize.by_level;
  (fusion, consumed, consumed_by)

(* Members of a rank that emit a kernel entry: gates and outports not
   absorbed by fusion.  Inports, constants and dffs settle outside the
   kernels; consumed inner gates are evaluated inside their outer fused
   kernel and never stored. *)
let emitting (nl : Netlist.t) (consumed : bool array) rank =
  Array.of_list
    (List.filter
       (fun i ->
         (not consumed.(i))
         &&
         match nl.Netlist.components.(i) with
         | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> false
         | _ -> true)
       (Array.to_list rank))

let chunk gpb arr =
  let n = Array.length arr in
  if n = 0 then []
  else if gpb >= n then [ arr ] (* also dodges n + gpb overflow *)
  else begin
    let nchunks = (n + gpb - 1) / gpb in
    List.init nchunks (fun c ->
        Array.sub arr (c * gpb) (min gpb (n - (c * gpb))))
  end

let compile ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) ?(tuning = default_tuning) ?(k = 1) netlist =
  (* [?certify] translation-validates each pre-pass run
     ({!Hydra_analyze.Certify}): packed-random I/O equivalence for the
     optimizer's rewrites, a complete permutation proof for the
     re-layout. *)
  let netlist =
    if optimize then begin
      let post = Hydra_netlist.Optimize.optimize netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure (check ~transform:"Optimize.optimize" ~pre:netlist ~post ()));
      post
    end
    else netlist
  in
  let netlist =
    if relayout then begin
      let post, perm = Layout.rank_major_permutation netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure
            (check_permutation ~transform:"Layout.rank_major" ~pre:netlist
               ~post ~perm));
      post
    end
    else netlist
  in
  check_tuning tuning;
  if k < 1 then invalid_arg "Kernel.compile: ~k must be >= 1";
  let levels = Levelize.check netlist in
  let n = Netlist.size netlist in
  let fusion, consumed, consumed_by =
    if fuse then plan_fusion netlist levels
    else (Array.make n None, Array.make n false, Array.make n (-1))
  in
  let gpb = gates_per_block ~k tuning in
  let nranks = Array.length levels.Levelize.by_level in
  let rank_first_block = Array.make (nranks + 1) 0 in
  let blocks_rev = ref [] and block_rank_rev = ref [] and nblocks = ref 0 in
  Array.iteri
    (fun rank members ->
      rank_first_block.(rank) <- !nblocks;
      List.iter
        (fun sub ->
          blocks_rev := build_kernel netlist fusion consumed sub :: !blocks_rev;
          block_rank_rev := rank :: !block_rank_rev;
          incr nblocks)
        (chunk gpb (emitting netlist consumed members)))
    levels.Levelize.by_level;
  rank_first_block.(nranks) <- !nblocks;
  let blocks = Array.of_list (List.rev !blocks_rev) in
  let block_rank = Array.of_list (List.rev !block_rank_rev) in
  let consts = ref [] and dffs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Constant b -> consts := (i, b) :: !consts
      | Netlist.Dffc _ -> dffs := i :: !dffs
      | _ -> ())
    netlist.Netlist.components;
  let dffs = Array.of_list (List.rev !dffs) in
  let dff_src = Array.map (fun i -> netlist.Netlist.fanin.(i).(0)) dffs in
  let dff_init =
    Array.map
      (fun i ->
        match netlist.Netlist.components.(i) with
        | Netlist.Dffc b -> b
        | _ -> assert false)
      dffs
  in
  let input_index = Hashtbl.create 16 and output_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  List.iter (fun (s, i) -> Hashtbl.replace output_index s i) netlist.Netlist.outputs;
  let fused = Array.fold_left (fun a c -> if c then a + 1 else a) 0 consumed in
  let dffs_per_cluster = dffs_per_cluster_of ~k tuning in
  let n_dff_clusters =
    (Array.length dffs + dffs_per_cluster - 1) / dffs_per_cluster
  in
  {
    netlist;
    levels;
    blocks;
    block_rank;
    rank_first_block;
    consts = Array.of_list (List.rev !consts);
    dffs;
    dff_src;
    dff_init;
    fused;
    fusion;
    consumed;
    consumed_by;
    tuning;
    k;
    dffs_per_cluster;
    n_dff_clusters;
    input_index;
    output_index;
  }

let size p = Netlist.size p.netlist

let n_force_slots p = n_ranks p + 1

let force_slot ~what p site =
  let n = size p in
  if site < 0 || site >= n then
    invalid_arg
      (Printf.sprintf "%s: force site %d out of range (netlist has %d components)"
         what site n);
  match p.netlist.Netlist.components.(site) with
  | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> 0
  | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
  | Netlist.Outport _ ->
    p.levels.Levelize.levels.(site) + 1

(* Blocks that actually read each component, charged from the kernel
   source arrays so that fused reads land on the outer gate's block. *)
let consumer_blocks p =
  let n = size p in
  let acc : int list array = Array.make n [] in
  let mark blk src =
    Array.iter
      (fun s -> match acc.(s) with
        | b :: _ when b = blk -> ()  (* dedup the common repeat *)
        | bs -> acc.(s) <- blk :: bs)
      src
  in
  Array.iteri
    (fun blk k ->
      mark blk k.inv_src;
      mark blk k.and_s0;
      mark blk k.and_s1;
      mark blk k.or_s0;
      mark blk k.or_s1;
      mark blk k.xor_s0;
      mark blk k.xor_s1;
      mark blk k.andor_a;
      mark blk k.andor_b;
      mark blk k.andor_c;
      mark blk k.andor_d;
      mark blk k.orand_a;
      mark blk k.orand_b;
      mark blk k.orand_c;
      mark blk k.xor3_a;
      mark blk k.xor3_b;
      mark blk k.xor3_c;
      mark blk k.out_src)
    p.blocks;
  Array.map (fun bs -> Array.of_list (List.sort_uniq compare bs)) acc

(* Dff clusters whose latch phase reads each component: dff [j] reads
   [dff_src.(j)] every tick, and lives in cluster [j / dffs_per_cluster].
   The complement of {!consumer_blocks} for the sequential phase. *)
let dff_sink_clusters p =
  let n = size p in
  let acc : int list array = Array.make n [] in
  Array.iteri
    (fun j src ->
      let cl = j / p.dffs_per_cluster in
      match acc.(src) with
      | c :: _ when c = cl -> ()
      | cs -> acc.(src) <- cl :: cs)
    p.dff_src;
  Array.map (fun cs -> Array.of_list (List.sort_uniq compare cs)) acc

(* Incremental recompilation ------------------------------------------- *)

(* Re-levelize after a small edit: recompute levels only along paths
   reachable from the edited sites, by chaotic iteration to the unique
   fixpoint (the level equations on an acyclic graph have exactly one
   solution).  If levels refuse to settle — the edit plausibly closed a
   combinational cycle — defer to the full algorithm, which either
   raises the proper [Combinational_cycle] witness or supplies exact
   levels.  Returns the rebuilt {!Levelize.t} plus a per-component
   changed flag; [by_level] ranks list members in index order, a valid
   (and behaviorally equivalent) alternative to the full algorithm's
   queue order. *)
let relevel (nl : Netlist.t) (old : Levelize.t) ~seeds =
  let n = Netlist.size nl in
  let levels = Array.copy old.Levelize.levels in
  let fanout = Netlist.fanout nl in
  let is_source i =
    match nl.Netlist.components.(i) with
    | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> true
    | _ -> false
  in
  let level_of i =
    1 + Array.fold_left (fun a d -> max a levels.(d)) (-1) nl.Netlist.fanin.(i)
  in
  let changed = Array.make n false in
  let q = Queue.create () in
  let inq = Array.make n false in
  let updates = ref 0 in
  let budget = (4 * n) + 16 in
  let push i =
    if not (inq.(i) || is_source i) then begin
      inq.(i) <- true;
      Queue.add i q
    end
  in
  List.iter push seeds;
  (try
     while not (Queue.is_empty q) do
       let i = Queue.pop q in
       inq.(i) <- false;
       let l = level_of i in
       if l <> levels.(i) then begin
         incr updates;
         if !updates > budget then raise Exit;
         levels.(i) <- l;
         changed.(i) <- true;
         List.iter
           (fun (sink, _port) ->
             match nl.Netlist.components.(sink) with
             | Netlist.Dffc _ -> ()
             | _ -> push sink)
           fanout.(i)
       end
     done
   with Exit ->
     let full = Levelize.check nl in
     Array.iteri
       (fun i l ->
         if levels.(i) <> l then changed.(i) <- true;
         levels.(i) <- l)
       full.Levelize.levels);
  let max_level = Array.fold_left max 0 levels in
  let buckets = Array.make (max_level + 1) [] in
  for i = n - 1 downto 0 do
    if not (is_source i) then buckets.(levels.(i)) <- i :: buckets.(levels.(i))
  done;
  let by_level = Array.map Array.of_list buckets in
  let order = Array.concat (Array.to_list by_level) in
  let critical = ref 0 in
  for i = 0 to n - 1 do
    match nl.Netlist.components.(i) with
    | Netlist.Outport _ | Netlist.Dffc _ ->
      Array.iter
        (fun drv -> if levels.(drv) > !critical then critical := levels.(drv))
        nl.Netlist.fanin.(i)
    | _ -> ()
  done;
  ( { Levelize.levels; order; by_level; critical_path = !critical; cyclic = [] },
    changed )

(* Every destination component a compiled kernel writes — the block's
   emitting members, in no particular order. *)
let kernel_dsts k f =
  Array.iter f k.inv_dst;
  Array.iter f k.and_dst;
  Array.iter f k.or_dst;
  Array.iter f k.xor_dst;
  Array.iter f k.andor_dst;
  Array.iter f k.orand_dst;
  Array.iter f k.xor3_dst;
  Array.iter f k.out_dst

type patch_stats = {
  p_edited : int;
  p_defused : int;
  p_ranks_rebuilt : int;
  p_ranks_total : int;
  p_comps_recompiled : int;
  p_comps_total : int;
}

let patch (p : program) (nl' : Netlist.t) ~edited =
  let nl = p.netlist in
  let n = Netlist.size nl in
  if Netlist.size nl' <> n then
    invalid_arg
      (Printf.sprintf
         "Kernel.patch: edited netlist has %d components, program has %d"
         (Netlist.size nl') n);
  (match Netlist.validate nl' with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Kernel.patch: " ^ msg));
  let edited = List.sort_uniq compare edited in
  let in_edit = Array.make n false in
  List.iter
    (fun e ->
      if e < 0 || e >= n then
        invalid_arg
          (Printf.sprintf "Kernel.patch: edited site %d out of range" e);
      (match (nl.Netlist.components.(e), nl'.Netlist.components.(e)) with
      | ( (Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c),
          (Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c) ) -> ()
      | _ ->
        invalid_arg
          (Printf.sprintf
             "Kernel.patch: site %d is not a combinational gate on both \
              sides (%s -> %s); only gate edits can be patched"
             e
             (Netlist.component_name nl.Netlist.components.(e))
             (Netlist.component_name nl'.Netlist.components.(e))));
      in_edit.(e) <- true)
    edited;
  Array.iteri
    (fun i c ->
      if
        (not in_edit.(i))
        && (c <> nl'.Netlist.components.(i)
           || nl.Netlist.fanin.(i) <> nl'.Netlist.fanin.(i))
      then
        invalid_arg
          (Printf.sprintf
             "Kernel.patch: component %d differs but is not listed in ~edited"
             i))
    nl.Netlist.components;
  let levels', level_changed = relevel nl' p.levels ~seeds:edited in
  (* Fusion repair: an edited site invalidates any fusion it participates
     in.  If the edit turned the site into (or away from) something a
     fused outer absorbed, or gave a consumed inner a second reader, the
     outer's kernel would compute a stale function — so un-fuse: the
     outer falls back to its plain kernel and every inner it absorbed is
     materialized again.  Patching never *adds* fusion; a full recompile
     re-fuses. *)
  let fusion' = Array.copy p.fusion in
  let consumed' = Array.copy p.consumed in
  let consumed_by' = Array.copy p.consumed_by in
  let dirty = Array.make n false in
  let defused = ref 0 in
  let outer_inners =
    lazy
      (let acc = Array.make n [] in
       Array.iteri (fun i o -> if o >= 0 then acc.(o) <- i :: acc.(o))
         p.consumed_by;
       acc)
  in
  let defuse o =
    match fusion'.(o) with
    | None -> ()
    | Some _ ->
      fusion'.(o) <- None;
      incr defused;
      dirty.(o) <- true;
      List.iter
        (fun i ->
          if consumed_by'.(i) = o then begin
            consumed'.(i) <- false;
            consumed_by'.(i) <- -1;
            dirty.(i) <- true
          end)
        (Lazy.force outer_inners).(o)
  in
  List.iter
    (fun e ->
      dirty.(e) <- true;
      let o = consumed_by'.(e) in
      if o >= 0 then defuse o;
      defuse e;
      Array.iter
        (fun s ->
          let o = consumed_by'.(s) in
          if o >= 0 then defuse o)
        nl'.Netlist.fanin.(e))
    edited;
  Array.iteri (fun i c -> if c then dirty.(i) <- true) level_changed;
  (* Ranks needing a rebuild: every dirty component taints both its old
     and its new rank (membership or kernel content changed there); all
     other ranks reuse their compiled blocks by reference. *)
  let nranks_old = Array.length p.levels.Levelize.by_level in
  let nranks' = Array.length levels'.Levelize.by_level in
  let dirty_rank = Array.make (max nranks_old nranks') false in
  Array.iteri
    (fun i d ->
      if d then begin
        let old_l = p.levels.Levelize.levels.(i)
        and new_l = levels'.Levelize.levels.(i) in
        if old_l >= 0 then dirty_rank.(old_l) <- true;
        if new_l >= 0 then dirty_rank.(new_l) <- true
      end)
    dirty;
  let gpb = gates_per_block ~k:p.k p.tuning in
  let rank_first_block = Array.make (nranks' + 1) 0 in
  let blocks_rev = ref [] and block_rank_rev = ref [] and nblocks = ref 0 in
  let recompiled = ref 0 and ranks_rebuilt = ref 0 in
  (* Rank-stamped scratch (allocated once): [present_at.(i) = rank] iff
     [i] emits in [rank]'s new membership, [covered_at.(i) = rank] iff a
     reused block already owns it there. *)
  let present_at = Array.make n (-1) and covered_at = Array.make n (-1) in
  for rank = 0 to nranks' - 1 do
    rank_first_block.(rank) <- !nblocks;
    if rank < nranks_old && not dirty_rank.(rank) then
      for b = p.rank_first_block.(rank) to p.rank_first_block.(rank + 1) - 1 do
        blocks_rev := p.blocks.(b) :: !blocks_rev;
        block_rank_rev := rank :: !block_rank_rev;
        incr nblocks
      done
    else begin
      let members =
        emitting nl' consumed' levels'.Levelize.by_level.(rank)
      in
      (* Within a rank, blocks are an unordered partition of mutually
         independent components (fusion inners live in strictly lower
         ranks), so any old block whose members are all clean and still
         emitting here computes exactly what a rebuild would — reuse it
         by reference even though the edit shifted the rank's membership
         (defusing materializes inners).  A clean member's entry cannot
         have changed: its kind, fanin and fusion are untouched, and a
         source whose materialization flipped implies a dirty reader.
         Only the leftovers — new arrivals plus members of non-reusable
         blocks — are re-chunked and recompiled. *)
      Array.iter (fun i -> present_at.(i) <- rank) members;
      if rank < nranks_old then
        for b = p.rank_first_block.(rank) to p.rank_first_block.(rank + 1) - 1
        do
          let k = p.blocks.(b) in
          let ok = ref true in
          kernel_dsts k (fun i ->
              if dirty.(i) || present_at.(i) <> rank then ok := false);
          if !ok then begin
            kernel_dsts k (fun i -> covered_at.(i) <- rank);
            blocks_rev := k :: !blocks_rev;
            block_rank_rev := rank :: !block_rank_rev;
            incr nblocks
          end
        done;
      let rest =
        Array.of_seq
          (Seq.filter
             (fun i -> covered_at.(i) <> rank)
             (Array.to_seq members))
      in
      if Array.length rest > 0 then begin
        incr ranks_rebuilt;
        List.iter
          (fun sub ->
            recompiled := !recompiled + Array.length sub;
            blocks_rev := build_kernel nl' fusion' consumed' sub :: !blocks_rev;
            block_rank_rev := rank :: !block_rank_rev;
            incr nblocks)
          (chunk gpb rest)
      end
    end
  done;
  rank_first_block.(nranks') <- !nblocks;
  let fused' =
    Array.fold_left (fun a c -> if c then a + 1 else a) 0 consumed'
  in
  ( {
      p with
      netlist = nl';
      levels = levels';
      blocks = Array.of_list (List.rev !blocks_rev);
      block_rank = Array.of_list (List.rev !block_rank_rev);
      rank_first_block;
      fused = fused';
      fusion = fusion';
      consumed = consumed';
      consumed_by = consumed_by';
    },
    {
      p_edited = List.length edited;
      p_defused = !defused;
      p_ranks_rebuilt = !ranks_rebuilt;
      p_ranks_total = nranks';
      p_comps_recompiled = !recompiled;
      p_comps_total = n;
    } )

(* The block whose kernel stores each component, or -1 for components
   settled outside the kernels (inports, constants, dffs, fused inner
   gates). *)
let comp_block p =
  let owner = Array.make (size p) (-1) in
  let claim blk dst = Array.iter (fun d -> owner.(d) <- blk) dst in
  Array.iteri
    (fun blk k ->
      claim blk k.inv_dst;
      claim blk k.and_dst;
      claim blk k.or_dst;
      claim blk k.xor_dst;
      claim blk k.andor_dst;
      claim blk k.orand_dst;
      claim blk k.xor3_dst;
      claim blk k.out_dst)
    p.blocks;
  owner
