(* Shared compile-time plumbing of the word-parallel engines: pre-pass,
   levelize, fusion planning and per-op index-array splitting.  See the
   interface for the contract; {!Compiled_wide} and {!Slab} both compile
   through here, so the two engines always agree on layout, fusion and
   force-slot placement. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Layout = Hydra_netlist.Layout

type kernel = {
  inv_dst : int array;
  inv_src : int array;
  and_dst : int array;
  and_s0 : int array;
  and_s1 : int array;
  or_dst : int array;
  or_s0 : int array;
  or_s1 : int array;
  xor_dst : int array;
  xor_s0 : int array;
  xor_s1 : int array;
  andor_dst : int array;
  andor_a : int array;
  andor_b : int array;
  andor_c : int array;
  andor_d : int array;
  orand_dst : int array;
  orand_a : int array;
  orand_b : int array;
  orand_c : int array;
  xor3_dst : int array;
  xor3_a : int array;
  xor3_b : int array;
  xor3_c : int array;
  out_dst : int array;
  out_src : int array;
}

type tuning = {
  block_words : int;
  block_gates : int;
  hot_after : int;
  probe_period : int;
}

let default_tuning =
  { block_words = 3072; block_gates = 0; hot_after = 4; probe_period = 128 }

let check_tuning t =
  if t.block_words < 1 then invalid_arg "Kernel: tuning.block_words must be >= 1";
  if t.block_gates < 0 then invalid_arg "Kernel: tuning.block_gates must be >= 0";
  if t.hot_after < 1 then invalid_arg "Kernel: tuning.hot_after must be >= 1";
  if t.probe_period < 1 then invalid_arg "Kernel: tuning.probe_period must be >= 1"

let tuning_of_spec ?(base = default_tuning) spec =
  let parse_kv acc kv =
    match String.index_opt kv '=' with
    | None ->
      invalid_arg
        (Printf.sprintf "Kernel.tuning_of_spec: expected key=int, got %S" kv)
    | Some eq ->
      let key =
        String.map (function '_' -> '-' | c -> c) (String.sub kv 0 eq)
      in
      let v =
        let s = String.sub kv (eq + 1) (String.length kv - eq - 1) in
        match int_of_string_opt s with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf
               "Kernel.tuning_of_spec: value of %s must be an integer, got %S"
               key s)
      in
      (match key with
      | "block-words" -> { acc with block_words = v }
      | "block-gates" -> { acc with block_gates = v }
      | "hot-after" -> { acc with hot_after = v }
      | "probe-period" -> { acc with probe_period = v }
      | _ ->
        invalid_arg
          (Printf.sprintf
             "Kernel.tuning_of_spec: unknown key %S (expected block-words, \
              block-gates, hot-after or probe-period)"
             key))
  in
  let t =
    String.split_on_char ',' spec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.fold_left (fun acc kv -> parse_kv acc (String.trim kv)) base
  in
  check_tuning t;
  t

let tuning_to_spec t =
  Printf.sprintf "block-words=%d,block-gates=%d,hot-after=%d,probe-period=%d"
    t.block_words t.block_gates t.hot_after t.probe_period

(* Gates per block: explicit override, or derived so one block's value
   traffic (~3 words touched per gate — dst plus two sources — times the
   engine's K words per signal) fits the [block_words] cache target. *)
let gates_per_block ~k t =
  if t.block_gates > 0 then t.block_gates
  else max 32 (t.block_words / (3 * k))

let dffs_per_cluster_of ~k t = max 8 (t.block_words / (2 * k))

type program = {
  netlist : Netlist.t;
  levels : Levelize.t;
  blocks : kernel array;
  block_rank : int array;
  rank_first_block : int array;
  consts : (int * bool) array;
  dffs : int array;
  dff_src : int array;
  dff_init : bool array;
  fused : int;
  tuning : tuning;
  k : int;
  dffs_per_cluster : int;
  n_dff_clusters : int;
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
}

let n_ranks p = Array.length p.rank_first_block - 1

(* How the outer gate at [dst] absorbs a fanout-1 inner gate. *)
type fusion =
  | Andor of int * int * int * int
  | Orand of int * int * int
  | Xor3 of int * int * int

let build_kernel (nl : Netlist.t) (fusion : fusion option array)
    (consumed : bool array) rank =
  let invs = ref [] and ands = ref [] and ors = ref [] and xors = ref []
  and andors = ref [] and orands = ref [] and xor3s = ref []
  and outs = ref [] in
  Array.iter
    (fun i ->
      if not consumed.(i) then
        let fi = nl.Netlist.fanin.(i) in
        match fusion.(i) with
        | Some (Andor (a, b, c, d)) -> andors := (i, a, b, c, d) :: !andors
        | Some (Orand (a, b, c)) -> orands := (i, a, b, c) :: !orands
        | Some (Xor3 (a, b, c)) -> xor3s := (i, a, b, c) :: !xor3s
        | None -> (
            match nl.Netlist.components.(i) with
            | Netlist.Invc -> invs := (i, fi.(0)) :: !invs
            | Netlist.And2c -> ands := (i, fi.(0), fi.(1)) :: !ands
            | Netlist.Or2c -> ors := (i, fi.(0), fi.(1)) :: !ors
            | Netlist.Xor2c -> xors := (i, fi.(0), fi.(1)) :: !xors
            | Netlist.Outport _ -> outs := (i, fi.(0)) :: !outs
            | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> ()))
    rank;
  let arr1 l = Array.of_list (List.rev_map fst l)
  and arr2 l = Array.of_list (List.rev_map snd l) in
  let a3 sel l = Array.of_list (List.rev_map sel l) in
  {
    inv_dst = arr1 !invs;
    inv_src = arr2 !invs;
    and_dst = a3 (fun (i, _, _) -> i) !ands;
    and_s0 = a3 (fun (_, a, _) -> a) !ands;
    and_s1 = a3 (fun (_, _, b) -> b) !ands;
    or_dst = a3 (fun (i, _, _) -> i) !ors;
    or_s0 = a3 (fun (_, a, _) -> a) !ors;
    or_s1 = a3 (fun (_, _, b) -> b) !ors;
    xor_dst = a3 (fun (i, _, _) -> i) !xors;
    xor_s0 = a3 (fun (_, a, _) -> a) !xors;
    xor_s1 = a3 (fun (_, _, b) -> b) !xors;
    andor_dst = a3 (fun (i, _, _, _, _) -> i) !andors;
    andor_a = a3 (fun (_, a, _, _, _) -> a) !andors;
    andor_b = a3 (fun (_, _, b, _, _) -> b) !andors;
    andor_c = a3 (fun (_, _, _, c, _) -> c) !andors;
    andor_d = a3 (fun (_, _, _, _, d) -> d) !andors;
    orand_dst = a3 (fun (i, _, _, _) -> i) !orands;
    orand_a = a3 (fun (_, a, _, _) -> a) !orands;
    orand_b = a3 (fun (_, _, b, _) -> b) !orands;
    orand_c = a3 (fun (_, _, _, c) -> c) !orands;
    xor3_dst = a3 (fun (i, _, _, _) -> i) !xor3s;
    xor3_a = a3 (fun (_, a, _, _) -> a) !xor3s;
    xor3_b = a3 (fun (_, _, b, _) -> b) !xor3s;
    xor3_c = a3 (fun (_, _, _, c) -> c) !xor3s;
    out_dst = arr1 !outs;
    out_src = arr2 !outs;
  }

(* Decide which fanout-1 inner gates each or/xor absorbs.  Processed rank
   by rank, ascending, so an inner candidate's own fusion status is final
   when its sink is examined: a gate that already absorbed something
   ([fusion.(x) <> None]) is not consumable — consuming it would discard
   its kernel and leave its (possibly consumed) sources dangling.  The
   sources of a consumed gate are therefore always materialized. *)
let plan_fusion (nl : Netlist.t) (levels : Levelize.t) =
  let n = Netlist.size nl in
  let fanout_count = Array.make n 0 in
  Array.iter
    (fun fi ->
      Array.iter (fun d -> fanout_count.(d) <- fanout_count.(d) + 1) fi)
    nl.Netlist.fanin;
  let fusion : fusion option array = Array.make n None in
  let consumed = Array.make n false in
  let inner kind x =
    fanout_count.(x) = 1
    && (not consumed.(x))
    && fusion.(x) = None
    &&
    match (kind, nl.Netlist.components.(x)) with
    | `And, Netlist.And2c -> true
    | `Xor, Netlist.Xor2c -> true
    | _ -> false
  in
  Array.iter
    (fun rank ->
      Array.iter
        (fun i ->
          let fi = nl.Netlist.fanin.(i) in
          match nl.Netlist.components.(i) with
          | Netlist.Or2c ->
            let x = fi.(0) and y = fi.(1) in
            if inner `And x && inner `And y then begin
              let fx = nl.Netlist.fanin.(x) and fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Andor (fx.(0), fx.(1), fy.(0), fy.(1)));
              consumed.(x) <- true;
              consumed.(y) <- true
            end
            else if inner `And x then begin
              let fx = nl.Netlist.fanin.(x) in
              fusion.(i) <- Some (Orand (fx.(0), fx.(1), y));
              consumed.(x) <- true
            end
            else if inner `And y then begin
              let fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Orand (fy.(0), fy.(1), x));
              consumed.(y) <- true
            end
          | Netlist.Xor2c ->
            let x = fi.(0) and y = fi.(1) in
            if inner `Xor x then begin
              let fx = nl.Netlist.fanin.(x) in
              fusion.(i) <- Some (Xor3 (fx.(0), fx.(1), y));
              consumed.(x) <- true
            end
            else if inner `Xor y then begin
              let fy = nl.Netlist.fanin.(y) in
              fusion.(i) <- Some (Xor3 (fy.(0), fy.(1), x));
              consumed.(y) <- true
            end
          | _ -> ())
        rank)
    levels.Levelize.by_level;
  (fusion, consumed)

(* Members of a rank that emit a kernel entry: gates and outports not
   absorbed by fusion.  Inports, constants and dffs settle outside the
   kernels; consumed inner gates are evaluated inside their outer fused
   kernel and never stored. *)
let emitting (nl : Netlist.t) (consumed : bool array) rank =
  Array.of_list
    (List.filter
       (fun i ->
         (not consumed.(i))
         &&
         match nl.Netlist.components.(i) with
         | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> false
         | _ -> true)
       (Array.to_list rank))

let chunk gpb arr =
  let n = Array.length arr in
  if n = 0 then []
  else if gpb >= n then [ arr ] (* also dodges n + gpb overflow *)
  else begin
    let nchunks = (n + gpb - 1) / gpb in
    List.init nchunks (fun c ->
        Array.sub arr (c * gpb) (min gpb (n - (c * gpb))))
  end

let compile ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) ?(tuning = default_tuning) ?(k = 1) netlist =
  (* [?certify] translation-validates each pre-pass run
     ({!Hydra_analyze.Certify}): packed-random I/O equivalence for the
     optimizer's rewrites, a complete permutation proof for the
     re-layout. *)
  let netlist =
    if optimize then begin
      let post = Hydra_netlist.Optimize.optimize netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure (check ~transform:"Optimize.optimize" ~pre:netlist ~post ()));
      post
    end
    else netlist
  in
  let netlist =
    if relayout then begin
      let post, perm = Layout.rank_major_permutation netlist in
      if certify then
        Hydra_analyze.Certify.(
          ensure
            (check_permutation ~transform:"Layout.rank_major" ~pre:netlist
               ~post ~perm));
      post
    end
    else netlist
  in
  check_tuning tuning;
  if k < 1 then invalid_arg "Kernel.compile: ~k must be >= 1";
  let levels = Levelize.check netlist in
  let n = Netlist.size netlist in
  let fusion, consumed =
    if fuse then plan_fusion netlist levels
    else (Array.make n None, Array.make n false)
  in
  let gpb = gates_per_block ~k tuning in
  let nranks = Array.length levels.Levelize.by_level in
  let rank_first_block = Array.make (nranks + 1) 0 in
  let blocks_rev = ref [] and block_rank_rev = ref [] and nblocks = ref 0 in
  Array.iteri
    (fun rank members ->
      rank_first_block.(rank) <- !nblocks;
      List.iter
        (fun sub ->
          blocks_rev := build_kernel netlist fusion consumed sub :: !blocks_rev;
          block_rank_rev := rank :: !block_rank_rev;
          incr nblocks)
        (chunk gpb (emitting netlist consumed members)))
    levels.Levelize.by_level;
  rank_first_block.(nranks) <- !nblocks;
  let blocks = Array.of_list (List.rev !blocks_rev) in
  let block_rank = Array.of_list (List.rev !block_rank_rev) in
  let consts = ref [] and dffs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Constant b -> consts := (i, b) :: !consts
      | Netlist.Dffc _ -> dffs := i :: !dffs
      | _ -> ())
    netlist.Netlist.components;
  let dffs = Array.of_list (List.rev !dffs) in
  let dff_src = Array.map (fun i -> netlist.Netlist.fanin.(i).(0)) dffs in
  let dff_init =
    Array.map
      (fun i ->
        match netlist.Netlist.components.(i) with
        | Netlist.Dffc b -> b
        | _ -> assert false)
      dffs
  in
  let input_index = Hashtbl.create 16 and output_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) netlist.Netlist.inputs;
  List.iter (fun (s, i) -> Hashtbl.replace output_index s i) netlist.Netlist.outputs;
  let fused = Array.fold_left (fun a c -> if c then a + 1 else a) 0 consumed in
  let dffs_per_cluster = dffs_per_cluster_of ~k tuning in
  let n_dff_clusters =
    (Array.length dffs + dffs_per_cluster - 1) / dffs_per_cluster
  in
  {
    netlist;
    levels;
    blocks;
    block_rank;
    rank_first_block;
    consts = Array.of_list (List.rev !consts);
    dffs;
    dff_src;
    dff_init;
    fused;
    tuning;
    k;
    dffs_per_cluster;
    n_dff_clusters;
    input_index;
    output_index;
  }

let size p = Netlist.size p.netlist

let n_force_slots p = n_ranks p + 1

let force_slot ~what p site =
  let n = size p in
  if site < 0 || site >= n then
    invalid_arg
      (Printf.sprintf "%s: force site %d out of range (netlist has %d components)"
         what site n);
  match p.netlist.Netlist.components.(site) with
  | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> 0
  | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
  | Netlist.Outport _ ->
    p.levels.Levelize.levels.(site) + 1

(* Blocks that actually read each component, charged from the kernel
   source arrays so that fused reads land on the outer gate's block. *)
let consumer_blocks p =
  let n = size p in
  let acc : int list array = Array.make n [] in
  let mark blk src =
    Array.iter
      (fun s -> match acc.(s) with
        | b :: _ when b = blk -> ()  (* dedup the common repeat *)
        | bs -> acc.(s) <- blk :: bs)
      src
  in
  Array.iteri
    (fun blk k ->
      mark blk k.inv_src;
      mark blk k.and_s0;
      mark blk k.and_s1;
      mark blk k.or_s0;
      mark blk k.or_s1;
      mark blk k.xor_s0;
      mark blk k.xor_s1;
      mark blk k.andor_a;
      mark blk k.andor_b;
      mark blk k.andor_c;
      mark blk k.andor_d;
      mark blk k.orand_a;
      mark blk k.orand_b;
      mark blk k.orand_c;
      mark blk k.xor3_a;
      mark blk k.xor3_b;
      mark blk k.xor3_c;
      mark blk k.out_src)
    p.blocks;
  Array.map (fun bs -> Array.of_list (List.sort_uniq compare bs)) acc

(* Dff clusters whose latch phase reads each component: dff [j] reads
   [dff_src.(j)] every tick, and lives in cluster [j / dffs_per_cluster].
   The complement of {!consumer_blocks} for the sequential phase. *)
let dff_sink_clusters p =
  let n = size p in
  let acc : int list array = Array.make n [] in
  Array.iteri
    (fun j src ->
      let cl = j / p.dffs_per_cluster in
      match acc.(src) with
      | c :: _ when c = cl -> ()
      | cs -> acc.(src) <- cl :: cs)
    p.dff_src;
  Array.map (fun cs -> Array.of_list (List.sort_uniq compare cs)) acc

(* The block whose kernel stores each component, or -1 for components
   settled outside the kernels (inports, constants, dffs, fused inner
   gates). *)
let comp_block p =
  let owner = Array.make (size p) (-1) in
  let claim blk dst = Array.iter (fun d -> owner.(d) <- blk) dst in
  Array.iteri
    (fun blk k ->
      claim blk k.inv_dst;
      claim blk k.and_dst;
      claim blk k.or_dst;
      claim blk k.xor_dst;
      claim blk k.andor_dst;
      claim blk k.orand_dst;
      claim blk k.xor3_dst;
      claim blk k.out_dst)
    p.blocks;
  owner
