(** A declarative test bench over named netlist ports (paper section 6.4's
    simulation-driver toolkit): drive bits or words with per-cycle values
    or generator functions, check expectations, and get a readable report
    with waveforms on failure. *)

type stimulus =
  | Bit_values of string * bool list
      (** port, value per cycle; the last value holds *)
  | Bit_fun of string * (int -> bool)
  | Word_values of string * int * int list
      (** port-name prefix, width, value per cycle.  The word's bit ports
          are [prefix0 .. prefix{w-1}], MSB first. *)
  | Word_fun of string * int * (int -> int)

type expectation =
  | Expect_bit of { cycle : int; port : string; value : bool }
  | Expect_word of { cycle : int; prefix : string; width : int; value : int }

type failure = {
  at_cycle : int;
  what : string;
  expected : string;
  got : string;
}

type report = {
  cycles_run : int;
  failures : failure list;
  observed : (string * bool list) list;  (** every output's full trace *)
}

val passed : report -> bool

val run :
  ?engine:[ `Compiled | `Interp ] ->
  cycles:int ->
  stimuli:stimulus list ->
  expectations:expectation list ->
  Hydra_netlist.Netlist.t ->
  report

val run_batched :
  ?scheduler:Scheduler.t ->
  ?sharded:Sharded.t ->
  ?engine:(module Engine_intf.S) ->
  ?deadline:float ->
  cycles:int ->
  cases:(stimulus list * expectation list) array ->
  Hydra_netlist.Netlist.t ->
  report array
(** Run many independent test-bench cases against the same netlist on a
    lane-packed engine: with [L] lanes per chunk, case [k] rides in lane
    [k mod L] of run [k / L], so N cases cost ceil(N/L) simulations.
    Cases may drive different ports (undriven ports hold 0 in that lane,
    as in a scalar run).  The engine defaults to {!Compiled_wide}
    (L = 62); pass [?engine] (e.g. [Slab.engine 8], L = 62*K) to batch
    wider.  With [?sharded] — which must have been created from the same
    netlist, and is mutually exclusive with [?engine] — the 62-case
    chunks become sharded jobs on the wide engine's persistent
    per-domain replicas.  With [?scheduler], chunks run as tasks of one
    job on the scheduler's team: alone it shards the default (or
    [?engine]) simulation over per-member replicas; combined with
    [?sharded] the two must share one pool ([Scheduler.pool] physically
    equal to [Sharded.pool], e.g. [Sharded.of_base ~pool:(Scheduler.pool
    sch)]) so member indices line up — otherwise [Invalid_argument].
    Results are bit-identical in every mode.  Report [k] matches what
    {!run} would return for case [k] on the compiled engine.

    [?deadline] bounds the whole batch in wall-clock seconds, enforced
    at chunk boundaries: past it, {!Resilience.Deadline_exceeded} is
    raised (scheduler modes time out the underlying job, which is the
    same exception to the caller). *)

val report_string : report -> string
(** "PASS (...)" or the failure list plus ASCII waveforms. *)
