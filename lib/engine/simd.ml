(* C kernel stubs for the {!Slab} engine ([~simd:true]).

   [settle_block values desc] evaluates one compiled block from the
   flat descriptor array {!Slab} builds at create time ([k], the eight
   kind counts, then per-kind (dst, src...) index tuples, every index
   pre-scaled by [k]) directly over the OCaml value slab.  The stub
   works on the tagged representation — and/or of two tagged ints is
   the tagged and/or, xor just re-ors the tag bit, inv masks against
   [lane_mask lsl 1] — so no boxing or copying happens at the
   boundary, and the per-gate K-word runs (contiguous addresses)
   vectorize with AVX2 (4 tagged ints per 256-bit lane) or NEON when
   the build enabled them; otherwise the stub runs portable scalar C.
   [@@noalloc]: the stub never allocates, touches the OCaml runtime or
   releases the domain lock, so the arrays cannot move under it. *)

external settle_block : int array -> int array -> unit = "hydra_settle_block"
[@@noalloc]

external kind_code : unit -> int = "hydra_simd_kind" [@@noalloc]

let flavor () =
  match kind_code () with 2 -> "avx2" | 1 -> "neon" | _ -> "scalar-c"

let vectorized () = kind_code () > 0
