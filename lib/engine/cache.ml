(* Compiled-circuit cache: compile once, serve many.

   Keyed by {!Netlist.digest} × engine flavor × compile flags ×
   {!Kernel.tuning} × k.  The digest is a content hash, so two netlists
   that differ only in component numbering or port-list order share a
   key — but engine clients (force sites, poke/peek by index) need the
   *exact* index space they asked for, so a hit additionally verifies
   structural equality against the stored netlist; digest collisions and
   index-permuted twins land in separate entries of the same bucket.  A
   collision therefore costs a duplicate entry, never a wrong program.

   Engine flavors ("wide", "slab:…") cache one pristine exemplar engine
   per key and hand out {!Compiled_wide.replicate}/{!Slab.replicate}
   copies — fresh power-up value state over the shared compiled arrays —
   so a warm hit skips compilation *and* the per-engine derived metadata
   (slab consumer unions, scaled kernels).  The underlying program is
   cached under its own "program" flavor and shared across flavors, so a
   wide hit after a slab miss still reuses nothing it shouldn't and a
   [compile]-then-[wide] sequence compiles once.

   Everything is guarded by one mutex; compilation itself runs outside
   it (two threads racing on the same cold key may both compile — the
   second insert defers to the first, which costs a redundant compile,
   never a wrong entry). *)

module Netlist = Hydra_netlist.Netlist

type key = {
  digest : string;
  flavor : string;
  optimize : bool;
  relayout : bool;
  fuse : bool;
  k : int;
  tuning : Kernel.tuning;
}

type payload =
  | Program of Kernel.program
  | Wide of Compiled_wide.t
  | Slab of Slab.t

type entry = {
  e_netlist : Netlist.t;  (* as presented, pre-pass: the identity *)
  payload : payload;
  mutable stamp : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

type t = {
  capacity : int;
  table : (key, entry list ref) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;
  mutable count : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable fault_hook : (string -> unit) option;
      (* chaos-injection point, called OUTSIDE the lock at the lookup
         and insert sites; an exception it raises propagates to the
         caller like a build failure would *)
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create 32;
    lock = Mutex.create ();
    clock = 0;
    count = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    fault_hook = None;
  }

let set_fault_hook t hook = t.fault_hook <- hook

let fire_hook t site =
  match t.fault_hook with None -> () | Some h -> h site

let stats t =
  Mutex.lock t.lock;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions;
      entries = t.count }
  in
  Mutex.unlock t.lock;
  s

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.count <- 0;
  Mutex.unlock t.lock

let find_locked t key nl =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some l -> List.find_opt (fun e -> e.e_netlist = nl) !l

(* The one entry-removal critical section (lock held): unlink, count
   down and count the eviction as a single indivisible unit, so the
   [entries]/[evictions] counters can never diverge from the table —
   previously the decrement and the eviction increment sat on separate
   paths (with a "reset count to 0" fallback), and a replica-on-hit
   racing an LRU sweep could under-count evictions. *)
let remove_entry t key e =
  let l = Hashtbl.find t.table key in
  l := List.filter (fun e' -> e' != e) !l;
  if !l = [] then Hashtbl.remove t.table key;
  t.count <- t.count - 1;
  t.evictions <- t.evictions + 1

(* Evict the least-recently-stamped entry; false iff the table is empty
   (never silently zero the count — an inconsistency would be a bug to
   surface, not paper over). *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key l ->
      List.iter
        (fun e ->
          match !victim with
          | Some (_, _, s) when s <= e.stamp -> ()
          | _ -> victim := Some (key, e, e.stamp))
        !l)
    t.table;
  match !victim with
  | None -> false
  | Some (key, e, _) ->
    remove_entry t key e;
    true

let insert_locked t key nl payload =
  match find_locked t key nl with
  | Some e -> e  (* a racing thread compiled it first; keep theirs *)
  | None ->
    let e = { e_netlist = nl; payload; stamp = t.clock } in
    t.clock <- t.clock + 1;
    (match Hashtbl.find_opt t.table key with
    | Some l -> l := e :: !l
    | None -> Hashtbl.replace t.table key (ref [ e ]));
    t.count <- t.count + 1;
    while t.count > t.capacity && evict_lru t do
      ()
    done;
    e

let get t key nl build =
  fire_hook t "lookup";
  Mutex.lock t.lock;
  match find_locked t key nl with
  | Some e ->
    t.hits <- t.hits + 1;
    e.stamp <- t.clock;
    t.clock <- t.clock + 1;
    let p = e.payload in
    Mutex.unlock t.lock;
    p
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    let payload = build () in
    fire_hook t "insert";
    Mutex.lock t.lock;
    let e = insert_locked t key nl payload in
    let p = e.payload in
    Mutex.unlock t.lock;
    p

let mk_key ~flavor ~optimize ~relayout ~fuse ~k ~tuning nl =
  { digest = Netlist.digest nl; flavor; optimize; relayout; fuse; k; tuning }

let compile t ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) ?(tuning = Kernel.default_tuning) ?(k = 1) nl =
  let key = mk_key ~flavor:"program" ~optimize ~relayout ~fuse ~k ~tuning nl in
  match
    get t key nl (fun () ->
        Program (Kernel.compile ~optimize ~relayout ~fuse ~certify ~tuning ~k nl))
  with
  | Program p -> p
  | Wide _ | Slab _ -> assert false

let wide t ?(optimize = false) ?(relayout = true) ?(fuse = true)
    ?(certify = false) ?(tuning = Kernel.default_tuning) nl =
  let key = mk_key ~flavor:"wide" ~optimize ~relayout ~fuse ~k:1 ~tuning nl in
  match
    get t key nl (fun () ->
        Wide
          (Compiled_wide.of_program
             (compile t ~optimize ~relayout ~fuse ~certify ~tuning ~k:1 nl)))
  with
  | Wide w -> Compiled_wide.replicate w
  | Program _ | Slab _ -> assert false

let slab t ?(k = 8) ?(gating = false) ?(simd = false) ?(optimize = false)
    ?(relayout = true) ?(fuse = true) ?(certify = false)
    ?(tuning = Kernel.default_tuning) nl =
  if k < 1 then invalid_arg "Cache.slab: k must be >= 1";
  let flavor =
    Printf.sprintf "slab:g%ds%d" (Bool.to_int gating) (Bool.to_int simd)
  in
  let key = mk_key ~flavor ~optimize ~relayout ~fuse ~k ~tuning nl in
  match
    get t key nl (fun () ->
        Slab
          (Slab.of_program ~gating ~simd
             (compile t ~optimize ~relayout ~fuse ~certify ~tuning ~k nl)))
  with
  | Slab s -> Slab.replicate s
  | Program _ | Wide _ -> assert false

(* One process-wide cache for clients without their own plumbing
   (Fault.generate_tests, the CLI).  Created at module init, so no
   domain-unsafe lazy initialization. *)
let shared_cache = create ()
let shared () = shared_cache
