(** Unified job-graph scheduler over one shared {!Hydra_parallel.Pool}
    domain team.

    Every fan-out client in the repo — {!Hydra_verify.Campaign},
    {!Hydra_verify.Equiv}, {!Hydra_verify.Fault},
    {!Testbench.run_batched} and the bench harness — used to hand-roll
    its own chunking over [Sharded.run_tasks]/[Pool]; this module is the
    one substrate they all drain through.  Jobs carry a priority,
    dependencies, a cancellation handle and an optional progress
    callback; {!run} executes the whole graph on the team, each member
    claiming tasks from the highest-priority ready job, so independent
    jobs (a fault campaign and an equivalence sweep, say) interleave on
    one set of domains with per-job lane packing instead of competing
    pools.

    The [member] index passed to every task body identifies the claiming
    team member (0 .. {!domains} - 1): engine clients build one replica
    per member over {!pool} (e.g. [Sharded.of_base ~pool]) and index
    replicas by it — the member indices line up by construction.

    Submission and [run] are intended to be driven from one thread (the
    one that owns the scheduler); task bodies run on the team and may
    safely call {!submit} and {!cancel}. *)

type t

type job

exception Dependency_cycle of string list
(** Raised by {!run} when the submitted jobs' dependencies form a cycle;
    the payload is a witness: job names along the cycle, each depending
    on the next (and the last on the first). *)

type status =
  | Pending  (** submitted, no task claimed yet *)
  | Running  (** at least one task claimed *)
  | Done  (** every task completed *)
  | Failed of exn  (** a task body (or progress callback) raised *)
  | Cancelled
      (** cancelled explicitly, or transitively via a failed/cancelled
          dependency *)

val create : ?domains:int -> unit -> t
(** A scheduler owning a fresh pool of [?domains] total parallelism
    (default {!Hydra_parallel.Pool.create}'s).  {!shutdown} joins it. *)

val of_pool : Hydra_parallel.Pool.t -> t
(** A scheduler borrowing an existing pool: {!shutdown} leaves the pool
    alive (the lender owns it). *)

val pool : t -> Hydra_parallel.Pool.t
(** The team this scheduler executes on — build per-member engine
    replicas over it so [member] indices line up. *)

val domains : t -> int
(** Team size = {!Hydra_parallel.Pool.size} of {!pool}. *)

val submit :
  ?name:string ->
  ?priority:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?deps:job list ->
  t ->
  tasks:int ->
  (member:int -> int -> unit) ->
  job
(** Submit a job of [tasks] independent tasks; the body receives the
    claiming team member and the task index (0 .. tasks-1).  Higher
    [?priority] (default 0) is claimed first; ties go to the earlier
    submission.  [?deps] must all be [Done] before any task is claimed;
    a failed or cancelled dependency cancels this job.  A job with
    [tasks = 0] is a pure join point: it completes as soon as its
    dependencies do.  [?progress] is called after each completed task
    with an (approximate, racy under concurrency) completion count; an
    exception from it fails the job like a body exception.  Jobs may be
    submitted while {!run} is executing (from task bodies). *)

val depend : t -> job:job -> on:job list -> unit
(** Add dependencies to a submitted job (before its first task is
    claimed, typically right after {!submit}). *)

val cancel : t -> job -> unit
(** Cancel a pending or running job: unclaimed tasks are never claimed,
    in-flight task bodies finish undisturbed, and dependent jobs are
    cancelled transitively.  Terminal jobs are left alone.  Safe to call
    from task bodies; the scheduler and its pool stay fully reusable. *)

val run : t -> unit
(** Execute every submitted job on the team until all are settled
    (Done, Failed or Cancelled).  Job failures do {e not} raise here —
    an exception in one job must not poison its siblings; inspect
    {!status} (and see {!run_tasks} for the one-job convenience that
    does re-raise).  Raises {!Dependency_cycle} with a witness if the
    dependency graph is cyclic; the submitted jobs are all cancelled, so
    the scheduler (and its pool) stay reusable.  After [run] returns the
    scheduler is empty and reusable. *)

val status : t -> job -> status

val job_name : job -> string

val run_tasks :
  t -> ?name:string -> ?priority:int -> int -> (member:int -> int -> unit) -> unit
(** [run_tasks t n body] = submit one job of [n] tasks, {!run}, and
    re-raise the job's failure (if any) in the caller — the drop-in
    replacement for [Sharded.run_tasks]-style fan-out.  Note that {!run}
    drains {e all} pending jobs, so other submissions ride along on the
    same team. *)

val shutdown : t -> unit
(** Join the pool iff this scheduler owns it ({!create}); a borrowed
    pool ({!of_pool}) is left to its owner. *)

(** {2 Chunking policy} *)

(** How [total] independent cases pack into the lanes of one engine
    instance: [count] chunks of at most [per_chunk] cases, chunk [c]
    covering cases [bounds c = (lo, hi)] (half-open). *)
type chunks = { count : int; per_chunk : int; bounds : int -> int * int }

val chunking : ?reserved:int -> lanes:int -> int -> chunks
(** The one lane-packing computation shared by Campaign, Equiv and
    Testbench (each used to hand-roll its own): pack [total] cases
    [per_chunk = lanes - reserved] at a time, where [?reserved]
    (default 0) lanes per chunk stay with the client — Campaign reserves
    lane 0 of every chunk for the golden (fault-free) run.  Raises
    [Invalid_argument] unless [0 <= reserved < lanes]. *)
