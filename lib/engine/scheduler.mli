(** Unified job-graph scheduler over one shared {!Hydra_parallel.Pool}
    domain team.

    Every fan-out client in the repo — {!Hydra_verify.Campaign},
    {!Hydra_verify.Equiv}, {!Hydra_verify.Fault},
    {!Testbench.run_batched} and the bench harness — used to hand-roll
    its own chunking over [Sharded.run_tasks]/[Pool]; this module is the
    one substrate they all drain through.  Jobs carry a priority,
    dependencies, a cancellation handle and an optional progress
    callback; {!run} executes the whole graph on the team, each member
    claiming tasks from the highest-priority ready job, so independent
    jobs (a fault campaign and an equivalence sweep, say) interleave on
    one set of domains with per-job lane packing instead of competing
    pools.

    The [member] index passed to every task body identifies the claiming
    team member (0 .. {!domains} - 1): engine clients build one replica
    per member over {!pool} (e.g. [Sharded.of_base ~pool]) and index
    replicas by it — the member indices line up by construction.

    Resilience: jobs may carry a [?deadline] (wall-clock budget from
    submission; expiry at a chunk boundary moves the job to the terminal
    {!Timed_out} state, which cancels dependents exactly like a
    failure), a [?retry] policy (transient task failures are re-claimed
    after an exponential backoff with deterministic jitter, every
    attempt journaled in the job's {!trail}), and a [?lanes] demand
    (with an [?admission] controller on the scheduler, excess demand
    sheds the lowest-priority pending jobs).  A [?watchdog] horizon arms
    a monitor that fails the owning job of any pool member whose
    {!Hydra_parallel.Pool.heartbeat} goes stale — carrying a
    {!Resilience.Stuck_member} site witness — instead of hanging the
    team.

    Submission and [run] are intended to be driven from one thread (the
    one that owns the scheduler); task bodies and progress callbacks run
    on the team, strictly outside the scheduler's internal lock, so they
    may safely re-enter it: {!submit}, {!cancel}, {!status},
    {!checkpoint}. *)

type t

type job

exception Dependency_cycle of string list
(** Raised by {!run} when the submitted jobs' dependencies form a cycle;
    the payload is a witness: job names along the cycle, each depending
    on the next (and the last on the first). *)

exception Interrupted
(** Raised by {!checkpoint} inside a task body whose job has been
    doomed (cancelled, timed out, failed by the watchdog) — the
    cooperative-cancellation signal.  The scheduler absorbs it: the
    job's terminal state is already set and siblings are unaffected. *)

type status =
  | Pending  (** submitted, no task claimed yet *)
  | Running  (** at least one task claimed *)
  | Done  (** every task completed *)
  | Failed of exn  (** a task body (or progress callback) raised *)
  | Cancelled
      (** cancelled explicitly, transitively via a doomed dependency, or
          shed by the admission controller *)
  | Timed_out
      (** the job's [?deadline] expired before every task completed.
          Terminal, observed at chunk boundaries: in-flight task bodies
          finish (or bail at their next {!checkpoint}) but no further
          tasks are claimed, and dependents are cancelled exactly as if
          the job had failed.  {!run_tasks} surfaces it as
          {!Resilience.Deadline_exceeded}. *)

val create :
  ?domains:int ->
  ?watchdog:float ->
  ?admission:Resilience.admission ->
  unit ->
  t
(** A scheduler owning a fresh pool of [?domains] total parallelism
    (default {!Hydra_parallel.Pool.create}'s).  {!shutdown} joins it.

    [?watchdog] arms the stuck-member monitor: a pool member whose last
    heartbeat (stamped at every claim boundary, or manually via {!beat})
    is older than the horizon has its current job failed with
    {!Resilience.Stuck_member}.  Pick a horizon comfortably above the
    longest honest task body.

    [?admission] attaches an overload controller: when the declared
    [?lanes] demand of live jobs exceeds its budget, the lowest-priority
    pending not-yet-started jobs are shed (state {!Cancelled}, counted
    in the controller's stats, surfaced by {!run_tasks} as
    {!Resilience.Shed}). *)

val of_pool :
  ?watchdog:float ->
  ?admission:Resilience.admission ->
  Hydra_parallel.Pool.t ->
  t
(** A scheduler borrowing an existing pool: {!shutdown} leaves the pool
    alive (the lender owns it). *)

val pool : t -> Hydra_parallel.Pool.t
(** The team this scheduler executes on — build per-member engine
    replicas over it so [member] indices line up. *)

val domains : t -> int
(** Team size = {!Hydra_parallel.Pool.size} of {!pool}. *)

val submit :
  ?name:string ->
  ?priority:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?deps:job list ->
  ?deadline:float ->
  ?retry:Resilience.retry ->
  ?lanes:int ->
  t ->
  tasks:int ->
  (member:int -> int -> unit) ->
  job
(** Submit a job of [tasks] independent tasks; the body receives the
    claiming team member and the task index (0 .. tasks-1).  Higher
    [?priority] (default 0) is claimed first; ties go to the earlier
    submission.  [?deps] must all be [Done] before any task is claimed;
    a doomed dependency cancels this job.  A job with [tasks = 0] is a
    pure join point: it completes as soon as its dependencies do.
    [?progress] is called after each completed task, outside the
    scheduler lock, with the exact completion count at that moment; an
    exception from it fails the job like a body exception.

    [?deadline] is a wall-clock budget in seconds from this submission;
    see {!Timed_out}.  [?retry] re-claims tasks whose body raised a
    transient exception, after {!Resilience.backoff}; each failed
    attempt is journaled in the job's {!trail}, and attempts per task
    are capped by the policy.  [?lanes] declares the job's engine-lane
    demand to the scheduler's admission controller (no effect without
    one).  Jobs may be submitted while {!run} is executing (from task
    bodies). *)

val depend : t -> job:job -> on:job list -> unit
(** Add dependencies to a submitted job (before its first task is
    claimed, typically right after {!submit}). *)

val cancel : t -> job -> unit
(** Cancel a pending or running job: unclaimed tasks are never claimed,
    in-flight task bodies finish undisturbed (or bail at their next
    {!checkpoint}), and dependent jobs are cancelled transitively.
    Terminal jobs are left alone.  Safe to call from task bodies and
    progress callbacks (both run outside the scheduler lock); the
    scheduler and its pool stay fully reusable. *)

val checkpoint : t -> job -> unit
(** Cooperative cancellation point for long task bodies: raises
    {!Interrupted} iff the job is doomed (cancelled, timed out, or
    failed).  The scheduler treats the escape as the chunk bailing, not
    as a new failure. *)

val beat : t -> member:int -> unit
(** Re-stamp [member]'s heartbeat (keeping its current site label) from
    inside a long task body, so an honest slow chunk is not mistaken for
    a stuck one by the [?watchdog]. *)

val run : t -> unit
(** Execute every submitted job on the team until all are settled
    (Done, Failed, Cancelled or Timed_out).  Job failures do {e not}
    raise here — an exception in one job must not poison its siblings;
    inspect {!status} (and see {!run_tasks} for the one-job convenience
    that does re-raise).  Raises {!Dependency_cycle} with a witness if
    the dependency graph is cyclic; the submitted jobs are all
    cancelled, so the scheduler (and its pool) stay reusable.  While
    running, a lightweight ticker domain (spawned only when some job
    carries a deadline or retry policy, or a watchdog is armed) fires
    deadline expiries, backoff due-times and watchdog verdicts even
    when every member is parked.  After [run] returns the scheduler is
    empty and reusable. *)

val status : t -> job -> status

val job_name : job -> string

val trail : t -> job -> string list
(** The job's journal, oldest first: retry attempts with their backoff,
    deadline expiry, watchdog verdicts, shed/cancellation events — each
    stamped [+elapsed] relative to submission.  Empty for a job that
    settled without incident. *)

val run_tasks :
  t ->
  ?name:string ->
  ?priority:int ->
  ?deadline:float ->
  ?retry:Resilience.retry ->
  ?lanes:int ->
  int ->
  (member:int -> int -> unit) ->
  unit
(** [run_tasks t n body] = submit one job of [n] tasks, {!run}, and
    re-raise the job's failure (if any) in the caller — the drop-in
    replacement for [Sharded.run_tasks]-style fan-out.  A {!Timed_out}
    job raises {!Resilience.Deadline_exceeded}; a job shed by the
    admission controller raises {!Resilience.Shed}.  Note that {!run}
    drains {e all} pending jobs, so other submissions ride along on the
    same team. *)

val shutdown : t -> unit
(** Join the pool iff this scheduler owns it ({!create}); a borrowed
    pool ({!of_pool}) is left to its owner. *)

(** {2 Chunking policy} *)

(** How [total] independent cases pack into the lanes of one engine
    instance: [count] chunks of at most [per_chunk] cases, chunk [c]
    covering cases [bounds c = (lo, hi)] (half-open). *)
type chunks = { count : int; per_chunk : int; bounds : int -> int * int }

val chunking : ?reserved:int -> lanes:int -> int -> chunks
(** The one lane-packing computation shared by Campaign, Equiv and
    Testbench (each used to hand-roll its own): pack [total] cases
    [per_chunk = lanes - reserved] at a time, where [?reserved]
    (default 0) lanes per chunk stay with the client — Campaign reserves
    lane 0 of every chunk for the golden (fault-free) run.  Raises
    [Invalid_argument] unless [0 <= reserved < lanes]. *)
