(** Compiled-circuit cache: compile once, serve many.

    Entries are keyed by {!Hydra_netlist.Netlist.digest} (a content
    hash, stable across serialization round-trips and component
    renumberings) × engine flavor × the compile flags that change the
    produced program ([optimize]/[relayout]/[fuse]/[k]/{!Kernel.tuning}).
    Because engine clients address components by index, a digest hit is
    additionally verified by structural equality against the stored
    netlist — index-permuted twins (and hash collisions) get separate
    entries, so a collision can cost a duplicate entry but never a wrong
    program.

    [?certify] is {e not} part of the key: certification is a property
    of a compile {e run}, so it happens on the miss that populates an
    entry and is skipped on hits.

    Engine flavors cache one pristine exemplar per key and return
    replicas (fresh power-up value state over the shared compiled
    arrays), so a warm {!wide}/{!slab} hit skips both compilation and
    the per-engine derived metadata.  Eviction is LRU with hit, miss and
    eviction counters; all operations are mutex-guarded and safe to call
    from scheduler task bodies on any domain (compilation itself runs
    outside the lock). *)

type t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : ?capacity:int -> unit -> t
(** [?capacity] (default 64, >= 1) bounds the total entry count across
    all flavors; least-recently-used entries are evicted past it. *)

val shared : unit -> t
(** One process-wide cache (default capacity) for clients without their
    own plumbing. *)

val compile :
  t ->
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?tuning:Kernel.tuning ->
  ?k:int ->
  Hydra_netlist.Netlist.t ->
  Kernel.program
(** As {!Kernel.compile} (same defaults), through the cache. *)

val wide :
  t ->
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?tuning:Kernel.tuning ->
  Hydra_netlist.Netlist.t ->
  Compiled_wide.t
(** As {!Compiled_wide.create} (same defaults), through the cache: a
    replica of the cached exemplar, at power-up, safe to run
    concurrently with every other replica.  The underlying program is
    cached under the "program" flavor and shared with {!compile} and
    {!slab} calls using the same flags, so each counts its own
    hit/miss. *)

val slab :
  t ->
  ?k:int ->
  ?gating:bool ->
  ?simd:bool ->
  ?optimize:bool ->
  ?relayout:bool ->
  ?fuse:bool ->
  ?certify:bool ->
  ?tuning:Kernel.tuning ->
  Hydra_netlist.Netlist.t ->
  Slab.t
(** As {!Slab.create} (same defaults), through the cache; [gating] and
    [simd] select distinct flavors (they change the exemplar's derived
    metadata, not the program). *)

val stats : t -> stats
(** Cumulative counters plus the current entry count.  Note {!wide} and
    {!slab} consult the cache twice on a cold netlist (program + engine
    flavor), so one cold engine build counts two misses. *)

val clear : t -> unit
(** Drop every entry (counters keep accumulating; [entries] resets). *)

val set_fault_hook : t -> (string -> unit) option -> unit
(** Install (or remove, with [None]) a chaos-injection hook, called
    outside the cache lock at the lookup and insert sites with a site
    label ("lookup" / "insert").  An exception it raises propagates to
    the caller exactly like a build failure; the cache's tables and
    counters stay consistent regardless.  For the chaos harness —
    production code leaves it unset. *)
