(** Resilience primitives for the execution layer: deadlines, retry
    policies (exponential backoff with deterministic jitter), heartbeat
    watchdog verdicts, and an overload-shedding admission controller.

    {!Scheduler} weaves these through its claim loop ([?deadline],
    [?retry] and [?lanes] on submit, [?watchdog] and [?admission] on
    create); {!Hydra_verify.Campaign}, {!Hydra_verify.Equiv} and
    {!Testbench} expose them as client knobs.  All randomness (jitter)
    is hashed from caller-supplied seeds, so replayed runs produce
    identical schedules — the precondition for the chaos harness being
    able to reproduce any storm it reports. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the time base every
    deadline and heartbeat in the engine uses. *)

val unit_hash : int list -> float
(** Deterministic hash of the seeds to the unit interval [0, 1)
    (splitmix64 finalizer) — the engine's one source of "randomness",
    pure so every schedule and chaos storm replays exactly. *)

exception Deadline_exceeded of { job : string; elapsed : float }
(** A job exceeded its submit-time deadline: raised by the one-job
    conveniences ({!Scheduler.run_tasks}, [Campaign.run ?deadline], …)
    when the underlying job settled {!Scheduler.Timed_out}. *)

exception Stuck_member of { member : int; site : string; age : float }
(** The watchdog's verdict: pool member [member] last heartbeat [age]
    seconds ago at [site] (the job name it claimed for — the stack-site
    witness).  The owning job is failed with this exception. *)

exception Shed of { job : string; priority : int }
(** An admission controller evicted this job to shed load. *)

(** {2 Retry policies} *)

type retry = {
  max_attempts : int;  (** total attempts per task, including the first *)
  base_delay : float;  (** first backoff, seconds *)
  max_delay : float;  (** backoff envelope cap, seconds *)
  jitter : float;  (** fraction of the envelope randomized away, [0,1] *)
  transient : exn -> bool;  (** retry this exception at all? *)
}

val default_transient : exn -> bool
(** Programming errors ([Invalid_argument], [Assert_failure],
    [Match_failure]) and resource exhaustion ([Out_of_memory],
    [Stack_overflow]) are permanent; everything else is transient. *)

val retry :
  ?max_attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?jitter:float ->
  ?transient:(exn -> bool) ->
  unit ->
  retry
(** Defaults: 3 attempts, 2 ms base, 250 ms cap, jitter 0.5,
    {!default_transient}.  Raises [Invalid_argument] on a nonsensical
    combination (attempts < 1, negative delays, jitter outside [0,1]). *)

val backoff : retry -> attempt:int -> seed:int -> float
(** Backoff after failed attempt [attempt] (1-based): the exponential
    envelope [min max_delay (base_delay * 2^(attempt-1))] shrunk by a
    deterministic jitter fraction hashed from [seed] and [attempt] —
    the same seeds always produce the same delay, so retry schedules
    replay exactly. *)

(** {2 Admission control} *)

type admission
(** A shared in-flight-lanes budget: engine-lane demand is reserved
    through {!acquire} and returned through {!release}; demand past the
    budget degrades (smaller grants) before it sheds (rejection), and
    every decision is counted. *)

type admission_stats = {
  admitted : int;
  degraded : int;  (** admissions granted fewer lanes than requested *)
  shed : int;  (** requests (or scheduler jobs) rejected outright *)
  in_flight_lanes : int;
  max_lanes : int;
}

val admission : ?min_lanes:int -> max_lanes:int -> unit -> admission
(** A controller with [max_lanes] total budget and a degradation floor
    of [min_lanes] (default 62 — one engine word): grants are multiples
    of the floor, and a request is shed only when less than one floor
    quantum is free. *)

val acquire : admission -> lanes:int -> [ `Granted of int | `Shed ]
(** Reserve up to [lanes] lanes.  Fits whole: granted as asked.  Past
    the budget: degraded to the largest multiple of [min_lanes] that
    fits ([`Granted n] with [n < lanes], counted in [degraded]).  Less
    than one quantum free: [`Shed].  Callers must {!release} exactly
    the granted amount when done. *)

val release : admission -> lanes:int -> unit

val budget : admission -> int
(** The controller's [max_lanes]. *)

val count_shed : admission -> unit
(** Record a scheduler-side job eviction in the [shed] counter, so one
    counter covers both shed paths. *)

val admission_stats : admission -> admission_stats

val describe_admission : admission -> string
